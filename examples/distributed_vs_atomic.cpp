// Distributed snapshots vs atomic snapshot memories — the paper's Section 6
// discussion, measured:
//
//   "Interestingly, distributed snapshots are not true instantaneous images
//    of the global state, such as scans of snapshot memories produce.
//    However, distributed snapshots are indistinguishable, within the
//    system itself, from true instantaneous images."
//
//   build/examples/distributed_vs_atomic
//
// Left: a Chandy–Lamport snapshot of token-passing processes — always a
// CONSISTENT cut (tokens conserved), but the per-process record instants
// are spread across many state changes: no single moment looked like this.
// Right: an atomic snapshot memory scan — by linearizability there IS a
// single instant at which the returned view was the exact global state
// (spread zero by definition).
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <thread>
#include <vector>

#include "cl/chandy_lamport.hpp"
#include "core/snapshot.hpp"

int main() {
  // --- Chandy–Lamport over message passing --------------------------------
  std::printf("Chandy-Lamport distributed snapshot (4 processes, 100 tokens "
              "each, transfers in flight):\n");
  std::printf("%6s %10s %10s %14s %14s\n", "snap#", "total", "in_flight",
              "conserved", "instant_spread");
  {
    asnap::cl::TokenBank bank(4, 100, /*seed=*/99);
    for (int i = 1; i <= 5; ++i) {
      const asnap::cl::GlobalSnapshot snap = bank.snapshot();
      std::printf("%6d %10lld %10zu %14s %14llu\n", i,
                  static_cast<long long>(snap.total()),
                  snap.in_flight_count(),
                  snap.total() == bank.expected_total() ? "yes" : "NO",
                  static_cast<unsigned long long>(snap.instant_spread()));
    }
  }
  std::printf("-> every cut conserves tokens (consistent), but its pieces "
              "were recorded many state-changes apart:\n"
              "   the cut is a state the system could have been in, not one "
              "it necessarily was in.\n\n");

  // --- Atomic snapshot memory ---------------------------------------------
  std::printf("Atomic snapshot memory scan (same observation, shared "
              "memory):\n");
  {
    constexpr std::size_t kProcs = 4;
    asnap::core::BoundedSwSnapshot<std::uint64_t> snap(kProcs + 1, 0);
    std::atomic<bool> stop{false};
    std::vector<std::jthread> writers;
    for (asnap::ProcessId p = 1; p <= kProcs; ++p) {
      writers.emplace_back([&snap, &stop, p] {
        std::uint64_t v = 0;
        while (!stop.load(std::memory_order_acquire)) snap.update(p, ++v);
      });
    }
    for (int i = 1; i <= 5; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      const std::vector<std::uint64_t> view = snap.scan(0);
      std::printf("  scan %d: [", i);
      for (std::size_t j = 1; j <= kProcs; ++j) {
        std::printf(" %llu", static_cast<unsigned long long>(view[j]));
      }
      std::printf(" ]  instant_spread = 0 (one linearization point)\n");
    }
    stop.store(true, std::memory_order_release);
  }
  std::printf("-> a scan IS an instantaneous image: all components belong "
              "to one serialization point inside the scan's interval "
              "(Theorem 4.5).\n");
  return 0;
}
