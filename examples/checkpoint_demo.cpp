// Instantaneously checkpointable store — Section 6's application of the
// multi-writer snapshot ("a shared memory object that can be
// instantaneously checkpointed").
//
//   build/examples/checkpoint_demo
//
// Worker threads keep mutating a shared table of cells (any worker may
// write any cell); a checkpointer takes consistent images mid-flight and
// diffs consecutive checkpoints. No stop-the-world, no locks: writers never
// block, and every checkpoint is an exact instant of the store.
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <thread>
#include <vector>

#include "apps/checkpoint_store.hpp"

int main() {
  constexpr std::size_t kWorkers = 3;
  constexpr std::size_t kCells = 8;
  constexpr asnap::ProcessId kCheckpointer = 0;

  asnap::apps::CheckpointStore<std::uint64_t> store(kWorkers + 1, kCells, 0);

  std::atomic<bool> stop{false};
  std::vector<std::jthread> workers;
  for (std::size_t w = 1; w <= kWorkers; ++w) {
    workers.emplace_back([&store, &stop, w] {
      const auto pid = static_cast<asnap::ProcessId>(w);
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        ++i;
        store.put(pid, (w * 3 + i) % kCells, w * 1000 + i);
        std::this_thread::yield();
      }
    });
  }

  auto previous = store.checkpoint(kCheckpointer);
  for (int cp = 1; cp <= 6; ++cp) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    const auto current = store.checkpoint(kCheckpointer);
    const std::vector<std::size_t> changed = current.changed_since(previous);

    std::printf("checkpoint %d: %zu/%zu cells changed since last |", cp,
                changed.size(), kCells);
    for (std::size_t k = 0; k < kCells; ++k) {
      std::printf(" %llu",
                  static_cast<unsigned long long>(current.cells[k].value));
    }
    std::printf("\n");
    previous = current;
  }
  stop.store(true, std::memory_order_release);

  std::printf("\nEach line is an instantaneous image taken while %zu "
              "writers kept writing, plus an incremental diff computed "
              "from per-cell versions.\n",
              kWorkers);
  return 0;
}
