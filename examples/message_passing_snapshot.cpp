// Message-passing atomic snapshots with crash tolerance — Section 6's
// remark made executable: the UNCHANGED Figure 2 algorithm runs over
// ABD-emulated registers on a simulated asynchronous network, and keeps
// working while a minority of nodes is crashed.
//
//   build/examples/message_passing_snapshot
#include <cstdint>
#include <cstdio>
#include <thread>
#include <vector>

#include "abd/abd_snapshot.hpp"

int main() {
  constexpr std::size_t kNodes = 5;  // tolerates 2 crashes (majority = 3)
  asnap::abd::MessagePassingSnapshot<std::uint64_t> snapshot(kNodes, 0);

  // Every node publishes a value...
  {
    std::vector<std::jthread> clients;
    for (std::size_t p = 0; p < kNodes; ++p) {
      clients.emplace_back([&snapshot, p] {
        snapshot.update(static_cast<asnap::ProcessId>(p), 100 + p);
      });
    }
  }
  std::printf("initial scan from node 0:      [");
  for (const std::uint64_t v : snapshot.scan(0)) std::printf(" %llu",
      static_cast<unsigned long long>(v));
  std::printf(" ]  (%llu messages so far)\n",
              static_cast<unsigned long long>(snapshot.messages_sent()));

  // ... then a minority of nodes fail-stops.
  snapshot.crash(3);
  snapshot.crash(4);
  std::printf("crashed nodes 3 and 4; %zu of %zu alive (majority: %zu)\n",
              snapshot.alive_count(), kNodes, kNodes / 2 + 1);

  // Survivors keep updating and scanning — operations still terminate, and
  // the crashed nodes' last values remain visible (they reached a majority).
  {
    std::vector<std::jthread> clients;
    for (std::size_t p = 0; p < 3; ++p) {
      clients.emplace_back([&snapshot, p] {
        for (std::uint64_t i = 1; i <= 3; ++i) {
          snapshot.update(static_cast<asnap::ProcessId>(p), 200 + p * 10 + i);
          (void)snapshot.scan(static_cast<asnap::ProcessId>(p));
        }
      });
    }
  }
  std::printf("post-crash scan from node 1:   [");
  for (const std::uint64_t v : snapshot.scan(1)) std::printf(" %llu",
      static_cast<unsigned long long>(v));
  std::printf(" ]\n");
  std::printf("total messages: %llu — every scan/update is a few quorum "
              "rounds per register; no operation ever blocked on the "
              "crashed minority.\n",
              static_cast<unsigned long long>(snapshot.messages_sent()));
  return 0;
}
