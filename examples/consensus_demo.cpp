// Randomized wait-free consensus from snapshots — the paper's flagship
// application family ([A88, AH89, ADS89, A90]).
//
//   build/examples/consensus_demo
//
// Deterministic wait-free consensus from read/write registers is impossible
// (Herlihy [H88] / FLP); snapshots + local coins achieve it with
// probability-1 termination. Each thread proposes a value; all threads
// decide the same one, and the decision is someone's proposal.
#include <cstdint>
#include <cstdio>
#include <thread>
#include <vector>

#include "apps/consensus.hpp"
#include "common/rng.hpp"

int main() {
  constexpr std::size_t kProcesses = 5;
  constexpr int kElections = 8;

  for (int election = 1; election <= kElections; ++election) {
    asnap::apps::SnapshotConsensus consensus(kProcesses);
    std::vector<asnap::apps::SnapshotConsensus::Result> results(kProcesses);
    std::vector<bool> proposals(kProcesses);

    {
      std::vector<std::jthread> threads;
      for (std::size_t p = 0; p < kProcesses; ++p) {
        proposals[p] = (election + static_cast<int>(p)) % 2 == 0;
        threads.emplace_back([&, p] {
          asnap::Rng rng(static_cast<std::uint64_t>(election) * 7919 + p);
          results[p] = consensus.decide(static_cast<asnap::ProcessId>(p),
                                        proposals[p], rng);
        });
      }
    }

    std::printf("election %d: proposals [", election);
    for (std::size_t p = 0; p < kProcesses; ++p) {
      std::printf("%s%d", p ? " " : "", proposals[p] ? 1 : 0);
    }
    std::size_t max_rounds = 0;
    bool agreed = true;
    for (std::size_t p = 0; p < kProcesses; ++p) {
      agreed &= results[p].value == results[0].value;
      max_rounds = std::max(max_rounds, results[p].rounds_used);
    }
    std::printf("] -> decided %d in <=%zu rounds (%s)\n",
                results[0].value ? 1 : 0, max_rounds,
                agreed ? "agreement" : "DISAGREEMENT — must never print");
    if (!agreed) return 1;
  }
  return 0;
}
