// Quickstart: the atomic-snapshot public API in ~60 lines.
//
//   build/examples/quickstart
//
// Creates a bounded single-writer snapshot (Figure 3 of Afek et al. 1990),
// runs a few updater threads against a scanner, and shows that every scan
// is an instantaneous picture: the per-process counters in one view are
// exactly simultaneous, never a torn mix of old and new.
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/snapshot.hpp"

int main() {
  constexpr std::size_t kProcesses = 4;

  // One word per process; process i may only update word i (single-writer).
  asnap::core::BoundedSwSnapshot<std::uint64_t> snapshot(kProcesses, 0);

  // Three updater threads, each bound to a process id, each bumping its own
  // word as fast as it can.
  std::atomic<bool> stop{false};
  std::vector<std::jthread> updaters;
  for (asnap::ProcessId pid = 1; pid < kProcesses; ++pid) {
    updaters.emplace_back([&snapshot, &stop, pid] {
      std::uint64_t value = 0;
      while (!stop.load(std::memory_order_acquire)) {
        snapshot.update(pid, ++value);
      }
    });
  }

  // Process 0 scans: each scan returns the entire memory as of one instant,
  // wait-free, no matter how fast the updaters are writing.
  std::printf("%8s %12s %12s %12s\n", "scan#", "P1", "P2", "P3");
  std::vector<std::uint64_t> previous(kProcesses, 0);
  for (int i = 1; i <= 10; ++i) {
    const std::vector<std::uint64_t> view = snapshot.scan(0);
    std::printf("%8d %12llu %12llu %12llu\n", i,
                static_cast<unsigned long long>(view[1]),
                static_cast<unsigned long long>(view[2]),
                static_cast<unsigned long long>(view[3]));
    // Linearizability in action: views are componentwise monotone.
    for (std::size_t j = 0; j < kProcesses; ++j) {
      if (view[j] < previous[j]) {
        std::printf("TORN VIEW — this must never print\n");
        return 1;
      }
    }
    previous = view;
  }
  stop.store(true, std::memory_order_release);

  const asnap::core::ScanStats& stats = snapshot.stats(0);
  std::printf("\nscans: %llu, double collects: %llu, borrowed views: %llu\n",
              static_cast<unsigned long long>(stats.scans),
              static_cast<unsigned long long>(stats.double_collects),
              static_cast<unsigned long long>(stats.borrowed_views));
  std::printf("every scan finished within the wait-free bound of n+1 = %zu "
              "double collects (max seen: %llu)\n",
              kProcesses + 1,
              static_cast<unsigned long long>(stats.max_double_collects));
  return 0;
}
