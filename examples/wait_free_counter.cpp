// Wait-free linearizable counter — snapshots as a data-structure substrate
// (the paper's [AH90] motivation).
//
//   build/examples/wait_free_counter
//
// Increment-only threads plus a reader. The counter is exact at quiescence
// and MONOTONE at every read in between — the property a sum over a torn
// collect does not give you (a torn sum can exceed then fall below a
// previously observed value).
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <thread>
#include <vector>

#include "apps/counter.hpp"

int main() {
  constexpr std::size_t kThreads = 4;
  constexpr int kIncrementsPerThread = 20000;

  asnap::apps::WaitFreeCounter counter(kThreads + 1);

  std::int64_t last = 0;
  bool monotone = true;
  {
    std::vector<std::jthread> workers;
    for (std::size_t t = 1; t <= kThreads; ++t) {
      workers.emplace_back([&counter, t] {
        const auto pid = static_cast<asnap::ProcessId>(t);
        for (int i = 0; i < kIncrementsPerThread; ++i) counter.add(pid, 1);
      });
    }
    // Concurrent reads: each is a snapshot sum, so the sequence is monotone.
    for (int r = 0; r < 50; ++r) {
      const std::int64_t now = counter.read(0);
      if (now < last) monotone = false;
      last = now;
      std::this_thread::yield();
    }
  }

  const std::int64_t final_value = counter.read(0);
  std::printf("final count: %lld (expected %d)\n",
              static_cast<long long>(final_value),
              static_cast<int>(kThreads) * kIncrementsPerThread);
  std::printf("reads during the run were %s\n",
              monotone ? "monotone (linearizable)" : "NON-MONOTONE — bug");
  return final_value == kThreads * kIncrementsPerThread && monotone ? 0 : 1;
}
