// Sensor chain monitoring — the "instantaneous global picture" motivation
// from the paper's introduction, with an invariant that only an ATOMIC scan
// can preserve.
//
//   build/examples/sensor_monitor
//
// Sensors form a propagation chain: sensor 1 advances its version freely;
// sensor i > 1 only ever advances to a version it has SEEN at sensor i-1.
// Therefore, at every real instant, versions are non-increasing along the
// chain: v1 >= v2 >= ... >= vn. This is a cross-register invariant — no
// single register knows it — so:
//
//   * every atomic scan must satisfy it (the paper's guarantee), while
//   * a torn read (assembling a "view" from per-component reads taken at
//     different times) can violate it, because a late component may run
//     ahead of an early one.
//
// The program runs both observers side by side and reports violations.
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/snapshot.hpp"

namespace {

struct SensorState {
  std::uint64_t version = 0;
  std::uint64_t reading = 0;
};

}  // namespace

int main() {
  constexpr std::size_t kSensors = 5;
  constexpr asnap::ProcessId kMonitor = 0;  // process 0 observes
  constexpr std::size_t kProcesses = kSensors + 1;

  asnap::core::BoundedSwSnapshot<SensorState> table(kProcesses,
                                                    SensorState{});

  std::atomic<bool> stop{false};
  std::vector<std::jthread> sensors;
  for (std::size_t i = 1; i <= kSensors; ++i) {
    sensors.emplace_back([&table, &stop, i] {
      const auto pid = static_cast<asnap::ProcessId>(i);
      SensorState mine;
      while (!stop.load(std::memory_order_acquire)) {
        if (i == 1) {
          ++mine.version;  // the leader advances freely
        } else {
          // Followers advance only to a version observed at the predecessor.
          const std::vector<SensorState> view = table.scan(pid);
          mine.version = view[i - 1].version;
        }
        mine.reading = mine.version * 100;
        table.update(pid, mine);
        std::this_thread::yield();
      }
    });
  }

  std::uint64_t atomic_violations = 0;
  std::uint64_t torn_violations = 0;
  constexpr int kObservations = 300;
  for (int obs = 0; obs < kObservations; ++obs) {
    // Observer A: one atomic scan.
    {
      const std::vector<SensorState> view = table.scan(kMonitor);
      for (std::size_t i = 2; i <= kSensors; ++i) {
        if (view[i].version > view[i - 1].version) ++atomic_violations;
      }
    }
    // Observer B: a deliberately torn view — component i taken from its own
    // separate scan, with time passing in between.
    {
      std::vector<SensorState> torn(kProcesses);
      for (std::size_t i = 1; i <= kSensors; ++i) {
        torn[i] = table.scan(kMonitor)[i];
        std::this_thread::yield();
      }
      for (std::size_t i = 2; i <= kSensors; ++i) {
        if (torn[i].version > torn[i - 1].version) ++torn_violations;
      }
    }
  }
  stop.store(true, std::memory_order_release);

  std::printf("chain invariant v1 >= v2 >= ... >= v%zu, %d observations:\n",
              kSensors, kObservations);
  std::printf("  atomic scan:   %llu violations\n",
              static_cast<unsigned long long>(atomic_violations));
  std::printf("  torn collect:  %llu violations (nonzero expected — "
              "components read at different instants)\n",
              static_cast<unsigned long long>(torn_violations));
  if (atomic_violations != 0) {
    std::printf("ATOMIC SCAN VIOLATED THE INVARIANT — this must never "
                "print\n");
    return 1;
  }
  return 0;
}
