// Immediate snapshots: concurrency that arrives in ordered "levels".
//
//   build/examples/immediate_levels
//
// Each thread performs ONE write_read on a shared immediate snapshot
// (core::ImmediateSnapshot, the Borowsky-Gafni construction layered on
// this paper's machinery). The returned views always form a chain under
// set inclusion, and whenever you appear in my view, your whole view is
// inside mine (immediacy) — as if the processes had arrived in discrete
// batches, even though they ran fully concurrently.
#include <algorithm>
#include <cstdio>
#include <set>
#include <thread>
#include <vector>

#include "core/immediate_snapshot.hpp"

int main() {
  constexpr std::size_t kN = 6;
  asnap::core::ImmediateSnapshot<std::uint64_t> snap(kN);
  using View = std::vector<asnap::core::ImmediateSnapshot<std::uint64_t>::Entry>;

  std::vector<View> views(kN);
  {
    std::vector<std::jthread> threads;
    for (std::size_t p = 0; p < kN; ++p) {
      threads.emplace_back([&snap, &views, p] {
        views[p] =
            snap.write_read(static_cast<asnap::ProcessId>(p), 100 + p);
      });
    }
  }

  // Sort processes by view size: inclusion makes this a chain.
  std::vector<std::size_t> order(kN);
  for (std::size_t i = 0; i < kN; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return views[a].size() < views[b].size();
  });

  std::printf("views form an inclusion chain (batched arrival order):\n");
  for (const std::size_t p : order) {
    std::printf("  P%zu saw %zu participant(s): {", p, views[p].size());
    for (const auto& e : views[p]) std::printf(" P%u", e.pid);
    std::printf(" }\n");
  }

  // Verify the chain + immediacy, loudly.
  for (std::size_t a = 0; a < kN; ++a) {
    std::set<asnap::ProcessId> sa;
    for (const auto& e : views[a]) sa.insert(e.pid);
    for (std::size_t b = 0; b < kN; ++b) {
      std::set<asnap::ProcessId> sb;
      for (const auto& e : views[b]) sb.insert(e.pid);
      const bool ab = std::includes(sb.begin(), sb.end(), sa.begin(), sa.end());
      const bool ba = std::includes(sa.begin(), sa.end(), sb.begin(), sb.end());
      if (!ab && !ba) {
        std::printf("CONTAINMENT VIOLATED — must never print\n");
        return 1;
      }
      if (sa.count(static_cast<asnap::ProcessId>(b)) && !ba) {
        std::printf("IMMEDIACY VIOLATED — must never print\n");
        return 1;
      }
    }
  }
  std::printf("containment and immediacy verified for all %zu views.\n", kN);
  return 0;
}
