// Experiment E10c — algorithm x workload-mix matrix.
//
// Sweeps the scan fraction from update-only to scan-only for each snapshot
// implementation and reports ops/sec. Key shapes:
//  * Figure 2/3 updates embed a scan, so update-heavy mixes cost the same
//    O(n) as scan-heavy ones — unusual for register objects;
//  * the double-collect baseline has O(1) updates but pays for it with
//    starving scans as the update fraction grows.
#include <benchmark/benchmark.h>

#include <cstdint>

#include "bench_util.hpp"
#include "core/snapshot.hpp"

namespace {

using namespace asnap;

constexpr std::size_t kN = 8;

template <typename Snap, typename Update, typename Scan>
void mix_loop(benchmark::State& state, Snap& snap, const Update& update,
              const Scan& scan) {
  const auto scan_percent = static_cast<unsigned>(state.range(0));
  Rng rng(7);
  std::uint64_t it = 0;
  for (auto _ : state) {
    if (rng.below(100) < scan_percent) {
      scan(snap);
    } else {
      update(snap, ++it);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["scan_pct"] = static_cast<double>(scan_percent);
}

#define DEFINE_MIX_BENCH(NAME, SNAP_DECL, UPDATE, SCAN)                  \
  void NAME(benchmark::State& state) {                                   \
    SNAP_DECL;                                                            \
    mix_loop(state, snap, UPDATE, SCAN);                                  \
  }                                                                       \
  BENCHMARK(NAME)->Arg(0)->Arg(25)->Arg(50)->Arg(75)->Arg(100)

DEFINE_MIX_BENCH(
    BM_Mix_Unbounded, core::UnboundedSwSnapshot<std::uint64_t> snap(kN, 0),
    [](auto& s, std::uint64_t i) { s.update(0, i); },
    [](auto& s) { benchmark::DoNotOptimize(s.scan(0)); });

DEFINE_MIX_BENCH(
    BM_Mix_Bounded, core::BoundedSwSnapshot<std::uint64_t> snap(kN, 0),
    [](auto& s, std::uint64_t i) { s.update(0, i); },
    [](auto& s) { benchmark::DoNotOptimize(s.scan(0)); });

DEFINE_MIX_BENCH(
    BM_Mix_MultiWriter,
    core::BoundedMwSnapshot<std::uint64_t> snap(kN, kN, 0),
    [](auto& s, std::uint64_t i) { s.update(0, i % kN, i); },
    [](auto& s) { benchmark::DoNotOptimize(s.scan(0)); });

DEFINE_MIX_BENCH(
    BM_Mix_Mutex, core::MutexSnapshot<std::uint64_t> snap(kN, 0),
    [](auto& s, std::uint64_t i) { s.update(0, i); },
    [](auto& s) { benchmark::DoNotOptimize(s.scan(0)); });

DEFINE_MIX_BENCH(
    BM_Mix_Seqlock, core::SeqlockSnapshot<std::uint64_t> snap(kN, 0),
    [](auto& s, std::uint64_t i) { s.update(0, i); },
    [](auto& s) { benchmark::DoNotOptimize(s.scan(0)); });

DEFINE_MIX_BENCH(
    BM_Mix_DoubleCollect,
    core::DoubleCollectSnapshot<std::uint64_t> snap(kN, 0),
    [](auto& s, std::uint64_t i) { s.update(0, i); },
    [](auto& s) { benchmark::DoNotOptimize(s.scan(0)); });

}  // namespace

BENCHMARK_MAIN();
