// Extension bench — the one-shot immediate snapshot (Borowsky-Gafni) next
// to this paper's objects: steps per write_read as n grows (O(n^2) level
// descent in the worst arrival order, O(n) for the last arrival), compared
// with the cost of the nearest Figure-3 equivalent (update + scan), which
// provides strictly weaker ordering (no immediacy).
#include <cstdint>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "common/instrumentation.hpp"
#include "core/bounded_sw_snapshot.hpp"
#include "core/immediate_snapshot.hpp"

namespace {

using namespace asnap;

}  // namespace

int main() {
  std::printf("%6s %22s %22s %26s\n", "n", "first_arrival_steps",
              "last_arrival_steps", "fig3_update_plus_scan");
  std::vector<double> xs;
  std::vector<double> first_steps;
  for (const std::size_t n : {2u, 4u, 8u, 16u, 32u, 64u}) {
    core::ImmediateSnapshot<std::uint64_t> snap(n);

    // First arrival: must descend all the way from level n+1 to 1 —
    // the worst case of the level-descent loop.
    StepMeter meter;
    (void)snap.write_read(0, 0);
    const double first = static_cast<double>(meter.elapsed().total());

    // Fill in everyone else but the last...
    for (std::size_t p = 1; p + 1 < n; ++p) {
      (void)snap.write_read(static_cast<ProcessId>(p), p);
    }
    // ...whose write_read stops at a high level immediately.
    meter.reset();
    (void)snap.write_read(static_cast<ProcessId>(n - 1), n - 1);
    const double last = static_cast<double>(meter.elapsed().total());

    core::BoundedSwSnapshot<std::uint64_t> fig3(n, 0);
    meter.reset();
    fig3.update(0, 1);
    (void)fig3.scan(0);
    const double pair = static_cast<double>(meter.elapsed().total());

    std::printf("%6zu %22.0f %22.0f %26.0f\n", n, first, last, pair);
    xs.push_back(static_cast<double>(n));
    first_steps.push_back(first);
  }
  std::printf(
      "first-arrival exponent ~ n^%.2f (level descent: O(n^2) worst case, "
      "same class as the paper's scans; immediacy costs no extra "
      "asymptotics)\n",
      asnap::bench::fitted_exponent(xs, first_steps));
  return 0;
}
