// Ablation bench — rounds-to-decision of the snapshot-based randomized
// consensus (apps/consensus.hpp) as the process count grows, for agreeing
// and split proposals. Termination is probabilistic; the paper's snapshot
// object is what makes each round's adopt-commit safe. Expected shape:
// unanimous proposals decide in <= 2 rounds; split proposals decide in a
// small number of rounds that grows mildly with n (coin-flip convergence).
#include <cstdint>
#include <cstdio>
#include <thread>
#include <vector>

#include "apps/consensus.hpp"
#include "common/rng.hpp"

namespace {

using namespace asnap;

struct Trial {
  double mean_rounds;
  std::size_t max_rounds;
};

Trial run_trials(std::size_t n, bool split, int trials) {
  std::uint64_t total_rounds = 0;
  std::size_t max_rounds = 0;
  for (int t = 0; t < trials; ++t) {
    apps::SnapshotConsensus consensus(n);
    std::vector<apps::SnapshotConsensus::Result> results(n);
    {
      std::vector<std::jthread> threads;
      for (std::size_t p = 0; p < n; ++p) {
        const bool proposal = split ? (p % 2 == 0) : true;
        threads.emplace_back([&, p, proposal] {
          Rng rng(static_cast<std::uint64_t>(t) * 7919 + p);
          results[p] =
              consensus.decide(static_cast<ProcessId>(p), proposal, rng);
        });
      }
    }
    for (const auto& r : results) {
      total_rounds += r.rounds_used;
      max_rounds = std::max(max_rounds, r.rounds_used);
    }
  }
  return Trial{static_cast<double>(total_rounds) /
                   (static_cast<double>(trials) * static_cast<double>(n)),
               max_rounds};
}

}  // namespace

int main() {
  constexpr int kTrials = 30;
  std::printf("%4s %22s %22s\n", "n", "unanimous(mean/max)", "split(mean/max)");
  for (const std::size_t n : {2u, 3u, 4u, 6u, 8u}) {
    const Trial unanimous = run_trials(n, /*split=*/false, kTrials);
    const Trial split = run_trials(n, /*split=*/true, kTrials);
    std::printf("%4zu %15.2f / %-4zu %15.2f / %-4zu\n", n,
                unanimous.mean_rounds, unanimous.max_rounds, split.mean_rounds,
                split.max_rounds);
  }
  return 0;
}
