// Experiment E10b — scan latency distribution under updater interference.
//
// The wait-free bound is about tails: a seqlock's or double-collect scan's
// MEAN is fine, but its tail is unbounded under sustained updates, while the
// paper algorithms' p99/max stay within the n^2 step budget. Reports
// p50/p99/max over 2000 scans per algorithm, with n-1 background updaters.
//
// Flags: --samples <n> overrides the 2000 scans per algorithm;
//        --trace <path> records a protocol trace of the whole run
//        (Chrome JSON, or JSONL if the path ends in .jsonl) for
//        tools/trace_analyze and Perfetto.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_util.hpp"
#include "core/snapshot.hpp"
#include "trace/exporter.hpp"

namespace {

using namespace asnap;
using Clock = std::chrono::steady_clock;

struct LatencyStats {
  double p50_us;
  double p99_us;
  double max_us;
  double failures;  ///< budgeted scans that gave up (non-wait-free only)
};

template <typename ScanFn>
LatencyStats measure_latency(const ScanFn& scan_once, int samples) {
  std::vector<double> micros;
  micros.reserve(static_cast<std::size_t>(samples));
  double failures = 0;
  for (int i = 0; i < samples; ++i) {
    const auto start = Clock::now();
    if (!scan_once()) ++failures;
    const auto stop = Clock::now();
    micros.push_back(
        std::chrono::duration<double, std::micro>(stop - start).count());
  }
  std::sort(micros.begin(), micros.end());
  const auto at = [&](double q) {
    return micros[static_cast<std::size_t>(q * (micros.size() - 1))];
  };
  return LatencyStats{at(0.50), at(0.99), micros.back(), failures};
}

void report(const char* name, const LatencyStats& s) {
  std::printf("%-26s %10.2f %10.2f %10.2f %10.0f\n", name, s.p50_us, s.p99_us,
              s.max_us, s.failures);
  bench::JsonWriter("E10b-latency")
      .field("algorithm", name)
      .field("p50_us", s.p50_us)
      .field("p99_us", s.p99_us)
      .field("max_us", s.max_us)
      .field("give_ups", s.failures)
      .print();
}

}  // namespace

int main(int argc, char** argv) {
  constexpr std::size_t kN = 8;
  constexpr std::size_t kBudget = 3 * kN;  // generous budget for baselines

  const std::string trace_path = bench::consume_flag(argc, argv, "--trace");
  const std::string samples_arg =
      bench::consume_flag(argc, argv, "--samples", "2000");
  const int kSamples = std::atoi(samples_arg.c_str());
  if (kSamples <= 0) {
    std::fprintf(stderr, "bad --samples value: %s\n", samples_arg.c_str());
    return 2;
  }
  trace::Session trace_session(trace_path);

  std::printf("%-26s %10s %10s %10s %10s   (n=%zu, %d scans, %zu updaters)\n",
              "algorithm", "p50_us", "p99_us", "max_us", "give-ups", kN,
              kSamples, kN - 1);

  {
    core::UnboundedSwSnapshot<std::uint64_t> snap(kN, 0);
    bench::InterferencePool pool(
        1, kN - 1,
        [&snap](ProcessId pid, std::uint64_t i) { snap.update(pid, i); });
    report("Fig2 unbounded SW", measure_latency(
        [&] {
          (void)snap.scan(0);
          return true;
        },
        kSamples));
  }
  {
    core::BoundedSwSnapshot<std::uint64_t> snap(kN, 0);
    bench::InterferencePool pool(
        1, kN - 1,
        [&snap](ProcessId pid, std::uint64_t i) { snap.update(pid, i); });
    report("Fig3 bounded SW", measure_latency(
        [&] {
          (void)snap.scan(0);
          return true;
        },
        kSamples));
  }
  {
    core::BoundedMwSnapshot<std::uint64_t> snap(kN, kN, 0);
    bench::InterferencePool pool(1, kN - 1,
                                 [&snap](ProcessId pid, std::uint64_t i) {
                                   snap.update(pid, i % kN, i);
                                 });
    report("Fig4 bounded MW", measure_latency(
        [&] {
          (void)snap.scan(0);
          return true;
        },
        kSamples));
  }
  {
    core::MvccSnapshot<std::uint64_t> snap(kN, 0);
    bench::InterferencePool pool(
        1, kN - 1,
        [&snap](ProcessId pid, std::uint64_t i) { snap.update(pid, i); });
    report("A4 mvcc (copy)", measure_latency(
        [&] {
          (void)snap.scan(0);
          return true;
        },
        kSamples));
    report("A4 mvcc (leased)", measure_latency(
        [&] {
          auto view = snap.scan_view();
          return !view->empty();
        },
        kSamples));
  }
  {
    core::MutexSnapshot<std::uint64_t> snap(kN, 0);
    bench::InterferencePool pool(
        1, kN - 1,
        [&snap](ProcessId pid, std::uint64_t i) { snap.update(pid, i); });
    report("mutex baseline", measure_latency(
        [&] {
          (void)snap.scan(0);
          return true;
        },
        kSamples));
  }
  {
    core::SeqlockSnapshot<std::uint64_t> snap(kN, 0);
    bench::InterferencePool pool(
        1, kN - 1,
        [&snap](ProcessId pid, std::uint64_t i) { snap.update(pid, i); });
    std::vector<std::uint64_t> out;
    report("seqlock (budgeted)", measure_latency(
        [&] { return snap.try_scan(0, kBudget, out); }, kSamples));
  }
  {
    core::DoubleCollectSnapshot<std::uint64_t> snap(kN, 0);
    bench::InterferencePool pool(
        1, kN - 1,
        [&snap](ProcessId pid, std::uint64_t i) { snap.update(pid, i); });
    std::vector<std::uint64_t> out;
    report("double-collect (budgeted)", measure_latency(
        [&] { return snap.try_scan(0, kBudget, out); }, kSamples));
  }

  std::printf("\nGive-ups are scans that exhausted a %zu-double-collect "
              "budget — impossible for the wait-free algorithms, whose "
              "budget is n+1 (resp. 2n+1) by Lemma 3.4/4.4.\n", kBudget);
  return 0;
}
