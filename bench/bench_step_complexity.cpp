// Experiment E5 — Lemmas 3.4 / 4.4: every scan and update completes within
// O(n^2) primitive register operations.
//
// Two series per algorithm:
//   * solo:        uncontended operations — one double collect, so steps
//                  grow LINEARLY in n (measured exponent ~1);
//   * adversarial: a deterministic starvation schedule (sched::StarvePolicy)
//                  forces the maximum number of failed double collects, so
//                  worst-case steps grow QUADRATICALLY in n (measured
//                  exponent ~2) — and, critically, NOT with the run length:
//                  the adversary can retry the scanner only n+1 (resp. 2n+1)
//                  times before a borrowed view ends the scan.
//
// Output: one table per algorithm plus fitted log-log exponents.
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/instrumentation.hpp"
#include "core/bounded_mw_snapshot.hpp"
#include "core/bounded_sw_snapshot.hpp"
#include "core/unbounded_sw_snapshot.hpp"
#include "sched/policies.hpp"
#include "sched/scheduler.hpp"

namespace {

using namespace asnap;

struct Row {
  std::size_t n;
  double solo_scan;
  double solo_update;
  double adversarial_scan;
  std::uint64_t double_collects;
};

/// Worst-case scan steps under the tight scripted adversary: one solo
/// update by a fresh mover lands between the two collects of every attempt
/// (the schedule from the pigeonhole bound's tightness argument).
template <typename Snap, typename MakeSnap, typename UpdateOnce>
std::pair<double, std::uint64_t> adversarial_scan_steps(
    std::size_t n, const MakeSnap& make, const UpdateOnce& update_once,
    const sched::ScriptedAdversaryPolicy::Script& script_shape) {
  auto snap = make(n);
  std::atomic<bool> scanner_done{false};
  StepCounters scan_steps;
  std::uint64_t double_collects = 0;

  auto scanner = [&] {
    StepMeter meter;
    (void)snap->scan(0);
    scan_steps = meter.elapsed();
    double_collects = snap->stats(0).max_double_collects;
    scanner_done.store(true, std::memory_order_relaxed);
  };
  std::vector<std::function<void()>> bodies;
  bodies.push_back(scanner);
  for (std::size_t p = 1; p < n; ++p) {
    bodies.push_back([&, pid = static_cast<ProcessId>(p)] {
      std::uint64_t it = 0;
      while (!scanner_done.load(std::memory_order_relaxed)) {
        update_once(*snap, pid, ++it);
      }
    });
  }
  sched::ScriptedAdversaryPolicy policy(script_shape);
  sched::SimScheduler scheduler(policy);
  scheduler.run(std::move(bodies));
  return {static_cast<double>(scan_steps.total()), double_collects};
}

/// Script for the single-writer algorithms: movers 1..n-1 then a repeat.
sched::ScriptedAdversaryPolicy::Script sw_script(std::size_t n,
                                                 std::size_t attempt_steps,
                                                 std::size_t inject_offset,
                                                 std::size_t update_steps) {
  sched::ScriptedAdversaryPolicy::Script s;
  s.scanner = 0;
  s.attempt_steps = attempt_steps;
  s.inject_offset = inject_offset;
  s.update_steps = update_steps;
  for (std::size_t p = 1; p < n; ++p) s.movers.push_back(p);
  s.movers.push_back(1);
  return s;
}

/// Script for the multi-writer algorithm: each mover must move three times.
sched::ScriptedAdversaryPolicy::Script mw_script(std::size_t n) {
  sched::ScriptedAdversaryPolicy::Script s;
  s.scanner = 0;
  s.attempt_steps = 5 * n;
  s.inject_offset = 3 * n;
  s.update_steps = 7 * n + 2;
  for (int round = 0; round < 2; ++round) {
    for (std::size_t p = 1; p < n; ++p) s.movers.push_back(p);
  }
  s.movers.push_back(1);
  return s;
}

template <typename Snap, typename MakeSnap, typename UpdateOnce,
          typename ScriptFor>
void run_series(const char* name, const MakeSnap& make,
                const UpdateOnce& update_once, const ScriptFor& script_for,
                const std::vector<std::size_t>& ns) {
  std::printf("\n== %s ==\n", name);
  std::printf("%6s %14s %14s %18s %16s\n", "n", "solo_scan", "solo_update",
              "worstcase_scan", "double_collects");
  std::vector<double> xs;
  std::vector<double> solo;
  std::vector<double> adv;
  for (const std::size_t n : ns) {
    Row row{n, 0, 0, 0, 0};
    {
      auto snap = make(n);
      constexpr int kOps = 50;
      StepMeter meter;
      for (int i = 0; i < kOps; ++i) (void)snap->scan(0);
      row.solo_scan =
          static_cast<double>(meter.elapsed().total()) / kOps;
      meter.reset();
      for (int i = 0; i < kOps; ++i) update_once(*snap, 0, i + 1);
      row.solo_update =
          static_cast<double>(meter.elapsed().total()) / kOps;
    }
    const auto [adv_steps, collects] =
        adversarial_scan_steps<Snap>(n, make, update_once, script_for(n));
    row.adversarial_scan = adv_steps;
    row.double_collects = collects;

    std::printf("%6zu %14.1f %14.1f %18.1f %16llu\n", row.n, row.solo_scan,
                row.solo_update, row.adversarial_scan,
                static_cast<unsigned long long>(row.double_collects));
    xs.push_back(static_cast<double>(n));
    solo.push_back(row.solo_scan);
    adv.push_back(row.adversarial_scan);
  }
  std::printf("fitted exponent: solo_scan ~ n^%.2f, worstcase_scan ~ n^%.2f "
              "(paper: O(n) uncontended, O(n^2) worst case)\n",
              asnap::bench::fitted_exponent(xs, solo),
              asnap::bench::fitted_exponent(xs, adv));
}

}  // namespace

int main() {
  const std::vector<std::size_t> ns{2, 4, 8, 16, 32};

  using Unbounded = core::UnboundedSwSnapshot<std::uint64_t>;
  run_series<Unbounded>(
      "Figure 2: unbounded single-writer",
      [](std::size_t n) { return std::make_unique<Unbounded>(n, 0); },
      [](Unbounded& s, ProcessId pid, std::uint64_t it) { s.update(pid, it); },
      [](std::size_t n) { return sw_script(n, 2 * n, n, 2 * n + 1); }, ns);

  using Bounded = core::BoundedSwSnapshot<std::uint64_t>;
  run_series<Bounded>(
      "Figure 3: bounded single-writer",
      [](std::size_t n) { return std::make_unique<Bounded>(n, 0); },
      [](Bounded& s, ProcessId pid, std::uint64_t it) { s.update(pid, it); },
      [](std::size_t n) { return sw_script(n, 4 * n, 3 * n, 5 * n + 1); }, ns);

  using Multi = core::BoundedMwSnapshot<std::uint64_t>;
  run_series<Multi>(
      "Figure 4: bounded multi-writer (m = n)",
      [](std::size_t n) { return std::make_unique<Multi>(n, n, 0); },
      [](Multi& s, ProcessId pid, std::uint64_t it) {
        s.update(pid, pid % s.words(), it);  // own word: clean attribution
      },
      [](std::size_t n) { return mw_script(n); }, ns);

  return 0;
}
