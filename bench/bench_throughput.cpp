// Experiment E10a — throughput of the paper's wait-free algorithms against
// the practical baselines (mutex, seqlock, Observation-1-only double
// collect) on mixed update/scan workloads. The wait-free algorithms pay
// O(n)-O(n^2) per operation for their termination guarantee; the point of
// this series is to quantify that premium and to show the baselines' cheap
// numbers come with starvation (seqlock/double-collect) or blocking (mutex)
// caveats that E6 makes concrete.
// Flags: --trace <path> records a protocol trace of the whole run (consumed
// before google-benchmark sees argv); everything else is google-benchmark's.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>

#include "bench_util.hpp"
#include "core/snapshot.hpp"
#include "trace/exporter.hpp"

namespace {

using namespace asnap;

constexpr std::size_t kN = 8;  // processes (words == kN everywhere)

template <typename Snap>
void run_mixed(benchmark::State& state, Snap& snap, unsigned scan_percent) {
  Rng rng(42);
  std::uint64_t it = 0;
  for (auto _ : state) {
    if (rng.below(100) < scan_percent) {
      benchmark::DoNotOptimize(snap.scan(0));
    } else {
      snap.update(0, ++it);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_Throughput_Unbounded(benchmark::State& state) {
  core::UnboundedSwSnapshot<std::uint64_t> snap(kN, 0);
  bench::InterferencePool pool(
      1, kN - 1,
      [&snap](ProcessId pid, std::uint64_t i) { snap.update(pid, i); });
  run_mixed(state, snap, static_cast<unsigned>(state.range(0)));
}
BENCHMARK(BM_Throughput_Unbounded)->Arg(10)->Arg(50)->Arg(90);

void BM_Throughput_Bounded(benchmark::State& state) {
  core::BoundedSwSnapshot<std::uint64_t> snap(kN, 0);
  bench::InterferencePool pool(
      1, kN - 1,
      [&snap](ProcessId pid, std::uint64_t i) { snap.update(pid, i); });
  run_mixed(state, snap, static_cast<unsigned>(state.range(0)));
}
BENCHMARK(BM_Throughput_Bounded)->Arg(10)->Arg(50)->Arg(90);

void BM_Throughput_Mvcc(benchmark::State& state) {
  core::MvccSnapshot<std::uint64_t> snap(kN, 0);
  bench::InterferencePool pool(
      1, kN - 1,
      [&snap](ProcessId pid, std::uint64_t i) { snap.update(pid, i); });
  run_mixed(state, snap, static_cast<unsigned>(state.range(0)));
}
BENCHMARK(BM_Throughput_Mvcc)->Arg(10)->Arg(50)->Arg(90);

void BM_Throughput_MultiWriter(benchmark::State& state) {
  core::BoundedMwSnapshot<std::uint64_t> snap(kN, kN, 0);
  bench::InterferencePool pool(1, kN - 1,
                               [&snap](ProcessId pid, std::uint64_t i) {
                                 snap.update(pid, i % kN, i);
                               });
  Rng rng(42);
  std::uint64_t it = 0;
  const auto scan_percent = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    if (rng.below(100) < scan_percent) {
      benchmark::DoNotOptimize(snap.scan(0));
    } else {
      ++it;
      snap.update(0, it % kN, it);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Throughput_MultiWriter)->Arg(10)->Arg(50)->Arg(90);

void BM_Throughput_Mutex(benchmark::State& state) {
  core::MutexSnapshot<std::uint64_t> snap(kN, 0);
  bench::InterferencePool pool(
      1, kN - 1,
      [&snap](ProcessId pid, std::uint64_t i) { snap.update(pid, i); });
  run_mixed(state, snap, static_cast<unsigned>(state.range(0)));
}
BENCHMARK(BM_Throughput_Mutex)->Arg(10)->Arg(50)->Arg(90);

void BM_Throughput_Seqlock(benchmark::State& state) {
  core::SeqlockSnapshot<std::uint64_t> snap(kN, 0);
  bench::InterferencePool pool(
      1, kN - 1,
      [&snap](ProcessId pid, std::uint64_t i) { snap.update(pid, i); });
  run_mixed(state, snap, static_cast<unsigned>(state.range(0)));
}
BENCHMARK(BM_Throughput_Seqlock)->Arg(10)->Arg(50)->Arg(90);

void BM_Throughput_DoubleCollect(benchmark::State& state) {
  core::DoubleCollectSnapshot<std::uint64_t> snap(kN, 0);
  bench::InterferencePool pool(
      1, kN - 1,
      [&snap](ProcessId pid, std::uint64_t i) { snap.update(pid, i); });
  run_mixed(state, snap, static_cast<unsigned>(state.range(0)));
}
BENCHMARK(BM_Throughput_DoubleCollect)->Arg(10)->Arg(50)->Arg(90);

}  // namespace

int main(int argc, char** argv) {
  const std::string trace_path =
      asnap::bench::consume_flag(argc, argv, "--trace");
  asnap::trace::Session trace_session(trace_path);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
