// Experiment E8 — boundedness (the point of Section 4).
//
// Figure 2's registers carry an unbounded integer sequence number: after L
// updates the seq field needs ceil(log2(L+1)) bits, growing with run length
// without bound. Figure 3's registers carry exactly n handshake bits + 1
// toggle bit of protocol state regardless of run length. This bench runs
// increasing workloads and reports the measured protocol-state width of
// both algorithms' registers (value and view payload excluded in both
// cases, as they are identical).
#include <cmath>
#include <cstdint>
#include <cstdio>

#include "core/bounded_sw_snapshot.hpp"
#include "core/unbounded_sw_snapshot.hpp"

namespace {

using namespace asnap;

std::uint64_t bits_for(std::uint64_t value) {
  std::uint64_t bits = 1;
  while ((value >> bits) != 0) ++bits;
  return bits;
}

}  // namespace

int main() {
  constexpr std::size_t kN = 4;
  std::printf("%12s %26s %26s\n", "run_length",
              "fig2_protocol_bits (seq)", "fig3_protocol_bits (n+1)");
  for (const std::uint64_t updates :
       {100ULL, 1000ULL, 10000ULL, 100000ULL, 1000000ULL}) {
    core::UnboundedSwSnapshot<std::uint64_t> unbounded(kN, 0);
    core::BoundedSwSnapshot<std::uint64_t> bounded(kN, 0);
    for (std::uint64_t i = 1; i <= updates; ++i) {
      unbounded.update(0, i);
      bounded.update(0, i);
    }
    // Figure 2: the register's seq field equals the number of updates the
    // owner performed (read back through stats; the register holds it too).
    const std::uint64_t seq = unbounded.stats(0).updates;
    std::printf("%12llu %26llu %26zu\n",
                static_cast<unsigned long long>(updates),
                static_cast<unsigned long long>(bits_for(seq)), kN + 1);
  }
  std::printf("\nFigure 2 register width grows as log2(run length); "
              "Figure 3 is flat at n+1 bits — the boundedness claim.\n");
  return 0;
}
