// Experiment E6 — the pigeonhole termination bound.
//
// Under a deterministic starvation schedule (the scanner gets one step in
// seven), every scan of the paper's algorithms still terminates, and the
// number of double collects it needed never exceeds the paper's bound:
// n+1 for the single-writer algorithms (Section 3), 2n+1 for the
// multi-writer algorithm (Section 5).
//
// The same schedule starves the Observation-1-only baseline indefinitely:
// its budgeted scan keeps failing even with budgets far above n+1 — the
// measured difference between lock-freedom and wait-freedom.
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "core/baselines/double_collect_snapshot.hpp"
#include "core/bounded_mw_snapshot.hpp"
#include "core/bounded_sw_snapshot.hpp"
#include "core/unbounded_sw_snapshot.hpp"
#include "sched/policies.hpp"
#include "sched/scheduler.hpp"

namespace {

using namespace asnap;

/// Runs one scan against updaters under the given policy; returns
/// (double collects used, borrowed?).
template <typename Snap, typename UpdateOnce>
std::pair<std::uint64_t, bool> scan_under(sched::Policy& policy, Snap& snap,
                                          std::size_t n,
                                          const UpdateOnce& update_once) {
  std::atomic<bool> scanner_done{false};
  std::vector<std::function<void()>> bodies;
  bodies.push_back([&] {
    (void)snap.scan(0);
    scanner_done.store(true, std::memory_order_relaxed);
  });
  for (std::size_t p = 1; p < n; ++p) {
    bodies.push_back([&, pid = static_cast<ProcessId>(p)] {
      std::uint64_t it = 0;
      while (!scanner_done.load(std::memory_order_relaxed)) {
        update_once(snap, pid, ++it);
      }
    });
  }
  sched::SimScheduler scheduler(policy);
  scheduler.run(std::move(bodies));
  return {snap.stats(0).max_double_collects,
          snap.stats(0).borrowed_views > 0};
}

sched::ScriptedAdversaryPolicy::Script sw_script(std::size_t n,
                                                 std::size_t attempt_steps,
                                                 std::size_t inject_offset,
                                                 std::size_t update_steps) {
  sched::ScriptedAdversaryPolicy::Script s;
  s.scanner = 0;
  s.attempt_steps = attempt_steps;
  s.inject_offset = inject_offset;
  s.update_steps = update_steps;
  for (std::size_t p = 1; p < n; ++p) s.movers.push_back(p);
  s.movers.push_back(1);
  return s;
}

template <typename Snap, typename MakeSnap, typename UpdateOnce,
          typename MakeScript>
void row(const char* name, std::size_t n, std::size_t bound,
         const MakeSnap& make, const UpdateOnce& update_once,
         const MakeScript& make_script) {
  auto snap_starved = make(n);
  sched::StarvePolicy starve(0, 7);
  const auto [starved, starved_borrow] =
      scan_under(starve, *snap_starved, n, update_once);

  auto snap_scripted = make(n);
  sched::ScriptedAdversaryPolicy scripted(make_script(n));
  const auto [tight, tight_borrow] =
      scan_under(scripted, *snap_scripted, n, update_once);

  std::printf("%-22s %4zu %10llu %16llu %8zu %8s\n", name, n,
              static_cast<unsigned long long>(starved),
              static_cast<unsigned long long>(tight), bound,
              tight_borrow || starved_borrow ? "yes" : "no");
  bench::JsonWriter("E6-pigeonhole")
      .field("algorithm", name)
      .field("n", n)
      .field("starved_double_collects", starved)
      .field("adversary_double_collects", tight)
      .field("bound", bound)
      .field("borrowed", tight_borrow || starved_borrow)
      .print();
}

}  // namespace

int main() {
  std::printf("%-22s %4s %10s %16s %8s %8s\n", "algorithm", "n", "starved",
              "tight_adversary", "bound", "borrow");
  for (const std::size_t n : {2u, 3u, 4u, 6u, 8u, 12u, 16u}) {
    row<core::UnboundedSwSnapshot<std::uint64_t>>(
        "Fig2 unbounded SW", n, n + 1,
        [](std::size_t k) {
          return std::make_unique<core::UnboundedSwSnapshot<std::uint64_t>>(k,
                                                                            0);
        },
        [](auto& s, ProcessId pid, std::uint64_t it) { s.update(pid, it); },
        [](std::size_t k) { return sw_script(k, 2 * k, k, 2 * k + 1); });
    row<core::BoundedSwSnapshot<std::uint64_t>>(
        "Fig3 bounded SW", n, n + 1,
        [](std::size_t k) {
          return std::make_unique<core::BoundedSwSnapshot<std::uint64_t>>(k,
                                                                          0);
        },
        [](auto& s, ProcessId pid, std::uint64_t it) { s.update(pid, it); },
        [](std::size_t k) { return sw_script(k, 4 * k, 3 * k, 5 * k + 1); });
    row<core::BoundedMwSnapshot<std::uint64_t>>(
        "Fig4 bounded MW", n, 2 * n + 1,
        [](std::size_t k) {
          return std::make_unique<core::BoundedMwSnapshot<std::uint64_t>>(k, k,
                                                                          0);
        },
        [](auto& s, ProcessId pid, std::uint64_t it) {
          s.update(pid, pid % s.words(), it);
        },
        [](std::size_t k) {
          sched::ScriptedAdversaryPolicy::Script s;
          s.scanner = 0;
          s.attempt_steps = 5 * k;
          s.inject_offset = 3 * k;
          s.update_steps = 7 * k + 2;
          for (int round = 0; round < 2; ++round) {
            for (std::size_t p = 1; p < k; ++p) s.movers.push_back(p);
          }
          s.movers.push_back(1);
          return s;
        });
  }

  // The non-wait-free baseline under the same adversary: budgeted scans
  // fail at every budget that would have sufficed for the paper algorithms.
  std::printf("\n%-28s %4s %10s %10s\n", "baseline (Observation 1 only)", "n",
              "budget", "result");
  for (const std::size_t n : {2u, 4u, 8u}) {
    for (const std::size_t budget : {n + 1, 4 * n, 16 * n}) {
      core::DoubleCollectSnapshot<std::uint64_t> snap(n, 0);
      std::atomic<bool> scanner_done{false};
      bool ok = false;
      std::vector<std::function<void()>> bodies;
      bodies.push_back([&] {
        std::vector<std::uint64_t> out;
        ok = snap.try_scan(0, budget, out);
        scanner_done.store(true, std::memory_order_relaxed);
      });
      for (std::size_t p = 1; p < n; ++p) {
        bodies.push_back([&, pid = static_cast<ProcessId>(p)] {
          std::uint64_t it = 0;
          while (!scanner_done.load(std::memory_order_relaxed)) {
            snap.update(pid, ++it);
          }
        });
      }
      sched::StarvePolicy policy(0, 7);
      sched::SimScheduler scheduler(policy);
      scheduler.run(std::move(bodies));
      std::printf("%-28s %4zu %10zu %10s\n", "double-collect-only", n, budget,
                  ok ? "SUCCEEDED" : "starved");
    }
  }
  return 0;
}
