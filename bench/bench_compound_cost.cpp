// Experiment E7 — Section 6's compound-cost comparison, traced back to
// single-writer register operations:
//
//   "Our multi-writer algorithm, based on multi-writer registers, in turn
//    implemented from single-writer registers, requires O(n^3) single-writer
//    operations per update or scan operation in the worst case ... [the
//    bounded single-writer algorithm requires O(n^2)]."
//
// We instantiate Figure 4 over reg::VitanyiAwerbuchMwmr (each MWMR op =
// n+1 SWMR ops) and count actual SWMR primitive steps per operation, solo
// and under a deterministic adversarial schedule, next to the bounded
// single-writer algorithm and the direct-MWMR variant. Expected measured
// exponents: SW ~2, compound MW ~3 (adversarial); one factor of n less when
// uncontended.
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "common/instrumentation.hpp"
#include "core/bounded_mw_snapshot.hpp"
#include "core/bounded_sw_snapshot.hpp"
#include "core/layered_mw_snapshot.hpp"
#include "reg/mwmr_register.hpp"
#include "sched/policies.hpp"
#include "sched/scheduler.hpp"

namespace {

using namespace asnap;

template <typename Snap, typename MakeSnap, typename UpdateOnce>
double solo_scan_steps(const MakeSnap& make, const UpdateOnce& update_once,
                       std::size_t n) {
  auto snap = make(n);
  for (std::size_t p = 0; p < n; ++p) update_once(*snap, p, p + 1);
  constexpr int kOps = 20;
  StepMeter meter;
  for (int i = 0; i < kOps; ++i) (void)snap->scan(0);
  return static_cast<double>(meter.elapsed().total()) / kOps;
}

template <typename Snap, typename MakeSnap, typename UpdateOnce>
double adversarial_scan_steps(const MakeSnap& make,
                              const UpdateOnce& update_once, std::size_t n,
                              sched::ScriptedAdversaryPolicy::Script script) {
  auto snap = make(n);
  std::atomic<bool> scanner_done{false};
  StepCounters counters;
  std::vector<std::function<void()>> bodies;
  bodies.push_back([&] {
    StepMeter meter;
    (void)snap->scan(0);
    counters = meter.elapsed();
    scanner_done.store(true, std::memory_order_relaxed);
  });
  for (std::size_t p = 1; p < n; ++p) {
    bodies.push_back([&, pid = static_cast<ProcessId>(p)] {
      std::uint64_t it = 0;
      while (!scanner_done.load(std::memory_order_relaxed)) {
        update_once(*snap, pid, ++it);
      }
    });
  }
  sched::ScriptedAdversaryPolicy policy(std::move(script));
  sched::SimScheduler scheduler(policy);
  scheduler.run(std::move(bodies));
  return static_cast<double>(counters.total());
}

void fill_movers(sched::ScriptedAdversaryPolicy::Script& s, std::size_t n,
                 int rounds_per_mover) {
  for (int round = 0; round < rounds_per_mover; ++round) {
    for (std::size_t p = 1; p < n; ++p) s.movers.push_back(p);
  }
  s.movers.push_back(1);
}

template <typename Snap, typename MakeSnap, typename UpdateOnce,
          typename ScriptFor>
void run_series(const char* name, const MakeSnap& make,
                const UpdateOnce& update_once, const ScriptFor& script_for,
                const std::vector<std::size_t>& ns) {
  std::printf("\n== %s ==\n", name);
  std::printf("%6s %16s %20s\n", "n", "solo_swmr_ops", "worstcase_swmr_ops");
  std::vector<double> xs;
  std::vector<double> solo;
  std::vector<double> adv;
  for (const std::size_t n : ns) {
    const double s = solo_scan_steps<Snap>(make, update_once, n);
    const double a =
        adversarial_scan_steps<Snap>(make, update_once, n, script_for(n));
    std::printf("%6zu %16.1f %20.1f\n", n, s, a);
    xs.push_back(static_cast<double>(n));
    solo.push_back(s);
    adv.push_back(a);
  }
  std::printf("fitted exponent: solo ~ n^%.2f, worstcase ~ n^%.2f\n",
              asnap::bench::fitted_exponent(xs, solo),
              asnap::bench::fitted_exponent(xs, adv));
}

}  // namespace

int main() {
  const std::vector<std::size_t> ns{2, 4, 8, 16, 32};

  using Sw = core::BoundedSwSnapshot<std::uint64_t>;
  run_series<Sw>(
      "Figure 3 bounded SW over SWMR registers (paper: O(n^2) worst case)",
      [](std::size_t n) { return std::make_unique<Sw>(n, 0); },
      [](Sw& s, ProcessId pid, std::uint64_t it) { s.update(pid, it); },
      [](std::size_t n) {
        sched::ScriptedAdversaryPolicy::Script s;
        s.scanner = 0;
        s.attempt_steps = 4 * n;
        s.inject_offset = 3 * n;
        s.update_steps = 5 * n + 1;
        fill_movers(s, n, 1);
        return s;
      },
      ns);

  using MwDirect = core::BoundedMwSnapshot<std::uint64_t,
                                           reg::DirectMwmrRegister>;
  run_series<MwDirect>(
      "Figure 4 MW over native MWMR registers (MWMR ops; O(n^2) worst case)",
      [](std::size_t n) { return std::make_unique<MwDirect>(n, n, 0); },
      [](MwDirect& s, ProcessId pid, std::uint64_t it) {
        s.update(pid, pid % s.words(), it);
      },
      [](std::size_t n) {
        sched::ScriptedAdversaryPolicy::Script s;
        s.scanner = 0;
        s.attempt_steps = 5 * n;
        s.inject_offset = 3 * n;
        s.update_steps = 7 * n + 2;
        fill_movers(s, n, 2);
        return s;
      },
      ns);

  using Layered = core::LayeredMwSnapshot<std::uint64_t>;
  run_series<Layered>(
      "MW layered on Fig3 SW snapshot (UNBOUNDED tags; extension — the "
      "Section 6 open question made concrete: O(n^2) if tags may grow)",
      [](std::size_t n) { return std::make_unique<Layered>(n, n, 0); },
      [](Layered& s, ProcessId pid, std::uint64_t it) {
        s.update(pid, pid % s.words(), it);
      },
      [](std::size_t n) {
        // A layered scan is exactly one Figure-3 scan: same attempt shape.
        // A layered update = one SW scan (4n) + one SW update (5n+1).
        sched::ScriptedAdversaryPolicy::Script s;
        s.scanner = 0;
        s.attempt_steps = 4 * n;
        s.inject_offset = 3 * n;
        s.update_steps = 9 * n + 1;
        fill_movers(s, n, 1);
        return s;
      },
      ns);

  using MwCompound = core::BoundedMwSnapshot<std::uint64_t,
                                             reg::VitanyiAwerbuchMwmr>;
  run_series<MwCompound>(
      "Figure 4 MW over MWMR-from-SWMR (compound; paper: O(n^3) worst case)",
      [](std::size_t n) { return std::make_unique<MwCompound>(n, n, 0); },
      [](MwCompound& s, ProcessId pid, std::uint64_t it) {
        s.update(pid, pid % s.words(), it);
      },
      [](std::size_t n) {
        // In SWMR step units every MWMR word-register op expands to n+1
        // primitive steps (n collect reads + 1 write in the VA protocol):
        // attempt = handshake 2n + two collects 2m(n+1) + h-collect n,
        // update = handshake 2n + embedded scan + view write + VA write.
        sched::ScriptedAdversaryPolicy::Script s;
        const std::size_t m = n;
        const std::size_t attempt = 3 * n + 2 * m * (n + 1);
        s.scanner = 0;
        s.attempt_steps = attempt;
        s.inject_offset = 2 * n + m * (n + 1);  // end of collect a
        s.update_steps = 2 * n + attempt + 1 + (n + 1);
        fill_movers(s, n, 2);
        return s;
      },
      ns);

  return 0;
}
