// Experiment E15-mvcc — the multi-version scan engine head-to-head.
//
// Four engines serve the same kWords-word snapshot under a mixed
// read/write load, swept over read ratio x thread count:
//
//   mvcc-leased : mvcc::VersionGate borrow — one fetch_add acquires a
//                 whole version, the reader touches it in place (A4's
//                 scan_view path). The tens-of-ns wait-free scan.
//   mvcc-copy   : same acquire plus a full copy-out (A4's scan path,
//                 what the svc cache pays on a hit).
//   urcu        : epoch-based URCU baseline (mvcc/urcu_baseline.hpp) —
//                 wait-free-ish reads, but writers block in synchronize()
//                 until every reader quiesces.
//   mutex-cache : the PR-4 design this PR replaces — a generation-stamped
//                 vector copied under std::shared_mutex; fills take the
//                 lock exclusively and block every concurrent hit.
//
// Scan latency is batch-sampled (bursts of 64 reads per timestamp pair, so
// the clock itself does not dominate a ~20 ns operation); p50/p99 are over
// burst means. Each cell also reports read/write throughput, and the mvcc
// engines report gate counters (published/reclaimed/cas retries/refcount
// high water) so reclamation health is visible in the same table.
//
// Flags: --seconds <s> per cell (default 0.3), --threads <csv> (default
// 1,4,16,64), --ratios <csv> (default 0.5,0.9,0.99), --engines <csv>
// subset filter, --trace <path> protocol trace of the whole run.
// Emits one "JSON {...}" line per (engine, ratio, threads) cell —
// scripts/run_experiments.sh collects them into results/mvcc.jsonl.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "mvcc/urcu_baseline.hpp"
#include "mvcc/version_gate.hpp"
#include "trace/exporter.hpp"

namespace {

using namespace asnap;
using Clock = std::chrono::steady_clock;

// 256 words ≈ a multi-shard global view. The payload size is load-bearing
// for the head-to-head: VersionGate versions are immutable, so a reader
// can *borrow* the array (two fetch_adds, size-independent), while the
// copy-under-mutex design must copy it on every hit — the filler mutates
// the cached vector in place, so lending a reference out of the lock would
// be a use-after-write race. The copy (plus its allocation) is intrinsic
// to that design, not an implementation detail.
constexpr std::size_t kWords = 256;
constexpr int kBurst = 64;        ///< reads per latency sample
constexpr int kSampleEvery = 256; ///< ops between latency samples

std::atomic<std::uint64_t> g_sink;  ///< defeats dead-read elimination

struct CellResult {
  double p50_ns = 0;
  double p99_ns = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  double secs = 0;
};

/// Runs `threads` workers for ~secs wall seconds; each worker flips a
/// seeded coin per op: read with probability read_ratio, else write.
/// read_burst(tid) performs kBurst reads and returns a checksum;
/// write_op(tid, i) performs one write.
template <typename ReadBurst, typename WriteOp>
CellResult run_cell(std::size_t threads, double read_ratio, double secs,
                    const ReadBurst& read_burst, const WriteOp& write_op) {
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};
  std::atomic<std::uint64_t> writes{0};
  std::mutex samples_mu;
  std::vector<double> samples;  // ns per read, burst means

  const auto start = Clock::now();
  {
    std::vector<std::jthread> workers;
    for (std::size_t t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        Rng rng(0x5EED + t * 7919);
        std::vector<double> local;
        std::uint64_t my_reads = 0;
        std::uint64_t my_writes = 0;
        std::uint64_t it = 0;
        while (!stop.load(std::memory_order_acquire)) {
          if (rng.chance(read_ratio)) {
            if (++it % kSampleEvery == 0) {
              const auto t0 = Clock::now();
              g_sink.store(read_burst(t), std::memory_order_relaxed);
              const auto t1 = Clock::now();
              local.push_back(
                  std::chrono::duration<double, std::nano>(t1 - t0).count() /
                  kBurst);
            } else {
              g_sink.store(read_burst(t), std::memory_order_relaxed);
            }
            my_reads += kBurst;
          } else {
            write_op(t, ++it);
            ++my_writes;
          }
        }
        reads.fetch_add(my_reads, std::memory_order_relaxed);
        writes.fetch_add(my_writes, std::memory_order_relaxed);
        std::lock_guard lk(samples_mu);
        samples.insert(samples.end(), local.begin(), local.end());
      });
    }
    std::this_thread::sleep_for(std::chrono::duration<double>(secs));
    stop.store(true, std::memory_order_release);
  }
  CellResult r;
  r.secs = std::chrono::duration<double>(Clock::now() - start).count();
  r.reads = reads.load();
  r.writes = writes.load();
  if (!samples.empty()) {
    std::sort(samples.begin(), samples.end());
    const auto at = [&](double q) {
      return samples[static_cast<std::size_t>(q * (samples.size() - 1))];
    };
    r.p50_ns = at(0.50);
    r.p99_ns = at(0.99);
  }
  return r;
}

void report(const char* engine, double ratio, std::size_t threads,
            const CellResult& r, const mvcc::GateStats* gs) {
  std::printf("%-12s %5.2f %7zu %10.1f %10.1f %12.0f %11.0f\n", engine, ratio,
              threads, r.p50_ns, r.p99_ns, r.reads / r.secs,
              r.writes / r.secs);
  bench::JsonWriter json("E15-mvcc");
  json.field("engine", engine)
      .field("read_ratio", ratio)
      .field("threads", static_cast<std::uint64_t>(threads))
      .field("scan_p50_ns", r.p50_ns)
      .field("scan_p99_ns", r.p99_ns)
      .field("reads_per_s", r.reads / r.secs)
      .field("writes_per_s", r.writes / r.secs);
  if (gs != nullptr) {
    json.field("versions_published", gs->published)
        .field("versions_reclaimed", gs->reclaimed)
        .field("cas_retries", gs->cas_retries)
        .field("refcount_high_water", gs->refcount_high_water);
  }
  json.print();
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t comma = s.find(',', pos);
    out.push_back(s.substr(pos, comma - pos));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

bool engine_enabled(const std::vector<std::string>& filter, const char* name) {
  if (filter.empty()) return true;
  for (const auto& f : filter) {
    if (f == name) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string trace_path = bench::consume_flag(argc, argv, "--trace");
  const double secs =
      std::atof(bench::consume_flag(argc, argv, "--seconds", "0.3").c_str());
  const std::string threads_csv =
      bench::consume_flag(argc, argv, "--threads", "1,4,16,64");
  const std::string ratios_csv =
      bench::consume_flag(argc, argv, "--ratios", "0.5,0.9,0.99");
  const std::string engines_csv =
      bench::consume_flag(argc, argv, "--engines", "");
  if (secs <= 0) {
    std::fprintf(stderr, "bad --seconds value\n");
    return 2;
  }
  std::vector<std::size_t> threads_list;
  for (const auto& t : split_csv(threads_csv)) {
    threads_list.push_back(static_cast<std::size_t>(std::atoi(t.c_str())));
  }
  std::vector<double> ratios;
  for (const auto& r : split_csv(ratios_csv)) {
    ratios.push_back(std::atof(r.c_str()));
  }
  const std::vector<std::string> engine_filter =
      engines_csv.empty() ? std::vector<std::string>{} : split_csv(engines_csv);

  trace::Session trace_session(trace_path);

  std::printf("%-12s %5s %7s %10s %10s %12s %11s   (%zu words, %.2fs/cell)\n",
              "engine", "ratio", "threads", "p50_ns", "p99_ns", "reads/s",
              "writes/s", kWords, secs);

  for (const double ratio : ratios) {
    for (const std::size_t threads : threads_list) {
      if (threads == 0) continue;

      if (engine_enabled(engine_filter, "mvcc-leased")) {
        mvcc::VersionGate<std::vector<std::uint64_t>> gate(
            std::vector<std::uint64_t>(kWords, 0), /*trace_id=*/2);
        const auto r = run_cell(
            threads, ratio, secs,
            [&](std::size_t) {
              std::uint64_t sum = 0;
              for (int i = 0; i < kBurst; ++i) {
                auto g = gate.acquire();
                sum += (*g)[0] + (*g)[kWords - 1];
              }
              return sum;
            },
            [&](std::size_t t, std::uint64_t) {
              gate.update_with(
                  [&](std::vector<std::uint64_t>& v) { v[t % kWords] += 1; });
            });
        const auto gs = gate.stats();
        report("mvcc-leased", ratio, threads, r, &gs);
      }

      if (engine_enabled(engine_filter, "mvcc-copy")) {
        mvcc::VersionGate<std::vector<std::uint64_t>> gate(
            std::vector<std::uint64_t>(kWords, 0), /*trace_id=*/3);
        const auto r = run_cell(
            threads, ratio, secs,
            [&](std::size_t) {
              std::uint64_t sum = 0;
              for (int i = 0; i < kBurst; ++i) {
                auto g = gate.acquire();
                const std::vector<std::uint64_t> copy = *g;  // A4 scan()
                sum += copy[0] + copy[kWords - 1];
              }
              return sum;
            },
            [&](std::size_t t, std::uint64_t) {
              gate.update_with(
                  [&](std::vector<std::uint64_t>& v) { v[t % kWords] += 1; });
            });
        const auto gs = gate.stats();
        report("mvcc-copy", ratio, threads, r, &gs);
      }

      if (engine_enabled(engine_filter, "urcu")) {
        mvcc::UrcuGate<std::vector<std::uint64_t>> gate(
            std::vector<std::uint64_t>(kWords, 0));
        std::mutex writer_mu;  // classic URCU writer-side lock
        const auto r = run_cell(
            threads, ratio, secs,
            [&](std::size_t) {
              std::uint64_t sum = 0;
              for (int i = 0; i < kBurst; ++i) {
                auto g = gate.acquire();
                sum += (*g)[0] + (*g)[kWords - 1];
              }
              return sum;
            },
            [&](std::size_t t, std::uint64_t) {
              std::lock_guard lk(writer_mu);
              std::vector<std::uint64_t> next = *gate.acquire();
              next[t % kWords] += 1;
              gate.publish(std::move(next));
            });
        report("urcu", ratio, threads, r, nullptr);
      }

      if (engine_enabled(engine_filter, "mutex-cache")) {
        // PR-4 scan cache shape: generation-stamped vector, copied under a
        // shared_mutex; writers exclude every reader while they mutate.
        std::shared_mutex mu;
        std::vector<std::uint64_t> data(kWords, 0);
        const auto r = run_cell(
            threads, ratio, secs,
            [&](std::size_t) {
              std::uint64_t sum = 0;
              for (int i = 0; i < kBurst; ++i) {
                std::shared_lock lk(mu);
                const std::vector<std::uint64_t> copy = data;
                sum += copy[0] + copy[kWords - 1];
              }
              return sum;
            },
            [&](std::size_t t, std::uint64_t) {
              std::unique_lock lk(mu);
              data[t % kWords] += 1;
            });
        report("mutex-cache", ratio, threads, r, nullptr);
      }
    }
  }
  return 0;
}
