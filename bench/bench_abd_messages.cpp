// Experiment E9 — Section 6's message-passing snapshot via ABD emulation.
//
// Part 1 reports messages per snapshot operation as the cluster grows, and
// demonstrates liveness under minority crashes: updates/scans keep
// completing, at a reduced message cost (crashed nodes' traffic vanishes).
// Expected shape: a scan is n register reads, each ~2 quorum rounds of ~2n
// messages, so messages/scan grows ~n^2 (times retries under contention).
//
// Part 2 sweeps the lossy-network adversary (seeded drop rate, optional
// duplication) on a fixed cluster and reports the robustness overhead the
// retransmission machinery pays: messages and retransmitted broadcasts per
// operation, plus duplicate replies discarded by the per-responder dedup.
// Each sweep row is also emitted as a JSON line (prefix "JSON ") so results
// files stay machine-readable alongside the human table.
//
// Flags: --trace <path> records a protocol trace (ABD quorum rounds,
// retransmissions, fault-injector decisions) for tools/trace_analyze.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "abd/abd_snapshot.hpp"
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "lin/history.hpp"
#include "lin/snapshot_checker.hpp"
#include "trace/exporter.hpp"
#include "trace/histogram.hpp"

namespace {

using namespace asnap;
using namespace std::chrono_literals;

struct OpCost {
  double update_msgs;
  double scan_msgs;
};

OpCost measure(abd::MessagePassingSnapshot<std::uint64_t>& snap,
               std::size_t live_process) {
  constexpr int kOps = 10;
  const auto pid = static_cast<ProcessId>(live_process);
  const std::uint64_t before_updates = snap.messages_sent();
  for (int i = 0; i < kOps; ++i) snap.update(pid, i + 1);
  const std::uint64_t after_updates = snap.messages_sent();
  for (int i = 0; i < kOps; ++i) (void)snap.scan(pid);
  const std::uint64_t after_scans = snap.messages_sent();
  return OpCost{
      static_cast<double>(after_updates - before_updates) / kOps,
      static_cast<double>(after_scans - after_updates) / kOps,
  };
}

struct LossCost {
  double msgs_per_op;
  double protocol_rounds_per_op;  ///< query/write/write-back rounds started
  double retransmit_waves_per_op;  ///< resends INSIDE rounds, not new rounds
  double dup_replies_per_op;
  std::uint64_t timeouts;    ///< quorum rounds that hit their deadline
  std::uint64_t failed_ops;  ///< operations that gave up (degraded mode)
};

/// Mixed update/scan workload on one process under a fault plan; reports
/// per-operation message and retransmission overhead.
LossCost measure_loss(double drop, bool dup) {
  constexpr std::size_t kNodes = 5;
  constexpr int kOps = 40;  // kOps updates + kOps scans
  abd::AbdConfig config;
  config.initial_rto = 300us;
  config.max_rto = 5ms;
  config.op_deadline = 30s;
  abd::MessagePassingSnapshot<std::uint64_t> snap(kNodes, 0, /*seed=*/9,
                                                  config);
  net::FaultPlan plan;
  plan.drop_prob = drop;
  plan.dup_prob = dup ? 0.3 : 0.0;
  snap.set_fault_plan(plan);
  const std::uint64_t msgs0 = snap.messages_sent();
  const std::uint64_t rounds0 = snap.protocol_rounds();
  const std::uint64_t retx0 = snap.retransmits_sent();
  const std::uint64_t dups0 = snap.dup_replies_ignored();
  const std::uint64_t tmo0 = snap.round_timeouts();
  std::uint64_t failed_ops = 0;
  for (int i = 0; i < kOps; ++i) {
    // Degraded-mode entry points: under this sweep's deadlines every op
    // should complete, so failed_ops is itself a result (expected 0).
    if (!snap.try_update(0, i + 1)) ++failed_ops;
    if (!snap.try_scan(0).has_value()) ++failed_ops;
  }
  const double ops = 2.0 * kOps;
  return LossCost{
      static_cast<double>(snap.messages_sent() - msgs0) / ops,
      static_cast<double>(snap.protocol_rounds() - rounds0) / ops,
      static_cast<double>(snap.retransmits_sent() - retx0) / ops,
      static_cast<double>(snap.dup_replies_ignored() - dups0) / ops,
      snap.round_timeouts() - tmo0,
      failed_ops,
  };
}

// --- E16: one-round fast reads -----------------------------------------------

struct FastreadResult {
  double scan_p50_us = 0;
  double scan_p99_us = 0;
  double fast_hit_ratio = 0;   ///< fast reads / all reads
  double rounds_per_read = 0;  ///< 1 for a fast read, 2 for a fallback
  std::uint64_t fast_reads = 0;
  std::uint64_t fast_fallbacks = 0;
  std::uint64_t failed_ops = 0;
  std::uint64_t violations = 0;  ///< exact checker verdict (0 expected)
};

/// One E16 cell: kN concurrent processes on a mixed workload with the given
/// read ratio, under seeded loss/delay, fast path on or off. EVERY cell
/// runs the full history through the exact single-writer linearizability
/// checker — the sweep doubles as a fault-matrix safety gate for the fast
/// path, not just a latency benchmark.
FastreadResult measure_fastread(bool fast, double read_ratio, double drop,
                                double delay_ms) {
  constexpr std::size_t kN = 5;
  constexpr int kOpsPerProc = 60;
  abd::AbdConfig config;
  config.initial_rto = 300us;
  config.max_rto = 5ms;
  config.op_deadline = 30s;
  config.fast_reads = fast;
  abd::MessagePassingSnapshot<lin::Tag> snap(kN, lin::Tag{}, /*seed=*/11,
                                             config);
  net::FaultPlan plan;
  plan.drop_prob = drop;
  if (delay_ms > 0) {
    plan.delay_prob = 0.5;
    plan.min_delay = std::chrono::microseconds(100);
    plan.max_delay = std::chrono::microseconds(
        static_cast<std::int64_t>(delay_ms * 1e3));
  }
  snap.set_fault_plan(plan);

  lin::Recorder recorder(kN);
  std::vector<trace::LogHistogram> scan_ns(kN);
  std::vector<std::uint64_t> failed(kN, 0);
  {
    std::vector<std::jthread> threads;
    for (std::size_t p = 0; p < kN; ++p) {
      threads.emplace_back([&, p, pid = static_cast<ProcessId>(p)] {
        Rng rng(0x16E16 + 7919 * p + (fast ? 1 : 0));
        std::uint64_t seq = 0;
        for (int op = 0; op < kOpsPerProc; ++op) {
          if (rng.chance(read_ratio)) {
            const lin::Time inv = recorder.tick();
            const auto t0 = std::chrono::steady_clock::now();
            auto view = snap.try_scan(pid);
            const auto t1 = std::chrono::steady_clock::now();
            const lin::Time res = recorder.tick();
            if (!view.has_value()) {
              ++failed[p];
              continue;
            }
            scan_ns[p].record(static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                    .count()));
            recorder.add_scan(pid, std::move(*view), inv, res);
          } else {
            const lin::Tag tag{pid, ++seq};
            const lin::Time inv = recorder.tick();
            const bool ok = snap.try_update(pid, tag);
            const lin::Time res = recorder.tick();
            // 30s deadlines on a healthy-majority sim: failure means the
            // write is indeterminate; record the full interval either way.
            if (!ok) ++failed[p];
            recorder.add_update(pid, pid, tag, inv, res);
          }
        }
      });
    }
  }

  FastreadResult r;
  trace::LogHistogram merged;
  for (std::size_t p = 0; p < kN; ++p) {
    merged.merge(scan_ns[p]);
    r.failed_ops += failed[p];
  }
  r.scan_p50_us = static_cast<double>(merged.percentile(0.50)) / 1e3;
  r.scan_p99_us = static_cast<double>(merged.percentile(0.99)) / 1e3;
  r.fast_reads = snap.fast_reads();
  r.fast_fallbacks = snap.fast_fallbacks();
  const std::uint64_t reads = r.fast_reads + r.fast_fallbacks;
  if (fast && reads != 0) {
    r.fast_hit_ratio =
        static_cast<double>(r.fast_reads) / static_cast<double>(reads);
    r.rounds_per_read =
        static_cast<double>(r.fast_reads + 2 * r.fast_fallbacks) /
        static_cast<double>(reads);
  } else {
    r.rounds_per_read = 2.0;  // every slow-path read is query + write-back
  }
  if (const auto violation = lin::check_single_writer(recorder.take())) {
    std::fprintf(stderr, "E16 VIOLATION: %s\n", violation->c_str());
    r.violations = 1;
  }
  return r;
}

void print_fastread_json(bool fast, double read_ratio, double drop,
                         double delay_ms, const FastreadResult& r) {
  bench::JsonWriter("E16-fastread")
      .field("n", 5)
      .field("fast", fast)
      .field("read_ratio", read_ratio)
      .field("drop", drop)
      .field("delay_ms", delay_ms)
      .field("scan_p50_us", r.scan_p50_us)
      .field("scan_p99_us", r.scan_p99_us)
      .field("fast_hit_ratio", r.fast_hit_ratio)
      .field("rounds_per_read", r.rounds_per_read)
      .field("fast_reads", r.fast_reads)
      .field("fast_fallbacks", r.fast_fallbacks)
      .field("failed_ops", r.failed_ops)
      .field("violations", r.violations)
      .print();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string trace_path = bench::consume_flag(argc, argv, "--trace");
  trace::Session trace_session(trace_path);

  std::printf("%4s %8s %14s %12s %14s %12s\n", "n", "crashed",
              "msgs/update", "msgs/scan", "msgs/update", "msgs/scan");
  std::printf("%4s %8s %27s %27s\n", "", "", "(all nodes alive)",
              "(minority crashed)");
  for (const std::size_t n : {3u, 5u, 7u, 9u}) {
    abd::MessagePassingSnapshot<std::uint64_t> snap(n, 0);
    const OpCost healthy = measure(snap, 0);

    // Crash a minority (floor((n-1)/2) nodes from the top).
    const std::size_t to_crash = (n - 1) / 2;
    for (std::size_t c = 0; c < to_crash; ++c) {
      snap.crash(static_cast<ProcessId>(n - 1 - c));
    }
    const OpCost degraded = measure(snap, 0);

    std::printf("%4zu %8zu %14.1f %12.1f %14.1f %12.1f\n", n, to_crash,
                healthy.update_msgs, healthy.scan_msgs, degraded.update_msgs,
                degraded.scan_msgs);
  }
  std::printf("\nA scan = n ABD reads (each 2 quorum rounds) inside >=1 "
              "double collect: messages/scan ~ 4n^2 + handshake-free.\n"
              "Minority crashes reduce traffic but never block operations "
              "(liveness needs only a majority).\n");

  std::printf("\n-- loss-rate sweep (n=5, seeded adversary; messages include "
              "retransmitted broadcasts) --\n");
  std::printf("%6s %5s %12s %10s %14s %16s %9s %11s\n", "drop", "dup",
              "msgs/op", "rounds/op", "retx waves/op", "dup replies/op",
              "timeouts", "failed ops");
  for (const bool dup : {false, true}) {
    for (const double drop : {0.0, 0.1, 0.3}) {
      const LossCost cost = measure_loss(drop, dup);
      std::printf("%5.0f%% %5s %12.1f %10.2f %14.2f %16.2f %9llu %11llu\n",
                  drop * 100, dup ? "on" : "off", cost.msgs_per_op,
                  cost.protocol_rounds_per_op, cost.retransmit_waves_per_op,
                  cost.dup_replies_per_op,
                  static_cast<unsigned long long>(cost.timeouts),
                  static_cast<unsigned long long>(cost.failed_ops));
      bench::JsonWriter("E9-loss")
          .field("n", 5)
          .field("drop", drop)
          .field("dup", dup)
          .field("msgs_per_op", cost.msgs_per_op)
          .field("protocol_rounds_per_op", cost.protocol_rounds_per_op)
          .field("retransmit_waves_per_op", cost.retransmit_waves_per_op)
          .field("dup_replies_per_op", cost.dup_replies_per_op)
          .field("timeouts", cost.timeouts)
          .field("failed_ops", cost.failed_ops)
          .print();
    }
  }
  std::printf("\nRetransmission overhead stays sub-linear in drop rate while "
              "every operation still completes; the dedup-by-responder rule "
              "is what keeps duplicated replies from corrupting quorums.\n"
              "Protocol rounds and retransmit waves are separate books: a "
              "wave is a resend inside a round, never a new round.\n");

  // -- E16 part A: the headline A/B — read ratio 0.99, healthy wire, fast
  // path off vs on. Acceptance: >= 30% p50 scan-latency reduction with the
  // fast-hit ratio reported alongside.
  std::printf("\n-- E16: one-round fast reads, A/B at read ratio 0.99 "
              "(n=5, healthy wire, every cell checked) --\n");
  std::printf("%5s %14s %14s %10s %12s %11s %10s\n", "fast", "scan p50 us",
              "scan p99 us", "fast hit", "rounds/read", "violations",
              "failed");
  FastreadResult off, on;
  for (const bool fast : {false, true}) {
    const FastreadResult r = measure_fastread(fast, 0.99, 0.0, 0.0);
    (fast ? on : off) = r;
    std::printf("%5s %14.1f %14.1f %9.1f%% %12.2f %11llu %10llu\n",
                fast ? "on" : "off", r.scan_p50_us, r.scan_p99_us,
                100.0 * r.fast_hit_ratio, r.rounds_per_read,
                static_cast<unsigned long long>(r.violations),
                static_cast<unsigned long long>(r.failed_ops));
    print_fastread_json(fast, 0.99, 0.0, 0.0, r);
  }
  if (off.scan_p50_us > 0) {
    std::printf("p50 scan latency reduction: %.1f%% (goal >= 30%%)\n",
                100.0 * (off.scan_p50_us - on.scan_p50_us) / off.scan_p50_us);
  }

  // -- E16 part B: fault-matrix sweep (read ratio x loss x delay), fast
  // path on, every cell through the exact checker. The fast-hit ratio
  // degrading gracefully (fallbacks, never violations) under loss/delay is
  // the point.
  std::printf("\n-- E16: fast-read sweep, read ratio x drop x delay "
              "(fast on, every cell checked) --\n");
  std::printf("%6s %6s %9s %14s %10s %12s %11s\n", "ratio", "drop",
              "delay ms", "scan p50 us", "fast hit", "rounds/read",
              "violations");
  for (const double ratio : {0.5, 0.99}) {
    for (const double drop : {0.0, 0.1, 0.3}) {
      for (const double delay_ms : {0.0, 2.0}) {
        const FastreadResult r = measure_fastread(true, ratio, drop, delay_ms);
        std::printf("%6.2f %5.0f%% %9.1f %14.1f %9.1f%% %12.2f %11llu\n",
                    ratio, drop * 100, delay_ms, r.scan_p50_us,
                    100.0 * r.fast_hit_ratio, r.rounds_per_read,
                    static_cast<unsigned long long>(r.violations));
        print_fastread_json(true, ratio, drop, delay_ms, r);
      }
    }
  }
  std::printf("\nA fast read settles in ONE quorum round when the query "
              "evidence proves the value is already stabilized (unanimous "
              "timestamps or a confirmed reply); disagreement falls back to "
              "the proven query + write-back path.\n");
  return 0;
}
