// Experiment E9 — Section 6's message-passing snapshot via ABD emulation.
//
// Part 1 reports messages per snapshot operation as the cluster grows, and
// demonstrates liveness under minority crashes: updates/scans keep
// completing, at a reduced message cost (crashed nodes' traffic vanishes).
// Expected shape: a scan is n register reads, each ~2 quorum rounds of ~2n
// messages, so messages/scan grows ~n^2 (times retries under contention).
//
// Part 2 sweeps the lossy-network adversary (seeded drop rate, optional
// duplication) on a fixed cluster and reports the robustness overhead the
// retransmission machinery pays: messages and retransmitted broadcasts per
// operation, plus duplicate replies discarded by the per-responder dedup.
// Each sweep row is also emitted as a JSON line (prefix "JSON ") so results
// files stay machine-readable alongside the human table.
//
// Flags: --trace <path> records a protocol trace (ABD quorum rounds,
// retransmissions, fault-injector decisions) for tools/trace_analyze.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>

#include "abd/abd_snapshot.hpp"
#include "bench_util.hpp"
#include "lin/history.hpp"
#include "trace/exporter.hpp"

namespace {

using namespace asnap;
using namespace std::chrono_literals;

struct OpCost {
  double update_msgs;
  double scan_msgs;
};

OpCost measure(abd::MessagePassingSnapshot<std::uint64_t>& snap,
               std::size_t live_process) {
  constexpr int kOps = 10;
  const auto pid = static_cast<ProcessId>(live_process);
  const std::uint64_t before_updates = snap.messages_sent();
  for (int i = 0; i < kOps; ++i) snap.update(pid, i + 1);
  const std::uint64_t after_updates = snap.messages_sent();
  for (int i = 0; i < kOps; ++i) (void)snap.scan(pid);
  const std::uint64_t after_scans = snap.messages_sent();
  return OpCost{
      static_cast<double>(after_updates - before_updates) / kOps,
      static_cast<double>(after_scans - after_updates) / kOps,
  };
}

struct LossCost {
  double msgs_per_op;
  double retransmits_per_op;
  double dup_replies_per_op;
  std::uint64_t timeouts;    ///< quorum rounds that hit their deadline
  std::uint64_t failed_ops;  ///< operations that gave up (degraded mode)
};

/// Mixed update/scan workload on one process under a fault plan; reports
/// per-operation message and retransmission overhead.
LossCost measure_loss(double drop, bool dup) {
  constexpr std::size_t kNodes = 5;
  constexpr int kOps = 40;  // kOps updates + kOps scans
  abd::AbdConfig config;
  config.initial_rto = 300us;
  config.max_rto = 5ms;
  config.op_deadline = 30s;
  abd::MessagePassingSnapshot<std::uint64_t> snap(kNodes, 0, /*seed=*/9,
                                                  config);
  net::FaultPlan plan;
  plan.drop_prob = drop;
  plan.dup_prob = dup ? 0.3 : 0.0;
  snap.set_fault_plan(plan);
  const std::uint64_t msgs0 = snap.messages_sent();
  const std::uint64_t retx0 = snap.retransmits_sent();
  const std::uint64_t dups0 = snap.dup_replies_ignored();
  const std::uint64_t tmo0 = snap.round_timeouts();
  std::uint64_t failed_ops = 0;
  for (int i = 0; i < kOps; ++i) {
    // Degraded-mode entry points: under this sweep's deadlines every op
    // should complete, so failed_ops is itself a result (expected 0).
    if (!snap.try_update(0, i + 1)) ++failed_ops;
    if (!snap.try_scan(0).has_value()) ++failed_ops;
  }
  const double ops = 2.0 * kOps;
  return LossCost{
      static_cast<double>(snap.messages_sent() - msgs0) / ops,
      static_cast<double>(snap.retransmits_sent() - retx0) / ops,
      static_cast<double>(snap.dup_replies_ignored() - dups0) / ops,
      snap.round_timeouts() - tmo0,
      failed_ops,
  };
}

}  // namespace

int main(int argc, char** argv) {
  const std::string trace_path = bench::consume_flag(argc, argv, "--trace");
  trace::Session trace_session(trace_path);

  std::printf("%4s %8s %14s %12s %14s %12s\n", "n", "crashed",
              "msgs/update", "msgs/scan", "msgs/update", "msgs/scan");
  std::printf("%4s %8s %27s %27s\n", "", "", "(all nodes alive)",
              "(minority crashed)");
  for (const std::size_t n : {3u, 5u, 7u, 9u}) {
    abd::MessagePassingSnapshot<std::uint64_t> snap(n, 0);
    const OpCost healthy = measure(snap, 0);

    // Crash a minority (floor((n-1)/2) nodes from the top).
    const std::size_t to_crash = (n - 1) / 2;
    for (std::size_t c = 0; c < to_crash; ++c) {
      snap.crash(static_cast<ProcessId>(n - 1 - c));
    }
    const OpCost degraded = measure(snap, 0);

    std::printf("%4zu %8zu %14.1f %12.1f %14.1f %12.1f\n", n, to_crash,
                healthy.update_msgs, healthy.scan_msgs, degraded.update_msgs,
                degraded.scan_msgs);
  }
  std::printf("\nA scan = n ABD reads (each 2 quorum rounds) inside >=1 "
              "double collect: messages/scan ~ 4n^2 + handshake-free.\n"
              "Minority crashes reduce traffic but never block operations "
              "(liveness needs only a majority).\n");

  std::printf("\n-- loss-rate sweep (n=5, seeded adversary; messages include "
              "retransmitted broadcasts) --\n");
  std::printf("%6s %5s %12s %14s %16s %9s %11s\n", "drop", "dup", "msgs/op",
              "retransmits/op", "dup replies/op", "timeouts", "failed ops");
  for (const bool dup : {false, true}) {
    for (const double drop : {0.0, 0.1, 0.3}) {
      const LossCost cost = measure_loss(drop, dup);
      std::printf("%5.0f%% %5s %12.1f %14.2f %16.2f %9llu %11llu\n",
                  drop * 100, dup ? "on" : "off", cost.msgs_per_op,
                  cost.retransmits_per_op, cost.dup_replies_per_op,
                  static_cast<unsigned long long>(cost.timeouts),
                  static_cast<unsigned long long>(cost.failed_ops));
      bench::JsonWriter("E9-loss")
          .field("n", 5)
          .field("drop", drop)
          .field("dup", dup)
          .field("msgs_per_op", cost.msgs_per_op)
          .field("retransmits_per_op", cost.retransmits_per_op)
          .field("dup_replies_per_op", cost.dup_replies_per_op)
          .field("timeouts", cost.timeouts)
          .field("failed_ops", cost.failed_ops)
          .print();
    }
  }
  std::printf("\nRetransmission overhead stays sub-linear in drop rate while "
              "every operation still completes; the dedup-by-responder rule "
              "is what keeps duplicated replies from corrupting quorums.\n");
  return 0;
}
