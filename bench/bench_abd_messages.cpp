// Experiment E9 — Section 6's message-passing snapshot via ABD emulation.
//
// Reports messages per snapshot operation as the cluster grows, and
// demonstrates liveness under minority crashes: updates/scans keep
// completing, at a reduced message cost (crashed nodes' traffic vanishes).
// Expected shape: a scan is n register reads, each ~2 quorum rounds of ~2n
// messages, so messages/scan grows ~n^2 (times retries under contention).
#include <cstdint>
#include <cstdio>

#include "abd/abd_snapshot.hpp"
#include "lin/history.hpp"

namespace {

using namespace asnap;

struct OpCost {
  double update_msgs;
  double scan_msgs;
};

OpCost measure(abd::MessagePassingSnapshot<std::uint64_t>& snap,
               std::size_t live_process) {
  constexpr int kOps = 10;
  const auto pid = static_cast<ProcessId>(live_process);
  const std::uint64_t before_updates = snap.messages_sent();
  for (int i = 0; i < kOps; ++i) snap.update(pid, i + 1);
  const std::uint64_t after_updates = snap.messages_sent();
  for (int i = 0; i < kOps; ++i) (void)snap.scan(pid);
  const std::uint64_t after_scans = snap.messages_sent();
  return OpCost{
      static_cast<double>(after_updates - before_updates) / kOps,
      static_cast<double>(after_scans - after_updates) / kOps,
  };
}

}  // namespace

int main() {
  std::printf("%4s %8s %14s %12s %14s %12s\n", "n", "crashed",
              "msgs/update", "msgs/scan", "msgs/update", "msgs/scan");
  std::printf("%4s %8s %27s %27s\n", "", "", "(all nodes alive)",
              "(minority crashed)");
  for (const std::size_t n : {3u, 5u, 7u, 9u}) {
    abd::MessagePassingSnapshot<std::uint64_t> snap(n, 0);
    const OpCost healthy = measure(snap, 0);

    // Crash a minority (floor((n-1)/2) nodes from the top).
    const std::size_t to_crash = (n - 1) / 2;
    for (std::size_t c = 0; c < to_crash; ++c) {
      snap.crash(static_cast<ProcessId>(n - 1 - c));
    }
    const OpCost degraded = measure(snap, 0);

    std::printf("%4zu %8zu %14.1f %12.1f %14.1f %12.1f\n", n, to_crash,
                healthy.update_msgs, healthy.scan_msgs, degraded.update_msgs,
                degraded.scan_msgs);
  }
  std::printf("\nA scan = n ABD reads (each 2 quorum rounds) inside >=1 "
              "double collect: messages/scan ~ 4n^2 + handshake-free.\n"
              "Minority crashes reduce traffic but never block operations "
              "(liveness needs only a majority).\n");
  return 0;
}
