// Shared helpers for the benchmark binaries: background interference
// threads, step accounting, and a tiny least-squares exponent fit used by
// the shape experiments (E5/E7) to report measured complexity exponents.
#pragma once

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/config.hpp"
#include "common/instrumentation.hpp"
#include "common/rng.hpp"

namespace asnap::bench {

/// Background threads that hammer an operation until destroyed. Each thread
/// yields at register-step granularity with the given probability so that
/// interference is fine-grained even on few-core machines.
class InterferencePool {
 public:
  /// op(pid, iteration) is called in a loop on each thread.
  InterferencePool(std::size_t first_pid, std::size_t count,
                   std::function<void(ProcessId, std::uint64_t)> op,
                   double yield_prob = 0.3)
      : stop_(false) {
    threads_.reserve(count);
    for (std::size_t t = 0; t < count; ++t) {
      const auto pid = static_cast<ProcessId>(first_pid + t);
      threads_.emplace_back([this, pid, op, yield_prob] {
        struct Chaos {
          Rng rng;
          double prob;
          static void hook(void* ctx, StepKind) {
            auto* self = static_cast<Chaos*>(ctx);
            if (self->rng.chance(self->prob)) std::this_thread::yield();
          }
        } chaos{Rng(pid * 977 + 13), yield_prob};
        ScopedStepHook hook(&Chaos::hook, &chaos);
        std::uint64_t iteration = 0;
        while (!stop_.load(std::memory_order_acquire)) {
          op(pid, ++iteration);
        }
      });
    }
  }

  ~InterferencePool() {
    stop_.store(true, std::memory_order_release);
    threads_.clear();  // join
  }

 private:
  std::atomic<bool> stop_;
  std::vector<std::jthread> threads_;
};

/// Builds the machine-readable "JSON {...}" result lines the benches print
/// alongside their human tables (scripts/run_experiments.sh greps for the
/// prefix). Field order is insertion order; values are escaped-free by
/// construction (keys and string values used by the benches are plain
/// identifiers).
class JsonWriter {
 public:
  explicit JsonWriter(std::string_view experiment) {
    body_ = "{\"experiment\":\"";
    body_ += experiment;
    body_ += '"';
  }

  JsonWriter& field(std::string_view key, std::uint64_t v) {
    return raw(key, std::to_string(v));
  }
  JsonWriter& field(std::string_view key, int v) {
    return raw(key, std::to_string(v));
  }
  JsonWriter& field(std::string_view key, double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return raw(key, buf);
  }
  JsonWriter& field(std::string_view key, bool v) {
    return raw(key, v ? "true" : "false");
  }
  JsonWriter& field(std::string_view key, std::string_view v) {
    std::string quoted = "\"";
    quoted += v;
    quoted += '"';
    return raw(key, quoted);
  }
  JsonWriter& field(std::string_view key, const char* v) {
    return field(key, std::string_view(v));
  }

  /// The object, e.g. {"experiment":"E9-loss","drop":0.1}.
  std::string str() const { return body_ + "}"; }

  /// Prints the prefixed result line: JSON {...}\n.
  void print() const { std::printf("JSON %s\n", str().c_str()); }

 private:
  JsonWriter& raw(std::string_view key, std::string_view value) {
    body_ += ",\"";
    body_ += key;
    body_ += "\":";
    body_ += value;
    return *this;
  }

  std::string body_;
};

/// Pulls `--flag <value>` out of (argc, argv), compacting argv in place so
/// downstream flag parsers (e.g. google-benchmark's) never see it. Returns
/// the value, or `fallback` if the flag is absent.
inline std::string consume_flag(int& argc, char** argv, std::string_view flag,
                                std::string_view fallback = "") {
  std::string value(fallback);
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i] && i + 1 < argc) {
      value = argv[i + 1];
      ++i;
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;
  return value;
}

/// Least-squares slope of log(y) against log(x): the measured complexity
/// exponent of y(x) ~ x^slope.
inline double fitted_exponent(const std::vector<double>& xs,
                              const std::vector<double>& ys) {
  const std::size_t n = xs.size();
  double sx = 0;
  double sy = 0;
  double sxx = 0;
  double sxy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double lx = std::log2(xs[i]);
    const double ly = std::log2(ys[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  const double denom = static_cast<double>(n) * sxx - sx * sx;
  return (static_cast<double>(n) * sxy - sx * sy) / denom;
}

}  // namespace asnap::bench
