// Shared helpers for the benchmark binaries: background interference
// threads, step accounting, and a tiny least-squares exponent fit used by
// the shape experiments (E5/E7) to report measured complexity exponents.
#pragma once

#include <atomic>
#include <cmath>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "common/config.hpp"
#include "common/instrumentation.hpp"
#include "common/rng.hpp"

namespace asnap::bench {

/// Background threads that hammer an operation until destroyed. Each thread
/// yields at register-step granularity with the given probability so that
/// interference is fine-grained even on few-core machines.
class InterferencePool {
 public:
  /// op(pid, iteration) is called in a loop on each thread.
  InterferencePool(std::size_t first_pid, std::size_t count,
                   std::function<void(ProcessId, std::uint64_t)> op,
                   double yield_prob = 0.3)
      : stop_(false) {
    threads_.reserve(count);
    for (std::size_t t = 0; t < count; ++t) {
      const auto pid = static_cast<ProcessId>(first_pid + t);
      threads_.emplace_back([this, pid, op, yield_prob] {
        struct Chaos {
          Rng rng;
          double prob;
          static void hook(void* ctx, StepKind) {
            auto* self = static_cast<Chaos*>(ctx);
            if (self->rng.chance(self->prob)) std::this_thread::yield();
          }
        } chaos{Rng(pid * 977 + 13), yield_prob};
        ScopedStepHook hook(&Chaos::hook, &chaos);
        std::uint64_t iteration = 0;
        while (!stop_.load(std::memory_order_acquire)) {
          op(pid, ++iteration);
        }
      });
    }
  }

  ~InterferencePool() {
    stop_.store(true, std::memory_order_release);
    threads_.clear();  // join
  }

 private:
  std::atomic<bool> stop_;
  std::vector<std::jthread> threads_;
};

/// Least-squares slope of log(y) against log(x): the measured complexity
/// exponent of y(x) ~ x^slope.
inline double fitted_exponent(const std::vector<double>& xs,
                              const std::vector<double>& ys) {
  const std::size_t n = xs.size();
  double sx = 0;
  double sy = 0;
  double sxx = 0;
  double sxy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double lx = std::log2(xs[i]);
    const double ly = std::log2(ys[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  const double denom = static_cast<double>(n) * sxx - sx * sx;
  return (static_cast<double>(n) * sxy - sx * sy) / denom;
}

}  // namespace asnap::bench
