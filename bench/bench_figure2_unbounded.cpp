// Experiment E2 — Figure 2, Theorem 3.5: the unbounded single-writer
// snapshot. Reports wall time and primitive register steps per operation as
// n grows, solo and under concurrent updater interference. The paper's
// claim reproduced here: every operation completes in O(n^2) primitive
// steps (see steps_per_op growing ~quadratically and staying bounded under
// interference).
#include <benchmark/benchmark.h>

#include <cstdint>

#include "bench_util.hpp"
#include "core/unbounded_sw_snapshot.hpp"

namespace {

using asnap::ProcessId;
using asnap::StepMeter;
using Snap = asnap::core::UnboundedSwSnapshot<std::uint64_t>;

void BM_Fig2_ScanSolo(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Snap snap(n, 0);
  for (ProcessId p = 0; p < n; ++p) snap.update(p, p);  // realistic contents

  StepMeter meter;
  std::uint64_t ops = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(snap.scan(0));
    ++ops;
  }
  state.counters["steps_per_op"] =
      static_cast<double>(meter.elapsed().total()) / static_cast<double>(ops);
  state.counters["n"] = static_cast<double>(n);
}
BENCHMARK(BM_Fig2_ScanSolo)->RangeMultiplier(2)->Range(2, 32);

void BM_Fig2_UpdateSolo(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Snap snap(n, 0);

  StepMeter meter;
  std::uint64_t ops = 0;
  for (auto _ : state) {
    snap.update(0, ops);
    ++ops;
  }
  state.counters["steps_per_op"] =
      static_cast<double>(meter.elapsed().total()) / static_cast<double>(ops);
  state.counters["n"] = static_cast<double>(n);
}
BENCHMARK(BM_Fig2_UpdateSolo)->RangeMultiplier(2)->Range(2, 32);

void BM_Fig2_ScanUnderInterference(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Snap snap(n, 0);
  asnap::bench::InterferencePool updaters(
      1, n - 1,
      [&snap](ProcessId pid, std::uint64_t it) { snap.update(pid, it); });

  StepMeter meter;
  std::uint64_t ops = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(snap.scan(0));
    ++ops;
  }
  state.counters["steps_per_op"] =
      static_cast<double>(meter.elapsed().total()) / static_cast<double>(ops);
  state.counters["max_double_collects"] =
      static_cast<double>(snap.stats(0).max_double_collects);
  state.counters["borrowed_views"] =
      static_cast<double>(snap.stats(0).borrowed_views);
  state.counters["n"] = static_cast<double>(n);
}
BENCHMARK(BM_Fig2_ScanUnderInterference)->RangeMultiplier(2)->Range(2, 32);

void BM_Fig2_UpdateUnderInterference(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Snap snap(n, 0);
  asnap::bench::InterferencePool updaters(
      1, n - 1,
      [&snap](ProcessId pid, std::uint64_t it) { snap.update(pid, it); });

  StepMeter meter;
  std::uint64_t ops = 0;
  for (auto _ : state) {
    snap.update(0, ops);
    ++ops;
  }
  state.counters["steps_per_op"] =
      static_cast<double>(meter.elapsed().total()) / static_cast<double>(ops);
  state.counters["n"] = static_cast<double>(n);
}
BENCHMARK(BM_Fig2_UpdateUnderInterference)->RangeMultiplier(2)->Range(2, 32);

}  // namespace

BENCHMARK_MAIN();
