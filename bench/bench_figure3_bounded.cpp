// Experiment E3 — Figure 3, Theorem 4.5: the bounded single-writer
// snapshot. Same series as E2 so the two constructions are directly
// comparable: the bounded algorithm pays a constant-factor premium for the
// handshake reads/writes (3n reads + n bit-writes per double collect vs 2n
// reads) but eliminates the unbounded sequence-number field.
#include <benchmark/benchmark.h>

#include <cstdint>

#include "bench_util.hpp"
#include "core/bounded_sw_snapshot.hpp"

namespace {

using asnap::ProcessId;
using asnap::StepMeter;
using Snap = asnap::core::BoundedSwSnapshot<std::uint64_t>;

void BM_Fig3_ScanSolo(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Snap snap(n, 0);
  for (ProcessId p = 0; p < n; ++p) snap.update(p, p);

  StepMeter meter;
  std::uint64_t ops = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(snap.scan(0));
    ++ops;
  }
  state.counters["steps_per_op"] =
      static_cast<double>(meter.elapsed().total()) / static_cast<double>(ops);
  state.counters["n"] = static_cast<double>(n);
}
BENCHMARK(BM_Fig3_ScanSolo)->RangeMultiplier(2)->Range(2, 32);

void BM_Fig3_UpdateSolo(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Snap snap(n, 0);

  StepMeter meter;
  std::uint64_t ops = 0;
  for (auto _ : state) {
    snap.update(0, ops);
    ++ops;
  }
  state.counters["steps_per_op"] =
      static_cast<double>(meter.elapsed().total()) / static_cast<double>(ops);
  state.counters["n"] = static_cast<double>(n);
}
BENCHMARK(BM_Fig3_UpdateSolo)->RangeMultiplier(2)->Range(2, 32);

void BM_Fig3_ScanUnderInterference(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Snap snap(n, 0);
  asnap::bench::InterferencePool updaters(
      1, n - 1,
      [&snap](ProcessId pid, std::uint64_t it) { snap.update(pid, it); });

  StepMeter meter;
  std::uint64_t ops = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(snap.scan(0));
    ++ops;
  }
  state.counters["steps_per_op"] =
      static_cast<double>(meter.elapsed().total()) / static_cast<double>(ops);
  state.counters["max_double_collects"] =
      static_cast<double>(snap.stats(0).max_double_collects);
  state.counters["borrowed_views"] =
      static_cast<double>(snap.stats(0).borrowed_views);
  state.counters["n"] = static_cast<double>(n);
}
BENCHMARK(BM_Fig3_ScanUnderInterference)->RangeMultiplier(2)->Range(2, 32);

void BM_Fig3_UpdateUnderInterference(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Snap snap(n, 0);
  asnap::bench::InterferencePool updaters(
      1, n - 1,
      [&snap](ProcessId pid, std::uint64_t it) { snap.update(pid, it); });

  StepMeter meter;
  std::uint64_t ops = 0;
  for (auto _ : state) {
    snap.update(0, ops);
    ++ops;
  }
  state.counters["steps_per_op"] =
      static_cast<double>(meter.elapsed().total()) / static_cast<double>(ops);
  state.counters["n"] = static_cast<double>(n);
}
BENCHMARK(BM_Fig3_UpdateUnderInterference)->RangeMultiplier(2)->Range(2, 32);

}  // namespace

BENCHMARK_MAIN();
