// Experiment E4 — Figure 4, Theorem 5.4: the bounded multi-writer snapshot.
// Sweeps the process count n and the word count m independently (the
// multi-writer memory decouples them) and reports steps per operation; the
// cost shape is O((m + n) * n) per the 2n+1 pigeonhole bound.
#include <benchmark/benchmark.h>

#include <cstdint>

#include "bench_util.hpp"
#include "core/bounded_mw_snapshot.hpp"

namespace {

using asnap::ProcessId;
using asnap::StepMeter;
using Snap = asnap::core::BoundedMwSnapshot<std::uint64_t>;

void BM_Fig4_ScanSolo(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t m = static_cast<std::size_t>(state.range(1));
  Snap snap(n, m, 0);
  for (std::size_t k = 0; k < m; ++k) snap.update(0, k, k);

  StepMeter meter;
  std::uint64_t ops = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(snap.scan(0));
    ++ops;
  }
  state.counters["steps_per_op"] =
      static_cast<double>(meter.elapsed().total()) / static_cast<double>(ops);
  state.counters["n"] = static_cast<double>(n);
  state.counters["m"] = static_cast<double>(m);
}
BENCHMARK(BM_Fig4_ScanSolo)
    ->Args({2, 2})
    ->Args({4, 4})
    ->Args({8, 8})
    ->Args({16, 16})
    ->Args({32, 32})
    ->Args({4, 32})    // words dominate
    ->Args({32, 4});   // processes dominate

void BM_Fig4_UpdateSolo(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t m = static_cast<std::size_t>(state.range(1));
  Snap snap(n, m, 0);

  StepMeter meter;
  std::uint64_t ops = 0;
  for (auto _ : state) {
    snap.update(0, ops % m, ops);
    ++ops;
  }
  state.counters["steps_per_op"] =
      static_cast<double>(meter.elapsed().total()) / static_cast<double>(ops);
  state.counters["n"] = static_cast<double>(n);
  state.counters["m"] = static_cast<double>(m);
}
BENCHMARK(BM_Fig4_UpdateSolo)
    ->Args({2, 2})
    ->Args({4, 4})
    ->Args({8, 8})
    ->Args({16, 16})
    ->Args({32, 32})
    ->Args({4, 32})
    ->Args({32, 4});

void BM_Fig4_ScanUnderInterference(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t m = static_cast<std::size_t>(state.range(1));
  Snap snap(n, m, 0);
  asnap::bench::InterferencePool updaters(
      1, n - 1, [&snap, m](ProcessId pid, std::uint64_t it) {
        snap.update(pid, it % m, it);
      });

  StepMeter meter;
  std::uint64_t ops = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(snap.scan(0));
    ++ops;
  }
  state.counters["steps_per_op"] =
      static_cast<double>(meter.elapsed().total()) / static_cast<double>(ops);
  state.counters["max_double_collects"] =
      static_cast<double>(snap.stats(0).max_double_collects);
  state.counters["borrowed_views"] =
      static_cast<double>(snap.stats(0).borrowed_views);
  state.counters["n"] = static_cast<double>(n);
  state.counters["m"] = static_cast<double>(m);
}
BENCHMARK(BM_Fig4_ScanUnderInterference)
    ->Args({2, 2})
    ->Args({4, 4})
    ->Args({8, 8})
    ->Args({16, 16});

}  // namespace

BENCHMARK_MAIN();
