// loadgen — open/closed-loop load generator for the snapshot service layer
// (experiment E11-svc) and the sharded snapshot fabric (E13-shard).
//
// Drives M concurrent clients through svc::SnapshotService over any of the
// paper's snapshot backends (a1 = Figure 2 unbounded, a2 = Figure 3 bounded,
// a3 = Figure 4 via the single-writer adapter, a4 = the multi-version
// pointer-swap engine over mvcc::VersionGate) or the ABD message-passing
// snapshot, with client churn (disconnect/reconnect), pipelined updates and
// a seeded read/write mix. With --shards S the same workload runs against a
// shard::ShardedSnapshotFabric of S services (clients hash-routed; scans are
// shard-local, and with probability --global-ratio a scan is a cross-shard
// global_scan instead). Reports throughput and p50/p99/p999 latency per op
// type, plus service/lease/fabric counters, as a human table and a
// machine-readable "JSON {...}" line (bench::JsonWriter format consumed by
// scripts/run_experiments.sh).
//
// Modes:
//   closed : each client issues its next op as soon as the previous one
//            completes — fixed concurrency M, latency = call duration
//            (updates: submit-to-ack, i.e. until a flush covers the seq).
//   open   : ops arrive on a Poisson schedule at --rate ops/s split across
//            the clients; latency is measured from the *scheduled* arrival,
//            so queueing delay under overload is visible (coordinated
//            omission avoided).
//
// --check records every completed operation in a lin::Recorder and runs the
// exact single-writer linearizability checker over the full history at the
// end: nonzero exit iff a violation is found. This is the acceptance gate
// that multiplexing, batching, lease handover, the scan cache and cross-shard
// composition preserved the paper's correctness notion end to end.
//
// --check-file PATH is the long-run variant: instead of growing an in-memory
// op vector for the whole measured interval, completed ops stream to PATH as
// text records (lin::HistoryFileWriter, O(1) history memory while the clock
// runs); the file is replayed through the same checker afterwards and doubles
// as a tools/check_history artifact for bug reports.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "abd/abd_snapshot.hpp"
#include "abd/remote_client.hpp"
#include "bench_util.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"
#include "common/rng.hpp"
#include "core/bounded_mw_snapshot.hpp"
#include "core/bounded_sw_snapshot.hpp"
#include "core/mvcc_snapshot.hpp"
#include "core/snapshot_types.hpp"
#include "core/unbounded_sw_snapshot.hpp"
#include "lin/history.hpp"
#include "lin/history_io.hpp"
#include "lin/snapshot_checker.hpp"
#include "shard/fabric.hpp"
#include "svc/service.hpp"
#include "trace/exporter.hpp"
#include "trace/histogram.hpp"

namespace asnap {
namespace {

using lin::Tag;
using namespace std::chrono_literals;

struct Options {
  std::string backend = "a1";
  std::string mode = "closed";
  std::size_t slots = 3;   ///< words per service (per shard when sharded)
  std::size_t shards = 0;  ///< 0 = plain service; >= 1 = fabric of S shards
  std::size_t clients = 12;
  double seconds = 1.0;
  double rate = 2000.0;  // open loop: total arrivals/s across all clients
  double read_ratio = 0.9;
  double global_ratio = 0.1;  ///< fraction of scans that go cross-shard
  std::size_t global_attempts = 8;  ///< confirm rounds before sealed fallback
  double churn = 0.02;  // per-op probability of disconnect + reconnect
  std::size_t pipeline = 4;  // outstanding submits before a forced flush
  std::size_t batch = 8;     // service max_batch
  bool cache = true;
  std::size_t max_concurrent = 0;
  double ttl_ms = 100.0;
  std::uint64_t seed = 1;
  bool check = false;
  std::string check_file;  ///< spill history records here instead of RAM
  std::string trace_path;
  std::string experiment = "E11-svc";
  std::string cluster;  ///< backend=cluster: "host:port,..." endpoints

  bool checking() const { return check || !check_file.empty(); }
};

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// One client's not-yet-acknowledged submits.
struct PendingUpdate {
  std::uint64_t seq;
  Tag tag;
  lin::Time inv;      // recorder tick (check mode only)
  std::uint64_t t0;   // latency start, ns
};

/// Per-thread results, merged after the run.
struct ThreadResult {
  trace::LogHistogram update_ns;  // submit-to-ack
  trace::LogHistogram scan_ns;    // shard-local (or single-service) scans
  trace::LogHistogram global_ns;  // cross-shard global scans
  std::uint64_t updates = 0;
  std::uint64_t scans = 0;
  std::uint64_t global_scans = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t expirations = 0;
  std::uint64_t sheds = 0;
  std::uint64_t connect_failures = 0;
};

struct RunOutput {
  ThreadResult merged;
  svc::ServiceStats svc;
  svc::LeaseStats lease;
  shard::FabricStats fabric;  // all-zero for the plain (unsharded) service
  std::uint64_t violations = 0;
  double elapsed_s = 0;
};

/// Front = svc::SnapshotService<...> or shard::ShardedSnapshotFabric<...>;
/// both expose connect/submit_update/flush/scan/disconnect/stats with the
/// same shapes, the fabric adds global_scan(), word_base on scan results and
/// fabric_stats() — all detected structurally below.
template <typename Front>
RunOutput run_workload(Front& front, std::size_t total_words,
                       const Options& opt) {
  std::unique_ptr<lin::Recorder> recorder;  // logical clock + in-memory ops
  std::unique_ptr<lin::HistoryFileWriter> spill;
  if (opt.checking()) {
    recorder = std::make_unique<lin::Recorder>(total_words);
    if (!opt.check_file.empty()) {
      spill = std::make_unique<lin::HistoryFileWriter>(opt.check_file,
                                                       total_words);
      if (!spill->ok()) {
        std::fprintf(stderr, "loadgen: cannot open --check-file '%s'\n",
                     opt.check_file.c_str());
        std::exit(2);
      }
    }
  }
  // With a spill file, the recorder serves only as the logical clock: ops go
  // straight to disk and history memory stays O(1) for the whole run.
  auto record_update = [&](ProcessId proc, std::size_t word, Tag tag,
                           lin::Time inv, lin::Time res) {
    if (spill) {
      spill->add_update(proc, word, tag, inv, res);
    } else {
      recorder->add_update(proc, word, tag, inv, res);
    }
  };
  auto record_scan = [&](ProcessId proc, std::size_t word_base,
                         std::vector<Tag> view, lin::Time inv, lin::Time res) {
    if (spill) {
      spill->add_scan(proc, word_base, view, inv, res);
    } else {
      recorder->add_scan(proc, word_base, std::move(view), inv, res);
    }
  };

  std::vector<ThreadResult> results(opt.clients);
  std::atomic<bool> go{false};
  std::atomic<bool> stop{false};

  {
    std::vector<std::jthread> threads;
    threads.reserve(opt.clients);
    for (std::size_t c = 0; c < opt.clients; ++c) {
      threads.emplace_back([&, c] {
        ThreadResult& out = results[c];
        Rng rng(opt.seed * 0x9E3779B9ULL + c);
        while (!go.load(std::memory_order_acquire)) std::this_thread::yield();

        using Session = std::decay_t<decltype(front
                                                  .connect(svc::ClientId{0},
                                                           std::chrono::
                                                               nanoseconds{0})
                                                  .session)>;
        Session sess;
        std::vector<PendingUpdate> pending;

        // Ack every pending submit with seq <= flushed_through: record its
        // latency and, in check mode, its history interval (one shared res
        // tick — the covering flush lies inside every such interval).
        auto ack_through = [&](std::size_t slot, std::uint64_t ft) {
          if (pending.empty() || pending.front().seq > ft) return;
          const std::uint64_t t = now_ns();
          const lin::Time res = recorder ? recorder->tick() : 0;
          std::size_t i = 0;
          for (; i < pending.size() && pending[i].seq <= ft; ++i) {
            out.update_ns.record(t - pending[i].t0);
            ++out.updates;
            if (recorder) {
              record_update(static_cast<ProcessId>(slot), slot,
                            pending[i].tag, pending[i].inv, res);
            }
          }
          pending.erase(pending.begin(), pending.begin() + i);
        };

        auto connect = [&]() -> bool {
          while (!stop.load(std::memory_order_acquire)) {
            auto conn =
                front.connect(static_cast<svc::ClientId>(c), 200ms);
            if (conn.error == svc::SvcError::kOk) {
              sess = conn.session;
              ++out.reconnects;
              return true;
            }
            ++out.connect_failures;
          }
          return false;
        };
        if (!connect()) return;

        // Open loop: this client's share of the Poisson arrival process.
        const double client_rate = opt.rate / static_cast<double>(opt.clients);
        const bool open_loop = opt.mode == "open";
        std::uint64_t next_arrival = now_ns();
        auto exp_gap_ns = [&]() -> std::uint64_t {
          const double u = std::max(rng.uniform01(), 1e-12);
          return static_cast<std::uint64_t>(-std::log(u) / client_rate * 1e9);
        };

        while (!stop.load(std::memory_order_acquire)) {
          if (!sess.connected() && !connect()) break;
          const std::size_t slot = sess.slot();

          std::uint64_t t0 = now_ns();
          if (open_loop) {
            next_arrival += exp_gap_ns();
            while (now_ns() < next_arrival &&
                   !stop.load(std::memory_order_acquire)) {
              std::this_thread::yield();
            }
            // The run ended before this arrival was due: don't issue it
            // (its scheduled origin lies in the future).
            if (now_ns() < next_arrival) break;
            t0 = next_arrival;  // latency includes queueing behind schedule
          }

          if (rng.chance(opt.churn)) {
            const auto d = front.disconnect(sess);
            ack_through(slot, d.flushed_through);
            continue;  // reconnect at the top of the loop
          }

          if (rng.uniform01() < opt.read_ratio) {  // ---- scan
            // Against a fabric, a slice of the reads asks for the globally
            // consistent cross-shard view (lease-free two-level scan).
            if constexpr (requires { front.global_scan(); }) {
              if (rng.uniform01() < opt.global_ratio) {
                const lin::Time inv = recorder ? recorder->tick() : 0;
                auto g = front.global_scan();
                const lin::Time res = recorder ? recorder->tick() : 0;
                out.global_ns.record(now_ns() - t0);
                ++out.global_scans;
                if (recorder) {
                  record_scan(static_cast<ProcessId>(slot), 0,
                              std::move(g.view), inv, res);
                }
                continue;
              }
            }
            const lin::Time inv = recorder ? recorder->tick() : 0;
            auto s = front.scan(sess);
            if (s.error == svc::SvcError::kLeaseExpired) {
              ack_through(slot, s.flushed_through);  // seal flushed for us
              ++out.expirations;
              sess = {};
              continue;
            }
            if (s.error == svc::SvcError::kOverloaded) {
              ++out.sheds;
              continue;
            }
            const lin::Time res = recorder ? recorder->tick() : 0;
            ack_through(slot, s.flushed_through);
            out.scan_ns.record(now_ns() - t0);
            ++out.scans;
            if (recorder) {
              std::size_t word_base = 0;  // shard-local scans are partial
              if constexpr (requires { s.word_base; }) word_base = s.word_base;
              record_scan(static_cast<ProcessId>(slot), word_base,
                          std::move(s.view), inv, res);
            }
          } else {  // ---- update (pipelined; acked at a covering flush)
            const lin::Time inv = recorder ? recorder->tick() : 0;
            const auto r = front.submit_update(
                sess, [](ProcessId s, std::uint64_t q) { return Tag{s, q}; });
            if (r.error == svc::SvcError::kLeaseExpired) {
              ack_through(slot, r.flushed_through);
              ++out.expirations;
              sess = {};
              continue;
            }
            if (r.error == svc::SvcError::kOverloaded) {
              ++out.sheds;
              continue;
            }
            pending.push_back({r.seq, Tag{static_cast<ProcessId>(slot), r.seq},
                               inv, t0});
            ack_through(slot, r.flushed_through);
            if (pending.size() >= opt.pipeline) {
              const auto f = front.flush(sess);
              if (f.error == svc::SvcError::kLeaseExpired) {
                ack_through(slot, f.flushed_through);
                ++out.expirations;
                sess = {};
                continue;
              }
              if (f.error == svc::SvcError::kOk) {
                ack_through(slot, f.flushed_through);
              }
            }
          }
        }
        if (sess.connected()) {
          const std::size_t slot = sess.slot();
          const auto d = front.disconnect(sess);
          ack_through(slot, d.flushed_through);
        }
      });
    }

    go.store(true, std::memory_order_release);
    std::this_thread::sleep_for(std::chrono::duration<double>(opt.seconds));
    stop.store(true, std::memory_order_release);
    threads.clear();  // join
  }

  RunOutput out;
  for (const ThreadResult& r : results) {
    out.merged.update_ns.merge(r.update_ns);
    out.merged.scan_ns.merge(r.scan_ns);
    out.merged.global_ns.merge(r.global_ns);
    out.merged.updates += r.updates;
    out.merged.scans += r.scans;
    out.merged.global_scans += r.global_scans;
    out.merged.reconnects += r.reconnects;
    out.merged.expirations += r.expirations;
    out.merged.sheds += r.sheds;
    out.merged.connect_failures += r.connect_failures;
  }
  out.svc = front.stats();
  if constexpr (requires { front.lease_stats(); }) {
    out.lease = front.lease_stats();
  } else {
    out.lease = front.lease_manager().stats();
  }
  if constexpr (requires { front.fabric_stats(); }) {
    out.fabric = front.fabric_stats();
  }
  out.elapsed_s = opt.seconds;

  if (opt.checking()) {
    auto run_check = [&](const lin::History& history) {
      const lin::CheckResult violation = lin::check_single_writer(history);
      if (violation.has_value()) {
        out.violations = 1;
        std::fprintf(stderr, "loadgen: LINEARIZABILITY VIOLATION: %s\n",
                     violation->c_str());
      } else {
        std::fprintf(stderr,
                     "loadgen: history linearizable (%zu updates, %zu scans)\n",
                     history.updates.size(), history.scans.size());
      }
    };
    if (spill) {
      if (!spill->close()) {
        out.violations = 1;
        std::fprintf(stderr, "loadgen: --check-file write failed ('%s')\n",
                     opt.check_file.c_str());
      } else {
        std::ifstream in(opt.check_file);
        std::string error;
        const auto history = lin::read_history(in, &error);
        if (!history.has_value()) {
          out.violations = 1;
          std::fprintf(stderr, "loadgen: --check-file replay failed: %s\n",
                       error.c_str());
        } else {
          run_check(*history);
        }
      }
    } else {
      run_check(recorder->take());
    }
  }
  return out;
}

template <typename Front>
int report(Front& front, std::size_t total_words, const Options& opt) {
  const RunOutput out = run_workload(front, total_words, opt);
  const ThreadResult& m = out.merged;
  const double ops =
      static_cast<double>(m.updates + m.scans + m.global_scans);
  const double thr = ops / out.elapsed_s;
  const double scan_thr = static_cast<double>(m.scans) / out.elapsed_s;
  const double upd_thr = static_cast<double>(m.updates) / out.elapsed_s;
  const double global_thr =
      static_cast<double>(m.global_scans) / out.elapsed_s;
  const std::uint64_t cache_lookups = out.svc.cache_hits + out.svc.cache_misses;
  const double hit_ratio =
      cache_lookups ? static_cast<double>(out.svc.cache_hits) /
                          static_cast<double>(cache_lookups)
                    : 0.0;
  const double coalesce =
      out.svc.submits ? static_cast<double>(out.svc.coalesced) /
                            static_cast<double>(out.svc.submits)
                      : 0.0;
  const double attempts_per_global =
      out.fabric.global_scans
          ? static_cast<double>(out.fabric.global_scan_attempts) /
                static_cast<double>(out.fabric.global_scans)
          : 0.0;

  // ABD round accounting (backend=cluster / backend=abd only): fast-read
  // hits vs slow-path fallbacks, and protocol rounds separate from the
  // retransmit waves inside them.
  bool have_rounds = false;
  std::uint64_t protocol_rounds = 0, fast_reads = 0, fast_fallbacks = 0;
  if constexpr (requires { front.backend().abd_stats(); }) {
    const auto s = front.backend().abd_stats();
    protocol_rounds = s.protocol_rounds;
    fast_reads = s.fast_reads;
    fast_fallbacks = s.fast_fallbacks;
    have_rounds = true;
  } else if constexpr (requires { front.backend().fast_reads(); }) {
    protocol_rounds = front.backend().protocol_rounds();
    fast_reads = front.backend().fast_reads();
    fast_fallbacks = front.backend().fast_fallbacks();
    have_rounds = true;
  }
  const std::uint64_t fast_attempts = fast_reads + fast_fallbacks;
  const double fast_hit_ratio =
      fast_attempts ? static_cast<double>(fast_reads) /
                          static_cast<double>(fast_attempts)
                    : 0.0;

  std::printf("loadgen %s backend=%s mode=%s slots=%zu shards=%zu clients=%zu "
              "read=%.2f cache=%s %.2fs\n",
              opt.experiment.c_str(), opt.backend.c_str(), opt.mode.c_str(),
              opt.slots, opt.shards, opt.clients, opt.read_ratio,
              opt.cache ? "on" : "off", out.elapsed_s);
  std::printf("  throughput  %10.0f ops/s (%0.0f scans/s, %0.0f updates/s"
              ", %0.0f global scans/s)\n",
              thr, scan_thr, upd_thr, global_thr);
  std::printf("  scan   p50 %8.1f us  p99 %8.1f us  p999 %8.1f us  (n=%llu)\n",
              m.scan_ns.percentile(0.50) / 1e3, m.scan_ns.percentile(0.99) / 1e3,
              m.scan_ns.percentile(0.999) / 1e3,
              static_cast<unsigned long long>(m.scan_ns.count()));
  std::printf("  update p50 %8.1f us  p99 %8.1f us  p999 %8.1f us  (n=%llu)\n",
              m.update_ns.percentile(0.50) / 1e3,
              m.update_ns.percentile(0.99) / 1e3,
              m.update_ns.percentile(0.999) / 1e3,
              static_cast<unsigned long long>(m.update_ns.count()));
  if (opt.shards > 0) {
    std::printf("  global p50 %8.1f us  p99 %8.1f us  p999 %8.1f us  (n=%llu)\n",
                m.global_ns.percentile(0.50) / 1e3,
                m.global_ns.percentile(0.99) / 1e3,
                m.global_ns.percentile(0.999) / 1e3,
                static_cast<unsigned long long>(m.global_ns.count()));
    std::printf("  fabric      %zu shards x %zu words; %.2f attempts/global "
                "scan, %llu confirm failures, %llu sealed\n",
                opt.shards, opt.slots, attempts_per_global,
                static_cast<unsigned long long>(
                    out.fabric.global_confirm_failures),
                static_cast<unsigned long long>(out.fabric.sealed_scans));
  }
  std::printf("  batching    %llu flushes, %.2f coalesced/submit\n",
              static_cast<unsigned long long>(out.svc.flushes), coalesce);
  std::printf("  scan cache  %.1f%% hit (%llu/%llu)\n", 100.0 * hit_ratio,
              static_cast<unsigned long long>(out.svc.cache_hits),
              static_cast<unsigned long long>(cache_lookups));
  std::printf("  leases      %llu grants, %llu steals, %llu timeouts, "
              "%llu queue-full; %llu reconnects, %llu expirations\n",
              static_cast<unsigned long long>(out.lease.grants),
              static_cast<unsigned long long>(out.lease.steals),
              static_cast<unsigned long long>(out.lease.timeouts),
              static_cast<unsigned long long>(out.lease.queue_rejections),
              static_cast<unsigned long long>(m.reconnects),
              static_cast<unsigned long long>(m.expirations));
  std::printf("  shed        %llu (client-observed %llu)\n",
              static_cast<unsigned long long>(out.svc.sheds),
              static_cast<unsigned long long>(m.sheds));
  if (have_rounds) {
    std::printf("  abd rounds  %llu protocol rounds; fast reads %llu, "
                "fallbacks %llu (hit %.1f%%)\n",
                static_cast<unsigned long long>(protocol_rounds),
                static_cast<unsigned long long>(fast_reads),
                static_cast<unsigned long long>(fast_fallbacks),
                100.0 * fast_hit_ratio);
  }
  if (opt.checking()) {
    std::printf("  check       %s%s\n",
                out.violations == 0 ? "LINEARIZABLE" : "VIOLATION",
                opt.check_file.empty() ? "" : " (spilled to disk)");
  }

  bench::JsonWriter json(opt.experiment);
  json.field("backend", opt.backend)
      .field("mode", opt.mode)
      .field("slots", static_cast<std::uint64_t>(opt.slots))
      .field("shards", static_cast<std::uint64_t>(opt.shards))
      .field("clients", static_cast<std::uint64_t>(opt.clients))
      .field("seconds", out.elapsed_s)
      .field("rate", opt.rate)
      .field("read_ratio", opt.read_ratio)
      .field("global_ratio", opt.global_ratio)
      .field("churn", opt.churn)
      .field("cache", opt.cache)
      .field("checked", opt.checking())
      .field("check_spilled", !opt.check_file.empty())
      .field("throughput", thr)
      .field("scan_throughput", scan_thr)
      .field("update_throughput", upd_thr)
      .field("global_scan_throughput", global_thr)
      .field("scan_p50_us", m.scan_ns.percentile(0.50) / 1e3)
      .field("scan_p99_us", m.scan_ns.percentile(0.99) / 1e3)
      .field("scan_p999_us", m.scan_ns.percentile(0.999) / 1e3)
      .field("update_p50_us", m.update_ns.percentile(0.50) / 1e3)
      .field("update_p99_us", m.update_ns.percentile(0.99) / 1e3)
      .field("update_p999_us", m.update_ns.percentile(0.999) / 1e3)
      .field("global_p50_us", m.global_ns.percentile(0.50) / 1e3)
      .field("global_p99_us", m.global_ns.percentile(0.99) / 1e3)
      .field("global_scans", out.fabric.global_scans)
      .field("global_attempts_per_scan", attempts_per_global)
      .field("global_confirm_failures", out.fabric.global_confirm_failures)
      .field("global_sealed", out.fabric.sealed_scans)
      .field("cache_hit_ratio", hit_ratio)
      .field("coalesced_per_submit", coalesce)
      .field("flushes", out.svc.flushes)
      .field("lease_grants", out.lease.grants)
      .field("lease_steals", out.lease.steals)
      .field("lease_timeouts", out.lease.timeouts)
      .field("sheds", out.svc.sheds)
      .field("protocol_rounds", protocol_rounds)
      .field("fast_reads", fast_reads)
      .field("fast_fallbacks", fast_fallbacks)
      .field("fast_hit_ratio", fast_hit_ratio)
      .field("violations", out.violations);
  json.print();
  return out.violations == 0 ? 0 : 1;
}

svc::ServiceConfig service_config(const Options& opt) {
  svc::ServiceConfig cfg;
  cfg.max_batch = opt.batch;
  cfg.cache_scans = opt.cache;
  cfg.max_concurrent_ops = opt.max_concurrent;
  cfg.lease.ttl = std::chrono::nanoseconds(
      static_cast<std::uint64_t>(opt.ttl_ms * 1e6));
  return cfg;
}

/// Run the workload against one SnapshotService (no --shards) or a
/// ShardedSnapshotFabric of opt.shards services; make(shard) builds one
/// backend of opt.slots words per shard.
template <typename Backend, typename MakeBackend>
int run_front(const Options& opt, MakeBackend&& make) {
  if (opt.shards == 0) {
    const std::unique_ptr<Backend> backend = make(0);
    svc::SnapshotService<Backend, Tag> service(*backend, service_config(opt));
    return report(service, opt.slots, opt);
  }
  shard::FabricConfig cfg;
  cfg.service = service_config(opt);
  cfg.max_global_attempts = opt.global_attempts;
  std::vector<std::unique_ptr<Backend>> backends;
  backends.reserve(opt.shards);
  for (std::size_t s = 0; s < opt.shards; ++s) backends.push_back(make(s));
  shard::ShardedSnapshotFabric<Backend, Tag> fabric(std::move(backends), cfg);
  return report(fabric, fabric.words(), opt);
}

/// Snapshot backend over a REAL socket cluster of abd_replicad daemons
/// (--cluster host:port,...): per-slot RemoteRegisterClients — writers use
/// ts = tag.seq, which the service keeps monotone per slot across lease
/// handovers, so retransmitted writes stay idempotent — and scan is a
/// bounded double collect of atomic (write-back) reads: two identical
/// consecutive collects form a linearizable snapshot (Afek et al.
/// Observation 1). Quorum loss surfaces as QuorumUnavailable, same as the
/// in-process ABD backend.
class ClusterSnapshot {
 public:
  ClusterSnapshot(const std::vector<net::Endpoint>& endpoints,
                  std::size_t slots, std::uint64_t seed)
      : slots_(slots) {
    abd::AbdConfig config;
    config.op_deadline = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::seconds(5));
    for (std::size_t i = 0; i < slots; ++i) {
      writers_.push_back(std::make_unique<abd::RemoteRegisterClient>(
          endpoints, seed * 10000 + 2000 + i, config));
      scanners_.push_back(std::make_unique<abd::RemoteRegisterClient>(
          endpoints, seed * 10000 + 3000 + i, config));
    }
  }

  std::size_t size() const { return slots_; }

  void update(ProcessId i, Tag v) {
    if (writers_[i]->try_write(i, v.seq, net::wire::encode_tag(v)) !=
        abd::OpStatus::kOk) {
      throw abd::QuorumUnavailable("write");
    }
  }

  std::vector<Tag> scan(ProcessId i) {
    auto& client = *scanners_[i % slots_];
    constexpr int kMaxCollects = 64;
    auto prev = collect(client);
    for (int attempt = 1; attempt < kMaxCollects; ++attempt) {
      auto cur = collect(client);
      if (cur.first == prev.first) return cur.second;
      prev = std::move(cur);
    }
    throw abd::QuorumUnavailable("scan (no clean double collect)");
  }

 private:
  /// (ts vector, tag vector) of one collect; throws on quorum timeout.
  std::pair<std::vector<std::uint64_t>, std::vector<Tag>> collect(
      abd::RemoteRegisterClient& client) {
    std::vector<std::uint64_t> ts(slots_);
    std::vector<Tag> tags(slots_);
    for (std::size_t w = 0; w < slots_; ++w) {
      const auto got = client.try_read(w);
      if (!got.has_value()) throw abd::QuorumUnavailable("scan read");
      ts[w] = got->ts;
      if (got->ts != 0) {
        const auto tag = net::wire::decode_tag(got->value);
        if (!tag.has_value()) throw abd::QuorumUnavailable("scan decode");
        tags[w] = *tag;
      }
    }
    return {std::move(ts), std::move(tags)};
  }

 public:
  /// Summed client-side round counters across all writer/scanner clients
  /// (the E16 fast-hit accounting for --backend cluster).
  abd::RemoteRegisterClient::Stats abd_stats() const {
    abd::RemoteRegisterClient::Stats total;
    const auto add = [&](const abd::RemoteRegisterClient& c) {
      const auto s = c.stats();
      total.protocol_rounds += s.protocol_rounds;
      total.fast_reads += s.fast_reads;
      total.fast_fallbacks += s.fast_fallbacks;
      total.retransmit_waves += s.retransmit_waves;
      total.dup_replies += s.dup_replies;
      total.stale_epoch_replies += s.stale_epoch_replies;
      total.round_timeouts += s.round_timeouts;
    };
    for (const auto& c : writers_) add(*c);
    for (const auto& c : scanners_) add(*c);
    return total;
  }

 private:
  std::size_t slots_;
  std::vector<std::unique_ptr<abd::RemoteRegisterClient>> writers_;
  std::vector<std::unique_ptr<abd::RemoteRegisterClient>> scanners_;
};

/// A3 behind the single-writer adapter (m == n words).
class MwAsSw {
 public:
  MwAsSw(std::size_t n, const Tag& init) : snap_(n, n, init), adapter_(snap_) {}
  std::size_t size() const { return adapter_.size(); }
  void update(ProcessId i, Tag v) { adapter_.update(i, v); }
  std::vector<Tag> scan(ProcessId i) { return adapter_.scan(i); }

 private:
  core::BoundedMwSnapshot<Tag> snap_;
  core::SingleWriterAdapter<core::BoundedMwSnapshot<Tag>> adapter_;
};

int usage() {
  std::fprintf(
      stderr,
      "usage: loadgen [--backend a1|a2|a3|a4|abd|cluster] [--mode closed|open]\n"
      "               [--slots N] [--shards S] [--clients M] [--seconds S]\n"
      "               [--rate R] [--read-ratio r] [--global-ratio g]\n"
      "               [--global-attempts k] [--churn p] [--pipeline k]\n"
      "               [--batch b] [--cache on|off] [--max-concurrent C]\n"
      "               [--ttl-ms T] [--seed s] [--check]\n"
      "               [--check-file history.txt]  (stream the checked history\n"
      "                to disk: O(1) memory during the run, file replayable\n"
      "                via tools/check_history)\n"
      "               [--trace out.json|out.jsonl] [--experiment name]\n"
      "               [--cluster host:port,...]   (backend=cluster: the\n"
      "                abd_replicad endpoints to drive)\n");
  return 2;
}

}  // namespace
}  // namespace asnap

int main(int argc, char** argv) {
  using namespace asnap;
  using bench::consume_flag;

  Options opt;
  opt.backend = consume_flag(argc, argv, "--backend", opt.backend);
  opt.mode = consume_flag(argc, argv, "--mode", opt.mode);
  opt.slots = std::strtoull(
      consume_flag(argc, argv, "--slots", "3").c_str(), nullptr, 10);
  opt.shards = std::strtoull(
      consume_flag(argc, argv, "--shards", "0").c_str(), nullptr, 10);
  opt.clients = std::strtoull(
      consume_flag(argc, argv, "--clients", "12").c_str(), nullptr, 10);
  opt.seconds = std::atof(consume_flag(argc, argv, "--seconds", "1").c_str());
  opt.rate = std::atof(consume_flag(argc, argv, "--rate", "2000").c_str());
  opt.read_ratio =
      std::atof(consume_flag(argc, argv, "--read-ratio", "0.9").c_str());
  opt.global_ratio =
      std::atof(consume_flag(argc, argv, "--global-ratio", "0.1").c_str());
  opt.global_attempts = std::strtoull(
      consume_flag(argc, argv, "--global-attempts", "8").c_str(), nullptr, 10);
  opt.churn = std::atof(consume_flag(argc, argv, "--churn", "0.02").c_str());
  opt.pipeline = std::strtoull(
      consume_flag(argc, argv, "--pipeline", "4").c_str(), nullptr, 10);
  opt.batch = std::strtoull(
      consume_flag(argc, argv, "--batch", "8").c_str(), nullptr, 10);
  opt.cache = consume_flag(argc, argv, "--cache", "on") != "off";
  opt.max_concurrent = std::strtoull(
      consume_flag(argc, argv, "--max-concurrent", "0").c_str(), nullptr, 10);
  opt.ttl_ms = std::atof(consume_flag(argc, argv, "--ttl-ms", "100").c_str());
  opt.seed = std::strtoull(consume_flag(argc, argv, "--seed", "1").c_str(),
                           nullptr, 10);
  opt.check_file = consume_flag(argc, argv, "--check-file", "");
  opt.trace_path = consume_flag(argc, argv, "--trace", "");
  opt.experiment = consume_flag(argc, argv, "--experiment", opt.experiment);
  opt.cluster = consume_flag(argc, argv, "--cluster", "");
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      opt.check = true;
    } else {
      std::fprintf(stderr, "loadgen: unknown argument '%s'\n", argv[i]);
      return usage();
    }
  }
  if (opt.slots == 0 || opt.clients == 0 ||
      (opt.mode != "closed" && opt.mode != "open")) {
    return usage();
  }
  if (opt.experiment == "E11-svc" && opt.shards > 0) {
    opt.experiment = "E13-shard";  // default label follows the topology
  }

  trace::Session trace_session(opt.trace_path);

  if (opt.backend == "a1") {
    return run_front<core::UnboundedSwSnapshot<lin::Tag>>(
        opt, [&](std::size_t) {
          return std::make_unique<core::UnboundedSwSnapshot<lin::Tag>>(
              opt.slots, lin::Tag{});
        });
  }
  if (opt.backend == "a2") {
    return run_front<core::BoundedSwSnapshot<lin::Tag>>(
        opt, [&](std::size_t) {
          return std::make_unique<core::BoundedSwSnapshot<lin::Tag>>(
              opt.slots, lin::Tag{});
        });
  }
  if (opt.backend == "a3") {
    return run_front<MwAsSw>(opt, [&](std::size_t) {
      return std::make_unique<MwAsSw>(opt.slots, lin::Tag{});
    });
  }
  if (opt.backend == "a4") {
    return run_front<core::MvccSnapshot<lin::Tag>>(opt, [&](std::size_t) {
      return std::make_unique<core::MvccSnapshot<lin::Tag>>(opt.slots,
                                                            lin::Tag{});
    });
  }
  if (opt.backend == "abd") {
    return run_front<abd::MessagePassingSnapshot<lin::Tag>>(
        opt, [&](std::size_t shard) {
          // Distinct simulated-network seed per shard.
          return std::make_unique<abd::MessagePassingSnapshot<lin::Tag>>(
              opt.slots, lin::Tag{}, opt.seed + shard * 7919);
        });
  }
  if (opt.backend == "cluster") {
    if (opt.shards > 0) {
      std::fprintf(stderr,
                   "loadgen: --shards is not supported with backend=cluster "
                   "(one daemon set = one shard)\n");
      return usage();
    }
    const auto endpoints = net::parse_endpoints(opt.cluster);
    if (!endpoints.has_value() || endpoints->size() < 3) {
      std::fprintf(stderr,
                   "loadgen: --backend cluster needs --cluster with >= 3 "
                   "host:port endpoints\n");
      return usage();
    }
    ClusterSnapshot snap(*endpoints, opt.slots, opt.seed);
    svc::SnapshotService<ClusterSnapshot, lin::Tag> service(
        snap, service_config(opt));
    return report(service, opt.slots, opt);
  }
  std::fprintf(stderr, "loadgen: unknown backend '%s'\n", opt.backend.c_str());
  return usage();
}
