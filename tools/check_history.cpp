// Replay a saved operation history through all available checkers.
//
//   build/tools/check_history <file.history> [--multi-writer]
//
// File format: see src/lin/history_io.hpp. Default runs the exact
// single-writer checker plus (when the history is small enough) the
// Wing-Gong oracle and the SWS-automaton behavior membership decider;
// --multi-writer switches the polynomial check to the sound forced-edge
// variant. Exit code 0 = accepted by every checker that gave a verdict.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "lin/history.hpp"
#include "lin/history_io.hpp"
#include "lin/snapshot_checker.hpp"
#include "lin/wing_gong.hpp"
#include "spec/sws_automaton.hpp"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <file.history> [--multi-writer]\n",
                 argv[0]);
    return 2;
  }
  const bool multi_writer =
      argc > 2 && std::string(argv[2]) == "--multi-writer";

  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", argv[1]);
    return 2;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();

  std::string error;
  const auto history = asnap::lin::parse_history(buffer.str(), &error);
  if (!history.has_value()) {
    std::fprintf(stderr, "parse error: %s\n", error.c_str());
    return 2;
  }
  std::printf("history: %zu words, %zu updates, %zu scans\n",
              history->num_words, history->updates.size(),
              history->scans.size());

  bool all_ok = true;
  if (multi_writer) {
    const auto violation = asnap::lin::check_multi_writer_forced(*history);
    std::printf("forced-edge checker: %s\n",
                violation ? violation->c_str() : "accepted");
    all_ok &= !violation.has_value();
  } else {
    const auto violation = asnap::lin::check_single_writer(*history);
    std::printf("single-writer exact checker: %s\n",
                violation ? violation->c_str() : "accepted");
    all_ok &= !violation.has_value();
  }

  const auto wg = asnap::lin::wing_gong_check(*history, 30);
  switch (wg) {
    case asnap::lin::WgVerdict::kLinearizable:
      std::printf("wing-gong oracle: linearizable\n");
      break;
    case asnap::lin::WgVerdict::kNotLinearizable:
      std::printf("wing-gong oracle: NOT linearizable\n");
      all_ok = false;
      break;
    case asnap::lin::WgVerdict::kTooLarge:
      std::printf("wing-gong oracle: skipped (history too large)\n");
      break;
  }

  if (!multi_writer) {
    const auto sws = asnap::spec::sws_accepts(*history, 30);
    if (sws.has_value()) {
      std::printf("SWS automaton: %s\n",
                  *sws ? "behavior accepted" : "NOT a behavior of SWS");
      all_ok &= *sws;
    } else {
      std::printf("SWS automaton: skipped (history too large)\n");
    }
  }

  std::printf("%s\n", all_ok ? "OK" : "VIOLATION");
  return all_ok ? 0 : 1;
}
