// Systematic schedule exploration from the command line: runs a small
// fixed program (u updates + s scans spread over p processes) under every
// schedule with at most k preemptions, checking each run's history.
//
//   build/tools/explore_driver [algo] [procs] [ops_per_proc] [preemptions] [max_runs]
//
//   algo: fig2 | fig3 | fig4 | broken     (default fig3)
//
// "broken" substitutes the single-collect scan; the tool should then report
// violations — use it to confirm the checker actually bites.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "core/snapshot.hpp"
#include "lin/history.hpp"
#include "lin/snapshot_checker.hpp"
#include "reg/register_array.hpp"
#include "sched/explorer.hpp"

namespace {

using namespace asnap;
using lin::Tag;

class BrokenSingleCollect {
 public:
  BrokenSingleCollect(std::size_t n, const Tag& init) : regs_(n, init) {}
  std::size_t size() const { return regs_.size(); }
  void update(ProcessId i, Tag v) { regs_.write(i, v); }
  std::vector<Tag> scan(ProcessId i) {
    std::vector<Tag> out;
    for (std::size_t j = 0; j < regs_.size(); ++j) {
      out.push_back(regs_.read(static_cast<ProcessId>(j), i));
    }
    return out;
  }

 private:
  reg::SharedMemoryRegisterArray<Tag> regs_;
};

class Fig4AsSw {
 public:
  Fig4AsSw(std::size_t n, const Tag& init) : snap_(n, n, init) {}
  std::size_t size() const { return snap_.size(); }
  void update(ProcessId i, Tag v) { snap_.update(i, i, v); }
  std::vector<Tag> scan(ProcessId i) { return snap_.scan(i); }

 private:
  core::BoundedMwSnapshot<Tag> snap_;
};

template <typename Snap>
int explore_program(std::size_t procs, int ops_per_proc,
                    std::uint64_t preemptions, std::uint64_t max_runs) {
  std::uint64_t violations = 0;
  std::shared_ptr<lin::Recorder> current;

  sched::ProgramFactory factory = [&]() {
    auto snap = std::make_shared<Snap>(procs, Tag{});
    current = std::make_shared<lin::Recorder>(procs);
    auto recorder = current;
    std::vector<std::function<void()>> bodies;
    for (std::size_t p = 0; p < procs; ++p) {
      bodies.push_back([snap, recorder, p, ops_per_proc] {
        const auto pid = static_cast<ProcessId>(p);
        std::uint64_t seq = 0;
        for (int op = 0; op < ops_per_proc; ++op) {
          if ((op + static_cast<int>(p)) % 2 == 0) {
            const lin::Time inv = recorder->tick();
            snap->update(pid, Tag{pid, ++seq});
            const lin::Time res = recorder->tick();
            recorder->add_update(pid, p, Tag{pid, seq}, inv, res);
          } else {
            const lin::Time inv = recorder->tick();
            std::vector<Tag> view = snap->scan(pid);
            const lin::Time res = recorder->tick();
            recorder->add_scan(pid, std::move(view), inv, res);
          }
        }
      });
    }
    return bodies;
  };

  sched::ExploreConfig cfg;
  cfg.max_preemptions = preemptions;
  cfg.max_runs = max_runs;
  const sched::ExploreResult result =
      sched::explore(factory, cfg, [&](const sched::RunReport&) {
        const lin::History h = current->take();
        if (lin::check_single_writer(h).has_value()) ++violations;
      });

  std::printf("explored %llu schedules (%s), %llu violations\n",
              static_cast<unsigned long long>(result.runs),
              result.exhausted_budget ? "budget exhausted" : "exhaustive",
              static_cast<unsigned long long>(violations));
  return violations == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string algo = argc > 1 ? argv[1] : "fig3";
  const std::size_t procs =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 2;
  const int ops = argc > 3 ? std::atoi(argv[3]) : 2;
  const std::uint64_t preemptions =
      argc > 4 ? static_cast<std::uint64_t>(std::atoll(argv[4])) : 1;
  const std::uint64_t max_runs =
      argc > 5 ? static_cast<std::uint64_t>(std::atoll(argv[5])) : 50000;

  std::printf("explore: algo=%s procs=%zu ops=%d preemptions<=%llu\n",
              algo.c_str(), procs, ops,
              static_cast<unsigned long long>(preemptions));

  if (algo == "fig2") {
    return explore_program<asnap::core::UnboundedSwSnapshot<asnap::lin::Tag>>(
        procs, ops, preemptions, max_runs);
  }
  if (algo == "fig3") {
    return explore_program<asnap::core::BoundedSwSnapshot<asnap::lin::Tag>>(
        procs, ops, preemptions, max_runs);
  }
  if (algo == "fig4") {
    return explore_program<Fig4AsSw>(procs, ops, preemptions, max_runs);
  }
  if (algo == "broken") {
    return explore_program<BrokenSingleCollect>(procs, ops, preemptions,
                                                max_runs);
  }
  std::fprintf(stderr, "unknown algo '%s'\n", algo.c_str());
  return 2;
}
