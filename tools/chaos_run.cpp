// chaos_run: named self-healing chaos scenarios over the message-passing
// snapshot (see src/chaos/). Exits nonzero when a run records any safety
// violation or liveness flag, so CI and scripts/run_experiments.sh can gate
// on it directly.
//
// Scenarios:
//   mixed           crash/recover + partition/heal + message loss against a
//                   self-healing cluster (the acceptance scenario).
//   breaker-ab      the same outage run twice, circuit breaker off then on,
//                   to measure what the breaker buys (E10).
//   broken-breaker  NEGATIVE control: the unsafe_shrink_quorum misfeature
//                   lets an isolated node "commit" without a majority; the
//                   linearizability checker must catch it, so this scenario
//                   is expected to FAIL (ctest wraps it in WILL_FAIL).
//
// Usage:
//   chaos_run [--scenario mixed|breaker-ab|broken-breaker]
//             [--seconds S] [--nodes N] [--seed K]
//             [--crash-rate HZ] [--partition-rate HZ] [--loss P]
//             [--breaker on|off] [--trace out.json|out.jsonl]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "chaos/orchestrator.hpp"
#include "chaos/schedule.hpp"
#include "trace/exporter.hpp"

namespace {

using namespace asnap;

std::chrono::microseconds seconds_us(double s) {
  return std::chrono::microseconds(static_cast<std::int64_t>(s * 1e6));
}

double mean_us(const std::vector<std::chrono::nanoseconds>& xs) {
  if (xs.empty()) return 0.0;
  double total = 0.0;
  for (const auto x : xs) {
    total += std::chrono::duration<double, std::micro>(x).count();
  }
  return total / static_cast<double>(xs.size());
}

struct Cli {
  std::string scenario = "mixed";
  double seconds = 3.0;
  std::size_t nodes = 5;
  std::uint64_t seed = 1;
  double crash_rate = 2.0;
  double partition_rate = 0.5;
  double loss = 0.10;
  bool breaker = true;
  std::string trace_path;
};

void print_report(const std::string& label, const chaos::RunReport& r) {
  std::printf("== %s ==\n", label.c_str());
  std::printf(
      "  workload    : %llu updates, %llu scans ok; %llu failed update "
      "attempts, %llu failed scans, %llu indeterminate (history %zu ops)\n",
      (unsigned long long)r.updates_ok, (unsigned long long)r.scans_ok,
      (unsigned long long)r.failed_update_attempts,
      (unsigned long long)r.failed_scans,
      (unsigned long long)r.indeterminate_updates, r.history_ops);
  std::printf(
      "  injection   : %llu crashes, %llu partitions\n",
      (unsigned long long)r.crashes_injected,
      (unsigned long long)r.partitions_injected);
  std::printf(
      "  healing     : %llu suspicions, %llu trusts, %llu recoveries "
      "(%llu failed attempts); detection mean %.1f us, recovery mean %.1f us\n",
      (unsigned long long)r.suspicions, (unsigned long long)r.trusts,
      (unsigned long long)r.recoveries,
      (unsigned long long)r.failed_recovery_attempts,
      mean_us(r.detection_latencies), mean_us(r.recovery_latencies));
  std::printf(
      "  degradation : %llu breaker skips, %llu fail-fasts, %llu stale-epoch "
      "replies, %llu round timeouts, %llu retransmits\n",
      (unsigned long long)r.breaker_skips, (unsigned long long)r.fail_fasts,
      (unsigned long long)r.stale_epoch_replies,
      (unsigned long long)r.round_timeouts, (unsigned long long)r.retransmits);
  std::printf(
      "  latency     : update p50 %.1f us p99 %.1f us | scan p50 %.1f us "
      "p99 %.1f us\n",
      r.update_latency_ns.percentile(0.50) / 1e3,
      r.update_latency_ns.percentile(0.99) / 1e3,
      r.scan_latency_ns.percentile(0.50) / 1e3,
      r.scan_latency_ns.percentile(0.99) / 1e3);
  if (r.violations.empty()) {
    std::printf("  verdict     : PASS (no violations)\n");
  } else {
    std::printf("  verdict     : FAIL (%zu violation(s))\n",
                r.violations.size());
    for (const std::string& v : r.violations) {
      std::printf("    - %s\n", v.c_str());
    }
  }
}

void print_json(const Cli& cli, const std::string& label, bool breaker,
                const chaos::RunReport& r) {
  const std::uint64_t attempts =
      r.updates_ok + r.scans_ok + r.failed_update_attempts + r.failed_scans;
  bench::JsonWriter j("E10-chaos");
  j.field("scenario", label)
      .field("nodes", (std::uint64_t)cli.nodes)
      .field("seconds", cli.seconds)
      .field("seed", (std::uint64_t)cli.seed)
      .field("crash_rate", cli.crash_rate)
      .field("loss", cli.loss)
      .field("breaker", breaker)
      .field("violations", (std::uint64_t)r.violations.size())
      .field("updates_ok", r.updates_ok)
      .field("scans_ok", r.scans_ok)
      .field("failed_update_attempts", r.failed_update_attempts)
      .field("failed_scans", r.failed_scans)
      .field("indeterminate_updates", r.indeterminate_updates)
      .field("availability",
             attempts == 0 ? 1.0
                           : (double)(r.updates_ok + r.scans_ok) /
                                 (double)attempts)
      .field("crashes", r.crashes_injected)
      .field("partitions", r.partitions_injected)
      .field("suspicions", r.suspicions)
      .field("recoveries", r.recoveries)
      .field("detection_mean_us", mean_us(r.detection_latencies))
      .field("recovery_mean_us", mean_us(r.recovery_latencies))
      .field("update_p50_us", r.update_latency_ns.percentile(0.50) / 1e3)
      .field("update_p99_us", r.update_latency_ns.percentile(0.99) / 1e3)
      .field("scan_p50_us", r.scan_latency_ns.percentile(0.50) / 1e3)
      .field("scan_p99_us", r.scan_latency_ns.percentile(0.99) / 1e3)
      .field("breaker_skips", r.breaker_skips)
      .field("fail_fasts", r.fail_fasts)
      .field("stale_epoch_replies", r.stale_epoch_replies)
      .field("round_timeouts", r.round_timeouts);
  j.print();
}

chaos::OrchestratorOptions base_options(const Cli& cli) {
  chaos::OrchestratorOptions opt;
  opt.nodes = cli.nodes;
  opt.seed = cli.seed;
  opt.duration = seconds_us(cli.seconds);
  opt.abd.breaker.enabled = cli.breaker;
  return opt;
}

/// The acceptance scenario: sustained workload under crash/recover,
/// partition/heal and message loss, self-healing on.
int run_mixed(const Cli& cli) {
  chaos::OrchestratorOptions opt = base_options(cli);
  chaos::ChaosProfile profile;
  profile.duration = opt.duration;
  profile.crash_rate_hz = cli.crash_rate;
  profile.partition_rate_hz = cli.partition_rate;
  profile.plan.drop_prob = cli.loss;
  opt.schedule = chaos::random_schedule(cli.nodes, profile, cli.seed);
  const chaos::RunReport r = chaos::run(opt);
  print_report("mixed", r);
  print_json(cli, "mixed", cli.breaker, r);
  return r.ok() ? 0 : 1;
}

/// One node down for nearly the whole run (supervisor held off); measure
/// client latency with the breaker off, then on. The breaker arm should
/// show a much lower p99: rounds stop waiting out retransmit timers aimed
/// at the dead replica.
int run_breaker_ab(const Cli& cli) {
  int rc = 0;
  for (const bool breaker : {false, true}) {
    Cli arm = cli;
    arm.breaker = breaker;
    chaos::OrchestratorOptions opt = base_options(arm);
    // Detector stays on (the breaker needs it); the supervisor is parked
    // past the end of the run so the outage actually persists.
    opt.supervisor.restart_delay = opt.duration * 2;
    const auto victim = static_cast<net::NodeId>(cli.nodes - 1);
    chaos::Action loss;
    loss.kind = chaos::ActionKind::kSetFaultPlan;
    loss.plan.drop_prob = cli.loss;
    chaos::Action crash;
    crash.kind = chaos::ActionKind::kCrash;
    crash.at = std::chrono::milliseconds(10);
    crash.node = victim;
    chaos::Action restart;  // let convergence succeed at the very end
    restart.kind = chaos::ActionKind::kRecover;
    restart.at = opt.duration;
    restart.node = victim;
    opt.schedule.actions = {loss, crash, restart};
    const chaos::RunReport r = chaos::run(opt);
    print_report(breaker ? "breaker-ab (breaker on)"
                         : "breaker-ab (breaker off)",
                 r);
    print_json(arm, "breaker-ab", breaker, r);
    if (!r.ok()) rc = 1;
  }
  return rc;
}

/// NEGATIVE control. unsafe_shrink_quorum lets a partitioned-away node
/// shrink its quorum below a majority instead of failing fast, which is
/// exactly the split-brain the breaker must never cause. The isolated
/// node's updates and scans "succeed" against itself alone, the survivors
/// never see them, and check_single_writer reports the stale reads. A
/// passing run here would mean the checkers lost their teeth.
int run_broken_breaker(const Cli& cli) {
  Cli fixed = cli;
  fixed.nodes = 5;
  fixed.breaker = true;
  chaos::OrchestratorOptions opt = base_options(fixed);
  opt.abd.breaker.unsafe_shrink_quorum = true;
  chaos::Action part;
  part.kind = chaos::ActionKind::kPartition;
  part.at = opt.duration / 10;
  part.groups = {{0}, {1, 2, 3, 4}};
  chaos::Action heal;
  heal.kind = chaos::ActionKind::kHeal;
  heal.at = opt.duration * 9 / 10;
  opt.schedule.actions = {part, heal};
  const chaos::RunReport r = chaos::run(opt);
  print_report("broken-breaker (negative control)", r);
  print_json(fixed, "broken-breaker", true, r);
  if (r.ok()) {
    std::printf(
        "broken-breaker: expected the checkers to catch the unsafe quorum "
        "shrink, but the run passed\n");
  }
  return r.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  cli.scenario = bench::consume_flag(argc, argv, "--scenario", cli.scenario);
  cli.seconds =
      std::atof(bench::consume_flag(argc, argv, "--seconds", "3").c_str());
  cli.nodes = static_cast<std::size_t>(
      std::atoi(bench::consume_flag(argc, argv, "--nodes", "5").c_str()));
  cli.seed = static_cast<std::uint64_t>(
      std::atoll(bench::consume_flag(argc, argv, "--seed", "1").c_str()));
  cli.crash_rate = std::atof(
      bench::consume_flag(argc, argv, "--crash-rate", "2").c_str());
  cli.partition_rate = std::atof(
      bench::consume_flag(argc, argv, "--partition-rate", "0.5").c_str());
  cli.loss =
      std::atof(bench::consume_flag(argc, argv, "--loss", "0.1").c_str());
  cli.breaker =
      bench::consume_flag(argc, argv, "--breaker", "on") != std::string("off");
  cli.trace_path = bench::consume_flag(argc, argv, "--trace", "");
  if (cli.seconds <= 0 || cli.nodes < 3) {
    std::fprintf(stderr, "chaos_run: need --seconds > 0 and --nodes >= 3\n");
    return 2;
  }

  trace::Session session(cli.trace_path);
  if (cli.scenario == "mixed") return run_mixed(cli);
  if (cli.scenario == "breaker-ab") return run_breaker_ab(cli);
  if (cli.scenario == "broken-breaker") return run_broken_breaker(cli);
  std::fprintf(stderr,
               "chaos_run: unknown --scenario '%s' (mixed, breaker-ab, "
               "broken-breaker)\n",
               cli.scenario.c_str());
  return 2;
}
