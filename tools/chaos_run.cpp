// chaos_run: named self-healing chaos scenarios over the message-passing
// snapshot (see src/chaos/). Exits nonzero when a run records any safety
// violation or liveness flag, so CI and scripts/run_experiments.sh can gate
// on it directly.
//
// Scenarios:
//   mixed           crash/recover + partition/heal + message loss against a
//                   self-healing cluster (the acceptance scenario).
//   breaker-ab      the same outage run twice, circuit breaker off then on,
//                   to measure what the breaker buys (E10).
//   broken-breaker  NEGATIVE control: the unsafe_shrink_quorum misfeature
//                   lets an isolated node "commit" without a majority; the
//                   linearizability checker must catch it, so this scenario
//                   is expected to FAIL (ctest wraps it in WILL_FAIL).
//   broken-fastread NEGATIVE control: unsafe_always_fast_read skips the
//                   read write-back unconditionally (the exact mutant the
//                   fast-read stability evidence exists to prevent). A
//                   deterministic partition schedule around a timed-out
//                   write produces a new/old read inversion that
//                   check_single_writer must reject, so this scenario is
//                   expected to FAIL (ctest wraps it in WILL_FAIL).
//   real            REAL PROCESSES: spawn --nodes abd_replicad daemons on
//                   127.0.0.1 sockets, run a checked workload through
//                   abd::RemoteRegisterClient while injecting kill -9 and
//                   SIGSTOP faults on the live PIDs (majority-safe, seeded),
//                   restart victims via the process supervisor, then audit
//                   durability (every acked write still readable) and run
//                   the exact linearizability checker. ISSUE 6's acceptance
//                   scenario; also aliased as `--real`.
//   net             the real cluster behind a net::ChaosProxy: ambient
//                   seeded loss/delay/jitter/reorder on every client<->
//                   replica link plus bounded bursts of asymmetric
//                   blackholes, link flaps, mid-frame stalls, bandwidth
//                   throttling and connection resets — all majority-safe.
//                   Ends with heal + liveness watchdog (operations must
//                   complete once the network is perfect again), the
//                   durability audit and the exact linearizability check.
//   net+kill        `net` composed with the kill -9 / SIGSTOP injector:
//                   wire faults and process faults under one shared
//                   majority rail.
//   net-split       NEGATIVE control: minority-only connectivity (a
//                   majority of links blackholed both ways) held for the
//                   whole run with the safety rail off and no heal. The
//                   liveness watchdog and durability audit must flag it,
//                   so ctest wraps it in WILL_FAIL.
//
// Usage:
//   chaos_run [--scenario mixed|breaker-ab|broken-breaker|broken-fastread|
//              real|net|net+kill|net-split]
//             [--seconds S] [--nodes N] [--seed K]
//             [--crash-rate HZ] [--partition-rate HZ] [--loss P]
//             [--breaker on|off] [--fast on|off]
//             [--trace out.json|out.jsonl]
//   real/net-scenario extras:
//             [--writers W] [--think-ms T] [--stall-ms T]
//             [--replicad PATH] [--keep-state]
//   net-scenario extras:
//             [--delay-ms D] [--jitter-ms J] [--reorder P]
//             [--partition on|off]  (include blackhole/flap bursts)
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "abd/remote_client.hpp"
#include "bench_util.hpp"
#include "chaos/orchestrator.hpp"
#include "chaos/process_orchestrator.hpp"
#include "net/chaos_proxy.hpp"
#include "chaos/schedule.hpp"
#include "common/rng.hpp"
#include "lin/history.hpp"
#include "lin/snapshot_checker.hpp"
#include "net/socket.hpp"
#include "trace/exporter.hpp"
#include "trace/histogram.hpp"

#ifndef ASNAP_REPLICAD_PATH
#define ASNAP_REPLICAD_PATH ""
#endif

namespace {

using namespace asnap;

std::chrono::microseconds seconds_us(double s) {
  return std::chrono::microseconds(static_cast<std::int64_t>(s * 1e6));
}

double mean_us(const std::vector<std::chrono::nanoseconds>& xs) {
  if (xs.empty()) return 0.0;
  double total = 0.0;
  for (const auto x : xs) {
    total += std::chrono::duration<double, std::micro>(x).count();
  }
  return total / static_cast<double>(xs.size());
}

struct Cli {
  std::string scenario = "mixed";
  double seconds = 3.0;
  std::size_t nodes = 5;
  std::uint64_t seed = 1;
  double crash_rate = 2.0;
  double partition_rate = 0.5;
  double loss = 0.10;
  bool breaker = true;
  bool fast = true;  ///< one-round fast reads (AbdConfig::fast_reads)
  std::string trace_path;
  // --scenario real extras:
  std::size_t writers = 3;
  double think_ms = 2.0;
  double stall_ms = 200.0;
  std::string replicad = ASNAP_REPLICAD_PATH;
  bool keep_state = false;
  // --scenario net extras (ambient wire faults + burst selection):
  double delay_ms = 0.0;
  double jitter_ms = 0.0;
  double reorder = 0.0;
  bool partition = true;  ///< include blackhole/flap bursts
};

/// Which network adversary run_real composes with the process one.
enum class NetMode {
  kNone,   ///< --scenario real: perfect wire, kill -9/SIGSTOP only
  kNet,    ///< --scenario net: wire faults only
  kNetKill,  ///< --scenario net+kill: wire faults + kill -9/SIGSTOP
  kSplit,  ///< --scenario net-split: negative control, rail off, no heal
};

void print_report(const std::string& label, const chaos::RunReport& r) {
  std::printf("== %s ==\n", label.c_str());
  std::printf(
      "  workload    : %llu updates, %llu scans ok; %llu failed update "
      "attempts, %llu failed scans, %llu indeterminate (history %zu ops)\n",
      (unsigned long long)r.updates_ok, (unsigned long long)r.scans_ok,
      (unsigned long long)r.failed_update_attempts,
      (unsigned long long)r.failed_scans,
      (unsigned long long)r.indeterminate_updates, r.history_ops);
  std::printf(
      "  injection   : %llu crashes, %llu partitions\n",
      (unsigned long long)r.crashes_injected,
      (unsigned long long)r.partitions_injected);
  std::printf(
      "  healing     : %llu suspicions, %llu trusts, %llu recoveries "
      "(%llu failed attempts); detection mean %.1f us, recovery mean %.1f us\n",
      (unsigned long long)r.suspicions, (unsigned long long)r.trusts,
      (unsigned long long)r.recoveries,
      (unsigned long long)r.failed_recovery_attempts,
      mean_us(r.detection_latencies), mean_us(r.recovery_latencies));
  std::printf(
      "  degradation : %llu breaker skips, %llu fail-fasts, %llu stale-epoch "
      "replies, %llu round timeouts, %llu retransmits\n",
      (unsigned long long)r.breaker_skips, (unsigned long long)r.fail_fasts,
      (unsigned long long)r.stale_epoch_replies,
      (unsigned long long)r.round_timeouts, (unsigned long long)r.retransmits);
  std::printf(
      "  rounds      : %llu protocol rounds, %llu fast reads, %llu fast "
      "fallbacks\n",
      (unsigned long long)r.protocol_rounds, (unsigned long long)r.fast_reads,
      (unsigned long long)r.fast_fallbacks);
  std::printf(
      "  latency     : update p50 %.1f us p99 %.1f us | scan p50 %.1f us "
      "p99 %.1f us\n",
      r.update_latency_ns.percentile(0.50) / 1e3,
      r.update_latency_ns.percentile(0.99) / 1e3,
      r.scan_latency_ns.percentile(0.50) / 1e3,
      r.scan_latency_ns.percentile(0.99) / 1e3);
  if (r.violations.empty()) {
    std::printf("  verdict     : PASS (no violations)\n");
  } else {
    std::printf("  verdict     : FAIL (%zu violation(s))\n",
                r.violations.size());
    for (const std::string& v : r.violations) {
      std::printf("    - %s\n", v.c_str());
    }
  }
}

void print_json(const Cli& cli, const std::string& label, bool breaker,
                const chaos::RunReport& r) {
  const std::uint64_t attempts =
      r.updates_ok + r.scans_ok + r.failed_update_attempts + r.failed_scans;
  bench::JsonWriter j("E10-chaos");
  j.field("scenario", label)
      .field("nodes", (std::uint64_t)cli.nodes)
      .field("seconds", cli.seconds)
      .field("seed", (std::uint64_t)cli.seed)
      .field("crash_rate", cli.crash_rate)
      .field("loss", cli.loss)
      .field("breaker", breaker)
      .field("violations", (std::uint64_t)r.violations.size())
      .field("updates_ok", r.updates_ok)
      .field("scans_ok", r.scans_ok)
      .field("failed_update_attempts", r.failed_update_attempts)
      .field("failed_scans", r.failed_scans)
      .field("indeterminate_updates", r.indeterminate_updates)
      .field("availability",
             attempts == 0 ? 1.0
                           : (double)(r.updates_ok + r.scans_ok) /
                                 (double)attempts)
      .field("crashes", r.crashes_injected)
      .field("partitions", r.partitions_injected)
      .field("suspicions", r.suspicions)
      .field("recoveries", r.recoveries)
      .field("detection_mean_us", mean_us(r.detection_latencies))
      .field("recovery_mean_us", mean_us(r.recovery_latencies))
      .field("update_p50_us", r.update_latency_ns.percentile(0.50) / 1e3)
      .field("update_p99_us", r.update_latency_ns.percentile(0.99) / 1e3)
      .field("scan_p50_us", r.scan_latency_ns.percentile(0.50) / 1e3)
      .field("scan_p99_us", r.scan_latency_ns.percentile(0.99) / 1e3)
      .field("breaker_skips", r.breaker_skips)
      .field("fail_fasts", r.fail_fasts)
      .field("stale_epoch_replies", r.stale_epoch_replies)
      .field("round_timeouts", r.round_timeouts)
      .field("fast", cli.fast)
      .field("protocol_rounds", r.protocol_rounds)
      .field("fast_reads", r.fast_reads)
      .field("fast_fallbacks", r.fast_fallbacks);
  j.print();
}

chaos::OrchestratorOptions base_options(const Cli& cli) {
  chaos::OrchestratorOptions opt;
  opt.nodes = cli.nodes;
  opt.seed = cli.seed;
  opt.duration = seconds_us(cli.seconds);
  opt.abd.breaker.enabled = cli.breaker;
  opt.abd.fast_reads = cli.fast;
  return opt;
}

/// The acceptance scenario: sustained workload under crash/recover,
/// partition/heal and message loss, self-healing on.
int run_mixed(const Cli& cli) {
  chaos::OrchestratorOptions opt = base_options(cli);
  chaos::ChaosProfile profile;
  profile.duration = opt.duration;
  profile.crash_rate_hz = cli.crash_rate;
  profile.partition_rate_hz = cli.partition_rate;
  profile.plan.drop_prob = cli.loss;
  opt.schedule = chaos::random_schedule(cli.nodes, profile, cli.seed);
  const chaos::RunReport r = chaos::run(opt);
  print_report("mixed", r);
  print_json(cli, "mixed", cli.breaker, r);
  return r.ok() ? 0 : 1;
}

/// One node down for nearly the whole run (supervisor held off); measure
/// client latency with the breaker off, then on. The breaker arm should
/// show a much lower p99: rounds stop waiting out retransmit timers aimed
/// at the dead replica.
int run_breaker_ab(const Cli& cli) {
  int rc = 0;
  for (const bool breaker : {false, true}) {
    Cli arm = cli;
    arm.breaker = breaker;
    chaos::OrchestratorOptions opt = base_options(arm);
    // Detector stays on (the breaker needs it); the supervisor is parked
    // past the end of the run so the outage actually persists.
    opt.supervisor.restart_delay = opt.duration * 2;
    const auto victim = static_cast<net::NodeId>(cli.nodes - 1);
    chaos::Action loss;
    loss.kind = chaos::ActionKind::kSetFaultPlan;
    loss.plan.drop_prob = cli.loss;
    chaos::Action crash;
    crash.kind = chaos::ActionKind::kCrash;
    crash.at = std::chrono::milliseconds(10);
    crash.node = victim;
    chaos::Action restart;  // let convergence succeed at the very end
    restart.kind = chaos::ActionKind::kRecover;
    restart.at = opt.duration;
    restart.node = victim;
    opt.schedule.actions = {loss, crash, restart};
    const chaos::RunReport r = chaos::run(opt);
    print_report(breaker ? "breaker-ab (breaker on)"
                         : "breaker-ab (breaker off)",
                 r);
    print_json(arm, "breaker-ab", breaker, r);
    if (!r.ok()) rc = 1;
  }
  return rc;
}

/// NEGATIVE control. unsafe_shrink_quorum lets a partitioned-away node
/// shrink its quorum below a majority instead of failing fast, which is
/// exactly the split-brain the breaker must never cause. The isolated
/// node's updates and scans "succeed" against itself alone, the survivors
/// never see them, and check_single_writer reports the stale reads. A
/// passing run here would mean the checkers lost their teeth.
int run_broken_breaker(const Cli& cli) {
  Cli fixed = cli;
  fixed.nodes = 5;
  fixed.breaker = true;
  chaos::OrchestratorOptions opt = base_options(fixed);
  opt.abd.breaker.unsafe_shrink_quorum = true;
  chaos::Action part;
  part.kind = chaos::ActionKind::kPartition;
  part.at = opt.duration / 10;
  part.groups = {{0}, {1, 2, 3, 4}};
  chaos::Action heal;
  heal.kind = chaos::ActionKind::kHeal;
  heal.at = opt.duration * 9 / 10;
  opt.schedule.actions = {part, heal};
  const chaos::RunReport r = chaos::run(opt);
  print_report("broken-breaker (negative control)", r);
  print_json(fixed, "broken-breaker", true, r);
  if (r.ok()) {
    std::printf(
        "broken-breaker: expected the checkers to catch the unsafe quorum "
        "shrink, but the run passed\n");
  }
  return r.ok() ? 0 : 1;
}

/// NEGATIVE control for the fast-read path. unsafe_always_fast_read skips
/// the read write-back even when the query quorum DISAGREED on the best
/// timestamp — exactly the mutant the stability evidence exists to reject.
/// A deterministic schedule makes the skip observable as a new/old read
/// inversion:
///
///   1. write A = Tag{0,1} completes (and is confirmed) everywhere;
///   2. links 0-1 and 0-2 are cut, so write B = Tag{0,2} times out having
///      reached only replica 0 — an INDETERMINATE write, no confirm;
///   3. reader at node 1 (quorum {0,1}) sees {ts=2, ts=1}: disagreement and
///      no confirmed bit, yet the mutant returns B without writing back;
///   4. reader at node 2 (quorum {1,2}, link to 0 cut) then sees ts=1
///      unanimously and returns A — a read AFTER a read of B returned the
///      older A.
///
/// check_single_writer must reject the history (ctest wraps this scenario
/// in WILL_FAIL). With the real stability rule, step 3 falls back to the
/// write-back and step 4 returns B — the fault-matrix tests pin that.
int run_broken_fastread(const Cli& cli) {
  using Tag = lin::Tag;
  abd::AbdConfig config;
  config.unsafe_always_fast_read = true;
  // Short deadline so the partitioned write in step 2 times out quickly;
  // healthy in-process rounds finish in microseconds, so reads are unhurt.
  config.op_deadline = std::chrono::milliseconds(50);
  abd::AbdCluster<Tag> cluster(3, 1, Tag{}, cli.seed, config);
  lin::Recorder recorder(/*num_words=*/1);
  std::vector<std::string> violations;

  {  // step 1: a confirmed base value
    const lin::Time inv = recorder.tick();
    const abd::OpStatus st = cluster.try_write(0, 0, Tag{0, 1});
    const lin::Time res = recorder.tick();
    if (st != abd::OpStatus::kOk) {
      violations.push_back("setup: base write failed");
    }
    recorder.add_update(0, 0, Tag{0, 1}, inv, res);
  }

  // step 2: isolate the writer from the rest; the write reaches only the
  // writer's own replica and times out — indeterminate, never confirmed.
  cluster.cut_link(0, 1);
  cluster.cut_link(0, 2);
  const lin::Time b_inv = recorder.tick();
  if (cluster.try_write(0, 0, Tag{0, 2}) == abd::OpStatus::kOk) {
    violations.push_back("setup: partitioned write unexpectedly completed");
  }

  // step 3: node 1 reads with quorum {0,1} (link 1-2 cut).
  cluster.restore_link(0, 1);
  cluster.restore_link(0, 2);
  cluster.cut_link(1, 2);
  {
    const lin::Time inv = recorder.tick();
    const auto got = cluster.try_read(0, 1);
    const lin::Time res = recorder.tick();
    if (!got.has_value()) {
      violations.push_back("setup: first read failed");
    } else {
      recorder.add_scan(1, {*got}, inv, res);
    }
  }

  // step 4: node 2 reads with quorum {1,2} (links to 0 cut). The mutant
  // never wrote ts=2 back, so both replies are the old ts=1.
  cluster.restore_link(1, 2);
  cluster.cut_link(0, 1);
  cluster.cut_link(0, 2);
  {
    const lin::Time inv = recorder.tick();
    const auto got = cluster.try_read(0, 2);
    const lin::Time res = recorder.tick();
    if (!got.has_value()) {
      violations.push_back("setup: second read failed");
    } else {
      recorder.add_scan(2, {*got}, inv, res);
    }
  }

  // The timed-out write is indeterminate: possibly applied any time up to
  // now (the Jepsen :info convention used by every harness in this repo).
  recorder.add_update(0, 0, Tag{0, 2}, b_inv, recorder.tick());

  const lin::History history = recorder.take();
  if (const auto violation = lin::check_single_writer(history)) {
    violations.push_back("linearizability: " + *violation);
  }

  std::printf("== broken-fastread (negative control) ==\n");
  std::printf("  fast reads  : %llu (mutant: write-back always skipped)\n",
              (unsigned long long)cluster.fast_reads());
  if (violations.empty()) {
    std::printf(
        "  verdict     : PASS — but the checker was EXPECTED to catch the "
        "unconditional write-back skip\n");
  } else {
    std::printf("  verdict     : FAIL (%zu violation(s), as intended)\n",
                violations.size());
    for (const std::string& v : violations) {
      std::printf("    - %s\n", v.c_str());
    }
  }
  bench::JsonWriter j("E16-fastread-negative");
  j.field("scenario", std::string("broken-fastread"))
      .field("seed", (std::uint64_t)cli.seed)
      .field("violations", (std::uint64_t)violations.size())
      .field("fast_reads", cluster.fast_reads())
      .field("history_ops", (std::uint64_t)history.total_ops());
  j.print();
  return violations.empty() ? 0 : 1;
}

// --- --scenario real: kill -9 chaos against live abd_replicad processes ----

/// Aggregate outcome of one real-cluster run (the process analog of
/// chaos::RunReport, minus the SimNetwork-only counters).
struct RealReport {
  std::uint64_t updates_ok = 0;
  std::uint64_t scans_ok = 0;
  std::uint64_t failed_update_attempts = 0;
  std::uint64_t failed_scans = 0;
  std::uint64_t indeterminate_updates = 0;
  std::size_t history_ops = 0;
  trace::LogHistogram update_hist;
  trace::LogHistogram scan_hist;
  abd::RemoteRegisterClient::Stats client;
  std::uint64_t reconnects = 0;
  chaos::ProcessCluster::Report proc;
  // Net-scenario only: proxy-side injected-fault totals over all links,
  // plus how many fault bursts the driver fired.
  bool net_mode = false;
  net::LinkStats net;
  std::uint64_t net_bursts = 0;
  std::vector<std::string> violations;
  bool ok() const { return violations.empty(); }
};

/// Per-worker mutable state for the real scenario. Mirrors the orchestrator
/// worker convention exactly (see chaos/orchestrator.cpp): same-tag retry
/// with one spanning interval, indeterminate-at-shutdown, dropped failed
/// scans.
struct RealWorker {
  std::uint64_t updates_ok = 0;
  std::uint64_t scans_ok = 0;
  std::uint64_t failed_update_attempts = 0;
  std::uint64_t failed_scans = 0;
  std::atomic<std::uint64_t> last_acked_seq{0};  ///< durability audit input
  /// Successful ops, readable mid-run: the liveness watchdog's signal that
  /// the cluster makes progress once the network heals.
  std::atomic<std::uint64_t> ops_done{0};
  bool has_pending = false;
  lin::Tag pending_tag{};
  lin::Time pending_inv = 0;
  trace::LogHistogram update_hist;
  trace::LogHistogram scan_hist;
  abd::RemoteRegisterClient::Stats stats;
  std::uint64_t reconnects = 0;
};

std::vector<net::Endpoint> probe_free_endpoints(std::size_t n) {
  // Bind port 0, record the kernel's pick, release. The small window before
  // the daemons rebind is acceptable on a loopback test host.
  std::vector<net::Endpoint> eps;
  std::vector<net::Listener> held;
  for (std::size_t i = 0; i < n; ++i) {
    auto lst = net::Listener::open({"127.0.0.1", 0});
    if (!lst.valid()) return {};
    eps.push_back({"127.0.0.1", lst.bound_port()});
    held.push_back(std::move(lst));
  }
  return eps;
}

/// One collect: atomically read registers 0..W-1. nullopt if any read
/// times out (no majority right now).
std::optional<std::vector<std::pair<std::uint64_t, lin::Tag>>> real_collect(
    abd::RemoteRegisterClient& client, std::size_t writers) {
  std::vector<std::pair<std::uint64_t, lin::Tag>> out;
  out.reserve(writers);
  for (std::size_t w = 0; w < writers; ++w) {
    const auto got = client.try_read(w);
    if (!got.has_value()) return std::nullopt;
    lin::Tag tag{static_cast<ProcessId>(w), 0};  // unwritten: initial tag
    if (got->ts != 0) {
      const auto decoded = net::wire::decode_tag(got->value);
      if (!decoded.has_value()) return std::nullopt;  // corrupt value
      tag = *decoded;
    }
    out.emplace_back(got->ts, tag);
  }
  return out;
}

/// Double collect over the socket cluster: two identical consecutive
/// collects of atomic (write-back) reads form a linearizable snapshot —
/// Afek et al.'s Observation 1, unchanged by the transport. Caps attempts:
/// under sustained writes a clean double collect may not happen, and a
/// failed scan observed nothing, so it is simply dropped.
std::optional<std::vector<lin::Tag>> real_scan(
    abd::RemoteRegisterClient& client, std::size_t writers) {
  constexpr int kMaxCollects = 16;
  auto prev = real_collect(client, writers);
  if (!prev.has_value()) return std::nullopt;
  for (int i = 1; i < kMaxCollects; ++i) {
    auto cur = real_collect(client, writers);
    if (!cur.has_value()) return std::nullopt;
    bool equal = true;
    for (std::size_t w = 0; w < writers; ++w) {
      if ((*cur)[w].first != (*prev)[w].first) {
        equal = false;
        break;
      }
    }
    if (equal) {
      std::vector<lin::Tag> view;
      view.reserve(writers);
      for (const auto& [ts, tag] : *cur) view.push_back(tag);
      return view;
    }
    prev = std::move(cur);
  }
  return std::nullopt;
}

void real_worker_loop(const std::vector<net::Endpoint>& eps, ProcessId p,
                      std::size_t writers, const Cli& cli,
                      lin::Recorder& recorder, RealWorker& ws,
                      const std::atomic<bool>& stop) {
  using SClock = std::chrono::steady_clock;
  const auto to_ns = [](SClock::duration d) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(d).count());
  };
  abd::AbdConfig config;
  config.op_deadline = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::seconds(3));
  config.fast_reads = cli.fast;
  abd::RemoteRegisterClient client(eps, /*client_id=*/100 + p, config);
  const auto think =
      std::chrono::microseconds(static_cast<std::int64_t>(cli.think_ms * 1e3));
  const auto retry_pause = std::chrono::milliseconds(1);

  std::uint64_t seq = 0;
  std::uint64_t op_count = 0;
  while (!stop.load(std::memory_order_relaxed)) {
    if (op_count++ % 2 == 0) {
      // Update: retry the SAME (ts, value) until acked — idempotent at the
      // replicas, so the retries are one logical operation whose interval
      // spans every attempt.
      const lin::Tag tag{p, ++seq};
      const auto value = net::wire::encode_tag(tag);
      const lin::Time inv = recorder.tick();
      const auto started = SClock::now();
      for (;;) {
        if (client.try_write(p, seq, value) == abd::OpStatus::kOk) break;
        ++ws.failed_update_attempts;
        if (stop.load(std::memory_order_relaxed)) {
          ws.has_pending = true;  // shutdown mid-retry: possibly applied
          ws.pending_tag = tag;
          ws.pending_inv = inv;
          ws.stats = client.stats();
          ws.reconnects = client.reconnects();
          return;
        }
        std::this_thread::sleep_for(retry_pause);
      }
      const lin::Time res = recorder.tick();
      recorder.add_update(p, p, tag, inv, res);
      ws.update_hist.record(to_ns(SClock::now() - started));
      ++ws.updates_ok;
      ws.ops_done.fetch_add(1, std::memory_order_relaxed);
      ws.last_acked_seq.store(seq, std::memory_order_relaxed);
    } else {
      const lin::Time inv = recorder.tick();
      const auto started = SClock::now();
      auto view = real_scan(client, writers);
      if (view.has_value()) {
        const lin::Time res = recorder.tick();
        recorder.add_scan(p, std::move(*view), inv, res);
        ws.scan_hist.record(to_ns(SClock::now() - started));
        ++ws.scans_ok;
        ws.ops_done.fetch_add(1, std::memory_order_relaxed);
      } else {
        ++ws.failed_scans;  // observed nothing: dropped
        std::this_thread::sleep_for(retry_pause);
      }
    }
    std::this_thread::sleep_for(think);
  }
  ws.stats = client.stats();
  ws.reconnects = client.reconnects();
}

void print_real_report(const std::string& label, const RealReport& r) {
  std::printf("== %s ==\n", label.c_str());
  std::printf(
      "  workload    : %llu updates, %llu scans ok; %llu failed update "
      "attempts, %llu failed scans, %llu indeterminate (history %zu ops)\n",
      (unsigned long long)r.updates_ok, (unsigned long long)r.scans_ok,
      (unsigned long long)r.failed_update_attempts,
      (unsigned long long)r.failed_scans,
      (unsigned long long)r.indeterminate_updates, r.history_ops);
  std::printf("  injection   : %llu kill -9, %llu SIGSTOP stalls\n",
              (unsigned long long)r.proc.kills,
              (unsigned long long)r.proc.stalls);
  if (r.net_mode) {
    std::printf(
        "  wire faults : %llu bursts; %llu dropped, %llu delayed, %llu "
        "reordered, %llu stalled, %llu resets, %llu blackholed, %llu "
        "throttle pauses (%llu frames forwarded)\n",
        (unsigned long long)r.net_bursts, (unsigned long long)r.net.dropped,
        (unsigned long long)r.net.delayed, (unsigned long long)r.net.reordered,
        (unsigned long long)r.net.stalled, (unsigned long long)r.net.resets,
        (unsigned long long)r.net.blackholed,
        (unsigned long long)r.net.throttle_pauses,
        (unsigned long long)r.net.forwarded);
  }
  double restart_mean = 0.0;
  for (const double x : r.proc.restart_latencies_ms) restart_mean += x;
  if (!r.proc.restart_latencies_ms.empty()) {
    restart_mean /= (double)r.proc.restart_latencies_ms.size();
  }
  std::printf("  supervisor  : %llu restarts, mean respawn %.1f ms\n",
              (unsigned long long)r.proc.restarts, restart_mean);
  std::printf(
      "  degradation : %llu retransmit waves, %llu dup replies, %llu "
      "stale-epoch replies, %llu round timeouts, %llu reconnects\n",
      (unsigned long long)r.client.retransmit_waves,
      (unsigned long long)r.client.dup_replies,
      (unsigned long long)r.client.stale_epoch_replies,
      (unsigned long long)r.client.round_timeouts,
      (unsigned long long)r.reconnects);
  std::printf(
      "  rounds      : %llu protocol rounds, %llu fast reads, %llu fast "
      "fallbacks\n",
      (unsigned long long)r.client.protocol_rounds,
      (unsigned long long)r.client.fast_reads,
      (unsigned long long)r.client.fast_fallbacks);
  std::printf(
      "  latency     : update p50 %.1f us p99 %.1f us | scan p50 %.1f us "
      "p99 %.1f us\n",
      r.update_hist.percentile(0.50) / 1e3,
      r.update_hist.percentile(0.99) / 1e3,
      r.scan_hist.percentile(0.50) / 1e3, r.scan_hist.percentile(0.99) / 1e3);
  if (r.ok()) {
    std::printf("  verdict     : PASS (no violations)\n");
  } else {
    std::printf("  verdict     : FAIL (%zu violation(s))\n",
                r.violations.size());
    for (const std::string& v : r.violations) {
      std::printf("    - %s\n", v.c_str());
    }
  }
}

void print_real_json(const Cli& cli, const std::string& scenario,
                     const RealReport& r) {
  double restart_mean = 0.0;
  for (const double x : r.proc.restart_latencies_ms) restart_mean += x;
  if (!r.proc.restart_latencies_ms.empty()) {
    restart_mean /= (double)r.proc.restart_latencies_ms.size();
  }
  bench::JsonWriter j(r.net_mode ? "E14-netchaos" : "E12-cluster");
  j.field("scenario", scenario)
      .field("nodes", (std::uint64_t)cli.nodes)
      .field("writers", (std::uint64_t)cli.writers)
      .field("seconds", cli.seconds)
      .field("seed", (std::uint64_t)cli.seed)
      .field("crash_rate", cli.crash_rate)
      .field("violations", (std::uint64_t)r.violations.size())
      .field("updates_ok", r.updates_ok)
      .field("scans_ok", r.scans_ok)
      .field("failed_update_attempts", r.failed_update_attempts)
      .field("failed_scans", r.failed_scans)
      .field("indeterminate_updates", r.indeterminate_updates)
      .field("kills", r.proc.kills)
      .field("stalls", r.proc.stalls)
      .field("restarts", r.proc.restarts)
      .field("restart_mean_ms", restart_mean)
      .field("update_p50_us", r.update_hist.percentile(0.50) / 1e3)
      .field("update_p99_us", r.update_hist.percentile(0.99) / 1e3)
      .field("scan_p50_us", r.scan_hist.percentile(0.50) / 1e3)
      .field("scan_p99_us", r.scan_hist.percentile(0.99) / 1e3)
      .field("retransmit_waves", r.client.retransmit_waves)
      .field("stale_epoch_replies", r.client.stale_epoch_replies)
      .field("round_timeouts", r.client.round_timeouts)
      .field("reconnects", r.reconnects)
      .field("fast", cli.fast)
      .field("protocol_rounds", r.client.protocol_rounds)
      .field("fast_reads", r.client.fast_reads)
      .field("fast_fallbacks", r.client.fast_fallbacks);
  if (r.net_mode) {
    j.field("loss", cli.loss)
        .field("delay_ms", cli.delay_ms)
        .field("jitter_ms", cli.jitter_ms)
        .field("reorder", cli.reorder)
        .field("partition", cli.partition)
        .field("net_bursts", r.net_bursts)
        .field("net_forwarded", r.net.forwarded)
        .field("net_dropped", r.net.dropped)
        .field("net_delayed", r.net.delayed)
        .field("net_reordered", r.net.reordered)
        .field("net_stalled", r.net.stalled)
        .field("net_resets", r.net.resets)
        .field("net_blackholed", r.net.blackholed)
        .field("net_throttle_pauses", r.net.throttle_pauses);
  }
  j.print();
}

/// Shared runner for every real-process scenario. `mode` selects the
/// adversary: process faults only (kNone), wire faults via net::ChaosProxy
/// (kNet), both (kNetKill), or the negative minority-connectivity control
/// (kSplit — safety rail OFF, no heal, MUST end in violations).
int run_real(const Cli& cli, NetMode mode) {
  using SClock = std::chrono::steady_clock;
  namespace fs = std::filesystem;
  const std::string label = mode == NetMode::kNone ? "real"
                            : mode == NetMode::kNet ? "net"
                            : mode == NetMode::kNetKill ? "net+kill"
                                                        : "net-split";
  RealReport report;
  report.net_mode = mode != NetMode::kNone;
  const auto fail = [&](const std::string& why) {
    report.violations.push_back(why);
    print_real_report(label, report);
    print_real_json(cli, label, report);
    return 1;
  };

  if (cli.replicad.empty() || !fs::exists(cli.replicad)) {
    return fail("setup: abd_replicad binary not found (pass --replicad)");
  }
  const std::size_t n = cli.nodes;
  const std::size_t writers = cli.writers;
  const auto endpoints = probe_free_endpoints(n);
  if (endpoints.size() != n) return fail("setup: could not probe free ports");

  char tmpl[] = "/tmp/asnap_real_XXXXXX";
  if (::mkdtemp(tmpl) == nullptr) {
    return fail("setup: mkdtemp failed");
  }
  const std::string state_dir = tmpl;

  chaos::ProcessClusterConfig cluster_config;
  cluster_config.replicad_path = cli.replicad;
  cluster_config.state_dir = state_dir;
  cluster_config.endpoints = endpoints;
  cluster_config.regs = writers;
  cluster_config.restart_delay = std::chrono::milliseconds(150);
  cluster_config.proxy = report.net_mode;
  cluster_config.proxy_seed = cli.seed ^ 0xAD7E53EEDull;
  chaos::ProcessCluster cluster(cluster_config);
  if (!cluster.start() || !cluster.wait_ready(std::chrono::seconds(10))) {
    return fail("setup: cluster did not come up");
  }
  // Clients dial the proxy in net modes; the daemons peer directly.
  const std::vector<net::Endpoint> client_eps = cluster.client_endpoints();
  net::ChaosProxy* proxy = cluster.proxy();

  // Ambient wire faults for the whole run (the loss x delay floor the E14
  // sweep varies); bursts below layer the acute faults on top.
  net::LinkFaults ambient;
  if (report.net_mode) {
    ambient.drop_prob = cli.loss;
    ambient.delay = std::chrono::microseconds(
        static_cast<std::int64_t>(cli.delay_ms * 1e3));
    ambient.jitter = std::chrono::microseconds(
        static_cast<std::int64_t>(cli.jitter_ms * 1e3));
    ambient.reorder_prob = cli.reorder;
    proxy->set_all(ambient);
  }
  if (mode == NetMode::kSplit) {
    // Minority-only connectivity, rail OFF: blackhole a MAJORITY of links
    // in both directions for the entire run and never heal. ABD must not
    // complete quorum operations, so the watchdog/audit below must flag
    // the run (ctest wraps this scenario in WILL_FAIL).
    const std::size_t cut = n / 2 + 1;
    for (std::size_t i = 0; i < cut; ++i) {
      proxy->blackhole(i, net::ChaosProxy::kToReplica, true);
      proxy->blackhole(i, net::ChaosProxy::kToClient, true);
    }
  }

  lin::Recorder recorder(writers);
  std::atomic<bool> stop{false};
  std::vector<std::unique_ptr<RealWorker>> workers;
  std::vector<std::thread> threads;
  for (std::size_t w = 0; w < writers; ++w) {
    workers.push_back(std::make_unique<RealWorker>());
  }
  for (std::size_t w = 0; w < writers; ++w) {
    threads.emplace_back([&, w] {
      real_worker_loop(client_eps, static_cast<ProcessId>(w), writers, cli,
                       recorder, *workers[w], stop);
    });
  }

  // Seeded majority-safe fault injection. One fault (or burst) at a time;
  // never let down + stalled + net-impaired replicas reach a majority
  // (ABD's liveness precondition — chaos/schedule.hpp's rail, enforced at
  // runtime here because restart timing is the kernel's, not ours). The
  // kSplit negative control deliberately skips this loop: its partition is
  // static and rail-free.
  Rng rng(cli.seed ^ 0x9EA1C4A0ull);
  const std::size_t max_down = (n - 1) / 2;
  const auto run_end = SClock::now() + std::chrono::microseconds(
                                           seconds_us(cli.seconds).count());
  // One bounded wire-fault burst; returns when the link is restored.
  const auto net_burst = [&](std::size_t victim) {
    const auto window = std::chrono::milliseconds(150 + rng.below(250));
    const auto dir = rng.chance(0.5) ? net::ChaosProxy::kToReplica
                                     : net::ChaosProxy::kToClient;
    // partition=off restricts the repertoire to faults that keep the link
    // logically connected (the E14 sweep's partition dimension).
    const std::uint64_t kinds = cli.partition ? 5 : 3;
    switch (rng.below(kinds)) {
      case 0: {  // mid-frame stall burst: exercises kMalformed discipline
        net::LinkFaults f = ambient;
        f.stall_prob = 0.5;
        f.stall = std::chrono::milliseconds(300);
        proxy->set_faults(victim, dir, f);
        std::this_thread::sleep_for(window);
        proxy->set_faults(victim, dir, ambient);
        break;
      }
      case 1: {  // bandwidth throttle burst
        net::LinkFaults f = ambient;
        f.throttle_bytes_per_sec = 16 * 1024;
        proxy->set_faults(victim, dir, f);
        std::this_thread::sleep_for(window);
        proxy->set_faults(victim, dir, ambient);
        break;
      }
      case 2:  // connection resets
        proxy->kill_connections(victim);
        break;
      case 3:  // asymmetric partition: one direction dead, the other live
        proxy->blackhole(victim, dir, true);
        std::this_thread::sleep_for(window);
        proxy->blackhole(victim, dir, false);
        break;
      case 4:  // link flapping (reconnect-backoff workout)
        proxy->flap(victim, std::chrono::milliseconds(40),
                    std::chrono::milliseconds(60), true);
        std::this_thread::sleep_for(window);
        proxy->flap(victim, {}, {}, false);
        break;
    }
    ++report.net_bursts;
  };
  while (mode != NetMode::kSplit && SClock::now() < run_end) {
    const double base_ms = 1000.0 / (cli.crash_rate > 0 ? cli.crash_rate : 1);
    const auto wait = std::chrono::microseconds(static_cast<std::int64_t>(
        base_ms * (0.5 + rng.uniform01()) * 1e3));
    std::this_thread::sleep_for(std::min(
        std::chrono::duration_cast<std::chrono::microseconds>(wait),
        std::chrono::duration_cast<std::chrono::microseconds>(
            run_end - SClock::now() + std::chrono::microseconds(1))));
    if (SClock::now() >= run_end) break;
    if (cluster.unavailable() >= max_down) continue;  // majority guard
    const std::size_t victim = rng.below(n);
    const bool process_fault =
        mode == NetMode::kNone || (mode == NetMode::kNetKill && rng.chance(0.4));
    if (!process_fault && report.net_mode) {
      net_burst(victim);
      continue;
    }
    if (!cluster.running(victim)) continue;
    if (rng.chance(0.3)) {
      // Freeze, hold, thaw: the peers see silence, not EOF.
      if (cluster.stall(victim)) {
        std::this_thread::sleep_for(std::chrono::microseconds(
            static_cast<std::int64_t>(cli.stall_ms * 1e3)));
        cluster.resume(victim);
      }
    } else {
      cluster.kill9(victim);  // supervisor restarts it
    }
  }
  if (mode == NetMode::kSplit) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(seconds_us(cli.seconds).count()));
  }

  // Heal the wire (except the negative control, whose partition is the
  // point), then convergence: every replica back up (supervisor + WAL +
  // resync) and no link impaired...
  if (report.net_mode && mode != NetMode::kSplit) proxy->heal();
  // The negative control cannot converge by construction; shorter budgets
  // keep its (expected) failure fast.
  const auto check_budget =
      mode == NetMode::kSplit ? std::chrono::seconds(2) : std::chrono::seconds(10);
  const auto converge_by = SClock::now() + check_budget;
  while (cluster.unavailable() > 0 && SClock::now() < converge_by) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  if (cluster.unavailable() > 0) {
    report.violations.push_back(
        "liveness: " + std::to_string(cluster.unavailable()) +
        " replica(s) still down after the convergence timeout");
  }
  // ...then the liveness watchdog: with the network perfect again, the
  // workload must complete operations. Waits up to its own deadline so a
  // slow-but-live cluster is not a false alarm.
  {
    std::uint64_t before = 0;
    for (const auto& ws : workers) {
      before += ws->ops_done.load(std::memory_order_relaxed);
    }
    const auto watchdog_by =
        SClock::now() +
        (mode == NetMode::kSplit ? std::chrono::seconds(2)
                                 : std::chrono::seconds(5));
    bool progressed = false;
    while (SClock::now() < watchdog_by) {
      std::uint64_t now_done = 0;
      for (const auto& ws : workers) {
        now_done += ws->ops_done.load(std::memory_order_relaxed);
      }
      if (now_done > before) {
        progressed = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    if (!progressed) {
      report.violations.push_back(
          "liveness: no operation completed after the network healed "
          "(watchdog)");
    }
  }
  // ...then a healthy tail so pending same-tag retries resolve.
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : threads) t.join();

  // Updates unfinished at shutdown are indeterminate: possibly applied any
  // time up to now, so their interval extends to a final tick.
  const lin::Time final_tick = recorder.tick();
  for (std::size_t w = 0; w < writers; ++w) {
    RealWorker& ws = *workers[w];
    if (!ws.has_pending) continue;
    recorder.add_update(static_cast<ProcessId>(w), w, ws.pending_tag,
                        ws.pending_inv, final_tick);
    ++report.indeterminate_updates;
  }

  // Durability audit: with the cluster healthy again, every acknowledged
  // write must be readable — the WAL + majority-resync acceptance check.
  {
    abd::AbdConfig config;
    config.op_deadline = std::chrono::duration_cast<std::chrono::microseconds>(
        mode == NetMode::kSplit ? std::chrono::seconds(2)
                                : std::chrono::seconds(5));
    // The auditor dials through the proxy too: in net modes durability must
    // hold end-to-end over the (now healed) chaotic wire, and the negative
    // control must SEE its partition rather than audit around it.
    abd::RemoteRegisterClient auditor(client_eps, /*client_id=*/999, config);
    for (std::size_t w = 0; w < writers; ++w) {
      const std::uint64_t acked =
          workers[w]->last_acked_seq.load(std::memory_order_relaxed);
      const auto got = auditor.try_read(w);
      if (!got.has_value()) {
        report.violations.push_back(
            "durability: reg " + std::to_string(w) +
            " unreadable after recovery (quorum timeout)");
        continue;
      }
      if (got->ts < acked) {
        report.violations.push_back(
            "durability: reg " + std::to_string(w) + " lost acked write (ts " +
            std::to_string(got->ts) + " < acked seq " + std::to_string(acked) +
            ")");
      }
    }
  }

  for (std::size_t w = 0; w < writers; ++w) {
    RealWorker& ws = *workers[w];
    report.updates_ok += ws.updates_ok;
    report.scans_ok += ws.scans_ok;
    report.failed_update_attempts += ws.failed_update_attempts;
    report.failed_scans += ws.failed_scans;
    report.client.protocol_rounds += ws.stats.protocol_rounds;
    report.client.fast_reads += ws.stats.fast_reads;
    report.client.fast_fallbacks += ws.stats.fast_fallbacks;
    report.client.retransmit_waves += ws.stats.retransmit_waves;
    report.client.dup_replies += ws.stats.dup_replies;
    report.client.stale_epoch_replies += ws.stats.stale_epoch_replies;
    report.client.round_timeouts += ws.stats.round_timeouts;
    report.reconnects += ws.reconnects;
    report.update_hist.merge(ws.update_hist);
    report.scan_hist.merge(ws.scan_hist);
  }
  report.proc = cluster.report();
  if (report.net_mode) {
    for (std::size_t i = 0; i < n; ++i) {
      const net::LinkStats s = proxy->stats(i);
      report.net.connections += s.connections;
      report.net.forwarded += s.forwarded;
      report.net.dropped += s.dropped;
      report.net.delayed += s.delayed;
      report.net.reordered += s.reordered;
      report.net.stalled += s.stalled;
      report.net.resets += s.resets;
      report.net.blackholed += s.blackholed;
      report.net.throttle_pauses += s.throttle_pauses;
    }
  }

  const lin::History history = recorder.take();
  report.history_ops = history.total_ops();
  if (const auto violation = lin::check_single_writer(history)) {
    report.violations.push_back("linearizability: " + *violation);
  }

  cluster.stop();
  if (!cli.keep_state) {
    std::error_code ec;
    fs::remove_all(state_dir, ec);
  } else {
    std::printf("  state kept  : %s\n", state_dir.c_str());
  }
  print_real_report(label, report);
  print_real_json(cli, label, report);
  return report.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  cli.scenario = bench::consume_flag(argc, argv, "--scenario", cli.scenario);
  cli.seconds =
      std::atof(bench::consume_flag(argc, argv, "--seconds", "3").c_str());
  cli.nodes = static_cast<std::size_t>(
      std::atoi(bench::consume_flag(argc, argv, "--nodes", "5").c_str()));
  cli.seed = static_cast<std::uint64_t>(
      std::atoll(bench::consume_flag(argc, argv, "--seed", "1").c_str()));
  cli.crash_rate = std::atof(
      bench::consume_flag(argc, argv, "--crash-rate", "2").c_str());
  cli.partition_rate = std::atof(
      bench::consume_flag(argc, argv, "--partition-rate", "0.5").c_str());
  cli.loss =
      std::atof(bench::consume_flag(argc, argv, "--loss", "0.1").c_str());
  cli.breaker =
      bench::consume_flag(argc, argv, "--breaker", "on") != std::string("off");
  cli.fast =
      bench::consume_flag(argc, argv, "--fast", "on") != std::string("off");
  cli.trace_path = bench::consume_flag(argc, argv, "--trace", "");
  cli.writers = static_cast<std::size_t>(
      std::atoi(bench::consume_flag(argc, argv, "--writers", "3").c_str()));
  cli.think_ms = std::atof(
      bench::consume_flag(argc, argv, "--think-ms", "2").c_str());
  cli.stall_ms = std::atof(
      bench::consume_flag(argc, argv, "--stall-ms", "200").c_str());
  cli.replicad =
      bench::consume_flag(argc, argv, "--replicad", cli.replicad);
  cli.delay_ms =
      std::atof(bench::consume_flag(argc, argv, "--delay-ms", "0").c_str());
  cli.jitter_ms =
      std::atof(bench::consume_flag(argc, argv, "--jitter-ms", "0").c_str());
  cli.reorder =
      std::atof(bench::consume_flag(argc, argv, "--reorder", "0").c_str());
  cli.partition = bench::consume_flag(argc, argv, "--partition", "on") !=
                  std::string("off");
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--keep-state") cli.keep_state = true;
    if (std::string(argv[i]) == "--real") cli.scenario = "real";
  }
  if (cli.seconds <= 0 || cli.nodes < 3) {
    std::fprintf(stderr, "chaos_run: need --seconds > 0 and --nodes >= 3\n");
    return 2;
  }
  const bool process_scenario =
      cli.scenario == "real" || cli.scenario == "net" ||
      cli.scenario == "net+kill" || cli.scenario == "net-split";
  if (process_scenario && cli.writers == 0) {
    std::fprintf(stderr, "chaos_run: need --writers >= 1\n");
    return 2;
  }

  trace::Session session(cli.trace_path);
  if (cli.scenario == "mixed") return run_mixed(cli);
  if (cli.scenario == "breaker-ab") return run_breaker_ab(cli);
  if (cli.scenario == "broken-breaker") return run_broken_breaker(cli);
  if (cli.scenario == "broken-fastread") return run_broken_fastread(cli);
  if (cli.scenario == "real") return run_real(cli, NetMode::kNone);
  if (cli.scenario == "net") return run_real(cli, NetMode::kNet);
  if (cli.scenario == "net+kill") return run_real(cli, NetMode::kNetKill);
  if (cli.scenario == "net-split") return run_real(cli, NetMode::kSplit);
  std::fprintf(stderr,
               "chaos_run: unknown --scenario '%s' (mixed, breaker-ab, "
               "broken-breaker, broken-fastread, real, net, net+kill, "
               "net-split)\n",
               cli.scenario.c_str());
  return 2;
}
