// abd_replicad — one ABD register replica as a real OS process.
//
// The daemon is the socket-cluster counterpart of a single AbdCluster
// replica thread: it keeps a timestamped copy of every register, answers
// READ with its (ts, value, epoch) and applies WRITE iff the timestamp is
// newer — always acking, so client retransmissions and duplicate delivery
// are harmless (idempotence). Two things the in-process replica never
// needed, because its "crashes" were simulated:
//
//   * DURABILITY: every accepted write and every incarnation bump is
//     appended + fsync()ed to a write-ahead log BEFORE the ack leaves the
//     process (abd/wal.hpp). A kill -9 can therefore lose only unacked
//     work; the torn tail of the log is truncated on replay.
//   * INCARNATIONS: on every start the daemon replays its WAL, durably
//     bumps its epoch, and stamps all replies with it, so clients discard
//     replies produced by a pre-crash incarnation.
//
// Recovery order matters and is deliberate: the daemon serves immediately
// after replaying its WAL — a replica restored from its log is merely
// stale, which ABD tolerates by construction (read quorums intersect the
// majority that acked any write) — and then a background resync thread
// quorum-reads registers 0..regs-1 through the normal client machinery and
// adopts anything newer, restoring full f-tolerance. Serving first avoids
// the bootstrap deadlock where all replicas of a cold cluster wait on each
// other's majority.
//
// Usage:
//   abd_replicad --id I --peers host:port,... --state-dir DIR
//                [--regs N] [--no-fsync] [--no-resync]
// `--peers` lists ALL replica endpoints in id order; the daemon listens on
// entry I. State lives in DIR/replica-I/ (derived from --id, so replicas of
// one cluster may share a --state-dir without sharing a WAL). Prints
// "READY port=<p> epoch=<e>" on stdout once accepting.
#include <signal.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "abd/remote_client.hpp"
#include "abd/wal.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"

namespace asnap {
namespace {

using namespace std::chrono_literals;

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true, std::memory_order_release); }

struct Args {
  std::size_t id = 0;
  std::vector<net::Endpoint> peers;
  std::string state_dir;
  std::uint64_t regs = 16;
  bool fsync = true;
  bool resync = true;
};

const char* flag_value(int& argc, char** argv, const char* name) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) {
      const char* v = argv[i + 1];
      for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
      argc -= 2;
      return v;
    }
  }
  return nullptr;
}

bool consume_bool(int& argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) {
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      return true;
    }
  }
  return false;
}

/// Replica state shared by connection handlers and the resync thread.
/// One mutex covers memory + WAL so compaction can't race appends.
struct Store {
  std::mutex mu;
  abd::WalState state;
  std::unique_ptr<abd::ReplicaWal> wal;
  std::uint64_t epoch = 0;
  /// Highest majority-acked ts per register (wire kConfirm). In-memory
  /// ONLY, deliberately not in the WAL: resetting to "nothing confirmed" on
  /// restart is conservative — it costs fast-read hits, never safety — and
  /// crucially a restarted daemon must not resurrect confirmation for state
  /// it restored from its log or background resync (a resynced value was
  /// adopted from a quorum READ, which proves nothing about majority
  /// stability of THIS replica's ts).
  std::unordered_map<std::uint64_t, std::uint64_t> confirmed;
  static constexpr std::uint64_t kCompactBytes = 8ull << 20;

  /// Apply WRITE(reg, ts, value): durably log iff it advances the replica.
  /// Returns false only on an I/O failure (the caller must NOT ack then —
  /// an acked write has to be on disk).
  bool apply_write(std::uint64_t reg, std::uint64_t ts,
                   const net::wire::Bytes& value) {
    std::lock_guard<std::mutex> lock(mu);
    auto it = state.regs.find(reg);
    if (it != state.regs.end() && ts <= it->second.first) return true;
    if (!wal->append_write(reg, ts, value)) return false;
    state.regs[reg] = {ts, value};
    if (wal->bytes() > kCompactBytes) wal->compact(state);
    return true;
  }

  /// READ(reg) -> (ts, value); (0, empty) when never written.
  std::pair<std::uint64_t, net::wire::Bytes> read(std::uint64_t reg) {
    std::lock_guard<std::mutex> lock(mu);
    auto it = state.regs.find(reg);
    if (it == state.regs.end()) return {0, {}};
    return it->second;
  }

  /// CONFIRM(reg, ts): ts is majority-acked; fold the maximum.
  void apply_confirm(std::uint64_t reg, std::uint64_t ts) {
    std::lock_guard<std::mutex> lock(mu);
    auto& slot = confirmed[reg];
    if (ts > slot) slot = ts;
  }

  /// Highest confirmed ts for reg (0 = nothing confirmed this incarnation).
  std::uint64_t confirmed_ts(std::uint64_t reg) {
    std::lock_guard<std::mutex> lock(mu);
    auto it = confirmed.find(reg);
    return it == confirmed.end() ? 0 : it->second;
  }
};

void serve_connection(std::size_t id, Store& store, net::Socket conn) {
  net::wire::Frame req;
  while (!g_stop.load(std::memory_order_acquire)) {
    const auto status = net::recv_frame(
        conn, std::chrono::steady_clock::now() + 250ms, &req);
    if (status == net::RecvStatus::kTimeout) continue;  // idle, re-check stop
    if (status != net::RecvStatus::kOk) return;  // EOF / error / bad frame
    net::wire::Frame reply;
    reply.from = id;
    reply.rid = req.rid;
    reply.epoch = store.epoch;
    reply.reg = req.reg;
    switch (req.type) {
      case net::wire::kReadReq: {
        const auto [ts, value] = store.read(req.reg);
        reply.type = net::wire::kReadReply;
        reply.ts = ts;
        reply.value = value;
        if (ts > 0 && store.confirmed_ts(req.reg) >= ts) {
          reply.flags |= net::wire::kFlagTsConfirmed;
        }
        break;
      }
      case net::wire::kWriteReq: {
        if (!store.apply_write(req.reg, req.ts, req.value)) {
          // Classified so an operator can tell a full volume (free space,
          // daemon recovers) from a dying device; NEITHER is acked.
          std::fprintf(stderr, "replica %zu: WAL append failed (%s), dropping\n",
                       id, abd::wal_error_name(store.wal->last_error()));
          return;  // cannot ack what we couldn't persist
        }
        reply.type = net::wire::kWriteAck;
        reply.ts = req.ts;
        break;
      }
      case net::wire::kPing:
        reply.type = net::wire::kPong;
        break;
      case net::wire::kConfirm:
        store.apply_confirm(req.reg, req.ts);
        continue;  // fire-and-forget: no reply frame
      default:
        continue;  // unknown type: ignore (forward compatibility)
    }
    if (!net::send_frame(conn, reply)) return;
  }
}

/// Background resync: quorum-read each register through the ordinary client
/// rounds (including this daemon's own listener — the self reply counts
/// toward the majority, as in AbdCluster::recover) and adopt anything
/// newer. Restores full f-tolerance after a restart; correctness never
/// depended on it (see file header). Uses try_query — a query with NO
/// write-back — and installs through apply_write, which deliberately does
/// not touch Store::confirmed: a resync read skipping write-back has not
/// stabilized anything, so the restarted replica must keep answering reads
/// without kFlagTsConfirmed until a live writer/reader confirms again.
void resync(std::size_t id, const Args& args, Store& store) {
  abd::AbdConfig config;
  config.op_deadline = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::seconds(2));
  abd::RemoteRegisterClient client(args.peers, /*client_id=*/1000 + id,
                                   config);
  std::size_t synced = 0;
  for (std::uint64_t reg = 0; reg < args.regs; ++reg) {
    for (int attempt = 0; attempt < 3; ++attempt) {
      if (g_stop.load(std::memory_order_acquire)) return;
      const auto got = client.try_query(reg);
      if (!got.has_value()) {
        std::this_thread::sleep_for(100ms);
        continue;
      }
      if (got->ts > 0) store.apply_write(reg, got->ts, got->value);
      ++synced;
      break;
    }
  }
  std::printf("RESYNC done regs=%zu/%llu\n", synced,
              static_cast<unsigned long long>(args.regs));
  std::fflush(stdout);
}

int run(const Args& args) {
  Store store;
  std::string error;
  // Per-id subdirectory: replicas sharing one --state-dir must never share
  // a WAL (merged state would fake quorum durability).
  const std::string dir =
      args.state_dir + "/replica-" + std::to_string(args.id);
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "abd_replicad: cannot create %s: %s\n", dir.c_str(),
                 ec.message().c_str());
    return 1;
  }
  store.wal =
      abd::ReplicaWal::open(dir + "/wal.log", &store.state, args.fsync, &error);
  if (store.wal == nullptr) {
    std::fprintf(stderr, "abd_replicad: %s\n", error.c_str());
    return 1;
  }
  // New incarnation, made durable BEFORE any reply can carry it.
  store.epoch = store.state.epoch + 1;
  store.state.epoch = store.epoch;
  if (!store.wal->append_epoch(store.epoch)) {
    std::fprintf(stderr, "abd_replicad: cannot persist epoch\n");
    return 1;
  }
  // Bound log growth across crash/restart cycles.
  store.wal->compact(store.state);

  net::Listener listener = net::Listener::open(args.peers[args.id], &error);
  if (!listener.valid()) {
    std::fprintf(stderr, "abd_replicad: %s\n", error.c_str());
    return 1;
  }
  std::printf("READY port=%u epoch=%llu\n",
              static_cast<unsigned>(listener.bound_port()),
              static_cast<unsigned long long>(store.epoch));
  std::fflush(stdout);

  std::vector<std::thread> handlers;
  std::thread resyncer;
  if (args.resync) {
    resyncer = std::thread([&] { resync(args.id, args, store); });
  }
  while (!g_stop.load(std::memory_order_acquire)) {
    auto conn = listener.accept(250ms);
    if (!conn.has_value()) continue;
    handlers.emplace_back([&store, id = args.id,
                           sock = std::move(*conn)]() mutable {
      serve_connection(id, store, std::move(sock));
    });
  }
  listener.close();
  for (auto& t : handlers) t.join();
  if (resyncer.joinable()) resyncer.join();
  return 0;
}

}  // namespace
}  // namespace asnap

int main(int argc, char** argv) {
  using asnap::Args;
  Args args;
  const char* id = asnap::flag_value(argc, argv, "--id");
  const char* peers = asnap::flag_value(argc, argv, "--peers");
  const char* state_dir = asnap::flag_value(argc, argv, "--state-dir");
  const char* regs = asnap::flag_value(argc, argv, "--regs");
  args.fsync = !asnap::consume_bool(argc, argv, "--no-fsync");
  args.resync = !asnap::consume_bool(argc, argv, "--no-resync");
  if (id == nullptr || peers == nullptr || state_dir == nullptr) {
    std::fprintf(stderr,
                 "usage: abd_replicad --id I --peers host:port,... "
                 "--state-dir DIR [--regs N] [--no-fsync] [--no-resync]\n");
    return 2;
  }
  args.id = std::strtoull(id, nullptr, 10);
  args.state_dir = state_dir;
  if (regs != nullptr) args.regs = std::strtoull(regs, nullptr, 10);
  const auto parsed = asnap::net::parse_endpoints(peers);
  if (!parsed.has_value() || args.id >= parsed->size()) {
    std::fprintf(stderr, "abd_replicad: bad --peers/--id\n");
    return 2;
  }
  args.peers = *parsed;

  signal(SIGTERM, asnap::on_signal);
  signal(SIGINT, asnap::on_signal);
  signal(SIGPIPE, SIG_IGN);
  return asnap::run(args);
}
