// Long-running randomized stress + linearizability checking from the
// command line — the tool you leave running overnight when you change
// anything in core/.
//
//   build/tools/stress_driver [algo] [n] [ops_per_proc] [scan_pct] [rounds] [seed]
//
//   algo: fig2 | fig3 | fig4 | mutex | seqlock | doublecollect (default fig3)
//
// Each round runs a fresh object with a derived seed, records the history
// on real threads with randomized per-step yields, and verifies it with the
// exact single-writer checker. Any violation aborts with a description and
// a nonzero exit code.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include <fstream>

#include "core/snapshot.hpp"
#include "lin/history_io.hpp"
#include "lin/snapshot_checker.hpp"

// The test harness is header-only and deliberately reusable from tools.
#include "../tests/harness.hpp"

namespace {

using namespace asnap;
using lin::Tag;

struct Options {
  std::string algo = "fig3";
  std::size_t n = 4;
  std::size_t ops = 500;
  int scan_pct = 50;
  int rounds = 20;
  std::uint64_t seed = 1;
};

template <typename Snap>
int run_rounds(const Options& opt) {
  for (int round = 0; round < opt.rounds; ++round) {
    Snap snap(opt.n, Tag{});
    testing::WorkloadConfig cfg;
    cfg.processes = opt.n;
    cfg.ops_per_process = opt.ops;
    cfg.scan_prob = opt.scan_pct / 100.0;
    cfg.seed = opt.seed + static_cast<std::uint64_t>(round) * 7919;
    cfg.yield_prob = 0.25;
    const lin::History history = testing::run_sw_workload(snap, cfg);
    const auto violation = lin::check_single_writer(history);
    if (violation.has_value()) {
      const std::string dump_path =
          "violation_seed" + std::to_string(cfg.seed) + ".history";
      std::ofstream(dump_path) << lin::dump_history(history);
      std::fprintf(stderr,
                   "VIOLATION in round %d (seed %llu): %s\n"
                   "history (%zu updates, %zu scans) saved to %s — replay "
                   "with tools/check_history\n",
                   round, static_cast<unsigned long long>(cfg.seed),
                   violation->c_str(), history.updates.size(),
                   history.scans.size(), dump_path.c_str());
      return 1;
    }
    std::printf("round %3d ok: %zu updates, %zu scans linearizable\n", round,
                history.updates.size(), history.scans.size());
  }
  std::printf("all %d rounds linearizable.\n", opt.rounds);
  return 0;
}

// Figure 4 adapter (single-writer usage so the exact checker applies).
class Fig4AsSw {
 public:
  Fig4AsSw(std::size_t n, const Tag& init) : snap_(n, n, init) {}
  std::size_t size() const { return snap_.size(); }
  void update(ProcessId i, Tag v) { snap_.update(i, i, v); }
  std::vector<Tag> scan(ProcessId i) { return snap_.scan(i); }

 private:
  core::BoundedMwSnapshot<Tag> snap_;
};

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (argc > 1) opt.algo = argv[1];
  if (argc > 2) opt.n = static_cast<std::size_t>(std::atoi(argv[2]));
  if (argc > 3) opt.ops = static_cast<std::size_t>(std::atoi(argv[3]));
  if (argc > 4) opt.scan_pct = std::atoi(argv[4]);
  if (argc > 5) opt.rounds = std::atoi(argv[5]);
  if (argc > 6) opt.seed = static_cast<std::uint64_t>(std::atoll(argv[6]));

  std::printf("stress: algo=%s n=%zu ops=%zu scan%%=%d rounds=%d seed=%llu\n",
              opt.algo.c_str(), opt.n, opt.ops, opt.scan_pct, opt.rounds,
              static_cast<unsigned long long>(opt.seed));

  if (opt.algo == "fig2") {
    return run_rounds<core::UnboundedSwSnapshot<Tag>>(opt);
  }
  if (opt.algo == "fig3") {
    return run_rounds<core::BoundedSwSnapshot<Tag>>(opt);
  }
  if (opt.algo == "fig4") {
    return run_rounds<Fig4AsSw>(opt);
  }
  if (opt.algo == "mutex") {
    return run_rounds<core::MutexSnapshot<Tag>>(opt);
  }
  if (opt.algo == "doublecollect") {
    return run_rounds<core::DoubleCollectSnapshot<Tag>>(opt);
  }
  std::fprintf(stderr, "unknown algo '%s'\n", opt.algo.c_str());
  return 2;
}
