// trace_analyze — paper-shaped statistics from a protocol trace.
//
// Ingests a trace written by trace::Session / trace::write_chrome_trace
// (Chrome trace-event JSON) or trace::write_jsonl (one event per line) and
// reports the distributions the paper's arguments are about:
//
//   * double collects per scan against the pigeonhole bound — n+1 for the
//     single-writer algorithms (Lemma 3.4), 2n+1 for the multi-writer
//     algorithm (Lemma 5.2); any traced scan over the bound is a protocol
//     violation and makes the tool exit nonzero;
//   * borrow rate (Observation-2 terminations) vs clean double collects;
//   * scan / update latency percentiles (log-bucketed histograms);
//   * handshake toggle frequency;
//   * ABD retransmissions per quorum round (the robustness tail) and
//     round timeouts;
//   * fault-injector decisions observed (drops / dups / delays);
//   * sharded-fabric composition health: per-shard update/scan traffic, the
//     cross-shard global-scan retry rate (generation-vector double collects
//     that had to rerun), confirm failures, and sealed-fallback frequency;
//   * multi-version scan engine health: versions published / retired /
//     reclaimed through mvcc::VersionGate, reader acquires, the refcount
//     high-water at unlink, and grace-period latency percentiles (version
//     unlinked -> provably reader-free, kMvccRetire -> kMvccReclaim
//     matched on (gate, epoch));
//   * network chaos: per-link wire faults the userspace netem proxy
//     injected (drops / delays / reorders / stalls / resets / blackholes /
//     flaps / throttle pauses) side by side with the client symptoms they
//     provoked (retransmit waves, round timeouts, reconnect backoffs) — the
//     cause/effect ledger of a --scenario net run.
//
// Usage:
//   trace_analyze <trace.json | trace.jsonl> ...
//   trace_analyze --demo     # trace a small in-process workload, then
//                            # analyze it (self-contained smoke test)
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/bounded_mw_snapshot.hpp"
#include "core/bounded_sw_snapshot.hpp"
#include "core/mvcc_snapshot.hpp"
#include "core/unbounded_sw_snapshot.hpp"
#include "net/chaos_proxy.hpp"
#include "net/socket.hpp"
#include "net/tcp_bus.hpp"
#include "shard/fabric.hpp"
#include "svc/service.hpp"
#include "trace/event.hpp"
#include "trace/exporter.hpp"
#include "trace/histogram.hpp"
#include "trace/json.hpp"

namespace {

using namespace asnap;

/// One normalized event, whichever file format it came from.
struct Row {
  std::uint64_t ts_ns = 0;
  std::string kind;
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;
  std::uint64_t a0 = 0;
  std::uint64_t a1 = 0;
};

Row row_from_object(const trace::json::Value& obj, bool chrome) {
  Row r;
  if (chrome) {
    // Chrome "ts" is microseconds; payload lives under "args".
    r.ts_ns = static_cast<std::uint64_t>(obj["ts"].as_number() * 1000.0);
    const trace::json::Value& args = obj["args"];
    r.kind = args["kind"].is_string() ? args["kind"].as_string()
                                      : obj["name"].as_string();
    r.a0 = args["a0"].as_u64();
    r.a1 = args["a1"].as_u64();
  } else {
    r.ts_ns = obj["ts"].as_u64();
    r.kind = obj["kind"].as_string();
    r.a0 = obj["a0"].as_u64();
    r.a1 = obj["a1"].as_u64();
  }
  r.pid = static_cast<std::uint32_t>(obj["pid"].as_u64());
  r.tid = static_cast<std::uint32_t>(obj["tid"].as_u64());
  return r;
}

/// Loads a chrome-format ({"traceEvents":[...]}) or JSONL trace file.
bool load_trace(const std::string& path, std::vector<Row>& rows) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "trace_analyze: cannot open %s\n", path.c_str());
    return false;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  try {
    const std::size_t first = text.find_first_not_of(" \t\r\n");
    if (first != std::string::npos && text[first] == '{' &&
        text.find("\"traceEvents\"") != std::string::npos) {
      const trace::json::Value doc = trace::json::parse(text);
      const trace::json::Value& events = doc["traceEvents"];
      if (!events.is_array()) {
        std::fprintf(stderr, "trace_analyze: %s: traceEvents is not an array\n",
                     path.c_str());
        return false;
      }
      for (const trace::json::Value& ev : events.as_array()) {
        rows.push_back(row_from_object(ev, /*chrome=*/true));
      }
    } else {  // JSONL
      std::istringstream lines(text);
      std::string line;
      while (std::getline(lines, line)) {
        if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
        rows.push_back(
            row_from_object(trace::json::parse(line), /*chrome=*/false));
      }
    }
  } catch (const trace::json::ParseError& e) {
    std::fprintf(stderr, "trace_analyze: %s: %s\n", path.c_str(), e.what());
    return false;
  }
  return true;
}

struct ScanRecord {
  std::uint64_t algo = 0;
  std::uint64_t n = 0;
  std::uint64_t attempts = 0;
  bool borrowed = false;
  std::uint64_t latency_ns = 0;
};

struct Analysis {
  std::vector<ScanRecord> scans;
  std::size_t incomplete_scans = 0;  ///< ends whose begin was overwritten
  trace::LogHistogram update_latency_ns;
  std::uint64_t updates = 0;
  std::uint64_t handshake_toggles = 0;
  std::uint64_t moved_detected = 0;
  trace::LogHistogram retransmits_per_round;
  std::uint64_t rounds = 0;
  std::uint64_t round_timeouts = 0;
  // Fast-read round complexity (PR 10): one-round reads vs slow-path
  // fallbacks, with the fallback reason split out. Protocol rounds and
  // retransmit waves stay separately accounted (a wave is a resend INSIDE
  // a round, never a new round).
  std::uint64_t fast_reads = 0;
  std::uint64_t fast_fallbacks = 0;
  std::uint64_t fast_fallback_disagree = 0;
  std::uint64_t fast_fallback_gap = 0;
  std::uint64_t fault_drops = 0;
  std::uint64_t fault_dups = 0;
  std::uint64_t fault_delays = 0;
  // Self-healing layer (PR 3): detector verdicts, degraded-mode client
  // decisions, supervised recoveries, chaos injections.
  std::uint64_t suspects = 0;
  std::uint64_t trusts = 0;
  std::uint64_t breaker_skips = 0;
  std::uint64_t breaker_fail_fasts = 0;
  std::uint64_t stale_epoch_replies = 0;
  std::uint64_t chaos_actions = 0;
  std::uint64_t recoveries_ok = 0;
  std::uint64_t recoveries_failed = 0;
  trace::LogHistogram detection_latency_ns;  ///< chaos crash -> 1st suspect
  trace::LogHistogram recovery_latency_ns;   ///< recover_begin -> _end ok
  // Service layer (PR 4): slot-lease churn, batching, scan cache, shedding.
  std::uint64_t lease_grants = 0;
  std::uint64_t lease_steals = 0;
  std::uint64_t lease_expires = 0;
  trace::LogHistogram batch_sizes;  ///< submits coalesced per flush
  std::uint64_t batch_flushes = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_invalidates = 0;
  std::uint64_t sheds = 0;
  // Sharded fabric (PR 6): hash routing, shard-local traffic, two-level
  // cross-shard global scans.
  std::uint64_t shard_routes = 0;
  std::map<std::uint32_t, std::uint64_t> shard_updates;      ///< by shard
  std::map<std::uint32_t, std::uint64_t> shard_local_scans;  ///< by shard
  std::map<std::uint32_t, std::uint64_t> shard_local_hits;   ///< by shard
  std::uint64_t global_scans = 0;
  std::uint64_t global_retried = 0;  ///< needed > 1 confirmation round
  std::uint64_t global_sealed = 0;   ///< fell back to the quiesce path
  std::uint64_t incomplete_global_scans = 0;
  trace::LogHistogram global_attempts;
  trace::LogHistogram global_latency_ns;
  std::uint64_t confirm_failures = 0;  ///< generation vector moved mid-round
  // Multi-version scan engine (PR 9): versioned publication through
  // mvcc::VersionGate (the A4 backend and the svc scan cache's gate).
  std::uint64_t mvcc_published = 0;
  std::uint64_t mvcc_acquires = 0;
  std::uint64_t mvcc_retired = 0;
  std::uint64_t mvcc_reclaimed = 0;
  std::uint64_t mvcc_readers_high_water = 0;  ///< max readers out at unlink
  std::uint64_t mvcc_orphan_reclaims = 0;  ///< reclaim whose retire was lost
  trace::LogHistogram mvcc_grace_ns;  ///< unlink -> provably reader-free
  // Network chaos (PR 8): wire faults the ChaosProxy injected, keyed by
  // link (= replica index), plus the client-side reconnect backoffs they
  // provoked. Events kNetDrop..kNetThrottle carry pid = link.
  struct NetLink {
    std::uint64_t drops = 0;
    std::uint64_t delays = 0;
    std::uint64_t reorders = 0;
    std::uint64_t stalls = 0;
    std::uint64_t resets = 0;
    std::uint64_t blackhole_edges = 0;  ///< asymmetric-partition toggles
    std::uint64_t flap_edges = 0;       ///< link up/down transitions
    std::uint64_t throttles = 0;        ///< bandwidth-cap pauses
  };
  std::map<std::uint32_t, NetLink> net_by_link;
  trace::LogHistogram net_delay_us;  ///< injected per-frame delay
  std::uint64_t retransmit_events = 0;  ///< all waves, matched or not
  std::uint64_t reconnect_backoffs = 0;
  trace::LogHistogram backoff_cooldown_ms;  ///< armed cooldown per backoff
  std::uint64_t first_ts = ~std::uint64_t{0};
  std::uint64_t last_ts = 0;
};

Analysis analyze(std::vector<Row> rows) {
  std::stable_sort(rows.begin(), rows.end(),
                   [](const Row& a, const Row& b) { return a.ts_ns < b.ts_ns; });
  Analysis out;
  struct PendingScan {
    bool open = false;
    std::uint64_t algo = 0, n = 0, begin_ts = 0;
  };
  struct PendingRound {
    bool open = false;
    std::uint64_t rid = 0, retransmits = 0;
  };
  std::map<std::uint32_t, PendingScan> scan_by_tid;
  std::map<std::uint32_t, std::uint64_t> update_begin_by_tid;
  std::map<std::uint32_t, PendingRound> round_by_tid;
  std::map<std::uint64_t, std::uint64_t> crash_ts_by_node;   // chaos kCrash
  std::map<std::uint32_t, std::uint64_t> recover_begin_by_node;
  std::map<std::uint32_t, std::uint64_t> global_begin_by_tid;
  // (gate pid, version epoch) -> unlink timestamp; the matching reclaim may
  // fire on any thread (whichever reader releases last).
  std::map<std::pair<std::uint32_t, std::uint64_t>, std::uint64_t>
      mvcc_retire_ts;

  for (const Row& r : rows) {
    if (r.ts_ns < out.first_ts) out.first_ts = r.ts_ns;
    if (r.ts_ns > out.last_ts) out.last_ts = r.ts_ns;

    if (r.kind == "scan_begin") {
      scan_by_tid[r.tid] = PendingScan{true, r.a0, r.a1, r.ts_ns};
    } else if (r.kind == "scan_end") {
      PendingScan& p = scan_by_tid[r.tid];
      if (!p.open) {  // begin lost to ring overwrite: not attributable
        ++out.incomplete_scans;
        continue;
      }
      out.scans.push_back(ScanRecord{p.algo, p.n, r.a0, r.a1 != 0,
                                     r.ts_ns - p.begin_ts});
      p.open = false;
    } else if (r.kind == "update_begin") {
      update_begin_by_tid[r.tid] = r.ts_ns;
    } else if (r.kind == "update_end") {
      const auto it = update_begin_by_tid.find(r.tid);
      if (it != update_begin_by_tid.end()) {
        out.update_latency_ns.record(r.ts_ns - it->second);
        update_begin_by_tid.erase(it);
      }
      ++out.updates;
    } else if (r.kind == "handshake_toggle") {
      ++out.handshake_toggles;
    } else if (r.kind == "moved_detected") {
      ++out.moved_detected;
    } else if (r.kind == "abd_round_begin") {
      round_by_tid[r.tid] = PendingRound{true, r.a0, 0};
    } else if (r.kind == "abd_retransmit") {
      ++out.retransmit_events;
      PendingRound& p = round_by_tid[r.tid];
      if (p.open && p.rid == r.a0) ++p.retransmits;
    } else if (r.kind == "abd_quorum_reached" ||
               r.kind == "abd_round_timeout") {
      PendingRound& p = round_by_tid[r.tid];
      if (p.open && p.rid == r.a0) {
        out.retransmits_per_round.record(p.retransmits);
        ++out.rounds;
        if (r.kind == "abd_round_timeout") ++out.round_timeouts;
        p.open = false;
      }
    } else if (r.kind == "abd_fast_read") {
      ++out.fast_reads;
    } else if (r.kind == "abd_fast_fallback") {
      ++out.fast_fallbacks;
      if (r.a1 == 1) ++out.fast_fallback_disagree;
      if (r.a1 == 2) ++out.fast_fallback_gap;
    } else if (r.kind == "fault_drop") {
      ++out.fault_drops;
    } else if (r.kind == "fault_dup") {
      ++out.fault_dups;
    } else if (r.kind == "fault_delay") {
      ++out.fault_delays;
    } else if (r.kind == "suspect") {
      ++out.suspects;
      // First suspicion (by any observer) after a chaos-injected crash of
      // that node is the detection latency.
      const auto it = crash_ts_by_node.find(r.a0);
      if (it != crash_ts_by_node.end()) {
        out.detection_latency_ns.record(r.ts_ns - it->second);
        crash_ts_by_node.erase(it);
      }
    } else if (r.kind == "trust") {
      ++out.trusts;
    } else if (r.kind == "breaker_skip") {
      ++out.breaker_skips;
    } else if (r.kind == "breaker_fail_fast") {
      ++out.breaker_fail_fasts;
    } else if (r.kind == "stale_epoch_reply") {
      ++out.stale_epoch_replies;
    } else if (r.kind == "recover_begin") {
      recover_begin_by_node[r.pid] = r.ts_ns;
    } else if (r.kind == "recover_end") {
      if (r.a0 != 0) {
        ++out.recoveries_ok;
        const auto it = recover_begin_by_node.find(r.pid);
        if (it != recover_begin_by_node.end()) {
          out.recovery_latency_ns.record(r.ts_ns - it->second);
          recover_begin_by_node.erase(it);
        }
      } else {
        ++out.recoveries_failed;
      }
    } else if (r.kind == "chaos_action") {
      ++out.chaos_actions;
      if (r.a0 == 0) crash_ts_by_node[r.a1] = r.ts_ns;  // ActionKind::kCrash
    } else if (r.kind == "lease_grant") {
      ++out.lease_grants;
    } else if (r.kind == "lease_steal") {
      ++out.lease_grants;  // a steal IS a grant, of a reclaimed slot
      ++out.lease_steals;
    } else if (r.kind == "lease_expire") {
      ++out.lease_expires;
    } else if (r.kind == "batch_flush") {
      ++out.batch_flushes;
      out.batch_sizes.record(r.a0);
    } else if (r.kind == "scan_cache_hit") {
      ++out.cache_hits;
    } else if (r.kind == "scan_cache_miss") {
      ++out.cache_misses;
    } else if (r.kind == "scan_cache_invalidate") {
      ++out.cache_invalidates;
    } else if (r.kind == "svc_shed") {
      ++out.sheds;
    } else if (r.kind == "shard_route") {
      ++out.shard_routes;
    } else if (r.kind == "shard_local_update") {
      ++out.shard_updates[r.pid];
    } else if (r.kind == "shard_local_scan") {
      ++out.shard_local_scans[r.pid];
      if (r.a0 != 0) ++out.shard_local_hits[r.pid];
    } else if (r.kind == "shard_global_scan_begin") {
      global_begin_by_tid[r.tid] = r.ts_ns;
    } else if (r.kind == "shard_global_scan_end") {
      ++out.global_scans;
      out.global_attempts.record(r.a0);
      if (r.a0 > 1) ++out.global_retried;
      if (r.a1 != 0) ++out.global_sealed;
      const auto it = global_begin_by_tid.find(r.tid);
      if (it != global_begin_by_tid.end()) {
        out.global_latency_ns.record(r.ts_ns - it->second);
        global_begin_by_tid.erase(it);
      } else {  // begin lost to ring overwrite: latency not attributable
        ++out.incomplete_global_scans;
      }
    } else if (r.kind == "shard_confirm_fail") {
      ++out.confirm_failures;
    } else if (r.kind == "mvcc_publish") {
      ++out.mvcc_published;
    } else if (r.kind == "mvcc_acquire") {
      ++out.mvcc_acquires;
    } else if (r.kind == "mvcc_retire") {
      ++out.mvcc_retired;
      if (r.a1 > out.mvcc_readers_high_water) {
        out.mvcc_readers_high_water = r.a1;
      }
      mvcc_retire_ts[{r.pid, r.a0}] = r.ts_ns;
    } else if (r.kind == "mvcc_reclaim") {
      ++out.mvcc_reclaimed;
      const auto it = mvcc_retire_ts.find({r.pid, r.a0});
      if (it != mvcc_retire_ts.end()) {
        out.mvcc_grace_ns.record(r.ts_ns - it->second);
        mvcc_retire_ts.erase(it);
      } else {  // retire lost to ring overwrite: latency not attributable
        ++out.mvcc_orphan_reclaims;
      }
    } else if (r.kind == "net_drop") {
      ++out.net_by_link[r.pid].drops;
    } else if (r.kind == "net_delay") {
      ++out.net_by_link[r.pid].delays;
      out.net_delay_us.record(r.a1);
    } else if (r.kind == "net_reorder") {
      ++out.net_by_link[r.pid].reorders;
    } else if (r.kind == "net_stall") {
      ++out.net_by_link[r.pid].stalls;
    } else if (r.kind == "net_reset") {
      ++out.net_by_link[r.pid].resets;
    } else if (r.kind == "net_blackhole") {
      ++out.net_by_link[r.pid].blackhole_edges;
    } else if (r.kind == "net_flap") {
      ++out.net_by_link[r.pid].flap_edges;
    } else if (r.kind == "net_throttle") {
      ++out.net_by_link[r.pid].throttles;
    } else if (r.kind == "net_reconnect_backoff") {
      ++out.reconnect_backoffs;
      out.backoff_cooldown_ms.record(r.a1);
    }
  }
  return out;
}

const char* algo_name(std::uint64_t algo) {
  switch (algo) {
    case trace::kAlgoUnboundedSw: return "Fig2 unbounded SW";
    case trace::kAlgoBoundedSw: return "Fig3 bounded SW";
    case trace::kAlgoBoundedMw: return "Fig4 bounded MW";
    case trace::kAlgoMvccGate: return "A4 mvcc gate";
    default: return "unknown";
  }
}

std::uint64_t pigeonhole_bound(std::uint64_t algo, std::uint64_t n) {
  return algo == trace::kAlgoBoundedMw ? 2 * n + 1 : n + 1;
}

/// Prints the report; returns the number of bound violations.
std::size_t report(const Analysis& a) {
  const double span_s = a.last_ts > a.first_ts
                            ? static_cast<double>(a.last_ts - a.first_ts) / 1e9
                            : 0.0;

  // Per-algorithm scan statistics.
  struct PerAlgo {
    trace::LogHistogram attempts;
    trace::LogHistogram latency_ns;
    std::uint64_t n_max = 0;
    std::uint64_t borrowed = 0;
    std::uint64_t worst = 0;
    std::uint64_t violations = 0;
  };
  std::map<std::uint64_t, PerAlgo> by_algo;
  std::size_t violations = 0;
  for (const ScanRecord& s : a.scans) {
    PerAlgo& pa = by_algo[s.algo];
    pa.attempts.record(s.attempts);
    pa.latency_ns.record(s.latency_ns);
    if (s.n > pa.n_max) pa.n_max = s.n;
    if (s.borrowed) ++pa.borrowed;
    if (s.attempts > pa.worst) pa.worst = s.attempts;
    if (s.attempts > pigeonhole_bound(s.algo, s.n)) {
      ++pa.violations;
      ++violations;
    }
  }

  std::printf("== scans: double collects vs the pigeonhole bound ==\n");
  std::printf("%-20s %8s %6s %6s %6s %6s %6s %7s %10s\n", "algorithm",
              "scans", "p50", "p99", "max", "bound", "viol", "borrow%",
              "p99 lat");
  for (const auto& [algo, pa] : by_algo) {
    const std::uint64_t bound = pigeonhole_bound(algo, pa.n_max);
    std::printf("%-20s %8llu %6llu %6llu %6llu %6llu %6llu %6.1f%% %8.1fus\n",
                algo_name(algo),
                static_cast<unsigned long long>(pa.attempts.count()),
                static_cast<unsigned long long>(pa.attempts.percentile(0.50)),
                static_cast<unsigned long long>(pa.attempts.percentile(0.99)),
                static_cast<unsigned long long>(pa.worst),
                static_cast<unsigned long long>(bound),
                static_cast<unsigned long long>(pa.violations),
                pa.attempts.count() == 0
                    ? 0.0
                    : 100.0 * static_cast<double>(pa.borrowed) /
                          static_cast<double>(pa.attempts.count()),
                static_cast<double>(pa.latency_ns.percentile(0.99)) / 1000.0);
  }
  if (by_algo.empty()) std::printf("(no complete scans in trace)\n");
  if (a.incomplete_scans != 0) {
    std::printf("(%zu scan_end events had no scan_begin in the trace — "
                "ring overwrote their start; excluded)\n",
                a.incomplete_scans);
  }

  std::printf("\n== updates ==\n");
  std::printf("updates: %llu   p50 %.1fus  p99 %.1fus  p999 %.1fus\n",
              static_cast<unsigned long long>(a.updates),
              static_cast<double>(a.update_latency_ns.percentile(0.50)) / 1e3,
              static_cast<double>(a.update_latency_ns.percentile(0.99)) / 1e3,
              static_cast<double>(a.update_latency_ns.percentile(0.999)) / 1e3);
  std::printf("handshake toggles: %llu (%.1f/s)   moved-detections: %llu\n",
              static_cast<unsigned long long>(a.handshake_toggles),
              span_s > 0 ? static_cast<double>(a.handshake_toggles) / span_s
                         : 0.0,
              static_cast<unsigned long long>(a.moved_detected));

  if (a.rounds != 0) {
    std::printf("\n== ABD quorum rounds ==\n");
    std::printf("rounds: %llu  timeouts: %llu  retransmits/round: p50 %llu "
                "p99 %llu max %llu\n",
                static_cast<unsigned long long>(a.rounds),
                static_cast<unsigned long long>(a.round_timeouts),
                static_cast<unsigned long long>(
                    a.retransmits_per_round.percentile(0.50)),
                static_cast<unsigned long long>(
                    a.retransmits_per_round.percentile(0.99)),
                static_cast<unsigned long long>(a.retransmits_per_round.max()));
  }
  if (a.fast_reads + a.fast_fallbacks != 0) {
    // Round complexity of reads: a fast read is 1 round, a fallback is 2
    // (query + write-back). Retransmit waves are NOT rounds and are
    // reported above, per round.
    const std::uint64_t reads = a.fast_reads + a.fast_fallbacks;
    const double rounds_per_read =
        static_cast<double>(a.fast_reads + 2 * a.fast_fallbacks) /
        static_cast<double>(reads);
    std::printf("\n== ABD read round complexity ==\n");
    std::printf("reads: %llu  fast (1-round): %llu  fallback (2-round): %llu "
                "(%llu ts-disagree, %llu stability-gap)\n",
                static_cast<unsigned long long>(reads),
                static_cast<unsigned long long>(a.fast_reads),
                static_cast<unsigned long long>(a.fast_fallbacks),
                static_cast<unsigned long long>(a.fast_fallback_disagree),
                static_cast<unsigned long long>(a.fast_fallback_gap));
    std::printf("fast-hit ratio: %.1f%%  rounds/read: %.2f\n",
                100.0 * static_cast<double>(a.fast_reads) /
                    static_cast<double>(reads),
                rounds_per_read);
  }
  if (a.fault_drops + a.fault_dups + a.fault_delays != 0) {
    std::printf("\n== fault injector ==\n");
    std::printf("drops: %llu  dups: %llu  delays: %llu\n",
                static_cast<unsigned long long>(a.fault_drops),
                static_cast<unsigned long long>(a.fault_dups),
                static_cast<unsigned long long>(a.fault_delays));
  }
  if (a.suspects + a.trusts + a.recoveries_ok + a.recoveries_failed +
          a.breaker_skips + a.breaker_fail_fasts + a.stale_epoch_replies +
          a.chaos_actions !=
      0) {
    std::printf("\n== self-healing ==\n");
    std::printf("detector: %llu suspicions, %llu trust restorations\n",
                static_cast<unsigned long long>(a.suspects),
                static_cast<unsigned long long>(a.trusts));
    std::printf("breaker: %llu replica skips, %llu fail-fasts, %llu "
                "stale-epoch replies discarded\n",
                static_cast<unsigned long long>(a.breaker_skips),
                static_cast<unsigned long long>(a.breaker_fail_fasts),
                static_cast<unsigned long long>(a.stale_epoch_replies));
    std::printf("recoveries: %llu ok, %llu failed attempts; chaos actions "
                "injected: %llu\n",
                static_cast<unsigned long long>(a.recoveries_ok),
                static_cast<unsigned long long>(a.recoveries_failed),
                static_cast<unsigned long long>(a.chaos_actions));
    if (a.detection_latency_ns.count() != 0) {
      std::printf("detection latency (chaos crash -> first suspicion): "
                  "p50 %.1fus  p99 %.1fus  (%llu samples)\n",
                  static_cast<double>(a.detection_latency_ns.percentile(0.50)) /
                      1e3,
                  static_cast<double>(a.detection_latency_ns.percentile(0.99)) /
                      1e3,
                  static_cast<unsigned long long>(
                      a.detection_latency_ns.count()));
    }
    if (a.recovery_latency_ns.count() != 0) {
      std::printf("recovery duration (rejoin + replica resync): p50 %.1fus  "
                  "p99 %.1fus  max %.1fus\n",
                  static_cast<double>(a.recovery_latency_ns.percentile(0.50)) /
                      1e3,
                  static_cast<double>(a.recovery_latency_ns.percentile(0.99)) /
                      1e3,
                  static_cast<double>(a.recovery_latency_ns.max()) / 1e3);
    }
  }

  if (a.lease_grants + a.batch_flushes + a.cache_hits + a.cache_misses +
          a.sheds !=
      0) {
    std::printf("\n== service layer ==\n");
    std::printf("leases: %llu grants (%llu steals, %llu expiries) — churn "
                "%.1f grants/s\n",
                static_cast<unsigned long long>(a.lease_grants),
                static_cast<unsigned long long>(a.lease_steals),
                static_cast<unsigned long long>(a.lease_expires),
                span_s > 0 ? static_cast<double>(a.lease_grants) / span_s
                           : 0.0);
    if (a.batch_flushes != 0) {
      std::printf("batching: %llu flushes, size p50 %llu p99 %llu max %llu "
                  "(mean %.2f submits/flush)\n",
                  static_cast<unsigned long long>(a.batch_flushes),
                  static_cast<unsigned long long>(
                      a.batch_sizes.percentile(0.50)),
                  static_cast<unsigned long long>(
                      a.batch_sizes.percentile(0.99)),
                  static_cast<unsigned long long>(a.batch_sizes.max()),
                  a.batch_sizes.mean());
    }
    const std::uint64_t lookups = a.cache_hits + a.cache_misses;
    if (lookups != 0) {
      std::printf("scan cache: %.1f%% hit (%llu/%llu), %llu invalidations "
                  "observed\n",
                  100.0 * static_cast<double>(a.cache_hits) /
                      static_cast<double>(lookups),
                  static_cast<unsigned long long>(a.cache_hits),
                  static_cast<unsigned long long>(lookups),
                  static_cast<unsigned long long>(a.cache_invalidates));
    }
    std::printf("admission: %llu requests shed\n",
                static_cast<unsigned long long>(a.sheds));
  }

  if (a.shard_routes + a.global_scans + a.confirm_failures != 0 ||
      !a.shard_updates.empty() || !a.shard_local_scans.empty()) {
    // Union of shard ids seen on either the update or the scan path.
    std::map<std::uint32_t, bool> shards;
    for (const auto& [sh, n] : a.shard_updates) shards[sh] = true;
    for (const auto& [sh, n] : a.shard_local_scans) shards[sh] = true;

    std::printf("\n== sharded fabric ==\n");
    std::printf("routing: %llu client routes across %zu shard(s)\n",
                static_cast<unsigned long long>(a.shard_routes),
                shards.size());
    std::printf("%-8s %12s %12s %8s\n", "shard", "updates", "local scans",
                "hit%");
    for (const auto& [sh, present] : shards) {
      const auto count = [&](const std::map<std::uint32_t, std::uint64_t>& m) {
        const auto it = m.find(sh);
        return it == m.end() ? std::uint64_t{0} : it->second;
      };
      const std::uint64_t scans = count(a.shard_local_scans);
      std::printf("%-8u %12llu %12llu %7.1f%%\n", sh,
                  static_cast<unsigned long long>(count(a.shard_updates)),
                  static_cast<unsigned long long>(scans),
                  scans == 0 ? 0.0
                             : 100.0 *
                                   static_cast<double>(
                                       count(a.shard_local_hits)) /
                                   static_cast<double>(scans));
    }
    if (a.global_scans != 0) {
      std::printf("global scans: %llu — %.1f%% retried, attempts p50 %llu "
                  "p99 %llu max %llu, %llu sealed fallbacks\n",
                  static_cast<unsigned long long>(a.global_scans),
                  100.0 * static_cast<double>(a.global_retried) /
                      static_cast<double>(a.global_scans),
                  static_cast<unsigned long long>(
                      a.global_attempts.percentile(0.50)),
                  static_cast<unsigned long long>(
                      a.global_attempts.percentile(0.99)),
                  static_cast<unsigned long long>(a.global_attempts.max()),
                  static_cast<unsigned long long>(a.global_sealed));
      std::printf("global scan latency: p50 %.1fus  p99 %.1fus  max %.1fus\n",
                  static_cast<double>(a.global_latency_ns.percentile(0.50)) /
                      1e3,
                  static_cast<double>(a.global_latency_ns.percentile(0.99)) /
                      1e3,
                  static_cast<double>(a.global_latency_ns.max()) / 1e3);
    }
    std::printf("generation confirm failures: %llu (a shard's writes crossed "
                "a collect window)\n",
                static_cast<unsigned long long>(a.confirm_failures));
    if (a.incomplete_global_scans != 0) {
      std::printf("(%llu global_scan_end events had no begin in the trace — "
                  "ring overwrote their start; latency excluded)\n",
                  static_cast<unsigned long long>(a.incomplete_global_scans));
    }
  }

  if (a.mvcc_published + a.mvcc_acquires + a.mvcc_retired + a.mvcc_reclaimed !=
      0) {
    std::printf("\n== mvcc versioned scans ==\n");
    std::printf("versions: %llu published, %llu retired, %llu reclaimed "
                "(%lld awaiting readers or a reclamation pass)\n",
                static_cast<unsigned long long>(a.mvcc_published),
                static_cast<unsigned long long>(a.mvcc_retired),
                static_cast<unsigned long long>(a.mvcc_reclaimed),
                static_cast<long long>(a.mvcc_retired) -
                    static_cast<long long>(a.mvcc_reclaimed));
    std::printf("reader acquires: %llu   refcount high-water at unlink: %llu "
                "(of 65535 the packed counter tolerates)\n",
                static_cast<unsigned long long>(a.mvcc_acquires),
                static_cast<unsigned long long>(a.mvcc_readers_high_water));
    if (a.mvcc_grace_ns.count() != 0) {
      std::printf("grace period (unlink -> provably reader-free): p50 %.1fus "
                  " p99 %.1fus  max %.1fus  (%llu versions)\n",
                  static_cast<double>(a.mvcc_grace_ns.percentile(0.50)) / 1e3,
                  static_cast<double>(a.mvcc_grace_ns.percentile(0.99)) / 1e3,
                  static_cast<double>(a.mvcc_grace_ns.max()) / 1e3,
                  static_cast<unsigned long long>(a.mvcc_grace_ns.count()));
    }
    if (a.mvcc_orphan_reclaims != 0) {
      std::printf("(%llu reclaims had no retire in the trace — ring "
                  "overwrote it; grace latency excluded)\n",
                  static_cast<unsigned long long>(a.mvcc_orphan_reclaims));
    }
  }

  if (!a.net_by_link.empty() || a.reconnect_backoffs != 0) {
    std::printf("\n== network chaos ==\n");
    std::printf("%-6s %8s %8s %8s %7s %7s %10s %6s %9s\n", "link", "drops",
                "delays", "reorder", "stalls", "resets", "blackholes",
                "flaps", "throttles");
    Analysis::NetLink total;
    for (const auto& [link, nl] : a.net_by_link) {
      std::printf("%-6u %8llu %8llu %8llu %7llu %7llu %10llu %6llu %9llu\n",
                  link, static_cast<unsigned long long>(nl.drops),
                  static_cast<unsigned long long>(nl.delays),
                  static_cast<unsigned long long>(nl.reorders),
                  static_cast<unsigned long long>(nl.stalls),
                  static_cast<unsigned long long>(nl.resets),
                  static_cast<unsigned long long>(nl.blackhole_edges),
                  static_cast<unsigned long long>(nl.flap_edges),
                  static_cast<unsigned long long>(nl.throttles));
      total.drops += nl.drops;
      total.delays += nl.delays;
      total.reorders += nl.reorders;
      total.stalls += nl.stalls;
      total.resets += nl.resets;
      total.blackhole_edges += nl.blackhole_edges;
      total.flap_edges += nl.flap_edges;
      total.throttles += nl.throttles;
    }
    const std::uint64_t injected = total.drops + total.delays +
                                   total.reorders + total.stalls +
                                   total.resets + total.throttles;
    if (a.net_delay_us.count() != 0) {
      std::printf("injected delay/frame: p50 %.1fus  p99 %.1fus  max %.1fus "
                  "(%llu delayed frames)\n",
                  static_cast<double>(a.net_delay_us.percentile(0.50)),
                  static_cast<double>(a.net_delay_us.percentile(0.99)),
                  static_cast<double>(a.net_delay_us.max()),
                  static_cast<unsigned long long>(a.net_delay_us.count()));
    }
    // The cause/effect ledger: everything above is what the proxy DID;
    // this line is how the client code EXPERIENCED it. A healthy run shows
    // symptoms scaling with injections, not with wall-clock.
    std::printf("injected: %llu wire faults -> observed: %llu retransmit "
                "waves, %llu round timeouts, %llu reconnect backoffs\n",
                static_cast<unsigned long long>(injected),
                static_cast<unsigned long long>(a.retransmit_events),
                static_cast<unsigned long long>(a.round_timeouts),
                static_cast<unsigned long long>(a.reconnect_backoffs));
    if (a.backoff_cooldown_ms.count() != 0) {
      std::printf("reconnect cooldown armed: p50 %llums  max %llums — the "
                  "cap bounds redial pressure on a dead replica\n",
                  static_cast<unsigned long long>(
                      a.backoff_cooldown_ms.percentile(0.50)),
                  static_cast<unsigned long long>(a.backoff_cooldown_ms.max()));
    }
  }

  if (violations != 0) {
    std::printf("\nPROTOCOL VIOLATION: %zu scan(s) exceeded the pigeonhole "
                "bound\n",
                violations);
  }
  return violations;
}

/// --demo: run a small traced workload of all three algorithms (plus ABD
/// fault events are exercised elsewhere) and analyze the result in-process.
int run_demo() {
  const std::string path = "trace_demo.json";
  {
    trace::Session session(path, /*buffer_capacity=*/1 << 16);
    constexpr std::size_t kN = 4;
    core::UnboundedSwSnapshot<std::uint64_t> a1(kN, 0);
    core::BoundedSwSnapshot<std::uint64_t> a2(kN, 0);
    core::BoundedMwSnapshot<std::uint64_t> a3(kN, kN, 0);
    std::vector<std::jthread> threads;
    for (std::size_t p = 1; p < kN; ++p) {
      threads.emplace_back([&, pid = static_cast<ProcessId>(p)] {
        for (std::uint64_t it = 1; it <= 500; ++it) {
          a1.update(pid, it);
          a2.update(pid, it);
          a3.update(pid, it % kN, it);
        }
      });
    }
    for (int s = 0; s < 500; ++s) {
      (void)a1.scan(0);
      (void)a2.scan(0);
      (void)a3.scan(0);
    }
    // Multi-version engine: concurrent writers RCU-publishing through A4's
    // VersionGate while a reader scans and leases, so the "== mvcc
    // versioned scans ==" section has data (publishes, acquires, retires,
    // reclaims, and retire->reclaim grace periods with readers pinning
    // versions across publishes).
    {
      core::MvccSnapshot<std::uint64_t> a4(kN, 0);
      std::vector<std::jthread> writers;
      for (std::size_t p = 1; p < kN; ++p) {
        writers.emplace_back([&, pid = static_cast<ProcessId>(p)] {
          for (std::uint64_t it = 1; it <= 300; ++it) a4.update(pid, it);
        });
      }
      for (int s = 0; s < 300; ++s) {
        (void)a4.scan(0);
        auto lease = a4.scan_view();  // pins a version across publishes
        (void)lease.epoch();
      }
      writers.clear();  // join
      (void)a4.reclaim();
    }
    // Service layer on top of A1: a couple of clients batching updates and
    // hitting the scan cache, so the "== service layer ==" section has data.
    core::UnboundedSwSnapshot<std::uint64_t> backing(kN, 0);
    svc::ServiceConfig scfg;
    scfg.max_batch = 4;
    svc::SnapshotService<decltype(backing), std::uint64_t> service(backing,
                                                                   scfg);
    auto c1 = service.connect(1, std::chrono::seconds(1));
    auto c2 = service.connect(2, std::chrono::seconds(1));
    for (std::uint64_t it = 1; it <= 100; ++it) {
      (void)service.submit_update(c1.session,
                                  [it](ProcessId, std::uint64_t) { return it; });
      (void)service.scan(c2.session);
    }
    (void)service.disconnect(c1.session);
    (void)service.disconnect(c2.session);
    // Sharded fabric: two shards of A1 under hash routing, with local and
    // cross-shard global scans, so the "== sharded fabric ==" section has
    // data (including at least the zero-failure confirm line).
    using ShardBackend = core::UnboundedSwSnapshot<std::uint64_t>;
    std::vector<std::unique_ptr<ShardBackend>> parts;
    for (int s = 0; s < 2; ++s) {
      parts.push_back(std::make_unique<ShardBackend>(kN, 0));
    }
    shard::ShardedSnapshotFabric<ShardBackend, std::uint64_t> fabric(
        std::move(parts));
    std::vector<decltype(fabric)::Session> sessions(4);
    for (std::uint64_t c = 0; c < sessions.size(); ++c) {
      sessions[c] = fabric.connect(c, std::chrono::seconds(1)).session;
    }
    for (std::uint64_t it = 1; it <= 100; ++it) {
      for (auto& sess : sessions) {
        (void)fabric.submit_update(
            sess, [it](ProcessId, std::uint64_t) { return it; });
        (void)fabric.flush(sess);
        (void)fabric.scan(sess);
      }
      (void)fabric.global_scan();
    }
    for (auto& sess : sessions) (void)fabric.disconnect(sess);
    // Network chaos: a ChaosProxy fronting a local frame-echo server, with
    // ambient drop/delay/reorder/throttle plus a blackhole toggle and a
    // flap window, so the "== network chaos ==" section has data. The
    // echoed pings are real frames over real sockets; every fault decision
    // is the proxy's own.
    {
      std::string error;
      net::Listener echo = net::Listener::open({"127.0.0.1", 0}, &error);
      std::jthread echo_thread([&echo](std::stop_token st) {
        std::optional<net::Socket> conn;
        net::wire::Frame f;
        while (!st.stop_requested()) {
          if (!conn.has_value()) {
            conn = echo.accept(std::chrono::milliseconds(20));
            continue;
          }
          const auto status = net::recv_frame(
              *conn,
              std::chrono::steady_clock::now() + std::chrono::milliseconds(20),
              &f);
          if (status == net::RecvStatus::kTimeout) continue;
          if (status != net::RecvStatus::kOk) {
            conn.reset();
            continue;
          }
          if (!net::send_frame(*conn, f)) conn.reset();
        }
      });
      const std::uint16_t echo_port = echo.bound_port();
      net::ChaosProxy proxy({{"127.0.0.1", echo_port}}, /*seed=*/42);
      if (echo.valid() && proxy.start(&error)) {
        net::LinkFaults faults;
        faults.drop_prob = 0.2;
        faults.reorder_prob = 0.1;
        faults.delay = std::chrono::microseconds(200);
        faults.jitter = std::chrono::microseconds(100);
        faults.throttle_bytes_per_sec = 64 * 1024;
        proxy.set_all(faults);
        net::Socket client = net::tcp_connect(proxy.endpoints()[0],
                                              std::chrono::milliseconds(200));
        net::wire::Frame ping;
        ping.type = net::wire::kPing;
        net::wire::Frame reply;
        for (int i = 0; i < 60 && client.valid(); ++i) {
          ping.rid = static_cast<std::uint64_t>(i);
          if (!net::send_frame(client, ping)) break;
          (void)net::recv_frame(
              client,
              std::chrono::steady_clock::now() + std::chrono::milliseconds(5),
              &reply);
          if (i == 20) proxy.blackhole(0, net::ChaosProxy::kToClient, true);
          if (i == 30) proxy.blackhole(0, net::ChaosProxy::kToClient, false);
          if (i == 40) {
            proxy.flap(0, std::chrono::milliseconds(5),
                       std::chrono::milliseconds(5), true);
          }
          if (i == 50) {
            proxy.flap(0, std::chrono::milliseconds(0),
                       std::chrono::milliseconds(0), false);
          }
        }
        proxy.stop();
      }
      echo_thread.request_stop();
      echo_thread.join();
      echo.close();
      // TcpBus vs the now-closed port: every refused dial arms a longer
      // (jittered, capped) cooldown — the reconnect-backoff ledger.
      net::TcpBusOptions opts;
      opts.connect_timeout = std::chrono::milliseconds(10);
      opts.reconnect_cooldown = std::chrono::milliseconds(2);
      opts.reconnect_cooldown_max = std::chrono::milliseconds(8);
      net::TcpBus bus({{"127.0.0.1", echo_port}}, /*seed=*/7, opts);
      net::wire::Frame probe;
      probe.type = net::wire::kPing;
      for (int i = 0; i < 5; ++i) {
        (void)bus.send(0, probe);
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
  }
  std::vector<Row> rows;
  if (!load_trace(path, rows)) return 2;
  std::printf("demo trace: %zu events from %s\n\n", rows.size(), path.c_str());
  const Analysis a = analyze(std::move(rows));
  if (a.scans.empty() && a.updates == 0) {
    // ASNAP_TRACE compiled out: nothing to analyze, nothing to violate.
    std::printf("(tracing compiled out — empty trace)\n");
    return 0;
  }
  return report(a) == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--demo") == 0) return run_demo();
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <trace.json|trace.jsonl|trace-dir> ...\n"
                 "       %s --demo\n",
                 argv[0], argv[0]);
    return 2;
  }
  namespace fs = std::filesystem;
  // Resolve every argument to concrete trace files up front, with a clear
  // diagnosis for each failure mode instead of a crash or an empty report:
  // missing path, empty file, directory with no trace files.
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const fs::path path(argv[i]);
    std::error_code ec;
    if (!fs::exists(path, ec)) {
      std::fprintf(stderr,
                   "trace_analyze: %s: no such file or directory (was a "
                   "trace written there? see --trace on the tools)\n",
                   argv[i]);
      return 2;
    }
    if (fs::is_directory(path, ec)) {
      std::size_t found = 0;
      for (const auto& entry : fs::directory_iterator(path, ec)) {
        if (!entry.is_regular_file()) continue;
        const std::string ext = entry.path().extension().string();
        if (ext == ".json" || ext == ".jsonl") {
          files.push_back(entry.path().string());
          ++found;
        }
      }
      if (found == 0) {
        std::fprintf(stderr,
                     "trace_analyze: %s: directory contains no .json/.jsonl "
                     "trace files\n",
                     argv[i]);
        return 2;
      }
      continue;
    }
    if (fs::file_size(path, ec) == 0) {
      std::fprintf(stderr,
                   "trace_analyze: %s: trace file is empty (the traced run "
                   "may have recorded no events or crashed before the "
                   "exporter flushed)\n",
                   argv[i]);
      return 2;
    }
    files.push_back(argv[i]);
  }
  std::sort(files.begin(), files.end());
  std::vector<Row> rows;
  for (const std::string& file : files) {
    if (!load_trace(file, rows)) return 2;
  }
  if (rows.empty()) {
    std::fprintf(stderr,
                 "trace_analyze: no events in %zu trace file(s) — nothing "
                 "to analyze\n",
                 files.size());
    return 2;
  }
  std::printf("loaded %zu events from %zu file(s)\n\n", rows.size(),
              files.size());
  return report(analyze(std::move(rows))) == 0 ? 0 : 1;
}
