// Correctness tests for the baseline snapshots: they are honest,
// linearizable implementations too (their deficiency is progress/blocking,
// not safety), so the same history checking applies. Tag values are packed
// into 64-bit words for the seqlock (which requires a lock-free payload).
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "core/snapshot.hpp"
#include "harness.hpp"
#include "lin/snapshot_checker.hpp"

namespace asnap {
namespace {

using lin::Tag;

// Pack (writer, seq) into one uint64 so the seqlock can hold it atomically.
std::uint64_t pack(const Tag& t) {
  if (t.is_initial()) return 0;
  return (static_cast<std::uint64_t>(t.writer + 1) << 48) | t.seq;
}
Tag unpack(std::uint64_t v) {
  if (v == 0) return Tag{};
  return Tag{static_cast<ProcessId>((v >> 48) - 1),
             v & ((1ULL << 48) - 1)};
}

/// Adapts a packed-uint64 snapshot to the Tag-based harness.
template <typename PackedSnap>
class PackedAdapter {
 public:
  PackedAdapter(std::size_t n) : snap_(n, 0) {}
  std::size_t size() const { return snap_.size(); }
  void update(ProcessId i, Tag v) { snap_.update(i, pack(v)); }
  std::vector<Tag> scan(ProcessId i) {
    std::vector<Tag> out;
    for (const std::uint64_t v : snap_.scan(i)) out.push_back(unpack(v));
    return out;
  }

 private:
  PackedSnap snap_;
};

TEST(PackedTag, RoundTrips) {
  for (const Tag t : {Tag{}, Tag{0, 1}, Tag{7, 123456}, Tag{255, 1}}) {
    EXPECT_EQ(unpack(pack(t)), t);
  }
}

TEST(SeqlockSnapshot, SequentialSemantics) {
  core::SeqlockSnapshot<std::uint64_t> snap(3, 0);
  snap.update(1, 11);
  const auto view = snap.scan(0);
  EXPECT_EQ(view, (std::vector<std::uint64_t>{0, 11, 0}));
}

TEST(SeqlockSnapshot, StressHistoriesAreLinearizable) {
  PackedAdapter<core::SeqlockSnapshot<std::uint64_t>> snap(4);
  testing::WorkloadConfig cfg;
  cfg.processes = 4;
  cfg.ops_per_process = 300;
  cfg.scan_prob = 0.5;
  cfg.seed = 2024;
  cfg.yield_prob = 0.15;
  const lin::History history = testing::run_sw_workload(snap, cfg);
  const auto violation = lin::check_single_writer(history);
  ASSERT_FALSE(violation.has_value()) << *violation;
}

TEST(SeqlockSnapshot, BudgetedScanReportsHonestly) {
  core::SeqlockSnapshot<std::uint64_t> snap(2, 0);
  std::vector<std::uint64_t> out;
  EXPECT_TRUE(snap.try_scan(0, 1, out));  // uncontended: first try succeeds
  EXPECT_EQ(out.size(), 2u);
}

TEST(MutexSnapshot, StressHistoriesAreLinearizable) {
  core::MutexSnapshot<Tag> snap(4, Tag{});
  testing::WorkloadConfig cfg;
  cfg.processes = 4;
  cfg.ops_per_process = 300;
  cfg.scan_prob = 0.5;
  cfg.seed = 2025;
  cfg.yield_prob = 0.0;  // mutex path: yields inside locks just slow it down
  const lin::History history = testing::run_sw_workload(snap, cfg);
  const auto violation = lin::check_single_writer(history);
  ASSERT_FALSE(violation.has_value()) << *violation;
}

TEST(MutexSnapshot, MultiWriterWords) {
  core::MutexSnapshot<int> snap(2, 5, 0);
  snap.update(0, std::size_t{3}, 33);
  snap.update(1, std::size_t{3}, 44);
  EXPECT_EQ(snap.scan(0)[3], 44);
  EXPECT_EQ(snap.words(), 5u);
}

TEST(DoubleCollectSnapshot, StressHistoriesAreLinearizable) {
  core::DoubleCollectSnapshot<Tag> snap(4, Tag{});
  testing::WorkloadConfig cfg;
  cfg.processes = 4;
  cfg.ops_per_process = 200;
  cfg.scan_prob = 0.5;
  cfg.seed = 2026;
  cfg.yield_prob = 0.1;
  const lin::History history = testing::run_sw_workload(snap, cfg);
  const auto violation = lin::check_single_writer(history);
  ASSERT_FALSE(violation.has_value()) << *violation;
}

// The seqlock never returns a torn view: writers publish correlated halves
// (hi == lo + 1) in separate words is NOT guaranteed — that is a cross-word
// property. What IS guaranteed is per-scan consistency with the version
// counter; verify by checking scans always equal a state that existed:
// every word's value must be one the (single) writer actually wrote.
TEST(SeqlockSnapshot, NeverReturnsUnwrittenValues) {
  core::SeqlockSnapshot<std::uint64_t> snap(2, 0);
  std::atomic<bool> stop{false};
  std::jthread writer([&] {
    std::uint64_t v = 0;
    while (!stop.load(std::memory_order_acquire)) {
      ++v;
      snap.update(1, v * 1000);  // only multiples of 1000 are ever written
    }
  });
  for (int i = 0; i < 5000; ++i) {
    const auto view = snap.scan(0);
    ASSERT_EQ(view[1] % 1000, 0u) << "torn or invented value";
  }
  stop.store(true, std::memory_order_release);
}

}  // namespace
}  // namespace asnap
