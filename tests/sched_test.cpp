// Tests for the deterministic scheduler, its policies, and the
// context-bounded explorer — including the harness-validation test that a
// deliberately broken snapshot IS caught and the paper's algorithms are not.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/snapshot.hpp"
#include "lin/history.hpp"
#include "lin/snapshot_checker.hpp"
#include "reg/register_array.hpp"
#include "sched/explorer.hpp"
#include "sched/policies.hpp"
#include "sched/scheduler.hpp"

namespace asnap {
namespace {

using lin::Tag;

// A process body that appends its id to a shared log at every step.
std::function<void()> stepper(std::vector<std::size_t>& log, std::size_t id,
                              int steps) {
  return [&log, id, steps] {
    for (int s = 0; s < steps; ++s) {
      step_point(StepKind::kRegisterRead);  // synthetic primitive step
      log.push_back(id);
    }
  };
}

TEST(SimScheduler, RunsAllProcessesToCompletion) {
  std::vector<std::size_t> log;
  sched::RoundRobinPolicy policy;
  sched::SimScheduler scheduler(policy);
  const sched::RunReport report =
      scheduler.run({stepper(log, 0, 3), stepper(log, 1, 3)});
  EXPECT_EQ(log.size(), 6u);
  EXPECT_EQ(report.steps, 6u);
  EXPECT_FALSE(report.decisions.empty());
}

TEST(SimScheduler, RoundRobinAlternates) {
  std::vector<std::size_t> log;
  sched::RoundRobinPolicy policy;
  sched::SimScheduler scheduler(policy);
  scheduler.run({stepper(log, 0, 4), stepper(log, 1, 4)});
  // Perfect alternation (each step yields to the other process).
  const std::vector<std::size_t> expected{0, 1, 0, 1, 0, 1, 0, 1};
  EXPECT_EQ(log, expected);
}

TEST(SimScheduler, EmptyBodiesDoNotDeadlock) {
  sched::RoundRobinPolicy policy;
  sched::SimScheduler scheduler(policy);
  const sched::RunReport report = scheduler.run({[] {}, [] {}, [] {}});
  EXPECT_EQ(report.steps, 0u);
}

TEST(SimScheduler, RandomPolicyIsReproducible) {
  std::vector<std::size_t> log1;
  std::vector<std::size_t> log2;
  {
    sched::RandomPolicy policy(123);
    sched::SimScheduler s(policy);
    s.run({stepper(log1, 0, 10), stepper(log1, 1, 10), stepper(log1, 2, 10)});
  }
  {
    sched::RandomPolicy policy(123);
    sched::SimScheduler s(policy);
    s.run({stepper(log2, 0, 10), stepper(log2, 1, 10), stepper(log2, 2, 10)});
  }
  EXPECT_EQ(log1, log2);
}

TEST(SimScheduler, ReplayReproducesDecisions) {
  std::vector<std::size_t> log1;
  sched::RandomPolicy random(99);
  sched::SimScheduler s1(random);
  const sched::RunReport original =
      s1.run({stepper(log1, 0, 6), stepper(log1, 1, 6)});

  std::vector<std::size_t> prefix;
  for (const sched::Decision& d : original.decisions) {
    prefix.push_back(d.chosen);
  }
  std::vector<std::size_t> log2;
  sched::ReplayPolicy replay(prefix);
  sched::SimScheduler s2(replay);
  const sched::RunReport replayed =
      s2.run({stepper(log2, 0, 6), stepper(log2, 1, 6)});
  EXPECT_EQ(log1, log2);
  EXPECT_EQ(original.decisions.size(), replayed.decisions.size());
}

TEST(Policies, PreemptionCounting) {
  using sched::Decision;
  // P0 runs, P0 runs again (no preemption), P1 chosen while P0 enabled
  // (preemption), P0 chosen after P1 disabled (no preemption).
  std::vector<Decision> decisions{
      {{0, 1}, 0},
      {{0, 1}, 0},
      {{0, 1}, 1},
      {{0}, 0},
  };
  EXPECT_EQ(sched::count_preemptions(decisions), 1u);
}

// --- Deterministic protocol scenarios ---------------------------------------

// An adversary that starves the scanner forces failed double collects; the
// wait-free algorithms must still terminate via borrowed views, within the
// pigeonhole bound (deterministic version of experiment E6).
TEST(DeterministicScenarios, BoundedSwScanSurvivesStarvation) {
  core::BoundedSwSnapshot<Tag> snap(3, Tag{});
  std::vector<Tag> result;
  auto scanner = [&] { result = snap.scan(0); };
  auto updater = [&snap](ProcessId pid) {
    return [&snap, pid] {
      for (std::uint64_t s = 1; s <= 30; ++s) snap.update(pid, Tag{pid, s});
    };
  };
  sched::StarvePolicy policy(/*victim=*/0, /*victim_period=*/7);
  sched::SimScheduler scheduler(policy);
  scheduler.run({scanner, updater(1), updater(2)});

  ASSERT_EQ(result.size(), 3u);
  const core::ScanStats& stats = snap.stats(0);
  EXPECT_EQ(stats.scans, 1u);
  EXPECT_LE(stats.max_double_collects, 3u + 1u);  // pigeonhole, n = 3
  // Under heavy starvation the scan cannot have succeeded on a clean double
  // collect; it must have borrowed a view.
  EXPECT_EQ(stats.borrowed_views, 1u);
}

TEST(DeterministicScenarios, UnboundedSwScanSurvivesStarvation) {
  core::UnboundedSwSnapshot<Tag> snap(3, Tag{});
  std::vector<Tag> result;
  auto scanner = [&] { result = snap.scan(0); };
  auto updater = [&snap](ProcessId pid) {
    return [&snap, pid] {
      for (std::uint64_t s = 1; s <= 30; ++s) snap.update(pid, Tag{pid, s});
    };
  };
  sched::StarvePolicy policy(0, 7);
  sched::SimScheduler scheduler(policy);
  scheduler.run({scanner, updater(1), updater(2)});
  ASSERT_EQ(result.size(), 3u);
  EXPECT_LE(snap.stats(0).max_double_collects, 4u);
}

TEST(DeterministicScenarios, MultiWriterScanSurvivesStarvation) {
  core::BoundedMwSnapshot<Tag> snap(3, 2, Tag{});
  std::vector<Tag> result;
  auto scanner = [&] { result = snap.scan(0); };
  auto updater = [&snap](ProcessId pid) {
    return [&snap, pid] {
      for (std::uint64_t s = 1; s <= 30; ++s) {
        snap.update(pid, s % 2, Tag{pid, s});
      }
    };
  };
  sched::StarvePolicy policy(0, 9);
  sched::SimScheduler scheduler(policy);
  scheduler.run({scanner, updater(1), updater(2)});
  ASSERT_EQ(result.size(), 2u);
  EXPECT_LE(snap.stats(0).max_double_collects, 2u * 3u + 1u);
}

// The Observation-1-only baseline genuinely starves under the same
// adversary: its budgeted scan fails every double collect. This is the
// deterministic witness that wait-freedom is not free — Figure 2/3's
// embedded views are what rescue the scanner.
TEST(DeterministicScenarios, DoubleCollectBaselineStarves) {
  core::DoubleCollectSnapshot<Tag> snap(3, Tag{});
  bool scan_succeeded = true;
  std::vector<Tag> out;
  auto scanner = [&] { scan_succeeded = snap.try_scan(0, 10, out); };
  auto updater = [&snap](ProcessId pid) {
    return [&snap, pid] {
      for (std::uint64_t s = 1; s <= 200; ++s) snap.update(pid, Tag{pid, s});
    };
  };
  sched::StarvePolicy policy(0, 7);
  sched::SimScheduler scheduler(policy);
  scheduler.run({scanner, updater(1), updater(2)});
  EXPECT_FALSE(scan_succeeded)
      << "updaters moved between every double collect, yet the scan "
         "succeeded — the starvation schedule regressed";
}

// --- Tightness of the pigeonhole bound ---------------------------------------
//
// The scripted adversary injects exactly one solo update by a FRESH mover
// between the two collects of every double-collect attempt. Each attempt
// fails because of a different process, so the scan is driven to the
// maximum number of double collects a standalone scan can experience:
// n (single-writer; the n-th attempt repeats a mover and borrows) and
// 2n-1 (multi-writer; borrowing needs a third observation).

TEST(ScriptedAdversary, DrivesUnboundedScanToWorstCase) {
  for (const std::size_t n : {3u, 4u, 6u, 8u}) {
    core::UnboundedSwSnapshot<Tag> snap(n, Tag{});
    std::atomic<bool> done{false};
    std::vector<std::function<void()>> bodies;
    bodies.push_back([&] {
      (void)snap.scan(0);
      done.store(true, std::memory_order_relaxed);
    });
    for (std::size_t p = 1; p < n; ++p) {
      bodies.push_back([&, pid = static_cast<ProcessId>(p)] {
        std::uint64_t s = 0;
        while (!done.load(std::memory_order_relaxed)) {
          snap.update(pid, Tag{pid, ++s});
        }
      });
    }
    sched::ScriptedAdversaryPolicy::Script script;
    script.scanner = 0;
    script.attempt_steps = 2 * n;   // collect a + collect b
    script.inject_offset = n;       // right after collect a
    script.update_steps = 2 * n + 1;  // solo update: embedded scan + write
    for (std::size_t p = 1; p < n; ++p) script.movers.push_back(p);
    script.movers.push_back(1);     // the repeat that forces the borrow
    sched::ScriptedAdversaryPolicy policy(script);
    sched::SimScheduler scheduler(policy);
    scheduler.run(std::move(bodies));

    EXPECT_EQ(snap.stats(0).max_double_collects, n)
        << "n=" << n << ": the tight adversary must force n double collects";
    EXPECT_EQ(snap.stats(0).borrowed_views, 1u) << "n=" << n;
    EXPECT_EQ(policy.injections_performed(), n) << "n=" << n;
  }
}

TEST(ScriptedAdversary, DrivesBoundedScanToWorstCase) {
  for (const std::size_t n : {3u, 4u, 6u, 8u}) {
    core::BoundedSwSnapshot<Tag> snap(n, Tag{});
    std::atomic<bool> done{false};
    std::vector<std::function<void()>> bodies;
    bodies.push_back([&] {
      (void)snap.scan(0);
      done.store(true, std::memory_order_relaxed);
    });
    for (std::size_t p = 1; p < n; ++p) {
      bodies.push_back([&, pid = static_cast<ProcessId>(p)] {
        std::uint64_t s = 0;
        while (!done.load(std::memory_order_relaxed)) {
          snap.update(pid, Tag{pid, ++s});
        }
      });
    }
    sched::ScriptedAdversaryPolicy::Script script;
    script.scanner = 0;
    script.attempt_steps = 4 * n;   // handshake (2n) + two collects (2n)
    script.inject_offset = 3 * n;   // right after collect a
    script.update_steps = 5 * n + 1;  // n q-reads + embedded scan (4n) + write
    for (std::size_t p = 1; p < n; ++p) script.movers.push_back(p);
    script.movers.push_back(1);
    sched::ScriptedAdversaryPolicy policy(script);
    sched::SimScheduler scheduler(policy);
    scheduler.run(std::move(bodies));

    EXPECT_EQ(snap.stats(0).max_double_collects, n) << "n=" << n;
    EXPECT_EQ(snap.stats(0).borrowed_views, 1u) << "n=" << n;
  }
}

TEST(ScriptedAdversary, DrivesMultiWriterScanToWorstCase) {
  for (const std::size_t n : {3u, 4u, 6u}) {
    core::BoundedMwSnapshot<Tag> snap(n, n, Tag{});
    std::atomic<bool> done{false};
    std::vector<std::function<void()>> bodies;
    bodies.push_back([&] {
      (void)snap.scan(0);
      done.store(true, std::memory_order_relaxed);
    });
    for (std::size_t p = 1; p < n; ++p) {
      bodies.push_back([&, pid = static_cast<ProcessId>(p)] {
        std::uint64_t s = 0;
        while (!done.load(std::memory_order_relaxed)) {
          snap.update(pid, pid, Tag{pid, ++s});  // own word: clean attribution
        }
      });
    }
    sched::ScriptedAdversaryPolicy::Script script;
    script.scanner = 0;
    script.attempt_steps = 5 * n;   // handshake 2n + collects 2n + h-collect n
    script.inject_offset = 3 * n;   // right after collect a
    script.update_steps = 7 * n + 2;  // handshake 2n + scan 5n + view + word
    // Each mover must be observed three times before its view is borrowed.
    for (int round = 0; round < 2; ++round) {
      for (std::size_t p = 1; p < n; ++p) script.movers.push_back(p);
    }
    script.movers.push_back(1);
    sched::ScriptedAdversaryPolicy policy(script);
    sched::SimScheduler scheduler(policy);
    scheduler.run(std::move(bodies));

    EXPECT_EQ(snap.stats(0).max_double_collects, 2 * n - 1) << "n=" << n;
    EXPECT_EQ(snap.stats(0).borrowed_views, 1u) << "n=" << n;
  }
}

// --- Systematic exploration --------------------------------------------------

// A deliberately broken "snapshot" whose scan is a single collect. The
// explorer + checker must find the classic non-atomicity within a
// 1-preemption schedule; this validates that the whole verification stack
// can actually catch bugs (no vacuous green).
class BrokenSingleCollectSnapshot {
 public:
  BrokenSingleCollectSnapshot(std::size_t n, const Tag& init)
      : regs_(n, init) {}
  std::size_t size() const { return regs_.size(); }
  void update(ProcessId i, Tag v) { regs_.write(i, v); }
  std::vector<Tag> scan(ProcessId i) {
    std::vector<Tag> out;
    out.reserve(regs_.size());
    for (std::size_t j = 0; j < regs_.size(); ++j) {
      out.push_back(regs_.read(static_cast<ProcessId>(j), i));
    }
    return out;
  }

 private:
  reg::SharedMemoryRegisterArray<Tag> regs_;
};

// Program: two writers update their own words while a scanner scans; their
// real-time order emerges from the schedule. Each run's history is recorded
// and checked after the run completes; returns the number of
// non-linearizable runs found across the whole exploration.
template <typename Snap>
std::uint64_t explore_two_writers_one_scanner(std::uint64_t max_preemptions,
                                              std::uint64_t max_runs,
                                              std::uint64_t* runs_out) {
  std::uint64_t violations = 0;
  // The recorder of the run currently executing; the explorer drives runs
  // strictly one at a time, so a single slot suffices.
  std::shared_ptr<lin::Recorder> current_recorder;

  auto factory = [&]() -> std::vector<std::function<void()>> {
    auto snap = std::make_shared<Snap>(3, Tag{});
    current_recorder = std::make_shared<lin::Recorder>(3);
    auto recorder = current_recorder;
    auto scanner = [snap, recorder] {
      const lin::Time inv = recorder->tick();
      std::vector<Tag> view = snap->scan(0);
      const lin::Time res = recorder->tick();
      recorder->add_scan(0, std::move(view), inv, res);
    };
    auto updater = [snap, recorder](ProcessId pid) {
      return [snap, recorder, pid] {
        const lin::Time inv = recorder->tick();
        snap->update(pid, Tag{pid, 1});
        const lin::Time res = recorder->tick();
        recorder->add_update(pid, pid, Tag{pid, 1}, inv, res);
      };
    };
    return {scanner, updater(1), updater(2)};
  };

  sched::ExploreConfig cfg;
  cfg.max_preemptions = max_preemptions;
  cfg.max_runs = max_runs;
  const sched::ExploreResult result =
      sched::explore(factory, cfg, [&](const sched::RunReport&) {
        const lin::History h = current_recorder->take();
        if (lin::check_single_writer(h).has_value()) ++violations;
      });
  if (runs_out != nullptr) *runs_out = result.runs;
  return violations;
}

TEST(Explorer, CatchesTheBrokenSnapshot) {
  std::uint64_t runs = 0;
  const std::uint64_t violations =
      explore_two_writers_one_scanner<BrokenSingleCollectSnapshot>(
          /*max_preemptions=*/1, /*max_runs=*/20000, &runs);
  EXPECT_GT(violations, 0u)
      << "the single-collect scan should be non-linearizable in some "
         "1-preemption schedule (explored "
      << runs << " runs)";
}

TEST(Explorer, UnboundedSwPassesExploration) {
  std::uint64_t runs = 0;
  const std::uint64_t violations =
      explore_two_writers_one_scanner<core::UnboundedSwSnapshot<Tag>>(
          1, 20000, &runs);
  EXPECT_EQ(violations, 0u);
  EXPECT_GT(runs, 50u);
}

TEST(Explorer, BoundedSwPassesExploration) {
  std::uint64_t runs = 0;
  const std::uint64_t violations =
      explore_two_writers_one_scanner<core::BoundedSwSnapshot<Tag>>(
          1, 20000, &runs);
  EXPECT_EQ(violations, 0u);
  EXPECT_GT(runs, 50u);
}

}  // namespace
}  // namespace asnap
