// Service-layer suite (src/svc/): slot leases, batching + scan cache, and
// end-to-end linearizability of served histories under client churn.
//
// Organization:
//   * SlotLeaseManager unit tests under an injected manual clock
//     (deterministic expiry/steal, epoch safety across handovers) and under
//     the real clock (FIFO fairness, starvation bound when M > n);
//   * SnapshotService tests over core::UnboundedSwSnapshot (batching
//     semantics, read-your-writes, cache hit/miss/invalidate accounting,
//     deterministic load shedding, the seal protocol on lease expiry);
//   * churn stress typed over A1/A2/A3: M = 4n clients connect, pipeline
//     updates, scan, disconnect and reconnect, and the complete recorded
//     history must pass the exact single-writer checker — the acceptance
//     bar that multiplexing/batching/caching preserved linearizability.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "abd/abd_register.hpp"
#include "core/bounded_mw_snapshot.hpp"
#include "core/bounded_sw_snapshot.hpp"
#include "core/mvcc_snapshot.hpp"
#include "core/snapshot_types.hpp"
#include "core/unbounded_sw_snapshot.hpp"
#include "common/instrumentation.hpp"
#include "common/rng.hpp"
#include "lin/history.hpp"
#include "lin/snapshot_checker.hpp"
#include "svc/errors.hpp"
#include "svc/lease_manager.hpp"
#include "svc/service.hpp"

namespace asnap {
namespace {

using lin::Tag;
using svc::AcquireStatus;
using svc::ClientId;
using svc::Lease;
using svc::LeaseConfig;
using svc::ServiceConfig;
using svc::SlotLeaseManager;
using svc::SnapshotService;
using svc::SvcError;

using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// SlotLeaseManager under a manual clock: deterministic expiry.
// ---------------------------------------------------------------------------

struct ManualClock {
  std::atomic<std::uint64_t> ns{0};
  LeaseConfig config(std::chrono::nanoseconds ttl) {
    LeaseConfig cfg;
    cfg.ttl = ttl;
    cfg.now_ns = [this] { return ns.load(std::memory_order_relaxed); };
    return cfg;
  }
};

TEST(SlotLeaseManager, GrantReleaseRegrantBumpsEpoch) {
  ManualClock clk;
  SlotLeaseManager mgr(2, clk.config(1ms));
  const auto a = mgr.acquire(/*client=*/1, 0ns);
  ASSERT_EQ(a.status, AcquireStatus::kGranted);
  EXPECT_EQ(a.lease.epoch, 1u);
  EXPECT_TRUE(mgr.valid(a.lease));

  EXPECT_TRUE(mgr.release(a.lease));
  EXPECT_FALSE(mgr.release(a.lease));  // double release is rejected
  // Releasing does not bump the epoch; the *next grant* of the slot does,
  // so a leaked copy of the old lease dies exactly at re-grant time.
  EXPECT_TRUE(mgr.valid(a.lease));

  const auto b = mgr.acquire(/*client=*/2, 0ns);
  ASSERT_EQ(b.status, AcquireStatus::kGranted);
  if (b.lease.slot == a.lease.slot) {
    EXPECT_EQ(b.lease.epoch, a.lease.epoch + 1);
    EXPECT_FALSE(mgr.valid(a.lease));
  }
  const auto s = mgr.stats();
  EXPECT_EQ(s.grants, 2u);
  EXPECT_EQ(s.releases, 1u);
  EXPECT_EQ(s.steals, 0u);
}

TEST(SlotLeaseManager, QueueFullWhenAllSlotsHeldAndNoWaiterBudget) {
  ManualClock clk;
  LeaseConfig cfg = clk.config(1h);  // nothing expires during the test
  cfg.max_waiters = 0;
  SlotLeaseManager mgr(1, cfg);
  ASSERT_EQ(mgr.acquire(1, 0ns).status, AcquireStatus::kGranted);
  const auto r = mgr.acquire(2, 1h);
  EXPECT_EQ(r.status, AcquireStatus::kQueueFull);  // refused, not queued
  EXPECT_EQ(mgr.stats().queue_rejections, 1u);
}

TEST(SlotLeaseManager, ExpiredLeaseIsStolenAndSealRunsBeforeGrant) {
  ManualClock clk;
  LeaseConfig cfg = clk.config(std::chrono::nanoseconds(1000));
  struct SealRecord {
    std::size_t slot;
    std::uint64_t old_epoch, new_epoch;
    bool old_lease_still_current;  // probed inside the hook
  };
  std::vector<SealRecord> seals;
  SlotLeaseManager* mgr_ptr = nullptr;
  cfg.seal = [&](std::size_t slot, std::uint64_t oe, std::uint64_t ne) {
    // At seal time the grant must NOT yet be visible: the manager's epoch
    // still reads old. This is the window in which the service flushes the
    // outgoing holder's batch.
    seals.push_back({slot, oe, ne, mgr_ptr->epoch(slot) == oe});
  };
  SlotLeaseManager mgr(1, cfg);
  mgr_ptr = &mgr;

  const auto a = mgr.acquire(1, 0ns);
  ASSERT_EQ(a.status, AcquireStatus::kGranted);
  ASSERT_EQ(seals.size(), 1u);

  // Unexpired: no slot available, non-blocking acquire times out.
  clk.ns = 999;
  EXPECT_EQ(mgr.acquire(2, 0ns).status, AcquireStatus::kTimeout);

  // Expired: the slot is reclaimed, epoch bumps, old lease is dead.
  clk.ns = 1001;
  const auto b = mgr.acquire(2, 0ns);
  ASSERT_EQ(b.status, AcquireStatus::kGranted);
  EXPECT_EQ(b.lease.slot, a.lease.slot);
  EXPECT_EQ(b.lease.epoch, a.lease.epoch + 1);
  EXPECT_FALSE(mgr.valid(a.lease));
  EXPECT_TRUE(mgr.valid(b.lease));
  ASSERT_EQ(seals.size(), 2u);
  EXPECT_EQ(seals[1].old_epoch, a.lease.epoch);
  EXPECT_EQ(seals[1].new_epoch, b.lease.epoch);
  EXPECT_TRUE(seals[1].old_lease_still_current);
  EXPECT_EQ(mgr.stats().steals, 1u);

  // The evicted holder's lease can never act again: renew and release both
  // fail, so no sequence of stale-holder moves re-animates the old epoch.
  EXPECT_FALSE(mgr.renew(a.lease));
  EXPECT_FALSE(mgr.release(a.lease));
  EXPECT_TRUE(mgr.valid(b.lease));
}

TEST(SlotLeaseManager, SealThrowingQuorumUnavailableKeepsGrantInvisible) {
  // The service's seal hook flushes the retiring holder's batch with real
  // backend writes; under partition those throw QuorumUnavailable. A grant
  // whose seal failed must never become visible — otherwise the re-grant
  // would race the unflushed batch the seal was supposed to retire.
  ManualClock clk;
  LeaseConfig cfg = clk.config(std::chrono::nanoseconds(1000));
  bool quorum_down = false;
  cfg.seal = [&](std::size_t, std::uint64_t, std::uint64_t) {
    if (quorum_down) throw abd::QuorumUnavailable("seal write");
  };
  SlotLeaseManager mgr(1, cfg);

  const auto a = mgr.acquire(1, 0ns);
  ASSERT_EQ(a.status, AcquireStatus::kGranted);

  // Lease expires; the reclaiming grant's seal times out on the backend.
  clk.ns = 1001;
  quorum_down = true;
  EXPECT_THROW(mgr.acquire(2, 0ns), abd::QuorumUnavailable);

  // Nothing of the failed grant is visible: the epoch never moved and the
  // original lease is still the slot's current one.
  EXPECT_EQ(mgr.epoch(a.lease.slot), a.lease.epoch);
  EXPECT_TRUE(mgr.valid(a.lease));
  EXPECT_EQ(mgr.stats().grants, 1u);

  // Once the quorum heals, the reclaim goes through with the usual epoch
  // bump and the stale lease dies exactly then.
  quorum_down = false;
  const auto b = mgr.acquire(3, 0ns);
  ASSERT_EQ(b.status, AcquireStatus::kGranted);
  EXPECT_EQ(b.lease.epoch, a.lease.epoch + 1);
  EXPECT_FALSE(mgr.valid(a.lease));
}

TEST(SlotLeaseManager, SealThrowInWaitPathDoesNotWedgeTheQueue) {
  // Same failure, but hitting a *queued* acquirer: the waiter at the head of
  // the FIFO must drop its ticket when the seal throws, or every later
  // acquirer queues behind a ghost forever.
  ManualClock clk;
  LeaseConfig cfg = clk.config(1h);  // no expiry; handover via release()
  std::atomic<bool> quorum_down{false};
  cfg.seal = [&](std::size_t, std::uint64_t, std::uint64_t) {
    if (quorum_down.load()) throw abd::QuorumUnavailable("seal write");
  };
  SlotLeaseManager mgr(1, cfg);

  const auto a = mgr.acquire(1, 0ns);
  ASSERT_EQ(a.status, AcquireStatus::kGranted);

  std::atomic<bool> waiter_threw{false};
  std::thread waiter([&] {
    try {
      (void)mgr.acquire(2, 1h);  // manual clock: blocks until we act
    } catch (const abd::QuorumUnavailable&) {
      waiter_threw.store(true);
    }
  });
  while (mgr.waiters() == 0) std::this_thread::sleep_for(100us);

  // Free the slot while the backend is down: the waiter becomes head, its
  // grant's seal throws, and the exception surfaces from its acquire().
  quorum_down.store(true);
  ASSERT_TRUE(mgr.release(a.lease));
  waiter.join();
  EXPECT_TRUE(waiter_threw.load());

  // The failed waiter's ticket is gone — a fresh acquirer is NOT stuck
  // behind it and can take the (still free, still same-epoch) slot.
  EXPECT_EQ(mgr.waiters(), 0u);
  quorum_down.store(false);
  const auto c = mgr.acquire(3, 0ns);
  ASSERT_EQ(c.status, AcquireStatus::kGranted);
  EXPECT_EQ(c.lease.epoch, a.lease.epoch + 1);
}

TEST(SlotLeaseManager, RenewPostponesExpiry) {
  ManualClock clk;
  SlotLeaseManager mgr(1, clk.config(std::chrono::nanoseconds(1000)));
  const auto a = mgr.acquire(1, 0ns);
  ASSERT_EQ(a.status, AcquireStatus::kGranted);
  clk.ns = 900;
  EXPECT_TRUE(mgr.renew(a.lease));  // deadline is now 1900
  clk.ns = 1800;
  EXPECT_EQ(mgr.acquire(2, 0ns).status, AcquireStatus::kTimeout);
  clk.ns = 1901;
  EXPECT_EQ(mgr.acquire(2, 0ns).status, AcquireStatus::kGranted);
  EXPECT_GE(mgr.stats().renewals, 1u);
}

// ---------------------------------------------------------------------------
// SlotLeaseManager under the real clock: FIFO order and starvation bound.
// ---------------------------------------------------------------------------

TEST(SlotLeaseManager, WaitersAreServedFifo) {
  LeaseConfig cfg;
  cfg.ttl = 10s;  // releases, not expiry, drive turnover here
  SlotLeaseManager mgr(1, cfg);
  const auto held = mgr.acquire(/*client=*/0, 0ns);
  ASSERT_EQ(held.status, AcquireStatus::kGranted);

  constexpr int kWaiters = 4;
  std::mutex order_mu;
  std::vector<ClientId> grant_order;
  std::atomic<int> queued{0};
  std::vector<std::jthread> threads;
  for (int i = 1; i <= kWaiters; ++i) {
    threads.emplace_back([&, i] {
      // Stagger arrivals so queue order is deterministic.
      while (queued.load() != i - 1) std::this_thread::yield();
      std::thread t([&] {
        const auto r = mgr.acquire(static_cast<ClientId>(i), 10s);
        ASSERT_EQ(r.status, AcquireStatus::kGranted);
        {
          std::lock_guard lk(order_mu);
          grant_order.push_back(r.lease.client);
        }
        mgr.release(r.lease);
      });
      while (mgr.waiters() < static_cast<std::size_t>(i)) {
        std::this_thread::yield();
      }
      queued.store(i);
      t.join();
    });
  }
  while (queued.load() != kWaiters) std::this_thread::yield();
  mgr.release(held.lease);  // unleash the queue
  threads.clear();          // join
  ASSERT_EQ(grant_order.size(), static_cast<std::size_t>(kWaiters));
  for (int i = 0; i < kWaiters; ++i) {
    EXPECT_EQ(grant_order[i], static_cast<ClientId>(i + 1))
        << "FIFO violated at position " << i;
  }
}

TEST(SlotLeaseManager, NoStarvationWhenClientsOutnumberSlots) {
  LeaseConfig cfg;
  cfg.ttl = 5s;  // turnover by release; expiry is a non-factor
  SlotLeaseManager mgr(2, cfg);
  constexpr int kClients = 8;
  constexpr int kRoundsEach = 20;
  std::atomic<std::uint64_t> timeouts{0};
  {
    std::vector<std::jthread> threads;
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        for (int r = 0; r < kRoundsEach; ++r) {
          const auto a = mgr.acquire(static_cast<ClientId>(c), 30s);
          if (a.status != AcquireStatus::kGranted) {
            timeouts.fetch_add(1);
            continue;
          }
          std::this_thread::yield();  // "use" the slot briefly
          mgr.release(a.lease);
        }
      });
    }
  }
  // FIFO hand-off bounds every waiter's delay by (queue length) turnovers,
  // so with a 30 s budget and microsecond turnovers nobody times out.
  EXPECT_EQ(timeouts.load(), 0u);
  EXPECT_EQ(mgr.stats().grants, static_cast<std::uint64_t>(kClients) *
                                    static_cast<std::uint64_t>(kRoundsEach));
}

// ---------------------------------------------------------------------------
// SnapshotService semantics over A1 (core::UnboundedSwSnapshot<Tag>).
// ---------------------------------------------------------------------------

using A1 = core::UnboundedSwSnapshot<Tag>;
using Service = SnapshotService<A1, Tag>;

Tag make_tag(ProcessId slot, std::uint64_t seq) {
  return Tag{slot, seq};
}

TEST(SnapshotService, BatchingCoalescesAndAcksAtFlush) {
  A1 snap(3, Tag{});
  ServiceConfig cfg;
  cfg.max_batch = 16;
  Service svc(snap, cfg);
  auto conn = svc.connect(/*client=*/7, 1s);
  ASSERT_EQ(conn.error, SvcError::kOk);
  auto& sess = conn.session;
  const auto slot = static_cast<ProcessId>(sess.slot());

  for (std::uint64_t i = 1; i <= 3; ++i) {
    const auto r = svc.submit_update(sess, make_tag);
    ASSERT_EQ(r.error, SvcError::kOk);
    EXPECT_EQ(r.seq, i);
    EXPECT_EQ(r.flushed_through, 0u);  // nothing durable before the flush
  }
  const auto f = svc.flush(sess);
  ASSERT_EQ(f.error, SvcError::kOk);
  EXPECT_EQ(f.flushed_through, 3u);  // all three completed at once

  // Last-writer-wins coalescing: exactly one backend write, carrying seq 3.
  EXPECT_EQ(snap.scan(slot)[sess.slot()], (Tag{slot, 3}));
  const auto st = svc.stats();
  EXPECT_EQ(st.submits, 3u);
  EXPECT_EQ(st.flushes, 1u);
  EXPECT_EQ(st.coalesced, 2u);
}

TEST(SnapshotService, FullBatchFlushesInline) {
  A1 snap(2, Tag{});
  ServiceConfig cfg;
  cfg.max_batch = 2;
  Service svc(snap, cfg);
  auto conn = svc.connect(1, 1s);
  ASSERT_EQ(conn.error, SvcError::kOk);
  EXPECT_EQ(svc.submit_update(conn.session, make_tag).flushed_through, 0u);
  EXPECT_EQ(svc.submit_update(conn.session, make_tag).flushed_through, 2u);
  EXPECT_EQ(svc.stats().flushes, 1u);
}

TEST(SnapshotService, ScanReadsYourOwnBufferedWrites) {
  A1 snap(2, Tag{});
  Service svc(snap, {});
  auto conn = svc.connect(1, 1s);
  ASSERT_EQ(conn.error, SvcError::kOk);
  ASSERT_EQ(svc.submit_update(conn.session, make_tag).error, SvcError::kOk);
  const auto s = svc.scan(conn.session);
  ASSERT_EQ(s.error, SvcError::kOk);
  EXPECT_EQ(s.flushed_through, 1u);  // the scan flushed our batch first
  const auto slot = static_cast<ProcessId>(conn.session.slot());
  EXPECT_EQ(s.view[conn.session.slot()], (Tag{slot, 1}));
}

TEST(SnapshotService, ScanCacheHitMissInvalidateAccounting) {
  A1 snap(2, Tag{});
  ServiceConfig cfg;
  cfg.cache_scans = true;
  Service svc(snap, cfg);
  auto c1 = svc.connect(1, 1s);
  auto c2 = svc.connect(2, 1s);
  ASSERT_EQ(c1.error, SvcError::kOk);
  ASSERT_EQ(c2.error, SvcError::kOk);

  EXPECT_FALSE(svc.scan(c1.session).cache_hit);  // cold: fill
  EXPECT_TRUE(svc.scan(c2.session).cache_hit);   // same generation: hit
  EXPECT_TRUE(svc.scan(c1.session).cache_hit);

  // A flush advances the generation, invalidating the cached view...
  ASSERT_EQ(svc.submit_update(c1.session, make_tag).error, SvcError::kOk);
  ASSERT_EQ(svc.flush(c1.session).error, SvcError::kOk);
  const auto s = svc.scan(c2.session);
  EXPECT_FALSE(s.cache_hit);  // ...so the next scan refills
  EXPECT_EQ(s.view[c1.session.slot()].seq, 1u);  // and sees the write
  EXPECT_TRUE(svc.scan(c2.session).cache_hit);

  const auto st = svc.stats();
  EXPECT_EQ(st.cache_hits, 3u);
  EXPECT_EQ(st.cache_misses, 2u);
  EXPECT_EQ(st.scans, 5u);
}

TEST(SnapshotService, AdmissionGateShedsConcurrentExcess) {
  A1 snap(2, Tag{});
  ServiceConfig cfg;
  cfg.cache_scans = false;  // force every scan through the backend
  cfg.max_concurrent_ops = 1;
  Service svc(snap, cfg);
  auto c1 = svc.connect(1, 1s);
  auto c2 = svc.connect(2, 1s);
  ASSERT_EQ(c1.error, SvcError::kOk);
  ASSERT_EQ(c2.error, SvcError::kOk);

  // Park client 1 inside a backend scan via the step hook: the admission
  // gauge is held at 1 for as long as we like, deterministically.
  std::atomic<bool> inside{false};
  std::atomic<bool> release{false};
  struct Park {
    std::atomic<bool>* inside;
    std::atomic<bool>* release;
    static void hook(void* ctx, StepKind) {
      auto* p = static_cast<Park*>(ctx);
      p->inside->store(true);
      while (!p->release->load()) std::this_thread::yield();
    }
  } park{&inside, &release};

  std::jthread t([&] {
    ScopedStepHook hook(&Park::hook, &park);
    EXPECT_EQ(svc.scan(c1.session).error, SvcError::kOk);
  });
  while (!inside.load()) std::this_thread::yield();

  const auto r = svc.submit_update(c2.session, make_tag);
  EXPECT_EQ(r.error, SvcError::kOverloaded);
  EXPECT_EQ(svc.scan(c2.session).error, SvcError::kOverloaded);
  EXPECT_EQ(svc.stats().sheds, 2u);

  release.store(true);
  t.join();
  // Capacity freed: the same client is admitted again.
  EXPECT_EQ(svc.submit_update(c2.session, make_tag).error, SvcError::kOk);
}

TEST(SnapshotService, LeaseExpirySealFlushesOrphanedBatch) {
  A1 snap(1, Tag{});  // single slot: the steal is forced
  ManualClock clk;
  ServiceConfig cfg;
  cfg.lease = clk.config(std::chrono::nanoseconds(1000));
  Service svc(snap, cfg);

  auto c1 = svc.connect(1, 0ns);
  ASSERT_EQ(c1.error, SvcError::kOk);
  ASSERT_EQ(svc.submit_update(c1.session, make_tag).error, SvcError::kOk);

  clk.ns = 5000;  // c1's lease expires
  auto c2 = svc.connect(2, 0ns);
  ASSERT_EQ(c2.error, SvcError::kOk);  // stole slot 0
  EXPECT_EQ(c2.session.slot(), c1.session.slot());
  EXPECT_EQ(svc.lease_manager().stats().steals, 1u);

  // The seal flushed c1's orphaned submit before c2's grant became visible:
  // c2 observes it, and with nothing pending the generation is stable.
  const auto s2 = svc.scan(c2.session);
  ASSERT_EQ(s2.error, SvcError::kOk);
  EXPECT_EQ(s2.view[0], (Tag{0, 1}));

  // c1 is fenced from the first post-steal operation onward, and the
  // reported flushed_through tells it its buffered submit did complete.
  const auto r1 = svc.submit_update(c1.session, make_tag);
  EXPECT_EQ(r1.error, SvcError::kLeaseExpired);
  EXPECT_EQ(r1.flushed_through, 1u);
  EXPECT_EQ(svc.scan(c1.session).error, SvcError::kLeaseExpired);
  EXPECT_GE(svc.stats().lease_expired_errors, 2u);

  // c2's slot sequence continues after c1's: tags stay gapless per word.
  ASSERT_EQ(svc.submit_update(c2.session, make_tag).seq, 2u);
}

TEST(SnapshotService, DisconnectFlushesAndFreesTheSlot) {
  A1 snap(1, Tag{});
  Service svc(snap, {});
  auto c1 = svc.connect(1, 1s);
  ASSERT_EQ(c1.error, SvcError::kOk);
  ASSERT_EQ(svc.submit_update(c1.session, make_tag).error, SvcError::kOk);
  const auto d = svc.disconnect(c1.session);
  EXPECT_EQ(d.error, SvcError::kOk);
  EXPECT_EQ(d.flushed_through, 1u);
  EXPECT_FALSE(c1.session.connected());
  EXPECT_EQ(svc.submit_update(c1.session, make_tag).error,
            SvcError::kNotConnected);

  auto c2 = svc.connect(2, 1s);  // slot is immediately re-grantable
  ASSERT_EQ(c2.error, SvcError::kOk);
  EXPECT_EQ(svc.scan(c2.session).view[0], (Tag{0, 1}));
}

// ---------------------------------------------------------------------------
// Churn linearizability: M = 4n clients over A1/A2/A3, full history checked.
// ---------------------------------------------------------------------------

/// A3 behind the single-writer adapter (m == n), as in snapshot_sw_test.cpp.
class MwAsSw {
 public:
  MwAsSw(std::size_t n, const Tag& init) : snap_(n, n, init), adapter_(snap_) {}
  std::size_t size() const { return adapter_.size(); }
  void update(ProcessId i, Tag v) { adapter_.update(i, v); }
  std::vector<Tag> scan(ProcessId i) { return adapter_.scan(i); }

 private:
  core::BoundedMwSnapshot<Tag> snap_;
  core::SingleWriterAdapter<core::BoundedMwSnapshot<Tag>> adapter_;
};

template <typename S>
struct SvcChurnTest : public ::testing::Test {};

using SvcBackends =
    ::testing::Types<core::UnboundedSwSnapshot<Tag>,
                     core::BoundedSwSnapshot<Tag>, MwAsSw,
                     core::MvccSnapshot<Tag>>;
TYPED_TEST_SUITE(SvcChurnTest, SvcBackends);

/// One client's pending (submitted, unflushed) updates. Completion is
/// learned from OpResult::flushed_through; a completed update is recorded
/// with res = a tick taken after the covering call returned, so its
/// interval contains the actual flush instant.
struct PendingUpdate {
  std::uint64_t seq;
  Tag tag;
  lin::Time inv;
};

void complete_through(lin::Recorder& rec, std::vector<PendingUpdate>& pending,
                      std::size_t slot, std::uint64_t flushed_through) {
  if (pending.empty() || pending.front().seq > flushed_through) return;
  const lin::Time res = rec.tick();
  std::size_t i = 0;
  for (; i < pending.size() && pending[i].seq <= flushed_through; ++i) {
    rec.add_update(static_cast<ProcessId>(slot), slot, pending[i].tag,
                   pending[i].inv, res);
  }
  pending.erase(pending.begin(), pending.begin() + i);
}

template <typename Backend>
void run_churn_workload(bool cache_scans, std::uint64_t seed) {
  constexpr std::size_t kSlots = 3;
  constexpr std::size_t kClients = 4 * kSlots;  // M = 4n
  constexpr int kOpsPerClient = 120;

  Backend snap(kSlots, Tag{});
  ServiceConfig cfg;
  cfg.cache_scans = cache_scans;
  cfg.max_batch = 4;
  cfg.lease.ttl = 50ms;  // short enough that steals genuinely happen
  ServiceConfig scfg = cfg;
  SnapshotService<Backend, Tag> service(snap, scfg);
  lin::Recorder recorder(kSlots);
  std::atomic<bool> go{false};

  {
    std::vector<std::jthread> threads;
    threads.reserve(kClients);
    for (std::size_t c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        Rng rng(seed * 0x9E3779B9ULL + c);
        while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
        typename SnapshotService<Backend, Tag>::ClientSession sess;
        std::vector<PendingUpdate> pending;
        auto connect = [&]() -> bool {
          for (int attempt = 0; attempt < 200; ++attempt) {
            auto conn = service.connect(static_cast<ClientId>(c), 500ms);
            if (conn.error == SvcError::kOk) {
              sess = conn.session;
              return true;
            }
          }
          return false;
        };
        ASSERT_TRUE(connect()) << "client " << c << " never got a lease";
        for (int op = 0; op < kOpsPerClient; ++op) {
          if (!sess.connected() && !connect()) break;
          const std::size_t slot = sess.slot();
          const double dice = rng.uniform01();
          if (dice < 0.05) {  // churn: flush, give the lease back, re-join
            const auto d = service.disconnect(sess);
            ASSERT_EQ(d.error, SvcError::kOk);
            complete_through(recorder, pending, slot, d.flushed_through);
            ASSERT_TRUE(pending.empty());
            continue;
          }
          if (dice < 0.45) {  // scan
            const lin::Time inv = recorder.tick();
            auto s = service.scan(sess);
            if (s.error == SvcError::kLeaseExpired) {
              // The seal flushed everything we had buffered.
              complete_through(recorder, pending, slot, s.flushed_through);
              ASSERT_TRUE(pending.empty());
              sess = {};
              continue;
            }
            ASSERT_EQ(s.error, SvcError::kOk);
            const lin::Time res = recorder.tick();
            complete_through(recorder, pending, slot, s.flushed_through);
            recorder.add_scan(static_cast<ProcessId>(slot), std::move(s.view),
                              inv, res);
          } else {  // update (often pipelined: ack arrives at a later flush)
            const lin::Time inv = recorder.tick();
            const auto r = service.submit_update(sess, make_tag);
            if (r.error == SvcError::kLeaseExpired) {
              complete_through(recorder, pending, slot, r.flushed_through);
              ASSERT_TRUE(pending.empty());
              sess = {};
              continue;
            }
            ASSERT_EQ(r.error, SvcError::kOk);
            pending.push_back(
                {r.seq, Tag{static_cast<ProcessId>(slot), r.seq}, inv});
            complete_through(recorder, pending, slot, r.flushed_through);
          }
          if (rng.chance(0.01)) std::this_thread::yield();
        }
        if (sess.connected()) {
          const std::size_t slot = sess.slot();
          const auto d = service.disconnect(sess);
          complete_through(recorder, pending, slot, d.flushed_through);
        }
        ASSERT_TRUE(pending.empty());
      });
    }
    go.store(true, std::memory_order_release);
  }  // join

  lin::History history = recorder.take();
  EXPECT_GT(history.updates.size(), 0u);
  EXPECT_GT(history.scans.size(), 0u);
  const lin::CheckResult violation = lin::check_single_writer(history);
  EXPECT_FALSE(violation.has_value()) << *violation;

  const auto st = service.stats();
  EXPECT_GT(st.flushes, 0u);
  if (cache_scans) {
    EXPECT_GT(st.cache_hits + st.cache_misses, 0u);
  }
}

TYPED_TEST(SvcChurnTest, ChurningClientsStayLinearizableCacheOn) {
  run_churn_workload<TypeParam>(/*cache_scans=*/true, /*seed=*/42);
}

TYPED_TEST(SvcChurnTest, ChurningClientsStayLinearizableCacheOff) {
  run_churn_workload<TypeParam>(/*cache_scans=*/false, /*seed=*/1337);
}

}  // namespace
}  // namespace asnap
