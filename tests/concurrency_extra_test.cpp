// Deeper concurrency batteries: systematic exploration of the adopt-commit
// object and the multi-writer snapshot, two-preemption exploration, hazard
// reclamation torture, and register-level exact checking of the
// Vitanyi-Awerbuch MWMR construction via the Wing-Gong oracle (a 1-word
// multi-writer snapshot IS a multi-writer register).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <vector>

#include "apps/adopt_commit.hpp"
#include "core/snapshot.hpp"
#include "hazard/hazard_pointers.hpp"
#include "lin/history.hpp"
#include "lin/snapshot_checker.hpp"
#include "lin/wing_gong.hpp"
#include "reg/mwmr_register.hpp"
#include "sched/explorer.hpp"
#include "sched/policies.hpp"
#include "sched/scheduler.hpp"

namespace asnap {
namespace {

using lin::Tag;

// --- Systematic exploration of adopt-commit safety ---------------------------
//
// Explores ALL schedules (<= 2 preemptions) of three processes proposing
// {0, 1, 1} to one adopt-commit object, asserting the safety properties in
// every explored interleaving: at most one committed value, and if anyone
// commits, everyone leaves with that value.
TEST(ExplorerExtra, AdoptCommitSafetyUnderSystematicExploration) {
  std::shared_ptr<std::vector<apps::AdoptCommit::Outcome>> outcomes;
  std::shared_ptr<apps::AdoptCommit> object;

  sched::ProgramFactory factory = [&]() {
    object = std::make_shared<apps::AdoptCommit>(3);
    outcomes = std::make_shared<std::vector<apps::AdoptCommit::Outcome>>(3);
    std::vector<std::function<void()>> bodies;
    for (std::size_t p = 0; p < 3; ++p) {
      const std::uint64_t proposal = p == 0 ? 0 : 1;
      bodies.push_back([obj = object, out = outcomes, p, proposal] {
        (*out)[p] = obj->propose(static_cast<ProcessId>(p), proposal);
      });
    }
    return bodies;
  };

  std::uint64_t checked = 0;
  sched::ExploreConfig cfg;
  cfg.max_preemptions = 2;
  cfg.max_runs = 8000;  // the schedule space is huge; a capped prefix of it
                        // is still thousands of distinct interleavings
  const sched::ExploreResult result =
      sched::explore(factory, cfg, [&](const sched::RunReport&) {
        std::set<std::uint64_t> committed;
        for (const auto& o : *outcomes) {
          if (o.verdict == apps::AdoptCommit::Verdict::kCommit) {
            committed.insert(o.value);
          }
        }
        ASSERT_LE(committed.size(), 1u) << "two values committed";
        if (!committed.empty()) {
          for (const auto& o : *outcomes) {
            ASSERT_EQ(o.value, *committed.begin())
                << "a proposer missed the committed value";
          }
        }
        // Validity: outcomes are proposals.
        for (const auto& o : *outcomes) {
          ASSERT_TRUE(o.value == 0 || o.value == 1);
        }
        ++checked;
      });
  EXPECT_EQ(checked, result.runs);
  EXPECT_GT(result.runs, 100u);
}

// --- Multi-writer snapshot under systematic exploration -----------------------
//
// Two writers to a SHARED word plus one scanner; histories checked with the
// exhaustive Wing-Gong oracle (the multi-writer case the polynomial checker
// cannot decide exactly).
TEST(ExplorerExtra, MultiWriterSharedWordExploration) {
  std::shared_ptr<lin::Recorder> recorder;

  sched::ProgramFactory factory = [&]() {
    auto snap = std::make_shared<core::BoundedMwSnapshot<Tag>>(3, 2, Tag{});
    recorder = std::make_shared<lin::Recorder>(2);
    auto rec = recorder;
    std::vector<std::function<void()>> bodies;
    // P0 scans; P1 and P2 both write word 0 (contended) and P2 also word 1.
    bodies.push_back([snap, rec] {
      const lin::Time inv = rec->tick();
      std::vector<Tag> view = snap->scan(0);
      const lin::Time res = rec->tick();
      rec->add_scan(0, std::move(view), inv, res);
    });
    bodies.push_back([snap, rec] {
      const lin::Time inv = rec->tick();
      snap->update(1, 0, Tag{1, 1});
      const lin::Time res = rec->tick();
      rec->add_update(1, 0, Tag{1, 1}, inv, res);
    });
    bodies.push_back([snap, rec] {
      const lin::Time inv = rec->tick();
      snap->update(2, 0, Tag{2, 1});
      const lin::Time res = rec->tick();
      rec->add_update(2, 0, Tag{2, 1}, inv, res);
    });
    return bodies;
  };

  std::uint64_t runs_checked = 0;
  sched::ExploreConfig cfg;
  cfg.max_preemptions = 1;
  cfg.max_runs = 30000;
  sched::explore(factory, cfg, [&](const sched::RunReport&) {
    const lin::History h = recorder->take();
    ASSERT_EQ(lin::wing_gong_check(h, 30), lin::WgVerdict::kLinearizable);
    ASSERT_FALSE(lin::check_multi_writer_forced(h).has_value());
    ++runs_checked;
  });
  EXPECT_GT(runs_checked, 100u);
}

// --- Two-preemption exploration of the bounded algorithm ----------------------
TEST(ExplorerExtra, BoundedSwTwoPreemptions) {
  std::shared_ptr<lin::Recorder> recorder;
  sched::ProgramFactory factory = [&]() {
    auto snap = std::make_shared<core::BoundedSwSnapshot<Tag>>(2, Tag{});
    recorder = std::make_shared<lin::Recorder>(2);
    auto rec = recorder;
    std::vector<std::function<void()>> bodies;
    bodies.push_back([snap, rec] {
      const lin::Time inv = rec->tick();
      snap->update(0, Tag{0, 1});
      const lin::Time res = rec->tick();
      rec->add_update(0, 0, Tag{0, 1}, inv, res);
    });
    bodies.push_back([snap, rec] {
      const lin::Time inv = rec->tick();
      std::vector<Tag> view = snap->scan(1);
      const lin::Time res = rec->tick();
      rec->add_scan(1, std::move(view), inv, res);
    });
    return bodies;
  };

  std::uint64_t violations = 0;
  sched::ExploreConfig cfg;
  cfg.max_preemptions = 2;
  cfg.max_runs = 40000;
  const sched::ExploreResult result =
      sched::explore(factory, cfg, [&](const sched::RunReport&) {
        const lin::History h = recorder->take();
        if (lin::check_single_writer(h).has_value()) ++violations;
      });
  EXPECT_EQ(violations, 0u);
  // Two processes, ~25 decision points, <=2 preemptions: a couple hundred
  // distinct schedules, all explored exhaustively.
  EXPECT_GT(result.runs, 100u);
  EXPECT_FALSE(result.exhausted_budget);
}

// --- Hazard-pointer torture ---------------------------------------------------
//
// Many writers exchanging one pointer, readers chasing it, and threads
// churning (each worker lives briefly, so hazard records and orphaned
// retire lists recycle constantly). Everything observed must be alive.
struct TortureNode {
  inline static std::atomic<int> live{0};
  std::uint64_t stamp;
  explicit TortureNode(std::uint64_t s) : stamp(s) { live.fetch_add(1); }
  ~TortureNode() { live.fetch_sub(1); }
};

TEST(HazardTorture, ChurningThreadsAndWriters) {
  using Node = TortureNode;
  std::atomic<Node*> shared{new Node(0)};
  constexpr int kGenerations = 12;
  constexpr int kThreadsPerGen = 6;
  std::atomic<std::uint64_t> stamp_gen{1};

  for (int gen = 0; gen < kGenerations; ++gen) {
    std::vector<std::jthread> workers;
    for (int t = 0; t < kThreadsPerGen; ++t) {
      workers.emplace_back([&, t] {
        Rng rng(static_cast<std::uint64_t>(gen) * 131 + t);
        for (int i = 0; i < 400; ++i) {
          if (rng.chance(0.3)) {
            Node* fresh = new Node(stamp_gen.fetch_add(1));
            Node* old = shared.exchange(fresh, std::memory_order_acq_rel);
            hazard::retire_object(old);
          } else {
            hazard::Guard guard;
            Node* p = guard.protect(shared);
            ASSERT_NE(p, nullptr);
            ASSERT_LT(p->stamp, stamp_gen.load());  // sane, alive memory
          }
        }
      });
    }
  }
  delete shared.exchange(nullptr);
  hazard::Domain::global().drain();
  EXPECT_EQ(Node::live.load(), 0);
}

// --- VA register: exact atomicity via the snapshot oracle ---------------------
//
// A multi-writer register is a 1-word multi-writer snapshot: model each
// read as a scan of width 1 and each write as an update, and ask Wing-Gong.
TEST(VaRegisterExact, SmallHistoriesAreAtomic) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    reg::VitanyiAwerbuchMwmr<Tag> va(3, Tag{});
    lin::Recorder recorder(1);
    {
      std::vector<std::jthread> threads;
      for (std::size_t p = 0; p < 3; ++p) {
        threads.emplace_back([&, pid = static_cast<ProcessId>(p)] {
          Rng rng(seed * 97 + pid);
          std::uint64_t seq = 0;
          for (int op = 0; op < 3; ++op) {
            if (rng.chance(0.5)) {
              const Tag tag{pid, ++seq};
              const lin::Time inv = recorder.tick();
              va.write(pid, tag);
              const lin::Time res = recorder.tick();
              recorder.add_update(pid, 0, tag, inv, res);
            } else {
              const lin::Time inv = recorder.tick();
              Tag seen = va.read(pid);
              const lin::Time res = recorder.tick();
              recorder.add_scan(pid, {seen}, inv, res);
            }
          }
        });
      }
    }
    EXPECT_EQ(lin::wing_gong_check(recorder.take(), 30),
              lin::WgVerdict::kLinearizable)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace asnap
