// Network-chaos suite: the seeded frame fuzzer, the recv_frame stream
// discipline under byte-level adversaries, the WAL disk-full regression,
// the TcpBus reconnect-backoff schedule, and ChaosProxy unit tests against
// a local frame-echo server.
//
// The fuzzer is the CI face of the wire contract: ANY byte string handed to
// wire::decode either parses or is rejected with a typed DecodeError — the
// decoder never crashes, never throws, and never reads past the length it
// was given (mutated inputs live in exactly-sized heap buffers so an
// over-read is an ASan/valgrind crash, not a silent success). The proxy
// tests pin down each fault primitive in isolation: what chaos_run composes
// statistically, these assert deterministically.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "abd/wal.hpp"
#include "common/rng.hpp"
#include "net/chaos_proxy.hpp"
#include "net/socket.hpp"
#include "net/tcp_bus.hpp"
#include "net/wire.hpp"

namespace asnap {
namespace {

using namespace std::chrono_literals;
namespace fs = std::filesystem;
using net::RecvStatus;
using net::wire::Bytes;
using net::wire::DecodeError;
using net::wire::Frame;

// --- wire decode fuzzer -----------------------------------------------------

/// Decode from an exactly-sized heap copy: one byte past `len` is
/// unallocated, so an over-read trips the allocator/sanitizer instead of
/// silently reading a bigger stack buffer.
std::optional<Frame> decode_exact(const Bytes& body, DecodeError* error) {
  if (body.empty()) {
    // data() may be null for an empty vector; give the decoder a real
    // (but zero-length) allocation so the call itself is well-defined.
    const auto one = std::make_unique<std::uint8_t[]>(1);
    return net::wire::decode(one.get(), 0, error);
  }
  const auto copy = std::make_unique<std::uint8_t[]>(body.size());
  std::memcpy(copy.get(), body.data(), body.size());
  return net::wire::decode(copy.get(), body.size(), error);
}

Frame random_frame(Rng& rng) {
  Frame f;
  f.type = static_cast<std::uint8_t>(1 + rng.below(6));
  f.from = rng.next();
  f.rid = rng.next();
  f.epoch = rng.next();
  f.reg = rng.next();
  f.ts = rng.next();
  f.value.resize(rng.below(64));
  for (auto& b : f.value) b = static_cast<std::uint8_t>(rng.below(256));
  return f;
}

TEST(WireFuzz, MutatedFramesParseOrFailTyped) {
  Rng rng(0xF022EDull);
  for (int iter = 0; iter < 2000; ++iter) {
    const Frame in = random_frame(rng);
    Bytes buf = net::wire::encode(in);
    Bytes body(buf.begin() + 4, buf.end());  // strip the length prefix
    switch (rng.below(4)) {
      case 0:  // truncate
        body.resize(rng.below(body.size() + 1));
        break;
      case 1:  // extend with junk
        for (std::uint64_t i = 0, n = 1 + rng.below(16); i < n; ++i) {
          body.push_back(static_cast<std::uint8_t>(rng.below(256)));
        }
        break;
      case 2:  // flip bytes
        for (std::uint64_t i = 0, n = 1 + rng.below(4); i < n; ++i) {
          body[rng.below(body.size())] ^=
              static_cast<std::uint8_t>(1 + rng.below(255));
        }
        break;
      default:  // pristine
        break;
    }
    DecodeError error = DecodeError::kNone;
    const auto out = decode_exact(body, &error);
    // The contract under fuzz: success XOR a typed reason, never a crash.
    if (out.has_value()) {
      EXPECT_EQ(error, DecodeError::kNone);
      EXPECT_LE(out->value.size(), body.size());
    } else {
      EXPECT_NE(error, DecodeError::kNone);
      EXPECT_STRNE(net::wire::decode_error_name(error), "unknown decode error");
    }
  }
}

TEST(WireFuzz, RandomBlobsAreRejectedWithTypedErrors) {
  Rng rng(0xB10B5ull);
  for (int iter = 0; iter < 2000; ++iter) {
    Bytes body(rng.below(128));
    for (auto& b : body) b = static_cast<std::uint8_t>(rng.below(256));
    DecodeError error = DecodeError::kNone;
    const auto out = decode_exact(body, &error);
    if (!out.has_value()) {
      EXPECT_NE(error, DecodeError::kNone);
    }
  }
}

TEST(WireFuzz, EveryDecodeErrorVariantIsProducible) {
  Frame f;
  f.type = net::wire::kReadReq;
  f.value = {1, 2, 3};
  const Bytes buf = net::wire::encode(f);
  Bytes body(buf.begin() + 4, buf.end());
  DecodeError error = DecodeError::kNone;

  Bytes short_body(net::wire::kHeaderBytes - 1, 0);
  EXPECT_FALSE(decode_exact(short_body, &error));
  EXPECT_EQ(error, DecodeError::kShortHeader);

  Bytes oversized(net::wire::kMaxBody + 1, 0);
  EXPECT_FALSE(decode_exact(oversized, &error));
  EXPECT_EQ(error, DecodeError::kOversized);

  Bytes bad_magic = body;
  bad_magic[0] ^= 0xFF;
  EXPECT_FALSE(decode_exact(bad_magic, &error));
  EXPECT_EQ(error, DecodeError::kBadMagic);

  Bytes bad_version = body;
  bad_version[4] = net::wire::kWireVersion + 1;
  EXPECT_FALSE(decode_exact(bad_version, &error));
  EXPECT_EQ(error, DecodeError::kBadVersion);

  Bytes torn(body.begin(), body.end() - 1);
  EXPECT_FALSE(decode_exact(torn, &error));
  EXPECT_EQ(error, DecodeError::kLengthMismatch);

  // The string overload reports the same reasons by name.
  std::string text;
  EXPECT_FALSE(net::wire::decode(bad_magic.data(), bad_magic.size(), &text));
  EXPECT_EQ(text, "bad magic");
}

// --- recv_frame stream discipline -------------------------------------------

/// A connected AF_UNIX pair: write raw bytes into one end, recv_frame from
/// the other. Byte-level control no TCP loopback test can give.
struct BytePipe {
  net::Socket reader;
  int writer_fd = -1;

  BytePipe() {
    int fds[2] = {-1, -1};
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) == 0) {
      reader = net::Socket(fds[0]);
      writer_fd = fds[1];
    }
  }
  ~BytePipe() {
    if (writer_fd >= 0) ::close(writer_fd);
  }
  void write(const void* data, std::size_t len) const {
    ASSERT_EQ(::send(writer_fd, data, len, MSG_NOSIGNAL),
              static_cast<ssize_t>(len));
  }
  void close_writer() {
    ::close(writer_fd);
    writer_fd = -1;
  }
};

TEST(RecvFrameFuzz, OversizedLengthPrefixIsMalformedNotAnAllocation) {
  BytePipe pipe;
  ASSERT_TRUE(pipe.reader.valid());
  const std::uint32_t huge = net::wire::kMaxBody + 1;
  pipe.write(&huge, sizeof(huge));
  Frame out;
  EXPECT_EQ(net::recv_frame(pipe.reader,
                            std::chrono::steady_clock::now() + 100ms, &out),
            RecvStatus::kMalformed);
}

TEST(RecvFrameFuzz, PartialFrameThenSilenceIsMalformed) {
  BytePipe pipe;
  ASSERT_TRUE(pipe.reader.valid());
  Frame f;
  f.type = net::wire::kPing;
  const Bytes buf = net::wire::encode(f);
  pipe.write(buf.data(), buf.size() - 7);  // mid-body, then silence
  Frame out;
  EXPECT_EQ(net::recv_frame(pipe.reader,
                            std::chrono::steady_clock::now() + 100ms, &out),
            RecvStatus::kMalformed);
}

TEST(RecvFrameFuzz, PartialFrameThenCloseIsClosed) {
  BytePipe pipe;
  ASSERT_TRUE(pipe.reader.valid());
  Frame f;
  f.type = net::wire::kPing;
  const Bytes buf = net::wire::encode(f);
  pipe.write(buf.data(), buf.size() - 7);
  pipe.close_writer();
  Frame out;
  EXPECT_EQ(net::recv_frame(pipe.reader,
                            std::chrono::steady_clock::now() + 100ms, &out),
            RecvStatus::kClosed);
}

TEST(RecvFrameFuzz, SilenceIsTimeoutAndValidFramesStillParse) {
  BytePipe pipe;
  ASSERT_TRUE(pipe.reader.valid());
  Frame out;
  EXPECT_EQ(net::recv_frame(pipe.reader,
                            std::chrono::steady_clock::now() + 30ms, &out),
            RecvStatus::kTimeout);
  Frame f;
  f.type = net::wire::kWriteReq;
  f.rid = 77;
  f.value = {9, 8, 7};
  const Bytes buf = net::wire::encode(f);
  pipe.write(buf.data(), buf.size());
  EXPECT_EQ(net::recv_frame(pipe.reader,
                            std::chrono::steady_clock::now() + 100ms, &out),
            RecvStatus::kOk);
  EXPECT_EQ(out.rid, 77u);
  EXPECT_EQ(out.value, Bytes({9, 8, 7}));
}

TEST(RecvFrameFuzz, SeededByteStreamsNeverWedgeTheReader) {
  // Random byte soup (including torn frames and garbage lengths) must
  // always resolve to a terminal status within the deadline.
  Rng rng(0x57E4Aull);
  for (int iter = 0; iter < 50; ++iter) {
    BytePipe pipe;
    ASSERT_TRUE(pipe.reader.valid());
    Bytes junk(rng.below(256));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.below(256));
    if (!junk.empty()) pipe.write(junk.data(), junk.size());
    if (rng.chance(0.5)) pipe.close_writer();
    Frame out;
    const auto status = net::recv_frame(
        pipe.reader, std::chrono::steady_clock::now() + 20ms, &out);
    (void)status;  // any classification is fine; returning at all is the test
  }
}

// --- WAL disk-full regression ------------------------------------------------

struct WalTempDir : ::testing::Test {
  std::string dir;
  void SetUp() override {
    char tmpl[] = "/tmp/asnap_netchaos_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir = tmpl;
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir, ec);
  }
};

TEST_F(WalTempDir, DiskFullNeverAcksThenLoses) {
  const std::string path = dir + "/wal.log";
  abd::WalState state;
  std::string error;
  auto wal = abd::ReplicaWal::open(path, &state, /*fsync=*/true, &error);
  ASSERT_NE(wal, nullptr) << error;

  ASSERT_TRUE(wal->append_write(0, 1, {0xAA}));
  ASSERT_TRUE(wal->append_write(1, 1, {0xBB}));

  // ENOSPC mid-record: a realistic full volume writes SOME bytes of the
  // record before failing. The append must report failure (no ack!) and
  // roll the file back to the last record boundary.
  wal->inject_append_failure(ENOSPC, /*count=*/2, /*partial_bytes=*/9);
  EXPECT_FALSE(wal->append_write(2, 1, {0xCC}));
  EXPECT_EQ(wal->last_error(), abd::WalError::kNoSpace);
  EXPECT_STREQ(abd::wal_error_name(wal->last_error()), "no_space");
  EXPECT_FALSE(wal->append_write(2, 2, {0xCD}));
  EXPECT_EQ(wal->last_error(), abd::WalError::kNoSpace);

  // Space freed (injection exhausted): appends work again, error clears.
  EXPECT_TRUE(wal->append_write(3, 1, {0xDD}));
  EXPECT_EQ(wal->last_error(), abd::WalError::kNone);
  wal.reset();

  // Replay: every acked write present, no torn garbage resurrected, and the
  // failed writes absent — exactly what "never ack-then-lose" promises.
  abd::WalState replayed;
  auto reopened =
      abd::ReplicaWal::open(path, &replayed, /*fsync=*/true, &error);
  ASSERT_NE(reopened, nullptr) << error;
  ASSERT_EQ(replayed.regs.count(0), 1u);
  ASSERT_EQ(replayed.regs.count(1), 1u);
  ASSERT_EQ(replayed.regs.count(3), 1u);
  EXPECT_EQ(replayed.regs.count(2), 0u);
  EXPECT_EQ(replayed.regs[0].second, net::wire::Bytes{0xAA});
  EXPECT_EQ(replayed.regs[3].second, net::wire::Bytes{0xDD});
  // The reopened log is at a record boundary: appending works immediately.
  EXPECT_TRUE(reopened->append_write(4, 1, {0xEE}));
}

TEST_F(WalTempDir, IoErrorsAreClassifiedDistinctFromDiskFull) {
  const std::string path = dir + "/wal.log";
  abd::WalState state;
  std::string error;
  auto wal = abd::ReplicaWal::open(path, &state, /*fsync=*/true, &error);
  ASSERT_NE(wal, nullptr) << error;

  wal->inject_append_failure(EIO, /*count=*/1);
  EXPECT_FALSE(wal->append_write(0, 1, {0x01}));
  EXPECT_EQ(wal->last_error(), abd::WalError::kIo);
  EXPECT_STREQ(abd::wal_error_name(wal->last_error()), "io");

  wal->inject_append_failure(EDQUOT, /*count=*/1);
  EXPECT_FALSE(wal->append_write(0, 1, {0x02}));
  EXPECT_EQ(wal->last_error(), abd::WalError::kNoSpace);  // quota == full

  EXPECT_TRUE(wal->append_write(0, 3, {0x03}));
  EXPECT_EQ(wal->last_error(), abd::WalError::kNone);
}

// --- TcpBus reconnect backoff ------------------------------------------------

TEST(TcpBusBackoff, GrowsToCapAndResetsAfterSuccess) {
  // Reserve a port nobody listens on by opening and closing a listener.
  std::string error;
  net::Endpoint ep{"127.0.0.1", 0};
  {
    net::Listener probe = net::Listener::open(ep, &error);
    ASSERT_TRUE(probe.valid()) << error;
    ep.port = probe.bound_port();
  }

  net::TcpBusOptions opts;
  opts.connect_timeout = 50ms;
  opts.reconnect_cooldown = 10ms;
  opts.reconnect_cooldown_max = 160ms;
  net::TcpBus bus({ep}, /*seed=*/0xBACC0FFull, opts);
  Frame ping;
  ping.type = net::wire::kPing;

  // Each refused dial arms a jittered cooldown drawn from [base/2, 3base/2]
  // and doubles the base; after enough failures the base saturates at the
  // ceiling, so the armed value lands in [80, 240] ms — far above anything
  // the 10 ms floor can produce.
  for (int i = 0; i < 8; ++i) {
    EXPECT_FALSE(bus.send(0, ping));
    std::this_thread::sleep_for(bus.reconnect_cooldown(0) + 5ms);
  }
  const auto at_cap = bus.reconnect_cooldown(0);
  EXPECT_GE(at_cap, 80ms);
  EXPECT_LE(at_cap, 240ms);

  // Bring the replica up on that port: one successful send resets the
  // schedule, so the next failure re-arms near the floor, not the cap.
  net::Listener listener = net::Listener::open(ep, &error);
  ASSERT_TRUE(listener.valid()) << error;
  std::this_thread::sleep_for(at_cap + 5ms);  // let the cooldown lapse
  bool sent = false;
  for (int i = 0; i < 50 && !sent; ++i) {
    sent = bus.send(0, ping);
    if (!sent) std::this_thread::sleep_for(bus.reconnect_cooldown(0) + 5ms);
  }
  ASSERT_TRUE(sent);
  auto sink = listener.accept(1000ms);
  ASSERT_TRUE(sink.has_value());
  listener.close();
  sink->close();  // EOF -> the bus reader marks the link broken

  bool failed = false;
  for (int i = 0; i < 50 && !failed; ++i) {
    failed = !bus.send(0, ping);
    std::this_thread::sleep_for(10ms);
  }
  ASSERT_TRUE(failed);
  // That first failure may have been the broken-pipe write itself, which
  // marks the link but does not redial; push one more send through the dial
  // path so the post-reset schedule is what reconnect_cooldown() reports.
  std::this_thread::sleep_for(bus.reconnect_cooldown(0) + 5ms);
  EXPECT_FALSE(bus.send(0, ping));
  // Two armings after the reset at most: base 10 then 20, +50% jitter.
  EXPECT_LE(bus.reconnect_cooldown(0), 45ms);
}

// --- ChaosProxy primitives ---------------------------------------------------

/// Frame-echo server + proxy + client harness shared by the proxy tests.
struct ProxyEcho : ::testing::Test {
  net::Listener echo;
  std::jthread echo_thread;
  std::unique_ptr<net::ChaosProxy> proxy;
  net::Socket client;

  void SetUp() override {
    std::string error;
    echo = net::Listener::open({"127.0.0.1", 0}, &error);
    ASSERT_TRUE(echo.valid()) << error;
    echo_thread = std::jthread([this](std::stop_token st) {
      std::vector<net::Socket> conns;
      Frame f;
      while (!st.stop_requested()) {
        if (auto conn = echo.accept(10ms)) conns.push_back(std::move(*conn));
        for (std::size_t i = 0; i < conns.size();) {
          const auto status = net::recv_frame(
              conns[i], std::chrono::steady_clock::now() + 10ms, &f);
          if (status == RecvStatus::kOk) {
            if (!net::send_frame(conns[i], f)) {
              conns.erase(conns.begin() + static_cast<std::ptrdiff_t>(i));
              continue;
            }
          } else if (status != RecvStatus::kTimeout) {
            // EOF or a frame torn across the slice deadline: this stream is
            // desynchronized for good, stop polling it.
            conns.erase(conns.begin() + static_cast<std::ptrdiff_t>(i));
            continue;
          }
          ++i;
        }
      }
    });
    proxy = std::make_unique<net::ChaosProxy>(
        std::vector<net::Endpoint>{{"127.0.0.1", echo.bound_port()}},
        /*seed=*/0xC4A05ull);
    ASSERT_TRUE(proxy->start(&error)) << error;
    connect_client();
  }

  void connect_client() {
    client = net::tcp_connect(proxy->endpoints()[0], 500ms);
    ASSERT_TRUE(client.valid());
  }

  void TearDown() override {
    proxy->stop();
    echo_thread.request_stop();
    echo_thread.join();
    echo.close();
  }

  /// Ping through the proxy; the echoed reply must carry the same rid.
  RecvStatus ping(std::uint64_t rid, std::chrono::milliseconds wait,
                  Frame* reply) {
    Frame f;
    f.type = net::wire::kPing;
    f.rid = rid;
    if (!net::send_frame(client, f)) return RecvStatus::kClosed;
    for (;;) {
      const auto status = net::recv_frame(
          client, std::chrono::steady_clock::now() + wait, reply);
      if (status == RecvStatus::kOk && reply->rid != rid) continue;
      return status;
    }
  }
};

TEST_F(ProxyEcho, CleanLinkEchoesFrames) {
  Frame reply;
  ASSERT_EQ(ping(1, 1000ms, &reply), RecvStatus::kOk);
  EXPECT_EQ(reply.type, net::wire::kPing);
  // The pump bumps `forwarded` after the bytes are already readable by the
  // client, so poll briefly instead of racing it.
  const auto deadline = std::chrono::steady_clock::now() + 1000ms;
  while (proxy->stats(0).forwarded < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_GE(proxy->stats(0).forwarded, 2u);  // request + reply
}

TEST_F(ProxyEcho, DropEatsFramesUntilHealed) {
  net::LinkFaults f;
  f.drop_prob = 1.0;
  proxy->set_faults(0, net::ChaosProxy::kToReplica, f);
  Frame reply;
  EXPECT_EQ(ping(2, 150ms, &reply), RecvStatus::kTimeout);
  EXPECT_GE(proxy->stats(0).dropped, 1u);
  proxy->heal();
  ASSERT_EQ(ping(3, 1000ms, &reply), RecvStatus::kOk);
}

TEST_F(ProxyEcho, DelayAddsMeasurableLatency) {
  net::LinkFaults f;
  f.delay = std::chrono::microseconds(30000);
  proxy->set_faults(0, net::ChaosProxy::kToReplica, f);
  Frame reply;
  const auto t0 = std::chrono::steady_clock::now();
  ASSERT_EQ(ping(4, 2000ms, &reply), RecvStatus::kOk);
  const auto rtt = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(rtt, 30ms);
  EXPECT_GE(proxy->stats(0).delayed, 1u);
}

TEST_F(ProxyEcho, ReorderSwapsAdjacentFrames) {
  net::LinkFaults f;
  f.reorder_prob = 1.0;
  proxy->set_faults(0, net::ChaosProxy::kToReplica, f);
  Frame a, b;
  a.type = b.type = net::wire::kPing;
  a.rid = 10;
  b.rid = 11;
  ASSERT_TRUE(net::send_frame(client, a));
  ASSERT_TRUE(net::send_frame(client, b));
  // Frame 10 is held; frame 11 arrives (already holding) and flushes 10
  // behind it — the receiver sees 11 before 10.
  Frame first;
  ASSERT_EQ(net::recv_frame(client, std::chrono::steady_clock::now() + 2000ms,
                            &first),
            RecvStatus::kOk);
  EXPECT_EQ(first.rid, 11u);
  Frame second;
  ASSERT_EQ(net::recv_frame(client, std::chrono::steady_clock::now() + 2000ms,
                            &second),
            RecvStatus::kOk);
  EXPECT_EQ(second.rid, 10u);
  EXPECT_GE(proxy->stats(0).reordered, 1u);
}

TEST_F(ProxyEcho, AsymmetricBlackholeSilencesOneDirectionOnly) {
  // Reply direction dead: the request still reaches the echo server (its
  // forwarded counter moves) but nothing comes back — and the connection
  // stays open, which kill -9 could never produce.
  proxy->blackhole(0, net::ChaosProxy::kToClient, true);
  Frame reply;
  EXPECT_EQ(ping(20, 200ms, &reply), RecvStatus::kTimeout);
  EXPECT_TRUE(proxy->impaired(0));
  EXPECT_GE(proxy->stats(0).blackholed, 1u);
  proxy->blackhole(0, net::ChaosProxy::kToClient, false);
  EXPECT_FALSE(proxy->impaired(0));
  ASSERT_EQ(ping(21, 1000ms, &reply), RecvStatus::kOk);
}

TEST_F(ProxyEcho, ResetSurfacesAsClosedConnection) {
  net::LinkFaults f;
  f.reset_prob = 1.0;
  proxy->set_faults(0, net::ChaosProxy::kToReplica, f);
  Frame reply;
  EXPECT_EQ(ping(30, 500ms, &reply), RecvStatus::kClosed);
  EXPECT_GE(proxy->stats(0).resets, 1u);
  // A fresh connection after heal() works.
  proxy->heal();
  connect_client();
  ASSERT_EQ(ping(31, 1000ms, &reply), RecvStatus::kOk);
}

TEST_F(ProxyEcho, MidFrameStallIsMalformedAtTheReceiver) {
  // Stall the REPLY path: the client receives a length prefix (and maybe
  // part of the body), then silence — its recv_frame must take the
  // kMalformed mid-frame path, never resynchronize.
  net::LinkFaults f;
  f.stall_prob = 1.0;
  f.stall = std::chrono::milliseconds(400);
  proxy->set_faults(0, net::ChaosProxy::kToClient, f);
  Frame request;
  request.type = net::wire::kPing;
  request.rid = 40;
  ASSERT_TRUE(net::send_frame(client, request));
  Frame reply;
  const auto status = net::recv_frame(
      client, std::chrono::steady_clock::now() + 250ms, &reply);
  EXPECT_EQ(status, RecvStatus::kMalformed);
  EXPECT_GE(proxy->stats(0).stalled, 1u);
}

TEST_F(ProxyEcho, KillConnectionsDropsLiveSessions) {
  Frame reply;
  ASSERT_EQ(ping(50, 1000ms, &reply), RecvStatus::kOk);
  proxy->kill_connections(0);
  Frame f;
  f.type = net::wire::kPing;
  // The severed socket surfaces as EOF/error on the next recv (the send
  // may still succeed into the kernel buffer).
  EXPECT_EQ(net::recv_frame(client, std::chrono::steady_clock::now() + 500ms,
                            &f),
            RecvStatus::kClosed);
}

}  // namespace
}  // namespace asnap
