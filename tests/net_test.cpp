// Unit tests for the simulated asynchronous network: mailboxes (including
// deadline-aware receives), routing, crash/recovery, link cuts, and the
// seeded fault-injection layer (drop / duplication / bounded delay /
// partition schedules).
#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <thread>

#include "net/network.hpp"

namespace asnap::net {
namespace {

using namespace std::chrono_literals;

TEST(Mailbox, DeliversPushedMessages) {
  Mailbox box(1);
  box.push(Message{0, 7, 42, {}});
  const auto msg = box.try_receive();
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->type, 7u);
  EXPECT_EQ(msg->rid, 42u);
}

TEST(Mailbox, TryReceiveEmptyReturnsNothing) {
  Mailbox box(1);
  EXPECT_FALSE(box.try_receive().has_value());
}

TEST(Mailbox, ReceiveBlocksUntilPush) {
  Mailbox box(1);
  std::jthread producer([&] { box.push(Message{3, 1, 1, {}}); });
  const auto msg = box.receive();
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->from, 3u);
}

TEST(Mailbox, CloseDrainsThenSignals) {
  Mailbox box(1);
  box.push(Message{0, 1, 1, {}});
  box.close();
  EXPECT_TRUE(box.receive().has_value());   // drain pending
  EXPECT_FALSE(box.receive().has_value());  // then closed
  box.push(Message{0, 2, 2, {}});           // dropped after close
  EXPECT_FALSE(box.try_receive().has_value());
}

TEST(Mailbox, ReordersDeliveries) {
  Mailbox box(99);
  for (std::uint64_t i = 0; i < 64; ++i) box.push(Message{0, i, i, {}});
  bool out_of_order = false;
  std::uint64_t last = 0;
  for (int i = 0; i < 64; ++i) {
    const auto msg = box.try_receive();
    ASSERT_TRUE(msg.has_value());
    if (msg->type < last) out_of_order = true;
    last = msg->type;
  }
  EXPECT_TRUE(out_of_order) << "random pop should reorder 64 messages";
}

TEST(Mailbox, ReceiveForTimesOutOnEmpty) {
  Mailbox box(1);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(box.receive_for(5ms).has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - start, 5ms);
  EXPECT_FALSE(box.closed());
}

TEST(Mailbox, ReceiveForTimeoutThenDelivery) {
  Mailbox box(1);
  EXPECT_FALSE(box.receive_for(1ms).has_value());  // nothing yet: timeout
  std::jthread producer([&] {
    std::this_thread::sleep_for(5ms);
    box.push(Message{2, 8, 9, {}});
  });
  const auto msg = box.receive_for(2s);  // delivered well before the deadline
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->from, 2u);
  EXPECT_EQ(msg->type, 8u);
}

TEST(Mailbox, ReceiveForWakesOnCloseDuringWait) {
  Mailbox box(1);
  std::jthread closer([&] {
    std::this_thread::sleep_for(5ms);
    box.close();
  });
  const auto start = std::chrono::steady_clock::now();
  const auto msg = box.receive_for(10s);
  EXPECT_FALSE(msg.has_value());
  EXPECT_LT(std::chrono::steady_clock::now() - start, 5s)
      << "close() must wake a deadline-waiting receiver promptly";
  EXPECT_TRUE(box.closed());
}

TEST(Mailbox, ReopenAcceptsPushesAgain) {
  Mailbox box(1);
  box.push(Message{0, 1, 1, {}});
  box.close();
  box.reopen();
  EXPECT_FALSE(box.closed());
  EXPECT_FALSE(box.try_receive().has_value())
      << "reopen drops the dead incarnation's pending traffic";
  box.push(Message{0, 2, 2, {}});
  const auto msg = box.try_receive();
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->type, 2u);
}

TEST(Network, RoutesToCorrectNodeAndPort) {
  Network net(3, 7);
  net.send(0, 2, Port::kServer, 5, 1, {});
  net.send(0, 2, Port::kClient, 6, 2, {});
  EXPECT_FALSE(net.mailbox(1, Port::kServer).try_receive().has_value());
  const auto server_msg = net.mailbox(2, Port::kServer).try_receive();
  ASSERT_TRUE(server_msg.has_value());
  EXPECT_EQ(server_msg->type, 5u);
  const auto client_msg = net.mailbox(2, Port::kClient).try_receive();
  ASSERT_TRUE(client_msg.has_value());
  EXPECT_EQ(client_msg->type, 6u);
}

TEST(Network, BroadcastReachesEveryNode) {
  Network net(4, 7);
  net.broadcast(1, Port::kServer, 9, 3, {});
  for (NodeId id = 0; id < 4; ++id) {
    const auto msg = net.mailbox(id, Port::kServer).try_receive();
    ASSERT_TRUE(msg.has_value()) << "node " << id;
    EXPECT_EQ(msg->from, 1u);
  }
  EXPECT_EQ(net.messages_sent(), 4u);
}

TEST(Network, CrashDropsTrafficBothWays) {
  Network net(3, 7);
  net.crash(1);
  EXPECT_TRUE(net.crashed(1));
  EXPECT_EQ(net.alive_count(), 2u);
  net.send(0, 1, Port::kServer, 1, 1, {});  // to crashed: dropped
  net.send(1, 0, Port::kServer, 1, 1, {});  // from crashed: dropped
  EXPECT_EQ(net.messages_sent(), 0u);
  EXPECT_FALSE(net.mailbox(0, Port::kServer).try_receive().has_value());
}

TEST(Network, CrashUnblocksReceivers) {
  Network net(2, 7);
  std::jthread receiver([&] {
    const auto msg = net.mailbox(0, Port::kServer).receive();
    EXPECT_FALSE(msg.has_value());  // woken by crash-close
  });
  std::this_thread::yield();
  net.crash(0);
}

TEST(Network, RecoverReopensANodeAfterCrash) {
  Network net(3, 7);
  net.crash(1);
  net.send(0, 1, Port::kServer, 1, 1, {});
  EXPECT_FALSE(net.mailbox(1, Port::kServer).try_receive().has_value());
  net.recover(1);
  EXPECT_FALSE(net.crashed(1));
  EXPECT_EQ(net.alive_count(), 3u);
  net.send(0, 1, Port::kServer, 2, 2, {});
  const auto msg = net.mailbox(1, Port::kServer).try_receive();
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->type, 2u);
}

TEST(Network, RestoreLinkReconnects) {
  Network net(2, 7);
  net.cut_link(0, 1);
  net.send(0, 1, Port::kServer, 1, 1, {});
  EXPECT_FALSE(net.mailbox(1, Port::kServer).try_receive().has_value());
  net.restore_link(0, 1);
  EXPECT_TRUE(net.link_ok(0, 1));
  net.send(0, 1, Port::kServer, 2, 2, {});
  EXPECT_TRUE(net.mailbox(1, Port::kServer).try_receive().has_value());
}

// --- fault injection ---------------------------------------------------------

TEST(FaultInjection, DropAllLosesEveryMessage) {
  Network net(2, 7);
  net.set_fault_plan(FaultPlan{.drop_prob = 1.0});
  for (int i = 0; i < 8; ++i) net.send(0, 1, Port::kServer, 1, i, {});
  EXPECT_FALSE(net.mailbox(1, Port::kServer).try_receive().has_value());
  EXPECT_EQ(net.messages_dropped(), 8u);
  EXPECT_EQ(net.messages_sent(), 8u) << "sends are counted before loss";
}

TEST(FaultInjection, SeededDropRateIsRoughlyHonored) {
  Network net(2, 42);
  net.set_fault_plan(FaultPlan{.drop_prob = 0.3});
  for (int i = 0; i < 1000; ++i) net.send(0, 1, Port::kServer, 1, i, {});
  // Seeded Bernoulli(0.3) over 1000 draws: a wide window that only a broken
  // injector misses.
  EXPECT_GT(net.messages_dropped(), 200u);
  EXPECT_LT(net.messages_dropped(), 400u);
}

TEST(FaultInjection, DuplicateDeliversTwoCopies) {
  Network net(2, 7);
  net.set_fault_plan(FaultPlan{.dup_prob = 1.0});
  net.send(0, 1, Port::kServer, 5, 9, {});
  EXPECT_EQ(net.messages_duplicated(), 1u);
  auto first = net.mailbox(1, Port::kServer).try_receive();
  auto second = net.mailbox(1, Port::kServer).try_receive();
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(first->rid, 9u);
  EXPECT_EQ(second->rid, 9u);
  EXPECT_FALSE(net.mailbox(1, Port::kServer).try_receive().has_value());
}

TEST(FaultInjection, DuplicateCanSurviveDropOfPrimary) {
  Network net(2, 7);
  net.set_fault_plan(FaultPlan{.drop_prob = 1.0, .dup_prob = 1.0});
  net.send(0, 1, Port::kServer, 5, 9, {});
  // Primary dropped, duplicate delivered: exactly one copy arrives.
  EXPECT_TRUE(net.mailbox(1, Port::kServer).try_receive().has_value());
  EXPECT_FALSE(net.mailbox(1, Port::kServer).try_receive().has_value());
}

TEST(FaultInjection, DelayedMessageArrivesWithinBound) {
  Network net(2, 7);
  net.set_fault_plan(FaultPlan{
      .delay_prob = 1.0, .min_delay = 2ms, .max_delay = 5ms});
  net.send(0, 1, Port::kServer, 3, 4, {});
  EXPECT_EQ(net.messages_delayed(), 1u);
  const auto msg = net.mailbox(1, Port::kServer).receive_for(2s);
  ASSERT_TRUE(msg.has_value()) << "pump must release the held message";
  EXPECT_EQ(msg->type, 3u);
}

TEST(FaultInjection, FlushHeldDeliversImmediately) {
  Network net(2, 7);
  net.set_fault_plan(FaultPlan{
      .delay_prob = 1.0, .min_delay = 10s, .max_delay = 10s});
  net.send(0, 1, Port::kServer, 3, 4, {});
  EXPECT_FALSE(net.mailbox(1, Port::kServer).try_receive().has_value());
  net.flush_held();
  EXPECT_TRUE(net.mailbox(1, Port::kServer).try_receive().has_value());
}

TEST(FaultInjection, PartitionBlocksAcrossGroupsUntilHeal) {
  Network net(4, 7);
  net.partition({{0, 1}, {2, 3}});
  net.send(0, 2, Port::kServer, 1, 1, {});  // across the cut: lost
  net.send(0, 1, Port::kServer, 2, 2, {});  // same side: delivered
  EXPECT_FALSE(net.mailbox(2, Port::kServer).try_receive().has_value());
  EXPECT_TRUE(net.mailbox(1, Port::kServer).try_receive().has_value());
  EXPECT_EQ(net.messages_dropped(), 1u);
  net.heal();
  net.send(0, 2, Port::kServer, 3, 3, {});
  EXPECT_TRUE(net.mailbox(2, Port::kServer).try_receive().has_value());
}

TEST(FaultInjection, ClearFaultsRestoresReliableDelivery) {
  Network net(2, 7);
  net.set_fault_plan(FaultPlan{.drop_prob = 1.0});
  net.send(0, 1, Port::kServer, 1, 1, {});
  EXPECT_FALSE(net.mailbox(1, Port::kServer).try_receive().has_value());
  net.clear_faults();
  EXPECT_FALSE(net.faults_enabled());
  net.send(0, 1, Port::kServer, 2, 2, {});
  EXPECT_TRUE(net.mailbox(1, Port::kServer).try_receive().has_value());
}

}  // namespace
}  // namespace asnap::net
