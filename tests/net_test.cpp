// Unit tests for the simulated asynchronous network.
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "net/network.hpp"

namespace asnap::net {
namespace {

TEST(Mailbox, DeliversPushedMessages) {
  Mailbox box(1);
  box.push(Message{0, 7, 42, {}});
  const auto msg = box.try_receive();
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->type, 7u);
  EXPECT_EQ(msg->rid, 42u);
}

TEST(Mailbox, TryReceiveEmptyReturnsNothing) {
  Mailbox box(1);
  EXPECT_FALSE(box.try_receive().has_value());
}

TEST(Mailbox, ReceiveBlocksUntilPush) {
  Mailbox box(1);
  std::jthread producer([&] { box.push(Message{3, 1, 1, {}}); });
  const auto msg = box.receive();
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->from, 3u);
}

TEST(Mailbox, CloseDrainsThenSignals) {
  Mailbox box(1);
  box.push(Message{0, 1, 1, {}});
  box.close();
  EXPECT_TRUE(box.receive().has_value());   // drain pending
  EXPECT_FALSE(box.receive().has_value());  // then closed
  box.push(Message{0, 2, 2, {}});           // dropped after close
  EXPECT_FALSE(box.try_receive().has_value());
}

TEST(Mailbox, ReordersDeliveries) {
  Mailbox box(99);
  for (std::uint64_t i = 0; i < 64; ++i) box.push(Message{0, i, i, {}});
  bool out_of_order = false;
  std::uint64_t last = 0;
  for (int i = 0; i < 64; ++i) {
    const auto msg = box.try_receive();
    ASSERT_TRUE(msg.has_value());
    if (msg->type < last) out_of_order = true;
    last = msg->type;
  }
  EXPECT_TRUE(out_of_order) << "random pop should reorder 64 messages";
}

TEST(Network, RoutesToCorrectNodeAndPort) {
  Network net(3, 7);
  net.send(0, 2, Port::kServer, 5, 1, {});
  net.send(0, 2, Port::kClient, 6, 2, {});
  EXPECT_FALSE(net.mailbox(1, Port::kServer).try_receive().has_value());
  const auto server_msg = net.mailbox(2, Port::kServer).try_receive();
  ASSERT_TRUE(server_msg.has_value());
  EXPECT_EQ(server_msg->type, 5u);
  const auto client_msg = net.mailbox(2, Port::kClient).try_receive();
  ASSERT_TRUE(client_msg.has_value());
  EXPECT_EQ(client_msg->type, 6u);
}

TEST(Network, BroadcastReachesEveryNode) {
  Network net(4, 7);
  net.broadcast(1, Port::kServer, 9, 3, {});
  for (NodeId id = 0; id < 4; ++id) {
    const auto msg = net.mailbox(id, Port::kServer).try_receive();
    ASSERT_TRUE(msg.has_value()) << "node " << id;
    EXPECT_EQ(msg->from, 1u);
  }
  EXPECT_EQ(net.messages_sent(), 4u);
}

TEST(Network, CrashDropsTrafficBothWays) {
  Network net(3, 7);
  net.crash(1);
  EXPECT_TRUE(net.crashed(1));
  EXPECT_EQ(net.alive_count(), 2u);
  net.send(0, 1, Port::kServer, 1, 1, {});  // to crashed: dropped
  net.send(1, 0, Port::kServer, 1, 1, {});  // from crashed: dropped
  EXPECT_EQ(net.messages_sent(), 0u);
  EXPECT_FALSE(net.mailbox(0, Port::kServer).try_receive().has_value());
}

TEST(Network, CrashUnblocksReceivers) {
  Network net(2, 7);
  std::jthread receiver([&] {
    const auto msg = net.mailbox(0, Port::kServer).receive();
    EXPECT_FALSE(msg.has_value());  // woken by crash-close
  });
  std::this_thread::yield();
  net.crash(0);
}

}  // namespace
}  // namespace asnap::net
