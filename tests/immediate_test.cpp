// Tests for the one-shot immediate snapshot: the three defining properties
// (self-inclusion, containment, immediacy) under sequential use, real
// concurrency, seeded deterministic schedules, and systematic exploration.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "core/immediate_snapshot.hpp"
#include "harness.hpp"
#include "sched/explorer.hpp"
#include "sched/policies.hpp"
#include "sched/scheduler.hpp"

namespace asnap::core {
namespace {

using Snap = ImmediateSnapshot<std::uint64_t>;
using View = std::vector<Snap::Entry>;

std::set<ProcessId> pids_of(const View& view) {
  std::set<ProcessId> out;
  for (const auto& e : view) out.insert(e.pid);
  return out;
}

bool subset(const std::set<ProcessId>& a, const std::set<ProcessId>& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

/// Asserts self-inclusion, containment and immediacy over a complete set of
/// per-process views (empty view = process did not participate).
void check_immediate_properties(const std::vector<View>& views) {
  const std::size_t n = views.size();
  std::vector<std::set<ProcessId>> sets(n);
  std::vector<bool> participated(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    if (views[i].empty()) continue;
    participated[i] = true;
    sets[i] = pids_of(views[i]);
    // self-inclusion
    ASSERT_TRUE(sets[i].count(static_cast<ProcessId>(i)))
        << "P" << i << " missing from its own view";
    // views only contain participants, with their real values
    for (const auto& entry : views[i]) {
      ASSERT_LT(entry.pid, n);
      ASSERT_EQ(entry.value, 1000 + entry.pid) << "phantom value";
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!participated[i]) continue;
    for (std::size_t j = 0; j < n; ++j) {
      if (!participated[j]) continue;
      // containment
      ASSERT_TRUE(subset(sets[i], sets[j]) || subset(sets[j], sets[i]))
          << "views of P" << i << " and P" << j << " incomparable";
      // immediacy
      if (sets[i].count(static_cast<ProcessId>(j))) {
        ASSERT_TRUE(subset(sets[j], sets[i]))
            << "P" << j << " in P" << i << "'s view but view_" << j
            << " not contained";
      }
    }
  }
}

TEST(ImmediateSnapshot, SoloParticipantSeesOnlyItself) {
  Snap snap(4);
  const View view = snap.write_read(2, 1002);
  ASSERT_EQ(view.size(), 1u);
  EXPECT_EQ(view[0].pid, 2u);
  EXPECT_EQ(view[0].value, 1002u);
}

TEST(ImmediateSnapshot, SequentialParticipantsNest) {
  Snap snap(3);
  std::vector<View> views(3);
  views[0] = snap.write_read(0, 1000);
  views[1] = snap.write_read(1, 1001);
  views[2] = snap.write_read(2, 1002);
  EXPECT_EQ(views[0].size(), 1u);
  EXPECT_EQ(views[1].size(), 2u);
  EXPECT_EQ(views[2].size(), 3u);
  check_immediate_properties(views);
}

TEST(ImmediateSnapshot, PropertiesHoldUnderRealThreads) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const std::size_t n = 2 + seed % 5;  // 2..6
    Snap snap(n);
    std::vector<View> views(n);
    {
      std::vector<std::jthread> threads;
      for (std::size_t p = 0; p < n; ++p) {
        threads.emplace_back([&, pid = static_cast<ProcessId>(p)] {
          testing::ChaosYield chaos{Rng(seed * 131 + pid), 0.3};
          ScopedStepHook hook(&testing::ChaosYield::hook, &chaos);
          views[pid] = snap.write_read(pid, 1000 + pid);
        });
      }
    }
    check_immediate_properties(views);
  }
}

TEST(ImmediateSnapshot, PropertiesHoldUnderSeededSchedules) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    constexpr std::size_t kN = 4;
    Snap snap(kN);
    std::vector<View> views(kN);
    std::vector<std::function<void()>> bodies;
    for (std::size_t p = 0; p < kN; ++p) {
      bodies.push_back([&, pid = static_cast<ProcessId>(p)] {
        views[pid] = snap.write_read(pid, 1000 + pid);
      });
    }
    sched::RandomPolicy policy(seed);
    sched::SimScheduler scheduler(policy);
    scheduler.run(std::move(bodies));
    check_immediate_properties(views);
  }
}

TEST(ImmediateSnapshot, PropertiesHoldUnderSystematicExploration) {
  std::shared_ptr<std::vector<View>> views;
  sched::ProgramFactory factory = [&]() {
    auto snap = std::make_shared<Snap>(3);
    views = std::make_shared<std::vector<View>>(3);
    std::vector<std::function<void()>> bodies;
    for (std::size_t p = 0; p < 3; ++p) {
      bodies.push_back([snap, out = views, pid = static_cast<ProcessId>(p)] {
        (*out)[pid] = snap->write_read(pid, 1000 + pid);
      });
    }
    return bodies;
  };
  sched::ExploreConfig cfg;
  cfg.max_preemptions = 2;
  cfg.max_runs = 10000;
  std::uint64_t checked = 0;
  sched::explore(factory, cfg, [&](const sched::RunReport&) {
    check_immediate_properties(*views);
    ++checked;
  });
  EXPECT_GT(checked, 100u);
}

TEST(ImmediateSnapshot, WaitFreeStepBound) {
  constexpr std::size_t kN = 6;
  Snap snap(kN);
  std::vector<std::jthread> others;
  std::atomic<int> remaining{kN - 1};
  for (std::size_t p = 1; p < kN; ++p) {
    others.emplace_back([&, pid = static_cast<ProcessId>(p)] {
      testing::ChaosYield chaos{Rng(pid), 0.2};
      ScopedStepHook hook(&testing::ChaosYield::hook, &chaos);
      (void)snap.write_read(pid, 1000 + pid);
      remaining.fetch_sub(1);
    });
  }
  StepMeter meter;
  (void)snap.write_read(0, 1000);
  // Level descent: <= n iterations of (1 write + n reads) => O(n^2).
  EXPECT_LE(meter.elapsed().total(), (kN + 1) * (kN + 1) * 2);
}

TEST(ImmediateSnapshot, LastArrivalSeesEveryone) {
  constexpr std::size_t kN = 5;
  Snap snap(kN);
  for (std::size_t p = 0; p + 1 < kN; ++p) {
    (void)snap.write_read(static_cast<ProcessId>(p), 1000 + p);
  }
  const View view = snap.write_read(kN - 1, 1000 + kN - 1);
  EXPECT_EQ(view.size(), kN);
}

}  // namespace
}  // namespace asnap::core
