// Unit tests for the common/ substrate: RNG determinism, step-point
// instrumentation, thread registry id recycling, backoff liveness.
#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "common/backoff.hpp"
#include "common/instrumentation.hpp"
#include "common/rng.hpp"
#include "common/thread_registry.hpp"

namespace asnap {
namespace {

TEST(Rng, DeterministicUnderSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 5);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(99);
  constexpr int kBuckets = 8;
  constexpr int kSamples = 80000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kSamples; ++i) ++counts[rng.below(kBuckets)];
  for (int c : counts) {
    EXPECT_GT(c, kSamples / kBuckets * 0.9);
    EXPECT_LT(c, kSamples / kBuckets * 1.1);
  }
}

TEST(Rng, Uniform01InRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(StepPoint, CountsReadsAndWrites) {
  StepMeter meter;
  step_point(StepKind::kRegisterRead);
  step_point(StepKind::kRegisterRead);
  step_point(StepKind::kRegisterWrite);
  const StepCounters delta = meter.elapsed();
  EXPECT_EQ(delta.reads, 2u);
  EXPECT_EQ(delta.writes, 1u);
  EXPECT_EQ(delta.total(), 3u);
}

TEST(StepPoint, CountersAreThreadLocal) {
  StepMeter meter;
  std::thread other([] {
    for (int i = 0; i < 100; ++i) step_point(StepKind::kRegisterRead);
  });
  other.join();
  EXPECT_EQ(meter.elapsed().total(), 0u);
}

TEST(StepPoint, HookFiresPerStep) {
  int fired = 0;
  {
    ScopedStepHook hook(
        [](void* ctx, StepKind) { ++*static_cast<int*>(ctx); }, &fired);
    step_point(StepKind::kRegisterRead);
    step_point(StepKind::kRegisterWrite);
  }
  step_point(StepKind::kRegisterRead);  // hook uninstalled: must not fire
  EXPECT_EQ(fired, 2);
}

TEST(StepPoint, HooksNest) {
  int outer = 0;
  int inner = 0;
  ScopedStepHook h1([](void* ctx, StepKind) { ++*static_cast<int*>(ctx); },
                    &outer);
  {
    ScopedStepHook h2([](void* ctx, StepKind) { ++*static_cast<int*>(ctx); },
                      &inner);
    step_point(StepKind::kRegisterRead);
  }
  step_point(StepKind::kRegisterRead);
  EXPECT_EQ(inner, 1);
  EXPECT_EQ(outer, 1);  // restored after inner scope
}

TEST(ThreadRegistry, IdsAreDenseAndDistinct) {
  constexpr int kThreads = 16;
  std::vector<std::size_t> ids(kThreads);
  {
    std::vector<std::jthread> threads;
    std::atomic<bool> go{false};
    std::atomic<int> ready{0};
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        ids[t] = this_thread_id();
        ready.fetch_add(1);
        while (!go.load()) std::this_thread::yield();  // hold the slot
      });
    }
    while (ready.load() < kThreads) std::this_thread::yield();
    const std::set<std::size_t> unique(ids.begin(), ids.end());
    EXPECT_EQ(unique.size(), static_cast<std::size_t>(kThreads));
    for (std::size_t id : ids) EXPECT_LT(id, kMaxThreads);
    go.store(true);
  }
}

TEST(ThreadRegistry, SlotsAreRecycled) {
  // Sequential threads must be able to run far beyond kMaxThreads total.
  for (std::size_t i = 0; i < kMaxThreads + 32; ++i) {
    std::jthread worker([] { (void)this_thread_id(); });
  }
  SUCCEED();
}

TEST(ThreadRegistry, StableWithinThread) {
  const std::size_t first = this_thread_id();
  const std::size_t second = this_thread_id();
  EXPECT_EQ(first, second);
}

TEST(Backoff, TerminatesAndResets) {
  Backoff b;
  for (int i = 0; i < 50; ++i) b.pause();
  b.reset();
  b.pause();
  SUCCEED();
}

}  // namespace
}  // namespace asnap
