// Shared test harness: drives snapshot objects with randomized concurrent
// workloads over Tag values and records complete operation histories for
// the linearizability checkers.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/config.hpp"
#include "common/instrumentation.hpp"
#include "common/rng.hpp"
#include "lin/history.hpp"

namespace asnap::testing {

struct WorkloadConfig {
  std::size_t processes = 4;
  std::size_t ops_per_process = 200;
  double scan_prob = 0.5;
  std::uint64_t seed = 1;
  /// Probability of yielding the OS scheduler before each primitive register
  /// step. Essential on few-core machines: without it, threads interleave
  /// only at coarse preemption boundaries and concurrency bugs hide.
  double yield_prob = 0.2;
};

/// Step hook that yields with fixed probability — randomized preemption at
/// exactly the atomic-step granularity the paper's proofs reason about.
struct ChaosYield {
  Rng rng;
  double prob;

  static void hook(void* ctx, StepKind /*kind*/) {
    auto* self = static_cast<ChaosYield*>(ctx);
    if (self->prob > 0 && self->rng.chance(self->prob)) {
      std::this_thread::yield();
    }
  }
};

/// Runs a single-writer workload: process i updates word i with uniquely
/// tagged values and scans, all recorded. The snapshot must hold lin::Tag
/// values and have been constructed with init == lin::Tag{}.
template <typename Snap>
lin::History run_sw_workload(Snap& snap, const WorkloadConfig& cfg) {
  lin::Recorder recorder(cfg.processes);
  std::atomic<bool> go{false};
  {
    std::vector<std::jthread> threads;
    threads.reserve(cfg.processes);
    for (std::size_t p = 0; p < cfg.processes; ++p) {
      threads.emplace_back([&, pid = static_cast<ProcessId>(p)] {
        Rng rng(cfg.seed * 0x9E3779B9ULL + pid);
        ChaosYield chaos{Rng(cfg.seed * 31 + pid), cfg.yield_prob};
        ScopedStepHook hook(&ChaosYield::hook, &chaos);
        while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
        std::uint64_t seq = 0;
        for (std::size_t op = 0; op < cfg.ops_per_process; ++op) {
          if (rng.chance(cfg.scan_prob)) {
            const lin::Time inv = recorder.tick();
            std::vector<lin::Tag> view = snap.scan(pid);
            const lin::Time res = recorder.tick();
            recorder.add_scan(pid, std::move(view), inv, res);
          } else {
            const lin::Tag tag{pid, ++seq};
            const lin::Time inv = recorder.tick();
            snap.update(pid, tag);
            const lin::Time res = recorder.tick();
            recorder.add_update(pid, pid, tag, inv, res);
          }
        }
      });
    }
    go.store(true, std::memory_order_release);
  }  // join
  return recorder.take();
}

/// Runs a multi-writer workload: every process updates uniformly random
/// words. The snapshot must expose update(pid, word, Tag) and scan(pid).
template <typename Snap>
lin::History run_mw_workload(Snap& snap, const WorkloadConfig& cfg) {
  const std::size_t words = snap.words();
  lin::Recorder recorder(words);
  std::atomic<bool> go{false};
  {
    std::vector<std::jthread> threads;
    threads.reserve(cfg.processes);
    for (std::size_t p = 0; p < cfg.processes; ++p) {
      threads.emplace_back([&, pid = static_cast<ProcessId>(p)] {
        Rng rng(cfg.seed * 0x2545F491ULL + pid);
        ChaosYield chaos{Rng(cfg.seed * 37 + pid), cfg.yield_prob};
        ScopedStepHook hook(&ChaosYield::hook, &chaos);
        while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
        std::uint64_t seq = 0;
        for (std::size_t op = 0; op < cfg.ops_per_process; ++op) {
          if (rng.chance(cfg.scan_prob)) {
            const lin::Time inv = recorder.tick();
            std::vector<lin::Tag> view = snap.scan(pid);
            const lin::Time res = recorder.tick();
            recorder.add_scan(pid, std::move(view), inv, res);
          } else {
            const std::size_t k = rng.below(words);
            const lin::Tag tag{pid, ++seq};
            const lin::Time inv = recorder.tick();
            snap.update(pid, k, tag);
            const lin::Time res = recorder.tick();
            recorder.add_update(pid, k, tag, inv, res);
          }
        }
      });
    }
    go.store(true, std::memory_order_release);
  }  // join
  return recorder.take();
}

}  // namespace asnap::testing
