// Self-healing layer and chaos orchestrator suite (PR 3).
//
// Covers the pieces individually — failure detector verdicts, supervised
// auto-recovery, circuit-breaker fail-fast, incarnation epochs — and then
// end-to-end: a seeded chaos run must finish with zero safety violations
// and zero liveness flags, while the sabotaged negative control (a breaker
// allowed to shrink quorums below a majority) MUST be caught by the
// linearizability checker. Everything is seeded; a failure replays.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "abd/abd_register.hpp"
#include "abd/abd_snapshot.hpp"
#include "chaos/orchestrator.hpp"
#include "chaos/schedule.hpp"
#include "lin/history.hpp"
#include "net/failure_detector.hpp"
#include "net/network.hpp"

namespace asnap {
namespace {

using namespace std::chrono_literals;
using lin::Tag;

/// Spin until pred() holds or the budget runs out; true iff it held.
template <typename Pred>
bool eventually(Pred pred, std::chrono::milliseconds budget = 2000ms) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(200us);
  }
  return pred();
}

net::DetectorConfig fast_detector() {
  net::DetectorConfig cfg;
  cfg.heartbeat_interval = 500us;
  cfg.initial_timeout = 4ms;
  // Floor the adaptive timeout at the old fixed threshold: these tests
  // assert point-in-time trust of live nodes, and on a loaded CI machine a
  // tighter-than-4ms adapted threshold makes transient false suspicions
  // (which production tolerates by design) too likely to sample.
  cfg.min_timeout = 4ms;
  return cfg;
}

// --- failure detector --------------------------------------------------------

TEST(FailureDetector, SuspectsCrashedNodeThenRetrustsAfterRecovery) {
  net::Network net(3, /*seed=*/0x51);
  std::atomic<int> suspect_cbs{0};
  std::atomic<int> trust_cbs{0};
  net::FailureDetector fd(net, fast_detector(),
                          [&](net::NodeId, net::NodeId, bool suspected) {
                            (suspected ? suspect_cbs : trust_cbs)
                                .fetch_add(1, std::memory_order_relaxed);
                          });

  // Heartbeats flowing: everybody trusts everybody. Eventual, not
  // point-in-time — ◇P permits (and self-corrects) transient false alarms
  // when a monitor thread is descheduled past the timeout on a loaded box.
  ASSERT_TRUE(eventually([&] {
    return fd.heartbeats_sent() > 10 && !fd.suspected(0, 1) &&
           !fd.suspected(1, 0);
  }));

  net.crash(2);
  ASSERT_TRUE(eventually([&] {
    return fd.suspected(0, 2) && fd.suspected(1, 2);
  })) << "every live observer must eventually suspect the crashed node";
  ASSERT_TRUE(eventually([&] { return !fd.suspected(0, 1); }))
      << "live nodes stay (eventually) trusted";
  EXPECT_GE(suspect_cbs.load(), 2);

  net.recover(2);
  ASSERT_TRUE(eventually([&] {
    return !fd.suspected(0, 2) && !fd.suspected(1, 2);
  })) << "fresh heartbeats must restore trust";
  EXPECT_GE(trust_cbs.load(), 2);
  EXPECT_GE(fd.suspicions(), 2u);
  EXPECT_GE(fd.trusts(), 2u);
}

TEST(FailureDetector, AdaptiveTimeoutClampsToConfiguredFloor) {
  net::Network net(2, /*seed=*/0x54);
  net::DetectorConfig cfg;
  // Cadence 100× below the floor: even a heavily loaded CI machine cannot
  // stretch the observed-gap EWMA past min_timeout, so the clamp engaging
  // is the only steady state.
  cfg.heartbeat_interval = 200us;
  cfg.initial_timeout = 40ms;
  cfg.min_timeout = 20ms;
  cfg.max_timeout = 80ms;
  // Multiplier 1 makes the unclamped adaptive threshold equal the observed
  // cadence EWMA (~200µs), so hitting exactly min_timeout proves the clamp
  // engaged rather than adaptation merely slowing down.
  cfg.timeout_multiplier = 1.0;
  net::FailureDetector fd(net, cfg);

  ASSERT_TRUE(eventually([&] {
    return fd.current_timeout(0, 1) == cfg.min_timeout &&
           fd.current_timeout(1, 0) == cfg.min_timeout;
  })) << "a 200µs heartbeat burst must shrink the threshold but stop at the "
         "floor, observed 0->1: "
      << fd.current_timeout(0, 1).count()
      << "µs 1->0: " << fd.current_timeout(1, 0).count() << "µs";
  // The tightened-but-floored threshold must not falsely suspect live nodes
  // (the floor is what keeps it above one RTT)...
  EXPECT_FALSE(fd.suspected(0, 1));
  EXPECT_FALSE(fd.suspected(1, 0));
  // ...while real silence past the floor is still detected.
  net.crash(1);
  ASSERT_TRUE(eventually([&] { return fd.suspected(0, 1); }));
  EXPECT_GE(fd.current_timeout(0, 1), cfg.min_timeout);
  EXPECT_LE(fd.current_timeout(0, 1), cfg.max_timeout);
}

TEST(FailureDetector, OutOfBandConfigIsNormalizedIntoTheClampBand) {
  net::Network net(2, /*seed=*/0x55);
  net::DetectorConfig cfg;
  cfg.initial_timeout = 40ms;  // above the ceiling
  cfg.min_timeout = 2ms;
  cfg.max_timeout = 10ms;
  net::FailureDetector fd(net, cfg);
  EXPECT_LE(fd.current_timeout(0, 1), cfg.max_timeout);
  EXPECT_GE(fd.current_timeout(0, 1), cfg.min_timeout);
}

// --- supervisor --------------------------------------------------------------

TEST(Supervisor, AutoRecoversCrashedNodeAndRecordsLatency) {
  abd::MessagePassingSnapshot<Tag> snap(3, Tag{}, 0x52);
  typename abd::MessagePassingSnapshot<Tag>::SelfHealingConfig heal;
  heal.detector = fast_detector();
  heal.supervisor.poll_interval = 200us;
  heal.supervisor.restart_delay = 1ms;
  snap.enable_self_healing(heal);

  snap.update(0, Tag{0, 1});
  snap.crash(2);
  ASSERT_NE(snap.supervisor(), nullptr);
  // Poll the supervisor's own counter (not crashed()): the node flips to
  // alive inside recover(), an instant before the counter is bumped.
  ASSERT_TRUE(eventually([&] { return snap.supervisor()->recoveries() >= 1; }))
      << "the supervisor must restart the crashed node on its own";
  EXPECT_FALSE(snap.crashed(2));
  EXPECT_FALSE(snap.supervisor()->recovery_latencies().empty());
  EXPECT_GE(snap.epoch(2), 1u) << "recovery must bump the node's epoch";

  // The healed cluster serves a full workload again, node 2 included.
  snap.update(2, Tag{2, 1});
  const std::vector<Tag> view = snap.scan(1);
  EXPECT_EQ(view[2], (Tag{2, 1}));
}

// --- circuit breaker ---------------------------------------------------------

TEST(Breaker, FailsFastOnceMajorityIsSuspected) {
  abd::AbdConfig config;
  config.initial_rto = 500us;
  config.max_rto = 4ms;
  config.op_deadline = 10s;  // only fail-fast can return quickly
  config.breaker.enabled = true;
  config.breaker.fail_fast_grace = 10ms;
  abd::MessagePassingSnapshot<Tag> snap(3, Tag{}, 0x53, config);
  typename abd::MessagePassingSnapshot<Tag>::SelfHealingConfig heal;
  heal.detector = fast_detector();
  heal.supervisor.restart_delay = 60s;  // park it: the outage must persist
  snap.enable_self_healing(heal);

  snap.update(0, Tag{0, 1});
  snap.crash(1);
  snap.crash(2);
  ASSERT_NE(snap.detector(), nullptr);
  ASSERT_TRUE(eventually([&] {
    return snap.detector()->suspected(0, 1) && snap.detector()->suspected(0, 2);
  }));

  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(snap.try_scan(0).has_value());
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, 5s)
      << "with a majority suspected the round must fail fast, not ride out "
         "the full operation deadline";
  EXPECT_GE(snap.fail_fasts(), 1u);
}

TEST(Breaker, NeverShrinksTheQuorum) {
  // Breaker on, one node down and suspected: operations still demand a true
  // majority (2 of 3), which the survivors supply.
  abd::AbdConfig config;
  config.breaker.enabled = true;
  abd::MessagePassingSnapshot<Tag> snap(3, Tag{}, 0x54, config);
  typename abd::MessagePassingSnapshot<Tag>::SelfHealingConfig heal;
  heal.detector = fast_detector();
  heal.supervisor.restart_delay = 60s;
  snap.enable_self_healing(heal);

  snap.crash(2);
  ASSERT_TRUE(eventually([&] { return snap.detector()->suspected(0, 2); }));
  EXPECT_TRUE(snap.try_update(0, Tag{0, 1}));
  const auto view = snap.try_scan(1);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ((*view)[0], (Tag{0, 1}));
  EXPECT_GT(snap.breaker_skips(), 0u)
      << "rounds must have skipped the suspected replica";
}

// --- incarnation epochs ------------------------------------------------------

TEST(Epochs, EachRecoveryBumpsTheNodeEpoch) {
  abd::AbdCluster<int> cluster(3, 1, 0, 0x55);
  EXPECT_EQ(cluster.epoch(2), 0u);
  cluster.crash(2);
  ASSERT_TRUE(cluster.recover(2));
  EXPECT_EQ(cluster.epoch(2), 1u);
  cluster.crash(2);
  ASSERT_TRUE(cluster.recover(2));
  EXPECT_EQ(cluster.epoch(2), 2u);
  // A no-op recover of the live node must NOT mint a new incarnation.
  ASSERT_TRUE(cluster.recover(2));
  EXPECT_EQ(cluster.epoch(2), 2u);
}

// --- orchestrator ------------------------------------------------------------

TEST(ChaosOrchestrator, RandomScheduleRespectsSafetyRails) {
  chaos::ChaosProfile profile;
  profile.duration = 10s;  // long horizon -> many actions to check
  profile.crash_rate_hz = 4.0;
  profile.partition_rate_hz = 1.0;
  const chaos::Schedule sched = chaos::random_schedule(5, profile, 0x56);
  ASSERT_FALSE(sched.actions.empty());
  std::size_t crashes = 0, recovers = 0, partitions = 0, heals = 0;
  std::vector<bool> down(5, false);
  std::size_t down_count = 0;
  auto prev = sched.actions.front().at;
  for (const chaos::Action& a : sched.actions) {
    EXPECT_GE(a.at.count(), prev.count()) << "actions must be time-sorted";
    EXPECT_LE(a.at, profile.duration);
    prev = a.at;
    switch (a.kind) {
      case chaos::ActionKind::kCrash:
        ++crashes;
        ASSERT_FALSE(down[a.node]) << "node crashed while already down";
        down[a.node] = true;
        ASSERT_LE(++down_count, std::size_t{2})
            << "more than floor((n-1)/2) nodes scheduled down at once";
        break;
      case chaos::ActionKind::kRecover:
        ++recovers;
        if (down[a.node]) {
          down[a.node] = false;
          --down_count;
        }
        break;
      case chaos::ActionKind::kPartition:
        ++partitions;
        ASSERT_EQ(a.groups.size(), 2u);
        EXPECT_LE(std::min(a.groups[0].size(), a.groups[1].size()),
                  std::size_t{2});
        break;
      case chaos::ActionKind::kHeal:
        ++heals;
        break;
      case chaos::ActionKind::kSetFaultPlan:
        break;
    }
  }
  EXPECT_GT(crashes, 0u);
  EXPECT_EQ(crashes, recovers) << "every crash needs a fallback recover";
  EXPECT_EQ(partitions, heals) << "every partition needs a heal";
  // Same (nodes, profile, seed) -> same schedule, action for action.
  const chaos::Schedule again = chaos::random_schedule(5, profile, 0x56);
  ASSERT_EQ(again.actions.size(), sched.actions.size());
  for (std::size_t i = 0; i < sched.actions.size(); ++i) {
    EXPECT_EQ(again.actions[i].at, sched.actions[i].at);
    EXPECT_EQ(static_cast<int>(again.actions[i].kind),
              static_cast<int>(sched.actions[i].kind));
  }
}

TEST(ChaosOrchestrator, SeededMixedRunHasNoViolations) {
  chaos::OrchestratorOptions opt;
  opt.nodes = 5;
  opt.seed = 0x57;
  opt.duration = 1200ms;
  chaos::ChaosProfile profile;
  profile.duration = opt.duration;
  profile.plan.drop_prob = 0.10;
  opt.schedule = chaos::random_schedule(opt.nodes, profile, opt.seed);
  const chaos::RunReport report = chaos::run(opt);

  for (const std::string& v : report.violations) ADD_FAILURE() << v;
  EXPECT_TRUE(report.ok());
  EXPECT_GT(report.updates_ok, 0u);
  EXPECT_GT(report.scans_ok, 0u);
  EXPECT_GT(report.history_ops, 0u);
  if (report.crashes_injected > 0) {
    EXPECT_GE(report.recoveries, 1u)
        << "injected crashes must have been auto-recovered";
  }
}

TEST(ChaosOrchestrator, UnsafeQuorumShrinkIsCaughtByTheCheckers) {
  // Negative control: with unsafe_shrink_quorum the isolated node commits
  // against itself alone — split-brain by construction. If this run ever
  // comes back clean, the invariant monitors have stopped watching.
  chaos::OrchestratorOptions opt;
  opt.nodes = 5;
  opt.seed = 0x58;
  opt.duration = 1200ms;
  opt.abd.breaker.unsafe_shrink_quorum = true;
  chaos::Action part;
  part.kind = chaos::ActionKind::kPartition;
  part.at = 100ms;
  part.groups = {{0}, {1, 2, 3, 4}};
  chaos::Action healer;
  healer.kind = chaos::ActionKind::kHeal;
  healer.at = 1000ms;
  opt.schedule.actions = {part, healer};
  const chaos::RunReport report = chaos::run(opt);
  EXPECT_FALSE(report.ok())
      << "the sabotaged breaker must produce a detected violation";
}

}  // namespace
}  // namespace asnap
