// Sharded-fabric suite (src/shard/): hash routing, the two-level global
// scan, the sealed fallback, and the partial-scan extension of the exact
// checker that makes cross-shard histories checkable at all.
//
// Organization:
//   * checker unit tests over hand-built histories with partial
//     (word_base != 0) scans — including the canonical BAD interleaving a
//     two-level scan must not produce: a global view that observes one
//     shard's later update while missing another shard's earlier, already
//     completed one ("the global scan split a shard's update"). The exact
//     single-writer checker MUST reject it;
//   * history text/file round-trips for partial scans ('P' records), the
//     shape tools/loadgen --check-file spills;
//   * ShardedSnapshotFabric unit tests over A1 (routing determinism, global
//     word indexing, generation monotonicity, confirmed vs sealed global
//     scans, counter aggregation);
//   * randomized churn typed over A1/A2/A3: M clients hash-routed across
//     2 shards mix updates, shard-local scans and cross-shard global scans;
//     the complete recorded history (partial + full views) must pass the
//     exact checker — the acceptance bar that sharding preserved the
//     paper's correctness notion.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/bounded_mw_snapshot.hpp"
#include "core/bounded_sw_snapshot.hpp"
#include "core/mvcc_snapshot.hpp"
#include "core/snapshot_types.hpp"
#include "core/unbounded_sw_snapshot.hpp"
#include "common/rng.hpp"
#include "lin/history.hpp"
#include "lin/history_io.hpp"
#include "lin/snapshot_checker.hpp"
#include "shard/fabric.hpp"
#include "svc/errors.hpp"
#include "svc/service.hpp"

namespace asnap {
namespace {

using lin::Tag;
using shard::FabricConfig;
using shard::ShardedSnapshotFabric;
using svc::ClientId;
using svc::SvcError;

using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// Exact checker on partial-scan histories.
// ---------------------------------------------------------------------------

lin::UpdateOp upd(ProcessId proc, std::size_t word, std::uint64_t seq,
                  lin::Time inv, lin::Time res) {
  return {proc, word, Tag{proc, seq}, inv, res};
}

/// The known-bad interleaving: 4 words = 2 shards x 2. Update of word 0
/// completes at time 2; update of word 2 completes at time 4; a global scan
/// over [5,6] observes the word-2 update but claims word 0 is still initial.
/// No linearization order exists (the scan would have to precede the word-0
/// update it started after), so the checker must reject — this is exactly
/// the anomaly an unconfirmed generation vector would let through.
TEST(ShardChecker, RejectsGlobalScanSplittingAShardsUpdate) {
  lin::History h;
  h.num_words = 4;
  h.updates.push_back(upd(0, 0, 1, 1, 2));
  h.updates.push_back(upd(2, 2, 1, 3, 4));
  h.scans.push_back(
      {/*proc=*/1, {Tag{}, Tag{}, Tag{2, 1}, Tag{}}, /*inv=*/5, /*res=*/6,
       /*word_base=*/0});
  const lin::CheckResult verdict = lin::check_single_writer(h);
  ASSERT_TRUE(verdict.has_value());
}

/// Same ops, but the view reflects both completed updates: accepted.
TEST(ShardChecker, AcceptsGlobalScanObservingBothShards) {
  lin::History h;
  h.num_words = 4;
  h.updates.push_back(upd(0, 0, 1, 1, 2));
  h.updates.push_back(upd(2, 2, 1, 3, 4));
  h.scans.push_back(
      {1, {Tag{0, 1}, Tag{}, Tag{2, 1}, Tag{}}, 5, 6, 0});
  EXPECT_FALSE(lin::check_single_writer(h).has_value());
}

/// A shard-local (partial) scan is constrained only by writes to the words
/// it covers: missing a completed write OUTSIDE its word range is fine...
TEST(ShardChecker, PartialScanUnconstrainedByOtherShardsWords) {
  lin::History h;
  h.num_words = 4;
  h.updates.push_back(upd(0, 0, 1, 1, 2));  // completed before the scan
  // Scan of shard 1's words [2,4) after the word-0 update; view need not
  // (and cannot) mention word 0.
  h.scans.push_back({2, {Tag{}, Tag{}}, 3, 4, /*word_base=*/2});
  EXPECT_FALSE(lin::check_single_writer(h).has_value());
}

/// ...but missing a completed write INSIDE its range is still a violation.
TEST(ShardChecker, PartialScanMustObserveCompletedWritesInItsRange) {
  lin::History h;
  h.num_words = 4;
  h.updates.push_back(upd(2, 2, 1, 1, 2));
  h.scans.push_back({2, {Tag{}, Tag{}}, 3, 4, /*word_base=*/2});  // stale
  EXPECT_TRUE(lin::check_single_writer(h).has_value());
}

/// Partial scans on different shards can coexist with concurrent updates;
/// a mixed partial + full history with consistent views is accepted.
TEST(ShardChecker, MixedPartialAndFullViewsConsistent) {
  lin::History h;
  h.num_words = 4;
  h.updates.push_back(upd(0, 0, 1, 1, 2));
  h.updates.push_back(upd(3, 3, 1, 2, 5));     // concurrent with both scans
  h.scans.push_back({0, {Tag{0, 1}, Tag{}}, 3, 4, 0});       // shard 0
  h.scans.push_back({2, {Tag{}, Tag{3, 1}}, 3, 4, 2});       // shard 1
  h.scans.push_back(
      {1, {Tag{0, 1}, Tag{}, Tag{}, Tag{3, 1}}, 6, 7, 0});   // global
  EXPECT_FALSE(lin::check_single_writer(h).has_value());
}

/// A view that runs past num_words (word_base + width overflow) is malformed
/// input, reported as a violation rather than silently truncated.
TEST(ShardChecker, ViewExceedingWordRangeIsRejected) {
  lin::History h;
  h.num_words = 4;
  h.scans.push_back({0, {Tag{}, Tag{}}, 1, 2, /*word_base=*/3});
  EXPECT_TRUE(lin::check_single_writer(h).has_value());
}

// ---------------------------------------------------------------------------
// Partial scans through the text format and the streaming file writer.
// ---------------------------------------------------------------------------

TEST(ShardHistoryIo, PartialScansRoundTripThroughText) {
  lin::History h;
  h.num_words = 4;
  h.updates.push_back(upd(2, 2, 1, 1, 2));
  h.scans.push_back({2, {Tag{2, 1}, Tag{}}, 3, 4, /*word_base=*/2});
  h.scans.push_back({0, {Tag{}, Tag{}, Tag{2, 1}, Tag{}}, 5, 6, 0});

  const std::string text = lin::dump_history(h);
  std::string error;
  const auto back = lin::parse_history(text, &error);
  ASSERT_TRUE(back.has_value()) << error;
  ASSERT_EQ(back->scans.size(), 2u);
  EXPECT_EQ(back->scans[0].word_base, 2u);
  EXPECT_EQ(back->scans[0].view, h.scans[0].view);
  EXPECT_EQ(back->scans[1].word_base, 0u);
  EXPECT_FALSE(lin::check_single_writer(*back).has_value());
}

TEST(ShardHistoryIo, FileWriterStreamsAndReplaysExactly) {
  const std::string path = "shard_history_spill_test.txt";
  {
    lin::HistoryFileWriter writer(path, 4);
    ASSERT_TRUE(writer.ok());
    writer.add_update(2, 2, Tag{2, 1}, 1, 2);
    writer.add_scan(2, 2, {Tag{2, 1}, Tag{}}, 3, 4);
    writer.add_scan(0, 0, {Tag{}, Tag{}, Tag{2, 1}, Tag{}}, 5, 6);
    EXPECT_TRUE(writer.close());
  }
  std::ifstream in(path);
  std::string error;
  const auto h = lin::read_history(in, &error);
  ASSERT_TRUE(h.has_value()) << error;
  EXPECT_EQ(h->num_words, 4u);
  ASSERT_EQ(h->updates.size(), 1u);
  ASSERT_EQ(h->scans.size(), 2u);
  EXPECT_EQ(h->scans[0].word_base, 2u);
  EXPECT_EQ(h->scans[1].view.size(), 4u);
  EXPECT_FALSE(lin::check_single_writer(*h).has_value());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Fabric unit tests over A1.
// ---------------------------------------------------------------------------

using A1 = core::UnboundedSwSnapshot<Tag>;
using A1Fabric = ShardedSnapshotFabric<A1, Tag>;

A1Fabric make_a1_fabric(std::size_t shards, std::size_t words_per_shard,
                        FabricConfig cfg = {}) {
  std::vector<std::unique_ptr<A1>> backends;
  for (std::size_t s = 0; s < shards; ++s) {
    backends.push_back(std::make_unique<A1>(words_per_shard, Tag{}));
  }
  return A1Fabric(std::move(backends), cfg);
}

TEST(ShardedFabric, RoutingIsDeterministicAndCoversAllShards) {
  auto fabric = make_a1_fabric(4, 2);
  std::set<std::size_t> hit;
  for (ClientId c = 0; c < 64; ++c) {
    const std::size_t sh = fabric.shard_of(c);
    ASSERT_LT(sh, 4u);
    EXPECT_EQ(sh, fabric.shard_of(c));  // stateless and stable
    hit.insert(sh);
  }
  // splitmix64 over 64 ids cannot plausibly leave a shard of 4 empty.
  EXPECT_EQ(hit.size(), 4u);
}

TEST(ShardedFabric, ConnectLeasesGlobalSlotInTheHomeShard) {
  auto fabric = make_a1_fabric(2, 3);
  EXPECT_EQ(fabric.words(), 6u);
  for (ClientId c = 0; c < 4; ++c) {
    auto conn = fabric.connect(c, 1s);
    ASSERT_EQ(conn.error, SvcError::kOk);
    EXPECT_EQ(conn.session.shard(), fabric.shard_of(c));
    const std::size_t base = conn.session.shard() * 3;
    EXPECT_GE(conn.session.slot(), base);
    EXPECT_LT(conn.session.slot(), base + 3);
    EXPECT_EQ(fabric.disconnect(conn.session).error, SvcError::kOk);
  }
}

TEST(ShardedFabric, GlobalScanOfFreshFabricConfirmsFirstTry) {
  auto fabric = make_a1_fabric(3, 2);
  const auto g = fabric.global_scan();
  EXPECT_EQ(g.view.size(), 6u);
  for (const Tag& t : g.view) EXPECT_TRUE(t.is_initial());
  EXPECT_EQ(g.attempts, 1u);
  EXPECT_FALSE(g.sealed);
}

TEST(ShardedFabric, UpdateLandsAtItsGlobalWordAndBumpsGeneration) {
  auto fabric = make_a1_fabric(2, 2);
  auto conn = fabric.connect(7, 1s);
  ASSERT_EQ(conn.error, SvcError::kOk);
  const std::size_t word = conn.session.slot();
  const std::size_t sh = conn.session.shard();
  const std::uint64_t gen_before = fabric.generation(sh);

  auto r = fabric.submit_update(
      conn.session, [](ProcessId p, std::uint64_t q) { return Tag{p, q}; });
  ASSERT_EQ(r.error, SvcError::kOk);
  ASSERT_EQ(fabric.flush(conn.session).error, SvcError::kOk);
  EXPECT_GT(fabric.generation(sh), gen_before);

  const auto g = fabric.global_scan();
  ASSERT_EQ(g.view.size(), 4u);
  // The stored tag carries the GLOBAL word index — unique fabric-wide.
  EXPECT_EQ(g.view[word], (Tag{static_cast<ProcessId>(word), 1}));
  for (std::size_t w = 0; w < g.view.size(); ++w) {
    if (w != word) EXPECT_TRUE(g.view[w].is_initial());
  }
  (void)fabric.disconnect(conn.session);
}

TEST(ShardedFabric, LocalScanCoversExactlyTheHomeShard) {
  auto fabric = make_a1_fabric(2, 3);
  auto conn = fabric.connect(5, 1s);
  ASSERT_EQ(conn.error, SvcError::kOk);
  auto s = fabric.scan(conn.session);
  ASSERT_EQ(s.error, SvcError::kOk);
  EXPECT_EQ(s.view.size(), 3u);
  EXPECT_EQ(s.word_base, conn.session.shard() * 3);
  (void)fabric.disconnect(conn.session);
}

TEST(ShardedFabric, ZeroAttemptBudgetForcesTheSealedPathExactly) {
  FabricConfig cfg;
  cfg.max_global_attempts = 0;  // straight to the quiesce fallback
  auto fabric = make_a1_fabric(2, 2, cfg);
  auto conn = fabric.connect(3, 1s);
  ASSERT_EQ(conn.error, SvcError::kOk);
  (void)fabric.submit_update(
      conn.session, [](ProcessId p, std::uint64_t q) { return Tag{p, q}; });
  ASSERT_EQ(fabric.flush(conn.session).error, SvcError::kOk);
  const std::size_t word = conn.session.slot();

  const auto g = fabric.global_scan();
  EXPECT_TRUE(g.sealed);
  EXPECT_EQ(g.attempts, 0u);
  ASSERT_EQ(g.view.size(), 4u);
  EXPECT_EQ(g.view[word], (Tag{static_cast<ProcessId>(word), 1}));

  const auto fs = fabric.fabric_stats();
  EXPECT_EQ(fs.global_scans, 1u);
  EXPECT_EQ(fs.sealed_scans, 1u);
  (void)fabric.disconnect(conn.session);
}

TEST(ShardedFabric, StatsAggregateAcrossShards) {
  auto fabric = make_a1_fabric(2, 2);
  std::size_t connected = 0;
  for (ClientId c = 0; c < 3; ++c) {
    auto conn = fabric.connect(c, 1s);
    ASSERT_EQ(conn.error, SvcError::kOk);
    ++connected;
    (void)fabric.submit_update(
        conn.session, [](ProcessId p, std::uint64_t q) { return Tag{p, q}; });
    (void)fabric.flush(conn.session);
    (void)fabric.scan(conn.session);
    (void)fabric.disconnect(conn.session);
  }
  const auto st = fabric.stats();
  EXPECT_EQ(st.connects, connected);
  EXPECT_EQ(st.disconnects, connected);
  EXPECT_EQ(st.submits, connected);
  EXPECT_EQ(st.scans, connected);
  const auto ls = fabric.lease_stats();
  EXPECT_EQ(ls.grants, connected);
  EXPECT_EQ(ls.releases, connected);
}

// ---------------------------------------------------------------------------
// Randomized churn across shards, typed over A1/A2/A3; exact check at the
// end over the mixed partial/global history.
// ---------------------------------------------------------------------------

/// A3 behind the single-writer adapter (m == n), as in svc_test.cpp.
class MwAsSw {
 public:
  MwAsSw(std::size_t n, const Tag& init) : snap_(n, n, init), adapter_(snap_) {}
  std::size_t size() const { return adapter_.size(); }
  void update(ProcessId i, Tag v) { adapter_.update(i, v); }
  std::vector<Tag> scan(ProcessId i) { return adapter_.scan(i); }

 private:
  core::BoundedMwSnapshot<Tag> snap_;
  core::SingleWriterAdapter<core::BoundedMwSnapshot<Tag>> adapter_;
};

template <typename S>
struct ShardChurnTest : public ::testing::Test {};

using ShardBackends =
    ::testing::Types<core::UnboundedSwSnapshot<Tag>,
                     core::BoundedSwSnapshot<Tag>, MwAsSw,
                     core::MvccSnapshot<Tag>>;
TYPED_TEST_SUITE(ShardChurnTest, ShardBackends);

struct PendingUpdate {
  std::uint64_t seq;
  Tag tag;
  lin::Time inv;
};

void complete_through(lin::Recorder& rec, std::vector<PendingUpdate>& pending,
                      std::size_t slot, std::uint64_t flushed_through) {
  if (pending.empty() || pending.front().seq > flushed_through) return;
  const lin::Time res = rec.tick();
  std::size_t i = 0;
  for (; i < pending.size() && pending[i].seq <= flushed_through; ++i) {
    rec.add_update(static_cast<ProcessId>(slot), slot, pending[i].tag,
                   pending[i].inv, res);
  }
  pending.erase(pending.begin(), pending.begin() + i);
}

template <typename Backend>
void run_shard_churn(bool cache_scans, std::size_t max_global_attempts,
                     std::uint64_t seed) {
  constexpr std::size_t kShards = 2;
  constexpr std::size_t kSlots = 3;  // per shard
  constexpr std::size_t kClients = 8;
  constexpr int kOpsPerClient = 100;

  FabricConfig cfg;
  cfg.service.cache_scans = cache_scans;
  cfg.service.max_batch = 4;
  cfg.service.lease.ttl = 50ms;
  cfg.max_global_attempts = max_global_attempts;
  std::vector<std::unique_ptr<Backend>> backends;
  for (std::size_t s = 0; s < kShards; ++s) {
    backends.push_back(std::make_unique<Backend>(kSlots, Tag{}));
  }
  ShardedSnapshotFabric<Backend, Tag> fabric(std::move(backends), cfg);
  lin::Recorder recorder(fabric.words());
  std::atomic<bool> go{false};

  {
    std::vector<std::jthread> threads;
    threads.reserve(kClients);
    for (std::size_t c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        Rng rng(seed * 0x9E3779B9ULL + c);
        while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
        typename ShardedSnapshotFabric<Backend, Tag>::Session sess;
        std::vector<PendingUpdate> pending;
        auto connect = [&]() -> bool {
          for (int attempt = 0; attempt < 200; ++attempt) {
            auto conn = fabric.connect(static_cast<ClientId>(c), 500ms);
            if (conn.error == SvcError::kOk) {
              sess = conn.session;
              return true;
            }
          }
          return false;
        };
        ASSERT_TRUE(connect()) << "client " << c << " never got a lease";
        for (int op = 0; op < kOpsPerClient; ++op) {
          if (!sess.connected() && !connect()) break;
          const std::size_t slot = sess.slot();
          const double dice = rng.uniform01();
          if (dice < 0.05) {  // churn: flush, give the lease back, re-join
            const auto d = fabric.disconnect(sess);
            ASSERT_EQ(d.error, SvcError::kOk);
            complete_through(recorder, pending, slot, d.flushed_through);
            ASSERT_TRUE(pending.empty());
            continue;
          }
          if (dice < 0.20) {  // cross-shard global scan (lease-free)
            const lin::Time inv = recorder.tick();
            auto g = fabric.global_scan();
            const lin::Time res = recorder.tick();
            ASSERT_EQ(g.view.size(), fabric.words());
            recorder.add_scan(static_cast<ProcessId>(slot), 0,
                              std::move(g.view), inv, res);
          } else if (dice < 0.45) {  // shard-local scan (partial view)
            const lin::Time inv = recorder.tick();
            auto s = fabric.scan(sess);
            if (s.error == SvcError::kLeaseExpired) {
              complete_through(recorder, pending, slot, s.flushed_through);
              ASSERT_TRUE(pending.empty());
              sess = {};
              continue;
            }
            ASSERT_EQ(s.error, SvcError::kOk);
            const lin::Time res = recorder.tick();
            complete_through(recorder, pending, slot, s.flushed_through);
            recorder.add_scan(static_cast<ProcessId>(slot), s.word_base,
                              std::move(s.view), inv, res);
          } else {  // update (pipelined; acked at a covering flush)
            const lin::Time inv = recorder.tick();
            const auto r = fabric.submit_update(
                sess, [](ProcessId p, std::uint64_t q) { return Tag{p, q}; });
            if (r.error == SvcError::kLeaseExpired) {
              complete_through(recorder, pending, slot, r.flushed_through);
              ASSERT_TRUE(pending.empty());
              sess = {};
              continue;
            }
            ASSERT_EQ(r.error, SvcError::kOk);
            pending.push_back(
                {r.seq, Tag{static_cast<ProcessId>(slot), r.seq}, inv});
            complete_through(recorder, pending, slot, r.flushed_through);
          }
          if (rng.chance(0.01)) std::this_thread::yield();
        }
        if (sess.connected()) {
          const std::size_t slot = sess.slot();
          const auto d = fabric.disconnect(sess);
          complete_through(recorder, pending, slot, d.flushed_through);
        }
        ASSERT_TRUE(pending.empty());
      });
    }
    go.store(true, std::memory_order_release);
  }  // join

  lin::History history = recorder.take();
  EXPECT_GT(history.updates.size(), 0u);
  EXPECT_GT(history.scans.size(), 0u);
  const lin::CheckResult violation = lin::check_single_writer(history);
  EXPECT_FALSE(violation.has_value()) << *violation;

  const auto fs = fabric.fabric_stats();
  EXPECT_GT(fs.global_scans, 0u);
}

TYPED_TEST(ShardChurnTest, ChurningClientsStayLinearizableCacheOn) {
  run_shard_churn<TypeParam>(/*cache_scans=*/true, /*max_global_attempts=*/8,
                             /*seed=*/42);
}

TYPED_TEST(ShardChurnTest, ChurningClientsStayLinearizableCacheOff) {
  run_shard_churn<TypeParam>(/*cache_scans=*/false, /*max_global_attempts=*/8,
                             /*seed=*/1337);
}

/// Every global scan takes the sealed path: the quiesce fallback itself
/// must also compose linearizably under churn.
TYPED_TEST(ShardChurnTest, SealedFallbackStaysLinearizableUnderChurn) {
  run_shard_churn<TypeParam>(/*cache_scans=*/true, /*max_global_attempts=*/0,
                             /*seed=*/7);
}

}  // namespace
}  // namespace asnap
