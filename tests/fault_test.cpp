// Fault injection: the defining property of wait-freedom is that a process
// may fail-stop AT ANY STEP — mid-update, with half its protocol state
// published — and every other process still completes every operation
// within its own step bound. We realize fail-stop deterministically with
// the turnstile scheduler: a "crashed" process is simply never scheduled
// again until everyone else has finished (StarvePolicy with period 0
// schedules the victim only when it is the sole enabled process).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/snapshot.hpp"
#include "lin/history.hpp"
#include "lin/snapshot_checker.hpp"
#include "sched/policies.hpp"
#include "sched/scheduler.hpp"

namespace asnap {
namespace {

using lin::Tag;

// A policy that schedules the victim normally for its first `steps_alive`
// steps, then never again while anyone else is enabled.
class CrashAfterPolicy final : public sched::Policy {
 public:
  CrashAfterPolicy(std::size_t victim, std::uint64_t steps_alive)
      : victim_(victim), steps_alive_(steps_alive) {}

  std::size_t choose(const std::vector<std::size_t>& enabled,
                     std::size_t current, std::uint64_t step) override {
    (void)step;
    const bool victim_enabled =
        std::binary_search(enabled.begin(), enabled.end(), victim_);
    if (enabled.size() == 1) return enabled.front();
    if (victim_enabled && victim_steps_ < steps_alive_) {
      // Interleave: victim and others alternate until the crash point.
      if (current != victim_) {
        ++victim_steps_;
        return victim_;
      }
    }
    // Round-robin over the others.
    std::vector<std::size_t> others;
    for (std::size_t id : enabled) {
      if (id != victim_) others.push_back(id);
    }
    if (others.empty()) return enabled.front();
    if (current == sched::Policy::kNone || current == victim_) {
      return others.front();
    }
    const auto it = std::upper_bound(others.begin(), others.end(), current);
    return it != others.end() ? *it : others.front();
  }

 private:
  std::size_t victim_;
  std::uint64_t steps_alive_;
  std::uint64_t victim_steps_ = 0;
};

// Crash an updater after each possible number of steps k (sweeping the
// crash point across the whole update, including mid-handshake and
// mid-embedded-scan). The survivors must complete all their operations
// within the wait-free bound, and the resulting history (crashed op
// excluded if it never linearized, included if it did) must be
// linearizable. We handle the "maybe took effect" update by recording it
// with an open-ended response time only if some scan observed it.
template <typename Snap>
void run_crash_sweep(std::size_t n, std::uint64_t crash_at) {
  Snap snap(n, Tag{});
  lin::Recorder recorder(n);

  std::vector<std::function<void()>> bodies;
  // Victim: process n-1 attempts one update and is crashed mid-flight.
  const auto victim = static_cast<ProcessId>(n - 1);
  const lin::Tag victim_tag{victim, 1};
  bodies.resize(n);
  bodies[victim] = [&snap, victim, victim_tag] {
    snap.update(victim, victim_tag);
  };
  // Survivors: interleaved updates and scans, recorded.
  for (std::size_t p = 0; p + 1 < n; ++p) {
    bodies[p] = [&, pid = static_cast<ProcessId>(p)] {
      std::uint64_t seq = 0;
      for (int op = 0; op < 6; ++op) {
        if (op % 2 == 0) {
          const lin::Time inv = recorder.tick();
          snap.update(pid, Tag{pid, ++seq});
          const lin::Time res = recorder.tick();
          recorder.add_update(pid, pid, Tag{pid, seq}, inv, res);
        } else {
          const lin::Time inv = recorder.tick();
          std::vector<Tag> view = snap.scan(pid);
          const lin::Time res = recorder.tick();
          recorder.add_scan(pid, std::move(view), inv, res);
        }
      }
    };
  }

  CrashAfterPolicy policy(victim, crash_at);
  sched::SimScheduler scheduler(policy);
  scheduler.run(std::move(bodies));

  lin::History history = recorder.take();
  // If any survivor observed the victim's value, the crashed update
  // linearized: add it with a maximal interval (it was concurrent with
  // everything after its invocation).
  bool observed = false;
  for (const lin::ScanOp& s : history.scans) {
    if (s.view[victim] == victim_tag) observed = true;
  }
  if (observed) {
    history.updates.push_back(
        lin::UpdateOp{victim, victim, victim_tag, 0, ~lin::Time{0} - 1});
  }
  const auto violation = lin::check_single_writer(history);
  ASSERT_FALSE(violation.has_value())
      << "crash_at=" << crash_at << ": " << *violation;
}

TEST(FaultInjection, UnboundedSurvivesUpdaterCrashAtEveryStep) {
  constexpr std::size_t kN = 3;
  // An unbounded update at n=3 costs 2n+1 = 7 solo steps; sweep beyond it
  // (interference can stretch it, and crash-after-completion is legal too).
  for (std::uint64_t k = 0; k <= 16; ++k) {
    run_crash_sweep<core::UnboundedSwSnapshot<Tag>>(kN, k);
  }
}

TEST(FaultInjection, BoundedSurvivesUpdaterCrashAtEveryStep) {
  constexpr std::size_t kN = 3;
  // A bounded update at n=3 costs 5n+1 = 16 solo steps; sweep past it.
  for (std::uint64_t k = 0; k <= 24; ++k) {
    run_crash_sweep<core::BoundedSwSnapshot<Tag>>(kN, k);
  }
}

// The nastiest case for Figure 3: the victim crashes between its handshake
// collection (line 0) and its register write (line 2) — its f-bits are
// computed but never published, repeatedly "half-finished". Survivor scans
// must still terminate within the pigeonhole bound forever after.
TEST(FaultInjection, HalfFinishedHandshakeDoesNotWedgeScanners) {
  constexpr std::size_t kN = 4;
  core::BoundedSwSnapshot<Tag> snap(kN, Tag{});
  std::vector<std::function<void()>> bodies;
  lin::Recorder recorder(kN);

  bodies.push_back([&] { snap.update(3, Tag{3, 1}); });  // victim: pid 3
  for (std::size_t p = 0; p < 3; ++p) {
    bodies.push_back([&, pid = static_cast<ProcessId>(p)] {
      for (int i = 0; i < 10; ++i) {
        const lin::Time inv = recorder.tick();
        std::vector<Tag> view = snap.scan(pid);
        const lin::Time res = recorder.tick();
        recorder.add_scan(pid, std::move(view), inv, res);
      }
    });
  }
  // Crash after 5 steps: inside the handshake/embedded-scan region.
  CrashAfterPolicy policy(/*victim index in bodies=*/0, 5);
  sched::SimScheduler scheduler(policy);
  scheduler.run(std::move(bodies));

  for (ProcessId p = 0; p < 3; ++p) {
    // bodies[1..3] map to snapshot pids 0..2
    EXPECT_LE(snap.stats(p).max_double_collects, kN + 1);
  }
}

}  // namespace
}  // namespace asnap
