// Tests for the applications built on the snapshot library: wait-free
// counter, adopt-commit, randomized consensus, and the checkpointable store.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "apps/adopt_commit.hpp"
#include "apps/checkpoint_store.hpp"
#include "apps/consensus.hpp"
#include "apps/counter.hpp"
#include "common/instrumentation.hpp"
#include "common/rng.hpp"
#include "harness.hpp"

namespace asnap::apps {
namespace {

// --- WaitFreeCounter ---------------------------------------------------------

TEST(Counter, SequentialAddsSum) {
  WaitFreeCounter counter(3);
  counter.add(0, 5);
  counter.add(1, -2);
  counter.add(0, 1);
  EXPECT_EQ(counter.read(2), 4);
}

TEST(Counter, StartsAtZero) {
  WaitFreeCounter counter(2);
  EXPECT_EQ(counter.read(0), 0);
}

TEST(Counter, ConcurrentIncrementsAreAllCounted) {
  constexpr std::size_t kN = 4;
  constexpr int kPerThread = 500;
  WaitFreeCounter counter(kN);
  {
    std::vector<std::jthread> threads;
    for (std::size_t p = 0; p < kN; ++p) {
      threads.emplace_back([&, pid = static_cast<ProcessId>(p)] {
        testing::ChaosYield chaos{Rng(pid + 1), 0.1};
        ScopedStepHook hook(&testing::ChaosYield::hook, &chaos);
        for (int i = 0; i < kPerThread; ++i) counter.add(pid, 1);
      });
    }
  }
  EXPECT_EQ(counter.read(0), kN * kPerThread);
}

TEST(Counter, ReadsAreMonotoneForIncrementOnlyWorkload) {
  constexpr std::size_t kN = 3;
  WaitFreeCounter counter(kN);
  std::atomic<bool> stop{false};
  std::vector<std::jthread> adders;
  for (std::size_t p = 1; p < kN; ++p) {
    adders.emplace_back([&, pid = static_cast<ProcessId>(p)] {
      testing::ChaosYield chaos{Rng(pid + 7), 0.1};
      ScopedStepHook hook(&testing::ChaosYield::hook, &chaos);
      while (!stop.load(std::memory_order_acquire)) counter.add(pid, 1);
    });
  }
  std::int64_t last = 0;
  for (int i = 0; i < 200; ++i) {
    const std::int64_t now = counter.read(0);
    ASSERT_GE(now, last) << "linearizable counter went backwards";
    last = now;
  }
  stop.store(true, std::memory_order_release);
}

// --- AdoptCommit --------------------------------------------------------------

TEST(AdoptCommit, SoloProposerCommits) {
  AdoptCommit ac(3);
  const auto outcome = ac.propose(1, 42);
  EXPECT_EQ(outcome.verdict, AdoptCommit::Verdict::kCommit);
  EXPECT_EQ(outcome.value, 42u);
}

TEST(AdoptCommit, UnanimousProposersAllCommit) {
  AdoptCommit ac(3);
  for (ProcessId p = 0; p < 3; ++p) {
    const auto outcome = ac.propose(p, 7);
    EXPECT_EQ(outcome.verdict, AdoptCommit::Verdict::kCommit) << "P" << p;
    EXPECT_EQ(outcome.value, 7u);
  }
}

TEST(AdoptCommit, SequentialConflictAdoptsTheCommittedValue) {
  AdoptCommit ac(2);
  const auto first = ac.propose(0, 1);
  EXPECT_EQ(first.verdict, AdoptCommit::Verdict::kCommit);
  const auto second = ac.propose(1, 2);
  EXPECT_NE(second.verdict, AdoptCommit::Verdict::kCommit);
  EXPECT_EQ(second.value, 1u) << "must adopt the committed value";
}

// Concurrent safety property: if anyone commits v, every outcome's value is
// v. Run many randomized concurrent rounds and check the invariant.
TEST(AdoptCommit, CommitImpliesEveryoneGetsThatValue) {
  constexpr std::size_t kN = 4;
  for (std::uint64_t trial = 0; trial < 200; ++trial) {
    AdoptCommit ac(kN);
    std::vector<AdoptCommit::Outcome> outcomes(kN);
    {
      std::vector<std::jthread> threads;
      for (std::size_t p = 0; p < kN; ++p) {
        threads.emplace_back([&, pid = static_cast<ProcessId>(p)] {
          testing::ChaosYield chaos{Rng(trial * 31 + pid), 0.25};
          ScopedStepHook hook(&testing::ChaosYield::hook, &chaos);
          Rng rng(trial * 17 + pid);
          outcomes[pid] = ac.propose(pid, rng.below(2));
        });
      }
    }
    std::set<std::uint64_t> committed;
    for (const auto& o : outcomes) {
      if (o.verdict == AdoptCommit::Verdict::kCommit) committed.insert(o.value);
    }
    ASSERT_LE(committed.size(), 1u) << "two different values committed";
    if (!committed.empty()) {
      for (const auto& o : outcomes) {
        ASSERT_EQ(o.value, *committed.begin())
            << "a process missed the committed value (trial " << trial << ")";
      }
    }
  }
}

// --- SnapshotConsensus ---------------------------------------------------------

TEST(Consensus, SoloDecidesOwnValue) {
  SnapshotConsensus consensus(3);
  Rng rng(1);
  const auto result = consensus.decide(0, true, rng);
  EXPECT_TRUE(result.value);
  EXPECT_EQ(result.rounds_used, 1u);
}

TEST(Consensus, AgreementAndValidityUnderConcurrency) {
  constexpr std::size_t kN = 4;
  for (std::uint64_t trial = 0; trial < 60; ++trial) {
    SnapshotConsensus consensus(kN);
    std::vector<SnapshotConsensus::Result> results(kN);
    std::vector<bool> proposals(kN);
    {
      std::vector<std::jthread> threads;
      for (std::size_t p = 0; p < kN; ++p) {
        proposals[p] = (trial + p) % 2 == 0;
        threads.emplace_back([&, pid = static_cast<ProcessId>(p)] {
          testing::ChaosYield chaos{Rng(trial * 101 + pid), 0.2};
          ScopedStepHook hook(&testing::ChaosYield::hook, &chaos);
          Rng rng(trial * 1009 + pid);
          results[pid] = consensus.decide(pid, proposals[pid], rng);
        });
      }
    }
    // Agreement.
    for (std::size_t p = 1; p < kN; ++p) {
      ASSERT_EQ(results[p].value, results[0].value) << "trial " << trial;
    }
    // Validity: the decision is someone's proposal.
    bool proposed = false;
    for (std::size_t p = 0; p < kN; ++p) {
      proposed |= (proposals[p] == results[0].value);
    }
    ASSERT_TRUE(proposed) << "decided a value nobody proposed";
  }
}

TEST(Consensus, UnanimousProposalDecidesInOneRound) {
  constexpr std::size_t kN = 3;
  SnapshotConsensus consensus(kN);
  std::vector<SnapshotConsensus::Result> results(kN);
  {
    std::vector<std::jthread> threads;
    for (std::size_t p = 0; p < kN; ++p) {
      threads.emplace_back([&, pid = static_cast<ProcessId>(p)] {
        Rng rng(pid);
        results[pid] = consensus.decide(pid, true, rng);
      });
    }
  }
  for (const auto& r : results) {
    EXPECT_TRUE(r.value);
    // Validity implies true; unanimity should commit within two rounds.
    EXPECT_LE(r.rounds_used, 2u);
  }
}

// --- CheckpointStore -----------------------------------------------------------

TEST(CheckpointStore, PutThenGet) {
  CheckpointStore<int> store(2, 4, 0);
  store.put(0, 2, 99);
  const auto cell = store.get(1, 2);
  EXPECT_EQ(cell.value, 99);
  EXPECT_EQ(cell.version, 1u);
  EXPECT_EQ(cell.last_writer, 0u);
}

TEST(CheckpointStore, CheckpointIsConsistent) {
  CheckpointStore<int> store(2, 3, 0);
  store.put(0, 0, 1);
  store.put(0, 1, 2);
  const auto cp = store.checkpoint(1);
  EXPECT_EQ(cp.cells[0].value, 1);
  EXPECT_EQ(cp.cells[1].value, 2);
  EXPECT_EQ(cp.cells[2].value, 0);
}

TEST(CheckpointStore, DiffFindsChangedCells) {
  CheckpointStore<int> store(2, 4, 0);
  const auto base = store.checkpoint(0);
  store.put(0, 1, 5);
  store.put(1, 3, 6);
  const auto later = store.checkpoint(0);
  EXPECT_EQ(later.changed_since(base), (std::vector<std::size_t>{1, 3}));
}

// Writers keep writing "balanced" pairs (cell 0 and cell 1 always updated to
// equal values, one after the other, by the same writer under a per-writer
// invariant); a checkpoint may observe a half-done pair (that's allowed —
// the two puts are separate operations), but it must NEVER observe a value
// that was never written, and per-cell versions must be plausible.
TEST(CheckpointStore, ConcurrentCheckpointsSeeOnlyRealStates) {
  constexpr std::size_t kN = 3;
  constexpr std::size_t kCells = 3;
  CheckpointStore<std::uint64_t> store(kN, kCells, 0);
  std::atomic<bool> stop{false};
  std::vector<std::jthread> writers;
  for (std::size_t p = 1; p < kN; ++p) {
    writers.emplace_back([&, pid = static_cast<ProcessId>(p)] {
      testing::ChaosYield chaos{Rng(pid * 3 + 1), 0.15};
      ScopedStepHook hook(&testing::ChaosYield::hook, &chaos);
      std::uint64_t v = 0;
      while (!stop.load(std::memory_order_acquire)) {
        ++v;
        store.put(pid, v % kCells, pid * 1000000 + v);
      }
    });
  }
  CheckpointStore<std::uint64_t>::Checkpoint prev = store.checkpoint(0);
  for (int i = 0; i < 100; ++i) {
    const auto cp = store.checkpoint(0);
    for (std::size_t k = 0; k < kCells; ++k) {
      const auto& cell = cp.cells[k];
      if (cell.version == 0) {
        EXPECT_EQ(cell.value, 0u);
        continue;
      }
      // The value encodes its writer: it must match last_writer.
      EXPECT_EQ(cell.value / 1000000, cell.last_writer);
    }
    prev = cp;
  }
  stop.store(true, std::memory_order_release);
}

}  // namespace
}  // namespace asnap::apps
