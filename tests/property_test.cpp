// Parameterized property sweeps (TEST_P / INSTANTIATE_TEST_SUITE_P):
// the same invariant battery runs over every algorithm x process count x
// workload mix, on real threads with randomized per-step yields, AND under
// the deterministic scheduler with seeded random schedules.
//
// Properties checked on every run:
//   P1  the recorded history is linearizable (exact single-writer checker);
//   P2  pigeonhole: no scan used more than n+1 (resp. 2n+1) double collects;
//   P3  per-process scan sequences are componentwise monotone;
//   P4  every scanned tag was written by the right process with a plausible
//       sequence number (well-formedness, also covered by P1's checker).
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "core/snapshot.hpp"
#include "harness.hpp"
#include "lin/snapshot_checker.hpp"
#include "reg/mwmr_register.hpp"
#include "sched/policies.hpp"
#include "sched/scheduler.hpp"

namespace asnap {
namespace {

using lin::Tag;

enum class Algo { kUnbounded, kBounded, kMultiWriter };

std::string algo_name(Algo a) {
  switch (a) {
    case Algo::kUnbounded:
      return "Fig2Unbounded";
    case Algo::kBounded:
      return "Fig3Bounded";
    case Algo::kMultiWriter:
      return "Fig4MultiWriter";
  }
  return "?";
}

/// Uniform facade over the three algorithms in single-writer usage, plus
/// access to stats and the per-scan bound.
class AnySnapshot {
 public:
  AnySnapshot(Algo algo, std::size_t n) : algo_(algo), n_(n) {
    switch (algo) {
      case Algo::kUnbounded:
        unbounded_ = std::make_unique<core::UnboundedSwSnapshot<Tag>>(n, Tag{});
        break;
      case Algo::kBounded:
        bounded_ = std::make_unique<core::BoundedSwSnapshot<Tag>>(n, Tag{});
        break;
      case Algo::kMultiWriter:
        multi_ = std::make_unique<core::BoundedMwSnapshot<Tag>>(n, n, Tag{});
        break;
    }
  }

  std::size_t size() const { return n_; }

  void update(ProcessId i, Tag v) {
    switch (algo_) {
      case Algo::kUnbounded:
        unbounded_->update(i, v);
        break;
      case Algo::kBounded:
        bounded_->update(i, v);
        break;
      case Algo::kMultiWriter:
        multi_->update(i, i, v);
        break;
    }
  }

  std::vector<Tag> scan(ProcessId i) {
    switch (algo_) {
      case Algo::kUnbounded:
        return unbounded_->scan(i);
      case Algo::kBounded:
        return bounded_->scan(i);
      case Algo::kMultiWriter:
        return multi_->scan(i);
    }
    return {};
  }

  const core::ScanStats& stats(ProcessId i) const {
    switch (algo_) {
      case Algo::kUnbounded:
        return unbounded_->stats(i);
      case Algo::kBounded:
        return bounded_->stats(i);
      case Algo::kMultiWriter:
      default:
        return multi_->stats(i);
    }
  }

  std::uint64_t double_collect_bound() const {
    return algo_ == Algo::kMultiWriter ? 2 * n_ + 1 : n_ + 1;
  }

 private:
  Algo algo_;
  std::size_t n_;
  std::unique_ptr<core::UnboundedSwSnapshot<Tag>> unbounded_;
  std::unique_ptr<core::BoundedSwSnapshot<Tag>> bounded_;
  std::unique_ptr<core::BoundedMwSnapshot<Tag>> multi_;
};

void check_properties(const AnySnapshot& snap, const lin::History& history,
                      const std::string& label) {
  // P1: linearizability.
  const auto violation = lin::check_single_writer(history);
  ASSERT_FALSE(violation.has_value()) << label << ": " << *violation;

  // P2: pigeonhole bound.
  for (ProcessId p = 0; p < snap.size(); ++p) {
    EXPECT_LE(snap.stats(p).max_double_collects, snap.double_collect_bound())
        << label << " P" << p;
  }

  // P3: per-process scan monotonicity (scans by one process are sequential;
  // order them by invocation).
  std::vector<std::vector<const lin::ScanOp*>> per_proc(snap.size());
  for (const lin::ScanOp& s : history.scans) {
    per_proc[s.proc].push_back(&s);
  }
  for (auto& scans : per_proc) {
    std::sort(scans.begin(), scans.end(),
              [](const lin::ScanOp* a, const lin::ScanOp* b) {
                return a->inv < b->inv;
              });
    for (std::size_t k = 1; k < scans.size(); ++k) {
      for (std::size_t j = 0; j < snap.size(); ++j) {
        EXPECT_LE(scans[k - 1]->view[j].seq, scans[k]->view[j].seq)
            << label << ": scan views went backwards";
      }
    }
  }
}

// --- Real-thread sweep --------------------------------------------------------

using ThreadParam = std::tuple<Algo, std::size_t /*n*/, int /*scan %*/>;

class ThreadSweep : public ::testing::TestWithParam<ThreadParam> {};

TEST_P(ThreadSweep, PropertiesHoldUnderRealThreads) {
  const auto [algo, n, scan_pct] = GetParam();
  AnySnapshot snap(algo, n);
  testing::WorkloadConfig cfg;
  cfg.processes = n;
  cfg.ops_per_process = 150;
  cfg.scan_prob = scan_pct / 100.0;
  cfg.seed = 1000 + static_cast<std::uint64_t>(scan_pct) * 13 + n;
  cfg.yield_prob = 0.25;
  const lin::History history = testing::run_sw_workload(snap, cfg);
  check_properties(snap, history,
                   algo_name(algo) + "/n=" + std::to_string(n) + "/scan%=" +
                       std::to_string(scan_pct));
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, ThreadSweep,
    ::testing::Combine(::testing::Values(Algo::kUnbounded, Algo::kBounded,
                                         Algo::kMultiWriter),
                       ::testing::Values<std::size_t>(2, 3, 5, 8),
                       ::testing::Values(10, 50, 90)),
    [](const ::testing::TestParamInfo<ThreadParam>& info) {
      return algo_name(std::get<0>(info.param)) + "_n" +
             std::to_string(std::get<1>(info.param)) + "_scan" +
             std::to_string(std::get<2>(info.param));
    });

// --- Deterministic random-schedule sweep ---------------------------------------

using SimParam = std::tuple<Algo, std::size_t /*n*/, std::uint64_t /*seed*/>;

class SimSweep : public ::testing::TestWithParam<SimParam> {};

// Runs a fixed program (every process does interleaved updates and scans)
// under a seeded random scheduler; records and checks the history. Every
// seed is a different — but reproducible — interleaving of atomic steps.
TEST_P(SimSweep, PropertiesHoldUnderSeededSchedules) {
  const auto [algo, n, seed] = GetParam();
  AnySnapshot snap(algo, n);
  lin::Recorder recorder(n);

  std::vector<std::function<void()>> bodies;
  for (std::size_t p = 0; p < n; ++p) {
    bodies.push_back([&, pid = static_cast<ProcessId>(p)] {
      std::uint64_t seq = 0;
      for (int op = 0; op < 6; ++op) {
        if (op % 2 == static_cast<int>(pid) % 2) {
          const lin::Time inv = recorder.tick();
          snap.update(pid, Tag{pid, ++seq});
          const lin::Time res = recorder.tick();
          recorder.add_update(pid, pid, Tag{pid, seq}, inv, res);
        } else {
          const lin::Time inv = recorder.tick();
          std::vector<Tag> view = snap.scan(pid);
          const lin::Time res = recorder.tick();
          recorder.add_scan(pid, std::move(view), inv, res);
        }
      }
    });
  }
  sched::RandomPolicy policy(seed);
  sched::SimScheduler scheduler(policy);
  scheduler.run(std::move(bodies));

  const lin::History history = recorder.take();
  check_properties(snap, history,
                   algo_name(algo) + "/sim seed=" + std::to_string(seed));
}

INSTANTIATE_TEST_SUITE_P(
    SeededSchedules, SimSweep,
    ::testing::Combine(::testing::Values(Algo::kUnbounded, Algo::kBounded,
                                         Algo::kMultiWriter),
                       ::testing::Values<std::size_t>(2, 3, 4),
                       ::testing::Values<std::uint64_t>(1, 2, 3, 4, 5, 6, 7,
                                                        8)),
    [](const ::testing::TestParamInfo<SimParam>& info) {
      return algo_name(std::get<0>(info.param)) + "_n" +
             std::to_string(std::get<1>(info.param)) + "_seed" +
             std::to_string(std::get<2>(info.param));
    });

// --- Genuinely multi-writer sweeps (m independent of n) -----------------------

enum class MwAlgo { kDirect, kCompound, kLayered };

std::string mw_algo_name(MwAlgo a) {
  switch (a) {
    case MwAlgo::kDirect:
      return "Direct";
    case MwAlgo::kCompound:
      return "CompoundVA";
    case MwAlgo::kLayered:
      return "Layered";
  }
  return "?";
}

using MwParam =
    std::tuple<MwAlgo, std::size_t /*n*/, std::size_t /*m*/, int /*scan %*/>;

class MwWordSweep : public ::testing::TestWithParam<MwParam> {};

template <typename Snap>
void run_mw_property(Snap& snap, std::size_t n, int scan_pct,
                     std::uint64_t seed, const std::string& label) {
  testing::WorkloadConfig cfg;
  cfg.processes = n;
  cfg.ops_per_process = 100;
  cfg.scan_prob = scan_pct / 100.0;
  cfg.seed = seed;
  cfg.yield_prob = 0.25;
  const lin::History history = testing::run_mw_workload(snap, cfg);
  const auto violation = lin::check_multi_writer_forced(history);
  ASSERT_FALSE(violation.has_value()) << label << ": " << *violation;
  // Per-writer-per-word view monotonicity: across any one process's
  // sequential scans, the tag seen for (writer w on word k) never regresses
  // to an older write BY THE SAME WRITER to the same word.
  std::vector<std::vector<const lin::ScanOp*>> per_proc(n);
  for (const lin::ScanOp& s : history.scans) per_proc[s.proc].push_back(&s);
  for (auto& scans : per_proc) {
    std::sort(scans.begin(), scans.end(),
              [](const lin::ScanOp* a, const lin::ScanOp* b) {
                return a->inv < b->inv;
              });
    for (std::size_t x = 1; x < scans.size(); ++x) {
      for (std::size_t k = 0; k < history.num_words; ++k) {
        const lin::Tag& prev = scans[x - 1]->view[k];
        const lin::Tag& cur = scans[x]->view[k];
        if (!prev.is_initial() && cur.writer == prev.writer) {
          EXPECT_GE(cur.seq, prev.seq) << label << ": same-writer regression";
        }
      }
    }
  }
}

TEST_P(MwWordSweep, ForcedEdgePropertiesHold) {
  const auto [algo, n, m, scan_pct] = GetParam();
  const std::uint64_t seed = 9000 + n * 31 + m * 7 + scan_pct;
  const std::string label = mw_algo_name(algo) + "/n=" + std::to_string(n) +
                            "/m=" + std::to_string(m);
  switch (algo) {
    case MwAlgo::kDirect: {
      core::BoundedMwSnapshot<Tag, reg::DirectMwmrRegister> snap(n, m, Tag{});
      run_mw_property(snap, n, scan_pct, seed, label);
      break;
    }
    case MwAlgo::kCompound: {
      core::BoundedMwSnapshot<Tag, reg::VitanyiAwerbuchMwmr> snap(n, m,
                                                                  Tag{});
      run_mw_property(snap, n, scan_pct, seed, label);
      break;
    }
    case MwAlgo::kLayered: {
      core::LayeredMwSnapshot<Tag> snap(n, m, Tag{});
      run_mw_property(snap, n, scan_pct, seed, label);
      break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    WordShapes, MwWordSweep,
    ::testing::Combine(::testing::Values(MwAlgo::kDirect, MwAlgo::kCompound,
                                         MwAlgo::kLayered),
                       ::testing::Values<std::size_t>(2, 4),
                       ::testing::Values<std::size_t>(1, 3, 8),
                       ::testing::Values(30, 70)),
    [](const ::testing::TestParamInfo<MwParam>& info) {
      return mw_algo_name(std::get<0>(info.param)) + "_n" +
             std::to_string(std::get<1>(info.param)) + "_m" +
             std::to_string(std::get<2>(info.param)) + "_scan" +
             std::to_string(std::get<3>(info.param));
    });

}  // namespace
}  // namespace asnap
