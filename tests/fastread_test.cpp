// One-round fast-read suite (experiment E16): the Oh-RAM!-style read path
// that skips the write-back round when the query quorum's stability
// evidence proves the adopted value is already stored at a majority.
//
// Three layers of teeth:
//   * positive: a confirmed (or unanimously stored) value reads in ONE
//     protocol round, and the round/message accounting says so;
//   * boundary: a deterministic partition schedule around a timed-out
//     write forces the disagreement fallback, and the fallback's
//     write-back is what makes the NEXT read safe;
//   * mutant: unsafe_always_fast_read (the unconditional skip) replays the
//     same schedule and the exact single-writer checker MUST reject the
//     resulting history — if this test fails, the checker lost its teeth.
//
// Satellite: recovery resync must never manufacture stability evidence — a
// resynced replica knows the value, not that a majority does.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "abd/abd_register.hpp"
#include "abd/abd_snapshot.hpp"
#include "lin/history.hpp"
#include "lin/snapshot_checker.hpp"

namespace asnap::abd {
namespace {

using namespace std::chrono_literals;
using lin::Tag;

AbdConfig fast_config() {
  AbdConfig config;
  config.initial_rto = 500us;
  config.max_rto = 4ms;
  // Short enough that the deliberately-partitioned writes below time out
  // quickly; healthy in-process rounds settle in microseconds.
  config.op_deadline = 100ms;
  return config;
}

// --- positive path -----------------------------------------------------------

TEST(FastRead, ConfirmedWriteReadsInOneRound) {
  AbdCluster<int> cluster(5, 1, 0, /*seed=*/1, fast_config());
  cluster.write(0, 0, 7);
  const std::uint64_t rounds_before = cluster.protocol_rounds();
  EXPECT_EQ(cluster.read(0, 1), 7);
  EXPECT_EQ(cluster.fast_reads(), 1u);
  EXPECT_EQ(cluster.fast_fallbacks(), 0u);
  EXPECT_EQ(cluster.protocol_rounds() - rounds_before, 1u)
      << "a fast read is exactly one (query) round";
}

TEST(FastRead, UnwrittenRegisterIsUnanimousAndFast) {
  // ts = 0 everywhere: the quorum itself proves the initial value is
  // majority-stored, even though ts = 0 is never confirmed.
  AbdCluster<int> cluster(3, 1, -1, /*seed=*/2, fast_config());
  EXPECT_EQ(cluster.read(0, 1), -1);
  EXPECT_EQ(cluster.fast_reads(), 1u);
  EXPECT_EQ(cluster.fast_fallbacks(), 0u);
}

TEST(FastRead, DisabledConfigAlwaysTakesTwoRounds) {
  AbdConfig config = fast_config();
  config.fast_reads = false;
  AbdCluster<int> cluster(5, 1, 0, /*seed=*/3, config);
  cluster.write(0, 0, 7);
  const std::uint64_t rounds_before = cluster.protocol_rounds();
  EXPECT_EQ(cluster.read(0, 1), 7);
  EXPECT_EQ(cluster.fast_reads(), 0u);
  EXPECT_EQ(cluster.fast_fallbacks(), 0u)
      << "with the feature off, reads are not even counted as fallbacks";
  EXPECT_EQ(cluster.protocol_rounds() - rounds_before, 2u)
      << "query + write-back";
}

TEST(FastRead, ConfirmBroadcastReachesEveryReplica) {
  AbdCluster<int> cluster(3, 1, 0, /*seed=*/4, fast_config());
  cluster.write(0, 0, 5);
  // The confirm is fire-and-forget; servers fold it in asynchronously.
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  for (net::NodeId node = 0; node < 3; ++node) {
    while (cluster.replica_confirmed_ts(node, 0) < 1 &&
           std::chrono::steady_clock::now() < deadline) {
    }
    EXPECT_EQ(cluster.replica_confirmed_ts(node, 0), 1u)
        << "replica " << node << " never saw the confirm";
  }
}

// --- the fallback boundary, deterministically --------------------------------

/// The four-step schedule shared by the boundary test and the mutant test
/// (see tools/chaos_run.cpp run_broken_fastread for the prose version):
/// write A completes everywhere, write B times out reaching only replica 0,
/// reader at node 1 sees quorum {0,1} disagree on B, reader at node 2 sees
/// quorum {1,2}. With the real stability rule reader 1 falls back and its
/// write-back makes reader 2 return B; with the mutant both reads skip the
/// write-back and reader 2 returns the OLD A after reader 1 returned B.
struct ScheduleResult {
  std::optional<lin::CheckResult> violation;  // nullopt = setup failed
  std::uint64_t fast_reads = 0;
  std::uint64_t fast_fallbacks = 0;
  Tag read1{};
  Tag read2{};
};

ScheduleResult run_inversion_schedule(const AbdConfig& config) {
  AbdCluster<Tag> cluster(3, 1, Tag{}, /*seed=*/5, config);
  lin::Recorder recorder(1);
  ScheduleResult out;

  {  // write A = Tag{0,1}: completes, confirm broadcast follows.
    const lin::Time inv = recorder.tick();
    if (cluster.try_write(0, 0, Tag{0, 1}) != OpStatus::kOk) return out;
    const lin::Time res = recorder.tick();
    recorder.add_update(0, 0, Tag{0, 1}, inv, res);
  }

  // Write B = Tag{0,2}: the writer is cut off from 1 and 2, so B reaches
  // only replica 0 and the round times out — indeterminate, unconfirmed.
  cluster.cut_link(0, 1);
  cluster.cut_link(0, 2);
  const lin::Time b_inv = recorder.tick();
  if (cluster.try_write(0, 0, Tag{0, 2}) == OpStatus::kOk) return out;

  // Reader at node 1, quorum {0,1}: sees {ts=2, ts=1} — disagreement.
  cluster.restore_link(0, 1);
  cluster.restore_link(0, 2);
  cluster.cut_link(1, 2);
  {
    const lin::Time inv = recorder.tick();
    const auto got = cluster.try_read(0, 1);
    const lin::Time res = recorder.tick();
    if (!got.has_value()) return out;
    out.read1 = *got;
    recorder.add_scan(1, {*got}, inv, res);
  }

  // Reader at node 2, quorum {1,2} (links to 0 cut).
  cluster.restore_link(1, 2);
  cluster.cut_link(0, 1);
  cluster.cut_link(0, 2);
  {
    const lin::Time inv = recorder.tick();
    const auto got = cluster.try_read(0, 2);
    const lin::Time res = recorder.tick();
    if (!got.has_value()) return out;
    out.read2 = *got;
    recorder.add_scan(2, {*got}, inv, res);
  }

  // B is indeterminate: possibly applied any time up to now.
  recorder.add_update(0, 0, Tag{0, 2}, b_inv, recorder.tick());

  out.fast_reads = cluster.fast_reads();
  out.fast_fallbacks = cluster.fast_fallbacks();
  out.violation = lin::check_single_writer(recorder.take());
  return out;
}

TEST(FastRead, ConcurrentStalledWriteForcesFallbackAndStaysLinearizable) {
  const ScheduleResult r = run_inversion_schedule(fast_config());
  ASSERT_TRUE(r.violation.has_value()) << "schedule setup failed";
  EXPECT_FALSE(r.violation->has_value()) << **r.violation;
  EXPECT_GE(r.fast_fallbacks, 1u)
      << "the disagreeing quorum must have taken the slow path";
  // Reader 1's fallback wrote B back to {0,1}; reader 2 therefore sees B
  // too — monotone, never a new/old inversion.
  EXPECT_EQ(r.read1, (Tag{0, 2}));
  EXPECT_EQ(r.read2, (Tag{0, 2}));
}

// THE MUTANT: skip the write-back unconditionally. The exact checker must
// reject the resulting history — this is the must-fail witness that the
// stability evidence is load-bearing, not decorative.
TEST(FastRead, UnconditionalSkipMutantIsRejectedByChecker) {
  AbdConfig config = fast_config();
  config.unsafe_always_fast_read = true;
  const ScheduleResult r = run_inversion_schedule(config);
  ASSERT_TRUE(r.violation.has_value()) << "schedule setup failed";
  // The mutant fast-returns both reads: B first, then the resurrected A.
  EXPECT_EQ(r.read1, (Tag{0, 2}));
  EXPECT_EQ(r.read2, (Tag{0, 1}));
  EXPECT_TRUE(r.violation->has_value())
      << "checker FAILED to reject the unconditional write-back skip — "
         "the fast-read safety net is gone";
  EXPECT_EQ(r.fast_reads, 2u);
  EXPECT_EQ(r.fast_fallbacks, 0u);
}

// --- recovery resync must not manufacture evidence (satellite 3) -------------

TEST(FastRead, ResyncedReplicaIsNotConfirmed) {
  AbdCluster<int> cluster(3, 1, 0, /*seed=*/6, fast_config());
  cluster.write(0, 0, 1);  // ts=1, confirmed (eventually) everywhere
  cluster.crash(2);
  cluster.write(0, 0, 2);  // ts=2 completes on {0,1}; node 2 misses it

  ASSERT_TRUE(cluster.recover(2));
  // Resync installed the value it missed...
  EXPECT_EQ(cluster.replica_ts(2, 0), 2u);
  // ...but resync reads pass no stability evidence and apply_write never
  // touches confirmed_ts: knowing the value is NOT knowing a majority
  // stores it, so the recovered replica must not claim ts=2 confirmed.
  EXPECT_LT(cluster.replica_confirmed_ts(2, 0), 2u)
      << "resync manufactured stability evidence";

  // A read that write-backs (or a fresh confirmed write) is what upgrades
  // it: after a slow-path-capable read from node 2's quorum, values flow
  // normally and stay correct.
  EXPECT_EQ(cluster.try_read(0, 2), std::optional<int>(2));
}

// --- fast path composes with the snapshot (E16 sanity) -----------------------

TEST(FastRead, SnapshotHistoriesStayLinearizableWithFastReadsOn) {
  constexpr std::size_t kN = 3;
  AbdConfig config = fast_config();
  config.op_deadline = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::seconds(30));
  MessagePassingSnapshot<Tag> snap(kN, Tag{}, /*seed=*/7, config);
  lin::Recorder recorder(kN);
  {
    std::vector<std::jthread> threads;
    for (std::size_t p = 0; p < kN; ++p) {
      threads.emplace_back([&, pid = static_cast<ProcessId>(p)] {
        std::uint64_t seq = 0;
        for (int op = 0; op < 12; ++op) {
          if (op % 3 == 0) {
            const lin::Time inv = recorder.tick();
            snap.update(pid, Tag{pid, ++seq});
            const lin::Time res = recorder.tick();
            recorder.add_update(pid, pid, Tag{pid, seq}, inv, res);
          } else {
            const lin::Time inv = recorder.tick();
            std::vector<Tag> view = snap.scan(pid);
            const lin::Time res = recorder.tick();
            recorder.add_scan(pid, std::move(view), inv, res);
          }
        }
      });
    }
  }
  const auto violation = lin::check_single_writer(recorder.take());
  ASSERT_FALSE(violation.has_value()) << *violation;
  EXPECT_GT(snap.fast_reads(), 0u)
      << "a read-heavy snapshot workload must hit the fast path";
}

}  // namespace
}  // namespace asnap::abd
