// Tests for the mvcc versioned-publication engine (src/mvcc/): the packed
// refcount/pointer VersionGate, its grace-period reclamation through the
// hazard domain, the URCU baseline, the A4 backend's linearizability, and
// the svc scan cache riding the gate. Runs in the `mvcc`-labeled binary —
// under TSan and ASan in CI, because every bug class here is either a data
// race or a use-after-free.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "core/mvcc_snapshot.hpp"
#include "core/unbounded_sw_snapshot.hpp"
#include "harness.hpp"
#include "hazard/hazard_pointers.hpp"
#include "lin/snapshot_checker.hpp"
#include "mvcc/urcu_baseline.hpp"
#include "mvcc/version_gate.hpp"
#include "svc/service.hpp"

namespace asnap {
namespace {

using lin::Tag;

/// Instance-counted payload: every live Version holds exactly one, so
/// `live` tracks unreclaimed versions (plus stack temporaries).
struct Payload {
  static std::atomic<int> live;
  std::vector<std::uint64_t> words;

  explicit Payload(std::size_t n = 0) : words(n, 0) { live.fetch_add(1); }
  Payload(const Payload& o) : words(o.words) { live.fetch_add(1); }
  Payload(Payload&& o) noexcept : words(std::move(o.words)) {
    live.fetch_add(1);
  }
  Payload& operator=(const Payload&) = default;
  Payload& operator=(Payload&&) = default;
  ~Payload() { live.fetch_sub(1); }
};
std::atomic<int> Payload::live{0};

/// Fully quiesce: drain the gate's grace list and the hazard domain until
/// nothing moves (retired nodes may sit in another test's thread list).
template <typename T>
void full_reclaim(mvcc::VersionGate<T>& gate) {
  while (gate.reclaim() != 0) {
  }
  hazard::Domain::global().drain();
}

// --- VersionGate unit tests -------------------------------------------------

TEST(VersionGate, InitialAcquireSeesInitialValue) {
  mvcc::VersionGate<int> gate(41);
  auto g = gate.acquire();
  EXPECT_EQ(*g, 41);
  EXPECT_EQ(g.epoch(), 1u);
  EXPECT_EQ(gate.epoch(), 1u);
}

TEST(VersionGate, PublishAdvancesEpochAndValue) {
  mvcc::VersionGate<int> gate(0);
  for (int i = 1; i <= 10; ++i) gate.publish(i);
  auto g = gate.acquire();
  EXPECT_EQ(*g, 10);
  EXPECT_EQ(g.epoch(), 11u);
  const auto s = gate.stats();
  EXPECT_EQ(s.published, 11u);
  EXPECT_EQ(s.retired, 10u);
  EXPECT_EQ(s.reclaimed, 10u);  // no readers held them: quiesced at unlink
}

// The issue's core regression: reclamation must NEVER free a version a
// reader still holds. A guard pins its version across any number of later
// publishes and explicit reclaim passes; only the release makes it
// reclaimable. Under the ASan CI job a misfire is a hard use-after-free.
TEST(VersionGate, GuardPinsDisplacedVersionAcrossPublishesAndReclaims) {
  const int before = Payload::live.load();
  {
    mvcc::VersionGate<Payload> gate(Payload(4));
    auto pinned = gate.acquire();
    EXPECT_EQ(pinned.epoch(), 1u);

    Payload next(4);
    next.words[0] = 7;
    gate.publish(next);
    gate.publish(next);  // displaced v1 still pinned, v2 reclaims
    full_reclaim(gate);

    // v1 must still be intact and live; v2 must be gone.
    EXPECT_EQ(pinned->words[0], 0u);
    EXPECT_EQ(gate.stats().retired, 2u);
    EXPECT_EQ(gate.stats().reclaimed, 1u);

    pinned.reset();  // release: v1 becomes reclaimable
    gate.publish(next);
    full_reclaim(gate);
    EXPECT_EQ(gate.stats().reclaimed, 3u);
  }
  hazard::Domain::global().drain();
  EXPECT_EQ(Payload::live.load(), before);
}

// Outer-count wrap regression: the packed refcount is 16 bits of *total*
// acquires mod 2^16. Push one version past 65 536 acquire/release pairs,
// then displace it — the mod-2^16 deposit arithmetic must still conclude
// the version quiesced exactly once (no leak, no double free).
TEST(VersionGate, OuterRefcountWrapsCleanlyPast64K) {
  const int before = Payload::live.load();
  {
    mvcc::VersionGate<Payload> gate(Payload(1));
    constexpr int kAcquires = 70000;  // > 2^16: the 16-bit field wraps
    for (int i = 0; i < kAcquires; ++i) {
      auto g = gate.acquire();
      EXPECT_EQ(g.epoch(), 1u);
    }
    gate.publish(Payload(1));
    full_reclaim(gate);
    const auto s = gate.stats();
    EXPECT_EQ(s.retired, 1u);
    EXPECT_EQ(s.reclaimed, 1u);
    EXPECT_EQ(s.grace_pending, 0u);
  }
  hazard::Domain::global().drain();
  EXPECT_EQ(Payload::live.load(), before);
}

// Reader-ceiling regression: 65 535 *concurrently outstanding* guards is
// the most the 16-bit outer count can represent. The 65 536th acquire must
// stall (counted in saturation_stalls) instead of wrapping — a wrapped
// count would satisfy the mod-2^16 drain condition with readers still out
// and free a version under them. The stalled acquire must complete as soon
// as one guard releases.
TEST(VersionGate, AcquireStallsAtOutstandingReaderCeiling) {
  mvcc::VersionGate<int> gate(42);
  std::vector<mvcc::VersionGate<int>::ReadGuard> held;
  held.reserve(0xFFFF);
  for (std::uint32_t i = 0; i < 0xFFFF; ++i) held.push_back(gate.acquire());
  ASSERT_EQ(gate.stats().saturation_stalls, 0u)
      << "stalled below the ceiling";

  std::atomic<bool> acquired{false};
  std::thread reader([&] {
    auto g = gate.acquire();  // the 65 536th: must wait for a release
    EXPECT_EQ(*g, 42);
    acquired.store(true, std::memory_order_release);
  });
  // The spin loop counts its first stall before waiting, so this is a
  // reliable "the reader is inside acquire()" signal.
  while (gate.stats().saturation_stalls == 0) std::this_thread::yield();
  // Race-free: with 65 535 guards still held the spinner can never get
  // through, no matter how long we pause here.
  EXPECT_FALSE(acquired.load(std::memory_order_acquire));

  held.pop_back();  // release one slot
  reader.join();
  EXPECT_TRUE(acquired.load(std::memory_order_acquire));
  EXPECT_GT(gate.stats().saturation_stalls, 0u);
}

TEST(VersionGate, RefcountHighWaterTracksOutstandingReaders) {
  mvcc::VersionGate<int> gate(0);
  auto g1 = gate.acquire();
  auto g2 = gate.acquire();
  auto g3 = gate.acquire();
  gate.publish(1);  // three readers outstanding on the displaced version
  EXPECT_GE(gate.stats().refcount_high_water, 3u);
}

TEST(VersionGate, UpdateWithResolvesWriterConflictsLockFree) {
  mvcc::VersionGate<std::vector<std::uint64_t>> gate(
      std::vector<std::uint64_t>(4, 0));
  constexpr int kWriters = 4;
  constexpr std::uint64_t kPerWriter = 2000;
  {
    std::vector<std::jthread> writers;
    for (int w = 0; w < kWriters; ++w) {
      writers.emplace_back([&, w] {
        for (std::uint64_t i = 0; i < kPerWriter; ++i) {
          gate.update_with([&](std::vector<std::uint64_t>& v) { v[w] += 1; });
        }
      });
    }
  }
  auto g = gate.acquire();
  for (int w = 0; w < kWriters; ++w) EXPECT_EQ((*g)[w], kPerWriter);
  // Every successful update published exactly one version.
  EXPECT_EQ(g.epoch(), 1u + kWriters * kPerWriter);
  EXPECT_EQ(gate.stats().published, 1u + kWriters * kPerWriter);
}

// Readers + writers at full speed: every acquired view must satisfy the
// version invariant sum(words) == epoch - 1 (each publish adds exactly 1),
// epochs must be monotone per reader, and everything must reclaim. This is
// the TSan/ASan workhorse for the acquire/release/deposit protocol.
TEST(VersionGate, StressReadersVsWritersKeepsViewsConsistent) {
  const int before = Payload::live.load();
  {
    mvcc::VersionGate<Payload> gate(Payload(4));
    std::atomic<bool> stop{false};
    constexpr int kReaders = 4;
    constexpr int kWriters = 2;
    constexpr std::uint64_t kPerWriter = 4000;

    std::vector<std::jthread> threads;
    for (int r = 0; r < kReaders; ++r) {
      threads.emplace_back([&] {
        std::uint64_t last_epoch = 0;
        while (!stop.load(std::memory_order_acquire)) {
          auto g = gate.acquire();
          const std::uint64_t sum = std::accumulate(
              g->words.begin(), g->words.end(), std::uint64_t{0});
          ASSERT_EQ(sum, g.epoch() - 1);  // whole-version consistency
          ASSERT_GE(g.epoch(), last_epoch);  // monotone acquisition
          last_epoch = g.epoch();
        }
      });
    }
    for (int w = 0; w < kWriters; ++w) {
      threads.emplace_back([&, w] {
        for (std::uint64_t i = 0; i < kPerWriter; ++i) {
          gate.update_with([&](Payload& p) { p.words[w] += 1; });
        }
        if (w == 0) stop.store(true, std::memory_order_release);
      });
    }
    threads.clear();  // join
    stop.store(true, std::memory_order_release);
    full_reclaim(gate);
    const auto s = gate.stats();
    EXPECT_EQ(s.published, 1u + kReaders * 0 + kWriters * kPerWriter);
    EXPECT_EQ(s.retired, s.published - 1);
    EXPECT_EQ(s.grace_pending, 0u);
  }
  hazard::Domain::global().drain();
  EXPECT_EQ(Payload::live.load(), before);
}

// --- URCU baseline ----------------------------------------------------------

TEST(UrcuGate, PublishWaitsOutReadersAndValuesFlow) {
  mvcc::UrcuGate<int> gate(1);
  {
    auto g = gate.acquire();
    EXPECT_EQ(*g, 1);
  }
  gate.publish(2);
  auto g = gate.acquire();
  EXPECT_EQ(*g, 2);
}

// Regression for per-(gate, thread) reader registration: a thread that
// used a destroyed gate must re-register with a new gate even if the new
// one reuses the old one's address.
TEST(UrcuGate, SequentialGatesOnOneThreadReRegisterSafely) {
  for (int round = 0; round < 3; ++round) {
    mvcc::UrcuGate<int> gate(round);
    auto g = gate.acquire();
    EXPECT_EQ(*g, round);
    g.reset();
    gate.publish(round + 100);  // synchronize() must see OUR slot, not a stale one
    auto g2 = gate.acquire();
    EXPECT_EQ(*g2, round + 100);
  }
}

TEST(UrcuGate, StressReadersVsWriterNoTornViews) {
  mvcc::UrcuGate<std::vector<std::uint64_t>> gate(
      std::vector<std::uint64_t>(4, 0));
  std::atomic<bool> stop{false};
  constexpr std::uint64_t kWrites = 2000;

  std::vector<std::jthread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        auto g = gate.acquire();
        // Writer publishes [i, i, i, i]: any torn or freed view breaks this.
        ASSERT_EQ((*g)[0], (*g)[3]);
      }
    });
  }
  for (std::uint64_t i = 1; i <= kWrites; ++i) {
    gate.publish(std::vector<std::uint64_t>(4, i));
  }
  stop.store(true, std::memory_order_release);
}

// --- A4 backend: linearizability under the exact checker --------------------

TEST(MvccSnapshot, SequentialSemantics) {
  core::MvccSnapshot<Tag> snap(3, Tag{});
  EXPECT_EQ(snap.size(), 3u);
  snap.update(1, Tag{1, 1});
  const std::vector<Tag> view = snap.scan(0);
  EXPECT_TRUE(view[0].is_initial());
  EXPECT_EQ(view[1], (Tag{1, 1}));
  EXPECT_EQ(snap.version_epoch(), 2u);
}

TEST(MvccSnapshot, ScanViewLendsWithoutCopying) {
  core::MvccSnapshot<std::uint64_t> snap(4, 0);
  snap.update(2, 9);
  auto view = snap.scan_view();
  ASSERT_EQ(view->size(), 4u);
  EXPECT_EQ((*view)[2], 9u);
}

TEST(MvccSnapshot, StressHistoriesAreLinearizable) {
  for (const std::size_t n : {2u, 4u}) {
    for (const double scan_prob : {0.15, 0.5, 0.9}) {
      core::MvccSnapshot<Tag> snap(n, Tag{});
      testing::WorkloadConfig cfg;
      cfg.processes = n;
      cfg.ops_per_process = 300;
      cfg.scan_prob = scan_prob;
      cfg.seed = 1000 + n * 10 + static_cast<std::uint64_t>(scan_prob * 100);
      const lin::History history = testing::run_sw_workload(snap, cfg);
      const auto violation = lin::check_single_writer(history);
      ASSERT_FALSE(violation.has_value())
          << "n=" << n << " scan_prob=" << scan_prob << ": " << *violation;
    }
  }
}

TEST(MvccSnapshot, GateStatsAccountForEveryUpdate) {
  core::MvccSnapshot<Tag> snap(2, Tag{});
  for (std::uint64_t s = 1; s <= 50; ++s) snap.update(0, Tag{0, s});
  const auto gs = snap.gate_stats();
  EXPECT_EQ(gs.published, 51u);  // initial + 50 updates
  EXPECT_EQ(gs.retired, 50u);
  snap.reclaim();
  EXPECT_EQ(snap.gate_stats().grace_pending, 0u);
}

// --- svc scan cache over the gate -------------------------------------------

// Readers hammer service scans (mostly cache hits) while writers flush
// updates, forcing continuous version publication and displacement of
// actively-read cache entries. Checks the gate's accounting and, under
// TSan/ASan, the lock-free hit path's safety. View *consistency* is
// enforced end-to-end by the svc/shard checked loadgen runs and churn
// tests, which now also run over A4.
TEST(SvcScanCache, VersionedCacheServesConcurrentHitsDuringFills) {
  using Backend = core::UnboundedSwSnapshot<Tag>;
  Backend backend(8, Tag{});  // 8 lease slots: room for all 6 clients
  svc::ServiceConfig cfg;
  cfg.lease.ttl = std::chrono::seconds(30);  // no expiry under sanitizers
  svc::SnapshotService<Backend, Tag> service(backend, cfg);

  // Fixed op counts on both sides (a stop flag would let a fast writer
  // finish before any reader scanned once).
  std::vector<std::jthread> threads;
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&, w] {
      auto conn = service.connect(100 + w, std::chrono::milliseconds(500));
      ASSERT_EQ(conn.error, svc::SvcError::kOk);
      for (std::uint64_t i = 1; i <= 800; ++i) {
        auto r = service.submit_update(
            conn.session,
            [&](ProcessId p, std::uint64_t seq) { return Tag{p, seq}; });
        ASSERT_EQ(r.error, svc::SvcError::kOk);
        (void)service.flush(conn.session);
      }
      (void)service.disconnect(conn.session);
    });
  }
  for (int r = 0; r < 4; ++r) {
    threads.emplace_back([&, r] {
      auto conn = service.connect(200 + r, std::chrono::milliseconds(500));
      ASSERT_EQ(conn.error, svc::SvcError::kOk);
      for (int i = 0; i < 600; ++i) {
        auto s = service.scan(conn.session);
        ASSERT_EQ(s.error, svc::SvcError::kOk);
        ASSERT_EQ(s.view.size(), 8u);
      }
      (void)service.disconnect(conn.session);
    });
  }
  threads.clear();  // join

  const auto gs = service.cache_gate_stats();
  const auto ss = service.stats();
  EXPECT_GT(gs.published, 1u);           // fills published versions
  EXPECT_EQ(gs.retired, gs.published - 1);
  EXPECT_LE(gs.reclaimed, gs.retired);
  EXPECT_GT(ss.scans, 0u);
  EXPECT_GT(ss.cache_hits + ss.cache_misses, 0u);
}

}  // namespace
}  // namespace asnap
