// Tests for the ABD register emulation and the message-passing snapshot
// (experiment E9): register atomicity, snapshot linearizability over the
// network, minority-crash resilience, and message-complexity accounting.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "abd/abd_register.hpp"
#include "abd/abd_snapshot.hpp"
#include "lin/history.hpp"
#include "lin/snapshot_checker.hpp"

namespace asnap::abd {
namespace {

using lin::Tag;

TEST(AbdCluster, ReadsBackOwnWrite) {
  AbdCluster<int> cluster(3, 3, 0);
  cluster.write(0, 0, 41);
  EXPECT_EQ(cluster.read(0, 1), 41);
  EXPECT_EQ(cluster.read(0, 2), 41);
}

TEST(AbdCluster, RegistersAreIndependent) {
  AbdCluster<int> cluster(3, 3, -1);
  cluster.write(0, 0, 10);
  cluster.write(2, 2, 30);
  EXPECT_EQ(cluster.read(0, 1), 10);
  EXPECT_EQ(cluster.read(1, 1), -1);
  EXPECT_EQ(cluster.read(2, 1), 30);
}

TEST(AbdCluster, LastWriteWins) {
  AbdCluster<int> cluster(3, 1, 0);
  for (int v = 1; v <= 20; ++v) cluster.write(0, 0, v);
  EXPECT_EQ(cluster.read(0, 2), 20);
}

TEST(AbdCluster, SurvivesMinorityCrash) {
  AbdCluster<int> cluster(5, 5, 0);
  cluster.write(0, 0, 1);
  cluster.crash(3);
  cluster.crash(4);
  EXPECT_EQ(cluster.alive_count(), 3u);
  // Majority (3 of 5) still alive: operations keep completing.
  cluster.write(1, 1, 11);
  EXPECT_EQ(cluster.read(0, 2), 1);
  EXPECT_EQ(cluster.read(1, 2), 11);
}

TEST(AbdCluster, MonotoneReadsUnderConcurrentWriter) {
  AbdCluster<std::uint64_t> cluster(3, 1, 0);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads_done{0};
  std::jthread reader([&] {
    std::uint64_t last = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const std::uint64_t v = cluster.read(0, 1);
      ASSERT_GE(v, last) << "ABD register went backwards";
      last = v;
      reads_done.fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (std::uint64_t v = 1; v <= 300; ++v) cluster.write(0, 0, v);
  while (reads_done.load(std::memory_order_relaxed) < 5) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
}

TEST(AbdCluster, MessageCountPerOperation) {
  constexpr std::size_t kNodes = 5;
  AbdCluster<int> cluster(kNodes, kNodes, 0);
  const std::uint64_t before_write = cluster.messages_sent();
  cluster.write(0, 0, 7);
  const std::uint64_t write_msgs = cluster.messages_sent() - before_write;
  // One broadcast (n requests) + at least a majority of acks, at most n,
  // plus the fire-and-forget confirm broadcast (n) and possible stragglers
  // from earlier rounds still being emitted.
  EXPECT_GE(write_msgs, kNodes + cluster.majority());
  EXPECT_LE(write_msgs, 2 * kNodes + 2 * kNodes);

  const std::uint64_t before_read = cluster.messages_sent();
  (void)cluster.read(0, 1);
  const std::uint64_t read_msgs = cluster.messages_sent() - before_read;
  // Fast reads are on by default and the write above was confirmed, so the
  // read is ONE round: one broadcast plus at least the majority of replies,
  // at most 2n — and strictly fewer messages than the old two-round floor.
  EXPECT_EQ(cluster.fast_reads(), 1u);
  EXPECT_EQ(cluster.fast_fallbacks(), 0u);
  EXPECT_GE(read_msgs, kNodes + cluster.majority());
  EXPECT_LT(read_msgs, 2 * kNodes + cluster.majority());
}

TEST(AbdCluster, MessageCountPerOperationSlowPath) {
  constexpr std::size_t kNodes = 5;
  AbdConfig config;
  config.fast_reads = false;
  AbdCluster<int> cluster(kNodes, kNodes, 0, /*seed=*/1, config);
  cluster.write(0, 0, 7);
  const std::uint64_t before_read = cluster.messages_sent();
  (void)cluster.read(0, 1);
  const std::uint64_t read_msgs = cluster.messages_sent() - before_read;
  // Two rounds (query + write-back): at least the two broadcasts plus the
  // query-round majority; at most 4n plus the write-back confirm broadcast
  // and stragglers.
  EXPECT_EQ(cluster.fast_reads(), 0u);
  EXPECT_GE(read_msgs, 2 * kNodes + cluster.majority());
  EXPECT_LE(read_msgs, 4 * kNodes + 2 * kNodes);
}

TEST(AbdCluster, SurvivesLinkFailures) {
  // 5 nodes; cut links (0,3), (0,4), (1,4): node 0 still reaches {0,1,2}
  // (its majority), node 1 reaches {0,1,2,3}. Operations keep completing —
  // the paper's "resilient to process and link failures, as long as a
  // majority of the system remains connected".
  AbdCluster<int> cluster(5, 5, 0);
  cluster.cut_link(0, 3);
  cluster.cut_link(0, 4);
  cluster.cut_link(1, 4);
  cluster.write(0, 0, 7);
  EXPECT_EQ(cluster.read(0, 1), 7);
  cluster.write(1, 1, 9);
  EXPECT_EQ(cluster.read(1, 0), 9);
  EXPECT_EQ(cluster.read(0, 2), 7);
}

TEST(AbdCluster, LinkFailuresPlusMinorityCrash) {
  AbdCluster<int> cluster(5, 5, 0);
  cluster.crash(4);
  cluster.cut_link(0, 3);  // node 0's quorum is now exactly {0,1,2}
  cluster.write(0, 0, 11);
  EXPECT_EQ(cluster.read(0, 1), 11);
}

// --- The message-passing snapshot itself -------------------------------------

TEST(MessagePassingSnapshot, SequentialSemantics) {
  MessagePassingSnapshot<int> snap(3, 0);
  snap.update(1, 7);
  const std::vector<int> view = snap.scan(0);
  EXPECT_EQ(view, (std::vector<int>{0, 7, 0}));
}

TEST(MessagePassingSnapshot, ConcurrentHistoriesAreLinearizable) {
  constexpr std::size_t kN = 3;
  MessagePassingSnapshot<Tag> snap(kN, Tag{});
  lin::Recorder recorder(kN);
  {
    std::vector<std::jthread> threads;
    for (std::size_t p = 0; p < kN; ++p) {
      threads.emplace_back([&, pid = static_cast<ProcessId>(p)] {
        std::uint64_t seq = 0;
        for (int op = 0; op < 12; ++op) {
          if (op % 2 == 0) {
            const lin::Time inv = recorder.tick();
            snap.update(pid, Tag{pid, ++seq});
            const lin::Time res = recorder.tick();
            recorder.add_update(pid, pid, Tag{pid, seq}, inv, res);
          } else {
            const lin::Time inv = recorder.tick();
            std::vector<Tag> view = snap.scan(pid);
            const lin::Time res = recorder.tick();
            recorder.add_scan(pid, std::move(view), inv, res);
          }
        }
      });
    }
  }
  const auto violation = lin::check_single_writer(recorder.take());
  ASSERT_FALSE(violation.has_value()) << *violation;
}

TEST(MessagePassingSnapshot, LiveAndLinearizableAfterMinorityCrash) {
  constexpr std::size_t kN = 5;
  MessagePassingSnapshot<Tag> snap(kN, Tag{});
  lin::Recorder recorder(kN);
  {
    // A value from the soon-to-be-crashed node, recorded so the checker
    // knows the tag exists.
    const lin::Time inv = recorder.tick();
    snap.update(4, Tag{4, 1});
    const lin::Time res = recorder.tick();
    recorder.add_update(4, 4, Tag{4, 1}, inv, res);
  }
  snap.crash(3);
  snap.crash(4);

  {
    std::vector<std::jthread> threads;
    for (std::size_t p = 0; p < 3; ++p) {  // survivors only
      threads.emplace_back([&, pid = static_cast<ProcessId>(p)] {
        std::uint64_t seq = 0;
        for (int op = 0; op < 8; ++op) {
          if (op % 2 == 0) {
            const lin::Time inv = recorder.tick();
            snap.update(pid, Tag{pid, ++seq});
            const lin::Time res = recorder.tick();
            recorder.add_update(pid, pid, Tag{pid, seq}, inv, res);
          } else {
            const lin::Time inv = recorder.tick();
            std::vector<Tag> view = snap.scan(pid);
            const lin::Time res = recorder.tick();
            recorder.add_scan(pid, std::move(view), inv, res);
          }
        }
      });
    }
  }
  const lin::History history = recorder.take();
  const auto violation = lin::check_single_writer(history);
  ASSERT_FALSE(violation.has_value()) << *violation;
  // The crashed node's pre-crash update must still be visible (it reached a
  // majority): every scan shows word 4 == Tag{4, 1}.
  ASSERT_FALSE(history.scans.empty());
  for (const lin::ScanOp& s : history.scans) {
    EXPECT_EQ(s.view[4], (Tag{4, 1}));
  }
}

}  // namespace
}  // namespace asnap::abd
