// Tests for the Chandy–Lamport distributed snapshot substrate (the paper's
// Section 6 comparison point): consistency of every cut, end-to-end token
// conservation, and the measured non-instantaneity of distributed cuts.
#include <gtest/gtest.h>

#include <cstdint>

#include "cl/chandy_lamport.hpp"

namespace asnap::cl {
namespace {

TEST(ChandyLamport, QuiescentConservation) {
  TokenBank bank(4, 100, /*seed=*/7);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  const std::vector<Amount> balances = bank.drain_and_stop();
  Amount total = 0;
  for (const Amount b : balances) total += b;
  EXPECT_EQ(total, bank.expected_total());
}

TEST(ChandyLamport, SnapshotCutConservesTokens) {
  TokenBank bank(4, 100, 11);
  for (int i = 0; i < 5; ++i) {
    const GlobalSnapshot snap = bank.snapshot();
    EXPECT_EQ(snap.total(), bank.expected_total())
        << "cut " << i << " is not a consistent global state";
    ASSERT_EQ(snap.states.size(), 4u);
  }
}

TEST(ChandyLamport, SnapshotsConcurrentWithHeavyTraffic) {
  TokenBank bank(6, 50, 23);
  for (int i = 0; i < 10; ++i) {
    const GlobalSnapshot snap = bank.snapshot();
    EXPECT_EQ(snap.total(), bank.expected_total());
  }
  // And the system itself is still conserving.
  const std::vector<Amount> balances = bank.drain_and_stop();
  Amount total = 0;
  for (const Amount b : balances) total += b;
  EXPECT_EQ(total, bank.expected_total());
}

TEST(ChandyLamport, CapturesInFlightMessages) {
  // With busy traffic, at least one of several snapshots should record
  // channel contents (tokens in flight at the cut). This is inherently
  // probabilistic, so aggregate over many snapshots.
  TokenBank bank(5, 100, 37);
  std::size_t snapshots_with_in_flight = 0;
  for (int i = 0; i < 20; ++i) {
    const GlobalSnapshot snap = bank.snapshot();
    EXPECT_EQ(snap.total(), bank.expected_total());
    if (snap.in_flight_count() > 0) ++snapshots_with_in_flight;
  }
  // No hard assertion on > 0 (single-core timing could serialize),
  // but the sum total above already proves channel recording is counted.
  SUCCEED() << snapshots_with_in_flight
            << "/20 snapshots captured in-flight tokens";
}

TEST(ChandyLamport, RecordInstantsAreReported) {
  TokenBank bank(4, 100, 41);
  const GlobalSnapshot snap = bank.snapshot();
  ASSERT_EQ(snap.record_instants.size(), 4u);
  // Spread is >= 0 by construction; the discussion point (spread typically
  // > 0, i.e. NOT an instantaneous image) is demonstrated and reported by
  // examples/distributed_vs_atomic.cpp, where traffic guarantees motion.
  EXPECT_GE(snap.instant_spread(), 0u);
}

TEST(ChandyLamport, ManySequentialSnapshotsDoNotLeakState) {
  TokenBank bank(3, 10, 53);
  for (int i = 0; i < 30; ++i) {
    const GlobalSnapshot snap = bank.snapshot();
    ASSERT_EQ(snap.total(), bank.expected_total()) << "iteration " << i;
  }
}

}  // namespace
}  // namespace asnap::cl
