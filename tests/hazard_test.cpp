// Unit tests for the hazard-pointer reclamation domain.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "hazard/hazard_pointers.hpp"

namespace asnap::hazard {
namespace {

struct Counted {
  static std::atomic<int> live;
  int payload = 0;
  explicit Counted(int p) : payload(p) { live.fetch_add(1); }
  ~Counted() { live.fetch_sub(1); }
};
std::atomic<int> Counted::live{0};

TEST(Hazard, RetireEventuallyFrees) {
  const int before = Counted::live.load();
  for (int i = 0; i < 1000; ++i) {
    retire_object(new Counted(i));
  }
  Domain::global().drain();
  EXPECT_EQ(Counted::live.load(), before);
}

TEST(Hazard, ProtectedNodeSurvivesDrain) {
  const int before = Counted::live.load();
  auto* node = new Counted(7);
  std::atomic<Counted*> src{node};
  {
    Guard guard;
    Counted* p = guard.protect(src);
    ASSERT_EQ(p, node);
    retire_object(node);
    Domain::global().drain();
    // Still protected: must not have been freed.
    EXPECT_EQ(Counted::live.load(), before + 1);
    EXPECT_EQ(p->payload, 7);
  }
  Domain::global().drain();
  EXPECT_EQ(Counted::live.load(), before);
}

TEST(Hazard, ProtectFollowsMovingPointer) {
  auto* first = new Counted(1);
  auto* second = new Counted(2);
  std::atomic<Counted*> src{first};
  src.store(second);
  {
    Guard guard;
    Counted* p = guard.protect(src);
    EXPECT_EQ(p, second);
    EXPECT_TRUE(Domain::global().is_protected(second));
  }
  EXPECT_FALSE(Domain::global().is_protected(second));
  delete first;
  delete second;
}

TEST(Hazard, GuardsNestUpToSlotLimit) {
  auto* node = new Counted(3);
  std::atomic<Counted*> src{node};
  {
    Guard g1, g2, g3, g4;  // kSlotsPerThread == 4
    EXPECT_EQ(g1.protect(src), node);
    EXPECT_EQ(g2.protect(src), node);
    EXPECT_EQ(g3.protect(src), node);
    EXPECT_EQ(g4.protect(src), node);
  }
  delete node;
}

TEST(Hazard, OrphansFromExitedThreadsAreAdopted) {
  const int before = Counted::live.load();
  {
    std::jthread worker([] {
      // Retire from a thread that exits immediately; too few nodes to
      // trigger the worker's own reclamation threshold.
      for (int i = 0; i < 10; ++i) retire_object(new Counted(i));
    });
  }
  // The main thread adopts and frees the orphans.
  Domain::global().drain();
  EXPECT_EQ(Counted::live.load(), before);
}

// Readers chase a pointer a writer keeps swinging; every dereference must be
// safe and every observed payload must be one that was actually published.
TEST(Hazard, StressReadersVsWriter) {
  constexpr int kWrites = 20000;
  constexpr int kReaders = 4;
  std::atomic<Counted*> src{new Counted(0)};
  std::atomic<bool> stop{false};

  std::vector<std::jthread> readers;
  std::atomic<std::uint64_t> observations{0};
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        Guard guard;
        Counted* p = guard.protect(src);
        ASSERT_GE(p->payload, 0);
        ASSERT_LE(p->payload, kWrites);
        observations.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (int i = 1; i <= kWrites; ++i) {
    Counted* fresh = new Counted(i);
    Counted* old = src.exchange(fresh, std::memory_order_acq_rel);
    retire_object(old);
  }
  // On a single-core box the writer can finish before any reader runs; keep
  // the object live until every reader has dereferenced at least once.
  while (observations.load(std::memory_order_relaxed) <
         static_cast<std::uint64_t>(kReaders)) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  readers.clear();  // join

  delete src.load();
  Domain::global().drain();
  EXPECT_GT(observations.load(), 0u);
  EXPECT_EQ(Counted::live.load(), 0);
}

// Retire-list draining is observable: drain() reports how many nodes it
// freed and retired_approx() returns to its baseline.
TEST(Hazard, DrainReportsFreedCountAndEmptiesRetireList) {
  Domain::global().drain();  // flush leftovers from earlier tests
  const std::size_t baseline = Domain::global().retired_approx();
  constexpr std::size_t kNodes = 50;
  for (std::size_t i = 0; i < kNodes; ++i) {
    retire_object(new Counted(static_cast<int>(i)));
  }
  EXPECT_EQ(Domain::global().retired_approx(), baseline + kNodes);
  const std::size_t freed = Domain::global().drain();
  EXPECT_GE(freed, kNodes);
  EXPECT_EQ(Domain::global().retired_approx(), baseline);
}

// ABA regression: reclamation must key on the *announced address*, not on
// any stale validation. A node stays protected across (a) its retirement by
// ANOTHER thread and (b) that thread's own reclamation pass and exit — if
// the domain ever freed a still-protected node, the payload check below is
// a use-after-free (caught in-test under ASan, and as a corrupted payload
// otherwise). After release, the address becomes reclaimable and a fresh
// allocation at (possibly) the same address must NOT inherit protection.
TEST(Hazard, AbaStillProtectedNodeNeverFreedByRemoteDrain) {
  const int before = Counted::live.load();
  auto* node = new Counted(41);
  std::atomic<Counted*> src{node};

  Guard guard;
  Counted* p = guard.protect(src);
  ASSERT_EQ(p, node);
  {
    // Remote thread retires the node, runs its own reclamation pass, and
    // exits (orphaning whatever survived). The announcement in OUR slot
    // must keep the node alive through all of it.
    std::jthread remote([&] {
      retire_object(node);
      Domain::global().drain();
    });
  }
  Domain::global().drain();  // adopt the orphan; still must not free
  EXPECT_EQ(Counted::live.load(), before + 1);
  EXPECT_EQ(p->payload, 41);  // would be UAF if reclamation misfired
  EXPECT_TRUE(Domain::global().is_protected(node));

  guard.clear();
  Domain::global().drain();
  EXPECT_EQ(Counted::live.load(), before);

  // The slot is clear: a new node (which may well reuse the freed node's
  // address) must not appear protected.
  auto* fresh = new Counted(42);
  EXPECT_FALSE(Domain::global().is_protected(fresh));
  delete fresh;
}

// Acquire/release race: many reader threads protect-and-clear the same
// published nodes while a writer swings the pointer and retires, and every
// thread drains concurrently. TSan signs off on the announce/validate
// seq_cst pairing; ASan (the PR-9 CI job) on the frees.
TEST(Hazard, StressAcquireReleaseRacesWithConcurrentDrains) {
  constexpr int kWrites = 5000;
  constexpr int kReaders = 4;
  const int before = Counted::live.load();
  std::atomic<Counted*> src{new Counted(0)};
  std::atomic<bool> stop{false};

  std::vector<std::jthread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      std::uint64_t iters = 0;
      while (!stop.load(std::memory_order_acquire)) {
        {
          Guard guard;
          Counted* p = guard.protect(src);
          ASSERT_GE(p->payload, 0);
          ASSERT_LE(p->payload, kWrites);
        }  // release (clear) races with the writer's retire
        if (++iters % 64 == static_cast<std::uint64_t>(r)) {
          Domain::global().drain();  // readers reclaim too
        }
      }
    });
  }

  for (int i = 1; i <= kWrites; ++i) {
    Counted* old = src.exchange(new Counted(i), std::memory_order_acq_rel);
    retire_object(old);
  }
  stop.store(true, std::memory_order_release);
  readers.clear();  // join

  delete src.load();
  Domain::global().drain();
  EXPECT_EQ(Counted::live.load(), before);
}

}  // namespace
}  // namespace asnap::hazard
