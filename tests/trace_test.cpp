// Tests for the tracing subsystem (src/trace/): the per-thread SPSC ring's
// overwrite-oldest policy and drop accounting, the log-bucketed histogram
// against a sorted reference, the exported Chrome/JSONL formats, and —
// under the deterministic scheduler — that the instrumented Figure 2 scan
// emits well-formed collect pairs within the pigeonhole bound.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/unbounded_sw_snapshot.hpp"
#include "sched/policies.hpp"
#include "sched/scheduler.hpp"
#include "trace/event.hpp"
#include "trace/exporter.hpp"
#include "trace/histogram.hpp"
#include "trace/json.hpp"
#include "trace/ring_buffer.hpp"

namespace {

using namespace asnap;

trace::TraceEvent make_event(std::uint64_t seq) {
  trace::TraceEvent ev;
  ev.ts_ns = seq;
  ev.a0 = seq;
  ev.a1 = ~seq;
  ev.pid = static_cast<std::uint32_t>(seq % 7);
  ev.kind = trace::EventKind::kScanBegin;
  return ev;
}

// -- SpscRing ----------------------------------------------------------------

TEST(SpscRing, DrainsInOrderBelowCapacity) {
  trace::SpscRing ring(64);
  for (std::uint64_t i = 0; i < 50; ++i) ring.push(make_event(i));
  std::vector<trace::TraceEvent> out;
  const auto stats = ring.drain(out);
  EXPECT_EQ(stats.drained, 50u);
  EXPECT_EQ(stats.dropped, 0u);
  ASSERT_EQ(out.size(), 50u);
  for (std::uint64_t i = 0; i < 50; ++i) {
    EXPECT_EQ(out[i].a0, i);
    EXPECT_EQ(out[i].a1, ~i);
    EXPECT_EQ(out[i].kind, trace::EventKind::kScanBegin);
  }
}

TEST(SpscRing, IncrementalDrainsResumeAtCursor) {
  trace::SpscRing ring(16);
  for (std::uint64_t i = 0; i < 5; ++i) ring.push(make_event(i));
  std::vector<trace::TraceEvent> out;
  EXPECT_EQ(ring.drain(out).drained, 5u);
  for (std::uint64_t i = 5; i < 12; ++i) ring.push(make_event(i));
  EXPECT_EQ(ring.drain(out).drained, 7u);
  ASSERT_EQ(out.size(), 12u);
  for (std::uint64_t i = 0; i < 12; ++i) EXPECT_EQ(out[i].a0, i);
  // Nothing new: an empty drain.
  const auto idle = ring.drain(out);
  EXPECT_EQ(idle.drained, 0u);
  EXPECT_EQ(idle.dropped, 0u);
}

TEST(SpscRing, WraparoundOverwritesOldestAndCountsDropped) {
  constexpr std::uint64_t kCap = 32;
  constexpr std::uint64_t kTotal = 3 * kCap + 5;
  trace::SpscRing ring(kCap);
  for (std::uint64_t i = 0; i < kTotal; ++i) ring.push(make_event(i));
  std::vector<trace::TraceEvent> out;
  const auto stats = ring.drain(out);
  // The flight recorder keeps exactly the newest kCap events.
  EXPECT_EQ(stats.drained, kCap);
  EXPECT_EQ(stats.dropped, kTotal - kCap);
  EXPECT_EQ(ring.dropped(), kTotal - kCap);
  ASSERT_EQ(out.size(), kCap);
  for (std::uint64_t i = 0; i < kCap; ++i) {
    EXPECT_EQ(out[i].a0, kTotal - kCap + i);
  }
}

TEST(SpscRing, ConcurrentProducerConsumerNeverLosesAccounting) {
  constexpr std::uint64_t kTotal = 200000;
  trace::SpscRing ring(256);
  std::atomic<bool> done{false};
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kTotal; ++i) ring.push(make_event(i));
    done.store(true, std::memory_order_release);
  });

  std::vector<trace::TraceEvent> out;
  std::uint64_t dropped = 0;
  while (!done.load(std::memory_order_acquire)) {
    dropped += ring.drain(out).dropped;
    std::this_thread::yield();
  }
  producer.join();
  dropped += ring.drain(out).dropped;

  // Every push is either drained or accounted as dropped — never both,
  // never neither.
  EXPECT_EQ(out.size() + dropped, kTotal);
  // Drained events come out oldest-first with no duplicates, and no event
  // is torn: payload words must agree with each other.
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].a1, ~out[i].a0);
    if (i > 0) {
      EXPECT_LT(out[i - 1].a0, out[i].a0);
    }
  }
}

// -- LogHistogram ------------------------------------------------------------

TEST(LogHistogram, SmallValuesAreExact) {
  trace::LogHistogram h;
  for (std::uint64_t v = 0; v < trace::LogHistogram::kSub; ++v) h.record(v);
  for (double q : {0.1, 0.25, 0.5, 0.75, 1.0}) {
    // With one sample per unit bucket, every percentile is exact.
    const auto rank = static_cast<std::uint64_t>(
        std::max(1.0, std::ceil(q * trace::LogHistogram::kSub)));
    EXPECT_EQ(h.percentile(q), rank - 1) << "q=" << q;
  }
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), trace::LogHistogram::kSub - 1);
}

TEST(LogHistogram, PercentilesTrackSortedReference) {
  // Deterministic multiplicative generator spanning several octaves.
  std::vector<std::uint64_t> values;
  std::uint64_t x = 88172645463325252ULL;
  for (int i = 0; i < 20000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    values.push_back(x % 10'000'000);
  }
  trace::LogHistogram h;
  for (const std::uint64_t v : values) h.record(v);
  std::vector<std::uint64_t> sorted = values;
  std::sort(sorted.begin(), sorted.end());

  for (const double q : {0.01, 0.10, 0.50, 0.90, 0.99, 0.999, 1.0}) {
    auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(sorted.size())));
    if (rank == 0) rank = 1;
    const std::uint64_t ref = sorted[rank - 1];
    const std::uint64_t got = h.percentile(q);
    // The histogram reports the bucket's inclusive upper bound: never below
    // the true percentile, and above it by at most the 2^-kSubBits relative
    // quantization error.
    EXPECT_GE(got, ref) << "q=" << q;
    EXPECT_LE(got, ref + (ref >> trace::LogHistogram::kSubBits) + 1)
        << "q=" << q;
  }
  EXPECT_EQ(h.count(), values.size());
  EXPECT_EQ(h.min(), sorted.front());
  EXPECT_EQ(h.max(), sorted.back());
  EXPECT_EQ(h.percentile(1.0), sorted.back());
}

TEST(LogHistogram, MergeMatchesCombinedRecording) {
  trace::LogHistogram a;
  trace::LogHistogram b;
  trace::LogHistogram combined;
  for (std::uint64_t v = 1; v < 5000; v += 3) {
    a.record(v);
    combined.record(v);
  }
  for (std::uint64_t v = 100000; v < 900000; v += 1111) {
    b.record(v);
    combined.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  for (const double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_EQ(a.percentile(q), combined.percentile(q)) << "q=" << q;
  }
}

TEST(LogHistogram, BucketBoundsRoundTrip) {
  for (const std::uint64_t v :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{15},
        std::uint64_t{16}, std::uint64_t{17}, std::uint64_t{1023},
        std::uint64_t{1024}, std::uint64_t{123456789},
        ~std::uint64_t{0} >> 1, ~std::uint64_t{0}}) {
    const std::size_t b = trace::LogHistogram::bucket_of(v);
    ASSERT_LT(b, trace::LogHistogram::kBuckets);
    EXPECT_LE(v, trace::LogHistogram::bucket_high(b));
    if (b > 0) {
      EXPECT_GT(v, trace::LogHistogram::bucket_high(b - 1));
    }
  }
}

// -- export formats ----------------------------------------------------------

class TraceCaptureTest : public ::testing::Test {
 protected:
  void SetUp() override { trace::discard_all(); }
  void TearDown() override {
    trace::set_enabled(false);
    trace::discard_all();
  }
};

TEST_F(TraceCaptureTest, ChromeTraceHasRequiredKeysAndBalancedDurations) {
  trace::set_enabled(true);
  trace::emit(trace::EventKind::kUpdateBegin, 2, 0);
  trace::emit(trace::EventKind::kScanBegin, 2, trace::kAlgoUnboundedSw, 4);
  trace::emit(trace::EventKind::kCollectBegin, 2, 0);
  trace::emit(trace::EventKind::kCollectEnd, 2, 0);
  trace::emit(trace::EventKind::kDoubleCollectMatch, 2, 1);
  trace::emit(trace::EventKind::kScanEnd, 2, 1, 0);
  trace::emit(trace::EventKind::kUpdateEnd, 2, 0);
  trace::emit(trace::EventKind::kFaultDrop, 0, 3);
  trace::set_enabled(false);

  const trace::Drained drained = trace::drain_all();
  ASSERT_EQ(drained.events.size(), 8u);
  EXPECT_TRUE(std::is_sorted(
      drained.events.begin(), drained.events.end(),
      [](const auto& a, const auto& b) { return a.ts_ns < b.ts_ns; }));
  for (const auto& ev : drained.events) EXPECT_NE(ev.tid, 0u);

  const std::string path = "trace_test_chrome.json";
  ASSERT_TRUE(trace::write_chrome_trace(path, drained.events));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const trace::json::Value doc = trace::json::parse(buf.str());
  ASSERT_TRUE(doc["traceEvents"].is_array());
  const auto& events = doc["traceEvents"].as_array();
  ASSERT_EQ(events.size(), 8u);

  std::map<std::string, int> ph_balance;
  for (const auto& ev : events) {
    // The chrome trace-event contract: every record carries these keys.
    EXPECT_TRUE(ev.has("name"));
    EXPECT_TRUE(ev.has("ph"));
    EXPECT_TRUE(ev.has("ts"));
    EXPECT_TRUE(ev.has("pid"));
    EXPECT_TRUE(ev.has("tid"));
    const std::string ph = ev["ph"].as_string();
    EXPECT_TRUE(ph == "B" || ph == "E" || ph == "i") << ph;
    if (ph == "B") ++ph_balance[ev["name"].as_string()];
    if (ph == "E") --ph_balance[ev["name"].as_string()];
    if (ph == "i") {
      EXPECT_EQ(ev["s"].as_string(), "t");
    }
  }
  for (const auto& [name, balance] : ph_balance) {
    EXPECT_EQ(balance, 0) << "unbalanced B/E for " << name;
  }
  std::remove(path.c_str());
}

TEST_F(TraceCaptureTest, JsonlRoundTripsEveryField) {
  trace::set_enabled(true);
  trace::emit(trace::EventKind::kAbdRoundBegin, 5, 77, 3);
  trace::emit(trace::EventKind::kAbdQuorumReached, 5, 77, 3);
  trace::set_enabled(false);
  const trace::Drained drained = trace::drain_all();
  ASSERT_EQ(drained.events.size(), 2u);

  const std::string path = "trace_test.jsonl";
  ASSERT_TRUE(trace::write_jsonl(path, drained.events));
  std::ifstream in(path);
  std::string line;
  std::size_t i = 0;
  while (std::getline(in, line)) {
    const trace::json::Value obj = trace::json::parse(line);
    ASSERT_LT(i, drained.events.size());
    EXPECT_EQ(obj["ts"].as_u64(), drained.events[i].ts_ns);
    EXPECT_EQ(obj["kind"].as_string(),
              trace::kind_name(drained.events[i].kind));
    EXPECT_EQ(obj["pid"].as_u64(), drained.events[i].pid);
    EXPECT_EQ(obj["tid"].as_u64(), drained.events[i].tid);
    EXPECT_EQ(obj["a0"].as_u64(), drained.events[i].a0);
    EXPECT_EQ(obj["a1"].as_u64(), drained.events[i].a1);
    ++i;
  }
  EXPECT_EQ(i, 2u);
  std::remove(path.c_str());
}

#if defined(ASNAP_TRACE) && ASNAP_TRACE

// -- instrumented algorithms under the deterministic scheduler ---------------

TEST_F(TraceCaptureTest, StarvedUnboundedScanEmitsPairedCollectsWithinBound) {
  constexpr std::size_t kN = 4;
  core::UnboundedSwSnapshot<std::uint64_t> snap(kN, 0);
  trace::set_enabled(true);

  std::atomic<bool> scanner_done{false};
  std::vector<std::function<void()>> bodies;
  bodies.push_back([&] {
    (void)snap.scan(0);
    scanner_done.store(true, std::memory_order_relaxed);
  });
  for (std::size_t p = 1; p < kN; ++p) {
    bodies.push_back([&, pid = static_cast<ProcessId>(p)] {
      std::uint64_t it = 0;
      while (!scanner_done.load(std::memory_order_relaxed)) {
        snap.update(pid, ++it);
      }
    });
  }
  // One scanner step in seven: the adversarial schedule behind E6.
  sched::StarvePolicy policy(0, 7);
  sched::SimScheduler scheduler(policy);
  scheduler.run(std::move(bodies));
  trace::set_enabled(false);

  const trace::Drained drained = trace::drain_all();
  EXPECT_EQ(drained.dropped, 0u);
  ASSERT_FALSE(drained.events.empty());

  // Scanner events all carry pid 0 and one tid; find that thread's stream.
  std::uint64_t collect_begins = 0;
  std::uint64_t collect_ends = 0;
  std::map<std::uint32_t, int> open_collects_by_tid;
  std::vector<const trace::TraceEvent*> scan_ends;
  for (const auto& ev : drained.events) {
    if (ev.pid != 0) continue;  // updater traffic (embedded scans included)
    switch (ev.kind) {
      case trace::EventKind::kCollectBegin:
        ++collect_begins;
        EXPECT_EQ(open_collects_by_tid[ev.tid], 0)
            << "nested collect on one thread";
        ++open_collects_by_tid[ev.tid];
        break;
      case trace::EventKind::kCollectEnd:
        ++collect_ends;
        --open_collects_by_tid[ev.tid];
        EXPECT_EQ(open_collects_by_tid[ev.tid], 0);
        break;
      case trace::EventKind::kScanEnd:
        scan_ends.push_back(&ev);
        break;
      default:
        break;
    }
  }
  // Every collect that began also ended, in strict begin/end alternation.
  EXPECT_EQ(collect_begins, collect_ends);
  EXPECT_GT(collect_begins, 0u);

  // The explicit scan by process 0 finished within the pigeonhole bound:
  // at most n+1 double collects (Lemma 3.4), i.e. 2(n+1) single collects.
  ASSERT_FALSE(scan_ends.empty());
  for (const auto* end : scan_ends) {
    EXPECT_LE(end->a0, kN + 1) << "scan exceeded the n+1 bound";
  }
  EXPECT_LE(collect_begins, 2 * (kN + 1) * scan_ends.size());
}

TEST_F(TraceCaptureTest, DisabledTracingEmitsNothing) {
  // Default state: enabled() is false, the macro short-circuits.
  core::UnboundedSwSnapshot<std::uint64_t> snap(2, 0);
  snap.update(1, 42);
  (void)snap.scan(0);
  const trace::Drained drained = trace::drain_all();
  EXPECT_TRUE(drained.events.empty());
}

#endif  // ASNAP_TRACE

}  // namespace
