// Round-trip and error-handling tests for the history text format.
#include <gtest/gtest.h>

#include "lin/history.hpp"
#include "lin/history_io.hpp"
#include "lin/snapshot_checker.hpp"

namespace asnap::lin {
namespace {

History sample() {
  History h;
  h.num_words = 2;
  h.updates.push_back({0, 0, Tag{0, 1}, 0, 1});
  h.updates.push_back({1, 1, Tag{1, 1}, 2, 5});
  h.scans.push_back({1, {Tag{0, 1}, Tag{}}, 3, 4});
  h.scans.push_back({0, {Tag{0, 1}, Tag{1, 1}}, 6, 7});
  return h;
}

TEST(HistoryIo, RoundTripsExactly) {
  const History original = sample();
  const std::string text = dump_history(original);
  std::string error;
  const auto parsed = parse_history(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->num_words, original.num_words);
  ASSERT_EQ(parsed->updates.size(), original.updates.size());
  ASSERT_EQ(parsed->scans.size(), original.scans.size());
  for (std::size_t i = 0; i < original.updates.size(); ++i) {
    EXPECT_EQ(parsed->updates[i].proc, original.updates[i].proc);
    EXPECT_EQ(parsed->updates[i].word, original.updates[i].word);
    EXPECT_EQ(parsed->updates[i].tag, original.updates[i].tag);
    EXPECT_EQ(parsed->updates[i].inv, original.updates[i].inv);
    EXPECT_EQ(parsed->updates[i].res, original.updates[i].res);
  }
  for (std::size_t i = 0; i < original.scans.size(); ++i) {
    EXPECT_EQ(parsed->scans[i].view, original.scans[i].view);
  }
  // Checker verdict survives the round trip.
  EXPECT_EQ(check_single_writer(original).has_value(),
            check_single_writer(*parsed).has_value());
}

TEST(HistoryIo, ParsesCommentsAndBlankLines) {
  const std::string text =
      "# comment\n"
      "\n"
      "words 1\n"
      "U 0 0 0 1 0 1   # trailing comment\n"
      "S 1 2 3 0:1\n";
  const auto parsed = parse_history(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->updates.size(), 1u);
  EXPECT_EQ(parsed->scans.size(), 1u);
  EXPECT_EQ(parsed->scans[0].view[0], (Tag{0, 1}));
}

TEST(HistoryIo, InitialTagDash) {
  const auto parsed = parse_history("words 2\nS 0 0 1 - -\n");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->scans[0].view[0].is_initial());
  EXPECT_TRUE(parsed->scans[0].view[1].is_initial());
}

TEST(HistoryIo, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(parse_history("", &error).has_value());
  EXPECT_FALSE(parse_history("U 0 0 0 1 0 1\n", &error).has_value());
  EXPECT_FALSE(parse_history("words 0\n", &error).has_value());
  EXPECT_FALSE(parse_history("words 1\nS 0 0 1 0:1 0:2\n", &error)
                   .has_value());  // width mismatch
  EXPECT_FALSE(parse_history("words 1\nS 0 0 1 garbage\n", &error)
                   .has_value());
  EXPECT_FALSE(parse_history("words 1\nX 1 2 3\n", &error).has_value());
  EXPECT_FALSE(parse_history("words 1\nU 0 0 0 0 0 1\n", &error)
                   .has_value());  // seq 0 reserved for initial
}

}  // namespace
}  // namespace asnap::lin
