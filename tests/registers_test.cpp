// Unit tests for the register substrate (reg/): small and big atomic
// registers, SWMR arrays, handshake matrix, and both MWMR constructions.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/instrumentation.hpp"
#include "reg/big_register.hpp"
#include "reg/handshake.hpp"
#include "reg/mwmr_register.hpp"
#include "reg/register_array.hpp"
#include "reg/small_register.hpp"

namespace asnap::reg {
namespace {

TEST(SmallRegister, ReadsBackWrites) {
  SmallAtomicRegister<int> r(5);
  EXPECT_EQ(r.read(), 5);
  r.write(-3);
  EXPECT_EQ(r.read(), -3);
}

TEST(SmallRegister, CountsPrimitiveSteps) {
  SmallAtomicRegister<int> r(0);
  StepMeter meter;
  r.write(1);
  (void)r.read();
  (void)r.read();
  EXPECT_EQ(meter.elapsed().writes, 1u);
  EXPECT_EQ(meter.elapsed().reads, 2u);
}

TEST(BigRegister, ReadsBackWideValues) {
  struct Wide {
    std::string s;
    std::vector<int> v;
  };
  BigAtomicRegister<Wide> r(Wide{"init", {1, 2, 3}});
  EXPECT_EQ(r.read().s, "init");
  r.write(Wide{"updated", {4, 5}});
  EXPECT_EQ(r.read().s, "updated");
  EXPECT_EQ(r.read().v, (std::vector<int>{4, 5}));
}

TEST(BigRegister, CountsPrimitiveSteps) {
  BigAtomicRegister<std::vector<int>> r(std::vector<int>{});
  StepMeter meter;
  r.write({1});
  (void)r.read();
  EXPECT_EQ(meter.elapsed().writes, 1u);
  EXPECT_EQ(meter.elapsed().reads, 1u);
}

// Single-writer regularity under concurrency: a reader never observes a
// value that was never written, and the sequence it observes is monotone
// (writes carry increasing stamps).
TEST(BigRegister, MonotoneUnderSingleWriter) {
  BigAtomicRegister<std::uint64_t> r(0);
  std::atomic<bool> stop{false};
  constexpr std::uint64_t kWrites = 50000;

  std::vector<std::jthread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      std::uint64_t last = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const std::uint64_t v = r.read();
        ASSERT_GE(v, last) << "register went backwards";
        ASSERT_LE(v, kWrites);
        last = v;
      }
    });
  }
  for (std::uint64_t i = 1; i <= kWrites; ++i) r.write(i);
  stop.store(true, std::memory_order_release);
}

TEST(RegisterArray, ReadWritePerOwner) {
  SharedMemoryRegisterArray<int> array(4, 0);
  EXPECT_EQ(array.size(), 4u);
  array.write(2, 22);
  array.write(0, 10);
  EXPECT_EQ(array.read(2, 1), 22);
  EXPECT_EQ(array.read(0, 3), 10);
  EXPECT_EQ(array.read(1, 0), 0);
}

TEST(RegisterArray, SatisfiesConcept) {
  static_assert(SwmrRegisterArray<SharedMemoryRegisterArray<int>, int>);
  SUCCEED();
}

TEST(Handshake, PerPairBitsAreIndependent) {
  HandshakeMatrix hs(3);
  EXPECT_FALSE(hs.read(0, 1));
  hs.write(0, 1, true);
  hs.write(1, 0, true);
  EXPECT_TRUE(hs.read(0, 1));
  EXPECT_TRUE(hs.read(1, 0));
  EXPECT_FALSE(hs.read(0, 2));
  EXPECT_FALSE(hs.read(2, 0));
  hs.write(0, 1, false);
  EXPECT_FALSE(hs.read(0, 1));
  EXPECT_TRUE(hs.read(1, 0));
}

TEST(Handshake, EachBitOpIsOneStep) {
  HandshakeMatrix hs(2);
  StepMeter meter;
  hs.write(0, 1, true);
  (void)hs.read(0, 1);
  EXPECT_EQ(meter.elapsed().writes, 1u);
  EXPECT_EQ(meter.elapsed().reads, 1u);
}

TEST(DirectMwmr, ReadsBackLastWrite) {
  DirectMwmrRegister<int> r(4, 0);
  r.write(1, 11);
  EXPECT_EQ(r.read(0), 11);
  r.write(3, 33);
  EXPECT_EQ(r.read(2), 33);
}

TEST(VaMwmr, ReadsBackLastWrite) {
  VitanyiAwerbuchMwmr<int> r(4, 0);
  EXPECT_EQ(r.read(0), 0);
  r.write(1, 11);
  EXPECT_EQ(r.read(2), 11);
  r.write(3, 33);
  EXPECT_EQ(r.read(0), 33);
}

TEST(VaMwmr, LaterWriteWinsAcrossProcesses) {
  VitanyiAwerbuchMwmr<int> r(3, 0);
  r.write(0, 1);
  r.write(1, 2);  // sees tag of write(0,1), picks a larger one
  r.write(2, 3);
  EXPECT_EQ(r.read(0), 3);
  EXPECT_EQ(r.read(1), 3);
}

TEST(VaMwmr, CostIsLinearInProcessCount) {
  for (std::size_t n : {2u, 4u, 8u}) {
    VitanyiAwerbuchMwmr<int> r(n, 0);
    StepMeter meter;
    r.write(0, 7);
    // write = n SWMR reads (collect) + 1 SWMR write
    EXPECT_EQ(meter.elapsed().reads, n);
    EXPECT_EQ(meter.elapsed().writes, 1u);
    meter.reset();
    (void)r.read(1);
    // read = n SWMR reads + 1 write-back
    EXPECT_EQ(meter.elapsed().reads, n);
    EXPECT_EQ(meter.elapsed().writes, 1u);
  }
}

// New/old inversion probe: two readers repeatedly read while one writer
// increments. Each reader's observed sequence must be monotone, and the
// pair must never disagree on the order of values they both saw (guaranteed
// by the write-back making reads atomic, not just regular).
TEST(VaMwmr, ReadsAreMonotoneUnderConcurrency) {
  VitanyiAwerbuchMwmr<std::uint64_t> r(4, 0);
  std::atomic<bool> stop{false};
  constexpr std::uint64_t kWrites = 20000;

  std::vector<std::jthread> readers;
  for (ProcessId pid : {ProcessId{1}, ProcessId{2}, ProcessId{3}}) {
    readers.emplace_back([&, pid] {
      std::uint64_t last = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const std::uint64_t v = r.read(pid);
        ASSERT_GE(v, last);
        last = v;
      }
    });
  }
  for (std::uint64_t i = 1; i <= kWrites; ++i) r.write(0, i);
  stop.store(true, std::memory_order_release);
}

TEST(MwmrConcepts, BothImplementationsSatisfyConcept) {
  static_assert(MwmrRegister<DirectMwmrRegister<int>, int>);
  static_assert(MwmrRegister<VitanyiAwerbuchMwmr<int>, int>);
  SUCCEED();
}

}  // namespace
}  // namespace asnap::reg
