// Correctness tests for the bounded multi-writer snapshot (Figure 4),
// including the compound instantiation over MWMR-from-SWMR registers, with
// multi-writer workloads checked by the sound forced-edge checker and small
// histories checked exactly by the Wing-Gong oracle.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/snapshot.hpp"
#include "harness.hpp"
#include "lin/snapshot_checker.hpp"
#include "lin/wing_gong.hpp"
#include "reg/mwmr_register.hpp"

namespace asnap {
namespace {

using lin::Tag;

using DirectMw = core::BoundedMwSnapshot<Tag, reg::DirectMwmrRegister>;
using CompoundMw = core::BoundedMwSnapshot<Tag, reg::VitanyiAwerbuchMwmr>;
using LayeredMw = core::LayeredMwSnapshot<Tag>;

template <typename S>
struct MwSnapshotTest : public ::testing::Test {};

using MwImpls = ::testing::Types<DirectMw, CompoundMw, LayeredMw>;
TYPED_TEST_SUITE(MwSnapshotTest, MwImpls);

TYPED_TEST(MwSnapshotTest, InitialScanReturnsInitialValues) {
  TypeParam snap(3, 5, Tag{});
  const std::vector<Tag> view = snap.scan(1);
  ASSERT_EQ(view.size(), 5u);
  for (const Tag& t : view) EXPECT_TRUE(t.is_initial());
}

TYPED_TEST(MwSnapshotTest, AnyProcessWritesAnyWord) {
  TypeParam snap(3, 4, Tag{});
  snap.update(0, 3, Tag{0, 1});
  snap.update(2, 0, Tag{2, 1});
  snap.update(1, 3, Tag{1, 1});  // overwrites P0's value in word 3
  const std::vector<Tag> view = snap.scan(0);
  EXPECT_EQ(view[0], (Tag{2, 1}));
  EXPECT_TRUE(view[1].is_initial());
  EXPECT_TRUE(view[2].is_initial());
  EXPECT_EQ(view[3], (Tag{1, 1}));
}

TYPED_TEST(MwSnapshotTest, FewerWordsThanProcesses) {
  TypeParam snap(4, 2, Tag{});
  snap.update(3, 1, Tag{3, 1});
  EXPECT_EQ(snap.scan(2)[1], (Tag{3, 1}));
}

TYPED_TEST(MwSnapshotTest, MoreWordsThanProcesses) {
  TypeParam snap(2, 8, Tag{});
  for (std::size_t k = 0; k < 8; ++k) {
    snap.update(0, k, Tag{0, k + 1});
  }
  const std::vector<Tag> view = snap.scan(1);
  for (std::size_t k = 0; k < 8; ++k) {
    EXPECT_EQ(view[k], (Tag{0, k + 1}));
  }
}

TYPED_TEST(MwSnapshotTest, RepeatedWritesToSameWordByOneProcess) {
  TypeParam snap(2, 1, Tag{});
  for (std::uint64_t s = 1; s <= 20; ++s) snap.update(0, 0, Tag{0, s});
  EXPECT_EQ(snap.scan(1)[0], (Tag{0, 20}));
}

TYPED_TEST(MwSnapshotTest, StressHistoriesPassForcedEdgeChecker) {
  for (const std::size_t words : {2u, 5u}) {
    TypeParam snap(4, words, Tag{});
    testing::WorkloadConfig cfg;
    cfg.processes = 4;
    cfg.ops_per_process = 120;
    cfg.scan_prob = 0.4;
    cfg.seed = 1000 + words;
    cfg.yield_prob = 0.25;
    const lin::History history = testing::run_mw_workload(snap, cfg);
    const auto violation = lin::check_multi_writer_forced(history);
    ASSERT_FALSE(violation.has_value()) << "words=" << words << ": "
                                        << *violation;
  }
}

TYPED_TEST(MwSnapshotTest, TinyMwHistoriesPassTheExhaustiveOracle) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    TypeParam snap(3, 2, Tag{});
    testing::WorkloadConfig cfg;
    cfg.processes = 3;
    cfg.ops_per_process = 4;
    cfg.scan_prob = 0.5;
    cfg.seed = seed;
    const lin::History history = testing::run_mw_workload(snap, cfg);
    EXPECT_EQ(lin::wing_gong_check(history, 30), lin::WgVerdict::kLinearizable)
        << "seed " << seed;
  }
}

TYPED_TEST(MwSnapshotTest, PigeonholeBoundOnDoubleCollects) {
  constexpr std::size_t kN = 3;
  TypeParam snap(kN, 4, Tag{});
  testing::WorkloadConfig cfg;
  cfg.processes = kN;
  cfg.ops_per_process = 400;
  cfg.scan_prob = 0.4;
  cfg.seed = 4242;
  cfg.yield_prob = 0.3;
  (void)testing::run_mw_workload(snap, cfg);
  for (ProcessId p = 0; p < kN; ++p) {
    // Section 5: at most 2n+1 double collects before success or borrow.
    EXPECT_LE(snap.stats(p).max_double_collects, 2 * kN + 1) << "P" << p;
  }
}

TYPED_TEST(MwSnapshotTest, SingleWriterUsagePassesExactChecker) {
  // Run Figure 4 through the single-writer pattern (process i writes only
  // word i) so the exact polynomial checker applies end-to-end.
  constexpr std::size_t kN = 4;
  TypeParam snap(kN, kN, Tag{});
  core::SingleWriterAdapter<TypeParam> adapter(snap);
  testing::WorkloadConfig cfg;
  cfg.processes = kN;
  cfg.ops_per_process = 150;
  cfg.scan_prob = 0.5;
  cfg.seed = 31337;
  cfg.yield_prob = 0.25;
  const lin::History history = testing::run_sw_workload(adapter, cfg);
  const auto violation = lin::check_single_writer(history);
  ASSERT_FALSE(violation.has_value()) << *violation;
}

// The compound construction must be built from SWMR primitives only: its
// per-operation SWMR step count is what E7 measures. Sanity-check the cost
// relation here: a compound scan costs ~(m+1)x the SWMR steps of the direct
// version's MWMR ops (each MWMR op expands to n+1 SWMR ops).
TEST(CompoundMwSnapshot, ExpandsEachMwmrOpIntoSwmrOps) {
  constexpr std::size_t kN = 4;
  constexpr std::size_t kM = 4;
  DirectMw direct(kN, kM, Tag{});
  CompoundMw compound(kN, kM, Tag{});

  StepMeter meter;
  (void)direct.scan(0);
  const std::uint64_t direct_steps = meter.elapsed().total();

  meter.reset();
  (void)compound.scan(0);
  const std::uint64_t compound_steps = meter.elapsed().total();

  // Uncontended scan: one double collect. Direct: 2m MWMR reads + 3n
  // handshake ops. Compound: each of the 2m MWMR reads becomes n+1 SWMR
  // ops. The compound cost must clearly exceed the direct cost.
  EXPECT_GT(compound_steps, direct_steps + 2 * kM * (kN - 1));
}

}  // namespace
}  // namespace asnap
