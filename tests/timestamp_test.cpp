// Tests for the snapshot-based concurrent timestamp system: the ordering
// property (sequential label() calls yield strictly increasing stamps, even
// across processes) under both sequential use and real concurrency.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "apps/timestamp.hpp"
#include "common/instrumentation.hpp"
#include "common/rng.hpp"
#include "harness.hpp"
#include "lin/history.hpp"

namespace asnap::apps {
namespace {

TEST(Timestamp, SequentialLabelsStrictlyIncrease) {
  TimestampSystem ts(3);
  TimestampSystem::Stamp last{0, 0};
  for (int i = 0; i < 30; ++i) {
    const auto pid = static_cast<ProcessId>(i % 3);
    const TimestampSystem::Stamp stamp = ts.label(pid);
    EXPECT_TRUE(last < stamp) << "iteration " << i;
    last = stamp;
  }
}

TEST(Timestamp, CurrentReflectsLatestLabel) {
  TimestampSystem ts(2);
  const auto stamp = ts.label(1);
  EXPECT_EQ(ts.current(1), stamp);
  EXPECT_EQ(ts.current(0).label, 0u);
}

TEST(Timestamp, StampsTotallyOrderedByLabelThenPid) {
  using Stamp = TimestampSystem::Stamp;
  EXPECT_TRUE((Stamp{1, 2} < Stamp{2, 0}));
  EXPECT_TRUE((Stamp{1, 0} < Stamp{1, 1}));
  EXPECT_FALSE((Stamp{2, 0} < Stamp{1, 5}));
}

// The timestamp ordering property under concurrency: if acquisition A
// completed before acquisition B began (real time), then A's stamp < B's
// stamp. Record (stamp, inv, res) tuples and check all real-time-ordered
// pairs.
TEST(Timestamp, RealTimeOrderImpliesStampOrder) {
  constexpr std::size_t kN = 4;
  constexpr int kPerProc = 60;
  TimestampSystem ts(kN);
  lin::Recorder clock(1);  // used only for its logical clock

  struct Acquired {
    TimestampSystem::Stamp stamp;
    lin::Time inv;
    lin::Time res;
  };
  std::mutex mu;
  std::vector<Acquired> all;
  {
    std::vector<std::jthread> threads;
    for (std::size_t p = 0; p < kN; ++p) {
      threads.emplace_back([&, pid = static_cast<ProcessId>(p)] {
        testing::ChaosYield chaos{Rng(pid + 5), 0.2};
        ScopedStepHook hook(&testing::ChaosYield::hook, &chaos);
        for (int i = 0; i < kPerProc; ++i) {
          const lin::Time inv = clock.tick();
          const TimestampSystem::Stamp stamp = ts.label(pid);
          const lin::Time res = clock.tick();
          std::lock_guard lock(mu);
          all.push_back(Acquired{stamp, inv, res});
        }
      });
    }
  }
  ASSERT_EQ(all.size(), kN * kPerProc);

  // All stamps distinct.
  std::vector<TimestampSystem::Stamp> stamps;
  for (const Acquired& a : all) stamps.push_back(a.stamp);
  std::sort(stamps.begin(), stamps.end());
  for (std::size_t i = 1; i < stamps.size(); ++i) {
    EXPECT_FALSE(stamps[i] == stamps[i - 1]) << "duplicate stamp";
  }

  // Real-time order respected.
  for (const Acquired& a : all) {
    for (const Acquired& b : all) {
      if (a.res < b.inv) {
        EXPECT_TRUE(a.stamp < b.stamp)
            << "acquisition finished before another began but got a larger "
               "stamp";
      }
    }
  }
}

}  // namespace
}  // namespace asnap::apps
