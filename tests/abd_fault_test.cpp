// Lossy-network fault matrix for the ABD emulation (extends experiment E9).
//
// The retransmitting client rounds must keep snapshot operations live AND
// atomic while the network drops, duplicates and delays messages; with no
// majority reachable they must fail gracefully (timeout result, no hang, no
// assert); crashed nodes must be able to recover() and resynchronize their
// replicas from a majority before serving again. Every case is seeded, so a
// failure replays.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "abd/abd_register.hpp"
#include "abd/abd_snapshot.hpp"
#include "common/instrumentation.hpp"
#include "lin/history.hpp"
#include "lin/snapshot_checker.hpp"

namespace asnap::abd {
namespace {

using namespace std::chrono_literals;
using lin::Tag;

/// Timing knobs for fault runs: retransmit quickly (the simulated network
/// round-trips in microseconds) but give each operation a budget that only a
/// genuinely unreachable majority exhausts.
AbdConfig fault_config() {
  AbdConfig config;
  config.initial_rto = 500us;
  config.max_rto = 8ms;
  config.op_deadline = 30s;
  return config;
}

struct FaultCase {
  double drop;
  bool dup;
  std::size_t nodes;
  int ops_per_thread;
};

/// Concurrent update/scan workload over MessagePassingSnapshot under the
/// given fault plan; the recorded history must satisfy the single-writer
/// snapshot checker (atomicity), and with duplication enabled the
/// per-responder dedup must have discarded something.
void run_matrix_case(const FaultCase& fc, std::uint64_t seed) {
  SCOPED_TRACE(::testing::Message()
               << "drop=" << fc.drop << " dup=" << fc.dup << " n=" << fc.nodes
               << " seed=" << seed);
  MessagePassingSnapshot<Tag> snap(fc.nodes, Tag{}, seed, fault_config());
  net::FaultPlan plan;
  plan.drop_prob = fc.drop;
  plan.dup_prob = fc.dup ? 0.3 : 0.0;
  plan.delay_prob = 0.1;  // a slice of surviving traffic is also delayed
  plan.min_delay = 100us;
  plan.max_delay = 2ms;
  snap.set_fault_plan(plan);

  const std::size_t threads = std::min<std::size_t>(4, fc.nodes);
  lin::Recorder recorder(fc.nodes);
  {
    std::vector<std::jthread> workers;
    for (std::size_t p = 0; p < threads; ++p) {
      workers.emplace_back([&, pid = static_cast<ProcessId>(p)] {
        std::uint64_t seq = 0;
        for (int op = 0; op < fc.ops_per_thread; ++op) {
          if (op % 2 == 0) {
            const lin::Time inv = recorder.tick();
            snap.update(pid, Tag{pid, ++seq});
            const lin::Time res = recorder.tick();
            recorder.add_update(pid, pid, Tag{pid, seq}, inv, res);
          } else {
            const lin::Time inv = recorder.tick();
            std::vector<Tag> view = snap.scan(pid);
            const lin::Time res = recorder.tick();
            recorder.add_scan(pid, std::move(view), inv, res);
          }
        }
      });
    }
  }
  const lin::History history = recorder.take();
  EXPECT_EQ(history.total_ops(),
            static_cast<std::size_t>(fc.ops_per_thread) * threads);
  const auto violation = lin::check_single_writer(history);
  ASSERT_FALSE(violation.has_value()) << *violation;
  if (fc.drop > 0.0) {
    EXPECT_GT(snap.retransmits_sent(), 0u)
        << "a lossy run must have exercised the retransmission path";
  }
  if (fc.dup) {
    EXPECT_GT(snap.dup_replies_ignored(), 0u)
        << "duplication must have exercised the per-responder dedup";
  }
}

TEST(AbdFaultMatrix, NoLossBaselineN3) {
  run_matrix_case({0.0, false, 3, 12}, 0xA1);
}

TEST(AbdFaultMatrix, NoLossDuplicationN3) {
  run_matrix_case({0.0, true, 3, 12}, 0xA2);
}

TEST(AbdFaultMatrix, Drop10N3) { run_matrix_case({0.1, false, 3, 12}, 0xA3); }

TEST(AbdFaultMatrix, Drop10DuplicationN5) {
  run_matrix_case({0.1, true, 5, 12}, 0xA4);
}

TEST(AbdFaultMatrix, Drop30N5) { run_matrix_case({0.3, false, 5, 12}, 0xA5); }

// The ISSUE acceptance scenario: 30% per-link drop + duplication on a 5-node
// cluster, 4 threads, >= 200 operations, no deadlock/assert, history atomic.
TEST(AbdFaultMatrix, AcceptanceDrop30DuplicationN5With200Ops) {
  run_matrix_case({0.3, true, 5, 50}, 0xACCE);
}

// Register-level soundness under loss+duplication: single-writer registers
// written with increasing values must never appear to go backwards at any
// reader, and the owner always reads back its own latest write.
TEST(AbdFaultMatrix, RegistersMonotoneUnderLossAndDuplication) {
  constexpr std::size_t kNodes = 3;
  AbdCluster<std::uint64_t> cluster(kNodes, kNodes, 0, 0xB1, fault_config());
  cluster.set_fault_plan(net::FaultPlan{.drop_prob = 0.2, .dup_prob = 0.3});
  std::vector<std::jthread> workers;
  for (std::size_t p = 0; p < kNodes; ++p) {
    workers.emplace_back([&, id = static_cast<net::NodeId>(p)] {
      std::vector<std::uint64_t> last_seen(kNodes, 0);
      for (std::uint64_t v = 1; v <= 30; ++v) {
        cluster.write(id, id, v);
        ASSERT_EQ(cluster.read(id, id), v) << "owner must read its own write";
        for (std::size_t r = 0; r < kNodes; ++r) {
          const std::uint64_t seen = cluster.read(r, id);
          ASSERT_GE(seen, last_seen[r]) << "atomic register went backwards";
          last_seen[r] = seen;
        }
      }
    });
  }
}

// --- graceful degradation ----------------------------------------------------

TEST(AbdFault, NoMajorityTimesOutGracefullyWithinDeadline) {
  AbdConfig config;
  config.initial_rto = 500us;
  config.max_rto = 4ms;
  config.op_deadline = 100ms;
  AbdCluster<int> cluster(5, 1, 0, 0xC1, config);
  cluster.write(0, 0, 7);
  cluster.crash(2);
  cluster.crash(3);
  cluster.crash(4);  // 3 of 5 down: no majority anywhere

  const auto start = std::chrono::steady_clock::now();
  const std::optional<int> read = cluster.try_read(0, 0);
  const OpStatus write_status = cluster.try_write(0, 0, 8);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_FALSE(read.has_value()) << "no majority: read must not succeed";
  EXPECT_EQ(write_status, OpStatus::kTimeout);
  EXPECT_LT(elapsed, 5s) << "timeout must respect the configured deadline";
  EXPECT_GE(cluster.round_timeouts(), 2u);

  // Recover one node: a majority (3 of 5) is back and operations succeed.
  ASSERT_TRUE(cluster.recover(2));
  const std::optional<int> after = cluster.try_read(0, 1);
  ASSERT_TRUE(after.has_value());
  // A timed-out write has INDETERMINATE effect (quorum systems cannot
  // abort): the 8 reached the two live replicas, so a later majority read
  // may observe either the acked 7 or the leaked 8 — never anything else.
  EXPECT_TRUE(*after == 7 || *after == 8) << "got " << *after;
  // A successful write settles the register again.
  EXPECT_EQ(cluster.try_write(0, 0, 9), OpStatus::kOk);
  EXPECT_EQ(cluster.try_read(0, 1), std::optional<int>(9));
}

TEST(AbdFault, MinorityPartitionTimesOutUntilHeal) {
  AbdConfig config;
  config.initial_rto = 500us;
  config.max_rto = 4ms;
  config.op_deadline = 100ms;
  AbdCluster<int> cluster(5, 1, 0, 0xC2, config);
  cluster.partition({{0, 1, 2}, {3, 4}});
  cluster.write(0, 0, 5);  // majority side keeps working
  EXPECT_EQ(cluster.try_read(0, 1), std::optional<int>(5));
  EXPECT_FALSE(cluster.try_read(0, 3).has_value())
      << "minority side must time out, not hang";
  cluster.heal();
  EXPECT_EQ(cluster.try_read(0, 3), std::optional<int>(5));
}

// --- crash recovery ----------------------------------------------------------

TEST(AbdFault, RecoverResynchronizesReplicasFromMajority) {
  AbdCluster<int> cluster(3, 2, 0, 0xD1, fault_config());
  cluster.write(0, 0, 1);
  cluster.crash(2);
  cluster.write(0, 0, 2);   // node 2 misses ts=2 while down
  cluster.write(1, 1, 10);  // and the other register's first write

  ASSERT_TRUE(cluster.recover(2));
  // The resync quorum reads brought node 2's replicas up to the latest
  // majority-acked timestamps before it resumed serving.
  EXPECT_EQ(cluster.replica_ts(2, 0), 2u);
  EXPECT_EQ(cluster.replica_ts(2, 1), 1u);

  // The recovered node now sustains a majority with node 1 alone.
  cluster.crash(0);
  EXPECT_EQ(cluster.try_read(0, 1), std::optional<int>(2));
  EXPECT_EQ(cluster.try_read(1, 1), std::optional<int>(10));
}

TEST(AbdFault, RecoverFailsGracefullyWithoutMajority) {
  AbdConfig config;
  config.initial_rto = 500us;
  config.max_rto = 4ms;
  config.op_deadline = 50ms;
  AbdCluster<int> cluster(5, 1, 0, 0xD2, config);
  cluster.crash(1);
  cluster.crash(2);
  cluster.crash(3);
  cluster.crash(4);
  // Node 4's resync quorum is itself plus majority()-1 = 2 distinct other
  // replicas, but only node 0 is up: recover must fail and re-crash, and
  // the cluster must stay responsive (timeouts, not hangs).
  EXPECT_FALSE(cluster.recover(4));
  EXPECT_EQ(cluster.alive_count(), 1u);
  EXPECT_FALSE(cluster.try_read(0, 0).has_value());
}

TEST(AbdFault, RecoverSucceedsOnceResyncQuorumIsReachable) {
  AbdCluster<int> cluster(5, 1, 0, 0xD3, fault_config());
  cluster.write(0, 0, 4);
  cluster.crash(2);
  cluster.crash(3);
  cluster.crash(4);
  // Nodes 0 and 1 are up: node 4's resync quorum {4, 0, 1} is reachable,
  // and its return restores the cluster's majority.
  ASSERT_TRUE(cluster.recover(4));
  EXPECT_EQ(cluster.alive_count(), 3u);
  EXPECT_EQ(cluster.replica_ts(4, 0), 1u) << "resync must adopt ts=1";
  cluster.write(0, 0, 5);
  EXPECT_EQ(cluster.try_read(0, 1), std::optional<int>(5));
}

// A partition that opens up BETWEEN a scanner's two collects (the
// pigeonhole argument's most delicate moment) must not produce a stale
// view: the scan's quorum rounds retry until the link heals, survivors on
// the majority side stay linearizable throughout, and the blocked scan
// completes once restore_link() reconnects it.
TEST(AbdFault, PartitionThenHealMidScanStaysLinearizable) {
  constexpr std::size_t kN = 3;
  MessagePassingSnapshot<Tag> snap(kN, Tag{}, 0xF1, fault_config());
  lin::Recorder recorder(kN);

  // Fires on the scanner's own thread at every ABD register read; after the
  // first collect (kN reads) finishes, sever the scanner from everyone.
  struct MidScanCut {
    MessagePassingSnapshot<Tag>* snap;
    std::atomic<int> reads{0};
    std::atomic<bool> cut_done{false};
    static void hook(void* ctx, StepKind kind) {
      auto* self = static_cast<MidScanCut*>(ctx);
      if (kind != StepKind::kRegisterRead) return;
      // Fire on the (kN+1)-th read: the first collect (kN reads) has
      // completed and the second is about to start.
      if (self->reads.fetch_add(1, std::memory_order_relaxed) ==
          static_cast<int>(kN)) {
        self->snap->cut_link(0, 1);
        self->snap->cut_link(0, 2);
        self->cut_done.store(true, std::memory_order_release);
      }
    }
  } cut{&snap, {}, {}};

  std::atomic<bool> scan_returned{false};
  std::jthread scanner([&] {
    ScopedStepHook hook(&MidScanCut::hook, &cut);
    const lin::Time inv = recorder.tick();
    std::vector<Tag> view = snap.scan(0);  // blocks mid-scan at the cut
    const lin::Time res = recorder.tick();
    recorder.add_scan(0, std::move(view), inv, res);
    scan_returned.store(true, std::memory_order_release);
  });

  // Survivors (nodes 1 and 2 still see each other: a majority) keep
  // updating and scanning while node 0's scan is wedged on the partition.
  {
    std::vector<std::jthread> survivors;
    for (ProcessId p = 1; p < kN; ++p) {
      survivors.emplace_back([&, p] {
        std::uint64_t seq = 0;
        for (int op = 0; op < 16; ++op) {
          if (op % 2 == 0) {
            const lin::Time inv = recorder.tick();
            snap.update(p, Tag{p, ++seq});
            const lin::Time res = recorder.tick();
            recorder.add_update(p, p, Tag{p, seq}, inv, res);
          } else {
            const lin::Time inv = recorder.tick();
            std::vector<Tag> view = snap.scan(p);
            const lin::Time res = recorder.tick();
            recorder.add_scan(p, std::move(view), inv, res);
          }
        }
      });
    }
  }
  // The survivors finished a full workload; the cut scan must still be
  // parked (no majority for node 0), not returning garbage.
  ASSERT_TRUE(cut.cut_done.load(std::memory_order_acquire));
  EXPECT_FALSE(scan_returned.load(std::memory_order_acquire))
      << "scan must not complete while its node is partitioned away";

  std::this_thread::sleep_for(50ms);
  snap.restore_link(0, 1);
  snap.restore_link(0, 2);
  scanner.join();
  EXPECT_TRUE(scan_returned.load(std::memory_order_acquire));

  const auto violation = lin::check_single_writer(recorder.take());
  ASSERT_FALSE(violation.has_value()) << *violation;
}

// recover() used to assert that its target was crashed, so a supervisor and
// a fallback schedule racing to restart the same node would abort the
// process. Now the loser of the race (and any caller on a live node) gets a
// successful no-op.
TEST(AbdFault, DoubleRecoverIsASafeNoOp) {
  AbdCluster<int> cluster(3, 1, 0, 0xF2, fault_config());
  cluster.write(0, 0, 3);

  EXPECT_TRUE(cluster.recover(1)) << "recover of a live node is a no-op";

  cluster.crash(2);
  std::atomic<int> successes{0};
  {
    std::vector<std::jthread> racers;
    for (int t = 0; t < 2; ++t) {
      racers.emplace_back([&] {
        if (cluster.recover(2)) successes.fetch_add(1);
      });
    }
  }
  EXPECT_EQ(successes.load(), 2)
      << "both the winner and the no-op loser must report success";
  EXPECT_EQ(cluster.alive_count(), 3u);
  EXPECT_EQ(cluster.try_read(0, 2), std::optional<int>(3));
}

TEST(AbdFault, SnapshotStaysLinearizableAcrossCrashAndRecovery) {
  constexpr std::size_t kN = 5;
  MessagePassingSnapshot<Tag> snap(kN, Tag{}, 0xE1, fault_config());
  snap.set_fault_plan(net::FaultPlan{.drop_prob = 0.1, .dup_prob = 0.2});
  lin::Recorder recorder(kN);
  auto worker = [&](ProcessId pid, std::uint64_t& seq, int ops) {
    for (int op = 0; op < ops; ++op) {
      if (op % 2 == 0) {
        const lin::Time inv = recorder.tick();
        snap.update(pid, Tag{pid, ++seq});
        const lin::Time res = recorder.tick();
        recorder.add_update(pid, pid, Tag{pid, seq}, inv, res);
      } else {
        const lin::Time inv = recorder.tick();
        std::vector<Tag> view = snap.scan(pid);
        const lin::Time res = recorder.tick();
        recorder.add_scan(pid, std::move(view), inv, res);
      }
    }
  };

  std::vector<std::uint64_t> seq(kN, 0);
  {
    std::vector<std::jthread> phase1;
    for (ProcessId p = 0; p < 3; ++p) {
      phase1.emplace_back([&, p] { worker(p, seq[p], 8); });
    }
  }
  snap.crash(4);
  {
    std::vector<std::jthread> phase2;
    for (ProcessId p = 0; p < 3; ++p) {
      phase2.emplace_back([&, p] { worker(p, seq[p], 8); });
    }
  }
  ASSERT_TRUE(snap.recover(4));
  {
    std::vector<std::jthread> phase3;
    for (ProcessId p = 0; p < 4; ++p) {  // recovered node operates again
      phase3.emplace_back([&, p] { worker(p, seq[p], 8); });
    }
  }
  const auto violation = lin::check_single_writer(recorder.take());
  ASSERT_FALSE(violation.has_value()) << *violation;
}

// --- the one-round fast read under faults (E16) ------------------------------
//
// The fast path's fallback boundary must engage exactly where the stability
// evidence runs out: quorums straddling a half-propagated write, replicas
// the breaker suspects, and replies from stale incarnations. Each case runs
// a seeded workload and demands BOTH that the history stays atomic and that
// the boundary was actually exercised (counters), so a regression that
// quietly stops falling back — or quietly stops going fast — trips here
// before it trips a linearizability checker somewhere downstream.

// (a) Concurrent writes racing fast reads through a dropping+delaying
// network: write rounds stop retransmitting once a majority acks, so slow
// replicas permanently miss writes and read quorums straddle the
// propagation front — ts disagreement — while ~drop_prob of the
// fire-and-forget confirms vanish — no stability bit. Both force the
// two-round fallback; the history must stay atomic through the mix of
// one-round and two-round reads.
TEST(FastReadFault, ConcurrentWritesForceFallbacksAndStayLinearizable) {
  constexpr std::size_t kN = 5;
  MessagePassingSnapshot<Tag> snap(kN, Tag{}, 0xFA57, fault_config());
  net::FaultPlan plan;
  plan.drop_prob = 0.3;
  plan.dup_prob = 0.2;
  plan.delay_prob = 0.3;
  plan.min_delay = 100us;
  plan.max_delay = 2ms;
  snap.set_fault_plan(plan);

  lin::Recorder recorder(kN);
  {
    std::vector<std::jthread> workers;
    for (std::size_t p = 0; p < 4; ++p) {
      workers.emplace_back([&, pid = static_cast<ProcessId>(p)] {
        std::uint64_t seq = 0;
        for (int op = 0; op < 40; ++op) {
          if (op % 4 == 0) {  // read-heavy: 3 scans per update
            const lin::Time inv = recorder.tick();
            snap.update(pid, Tag{pid, ++seq});
            const lin::Time res = recorder.tick();
            recorder.add_update(pid, pid, Tag{pid, seq}, inv, res);
          } else {
            const lin::Time inv = recorder.tick();
            std::vector<Tag> view = snap.scan(pid);
            const lin::Time res = recorder.tick();
            recorder.add_scan(pid, std::move(view), inv, res);
          }
        }
      });
    }
  }
  const auto violation = lin::check_single_writer(recorder.take());
  ASSERT_FALSE(violation.has_value()) << *violation;
  EXPECT_GT(snap.fast_reads(), 0u)
      << "stable registers must still go fast under loss";
  EXPECT_GT(snap.fast_fallbacks(), 0u)
      << "a 30%-loss run must have hit the fallback boundary";
}

// (b) Suspected replicas: with the breaker on and a minority crashed, query
// quorums exclude the suspects — the evidence comes from fewer, live
// replicas and must still be judged against the replies actually counted
// (agree == accepted, not agree == n). Histories stay atomic and the fast
// path keeps working in degraded mode.
TEST(FastReadFault, SuspectedReplicasDoNotBreakFastReadEvidence) {
  constexpr std::size_t kN = 5;
  AbdConfig config = fault_config();
  config.breaker.enabled = true;
  MessagePassingSnapshot<Tag> snap(kN, Tag{}, 0xFA58, config);
  lin::Recorder recorder(kN);

  auto worker = [&](ProcessId pid, std::uint64_t& seq, int ops) {
    for (int op = 0; op < ops; ++op) {
      if (op % 4 == 0) {
        const lin::Time inv = recorder.tick();
        snap.update(pid, Tag{pid, ++seq});
        const lin::Time res = recorder.tick();
        recorder.add_update(pid, pid, Tag{pid, seq}, inv, res);
      } else {
        const lin::Time inv = recorder.tick();
        std::vector<Tag> view = snap.scan(pid);
        const lin::Time res = recorder.tick();
        recorder.add_scan(pid, std::move(view), inv, res);
      }
    }
  };

  std::vector<std::uint64_t> seq(kN, 0);
  {  // healthy phase: seeds RTT estimates and confirmed state
    std::vector<std::jthread> phase1;
    for (ProcessId p = 0; p < 3; ++p) {
      phase1.emplace_back([&, p] { worker(p, seq[p], 8); });
    }
  }
  snap.crash(3);
  snap.crash(4);  // minority down: breaker learns to skip them
  {
    std::vector<std::jthread> phase2;
    for (ProcessId p = 0; p < 3; ++p) {
      phase2.emplace_back([&, p] { worker(p, seq[p], 16); });
    }
  }
  const auto violation = lin::check_single_writer(recorder.take());
  ASSERT_FALSE(violation.has_value()) << *violation;
  EXPECT_GT(snap.fast_reads(), 0u)
      << "degraded-mode reads must still use the fast path";
}

// (c) Stale incarnations: crash/recover churn while the workload runs. A
// recovered node's resync must not mint stability evidence, and replies
// from pre-crash incarnations must not count toward (or corrupt) a live
// round's evidence. Atomicity is the judge.
TEST(FastReadFault, CrashRecoverChurnKeepsFastReadsLinearizable) {
  constexpr std::size_t kN = 5;
  MessagePassingSnapshot<Tag> snap(kN, Tag{}, 0xFA59, fault_config());
  snap.set_fault_plan(net::FaultPlan{.drop_prob = 0.1, .dup_prob = 0.2});
  lin::Recorder recorder(kN);

  std::atomic<bool> stop{false};
  std::jthread churn([&] {
    for (int round = 0; round < 3 && !stop.load(); ++round) {
      snap.crash(4);
      std::this_thread::sleep_for(5ms);
      while (!snap.recover(4) && !stop.load()) {
        std::this_thread::sleep_for(1ms);
      }
      std::this_thread::sleep_for(5ms);
    }
  });
  {
    std::vector<std::jthread> workers;
    for (std::size_t p = 0; p < 3; ++p) {
      workers.emplace_back([&, pid = static_cast<ProcessId>(p)] {
        std::uint64_t seq = 0;
        for (int op = 0; op < 30; ++op) {
          if (op % 3 == 0) {
            const lin::Time inv = recorder.tick();
            snap.update(pid, Tag{pid, ++seq});
            const lin::Time res = recorder.tick();
            recorder.add_update(pid, pid, Tag{pid, seq}, inv, res);
          } else {
            const lin::Time inv = recorder.tick();
            std::vector<Tag> view = snap.scan(pid);
            const lin::Time res = recorder.tick();
            recorder.add_scan(pid, std::move(view), inv, res);
          }
        }
      });
    }
  }
  stop.store(true);
  churn.join();
  const auto violation = lin::check_single_writer(recorder.take());
  ASSERT_FALSE(violation.has_value()) << *violation;
  EXPECT_GT(snap.fast_reads() + snap.fast_fallbacks(), 0u);
}

}  // namespace
}  // namespace asnap::abd
