// Tests for the classical register hierarchy (safe bit -> regular bit ->
// K-valued regular -> atomic 1W1R -> atomic 1WnR). Each level's test shows
// two things: the level BELOW genuinely exhibits the anomaly (garbage /
// new-old inversion — no vacuous strength), and the construction at this
// level removes exactly that anomaly.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <set>
#include <thread>
#include <vector>

#include "lin/history.hpp"
#include "lin/wing_gong.hpp"
#include "reg/hierarchy/atomic_from_regular.hpp"
#include "reg/hierarchy/regular_bit.hpp"
#include "reg/hierarchy/regular_kvalued.hpp"
#include "reg/hierarchy/safe_bit.hpp"
#include "reg/hierarchy/simulated_regular.hpp"
#include "sched/policies.hpp"
#include "sched/scheduler.hpp"

namespace asnap::reg::hierarchy {
namespace {

// Runs writer/reader bodies under round-robin turnstile so reads land
// inside write windows deterministically.
void run_interleaved(std::vector<std::function<void()>> bodies) {
  sched::RoundRobinPolicy policy;
  sched::SimScheduler scheduler(policy);
  scheduler.run(std::move(bodies));
}

// --- SafeBit ------------------------------------------------------------------

TEST(SafeBit, SequentialReadsReturnLastWrite) {
  SafeBit bit(false);
  EXPECT_FALSE(bit.read());
  bit.write(true);
  EXPECT_TRUE(bit.read());
  bit.write(false);
  EXPECT_FALSE(bit.read());
}

TEST(SafeBit, OverlappedReadsMayReturnGarbage) {
  // Writer rewrites `true` with `true`; a safe register may still return
  // false to an overlapping read. Count garbage across seeds: it MUST
  // happen for some seed (otherwise our simulation is vacuously strong).
  int garbage = 0;
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    SafeBit bit(true, seed);
    bool seen = true;
    run_interleaved({
        [&] {
          for (int i = 0; i < 8; ++i) bit.write(true);  // value never changes
        },
        [&] {
          for (int i = 0; i < 8; ++i) seen = seen && bit.read();
        },
    });
    if (!seen) ++garbage;
  }
  EXPECT_GT(garbage, 0) << "safe-bit simulation never produced garbage";
}

// --- RegularBit ----------------------------------------------------------------

TEST(RegularBit, SequentialSemantics) {
  RegularBit bit(false);
  EXPECT_FALSE(bit.read());
  bit.write(true);
  EXPECT_TRUE(bit.read());
  bit.write(true);
  EXPECT_TRUE(bit.read());
}

TEST(RegularBit, RedundantWritesNeverProduceGarbage) {
  // The same scenario that breaks SafeBit: rewriting an unchanged value.
  // The regular construction skips the physical write, so every read is
  // clean, for every seed.
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    RegularBit bit(true, seed);
    bool seen = true;
    run_interleaved({
        [&] {
          for (int i = 0; i < 8; ++i) bit.write(true);
        },
        [&] {
          for (int i = 0; i < 8; ++i) seen = seen && bit.read();
        },
    });
    EXPECT_TRUE(seen) << "seed " << seed;
  }
}

TEST(RegularBit, ChangingWritesReturnOldOrNew) {
  // Reads overlapping a 0->1 write may return 0 or 1 — both legal; the
  // point is they may not return anything else, which for bits is vacuous,
  // so we check the regularity ORDER property instead: once a read returns
  // the new value after the write completed, later reads never return the
  // old one (writer writes once).
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    RegularBit bit(false, seed);
    std::vector<bool> reads;
    run_interleaved({
        [&] { bit.write(true); },
        [&] {
          for (int i = 0; i < 6; ++i) reads.push_back(bit.read());
        },
    });
    // After the last read that can overlap the (single) write, all reads
    // are post-write and must be true; monotone once stable:
    bool stable_true = false;
    for (std::size_t i = 0; i + 1 < reads.size(); ++i) {
      if (reads[i] && reads[i + 1]) stable_true = true;
      if (stable_true) {
        EXPECT_TRUE(reads[i + 1]) << "seed " << seed;
      }
    }
    EXPECT_TRUE(reads.back());  // the write completed long before the end
  }
}

// --- RegularKValued -------------------------------------------------------------

TEST(RegularKValued, SequentialSemantics) {
  RegularKValued reg(8, 3);
  EXPECT_EQ(reg.read(), 3u);
  reg.write(5);
  EXPECT_EQ(reg.read(), 5u);
  reg.write(0);
  EXPECT_EQ(reg.read(), 0u);
  reg.write(7);
  EXPECT_EQ(reg.read(), 7u);
}

TEST(RegularKValued, OverlappedReadsReturnOldOrOverlappingValues) {
  // Writer performs a known sequence; every read must return the initial
  // value or one of the written values (never an index that was never
  // written) — regularity for the unary construction.
  const std::set<std::size_t> legal{2, 6, 1, 4};
  for (std::uint64_t seed = 1; seed <= 48; ++seed) {
    RegularKValued reg(8, 2, seed);
    std::vector<std::size_t> reads;
    run_interleaved({
        [&] {
          reg.write(6);
          reg.write(1);
          reg.write(4);
        },
        [&] {
          for (int i = 0; i < 10; ++i) reads.push_back(reg.read());
        },
    });
    for (const std::size_t v : reads) {
      EXPECT_TRUE(legal.count(v))
          << "read returned " << v << " (never written), seed " << seed;
    }
    EXPECT_EQ(reads.back(), 4u);
  }
}

// --- SimulatedRegularRegister: the anomaly exists --------------------------------

TEST(SimulatedRegular, ExhibitsNewOldInversion) {
  // A reader polling during writes must, for some seed, observe value k
  // then value k-1 — the inversion regularity allows. This guarantees the
  // atomic constructions below are tested against a genuinely weak base.
  int inversions = 0;
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    SimulatedRegularRegister<std::uint64_t> reg(0, seed);
    std::uint64_t last = 0;
    bool inverted = false;
    run_interleaved({
        [&] {
          for (std::uint64_t v = 1; v <= 12; ++v) reg.write(v);
        },
        [&] {
          for (int i = 0; i < 24; ++i) {
            const std::uint64_t v = reg.read();
            if (v < last) inverted = true;
            last = v;
          }
        },
    });
    if (inverted) ++inversions;
  }
  EXPECT_GT(inversions, 0) << "regular simulation is vacuously atomic";
}

// --- Atomic1W1R: the anomaly is gone ---------------------------------------------

TEST(Atomic1W1R, SequentialSemantics) {
  Atomic1W1R<int> reg(-1);
  EXPECT_EQ(reg.read(), -1);
  reg.write(10);
  EXPECT_EQ(reg.read(), 10);
  reg.write(20);
  EXPECT_EQ(reg.read(), 20);
}

TEST(Atomic1W1R, NoInversionForAnySeed) {
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    Atomic1W1R<std::uint64_t> reg(0, seed);
    std::uint64_t last = 0;
    bool inverted = false;
    run_interleaved({
        [&] {
          for (std::uint64_t v = 1; v <= 12; ++v) reg.write(v);
        },
        [&] {
          for (int i = 0; i < 24; ++i) {
            const std::uint64_t v = reg.read();
            if (v < last) inverted = true;
            last = v;
          }
        },
    });
    EXPECT_FALSE(inverted) << "seed " << seed;
  }
}

// --- AtomicSwmr: multi-reader atomicity ------------------------------------------

TEST(AtomicSwmr, SequentialSemantics) {
  AtomicSwmr<int> reg(3, 0);
  reg.write(5);
  EXPECT_EQ(reg.read(0), 5);
  EXPECT_EQ(reg.read(1), 5);
  reg.write(9);
  EXPECT_EQ(reg.read(2), 9);
}

TEST(AtomicSwmr, TwoReadersNeverInvertEachOther) {
  // The cross-reader inversion: r0 reads v, then (strictly later) r1 reads
  // v' < v. The report write-back must prevent it for every seed. The
  // check uses recorded intervals + the Wing-Gong oracle (a register is a
  // 1-word snapshot).
  for (std::uint64_t seed = 1; seed <= 48; ++seed) {
    lin::Recorder recorder(1);
    AtomicSwmr<lin::Tag> areg(2, lin::Tag{}, seed * 131);
    std::vector<std::function<void()>> bodies;
    bodies.push_back([&] {
      for (std::uint64_t s = 1; s <= 3; ++s) {
        const lin::Tag tag{0, s};
        const lin::Time inv = recorder.tick();
        areg.write(tag);
        const lin::Time res = recorder.tick();
        recorder.add_update(0, 0, tag, inv, res);
      }
    });
    for (std::size_t r = 0; r < 2; ++r) {
      bodies.push_back([&, r] {
        for (int i = 0; i < 3; ++i) {
          const lin::Time inv = recorder.tick();
          lin::Tag seen = areg.read(r);
          const lin::Time res = recorder.tick();
          recorder.add_scan(static_cast<ProcessId>(r + 1), {seen}, inv, res);
        }
      });
    }
    sched::RandomPolicy policy(seed);
    sched::SimScheduler scheduler(policy);
    scheduler.run(std::move(bodies));
    EXPECT_EQ(lin::wing_gong_check(recorder.take(), 30),
              lin::WgVerdict::kLinearizable)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace asnap::reg::hierarchy
