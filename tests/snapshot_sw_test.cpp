// Correctness tests for the single-writer snapshot implementations:
// Figure 2 (unbounded), Figure 3 (bounded), Figure 4 run in single-writer
// mode, and the practical baselines. Typed tests run the same battery over
// every implementation; randomized concurrent stress histories are verified
// by the exact single-writer linearizability checker (experiment E1-E4).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/snapshot.hpp"
#include "harness.hpp"
#include "lin/snapshot_checker.hpp"
#include "lin/wing_gong.hpp"

namespace asnap {
namespace {

using lin::Tag;

// Wrapper so the typed test can own a BoundedMwSnapshot and expose it
// through the single-writer interface (process i writes word i).
class MwAsSw {
 public:
  MwAsSw(std::size_t n, const Tag& init)
      : snap_(n, n, init), adapter_(snap_) {}
  std::size_t size() const { return adapter_.size(); }
  void update(ProcessId i, Tag v) { adapter_.update(i, v); }
  std::vector<Tag> scan(ProcessId i) { return adapter_.scan(i); }
  const core::ScanStats& stats(ProcessId i) const { return snap_.stats(i); }

 private:
  core::BoundedMwSnapshot<Tag> snap_;
  core::SingleWriterAdapter<core::BoundedMwSnapshot<Tag>> adapter_;
};

template <typename S>
struct SwSnapshotTest : public ::testing::Test {
  static S make(std::size_t n) { return S(n, Tag{}); }
};

using SwImpls =
    ::testing::Types<core::UnboundedSwSnapshot<Tag>,
                     core::BoundedSwSnapshot<Tag>, MwAsSw,
                     core::MutexSnapshot<Tag>, core::DoubleCollectSnapshot<Tag>,
                     core::MvccSnapshot<Tag>>;
TYPED_TEST_SUITE(SwSnapshotTest, SwImpls);

TYPED_TEST(SwSnapshotTest, InitialScanReturnsInitialValues) {
  auto snap = TestFixture::make(4);
  const std::vector<Tag> view = snap.scan(0);
  ASSERT_EQ(view.size(), 4u);
  for (const Tag& t : view) EXPECT_TRUE(t.is_initial());
}

TYPED_TEST(SwSnapshotTest, SequentialUpdateThenScan) {
  auto snap = TestFixture::make(3);
  snap.update(1, Tag{1, 1});
  const std::vector<Tag> view = snap.scan(0);
  EXPECT_TRUE(view[0].is_initial());
  EXPECT_EQ(view[1], (Tag{1, 1}));
  EXPECT_TRUE(view[2].is_initial());
}

TYPED_TEST(SwSnapshotTest, SequentialLastWritePerProcessWins) {
  auto snap = TestFixture::make(2);
  for (std::uint64_t s = 1; s <= 10; ++s) snap.update(0, Tag{0, s});
  for (std::uint64_t s = 1; s <= 5; ++s) snap.update(1, Tag{1, s});
  const std::vector<Tag> view = snap.scan(1);
  EXPECT_EQ(view[0], (Tag{0, 10}));
  EXPECT_EQ(view[1], (Tag{1, 5}));
}

TYPED_TEST(SwSnapshotTest, ScannerSeesOwnPrecedingUpdate) {
  auto snap = TestFixture::make(3);
  snap.update(2, Tag{2, 1});
  const std::vector<Tag> view = snap.scan(2);
  EXPECT_EQ(view[2], (Tag{2, 1}));
}

TYPED_TEST(SwSnapshotTest, SingleProcessDegenerateCase) {
  auto snap = TestFixture::make(1);
  EXPECT_TRUE(snap.scan(0)[0].is_initial());
  snap.update(0, Tag{0, 1});
  EXPECT_EQ(snap.scan(0)[0], (Tag{0, 1}));
}

TYPED_TEST(SwSnapshotTest, StressHistoriesAreLinearizable) {
  for (const std::size_t n : {2u, 3u, 6u}) {
    for (const double scan_prob : {0.15, 0.5, 0.85}) {
      auto snap = TestFixture::make(n);
      testing::WorkloadConfig cfg;
      cfg.processes = n;
      cfg.ops_per_process = 120;
      cfg.scan_prob = scan_prob;
      cfg.seed = 42 + n * 10 + static_cast<std::uint64_t>(scan_prob * 100);
      const lin::History history = testing::run_sw_workload(snap, cfg);
      const auto violation = lin::check_single_writer(history);
      ASSERT_FALSE(violation.has_value())
          << "n=" << n << " scan_prob=" << scan_prob << ": " << *violation;
    }
  }
}

TYPED_TEST(SwSnapshotTest, UpdateHeavyStressIsLinearizable) {
  auto snap = TestFixture::make(4);
  testing::WorkloadConfig cfg;
  cfg.processes = 4;
  cfg.ops_per_process = 400;
  cfg.scan_prob = 0.05;  // almost all updates: maximal interference
  cfg.seed = 777;
  cfg.yield_prob = 0.3;
  const lin::History history = testing::run_sw_workload(snap, cfg);
  const auto violation = lin::check_single_writer(history);
  ASSERT_FALSE(violation.has_value()) << *violation;
}

TYPED_TEST(SwSnapshotTest, TinyHistoriesPassTheExhaustiveOracle) {
  // Belt and braces: small runs must also satisfy the Wing-Gong oracle
  // (which exercises a completely independent decision procedure).
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    auto snap = TestFixture::make(2);
    testing::WorkloadConfig cfg;
    cfg.processes = 2;
    cfg.ops_per_process = 6;
    cfg.scan_prob = 0.5;
    cfg.seed = seed;
    const lin::History history = testing::run_sw_workload(snap, cfg);
    EXPECT_EQ(lin::wing_gong_check(history, 30), lin::WgVerdict::kLinearizable)
        << "seed " << seed;
  }
}

// --- Wait-freedom: measured step bounds (Lemmas 3.4 / 4.4, experiment E5) ---

template <typename S>
struct WaitFreeBoundTest : public ::testing::Test {};

using WaitFreeImpls = ::testing::Types<core::UnboundedSwSnapshot<Tag>,
                                       core::BoundedSwSnapshot<Tag>, MwAsSw>;
TYPED_TEST_SUITE(WaitFreeBoundTest, WaitFreeImpls);

TYPED_TEST(WaitFreeBoundTest, EveryOperationFinishesWithinQuadraticSteps) {
  // Concurrent updaters hammer the object while one process interleaves
  // scans and updates; every single operation must respect the O(n^2)
  // primitive-step bound regardless of interference.
  constexpr std::size_t kN = 5;
  TypeParam snap(kN, Tag{});
  std::atomic<bool> stop{false};
  std::vector<std::jthread> updaters;
  for (std::size_t p = 1; p < kN; ++p) {
    updaters.emplace_back([&, pid = static_cast<ProcessId>(p)] {
      testing::ChaosYield chaos{Rng(pid), 0.2};
      ScopedStepHook hook(&testing::ChaosYield::hook, &chaos);
      std::uint64_t seq = 0;
      while (!stop.load(std::memory_order_acquire)) {
        snap.update(pid, Tag{pid, ++seq});
      }
    });
  }

  // Very generous constant for the O((n+1) * (collect + handshake)) shape;
  // what matters is that it does NOT grow with the number of retries an
  // adversary can force, only with n^2.
  const std::uint64_t kBound = 40 * (kN + 2) * (kN + 2);
  std::uint64_t seq = 0;
  for (int i = 0; i < 300; ++i) {
    StepMeter meter;
    if (i % 3 == 0) {
      snap.update(0, Tag{0, ++seq});
    } else {
      (void)snap.scan(0);
    }
    ASSERT_LE(meter.elapsed().total(), kBound) << "op " << i;
  }
  stop.store(true, std::memory_order_release);
}

// --- Protocol statistics ----------------------------------------------------

TYPED_TEST(WaitFreeBoundTest, PigeonholeBoundOnDoubleCollects) {
  constexpr std::size_t kN = 4;
  TypeParam snap(kN, Tag{});
  testing::WorkloadConfig cfg;
  cfg.processes = kN;
  cfg.ops_per_process = 500;
  cfg.scan_prob = 0.4;
  cfg.seed = 99;
  cfg.yield_prob = 0.3;
  (void)testing::run_sw_workload(snap, cfg);
  for (ProcessId p = 0; p < kN; ++p) {
    // Figure 2/3: at most n+1 double collects; Figure 4: at most 2n+1.
    EXPECT_LE(snap.stats(p).max_double_collects, 2 * kN + 1) << "P" << p;
    EXPECT_GT(snap.stats(p).scans, 0u);
  }
}

TEST(UnboundedSwSnapshot, StrictPigeonholeBound) {
  constexpr std::size_t kN = 4;
  core::UnboundedSwSnapshot<Tag> snap(kN, Tag{});
  testing::WorkloadConfig cfg;
  cfg.processes = kN;
  cfg.ops_per_process = 800;
  cfg.scan_prob = 0.3;
  cfg.seed = 5;
  cfg.yield_prob = 0.35;
  (void)testing::run_sw_workload(snap, cfg);
  for (ProcessId p = 0; p < kN; ++p) {
    EXPECT_LE(snap.stats(p).max_double_collects, kN + 1);
  }
}

TEST(BoundedSwSnapshot, StrictPigeonholeBound) {
  constexpr std::size_t kN = 4;
  core::BoundedSwSnapshot<Tag> snap(kN, Tag{});
  testing::WorkloadConfig cfg;
  cfg.processes = kN;
  cfg.ops_per_process = 800;
  cfg.scan_prob = 0.3;
  cfg.seed = 6;
  cfg.yield_prob = 0.35;
  (void)testing::run_sw_workload(snap, cfg);
  for (ProcessId p = 0; p < kN; ++p) {
    EXPECT_LE(snap.stats(p).max_double_collects, kN + 1);
  }
}

// --- Baseline sanity: the Observation-1-only algorithm can starve -----------

TEST(DoubleCollectSnapshot, UpdatesAreConstantTime) {
  core::DoubleCollectSnapshot<Tag> snap(8, Tag{});
  StepMeter meter;
  snap.update(3, Tag{3, 1});
  EXPECT_EQ(meter.elapsed().writes, 1u);
  EXPECT_EQ(meter.elapsed().reads, 0u);  // no embedded scan
}

TEST(DoubleCollectSnapshot, BoundedScanReportsFailureUnderContention) {
  // With an updater writing at every opportunity, a budgeted scan may fail —
  // the non-wait-freedom the paper fixes. We only assert the API contract
  // here (failure is *allowed* and reported); the deterministic-scheduler
  // tests construct guaranteed starvation.
  core::DoubleCollectSnapshot<Tag> snap(2, Tag{});
  snap.update(0, Tag{0, 1});
  std::vector<Tag> out;
  const bool ok = snap.try_scan(1, 4, out);
  if (ok) {
    EXPECT_EQ(out[0], (Tag{0, 1}));
  }
}

}  // namespace
}  // namespace asnap
