// Tests for the executable Figure-1 specification (spec::SwsAutomaton):
// the automaton's own transition discipline, hand-crafted behavior
// accept/reject cases, and the triangulation theorem of this repository —
// on random histories, THREE independent decision procedures must agree:
//   1. the polynomial single-writer checker (constraint digraph),
//   2. the Wing-Gong linearizability search,
//   3. behavior membership in the SWS automaton (this module).
#include <gtest/gtest.h>

#include <cstdint>

#include "common/rng.hpp"
#include "lin/history.hpp"
#include "lin/snapshot_checker.hpp"
#include "lin/wing_gong.hpp"
#include "spec/sws_automaton.hpp"

namespace asnap::spec {
namespace {

using lin::Tag;

TEST(SwsAutomaton, UpdateLifecycle) {
  SwsAutomaton sws(2);
  EXPECT_FALSE(sws.update_enabled(0));

  sws.update_request(0, Tag{0, 1});
  EXPECT_TRUE(sws.update_enabled(0));
  EXPECT_FALSE(sws.scan_enabled(0));

  sws.update(0);
  EXPECT_FALSE(sws.update_enabled(0));
  EXPECT_TRUE(sws.update_return_enabled(0));
  EXPECT_EQ(sws.memory()[0], (Tag{0, 1}));

  sws.update_return(0);
  EXPECT_EQ(sws.interface(0).kind, InterfaceVar::Kind::kBottom);
}

TEST(SwsAutomaton, ScanLifecycleReturnsMemoryAtScanInstant) {
  SwsAutomaton sws(2);
  sws.update_request(1, Tag{1, 1});
  sws.update(1);
  sws.update_return(1);

  sws.scan_request(0);
  EXPECT_TRUE(sws.scan_enabled(0));
  sws.scan(0);  // Mem captured HERE

  // A later update must not affect the already-captured view.
  sws.update_request(1, Tag{1, 2});
  sws.update(1);
  sws.update_return(1);

  const std::vector<Tag> view = sws.scan_return(0);
  EXPECT_EQ(view[1], (Tag{1, 1}));
  EXPECT_TRUE(view[0].is_initial());
}

TEST(SwsAutomaton, IndependentProcessesDoNotInterfere) {
  SwsAutomaton sws(3);
  sws.update_request(0, Tag{0, 1});
  sws.scan_request(1);
  EXPECT_TRUE(sws.update_enabled(0));
  EXPECT_TRUE(sws.scan_enabled(1));
  sws.scan(1);  // scans before the update fires
  sws.update(0);
  const std::vector<Tag> view = sws.scan_return(1);
  EXPECT_TRUE(view[0].is_initial());
}

// --- behavior membership -----------------------------------------------------

lin::History make_history(std::size_t words) {
  lin::History h;
  h.num_words = words;
  return h;
}

TEST(SwsAccepts, SequentialBehaviorAccepted) {
  lin::History h = make_history(2);
  h.updates.push_back({0, 0, Tag{0, 1}, 0, 1});
  h.scans.push_back({1, {Tag{0, 1}, Tag{}}, 2, 3});
  EXPECT_EQ(sws_accepts(h), std::optional<bool>(true));
}

TEST(SwsAccepts, MissedCompletedUpdateRejected) {
  lin::History h = make_history(2);
  h.updates.push_back({0, 0, Tag{0, 1}, 0, 1});
  h.scans.push_back({1, {Tag{}, Tag{}}, 2, 3});
  EXPECT_EQ(sws_accepts(h), std::optional<bool>(false));
}

TEST(SwsAccepts, ConcurrentUpdateMayGoEitherWay) {
  for (const bool seen : {true, false}) {
    lin::History h = make_history(1);
    h.updates.push_back({0, 0, Tag{0, 1}, 0, 10});
    h.scans.push_back({1, {seen ? Tag{0, 1} : Tag{}}, 1, 9});
    EXPECT_EQ(sws_accepts(h), std::optional<bool>(true)) << "seen=" << seen;
  }
}

TEST(SwsAccepts, IncomparableViewsRejected) {
  lin::History h = make_history(2);
  h.updates.push_back({0, 0, Tag{0, 1}, 0, 100});
  h.updates.push_back({1, 1, Tag{1, 1}, 0, 100});
  h.scans.push_back({0, {Tag{0, 1}, Tag{}}, 1, 99});
  h.scans.push_back({1, {Tag{}, Tag{1, 1}}, 1, 99});
  EXPECT_EQ(sws_accepts(h), std::optional<bool>(false));
}

TEST(SwsAccepts, TooLargeGivesNoVerdict) {
  lin::History h = make_history(1);
  for (std::uint64_t s = 1; s <= 40; ++s) {
    h.updates.push_back(
        {0, 0, Tag{0, s}, 2 * s, 2 * s + 1});
  }
  EXPECT_EQ(sws_accepts(h, 28), std::nullopt);
}

// --- triangulation ------------------------------------------------------------

// The same random-history generator idea as the lin cross-validation test,
// but now THREE deciders must agree pairwise on every history.
TEST(CheckerTriangulation, ThreeDecidersAgreeOnRandomHistories) {
  Rng rng(424242);
  int rejected = 0;
  for (int trial = 0; trial < 1200; ++trial) {
    const std::size_t n = 2 + rng.below(2);
    const std::size_t total_ops = 4 + rng.below(6);
    lin::History h;
    h.num_words = n;

    lin::Time clock = 0;
    std::vector<std::uint64_t> seq(n, 0);
    struct Pending {
      bool is_scan;
      ProcessId proc;
      lin::Time inv;
    };
    std::vector<Pending> open;
    std::vector<std::size_t> busy(n, 0);
    std::size_t started = 0;
    while (started < total_ops || !open.empty()) {
      ProcessId free_proc = kNoProcess;
      for (std::size_t q = 0; q < n; ++q) {
        if (!busy[q]) {
          free_proc = static_cast<ProcessId>(q);
          break;
        }
      }
      const bool can_start =
          started < total_ops && open.size() < 3 && free_proc != kNoProcess;
      if (can_start && (open.empty() || rng.chance(0.5))) {
        busy[free_proc] = 1;
        open.push_back({rng.chance(0.5), free_proc, clock++});
        ++started;
        continue;
      }
      const std::size_t pick = rng.below(open.size());
      const Pending op = open[pick];
      open.erase(open.begin() + static_cast<std::ptrdiff_t>(pick));
      busy[op.proc] = 0;
      const lin::Time res = clock++;
      if (op.is_scan) {
        std::vector<Tag> view(n);
        for (std::size_t j = 0; j < n; ++j) {
          const std::uint64_t hi = seq[j];
          std::uint64_t s = hi == 0 ? 0 : rng.below(hi + 1);
          if (rng.chance(0.04)) s = hi + 1;  // corrupt
          view[j] = s == 0 ? Tag{} : Tag{static_cast<ProcessId>(j), s};
        }
        h.scans.push_back({op.proc, std::move(view), op.inv, res});
      } else {
        h.updates.push_back(
            {op.proc, op.proc, Tag{op.proc, ++seq[op.proc]}, op.inv, res});
      }
    }

    const bool poly = !lin::check_single_writer(h).has_value();
    const lin::WgVerdict wg = lin::wing_gong_check(h, 30);
    const std::optional<bool> sws = sws_accepts(h, 30);
    ASSERT_NE(wg, lin::WgVerdict::kTooLarge);
    ASSERT_TRUE(sws.has_value());
    const bool wg_ok = wg == lin::WgVerdict::kLinearizable;
    ASSERT_EQ(poly, wg_ok) << "trial " << trial;
    ASSERT_EQ(wg_ok, *sws) << "trial " << trial
                           << ": Wing-Gong and the SWS automaton disagree";
    rejected += !wg_ok;
  }
  EXPECT_GT(rejected, 30);
  EXPECT_LT(rejected, 1170);
}

}  // namespace
}  // namespace asnap::spec
