// Tests for the linearizability verification substrate itself: handcrafted
// accept/reject histories for both checkers, plus randomized
// checker-on-checker cross-validation of the polynomial single-writer
// checker against the exhaustive Wing-Gong oracle.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "lin/history.hpp"
#include "lin/snapshot_checker.hpp"
#include "lin/wing_gong.hpp"

namespace asnap::lin {
namespace {

Tag initial() { return Tag{}; }
Tag t(ProcessId w, std::uint64_t s) { return Tag{w, s}; }

// Handy builder for two-process single-writer histories.
struct HistoryBuilder {
  History h;
  explicit HistoryBuilder(std::size_t words) { h.num_words = words; }
  HistoryBuilder& update(ProcessId p, std::size_t word, Tag tag, Time inv,
                         Time res) {
    h.updates.push_back({p, word, tag, inv, res});
    return *this;
  }
  HistoryBuilder& scan(ProcessId p, std::vector<Tag> view, Time inv,
                       Time res) {
    h.scans.push_back({p, std::move(view), inv, res});
    return *this;
  }
};

TEST(SwChecker, EmptyHistoryAccepted) {
  History h;
  h.num_words = 3;
  EXPECT_FALSE(check_single_writer(h).has_value());
}

TEST(SwChecker, SequentialUpdateThenScanAccepted) {
  auto h = HistoryBuilder(2)
               .update(0, 0, t(0, 1), 0, 1)
               .scan(1, {t(0, 1), initial()}, 2, 3)
               .h;
  EXPECT_FALSE(check_single_writer(h).has_value());
}

TEST(SwChecker, ScanMissingCompletedUpdateRejected) {
  // Update completed strictly before the scan began, but the scan returns
  // the initial value: must serialize scan before update — impossible.
  auto h = HistoryBuilder(2)
               .update(0, 0, t(0, 1), 0, 1)
               .scan(1, {initial(), initial()}, 2, 3)
               .h;
  EXPECT_TRUE(check_single_writer(h).has_value());
}

TEST(SwChecker, ScanSeesFutureUpdateRejected) {
  // Scan finished before the update was even invoked, yet observed it.
  auto h = HistoryBuilder(2)
               .scan(1, {t(0, 1), initial()}, 0, 1)
               .update(0, 0, t(0, 1), 2, 3)
               .h;
  EXPECT_TRUE(check_single_writer(h).has_value());
}

TEST(SwChecker, OverlappingUpdateMayOrMayNotBeSeen) {
  // Update overlaps the scan: both outcomes are linearizable.
  auto seen = HistoryBuilder(2)
                  .update(0, 0, t(0, 1), 0, 10)
                  .scan(1, {t(0, 1), initial()}, 1, 9)
                  .h;
  EXPECT_FALSE(check_single_writer(seen).has_value());

  auto missed = HistoryBuilder(2)
                    .update(0, 0, t(0, 1), 0, 10)
                    .scan(1, {initial(), initial()}, 1, 9)
                    .h;
  EXPECT_FALSE(check_single_writer(missed).has_value());
}

TEST(SwChecker, StaleValueAfterNewerCompletedRejected) {
  // Two updates by P0 complete, then a scan returns the first value.
  auto h = HistoryBuilder(1)
               .update(0, 0, t(0, 1), 0, 1)
               .update(0, 0, t(0, 2), 2, 3)
               .scan(0, {t(0, 1)}, 4, 5)
               .h;
  EXPECT_TRUE(check_single_writer(h).has_value());
}

TEST(SwChecker, IncomparableScanViewsRejected) {
  // The signature snapshot violation: S1 sees U0 but not U1; S2 sees U1 but
  // not U0. No single serialization can order the two updates both ways.
  // All four operations are mutually concurrent.
  auto h = HistoryBuilder(2)
               .update(0, 0, t(0, 1), 0, 100)
               .update(1, 1, t(1, 1), 0, 100)
               .scan(0, {t(0, 1), initial()}, 1, 99)
               .scan(1, {initial(), t(1, 1)}, 1, 99)
               .h;
  EXPECT_TRUE(check_single_writer(h).has_value());
  EXPECT_EQ(wing_gong_check(h), WgVerdict::kNotLinearizable);
}

TEST(SwChecker, ComparableScanViewsAccepted) {
  auto h = HistoryBuilder(2)
               .update(0, 0, t(0, 1), 0, 100)
               .update(1, 1, t(1, 1), 0, 100)
               .scan(0, {t(0, 1), initial()}, 1, 99)
               .scan(1, {t(0, 1), t(1, 1)}, 1, 99)
               .h;
  EXPECT_FALSE(check_single_writer(h).has_value());
  EXPECT_EQ(wing_gong_check(h), WgVerdict::kLinearizable);
}

TEST(SwChecker, RealTimeOrderBetweenScansEnforced) {
  // S1 completes before S2 starts but S1's view is strictly newer: reject.
  auto h = HistoryBuilder(1)
               .update(0, 0, t(0, 1), 0, 20)
               .scan(0, {t(0, 1)}, 1, 2)
               .scan(0, {initial()}, 3, 4)
               .h;
  EXPECT_TRUE(check_single_writer(h).has_value());
  EXPECT_EQ(wing_gong_check(h), WgVerdict::kNotLinearizable);
}

TEST(SwChecker, UnknownTagRejected) {
  auto h = HistoryBuilder(1).scan(0, {t(0, 5)}, 0, 1).h;
  EXPECT_TRUE(check_single_writer(h).has_value());
}

TEST(SwChecker, ViewExceedingWordRangeRejected) {
  // A view running past num_words is malformed input. A view NARROWER than
  // num_words, by contrast, is a legal partial scan of the prefix
  // (word_base defaults to 0) since shard-local scans were introduced — see
  // shard_test.cpp for the partial-scan checker semantics.
  auto h = HistoryBuilder(2).scan(0, {initial(), initial(), initial()}, 0, 1).h;
  EXPECT_TRUE(check_single_writer(h).has_value());
  auto partial = HistoryBuilder(2).scan(0, {initial()}, 0, 1).h;
  EXPECT_FALSE(check_single_writer(partial).has_value());
}

TEST(SwChecker, NonConsecutiveSequenceRejected) {
  auto h = HistoryBuilder(1).update(0, 0, t(0, 2), 0, 1).h;
  EXPECT_TRUE(check_single_writer(h).has_value());
}

TEST(SwChecker, WriteToForeignWordRejected) {
  auto h = HistoryBuilder(2).update(0, 1, t(0, 1), 0, 1).h;
  EXPECT_TRUE(check_single_writer(h).has_value());
}

// --- Wing-Gong unit tests ---------------------------------------------------

TEST(WingGong, AcceptsSequentialHistory) {
  auto h = HistoryBuilder(2)
               .update(0, 0, t(0, 1), 0, 1)
               .scan(1, {t(0, 1), initial()}, 2, 3)
               .update(1, 1, t(1, 1), 4, 5)
               .scan(0, {t(0, 1), t(1, 1)}, 6, 7)
               .h;
  EXPECT_EQ(wing_gong_check(h), WgVerdict::kLinearizable);
}

TEST(WingGong, RejectsStaleRead) {
  auto h = HistoryBuilder(1)
               .update(0, 0, t(0, 1), 0, 1)
               .scan(1, {initial()}, 2, 3)
               .h;
  EXPECT_EQ(wing_gong_check(h), WgVerdict::kNotLinearizable);
}

TEST(WingGong, MultiWriterSameWordAccepted) {
  // Two writers to one word; scan sees the second writer's value.
  auto h = HistoryBuilder(1)
               .update(0, 0, t(0, 1), 0, 10)
               .update(1, 0, t(1, 1), 0, 10)
               .scan(2, {t(1, 1)}, 11, 12)
               .h;
  EXPECT_EQ(wing_gong_check(h), WgVerdict::kLinearizable);
}

TEST(WingGong, MultiWriterLostUpdateRejected) {
  // Both updates complete before the scan; scan sees the initial value.
  auto h = HistoryBuilder(1)
               .update(0, 0, t(0, 1), 0, 1)
               .update(1, 0, t(1, 1), 2, 3)
               .scan(2, {initial()}, 4, 5)
               .h;
  EXPECT_EQ(wing_gong_check(h), WgVerdict::kNotLinearizable);
}

TEST(WingGong, TooLargeReported) {
  HistoryBuilder b(1);
  for (int i = 0; i < 40; ++i) {
    b.update(0, 0, t(0, static_cast<std::uint64_t>(i + 1)), 2 * i, 2 * i + 1);
  }
  EXPECT_EQ(wing_gong_check(b.h, 28), WgVerdict::kTooLarge);
}

// --- Multi-writer forced-edge checker ---------------------------------------

TEST(MwChecker, AcceptsValidMultiWriterHistory) {
  auto h = HistoryBuilder(2)
               .update(0, 0, t(0, 1), 0, 1)
               .update(1, 0, t(1, 1), 2, 3)
               .scan(2, {t(1, 1), initial()}, 4, 5)
               .h;
  EXPECT_FALSE(check_multi_writer_forced(h).has_value());
}

TEST(MwChecker, RejectsReadFromFuture) {
  auto h = HistoryBuilder(1)
               .scan(2, {t(1, 1)}, 0, 1)
               .update(1, 0, t(1, 1), 2, 3)
               .h;
  EXPECT_TRUE(check_multi_writer_forced(h).has_value());
}

TEST(MwChecker, RejectsInitialViewAfterCompletedWrite) {
  auto h = HistoryBuilder(1)
               .update(1, 0, t(1, 1), 0, 1)
               .scan(2, {initial()}, 2, 3)
               .h;
  EXPECT_TRUE(check_multi_writer_forced(h).has_value());
}

TEST(MwChecker, RejectsSameWriterStaleRead) {
  // P1 writes word 0 twice, both complete, scan sees the first write.
  auto h = HistoryBuilder(1)
               .update(1, 0, t(1, 1), 0, 1)
               .update(1, 0, t(1, 2), 2, 3)
               .scan(2, {t(1, 1)}, 4, 5)
               .h;
  EXPECT_TRUE(check_multi_writer_forced(h).has_value());
}

TEST(MwChecker, RejectsNeverWrittenTag) {
  auto h = HistoryBuilder(1).scan(0, {t(3, 9)}, 0, 1).h;
  EXPECT_TRUE(check_multi_writer_forced(h).has_value());
}

// --- Randomized cross-validation --------------------------------------------

// Generates small random single-writer histories — a mix of well-behaved and
// deliberately corrupted views — and demands the polynomial checker and the
// Wing-Gong oracle agree on every single one.
TEST(CheckerCrossValidation, PolynomialMatchesWingGongOnRandomHistories) {
  Rng rng(20260708);
  int agreements = 0;
  int rejects = 0;
  for (int trial = 0; trial < 3000; ++trial) {
    const std::size_t n = 2 + rng.below(2);        // 2..3 processes/words
    const std::size_t total_ops = 4 + rng.below(7);  // 4..10 ops
    History h;
    h.num_words = n;

    // Random intervals on a discrete clock.
    Time clock = 0;
    std::vector<std::uint64_t> seq(n, 0);
    std::vector<std::vector<Time>> update_windows;  // for plausible views
    struct Pending {
      bool is_scan;
      ProcessId proc;
      Time inv;
    };
    // Interleave ops: each op gets inv then res with random gaps; to create
    // real overlap we start several ops before closing them.
    std::vector<Pending> open;
    std::size_t started = 0;
    std::vector<std::size_t> proc_busy(n, 0);
    while (started < total_ops || !open.empty()) {
      const bool may_start = started < total_ops && open.size() < 3;
      const bool start_now = may_start && (open.empty() || rng.chance(0.55));
      if (start_now) {
        ProcessId p = static_cast<ProcessId>(rng.below(n));
        if (proc_busy[p]) {  // keep per-process sequentiality
          bool found = false;
          for (std::size_t q = 0; q < n; ++q) {
            if (!proc_busy[q]) {
              p = static_cast<ProcessId>(q);
              found = true;
              break;
            }
          }
          if (!found) {
            // all busy: fall through to closing one instead
            goto close_one;
          }
        }
        proc_busy[p] = 1;
        open.push_back({rng.chance(0.5), p, clock++});
        ++started;
        continue;
      }
    close_one: {
      const std::size_t pick = rng.below(open.size());
      const Pending op = open[pick];
      open.erase(open.begin() + static_cast<std::ptrdiff_t>(pick));
      proc_busy[op.proc] = 0;
      const Time res = clock++;
      if (op.is_scan) {
        // Mostly-plausible view: for each word, any seq up to the current
        // count (occasionally a garbage future value).
        std::vector<Tag> view(n);
        for (std::size_t j = 0; j < n; ++j) {
          const std::uint64_t hi = seq[j];
          std::uint64_t s = hi == 0 ? 0 : rng.below(hi + 1);
          if (rng.chance(0.03)) s = hi + 1;  // corrupt: future value
          view[j] = s == 0 ? Tag{} : Tag{static_cast<ProcessId>(j), s};
        }
        h.scans.push_back({op.proc, std::move(view), op.inv, res});
      } else {
        const std::size_t j = op.proc;
        h.updates.push_back({op.proc, j,
                             Tag{op.proc, ++seq[j]}, op.inv, res});
      }
    }
    }

    const bool poly_ok = !check_single_writer(h).has_value();
    const WgVerdict wg = wing_gong_check(h, 30);
    ASSERT_NE(wg, WgVerdict::kTooLarge);
    const bool wg_ok = wg == WgVerdict::kLinearizable;
    ASSERT_EQ(poly_ok, wg_ok)
        << "checker disagreement on trial " << trial << " (poly=" << poly_ok
        << ", wing-gong=" << wg_ok << ")";
    ++agreements;
    rejects += !wg_ok;
  }
  EXPECT_EQ(agreements, 3000);
  // The generator must produce a healthy mix of accepted and rejected
  // histories for the cross-validation to mean anything.
  EXPECT_GT(rejects, 100);
  EXPECT_LT(rejects, 2900);
}

}  // namespace
}  // namespace asnap::lin
