// Real socket-cluster suite: wire format, WAL crash-recovery replay, and
// end-to-end quorum operations against actual abd_replicad OS processes
// that get kill -9ed mid-test.
//
// The end-to-end tests are the CI face of ISSUE 6's acceptance criterion:
// a 3-process cluster must survive kill -9 + restart of any minority with
// every acknowledged write still readable. They spawn the real daemon
// binary (path injected by CMake as ASNAP_REPLICAD_PATH) on ephemeral
// 127.0.0.1 ports and are bounded by a ctest TIMEOUT so a hung socket
// fails fast instead of wedging CI.
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "abd/remote_client.hpp"
#include "abd/wal.hpp"
#include "chaos/process_orchestrator.hpp"
#include "net/socket.hpp"
#include "net/tcp_bus.hpp"
#include "net/wire.hpp"

namespace asnap {
namespace {

using namespace std::chrono_literals;
namespace fs = std::filesystem;
using net::wire::Bytes;
using net::wire::Frame;

bool eventually(const std::function<bool()>& pred,
                std::chrono::milliseconds timeout = 5s) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(10ms);
  }
  return pred();
}

// --- wire format ------------------------------------------------------------

TEST(Wire, RoundTripPreservesEveryField) {
  Frame in;
  in.type = net::wire::kWriteReq;
  in.from = 42;
  in.rid = 0xDEADBEEFCAFEull;
  in.epoch = 7;
  in.reg = 3;
  in.ts = 99;
  in.value = {1, 2, 3, 4, 5};
  const Bytes buf = net::wire::encode(in);
  ASSERT_GE(buf.size(), 4u + net::wire::kHeaderBytes);
  // Strip the length prefix, as a transport would.
  const auto out = net::wire::decode(buf.data() + 4, buf.size() - 4);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->version, net::wire::kWireVersion);
  EXPECT_EQ(out->type, in.type);
  EXPECT_EQ(out->from, in.from);
  EXPECT_EQ(out->rid, in.rid);
  EXPECT_EQ(out->epoch, in.epoch);
  EXPECT_EQ(out->reg, in.reg);
  EXPECT_EQ(out->ts, in.ts);
  EXPECT_EQ(out->value, in.value);
}

TEST(Wire, DecodeRejectsCorruptFrames) {
  Frame in;
  in.type = net::wire::kReadReq;
  Bytes buf = net::wire::encode(in);
  std::string error;

  Bytes bad_magic(buf.begin() + 4, buf.end());
  bad_magic[0] ^= 0xFF;
  EXPECT_FALSE(net::wire::decode(bad_magic.data(), bad_magic.size(), &error));
  EXPECT_EQ(error, "bad magic");

  Bytes bad_version(buf.begin() + 4, buf.end());
  bad_version[4] = net::wire::kWireVersion + 1;
  EXPECT_FALSE(
      net::wire::decode(bad_version.data(), bad_version.size(), &error));
  EXPECT_EQ(error, "unknown wire version");

  Bytes truncated(buf.begin() + 4, buf.end() - 1);
  // A frame whose declared value length disagrees with its size is torn.
  in.value = {9};
  Bytes with_value = net::wire::encode(in);
  Bytes torn(with_value.begin() + 4, with_value.end() - 1);
  EXPECT_FALSE(net::wire::decode(torn.data(), torn.size(), &error));

  Bytes short_frame(8, 0);
  EXPECT_FALSE(
      net::wire::decode(short_frame.data(), short_frame.size(), &error));
}

TEST(Wire, Crc32MatchesIeeeReference) {
  const char* s = "123456789";
  EXPECT_EQ(net::wire::crc32(reinterpret_cast<const std::uint8_t*>(s), 9),
            0xCBF43926u);
}

TEST(Wire, TagAndU64CodecsRoundTrip) {
  const lin::Tag tag{3, 12345678901ull};
  const auto back = net::wire::decode_tag(net::wire::encode_tag(tag));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->writer, tag.writer);
  EXPECT_EQ(back->seq, tag.seq);
  EXPECT_FALSE(net::wire::decode_tag(Bytes{1, 2, 3}));

  const auto u = net::wire::decode_u64(net::wire::encode_u64(0x1122334455ull));
  ASSERT_TRUE(u.has_value());
  EXPECT_EQ(*u, 0x1122334455ull);
}

TEST(Wire, FlagsRoundTripInV2Frames) {
  Frame in;
  in.type = net::wire::kReadReply;
  in.from = 1;
  in.rid = 77;
  in.ts = 9;
  in.flags = net::wire::kFlagTsConfirmed;
  const Bytes buf = net::wire::encode(in);
  const auto out = net::wire::decode(buf.data() + 4, buf.size() - 4);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->version, net::wire::kWireVersion);
  EXPECT_EQ(out->flags, net::wire::kFlagTsConfirmed);
  EXPECT_EQ(out->ts, in.ts);
}

TEST(Wire, V1FramesStillDecodeWithFlagsZero) {
  // A v1 peer knows nothing of the flags field — its bytes were reserved
  // zeros. encode() must zero them for version-1 frames even if the caller
  // set flags, and a v2 decoder must accept the frame with flags == 0
  // rather than reject the version byte. This is the rolling-upgrade
  // contract: old daemon replies simply never claim kFlagTsConfirmed, so
  // clients fall back to the two-round read — slower, never unsafe.
  Frame in;
  in.version = 1;
  in.type = net::wire::kReadReply;
  in.from = 2;
  in.rid = 78;
  in.ts = 5;
  in.value = {1, 2, 3};
  in.flags = net::wire::kFlagTsConfirmed;  // must NOT survive a v1 encode
  const Bytes buf = net::wire::encode(in);
  const auto out = net::wire::decode(buf.data() + 4, buf.size() - 4);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->version, 1);
  EXPECT_EQ(out->flags, 0) << "v1 frames carry no flags";
  EXPECT_EQ(out->ts, in.ts);
  EXPECT_EQ(out->value, in.value);

  // Below kMinWireVersion stays rejected.
  Frame ancient;
  ancient.version = 0;
  const Bytes bad = net::wire::encode(ancient);
  std::string error;
  EXPECT_FALSE(net::wire::decode(bad.data() + 4, bad.size() - 4, &error));
  EXPECT_EQ(error, "unknown wire version");
}

TEST(Wire, ParseEndpoints) {
  const auto eps = net::parse_endpoints("127.0.0.1:7001,10.0.0.2:80");
  ASSERT_TRUE(eps.has_value());
  ASSERT_EQ(eps->size(), 2u);
  EXPECT_EQ((*eps)[0].host, "127.0.0.1");
  EXPECT_EQ((*eps)[0].port, 7001);
  EXPECT_EQ((*eps)[1].port, 80);
  EXPECT_FALSE(net::parse_endpoints(""));
  EXPECT_FALSE(net::parse_endpoints("127.0.0.1"));
  EXPECT_FALSE(net::parse_endpoints("127.0.0.1:0"));
  EXPECT_FALSE(net::parse_endpoints("127.0.0.1:99999"));
  EXPECT_FALSE(net::parse_endpoints("a:1,,b:2"));
}

// --- write-ahead log --------------------------------------------------------

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/asnap_wal_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
    path_ = dir_ + "/wal.log";
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  std::string dir_;
  std::string path_;
};

TEST_F(WalTest, ReplayRestoresWritesAndEpoch) {
  {
    abd::WalState state;
    std::string error;
    auto wal = abd::ReplicaWal::open(path_, &state, true, &error);
    ASSERT_NE(wal, nullptr) << error;
    EXPECT_EQ(state.epoch, 0u);
    ASSERT_TRUE(wal->append_epoch(1));
    ASSERT_TRUE(wal->append_write(0, 5, {10, 11}));
    ASSERT_TRUE(wal->append_write(1, 7, {20}));
    ASSERT_TRUE(wal->append_write(0, 9, {30, 31, 32}));
  }
  abd::WalState state;
  std::string error;
  auto wal = abd::ReplicaWal::open(path_, &state, true, &error);
  ASSERT_NE(wal, nullptr) << error;
  EXPECT_EQ(state.epoch, 1u);
  ASSERT_EQ(state.regs.count(0), 1u);
  EXPECT_EQ(state.regs[0].first, 9u);
  EXPECT_EQ(state.regs[0].second, (Bytes{30, 31, 32}));
  EXPECT_EQ(state.regs[1].first, 7u);
}

TEST_F(WalTest, TornTailIsTruncatedNotFatal) {
  {
    abd::WalState state;
    std::string error;
    auto wal = abd::ReplicaWal::open(path_, &state, true, &error);
    ASSERT_NE(wal, nullptr) << error;
    ASSERT_TRUE(wal->append_write(0, 3, {1}));
  }
  // Simulate a kill -9 mid-append: garbage half-record at the tail.
  {
    std::ofstream out(path_, std::ios::app | std::ios::binary);
    out.write("WAL1\x01\x00", 6);  // looks like a record start, then torn
  }
  const auto dirty_size = fs::file_size(path_);
  abd::WalState state;
  std::string error;
  auto wal = abd::ReplicaWal::open(path_, &state, true, &error);
  ASSERT_NE(wal, nullptr) << error;
  EXPECT_EQ(state.regs[0].first, 3u);  // intact prefix survived
  EXPECT_LT(fs::file_size(path_), dirty_size);  // tail gone
  // And the log is appendable again at the clean boundary.
  ASSERT_TRUE(wal->append_write(0, 4, {2}));
  wal.reset();
  abd::WalState again;
  ASSERT_NE(abd::ReplicaWal::open(path_, &again, true, &error), nullptr);
  EXPECT_EQ(again.regs[0].first, 4u);
}

TEST_F(WalTest, CompactionShrinksLogAndPreservesState) {
  abd::WalState state;
  std::string error;
  auto wal = abd::ReplicaWal::open(path_, &state, true, &error);
  ASSERT_NE(wal, nullptr) << error;
  ASSERT_TRUE(wal->append_epoch(3));
  state.epoch = 3;
  for (std::uint64_t ts = 1; ts <= 50; ++ts) {
    ASSERT_TRUE(wal->append_write(0, ts, {static_cast<std::uint8_t>(ts)}));
    state.regs[0] = {ts, {static_cast<std::uint8_t>(ts)}};
  }
  const auto before = wal->bytes();
  ASSERT_TRUE(wal->compact(state));
  EXPECT_LT(wal->bytes(), before);
  // Appends after compaction extend the compacted image.
  ASSERT_TRUE(wal->append_write(0, 51, {51}));
  wal.reset();
  abd::WalState replayed;
  ASSERT_NE(abd::ReplicaWal::open(path_, &replayed, true, &error), nullptr);
  EXPECT_EQ(replayed.epoch, 3u);
  EXPECT_EQ(replayed.regs[0].first, 51u);
}

// --- end-to-end: real processes --------------------------------------------

std::vector<net::Endpoint> free_endpoints(std::size_t n) {
  // Bind port 0 to let the kernel pick, record, release. The tiny window
  // before the daemon rebinds is acceptable for a local test.
  std::vector<net::Endpoint> eps;
  std::vector<net::Listener> held;
  for (std::size_t i = 0; i < n; ++i) {
    auto lst = net::Listener::open({"127.0.0.1", 0});
    EXPECT_TRUE(lst.valid());
    eps.push_back({"127.0.0.1", lst.bound_port()});
    held.push_back(std::move(lst));
  }
  return eps;
}

class ClusterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/asnap_cluster_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
    chaos::ProcessClusterConfig config;
    config.replicad_path = ASNAP_REPLICAD_PATH;
    config.state_dir = dir_;
    config.endpoints = free_endpoints(3);
    config.regs = 4;
    config.restart_delay = 100ms;
    cluster_ = std::make_unique<chaos::ProcessCluster>(config);
    ASSERT_TRUE(cluster_->start());
    ASSERT_TRUE(cluster_->wait_ready(10s));
  }

  void TearDown() override {
    cluster_->stop();
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  abd::AbdConfig client_config() {
    abd::AbdConfig config;
    config.op_deadline = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::seconds(5));
    return config;
  }

  /// Count READY lines in replica i's daemon log (one per incarnation).
  std::size_t incarnations(std::size_t i) {
    std::ifstream in(dir_ + "/replica-" + std::to_string(i) + "/daemon.log");
    std::string line;
    std::size_t n = 0;
    while (std::getline(in, line)) {
      if (line.rfind("READY", 0) == 0) ++n;
    }
    return n;
  }

  std::string dir_;
  std::unique_ptr<chaos::ProcessCluster> cluster_;
};

TEST_F(ClusterTest, WriteThenReadOverRealSockets) {
  abd::RemoteRegisterClient client(cluster_->endpoints(), 1, client_config());
  EXPECT_EQ(client.try_write(0, 1, net::wire::encode_u64(111)),
            abd::OpStatus::kOk);
  const auto got = client.try_read(0);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->ts, 1u);
  EXPECT_EQ(net::wire::decode_u64(got->value), 111u);
  // An unwritten register reads as (0, empty) — the initial value.
  const auto empty = client.try_read(3);
  ASSERT_TRUE(empty.has_value());
  EXPECT_EQ(empty->ts, 0u);
  EXPECT_TRUE(empty->value.empty());
}

TEST_F(ClusterTest, SurvivesKillMinusNineOfAnyMinority) {
  abd::RemoteRegisterClient client(cluster_->endpoints(), 2, client_config());
  ASSERT_EQ(client.try_write(1, 1, net::wire::encode_u64(1)),
            abd::OpStatus::kOk);

  // Kill each replica in turn; with the other two alive every op must
  // still complete, and the victim must come back (supervisor + WAL).
  for (std::size_t victim = 0; victim < 3; ++victim) {
    ASSERT_TRUE(cluster_->kill9(victim));
    const std::uint64_t ts = 2 + victim;
    EXPECT_EQ(client.try_write(1, ts, net::wire::encode_u64(100 + victim)),
              abd::OpStatus::kOk);
    const auto got = client.try_read(1);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->ts, ts);
    // Wait for the victim's new incarnation before the next kill, so the
    // set of dead replicas never reaches a majority.
    ASSERT_TRUE(eventually([&] { return incarnations(victim) >= 2; }, 15s))
        << "replica " << victim << " was not restarted";
    ASSERT_TRUE(eventually([&] { return cluster_->unavailable() == 0; }, 5s));
  }
  const auto final = client.try_read(1);
  ASSERT_TRUE(final.has_value());
  EXPECT_EQ(final->ts, 4u);
  EXPECT_EQ(net::wire::decode_u64(final->value), 102u);
}

TEST_F(ClusterTest, AckedWritesSurviveFullClusterCrash) {
  abd::RemoteRegisterClient client(cluster_->endpoints(), 3, client_config());
  ASSERT_EQ(client.try_write(2, 41, net::wire::encode_u64(424242)),
            abd::OpStatus::kOk);
  // kill -9 ALL replicas at once: no majority holds the value in memory
  // any more — only the fsynced WALs do.
  for (std::size_t i = 0; i < 3; ++i) ASSERT_TRUE(cluster_->kill9(i));
  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(eventually([&] { return incarnations(i) >= 2; }, 15s));
  }
  const auto got = client.try_read(2);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->ts, 41u);
  EXPECT_EQ(net::wire::decode_u64(got->value), 424242u);
}

TEST_F(ClusterTest, ToleratesStalledReplicaAndStaleEpochReplies) {
  abd::RemoteRegisterClient client(cluster_->endpoints(), 4, client_config());
  ASSERT_EQ(client.try_write(0, 1, net::wire::encode_u64(7)),
            abd::OpStatus::kOk);
  // Freeze one replica: its peers see silence (no EOF), ops proceed on the
  // remaining majority.
  ASSERT_TRUE(cluster_->stall(1));
  EXPECT_EQ(client.try_write(0, 2, net::wire::encode_u64(8)),
            abd::OpStatus::kOk);
  const auto got = client.try_read(0);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->ts, 2u);
  ASSERT_TRUE(cluster_->resume(1));
  EXPECT_TRUE(eventually([&] { return cluster_->unavailable() == 0; }));
}

TEST_F(ClusterTest, EpochAdvancesAcrossRestarts) {
  // Two kills => three incarnations; the epoch in the READY line must be
  // strictly increasing (durable incarnation counter).
  for (int round = 0; round < 2; ++round) {
    const std::size_t want = 2 + static_cast<std::size_t>(round);
    ASSERT_TRUE(cluster_->kill9(0));
    ASSERT_TRUE(eventually([&] { return incarnations(0) >= want; }, 15s));
  }
  std::ifstream in(dir_ + "/replica-0/daemon.log");
  std::string line;
  std::uint64_t last_epoch = 0;
  std::size_t seen = 0;
  while (std::getline(in, line)) {
    unsigned port = 0;
    unsigned long long epoch = 0;
    if (std::sscanf(line.c_str(), "READY port=%u epoch=%llu", &port,
                    &epoch) == 2) {
      EXPECT_GT(epoch, last_epoch);
      last_epoch = epoch;
      ++seen;
    }
  }
  EXPECT_GE(seen, 3u);
}

TEST_F(ClusterTest, RecoveredReplicaResyncsWritesItMissed) {
  abd::RemoteRegisterClient client(cluster_->endpoints(), 5, client_config());
  ASSERT_TRUE(cluster_->kill9(2));
  // Write while replica 2 is down: it never sees ts=10.
  ASSERT_EQ(client.try_write(0, 10, net::wire::encode_u64(1000)),
            abd::OpStatus::kOk);
  ASSERT_TRUE(eventually([&] { return incarnations(2) >= 2; }, 15s));
  // After resync, replica 2's log records completion; the write must now
  // be on all three replicas — kill a DIFFERENT majority-complement and
  // the value must still be readable even if the surviving majority
  // includes the once-dead replica 2.
  // Wait for a RESYNC logged *after* the second READY: the first
  // incarnation's resync may have been killed mid-flight (it races the
  // kill9 above, and loses under sanitizers), so counting two resync lines
  // would hang forever.
  ASSERT_TRUE(eventually(
      [&] {
        std::ifstream in(dir_ + "/replica-2/daemon.log");
        std::string line;
        std::size_t readys = 0;
        bool resynced_after_restart = false;
        while (std::getline(in, line)) {
          if (line.rfind("READY", 0) == 0) {
            ++readys;
          } else if (line.rfind("RESYNC done", 0) == 0 && readys >= 2) {
            resynced_after_restart = true;
          }
        }
        return resynced_after_restart;
      },
      15s));
  ASSERT_TRUE(cluster_->kill9(0));
  const auto got = client.try_read(0);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->ts, 10u);
  EXPECT_EQ(net::wire::decode_u64(got->value), 1000u);
}

/// Raw single-replica read: one frame over a fresh socket, no quorum, no
/// write-back, no confirm side effects — sees exactly what the daemon
/// would reply to a client's query round.
std::optional<Frame> probe_read(const net::Endpoint& ep, std::uint64_t reg) {
  std::string err;
  net::Socket sock = net::tcp_connect(ep, 1000ms, &err);
  if (!sock.valid()) return std::nullopt;
  Frame req;
  req.type = net::wire::kReadReq;
  req.from = 99;
  req.rid = 1;
  req.reg = reg;
  if (!net::send_frame(sock, req)) return std::nullopt;
  Frame reply;
  if (net::recv_frame(sock, std::chrono::steady_clock::now() + 2s, &reply) !=
      net::RecvStatus::kOk) {
    return std::nullopt;
  }
  return reply;
}

TEST_F(ClusterTest, ConfirmedBitIsServedAndResetByRestart) {
  abd::RemoteRegisterClient client(cluster_->endpoints(), 6, client_config());
  ASSERT_EQ(client.try_write(0, 1, net::wire::encode_u64(5)),
            abd::OpStatus::kOk);
  // The confirm broadcast is fire-and-forget; each daemon folds it in
  // asynchronously and must then serve reads with kFlagTsConfirmed.
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(eventually([&] {
      const auto r = probe_read(cluster_->endpoints()[i], 0);
      return r.has_value() && r->ts == 1 &&
             (r->flags & net::wire::kFlagTsConfirmed) != 0;
    })) << "replica " << i << " never served the confirmed bit";
  }

  // Confirmed state is deliberately in-memory only: after kill -9 the WAL
  // restores the VALUE, but the restarted incarnation must not claim it
  // confirmed — it cannot know which of its log entries reached a
  // majority, and a false claim would let fast reads return an
  // unstabilized value.
  ASSERT_TRUE(cluster_->kill9(2));
  ASSERT_TRUE(eventually([&] { return incarnations(2) >= 2; }, 15s));
  ASSERT_TRUE(eventually(
      [&] {
        const auto r = probe_read(cluster_->endpoints()[2], 0);
        return r.has_value() && r->ts == 1;
      },
      10s))
      << "restarted replica lost the write";
  const auto after = probe_read(cluster_->endpoints()[2], 0);
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->flags & net::wire::kFlagTsConfirmed, 0)
      << "restart manufactured stability evidence";

  // A fresh completed write re-establishes the bit. The confirm rides a
  // fire-and-forget frame that is dropped if the bus link to the restarted
  // replica is still in reconnect cooldown, so retry with fresh timestamps
  // until one write's confirm lands there.
  std::uint64_t ts = 1;
  EXPECT_TRUE(eventually(
      [&] {
        (void)client.try_write(0, ++ts, net::wire::encode_u64(6));
        const auto r = probe_read(cluster_->endpoints()[2], 0);
        return r.has_value() && r->ts >= 2 &&
               (r->flags & net::wire::kFlagTsConfirmed) != 0;
      },
      10s))
      << "no write's confirm ever reached the restarted replica";
}

}  // namespace
}  // namespace asnap
