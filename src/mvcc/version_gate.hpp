// Versioned-publication engine: wait-free multi-version reads through a
// single packed refcount/pointer word (the atomsnap pattern, SNIPPETS.md
// Snippet 3).
//
// Role in this reproduction: the paper obtains an atomic snapshot by
// *collecting* n registers until interference subsides (or a view can be
// borrowed). The svc layer already collapsed read-mostly traffic onto a
// generation-validated cache, but every hit still copied the view under a
// shared_mutex and every fill blocked hits behind a unique_lock. A
// VersionGate removes both: the writer builds the next snapshot version
// off to the side and installs it with ONE atomic exchange/CAS of a packed
// word; a reader acquires a whole consistent version with ONE fetch_add on
// the same word. No collect, no lock, no retry on the read path — the
// progress/space tradeoff of Imbs–Kuznetsov–Rieutord taken to its endpoint:
// scans become wait-free at the cost of retired versions awaiting
// reclamation (bounded, see below).
//
// The packed word (canonical x86-64/AArch64 user-space layout):
//
//     63            48 47                                0
//    +----------------+----------------------------------+
//    | outer refcount |      Version* (48-bit VA)        |
//    +----------------+----------------------------------+
//
//   * acquire  = ctrl.fetch_add(1 << 48, acquire): bumps the outer count
//     and returns the pointer it protected, in one indivisible RMW. The
//     count wraps mod 2^16 without touching the pointer bits (the add
//     carries out of the top of the word).
//   * publish  = ctrl.exchange(new, acq_rel) (or CAS, see try_publish):
//     installs the next version with outer count 0 and atomically learns
//     the displaced version's final outer count.
//
// Reclamation (the "grace period") is decided by counting, not by epochs
// on the read path: each version tracks its releases in a 64-bit state
// word. When the writer displaces a version it *deposits* the final outer
// count (total acquires, mod 2^16) into that state word with one fetch_or;
// whichever operation — the deposit or a release — makes
//
//     releases ≡ deposited outer count   (mod 2^16)
//
// true with the deposit flag set is the unique last-out and moves the
// version to the gate's retired list. Both paths are single RMWs on one
// atomic, so exactly one wins. The mod-2^16 comparison is exact as long as
// the number of *outstanding* acquisitions on one version stays below
// 65 536 (Snippet 3's documented gap rule). That bound is ENFORCED, not
// assumed: acquire() tracks outstanding guards gate-wide in a dedicated
// counter (the packed field is cumulative mod 2^16, so it cannot tell
// outstanding from wrapped) and spins at 65 535 until a release frees a
// slot, instead of silently wrapping the packed count and corrupting the
// drain condition (GateStats::saturation_stalls counts such waits).
//
// Retired versions are provably reader-free, but they are not freed inline
// on the reader path (releases stay two RMWs worst-case): they park on a
// lock-free grace list, stamped with the publish epoch at which they died,
// and the next publish (or an explicit reclaim()) hands them to the
// process-wide hazard domain (src/hazard/) whose amortized scan performs
// the actual deletes. Routing the slow path through hazard::Domain keeps
// every deferred free in the repo behind one ASan/TSan-exercised mechanism
// and inherits its orphan handling at thread exit.
//
// ABA safety of try_publish: a conditional publisher names its expected
// version by pointer while holding a ReadGuard on it. The guard's refcount
// keeps that version out of the retired list, so its address cannot be
// recycled while it is anyone's CAS expectation — pointer equality really
// means version identity. (Full argument: DESIGN.md §14.)
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <utility>

#include "common/assert.hpp"
#include "hazard/hazard_pointers.hpp"
#include "trace/event.hpp"

namespace asnap::mvcc {

/// Monotonic gate counters; fuzzy when read concurrently (relaxed).
struct GateStats {
  std::uint64_t published = 0;  ///< versions installed (incl. the initial)
  std::uint64_t retired = 0;    ///< versions displaced by a later publish
  std::uint64_t reclaimed = 0;  ///< quiesced versions handed to reclamation
  std::uint64_t cas_retries = 0;      ///< try_publish word retries (readers moved)
  std::uint64_t refcount_high_water = 0;  ///< max readers outstanding at unlink
  std::uint64_t grace_pending = 0;    ///< quiesced, awaiting the hazard pass
  std::uint64_t saturation_stalls = 0;  ///< acquires that waited at the 2^16-1 reader ceiling
};

/// Single-word versioned publication of an immutable value of type T.
///
/// Readers: acquire() is wait-free (one fetch_add) and returns an RAII
/// ReadGuard lending a const view of one consistent version.
///
/// Writers: publish() installs unconditionally and requires external
/// serialization of writers (one writer, or a mutex/batcher above — the
/// svc scan cache's single-flight fill, for instance). try_publish()
/// is the lock-free conditional form used by the A4 backend's
/// read-copy-update loop; it fails iff the current version is no longer
/// `expected`, and retries internally only when the outer *count* moved
/// (a reader slipped in between), never when the pointer did.
template <typename T>
class VersionGate {
  struct Version;

 public:
  /// RAII lease on one published version. Move-only; the payload reference
  /// is valid for the guard's lifetime. Holding a guard pins the version
  /// (it cannot be reclaimed and its address cannot be reused).
  class ReadGuard {
   public:
    ReadGuard() = default;
    ReadGuard(ReadGuard&& o) noexcept
        : gate_(std::exchange(o.gate_, nullptr)),
          v_(std::exchange(o.v_, nullptr)) {}
    ReadGuard& operator=(ReadGuard&& o) noexcept {
      if (this != &o) {
        reset();
        gate_ = std::exchange(o.gate_, nullptr);
        v_ = std::exchange(o.v_, nullptr);
      }
      return *this;
    }
    ReadGuard(const ReadGuard&) = delete;
    ReadGuard& operator=(const ReadGuard&) = delete;
    ~ReadGuard() { reset(); }

    explicit operator bool() const { return v_ != nullptr; }
    const T& operator*() const { return v_->payload; }
    const T* operator->() const { return &v_->payload; }
    /// Publish sequence number of the leased version (1 = initial value).
    std::uint64_t epoch() const { return v_->epoch; }

    void reset() {
      if (v_ != nullptr) gate_->release(v_);
      gate_ = nullptr;
      v_ = nullptr;
    }

   private:
    friend class VersionGate;
    ReadGuard(VersionGate* gate, Version* v) : gate_(gate), v_(v) {}
    VersionGate* gate_ = nullptr;
    Version* v_ = nullptr;
  };

  /// `trace_id` is the pid carried by this gate's kMvcc* trace events.
  explicit VersionGate(T initial, std::uint32_t trace_id = 0)
      : trace_id_(trace_id) {
    Version* v = new Version{std::move(initial), /*epoch=*/1};
    ctrl_.store(pack(v), std::memory_order_release);
    published_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Precondition: no live ReadGuards and no concurrent operations.
  ~VersionGate() {
    reclaim();
    delete unpack(ctrl_.load(std::memory_order_acquire));
  }

  VersionGate(const VersionGate&) = delete;
  VersionGate& operator=(const VersionGate&) = delete;

  /// One fetch_add acquires a whole consistent snapshot version. Wait-free
  /// below the reader ceiling; at 65 535 concurrently outstanding guards the
  /// call SPINS until some reader releases instead of letting the 16-bit
  /// outer count wrap — a wrapped count would let the mod-2^16 drain
  /// condition fire with readers still out, freeing a version under them.
  /// The gate-wide outstanding count bounds every per-version count from
  /// above, so staying below 2^16 gate-wide keeps the drain rule exact.
  ReadGuard acquire() {
    std::uint32_t prior =
        readers_out_.fetch_add(1, std::memory_order_acquire);
    if (prior >= kMaxOutstanding) [[unlikely]] {
      saturation_stalls_.fetch_add(1, std::memory_order_relaxed);
      do {
        readers_out_.fetch_sub(1, std::memory_order_release);
        std::this_thread::yield();
        prior = readers_out_.fetch_add(1, std::memory_order_acquire);
      } while (prior >= kMaxOutstanding);
    }
    ASNAP_DEBUG_ASSERT_MSG(prior < kMaxOutstanding,
                           "VersionGate outer refcount ceiling breached");
    const std::uint64_t w = ctrl_.fetch_add(kCountOne, std::memory_order_acquire);
    Version* v = unpack(w);
    ASNAP_TRACE_EVENT(trace::EventKind::kMvccAcquire, trace_id_, v->epoch,
                      outer_of(w) + 1);
    return ReadGuard(this, v);
  }

  /// Install `next` as the new current version. Requires writers to be
  /// externally serialized (single logical writer). Readers never block it.
  void publish(T next) {
    Version* cur = unpack(ctrl_.load(std::memory_order_acquire));
    // next_epoch stays a local: the moment nv is installed it is exposed
    // to concurrent writers, which may displace AND reclaim it before we
    // get to the lines below — nv must not be dereferenced after the swap.
    const std::uint64_t next_epoch = cur->epoch + 1;
    Version* nv = new Version{std::move(next), next_epoch};
    const std::uint64_t old = ctrl_.exchange(pack(nv), std::memory_order_acq_rel);
    published_.fetch_add(1, std::memory_order_relaxed);
    ASNAP_TRACE_EVENT(trace::EventKind::kMvccPublish, trace_id_, next_epoch,
                      outer_of(old));
    retire_displaced(unpack(old), outer_of(old), next_epoch);
    reclaim_parked();
  }

  /// Conditional publish for read-copy-update: succeeds iff the current
  /// version is still `expected` (which the caller must pin with a live
  /// ReadGuard — that pin is what makes pointer equality ABA-proof).
  /// Returns false, consuming nothing but the allocation, if another
  /// writer got there first. Lock-free: the internal retry only fires when
  /// a reader's count bump changed the word, and that reader made progress.
  bool try_publish(const ReadGuard& expected, T next) {
    ASNAP_ASSERT_MSG(expected.v_ != nullptr,
                     "try_publish requires a live guard on the base version");
    Version* base = expected.v_;
    // next_epoch stays a local: once the CAS installs nv it is exposed to
    // concurrent writers, which may displace AND reclaim it before the
    // lines after the loop run — nv must not be dereferenced post-install.
    const std::uint64_t next_epoch = base->epoch + 1;
    Version* nv = new Version{std::move(next), next_epoch};
    std::uint64_t w = ctrl_.load(std::memory_order_acquire);
    while (true) {
      if (unpack(w) != base) {
        delete nv;
        return false;
      }
      if (ctrl_.compare_exchange_weak(w, pack(nv), std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
        break;
      }
      // w reloaded by the failed CAS; if the pointer still matches, only
      // the outer count moved (a reader acquired) — go again.
      cas_retries_.fetch_add(1, std::memory_order_relaxed);
    }
    published_.fetch_add(1, std::memory_order_relaxed);
    ASNAP_TRACE_EVENT(trace::EventKind::kMvccPublish, trace_id_, next_epoch,
                      outer_of(w));
    retire_displaced(base, outer_of(w), next_epoch);
    reclaim_parked();
    return true;
  }

  /// Read-copy-update: copy the current payload, mutate the copy, publish
  /// it conditionally; repeat from the new current on conflict. Lock-free
  /// among writers; never blocks or is blocked by readers.
  template <typename Mutator>
  void update_with(Mutator&& mutate) {
    while (true) {
      ReadGuard g = acquire();
      T next = *g;  // deep copy of the pinned base version
      mutate(next);
      if (try_publish(g, std::move(next))) return;
    }
  }

  /// Drain the grace list into the hazard domain and run its scan now.
  /// Returns the number of versions handed over. Never required for
  /// correctness; bounds memory at quiescent points and in tests.
  std::size_t reclaim() {
    const std::size_t handed = reclaim_parked();
    hazard::Domain::global().drain();
    return handed;
  }

  /// Publish count of the current version (1 = initial).
  std::uint64_t epoch() const {
    return unpack(ctrl_.load(std::memory_order_acquire))->epoch;
  }

  GateStats stats() const {
    GateStats s;
    s.published = published_.load(std::memory_order_relaxed);
    s.retired = retired_.load(std::memory_order_relaxed);
    s.reclaimed = reclaimed_.load(std::memory_order_relaxed);
    s.cas_retries = cas_retries_.load(std::memory_order_relaxed);
    s.refcount_high_water = high_water_.load(std::memory_order_relaxed);
    s.grace_pending = grace_pending_.load(std::memory_order_relaxed);
    s.saturation_stalls = saturation_stalls_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  // Packed control word: outer refcount in the top 16 bits, 48-bit pointer
  // below. The acquire increment carries out of bit 63, so the count wraps
  // mod 2^16 without corrupting the pointer.
  static constexpr int kPtrBits = 48;
  static constexpr std::uint64_t kPtrMask = (std::uint64_t{1} << kPtrBits) - 1;
  static constexpr std::uint64_t kCountOne = std::uint64_t{1} << kPtrBits;
  /// Ceiling on concurrently outstanding ReadGuards across the gate. One
  /// below 2^16: the packed outer count is 16 bits and the drain comparison
  /// is exact only while per-version outstanding acquires stay below 2^16.
  static constexpr std::uint32_t kMaxOutstanding = 0xFFFF;

  // Version::state packing: releases in bits [0,47), the deposited outer
  // count in bits [47,63), the deposit flag in bit 63. One atomic so the
  // deposit (fetch_or) and every release (fetch_add) are totally ordered
  // and exactly one operation observes the completed drain condition.
  static constexpr std::uint64_t kReleasedMask = (std::uint64_t{1} << 47) - 1;
  static constexpr int kOuterShift = 47;
  static constexpr std::uint64_t kDepositedBit = std::uint64_t{1} << 63;

  struct Version {
    T payload;
    std::uint64_t epoch = 0;       ///< publish sequence, 1-based
    std::atomic<std::uint64_t> state{0};
    std::uint64_t retire_epoch = 0;  ///< epoch of the publish that unlinked us
    Version* grace_next = nullptr;   ///< intrusive grace-list link
  };

  static std::uint64_t pack(Version* v) {
    const auto raw = reinterpret_cast<std::uintptr_t>(v);
    ASNAP_ASSERT_MSG((raw & ~kPtrMask) == 0,
                     "pointer exceeds the 48-bit packed range");
    return static_cast<std::uint64_t>(raw);
  }
  static Version* unpack(std::uint64_t w) {
    return reinterpret_cast<Version*>(w & kPtrMask);
  }
  static std::uint16_t outer_of(std::uint64_t w) {
    return static_cast<std::uint16_t>(w >> kPtrBits);
  }

  void release(Version* v) {
    const std::uint64_t prev = v->state.fetch_add(1, std::memory_order_acq_rel);
    const std::uint64_t released = (prev & kReleasedMask) + 1;
    const auto outer = static_cast<std::uint16_t>(prev >> kOuterShift);
    if ((prev & kDepositedBit) != 0 &&
        static_cast<std::uint16_t>(released) == outer) {
      park_quiesced(v);
    }
    // Free the reader slot only AFTER the release is recorded on the
    // version: a slot freed earlier could be re-acquired on the same
    // version and push its outstanding count past the mod-2^16 bound the
    // acquire() ceiling exists to protect.
    [[maybe_unused]] const std::uint32_t before =
        readers_out_.fetch_sub(1, std::memory_order_release);
    ASNAP_DEBUG_ASSERT_MSG(before != 0,
                           "VersionGate release without matching acquire");
  }

  /// Deposit the displaced version's final outer count. If every acquire
  /// has already released, this deposit is the last-out; otherwise the
  /// matching release will be.
  void retire_displaced(Version* v, std::uint16_t outer,
                        std::uint64_t at_epoch) {
    v->retire_epoch = at_epoch;
    // Snapshot the epoch BEFORE the deposit: the fetch_or may crown a
    // racing release as the last-out, after which v can be parked and
    // reclaimed by any concurrent publisher — v is untouchable below
    // unless the deposit itself turns out to be the last-out.
    const std::uint64_t v_epoch = v->epoch;
    retired_.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t prev = v->state.fetch_or(
        kDepositedBit | (std::uint64_t{outer} << kOuterShift),
        std::memory_order_acq_rel);
    const std::uint64_t released = prev & kReleasedMask;
    const std::uint16_t outstanding =
        static_cast<std::uint16_t>(outer - static_cast<std::uint16_t>(released));
    bump_high_water(outstanding);
    ASNAP_TRACE_EVENT(trace::EventKind::kMvccRetire, trace_id_, v_epoch,
                      outstanding);
    if (static_cast<std::uint16_t>(released) == outer) park_quiesced(v);
  }

  /// The version has provably no readers: move it to the grace list. Kept
  /// off the reader's critical path cost-wise (one CAS push, no scan, no
  /// free) — actual deletion happens in reclaim_parked().
  void park_quiesced(Version* v) {
    ASNAP_TRACE_EVENT(trace::EventKind::kMvccReclaim, trace_id_, v->epoch,
                      v->retire_epoch);
    reclaimed_.fetch_add(1, std::memory_order_relaxed);
    grace_pending_.fetch_add(1, std::memory_order_relaxed);
    Version* head = grace_head_.load(std::memory_order_relaxed);
    do {
      v->grace_next = head;
    } while (!grace_head_.compare_exchange_weak(head, v,
                                                std::memory_order_release,
                                                std::memory_order_relaxed));
  }

  /// Hand every parked (quiesced) version to the hazard domain's amortized
  /// reclamation. Called by publishers — writers pay for cleanup, readers
  /// never do. Returns the number handed over.
  std::size_t reclaim_parked() {
    Version* head = grace_head_.exchange(nullptr, std::memory_order_acquire);
    std::size_t n = 0;
    while (head != nullptr) {
      Version* next = head->grace_next;
      hazard::retire_object(head);
      head = next;
      ++n;
    }
    if (n != 0) grace_pending_.fetch_sub(n, std::memory_order_relaxed);
    return n;
  }

  void bump_high_water(std::uint64_t outstanding) {
    std::uint64_t hw = high_water_.load(std::memory_order_relaxed);
    while (outstanding > hw &&
           !high_water_.compare_exchange_weak(hw, outstanding,
                                              std::memory_order_relaxed)) {
    }
  }

  std::atomic<std::uint64_t> ctrl_{0};
  std::atomic<Version*> grace_head_{nullptr};
  std::uint32_t trace_id_;

  /// Outstanding ReadGuards, gate-wide. Separate from the packed word: the
  /// word's 16-bit field is cumulative mod 2^16 (wrap there is legitimate),
  /// so only a dedicated counter can see *outstanding* saturation coming.
  std::atomic<std::uint32_t> readers_out_{0};

  std::atomic<std::uint64_t> published_{0};
  std::atomic<std::uint64_t> retired_{0};
  std::atomic<std::uint64_t> reclaimed_{0};
  std::atomic<std::uint64_t> cas_retries_{0};
  std::atomic<std::uint64_t> high_water_{0};
  std::atomic<std::uint64_t> grace_pending_{0};
  std::atomic<std::uint64_t> saturation_stalls_{0};
};

}  // namespace asnap::mvcc
