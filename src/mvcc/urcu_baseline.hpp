// Minimal userspace-RCU-style publication gate — the measurement baseline
// for VersionGate, in the pattern of atomsnap's own URCU example bench
// (SNIPPETS.md Snippet 3 discussion; the original compared against
// `example/urcu/bench_urcu.cpp`).
//
// Classic epoch-counter URCU shape:
//   * readers mark a critical section by copying the global epoch into a
//     per-thread counter (low bit set = inside), read the pointer, then
//     store 0 on exit — plain stores/loads, no RMW on shared state;
//   * the writer swaps the pointer, advances the global epoch, then spins
//     until every registered reader is either quiescent (counter 0) or has
//     entered after the advance (counter >= new epoch), and only then
//     frees the displaced node.
//
// The contrast this baseline exists to expose: URCU's reader is cheap but
// its *writer-side grace period is O(threads) blocking* — the writer
// cannot retire memory until every reader checks in. VersionGate pays one
// fetch_add per reader and gets an O(1), non-blocking writer: the exact
// displaced-refcount deposit replaces the epoch wait. E15-mvcc puts both
// under the same read-ratio × thread sweep.
//
// All transitions use seq_cst atomics (not fences) so the baseline is
// TSan-modelable and can sit in the mvcc-labeled suite.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/assert.hpp"
#include "common/config.hpp"

namespace asnap::mvcc {

/// URCU-style publication of an immutable heap value of type T. Readers
/// must register (one slot per thread, claimed lazily); at most
/// kMaxThreads distinct reader threads over the gate's lifetime.
template <typename T>
class UrcuGate {
  struct Node {
    T payload;
  };

 public:
  class ReadGuard {
   public:
    ReadGuard() = default;
    ReadGuard(ReadGuard&& o) noexcept
        : gate_(std::exchange(o.gate_, nullptr)),
          node_(std::exchange(o.node_, nullptr)) {}
    ReadGuard& operator=(ReadGuard&& o) noexcept {
      if (this != &o) {
        reset();
        gate_ = std::exchange(o.gate_, nullptr);
        node_ = std::exchange(o.node_, nullptr);
      }
      return *this;
    }
    ReadGuard(const ReadGuard&) = delete;
    ReadGuard& operator=(const ReadGuard&) = delete;
    ~ReadGuard() { reset(); }

    const T& operator*() const { return node_->payload; }
    const T* operator->() const { return &node_->payload; }

    void reset() {
      if (gate_ != nullptr) gate_->read_unlock();
      gate_ = nullptr;
      node_ = nullptr;
    }

   private:
    friend class UrcuGate;
    ReadGuard(UrcuGate* gate, Node* node) : gate_(gate), node_(node) {}
    UrcuGate* gate_ = nullptr;
    Node* node_ = nullptr;
  };

  explicit UrcuGate(T initial) {
    current_.store(new Node{std::move(initial)}, std::memory_order_release);
  }

  /// Precondition: no live ReadGuards and no concurrent operations.
  ~UrcuGate() { delete current_.load(std::memory_order_acquire); }

  UrcuGate(const UrcuGate&) = delete;
  UrcuGate& operator=(const UrcuGate&) = delete;

  /// Enter a read-side critical section and lend the current value.
  /// Non-nesting per thread (one outstanding guard), as in classic URCU.
  ReadGuard acquire() {
    Slot& s = slot();
    ASNAP_ASSERT_MSG(s.ctr.load(std::memory_order_relaxed) == 0,
                     "UrcuGate read sections do not nest");
    // seq_cst store-then-load: the mark is globally ordered before the
    // pointer read, so a writer that swapped before our read must observe
    // the mark when it scans (or we read the new pointer — either is safe).
    s.ctr.store(epoch_.load(std::memory_order_seq_cst) | 1,
                std::memory_order_seq_cst);
    Node* n = current_.load(std::memory_order_seq_cst);
    return ReadGuard(this, n);
  }

  /// Install `next` and BLOCK until the grace period for the displaced
  /// node elapses (every reader quiescent or entered after the swap).
  /// Requires external serialization of writers.
  void publish(T next) {
    Node* nv = new Node{std::move(next)};
    Node* old = current_.exchange(nv, std::memory_order_seq_cst);
    synchronize();
    delete old;
  }

 private:
  struct alignas(kCacheLine) Slot {
    std::atomic<std::uint64_t> ctr{0};  ///< 0 = quiescent, else epoch|1
    std::atomic<bool> claimed{false};
  };

  void read_unlock() { slot().ctr.store(0, std::memory_order_seq_cst); }

  /// Wait out one grace period: advance the epoch, then wait for every
  /// registered reader to leave the pre-advance generation.
  void synchronize() {
    const std::uint64_t target =
        epoch_.fetch_add(2, std::memory_order_seq_cst) + 2;
    for (std::size_t i = 0; i < kMaxThreads; ++i) {
      Slot& s = slots_[i];
      if (!s.claimed.load(std::memory_order_acquire)) continue;
      while (true) {
        const std::uint64_t c = s.ctr.load(std::memory_order_seq_cst);
        if (c == 0 || c >= (target | 1)) break;
        std::this_thread::yield();
      }
    }
  }

  /// Per-(gate, thread) slot. Keyed by a process-unique gate id (never a
  /// recycled address), cached for the repeat-acquire fast path; the map
  /// fallback only runs on a thread's first touch of a given gate.
  Slot& slot() {
    struct Cache {
      std::uint64_t gate_id = 0;
      std::size_t idx = 0;
    };
    thread_local Cache cache;
    thread_local std::unordered_map<std::uint64_t, std::size_t> registry;
    if (cache.gate_id != gate_id_) {
      auto [it, inserted] = registry.try_emplace(gate_id_, 0);
      if (inserted) it->second = claim_slot();
      cache = {gate_id_, it->second};
    }
    return slots_[cache.idx];
  }

  static std::uint64_t next_gate_id() {
    static std::atomic<std::uint64_t> counter{1};
    return counter.fetch_add(1, std::memory_order_relaxed);
  }

  std::size_t claim_slot() {
    for (std::size_t i = 0; i < kMaxThreads; ++i) {
      bool expected = false;
      if (slots_[i].claimed.compare_exchange_strong(
              expected, true, std::memory_order_acq_rel)) {
        return i;
      }
    }
    ASNAP_ASSERT_MSG(false, "UrcuGate: more than kMaxThreads reader threads");
    return 0;
  }

  std::atomic<Node*> current_{nullptr};
  std::atomic<std::uint64_t> epoch_{2};  ///< even; readers mark epoch|1
  const std::uint64_t gate_id_ = next_gate_id();
  Slot slots_[kMaxThreads];
};

}  // namespace asnap::mvcc
