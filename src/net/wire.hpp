// Versioned, length-prefixed wire format for the ABD replica protocol over
// real sockets.
//
// Everything the simulated cluster exchanges through net::SimNetwork-style
// mailboxes (abd::MsgType requests/replies, failure-detector heartbeats) has
// a fixed binary encoding here, so independent OS processes — the
// tools/abd_replicad replica daemons and any client built on
// abd::RemoteRegisterClient — interoperate across restarts and versions:
//
//   frame  := u32 body_len | body                  (body_len <= kMaxBody)
//   body   := u32 magic 'SNAP' | u8 version | u8 type | u16 flags
//           | u64 from | u64 rid | u64 epoch | u64 reg | u64 ts
//           | u32 value_len | value bytes
//
// All integers little-endian. `from` is the sender's node id (replica) or
// client id (requests); `rid` matches replies to in-flight quorum rounds
// (retransmissions reuse the rid — replica handlers are idempotent);
// `epoch` is the replying replica's incarnation, bumped durably on every
// daemon (re)start so clients can discard replies stamped by a pre-crash
// incarnation (the socket analog of AbdCluster's epoch check); `ts`/`reg`
// carry the ABD timestamp and register index. Values are opaque byte
// strings — the daemon replicates them without interpretation; typed
// clients encode through the codecs at the bottom (lin::Tag, u64).
//
// Versioning: a decoder rejects frames whose magic or version it does not
// know, and a reader must treat a malformed frame as a broken peer (close
// the connection) — never resynchronize mid-stream. v2 spent the u16
// reserved field on `flags` (bit 0 = kFlagTsConfirmed on kReadReply: the
// replica knows `ts` is majority-acked, enabling one-round fast reads) and
// added the fire-and-forget kConfirm type. A v2 decoder still accepts v1
// frames — their zero reserved bytes read back as "no flags", which is the
// safe, conservative meaning — so mixed-version clusters only lose fast
// reads, never correctness.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "lin/history.hpp"

namespace asnap::net::wire {

inline constexpr std::uint32_t kMagic = 0x50414E53;  // "SNAP" little-endian
inline constexpr std::uint8_t kWireVersion = 2;
/// Oldest version this decoder still accepts (v1 = pre-flags; decoded with
/// flags = 0, i.e. nothing confirmed).
inline constexpr std::uint8_t kMinWireVersion = 1;
/// Header bytes after the length prefix, excluding the value payload.
inline constexpr std::size_t kHeaderBytes = 4 + 1 + 1 + 2 + 8 * 5 + 4;
/// Upper bound on one frame body: rejects corrupt length prefixes before
/// they become allocation bombs.
inline constexpr std::uint32_t kMaxBody = 1u << 20;

/// Protocol message discriminators. 1..4 mirror abd::MsgType so a trace of
/// either cluster reads the same; 5/6 are the socket transport's liveness
/// probes (the real-network stand-in for Port::kDetector heartbeats); 7 is
/// v2's fire-and-forget stability notice (no reply — a daemon folds it into
/// its per-register confirmed ts, and a v1 peer ignores the unknown type).
enum Type : std::uint8_t {
  kReadReq = 1,
  kReadReply = 2,
  kWriteReq = 3,
  kWriteAck = 4,
  kPing = 5,
  kPong = 6,
  kConfirm = 7,
};

/// Frame::flags bit 0, meaningful on kReadReply: the replying replica knows
/// the reported `ts` is majority-acked (its confirmed ts >= its stored ts),
/// so a reader adopting this (ts, value) may skip the write-back round.
inline constexpr std::uint16_t kFlagTsConfirmed = 1u << 0;

using Bytes = std::vector<std::uint8_t>;

struct Frame {
  std::uint8_t version = kWireVersion;
  std::uint8_t type = 0;
  std::uint16_t flags = 0;  ///< kFlag* bits; always 0 when decoded from v1
  std::uint64_t from = 0;   ///< sender node/client id
  std::uint64_t rid = 0;    ///< request id for RPC matching
  std::uint64_t epoch = 0;  ///< responder incarnation (replies)
  std::uint64_t reg = 0;    ///< register index
  std::uint64_t ts = 0;     ///< ABD timestamp
  Bytes value;
};

/// Serialize including the u32 length prefix, ready for send().
Bytes encode(const Frame& frame);

/// Every way a frame body can fail to parse. Typed so fuzzers and peers can
/// assert on the exact failure mode instead of matching message strings;
/// every rejection reason is one of these — the decoder never throws and
/// never reads past `len`.
enum class DecodeError : std::uint8_t {
  kNone = 0,
  kShortHeader,     ///< body shorter than the fixed header
  kOversized,       ///< body longer than kMaxBody
  kBadMagic,        ///< first four bytes are not 'SNAP'
  kBadVersion,      ///< version byte this decoder does not know
  kLengthMismatch,  ///< declared value_len disagrees with the body length
};

/// Stable human-readable reason ("bad magic", ...) for a DecodeError.
const char* decode_error_name(DecodeError error);

/// Parse one frame BODY (the bytes after the length prefix). On failure
/// returns nullopt and, when `error` is non-null, the typed reason.
std::optional<Frame> decode(const std::uint8_t* body, std::size_t len,
                            DecodeError* error);

/// Same, reporting the reason as decode_error_name() text instead.
std::optional<Frame> decode(const std::uint8_t* body, std::size_t len,
                            std::string* error = nullptr);

/// CRC-32 (IEEE, reflected) — used by the replica write-ahead log to detect
/// torn tail records after a kill -9. Software table implementation: no
/// external dependency.
std::uint32_t crc32(const std::uint8_t* data, std::size_t len,
                    std::uint32_t seed = 0);

// --- value codecs -----------------------------------------------------------

/// lin::Tag <-> 12 bytes (u32 writer | u64 seq), the value type every
/// checked workload writes (unique tags make the reads-from relation of a
/// history unambiguous).
Bytes encode_tag(const lin::Tag& tag);
std::optional<lin::Tag> decode_tag(const Bytes& bytes);

Bytes encode_u64(std::uint64_t v);
std::optional<std::uint64_t> decode_u64(const Bytes& bytes);

}  // namespace asnap::net::wire
