// Seeded fault injection for the simulated network.
//
// Section 6 claims the message-passing snapshot is "resilient to process and
// link failures"; the ABD-line follow-ups (Imbs–Mostéfaoui–Perrin–Raynal,
// Hadjistasi–Nicolaou–Schwarzmann) further assume clients cope with
// arbitrary message LOSS, DUPLICATION and DELAY. A FaultInjector attached to
// Network::send realizes that adversary: per-message drop and duplication
// probabilities, bounded delivery delay (held messages released by the
// network's pump thread), and partition schedules that silently disconnect
// node groups until heal().
//
// All randomness comes from one seeded Rng, so a fixed seed yields a fixed
// sequence of fault decisions for a fixed sequence of send() calls (thread
// interleaving still varies which send draws which decision, exactly like
// the mailbox reordering Rng).
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/rng.hpp"

namespace asnap::net {

using NodeId = std::uint32_t;

/// Declarative description of the adversary. All probabilities are per
/// message (per send() call crossing the injector).
struct FaultPlan {
  double drop_prob = 0.0;   ///< message silently lost
  double dup_prob = 0.0;    ///< an extra copy is injected (independent of drop)
  double delay_prob = 0.0;  ///< a surviving copy is held for a bounded time
  std::chrono::microseconds min_delay{0};  ///< held-message delay lower bound
  std::chrono::microseconds max_delay{0};  ///< held-message delay upper bound
};

/// What the adversary chose to do with one message. `copies` is 0, 1 or 2
/// (drop and duplication are decided independently, so a duplicate can
/// survive the drop of the primary — real networks duplicate in flight).
/// delay[i] == 0 means copy i is delivered immediately.
struct FaultDecision {
  std::uint32_t copies = 1;
  std::chrono::microseconds delay[2] = {std::chrono::microseconds{0},
                                        std::chrono::microseconds{0}};
};

class FaultInjector {
 public:
  FaultInjector(std::size_t nodes, std::uint64_t seed, FaultPlan plan)
      : plan_(plan), rng_(seed), group_(nodes, 0) {}

  void set_plan(const FaultPlan& plan) {
    std::lock_guard lock(mu_);
    plan_ = plan;
  }

  FaultPlan plan() const {
    std::lock_guard lock(mu_);
    return plan_;
  }

  /// Install a partition: nodes in different groups cannot exchange
  /// messages. Every node should appear in exactly one group; nodes listed
  /// in no group land together in an implicit extra group.
  void partition(const std::vector<std::vector<NodeId>>& groups) {
    std::lock_guard lock(mu_);
    for (auto& g : group_) g = 0;  // implicit group for unlisted nodes
    std::uint32_t id = 1;
    for (const auto& members : groups) {
      for (const NodeId node : members) {
        if (node < group_.size()) group_[node] = id;
      }
      ++id;
    }
    partitioned_ = true;
  }

  /// Remove the partition; every pair of nodes can communicate again.
  void heal() {
    std::lock_guard lock(mu_);
    for (auto& g : group_) g = 0;
    partitioned_ = false;
  }

  bool connected(NodeId a, NodeId b) const {
    std::lock_guard lock(mu_);
    if (!partitioned_) return true;
    return group_[a] == group_[b];
  }

  /// Draw the fate of one message. Messages crossing a partition get zero
  /// copies; otherwise drop/dup/delay are drawn from the plan.
  FaultDecision decide(NodeId from, NodeId to) {
    std::lock_guard lock(mu_);
    FaultDecision d;
    if (partitioned_ && group_[from] != group_[to]) {
      d.copies = 0;
      return d;
    }
    const bool drop = plan_.drop_prob > 0.0 && rng_.chance(plan_.drop_prob);
    const bool dup = plan_.dup_prob > 0.0 && rng_.chance(plan_.dup_prob);
    d.copies = (drop ? 0u : 1u) + (dup ? 1u : 0u);
    for (std::uint32_t i = 0; i < d.copies; ++i) {
      if (plan_.delay_prob > 0.0 && plan_.max_delay.count() > 0 &&
          rng_.chance(plan_.delay_prob)) {
        const auto span =
            static_cast<std::uint64_t>((plan_.max_delay - plan_.min_delay).count());
        d.delay[i] = plan_.min_delay +
                     std::chrono::microseconds(
                         span > 0 ? rng_.below(span + 1) : 0);
      }
    }
    return d;
  }

 private:
  mutable std::mutex mu_;
  FaultPlan plan_;
  Rng rng_;
  std::vector<std::uint32_t> group_;  ///< partition group per node
  bool partitioned_ = false;
};

}  // namespace asnap::net
