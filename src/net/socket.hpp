// Thin POSIX TCP helpers for the real multi-process cluster: RAII file
// descriptors, deadline-aware connect/accept, and whole-frame send/receive
// in the wire.hpp format.
//
// Design choices, all in service of the crash model:
//   * every receive is poll()-bounded so server loops and client rounds can
//     honor stop requests and operation deadlines instead of blocking in
//     the kernel forever (a SIGSTOPped peer looks exactly like a dead one);
//   * sends use MSG_NOSIGNAL — a peer killed with `kill -9` turns into
//     EPIPE, not process death;
//   * a frame that fails to parse marks the connection broken; peers never
//     try to resynchronize a byte stream (wire.hpp's framing rule).
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/wire.hpp"

namespace asnap::net {

/// One TCP endpoint, e.g. {"127.0.0.1", 7001}.
struct Endpoint {
  std::string host;
  std::uint16_t port = 0;
};

/// Parse "host:port,host:port,..." (the --peers / --cluster flag syntax).
/// Returns nullopt on any malformed element.
std::optional<std::vector<Endpoint>> parse_endpoints(const std::string& list);

/// RAII socket fd. Move-only; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }
  Socket(Socket&& other) noexcept : fd_(other.release()) {}
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  int release();
  void close();

 private:
  int fd_ = -1;
};

/// Bind + listen on host:port (port 0 picks an ephemeral port; bound_port()
/// reports the result). Invalid socket + errno message on failure.
class Listener {
 public:
  Listener() = default;
  static Listener open(const Endpoint& at, std::string* error = nullptr);

  bool valid() const { return sock_.valid(); }
  std::uint16_t bound_port() const { return port_; }

  /// Wait up to `timeout` for one connection. nullopt on timeout/error.
  std::optional<Socket> accept(std::chrono::milliseconds timeout);

  /// Close the listening socket (wakes nobody; accept() polls).
  void close() { sock_.close(); }

 private:
  Socket sock_;
  std::uint16_t port_ = 0;
};

/// Connect with a bounded wait (non-blocking connect + poll). The returned
/// socket is blocking with TCP_NODELAY set — quorum rounds are latency-bound
/// request/reply exchanges, Nagle only hurts.
Socket tcp_connect(const Endpoint& to, std::chrono::milliseconds timeout,
                   std::string* error = nullptr);

/// Write an encoded frame in full. False on any error (connection broken).
bool send_frame(const Socket& sock, const wire::Frame& frame);

/// Same, but give up when `deadline` passes mid-write. A half-open peer
/// whose receive window has filled (SIGSTOPped daemon, blackholed link)
/// otherwise parks the sender in the kernel forever — this is what lets a
/// per-operation deadline survive a wedged connection.
bool send_frame(const Socket& sock, const wire::Frame& frame,
                std::chrono::steady_clock::time_point deadline);

/// Write `len` raw bytes in full, bounded by `deadline`. Exposed for relays
/// (net/chaos_proxy) that forward byte ranges — including deliberately
/// partial frames — rather than re-encoding.
bool send_all(const Socket& sock, const std::uint8_t* data, std::size_t len,
              std::chrono::steady_clock::time_point deadline);

enum class RecvStatus : std::uint8_t {
  kOk = 0,
  kTimeout = 1,  ///< deadline passed with no complete frame
  kClosed = 2,   ///< orderly EOF or connection error
  kMalformed = 3,  ///< framing/decode violation: treat peer as broken
};

/// Read one complete frame, waiting until `deadline`. Partial reads are
/// resumed internally (the socket is only read from one thread).
RecvStatus recv_frame(const Socket& sock,
                      std::chrono::steady_clock::time_point deadline,
                      wire::Frame* out);

}  // namespace asnap::net
