// Simulated asynchronous message-passing network.
//
// Substrate for Section 6's remark that "by applying the emulators of [ABD]
// to the constructions presented in this paper, implementations of atomic
// snapshot memory are obtained in message-passing systems ... resilient to
// process and link failures, as long as a majority of the system remains
// connected."
//
// Model: n nodes, each with a server mailbox (replica protocol) and a client
// mailbox (quorum replies). Delivery is asynchronous: receive() pops a
// uniformly random pending message (seeded), so messages are arbitrarily
// reordered, and threads interleave arbitrarily. Crashed nodes silently drop
// all traffic in both directions — the fail-stop model of [ABD] — and may
// later recover() and rejoin. On top of reordering, an optional seeded
// FaultInjector (fault.hpp) makes the network LOSSY: per-message drop,
// duplication, bounded delivery delay (held messages released by a pump
// thread) and partition schedules with heal(). This is a substitution for a
// real cluster (see DESIGN.md §6): it preserves asynchrony, reordering,
// loss, duplication and crash/recovery behaviour, which is what the
// emulation claim is about.
#pragma once

#include <any>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "net/fault.hpp"

namespace asnap::net {

struct Message {
  NodeId from = 0;
  std::uint64_t type = 0;  ///< protocol-defined discriminator
  std::uint64_t rid = 0;   ///< request id for RPC matching
  std::any payload;
};

/// Which of a node's mailboxes a message targets.
enum class Port : std::uint8_t {
  kServer = 0,    ///< replica protocol handler
  kClient = 1,    ///< quorum replies to an in-flight client operation
  kDetector = 2,  ///< failure-detector heartbeats (kept off the data path)
};

/// Unordered mailbox: receive() returns a random pending message.
class Mailbox {
 public:
  explicit Mailbox(std::uint64_t seed) : rng_(seed) {}

  void push(Message m);

  /// Blocks until a message is available or the mailbox is closed.
  /// Returns nullopt only after close().
  std::optional<Message> receive();

  /// Deadline-aware receive: blocks until a message arrives, the mailbox is
  /// closed, or `deadline` passes — whichever comes first. Returns nullopt
  /// on timeout or on closed-and-drained; disambiguate with closed().
  std::optional<Message> receive_until(
      std::chrono::steady_clock::time_point deadline);

  /// Relative-timeout convenience over receive_until().
  std::optional<Message> receive_for(std::chrono::microseconds timeout);

  /// Non-blocking variant.
  std::optional<Message> try_receive();

  /// Wakes all receivers; subsequent receives drain what is pending, then
  /// return nullopt. Pushes after close are dropped.
  void close();

  /// Undo close(): the mailbox accepts pushes again (crash recovery).
  /// Pending messages from before the close were already droppable by the
  /// fail-stop model, so reopen() also clears them.
  void reopen();

  bool closed() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Message> pending_;
  Rng rng_;
  bool closed_ = false;
};

class Network {
 public:
  Network(std::size_t nodes, std::uint64_t seed);
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  std::size_t size() const { return nodes_; }

  /// Deliver (eventually) to the target's mailbox; dropped if either end
  /// has crashed or the mailbox is closed. With a fault plan installed the
  /// message may additionally be dropped, duplicated or delayed.
  void send(NodeId from, NodeId to, Port port, std::uint64_t type,
            std::uint64_t rid, std::any payload);

  /// Send to every node including `from` itself.
  void broadcast(NodeId from, Port port, std::uint64_t type,
                 std::uint64_t rid, const std::any& payload);

  Mailbox& mailbox(NodeId node, Port port);

  /// Fail-stop the node: closes its mailboxes and drops its future traffic.
  void crash(NodeId node);
  bool crashed(NodeId node) const;
  std::size_t alive_count() const;

  /// Undo crash(node): the node accepts and emits traffic again. Replica
  /// resynchronization is the protocol layer's job (AbdCluster::recover).
  void recover(NodeId node);

  /// Sever the bidirectional link between two nodes: messages between them
  /// silently vanish from now on. ([ABD] tolerates link failures as long as
  /// each operating client still reaches a majority.)
  void cut_link(NodeId a, NodeId b);
  /// Undo cut_link(a, b).
  void restore_link(NodeId a, NodeId b);
  bool link_ok(NodeId from, NodeId to) const;

  // --- fault injection (lossy-network adversary) ---------------------------

  /// Install (or replace) the seeded fault plan. Passing a default
  /// FaultPlan{} restores reliable delivery but keeps the injector's
  /// partition state; clear_faults() removes the injector entirely.
  void set_fault_plan(const FaultPlan& plan);
  void clear_faults();
  bool faults_enabled() const {
    return injector_ptr_.load(std::memory_order_acquire) != nullptr;
  }

  /// Partition the cluster into disjoint groups (see FaultInjector). A
  /// no-fault injector is created on demand so partitions work without a
  /// loss plan.
  void partition(const std::vector<std::vector<NodeId>>& groups);
  /// Reconnect all partition groups.
  void heal();

  /// Deliver every held (delayed) message immediately. Useful at quiescent
  /// points in tests; the pump thread normally releases them on schedule.
  void flush_held();

  /// Total messages accepted for delivery (for experiment E9). Counts each
  /// send() call that passed the crash/link checks — retransmissions
  /// included, injector-created duplicates not.
  std::uint64_t messages_sent() const {
    return messages_sent_.load(std::memory_order_relaxed);
  }
  std::uint64_t messages_dropped() const {
    return messages_dropped_.load(std::memory_order_relaxed);
  }
  std::uint64_t messages_duplicated() const {
    return messages_duplicated_.load(std::memory_order_relaxed);
  }
  std::uint64_t messages_delayed() const {
    return messages_delayed_.load(std::memory_order_relaxed);
  }

 private:
  /// A message held by the injector for bounded-delay delivery.
  struct Held {
    std::chrono::steady_clock::time_point due;
    NodeId to;
    Port port;
    Message msg;
  };

  void deliver(NodeId to, Port port, Message msg);
  void hold(std::chrono::steady_clock::time_point due, NodeId to, Port port,
            Message msg);
  void ensure_pump_locked();  // requires held_mu_
  void pump(std::stop_token st);

  std::size_t nodes_;
  std::uint64_t seed_;
  std::vector<std::unique_ptr<Mailbox>> server_boxes_;
  std::vector<std::unique_ptr<Mailbox>> client_boxes_;
  std::vector<std::unique_ptr<Mailbox>> detector_boxes_;
  std::vector<std::atomic<bool>> crashed_;
  std::vector<std::atomic<bool>> link_down_;  ///< [from * nodes_ + to]
  std::atomic<std::uint64_t> messages_sent_{0};
  std::atomic<std::uint64_t> messages_dropped_{0};
  std::atomic<std::uint64_t> messages_duplicated_{0};
  std::atomic<std::uint64_t> messages_delayed_{0};

  // Injector pointer is set from quiescent control points (test setup,
  // between phases); send() readers load it via the atomic guard below.
  std::unique_ptr<FaultInjector> injector_;
  std::atomic<FaultInjector*> injector_ptr_{nullptr};

  std::mutex held_mu_;
  std::condition_variable held_cv_;
  std::vector<Held> held_;  ///< min-heap ordered by due
  std::jthread pump_;
};

}  // namespace asnap::net
