// Simulated asynchronous message-passing network.
//
// Substrate for Section 6's remark that "by applying the emulators of [ABD]
// to the constructions presented in this paper, implementations of atomic
// snapshot memory are obtained in message-passing systems ... resilient to
// process and link failures, as long as a majority of the system remains
// connected."
//
// Model: n nodes, each with a server mailbox (replica protocol) and a client
// mailbox (quorum replies). Delivery is reliable but asynchronous: receive()
// pops a uniformly random pending message (seeded), so messages are
// arbitrarily reordered, and threads interleave arbitrarily. Crashed nodes
// silently drop all traffic in both directions — the fail-stop model of
// [ABD]. This is a substitution for a real cluster (see DESIGN.md §6): it
// preserves asynchrony, reordering and minority-crash behaviour, which is
// what the emulation claim is about.
#pragma once

#include <any>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "common/rng.hpp"

namespace asnap::net {

using NodeId = std::uint32_t;

struct Message {
  NodeId from = 0;
  std::uint64_t type = 0;  ///< protocol-defined discriminator
  std::uint64_t rid = 0;   ///< request id for RPC matching
  std::any payload;
};

/// Which of a node's two mailboxes a message targets.
enum class Port : std::uint8_t {
  kServer = 0,  ///< replica protocol handler
  kClient = 1,  ///< quorum replies to an in-flight client operation
};

/// Unordered mailbox: receive() returns a random pending message.
class Mailbox {
 public:
  explicit Mailbox(std::uint64_t seed) : rng_(seed) {}

  void push(Message m);

  /// Blocks until a message is available or the mailbox is closed.
  /// Returns nullopt only after close().
  std::optional<Message> receive();

  /// Non-blocking variant.
  std::optional<Message> try_receive();

  /// Wakes all receivers; subsequent receives drain what is pending, then
  /// return nullopt. Pushes after close are dropped.
  void close();

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Message> pending_;
  Rng rng_;
  bool closed_ = false;
};

class Network {
 public:
  Network(std::size_t nodes, std::uint64_t seed);

  std::size_t size() const { return nodes_; }

  /// Deliver (eventually) to the target's mailbox; dropped if either end
  /// has crashed or the mailbox is closed.
  void send(NodeId from, NodeId to, Port port, std::uint64_t type,
            std::uint64_t rid, std::any payload);

  /// Send to every node including `from` itself.
  void broadcast(NodeId from, Port port, std::uint64_t type,
                 std::uint64_t rid, const std::any& payload);

  Mailbox& mailbox(NodeId node, Port port);

  /// Fail-stop the node: closes its mailboxes and drops its future traffic.
  void crash(NodeId node);
  bool crashed(NodeId node) const;
  std::size_t alive_count() const;

  /// Sever the bidirectional link between two nodes: messages between them
  /// silently vanish from now on. ([ABD] tolerates link failures as long as
  /// each operating client still reaches a majority.)
  void cut_link(NodeId a, NodeId b);
  bool link_ok(NodeId from, NodeId to) const;

  /// Total messages accepted for delivery (for experiment E9).
  std::uint64_t messages_sent() const {
    return messages_sent_.load(std::memory_order_relaxed);
  }

 private:
  std::size_t nodes_;
  std::vector<std::unique_ptr<Mailbox>> server_boxes_;
  std::vector<std::unique_ptr<Mailbox>> client_boxes_;
  std::vector<std::atomic<bool>> crashed_;
  std::vector<std::atomic<bool>> link_down_;  ///< [from * nodes_ + to]
  std::atomic<std::uint64_t> messages_sent_{0};
};

}  // namespace asnap::net
