// ChaosProxy: a userspace netem/toxiproxy-style TCP relay for the real
// multi-process ABD cluster.
//
// One proxy instance fronts every replica endpoint: for upstream replica i
// it listens on an ephemeral loopback port (endpoints()[i]) and relays each
// accepted connection to the real daemon, pumping wire.hpp frames in both
// directions. Because the relay is frame-aware it can apply the whole
// asynchronous-adversary repertoire per link and per direction:
//
//   * drop        — a frame silently vanishes (seeded Bernoulli);
//   * delay       — fixed latency plus seeded jitter, serialized per link
//                   (a delayed frame delays everything behind it, like a
//                   real queue);
//   * reorder     — hold one frame and emit it after its successor;
//   * throttle    — bandwidth cap via post-send sleeps;
//   * stall       — forward only a PREFIX of a frame, then go silent and
//                   drop the connection: the receiver sees a length prefix
//                   with no body and must take the kMalformed mid-frame
//                   path (wire.hpp's never-resynchronize rule);
//   * reset       — close both sides mid-conversation;
//   * blackhole   — read-and-discard one direction while the connection
//                   stays open: A→B dead while B→A lives, the asymmetric
//                   partition that pure process-killing can never produce;
//   * flap        — a deterministic up/down square wave on the link.
//
// Faults are seeded per (link, direction, connection), so a chaos_run with
// a fixed seed replays the same fault plan. The proxy never interprets ABD
// semantics — it only sees frames — which is exactly what makes it an
// honest network adversary: every timeout, retransmission and quorum
// decision it provokes is taken by the real client/daemon code.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.hpp"

namespace asnap::net {

/// Fault plan for one (link, direction). All probabilities are per-frame.
struct LinkFaults {
  double drop_prob = 0.0;     ///< frame silently discarded
  double reorder_prob = 0.0;  ///< frame held, emitted after its successor
  double stall_prob = 0.0;    ///< partial frame + silence + connection drop
  double reset_prob = 0.0;    ///< connection reset before forwarding
  std::chrono::microseconds delay{0};   ///< fixed per-frame latency
  std::chrono::microseconds jitter{0};  ///< uniform extra in [0, jitter]
  std::chrono::milliseconds stall{400};  ///< silence after a partial frame
  std::uint64_t throttle_bytes_per_sec = 0;  ///< 0 = unlimited
  bool blackhole = false;  ///< discard everything in this direction
};

/// Injected-fault counters for one link, aggregated over both directions
/// and all connections. Monotonic; read with stats().
struct LinkStats {
  std::uint64_t connections = 0;  ///< client connections accepted
  std::uint64_t forwarded = 0;    ///< frames relayed untouched or delayed
  std::uint64_t dropped = 0;
  std::uint64_t delayed = 0;
  std::uint64_t reordered = 0;
  std::uint64_t stalled = 0;
  std::uint64_t resets = 0;
  std::uint64_t blackholed = 0;       ///< frames discarded by blackhole/flap
  std::uint64_t throttle_pauses = 0;  ///< bandwidth-cap sleeps taken
};

class ChaosProxy {
 public:
  /// Direction of a pumped frame, and the index into the per-link fault
  /// pair: 0 = client→replica, 1 = replica→client.
  enum Dir : int { kToReplica = 0, kToClient = 1 };

  ChaosProxy(std::vector<Endpoint> upstreams, std::uint64_t seed);
  ~ChaosProxy();

  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  /// Open one loopback listener per upstream and start accepting. False
  /// (with `error`) if any listener fails to bind.
  bool start(std::string* error = nullptr);

  /// Close listeners, kill every relayed connection, join all threads.
  /// Idempotent; the destructor calls it.
  void stop();

  /// Client-facing endpoints, parallel to the upstream list passed to the
  /// constructor. Valid after start().
  const std::vector<Endpoint>& endpoints() const { return endpoints_; }

  std::size_t size() const { return upstreams_.size(); }

  /// Replace the fault plan for one direction of one link.
  void set_faults(std::size_t link, Dir dir, const LinkFaults& faults);

  /// Replace the fault plan for BOTH directions of EVERY link (the ambient
  /// loss/delay floor of a net scenario).
  void set_all(const LinkFaults& faults);

  /// Toggle an asymmetric partition: discard every frame in `dir` on
  /// `link` while the opposite direction keeps flowing.
  void blackhole(std::size_t link, Dir dir, bool on);

  /// Drive the link with a square wave: `up` connected, `down` dead (both
  /// directions), repeating, phase-anchored at this call. `on=false` stops
  /// the wave and leaves the link up.
  void flap(std::size_t link, std::chrono::milliseconds up,
            std::chrono::milliseconds down, bool on);

  /// Forcibly reset every live connection relayed for `link` (clients see
  /// ECONNRESET/EOF mid-conversation).
  void kill_connections(std::size_t link);

  /// Clear every fault, blackhole and flap on every link. Connections stay
  /// up; the network is simply perfect again.
  void heal();

  LinkStats stats(std::size_t link) const;

  /// A link counts as impaired while its connectivity is (possibly) severed
  /// — blackholed in either direction, flapping, or carrying total
  /// (drop_prob >= 0.999) ambient loss in either direction. This is the
  /// input to the orchestrator's majority-safety rail; moderate loss, delay,
  /// stalls and resets do not count because quorum liveness survives them.
  bool impaired(std::size_t link) const;

  /// Number of currently impaired links.
  std::size_t impaired_links() const;

 private:
  struct Session;
  struct LinkState;

  void accept_loop(std::stop_token st, std::size_t link);
  void pump(std::stop_token st, std::size_t link, Dir dir, Session* session);
  bool link_up_locked(const LinkState& ls,
                      std::chrono::steady_clock::time_point now) const;

  std::vector<Endpoint> upstreams_;
  std::vector<Endpoint> endpoints_;
  std::uint64_t seed_;
  std::vector<std::unique_ptr<LinkState>> links_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
};

}  // namespace asnap::net
