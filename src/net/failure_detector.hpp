// Heartbeat-based eventually-perfect failure detector (◇P) for the
// simulated cluster.
//
// [ABD]'s emulation tolerates crashes passively: a quorum round simply never
// hears from a dead replica and keeps retransmitting until its deadline. The
// crash-prone follow-ups (Imbs–Mostéfaoui–Perrin–Raynal; Hadjistasi–
// Nicolaou–Schwarzmann's Oh-RAM) make the next step explicit — clients keep
// per-replica liveness estimates so rounds wait only on plausibly-live
// nodes. This detector supplies those estimates: every node broadcasts a
// heartbeat on its own port (Port::kDetector, so detector traffic shares the
// lossy network with the data path but never competes for the protocol
// mailboxes) and monitors everyone else's. Silence past an adaptive timeout
// makes the observer SUSPECT the target; a later heartbeat re-TRUSTs it.
//
// Eventual perfection, not perfection: over a lossy or partitioned network a
// live node can be falsely suspected. Two mechanisms keep that convergent:
//   * heartbeats carry the sender's detector incarnation (bumped each time
//     its node returns from a crash), so an observer can tell a false alarm
//     (same incarnation resurfaces) from a genuine crash-recovery;
//   * on a false alarm the observer grows that target's timeout
//     multiplicatively up to a ceiling — the classic ◇P adaptation — so any
//     fixed message-delay bound is eventually exceeded by the timeout.
// Consumers must therefore treat suspicion as a HINT (the ABD circuit
// breaker skips suspected replicas but never shrinks its quorum), keeping
// safety independent of detector accuracy.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "net/network.hpp"

namespace asnap::net {

/// Message type tag for heartbeats on Port::kDetector. The sender's detector
/// incarnation rides in Message::rid; there is no payload.
inline constexpr std::uint64_t kHeartbeatMsg = 0xFD00'0001;

struct DetectorConfig {
  /// How often each live node broadcasts a heartbeat.
  std::chrono::microseconds heartbeat_interval{1'000};
  /// Initial silence threshold before suspecting a node.
  std::chrono::microseconds initial_timeout{8'000};
  /// Floor for the adaptive timeout. The observed-gap EWMA tracks heartbeat
  /// arrival cadence, so a burst of fast heartbeats (e.g. a sender catching
  /// up after a stall, or a very chatty interval) would otherwise drive the
  /// suspect threshold toward zero — below one network RTT, where every
  /// in-flight heartbeat looks like silence. The floor caps how aggressive
  /// adaptation may get; set it to at least one RTT of the deployment.
  std::chrono::microseconds min_timeout{2'000};
  /// Ceiling for the adaptive timeout.
  std::chrono::microseconds max_timeout{64'000};
  /// Multiplier applied to a target's timeout after a false suspicion.
  double timeout_growth = 1.5;
  /// Adaptive timeout = EWMA of observed heartbeat gaps × this multiplier,
  /// clamped to [min_timeout, max_timeout] and never below the false-alarm
  /// penalty floor.
  double timeout_multiplier = 4.0;
};

class FailureDetector {
 public:
  /// Invoked from a monitor thread when `observer` starts suspecting
  /// (`suspected == true`) or re-trusts `target`. May fire concurrently
  /// from different observers; must be cheap and non-blocking.
  using Callback =
      std::function<void(NodeId observer, NodeId target, bool suspected)>;

  /// Starts one monitor thread per node immediately.
  FailureDetector(Network& net, DetectorConfig cfg, Callback cb = nullptr);
  ~FailureDetector();

  FailureDetector(const FailureDetector&) = delete;
  FailureDetector& operator=(const FailureDetector&) = delete;

  /// Does `observer`'s detector module currently suspect `target`?
  bool suspected(NodeId observer, NodeId target) const {
    return suspected_[static_cast<std::size_t>(observer) * nodes_ + target]
        .load(std::memory_order_relaxed);
  }

  /// Total suspect transitions across all observers (including false alarms).
  std::uint64_t suspicions() const {
    return suspicions_.load(std::memory_order_relaxed);
  }
  /// Total trust transitions (recoveries observed + false alarms retracted).
  std::uint64_t trusts() const {
    return trusts_.load(std::memory_order_relaxed);
  }
  /// Heartbeats broadcast by all live nodes so far.
  std::uint64_t heartbeats_sent() const {
    return heartbeats_sent_.load(std::memory_order_relaxed);
  }

  /// The silence threshold `observer` currently applies to `target`.
  /// Always within [cfg.min_timeout, cfg.max_timeout].
  std::chrono::microseconds current_timeout(NodeId observer,
                                            NodeId target) const {
    return std::chrono::microseconds(
        timeout_us_[static_cast<std::size_t>(observer) * nodes_ + target].load(
            std::memory_order_relaxed));
  }

 private:
  void run_node(std::stop_token st, NodeId self);

  Network& net_;
  DetectorConfig cfg_;
  std::size_t nodes_;
  Callback cb_;
  std::vector<std::atomic<bool>> suspected_;  ///< [observer * nodes_ + target]
  /// Current per-pair silence threshold in µs, same layout as suspected_.
  std::vector<std::atomic<std::int64_t>> timeout_us_;
  std::atomic<std::uint64_t> suspicions_{0};
  std::atomic<std::uint64_t> trusts_{0};
  std::atomic<std::uint64_t> heartbeats_sent_{0};
  std::vector<std::jthread> monitors_;
};

}  // namespace asnap::net
