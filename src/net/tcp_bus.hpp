// TcpBus: one logical client's connections to every replica daemon, shaped
// like the client-port view of net::Network so the ABD quorum-round
// machinery translates directly to real sockets.
//
// In the simulated cluster a client broadcasts on Port::kServer and then
// drains its own Port::kClient Mailbox; dedup by responder id, epoch checks
// and retransmission-with-the-same-rid all happen above the mailbox. This
// class reproduces exactly that surface over TCP: send(to, frame) lazily
// (re)connects and writes one wire frame; a per-link reader thread pushes
// every inbound frame into a single shared Mailbox as
// Message{from = replica index, type, rid, payload = wire::Frame}. The
// caller's round loop is therefore the same code shape whether the far end
// is a jthread or a process that can be `kill -9`ed: unreachable replicas
// surface as failed sends / absent replies, never as blocking.
//
// Threading contract: send() may be called from one op thread at a time
// (abd::RemoteRegisterClient serializes ops); reader threads never write
// the socket, and only send() reconnects — after joining the old reader —
// so the fd is never closed under a concurrent reader.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "net/network.hpp"
#include "net/socket.hpp"

namespace asnap::net {

struct TcpBusOptions {
  /// Bound on one connect attempt. Local clusters connect in microseconds;
  /// this mostly bounds how long a round stalls on a freshly killed peer.
  std::chrono::milliseconds connect_timeout{100};
  /// Cooldown floor after a failed connect before the next attempt, so
  /// per-round retransmissions don't turn into a SYN flood against a dead
  /// replica. Consecutive failures double the cooldown (with ±50% seeded
  /// jitter so a fleet of clients doesn't redial in lockstep)...
  std::chrono::milliseconds reconnect_cooldown{50};
  /// ...up to this ceiling. A replica behind a flapping link therefore sees
  /// at most one connect attempt per ceiling interval per client, and a
  /// successful connect resets the cooldown to the floor.
  std::chrono::milliseconds reconnect_cooldown_max{2000};
};

class TcpBus {
 public:
  TcpBus(std::vector<Endpoint> replicas, std::uint64_t seed,
         TcpBusOptions options = {});
  ~TcpBus();

  TcpBus(const TcpBus&) = delete;
  TcpBus& operator=(const TcpBus&) = delete;

  std::size_t size() const { return replicas_.size(); }

  /// Write one frame to replica `to`, (re)connecting if needed. False when
  /// the replica is unreachable right now — the caller's retransmit loop
  /// handles it, same as a dropped SimNetwork message.
  bool send(std::size_t to, const wire::Frame& frame);

  /// Same, but both the (re)connect attempt and the write itself are capped
  /// by `deadline`: a half-open connection whose send buffer filled up fails
  /// the send instead of wedging the caller's whole operation.
  bool send(std::size_t to, const wire::Frame& frame,
            std::chrono::steady_clock::time_point deadline);

  /// Replies from all replicas (the Port::kClient analog). Frame payloads
  /// arrive as std::any_cast<wire::Frame>-able messages.
  Mailbox& inbox() { return inbox_; }

  std::uint64_t reconnects() const {
    return reconnects_.load(std::memory_order_relaxed);
  }

  /// Current (post-jitter) reconnect cooldown armed for replica `to`.
  /// Test/diagnostic surface for the backoff schedule.
  std::chrono::milliseconds reconnect_cooldown(std::size_t to) const;

 private:
  struct Link {
    std::mutex mu;  ///< guards sock/reader lifecycle (send-side only)
    Socket sock;
    std::jthread reader;
    std::atomic<bool> broken{false};  ///< reader saw EOF/error/bad frame
    std::chrono::steady_clock::time_point next_attempt{};
    /// Base cooldown before jitter: floor after success, doubling per
    /// consecutive connect failure up to the ceiling.
    std::chrono::milliseconds cooldown_base{0};
    /// Last armed (jittered) cooldown, exposed via reconnect_cooldown().
    std::atomic<std::int64_t> cooldown_ms{0};
  };

  void read_loop(std::stop_token st, std::size_t idx, int fd);
  bool ensure_connected(Link& link, std::size_t idx,
                        std::chrono::steady_clock::time_point deadline);
  void arm_backoff(Link& link, std::size_t idx);

  std::vector<Endpoint> replicas_;
  TcpBusOptions options_;
  std::vector<std::unique_ptr<Link>> links_;
  Mailbox inbox_;
  std::uint64_t jitter_state_;  ///< splitmix64 stream for backoff jitter
  std::atomic<std::uint64_t> reconnects_{0};
};

}  // namespace asnap::net
