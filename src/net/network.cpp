#include "net/network.hpp"

#include <memory>
#include <utility>

#include "common/assert.hpp"

namespace asnap::net {

void Mailbox::push(Message m) {
  {
    std::lock_guard lock(mu_);
    if (closed_) return;
    pending_.push_back(std::move(m));
  }
  cv_.notify_one();
}

std::optional<Message> Mailbox::receive() {
  std::unique_lock lock(mu_);
  cv_.wait(lock, [&] { return closed_ || !pending_.empty(); });
  if (pending_.empty()) return std::nullopt;  // closed and drained
  const std::size_t pick = rng_.below(pending_.size());
  Message out = std::move(pending_[pick]);
  pending_[pick] = std::move(pending_.back());
  pending_.pop_back();
  return out;
}

std::optional<Message> Mailbox::try_receive() {
  std::lock_guard lock(mu_);
  if (pending_.empty()) return std::nullopt;
  const std::size_t pick = rng_.below(pending_.size());
  Message out = std::move(pending_[pick]);
  pending_[pick] = std::move(pending_.back());
  pending_.pop_back();
  return out;
}

void Mailbox::close() {
  {
    std::lock_guard lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

Network::Network(std::size_t nodes, std::uint64_t seed)
    : nodes_(nodes), crashed_(nodes), link_down_(nodes * nodes) {
  server_boxes_.reserve(nodes);
  client_boxes_.reserve(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    server_boxes_.push_back(std::make_unique<Mailbox>(seed * 2654435761ULL + i));
    client_boxes_.push_back(
        std::make_unique<Mailbox>(seed * 40503ULL + i + 7919));
    crashed_[i].store(false, std::memory_order_relaxed);
  }
  for (auto& link : link_down_) link.store(false, std::memory_order_relaxed);
}

void Network::send(NodeId from, NodeId to, Port port, std::uint64_t type,
                   std::uint64_t rid, std::any payload) {
  ASNAP_ASSERT(from < nodes_ && to < nodes_);
  if (crashed(from) || crashed(to)) return;  // fail-stop: traffic vanishes
  if (!link_ok(from, to)) return;            // severed link: message lost
  messages_sent_.fetch_add(1, std::memory_order_relaxed);
  mailbox(to, port).push(Message{from, type, rid, std::move(payload)});
}

void Network::broadcast(NodeId from, Port port, std::uint64_t type,
                        std::uint64_t rid, const std::any& payload) {
  for (NodeId to = 0; to < nodes_; ++to) {
    send(from, to, port, type, rid, payload);
  }
}

Mailbox& Network::mailbox(NodeId node, Port port) {
  ASNAP_ASSERT(node < nodes_);
  return port == Port::kServer ? *server_boxes_[node] : *client_boxes_[node];
}

void Network::crash(NodeId node) {
  ASNAP_ASSERT(node < nodes_);
  crashed_[node].store(true, std::memory_order_release);
  server_boxes_[node]->close();
  client_boxes_[node]->close();
}

bool Network::crashed(NodeId node) const {
  return crashed_[node].load(std::memory_order_acquire);
}

void Network::cut_link(NodeId a, NodeId b) {
  ASNAP_ASSERT(a < nodes_ && b < nodes_);
  link_down_[static_cast<std::size_t>(a) * nodes_ + b].store(
      true, std::memory_order_release);
  link_down_[static_cast<std::size_t>(b) * nodes_ + a].store(
      true, std::memory_order_release);
}

bool Network::link_ok(NodeId from, NodeId to) const {
  return !link_down_[static_cast<std::size_t>(from) * nodes_ + to].load(
      std::memory_order_acquire);
}

std::size_t Network::alive_count() const {
  std::size_t alive = 0;
  for (std::size_t i = 0; i < nodes_; ++i) {
    if (!crashed_[i].load(std::memory_order_acquire)) ++alive;
  }
  return alive;
}

}  // namespace asnap::net
