#include "net/network.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/assert.hpp"
#include "trace/event.hpp"

namespace asnap::net {

void Mailbox::push(Message m) {
  {
    std::lock_guard lock(mu_);
    if (closed_) return;
    pending_.push_back(std::move(m));
  }
  cv_.notify_one();
}

std::optional<Message> Mailbox::receive() {
  std::unique_lock lock(mu_);
  cv_.wait(lock, [&] { return closed_ || !pending_.empty(); });
  if (pending_.empty()) return std::nullopt;  // closed and drained
  const std::size_t pick = rng_.below(pending_.size());
  Message out = std::move(pending_[pick]);
  pending_[pick] = std::move(pending_.back());
  pending_.pop_back();
  return out;
}

std::optional<Message> Mailbox::receive_until(
    std::chrono::steady_clock::time_point deadline) {
  std::unique_lock lock(mu_);
  cv_.wait_until(lock, deadline,
                 [&] { return closed_ || !pending_.empty(); });
  if (pending_.empty()) return std::nullopt;  // timeout, or closed+drained
  const std::size_t pick = rng_.below(pending_.size());
  Message out = std::move(pending_[pick]);
  pending_[pick] = std::move(pending_.back());
  pending_.pop_back();
  return out;
}

std::optional<Message> Mailbox::receive_for(std::chrono::microseconds timeout) {
  return receive_until(std::chrono::steady_clock::now() + timeout);
}

std::optional<Message> Mailbox::try_receive() {
  std::lock_guard lock(mu_);
  if (pending_.empty()) return std::nullopt;
  const std::size_t pick = rng_.below(pending_.size());
  Message out = std::move(pending_[pick]);
  pending_[pick] = std::move(pending_.back());
  pending_.pop_back();
  return out;
}

void Mailbox::close() {
  {
    std::lock_guard lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

void Mailbox::reopen() {
  std::lock_guard lock(mu_);
  closed_ = false;
  pending_.clear();  // in-flight traffic of the crashed incarnation is lost
}

bool Mailbox::closed() const {
  std::lock_guard lock(mu_);
  return closed_;
}

Network::Network(std::size_t nodes, std::uint64_t seed)
    : nodes_(nodes), seed_(seed), crashed_(nodes), link_down_(nodes * nodes) {
  server_boxes_.reserve(nodes);
  client_boxes_.reserve(nodes);
  detector_boxes_.reserve(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    server_boxes_.push_back(std::make_unique<Mailbox>(seed * 2654435761ULL + i));
    client_boxes_.push_back(
        std::make_unique<Mailbox>(seed * 40503ULL + i + 7919));
    detector_boxes_.push_back(
        std::make_unique<Mailbox>(seed * 2246822519ULL + i + 104729));
    crashed_[i].store(false, std::memory_order_relaxed);
  }
  for (auto& link : link_down_) link.store(false, std::memory_order_relaxed);
}

Network::~Network() {
  if (pump_.joinable()) {
    pump_.request_stop();
    held_cv_.notify_all();
    pump_.join();
  }
}

void Network::deliver(NodeId to, Port port, Message msg) {
  mailbox(to, port).push(std::move(msg));
}

void Network::send(NodeId from, NodeId to, Port port, std::uint64_t type,
                   std::uint64_t rid, std::any payload) {
  ASNAP_ASSERT(from < nodes_ && to < nodes_);
  if (crashed(from) || crashed(to)) return;  // fail-stop: traffic vanishes
  if (!link_ok(from, to)) return;            // severed link: message lost
  messages_sent_.fetch_add(1, std::memory_order_relaxed);

  FaultInjector* inj = injector_ptr_.load(std::memory_order_acquire);
  if (inj == nullptr) {
    deliver(to, port, Message{from, type, rid, std::move(payload)});
    return;
  }

  const FaultDecision fate = inj->decide(from, to);
  if (fate.copies == 0) {
    messages_dropped_.fetch_add(1, std::memory_order_relaxed);
    ASNAP_TRACE_EVENT(trace::EventKind::kFaultDrop, from, to);
    return;
  }
  if (fate.copies > 1) {
    messages_duplicated_.fetch_add(1, std::memory_order_relaxed);
    ASNAP_TRACE_EVENT(trace::EventKind::kFaultDup, from, to);
  }
  const auto now = std::chrono::steady_clock::now();
  for (std::uint32_t i = 0; i < fate.copies; ++i) {
    Message copy{from, type, rid, payload};  // payload copied per copy
    if (fate.delay[i].count() > 0) {
      messages_delayed_.fetch_add(1, std::memory_order_relaxed);
      ASNAP_TRACE_EVENT(
          trace::EventKind::kFaultDelay, from, to,
          static_cast<std::uint64_t>(fate.delay[i].count()));
      hold(now + fate.delay[i], to, port, std::move(copy));
    } else {
      deliver(to, port, std::move(copy));
    }
  }
}

void Network::broadcast(NodeId from, Port port, std::uint64_t type,
                        std::uint64_t rid, const std::any& payload) {
  for (NodeId to = 0; to < nodes_; ++to) {
    send(from, to, port, type, rid, payload);
  }
}

Mailbox& Network::mailbox(NodeId node, Port port) {
  ASNAP_ASSERT(node < nodes_);
  switch (port) {
    case Port::kServer: return *server_boxes_[node];
    case Port::kClient: return *client_boxes_[node];
    case Port::kDetector: return *detector_boxes_[node];
  }
  ASNAP_ASSERT(false);
  return *server_boxes_[node];
}

void Network::crash(NodeId node) {
  ASNAP_ASSERT(node < nodes_);
  crashed_[node].store(true, std::memory_order_release);
  server_boxes_[node]->close();
  client_boxes_[node]->close();
  detector_boxes_[node]->close();
}

bool Network::crashed(NodeId node) const {
  return crashed_[node].load(std::memory_order_acquire);
}

void Network::recover(NodeId node) {
  ASNAP_ASSERT(node < nodes_);
  server_boxes_[node]->reopen();
  client_boxes_[node]->reopen();
  detector_boxes_[node]->reopen();
  crashed_[node].store(false, std::memory_order_release);
}

void Network::cut_link(NodeId a, NodeId b) {
  ASNAP_ASSERT(a < nodes_ && b < nodes_);
  link_down_[static_cast<std::size_t>(a) * nodes_ + b].store(
      true, std::memory_order_release);
  link_down_[static_cast<std::size_t>(b) * nodes_ + a].store(
      true, std::memory_order_release);
}

void Network::restore_link(NodeId a, NodeId b) {
  ASNAP_ASSERT(a < nodes_ && b < nodes_);
  link_down_[static_cast<std::size_t>(a) * nodes_ + b].store(
      false, std::memory_order_release);
  link_down_[static_cast<std::size_t>(b) * nodes_ + a].store(
      false, std::memory_order_release);
}

bool Network::link_ok(NodeId from, NodeId to) const {
  return !link_down_[static_cast<std::size_t>(from) * nodes_ + to].load(
      std::memory_order_acquire);
}

std::size_t Network::alive_count() const {
  std::size_t alive = 0;
  for (std::size_t i = 0; i < nodes_; ++i) {
    if (!crashed_[i].load(std::memory_order_acquire)) ++alive;
  }
  return alive;
}

void Network::set_fault_plan(const FaultPlan& plan) {
  FaultInjector* inj = injector_ptr_.load(std::memory_order_acquire);
  if (inj != nullptr) {
    inj->set_plan(plan);
    return;
  }
  injector_ = std::make_unique<FaultInjector>(nodes_, seed_ ^ 0xFA17FA17ULL,
                                              plan);
  injector_ptr_.store(injector_.get(), std::memory_order_release);
}

void Network::clear_faults() {
  injector_ptr_.store(nullptr, std::memory_order_release);
  // The injector object itself is kept alive until destruction so a send()
  // that loaded the pointer concurrently can finish its decide() safely.
  flush_held();
}

void Network::partition(const std::vector<std::vector<NodeId>>& groups) {
  if (injector_ptr_.load(std::memory_order_acquire) == nullptr) {
    set_fault_plan(FaultPlan{});  // no-loss injector, partitions only
  }
  injector_->partition(groups);
}

void Network::heal() {
  FaultInjector* inj = injector_ptr_.load(std::memory_order_acquire);
  if (inj != nullptr) inj->heal();
}

void Network::flush_held() {
  std::vector<Held> due;
  {
    std::lock_guard lock(held_mu_);
    due.swap(held_);
  }
  for (auto& h : due) {
    if (crashed(h.to)) continue;
    deliver(h.to, h.port, std::move(h.msg));
  }
}

namespace {
struct HeldLater {
  bool operator()(const auto& a, const auto& b) const { return a.due > b.due; }
};
}  // namespace

void Network::hold(std::chrono::steady_clock::time_point due, NodeId to,
                   Port port, Message msg) {
  {
    std::lock_guard lock(held_mu_);
    held_.push_back(Held{due, to, port, std::move(msg)});
    std::push_heap(held_.begin(), held_.end(), HeldLater{});
    ensure_pump_locked();
  }
  held_cv_.notify_one();
}

void Network::ensure_pump_locked() {
  if (pump_.joinable()) return;
  pump_ = std::jthread([this](std::stop_token st) { pump(st); });
}

void Network::pump(std::stop_token st) {
  std::unique_lock lock(held_mu_);
  while (!st.stop_requested()) {
    if (held_.empty()) {
      held_cv_.wait(lock, [&] { return st.stop_requested() || !held_.empty(); });
      continue;
    }
    const auto next_due = held_.front().due;
    if (std::chrono::steady_clock::now() < next_due) {
      held_cv_.wait_until(lock, next_due, [&] {
        return st.stop_requested() ||
               (!held_.empty() && held_.front().due < next_due);
      });
      continue;
    }
    std::pop_heap(held_.begin(), held_.end(), HeldLater{});
    Held h = std::move(held_.back());
    held_.pop_back();
    lock.unlock();
    if (!crashed(h.to)) deliver(h.to, h.port, std::move(h.msg));
    lock.lock();
  }
}

}  // namespace asnap::net
