#include "net/chaos_proxy.hpp"

#include <sys/socket.h>

#include <algorithm>
#include <utility>

#include "common/rng.hpp"
#include "trace/event.hpp"

namespace asnap::net {

namespace {

using Clock = std::chrono::steady_clock;

/// Accept/receive poll slice: how quickly stop requests are noticed.
constexpr std::chrono::milliseconds kPumpSlice{100};
/// A held (reordered) frame is flushed after this long even when no
/// successor shows up — reordering must not become an unbounded delay.
constexpr std::chrono::milliseconds kReorderFlush{50};
/// Budget for one relayed write. Generous: it only matters when the far
/// side stopped draining, where failing the session is the right outcome.
constexpr std::chrono::milliseconds kSendBudget{2000};
/// Dial budget for the proxy→replica leg of a fresh connection.
constexpr std::chrono::milliseconds kUpstreamConnectTimeout{200};

/// Sleep in small slices, aborting early on stop/death. Returns false when
/// interrupted.
bool sliced_sleep(std::chrono::microseconds total, const std::stop_token& st,
                  const std::atomic<bool>& dead) {
  const auto until = Clock::now() + total;
  while (Clock::now() < until) {
    if (st.stop_requested() || dead.load(std::memory_order_relaxed)) {
      return false;
    }
    const auto left = std::chrono::duration_cast<std::chrono::microseconds>(
        until - Clock::now());
    std::this_thread::sleep_for(
        std::min(left, std::chrono::microseconds(10000)));
  }
  return true;
}

}  // namespace

struct ChaosProxy::Session {
  Socket client;
  Socket upstream;
  std::jthread pumps[2];
  std::atomic<bool> dead{false};
  std::atomic<int> live_pumps{0};
  std::uint64_t session_seed = 0;

  /// Wake both pumps out of poll() without closing the fds (the Socket
  /// destructor closes them after the pumps are joined, so no fd is ever
  /// reused under a live poller).
  void sever() {
    dead.store(true, std::memory_order_relaxed);
    if (client.valid()) ::shutdown(client.fd(), SHUT_RDWR);
    if (upstream.valid()) ::shutdown(upstream.fd(), SHUT_RDWR);
  }
};

struct ChaosProxy::LinkState {
  Listener listener;
  std::jthread acceptor;

  mutable std::mutex mu;  ///< guards faults, flap params, sessions
  LinkFaults faults[2];
  bool flapping = false;
  std::chrono::milliseconds flap_up{0};
  std::chrono::milliseconds flap_down{0};
  Clock::time_point flap_start{};
  std::vector<std::unique_ptr<Session>> sessions;
  std::uint64_t next_session = 0;

  std::atomic<bool> last_up{true};  ///< for flap transition trace events

  std::atomic<std::uint64_t> connections{0};
  std::atomic<std::uint64_t> forwarded{0};
  std::atomic<std::uint64_t> dropped{0};
  std::atomic<std::uint64_t> delayed{0};
  std::atomic<std::uint64_t> reordered{0};
  std::atomic<std::uint64_t> stalled{0};
  std::atomic<std::uint64_t> resets{0};
  std::atomic<std::uint64_t> blackholed{0};
  std::atomic<std::uint64_t> throttle_pauses{0};
};

ChaosProxy::ChaosProxy(std::vector<Endpoint> upstreams, std::uint64_t seed)
    : upstreams_(std::move(upstreams)), seed_(seed) {
  links_.reserve(upstreams_.size());
  for (std::size_t i = 0; i < upstreams_.size(); ++i) {
    links_.push_back(std::make_unique<LinkState>());
  }
}

ChaosProxy::~ChaosProxy() { stop(); }

bool ChaosProxy::start(std::string* error) {
  // A proxy that ever stopped — including via the failure path below —
  // must never report success again: started_ alone would make a second
  // start() return true with no listeners or acceptors running.
  if (stopping_.load(std::memory_order_acquire)) {
    if (error != nullptr) *error = "chaos proxy is stopped";
    return false;
  }
  if (started_.exchange(true)) {
    if (stopping_.load(std::memory_order_acquire)) {
      if (error != nullptr) *error = "chaos proxy is stopped";
      return false;
    }
    return true;
  }
  endpoints_.clear();
  for (std::size_t i = 0; i < links_.size(); ++i) {
    LinkState& ls = *links_[i];
    ls.listener = Listener::open({"127.0.0.1", 0}, error);
    if (!ls.listener.valid()) {
      stop();
      return false;
    }
    endpoints_.push_back({"127.0.0.1", ls.listener.bound_port()});
  }
  for (std::size_t i = 0; i < links_.size(); ++i) {
    links_[i]->acceptor = std::jthread(
        [this, i](std::stop_token st) { accept_loop(st, i); });
  }
  return true;
}

void ChaosProxy::stop() {
  if (stopping_.exchange(true)) return;
  for (auto& link : links_) {
    if (link->acceptor.joinable()) link->acceptor.request_stop();
  }
  for (auto& link : links_) {
    if (link->acceptor.joinable()) link->acceptor.join();
    link->listener.close();
    // Swap the sessions out under the lock, then tear them down with the
    // lock RELEASED: pump threads take link->mu every frame (fault and
    // throttle snapshots), so joining them while holding it deadlocks
    // whenever a frame is in flight.
    std::vector<std::unique_ptr<Session>> doomed;
    {
      std::lock_guard<std::mutex> lock(link->mu);
      doomed.swap(link->sessions);
    }
    for (auto& session : doomed) {
      for (auto& pump : session->pumps) {
        if (pump.joinable()) pump.request_stop();
      }
      session->sever();
    }
    doomed.clear();  // jthread destructors join the pumps
  }
}

void ChaosProxy::accept_loop(std::stop_token st, std::size_t link) {
  LinkState& ls = *links_[link];
  while (!st.stop_requested()) {
    auto conn = ls.listener.accept(kPumpSlice);

    // Reap sessions whose pumps have both exited, so a chaotic run with
    // many resets does not accumulate dead threads.
    {
      std::lock_guard<std::mutex> lock(ls.mu);
      std::erase_if(ls.sessions, [](const std::unique_ptr<Session>& s) {
        return s->dead.load(std::memory_order_relaxed) &&
               s->live_pumps.load(std::memory_order_acquire) == 0;
      });
    }

    if (!conn.has_value()) continue;
    Socket upstream = tcp_connect(upstreams_[link], kUpstreamConnectTimeout);
    if (!upstream.valid()) continue;  // dead daemon: drop the client too

    auto session = std::make_unique<Session>();
    session->client = std::move(*conn);
    session->upstream = std::move(upstream);
    {
      std::lock_guard<std::mutex> lock(ls.mu);
      std::uint64_t mix = seed_ ^ (0x9E3779B97F4A7C15ULL * (link + 1));
      mix += ls.next_session++;
      session->session_seed = splitmix64(mix);
    }
    ls.connections.fetch_add(1, std::memory_order_relaxed);
    session->live_pumps.store(2, std::memory_order_release);
    Session* raw = session.get();
    // Register BEFORE spawning the pumps: once a pump runs, the session is
    // live on the wire, and kill_connections/stop must be able to find it.
    // The reaper can't collect it early — live_pumps is already 2.
    {
      std::lock_guard<std::mutex> lock(ls.mu);
      ls.sessions.push_back(std::move(session));
    }
    for (int dir = 0; dir < 2; ++dir) {
      raw->pumps[dir] = std::jthread(
          [this, link, dir, raw](std::stop_token pump_st) {
            pump(pump_st, link, static_cast<Dir>(dir), raw);
          });
    }
  }
}

bool ChaosProxy::link_up_locked(const LinkState& ls,
                                Clock::time_point now) const {
  if (!ls.flapping) return true;
  const auto period = ls.flap_up + ls.flap_down;
  if (period <= std::chrono::milliseconds::zero()) return true;
  const auto phase = (now - ls.flap_start) % period;
  return phase < ls.flap_up;
}

void ChaosProxy::pump(std::stop_token st, std::size_t link, Dir dir,
                      Session* session) {
  LinkState& ls = *links_[link];
  const Socket& src =
      dir == kToReplica ? session->client : session->upstream;
  const Socket& dst =
      dir == kToReplica ? session->upstream : session->client;
  // splitmix64 advances its state argument in place, and both pump threads
  // of a session start from session_seed — derive from a private copy so
  // the seeding stays deterministic per (session, direction) and race-free.
  std::uint64_t seed_state =
      session->session_seed +
      0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(dir) + 1);
  Rng rng(splitmix64(seed_state));

  wire::Frame frame;
  wire::Frame held;
  bool has_held = false;
  Clock::time_point held_since{};
  const auto pid = static_cast<std::uint32_t>(link);

  auto forward = [&](const wire::Frame& f) -> bool {
    const wire::Bytes bytes = wire::encode(f);
    if (!send_all(dst, bytes.data(), bytes.size(),
                  Clock::now() + kSendBudget)) {
      return false;
    }
    ls.forwarded.fetch_add(1, std::memory_order_relaxed);
    // Bandwidth throttle: pay for the bytes just sent before pumping more.
    LinkFaults f_now;
    {
      std::lock_guard<std::mutex> lock(ls.mu);
      f_now = ls.faults[dir];
    }
    if (f_now.throttle_bytes_per_sec > 0) {
      const auto pause = std::chrono::microseconds(
          bytes.size() * 1'000'000ULL / f_now.throttle_bytes_per_sec);
      if (pause > std::chrono::microseconds::zero()) {
        ls.throttle_pauses.fetch_add(1, std::memory_order_relaxed);
        ASNAP_TRACE_EVENT(trace::EventKind::kNetThrottle, pid,
                          static_cast<std::uint64_t>(dir),
                          static_cast<std::uint64_t>(pause.count()));
        sliced_sleep(pause, st, session->dead);
      }
    }
    return true;
  };

  while (!st.stop_requested() &&
         !session->dead.load(std::memory_order_relaxed)) {
    const RecvStatus status =
        recv_frame(src, Clock::now() + kPumpSlice, &frame);
    const auto now = Clock::now();
    if (status == RecvStatus::kTimeout) {
      if (has_held && now - held_since > kReorderFlush) {
        has_held = false;
        if (!forward(held)) break;
      }
      continue;
    }
    if (status != RecvStatus::kOk) break;

    LinkFaults f;
    bool up;
    {
      std::lock_guard<std::mutex> lock(ls.mu);
      f = ls.faults[dir];
      up = link_up_locked(ls, now);
    }
    if (ls.last_up.exchange(up, std::memory_order_relaxed) != up) {
      ASNAP_TRACE_EVENT(trace::EventKind::kNetFlap, pid, up ? 1 : 0);
    }

    if (f.blackhole || !up) {
      ls.blackholed.fetch_add(1, std::memory_order_relaxed);
      continue;  // connection stays open — the asymmetric partition
    }
    if (f.drop_prob > 0 && rng.chance(f.drop_prob)) {
      ls.dropped.fetch_add(1, std::memory_order_relaxed);
      ASNAP_TRACE_EVENT(trace::EventKind::kNetDrop, pid,
                        static_cast<std::uint64_t>(dir),
                        wire::kHeaderBytes + frame.value.size());
      continue;
    }
    if (f.reset_prob > 0 && rng.chance(f.reset_prob)) {
      ls.resets.fetch_add(1, std::memory_order_relaxed);
      ASNAP_TRACE_EVENT(trace::EventKind::kNetReset, pid,
                        static_cast<std::uint64_t>(dir));
      break;
    }
    if (f.stall_prob > 0 && rng.chance(f.stall_prob)) {
      // Forward only a prefix — at least the length word, never the whole
      // frame — then go silent past the receiver's read slice. The peer's
      // recv_frame must classify this as kMalformed and drop us.
      const wire::Bytes bytes = wire::encode(frame);
      const std::size_t prefix = 4 + rng.below(bytes.size() - 4);
      send_all(dst, bytes.data(), prefix, Clock::now() + kSendBudget);
      ls.stalled.fetch_add(1, std::memory_order_relaxed);
      ASNAP_TRACE_EVENT(trace::EventKind::kNetStall, pid,
                        static_cast<std::uint64_t>(dir),
                        static_cast<std::uint64_t>(f.stall.count()));
      sliced_sleep(f.stall, st, session->dead);
      break;  // the receiver already abandoned this byte stream
    }
    if (f.delay > std::chrono::microseconds::zero() ||
        f.jitter > std::chrono::microseconds::zero()) {
      auto wait = f.delay;
      if (f.jitter > std::chrono::microseconds::zero()) {
        wait += std::chrono::microseconds(rng.below(
            static_cast<std::uint64_t>(f.jitter.count()) + 1));
      }
      ls.delayed.fetch_add(1, std::memory_order_relaxed);
      ASNAP_TRACE_EVENT(trace::EventKind::kNetDelay, pid,
                        static_cast<std::uint64_t>(dir),
                        static_cast<std::uint64_t>(wait.count()));
      if (!sliced_sleep(wait, st, session->dead)) break;
    }
    if (f.reorder_prob > 0 && !has_held && rng.chance(f.reorder_prob)) {
      held = frame;
      has_held = true;
      held_since = now;
      ls.reordered.fetch_add(1, std::memory_order_relaxed);
      ASNAP_TRACE_EVENT(trace::EventKind::kNetReorder, pid,
                        static_cast<std::uint64_t>(dir));
      continue;
    }
    if (!forward(frame)) break;
    if (has_held) {
      has_held = false;
      if (!forward(held)) break;
    }
  }

  // Whatever ended this pump ends the whole session: a relay with one live
  // direction would silently manufacture an asymmetric partition nobody
  // asked for.
  session->sever();
  session->live_pumps.fetch_sub(1, std::memory_order_release);
}

void ChaosProxy::set_faults(std::size_t link, Dir dir,
                            const LinkFaults& faults) {
  if (link >= links_.size()) return;
  std::lock_guard<std::mutex> lock(links_[link]->mu);
  links_[link]->faults[dir] = faults;
}

void ChaosProxy::set_all(const LinkFaults& faults) {
  for (auto& link : links_) {
    std::lock_guard<std::mutex> lock(link->mu);
    link->faults[0] = faults;
    link->faults[1] = faults;
  }
}

void ChaosProxy::blackhole(std::size_t link, Dir dir, bool on) {
  if (link >= links_.size()) return;
  {
    std::lock_guard<std::mutex> lock(links_[link]->mu);
    links_[link]->faults[dir].blackhole = on;
  }
  ASNAP_TRACE_EVENT(trace::EventKind::kNetBlackhole,
                    static_cast<std::uint32_t>(link),
                    static_cast<std::uint64_t>(dir), on ? 1 : 0);
}

void ChaosProxy::flap(std::size_t link, std::chrono::milliseconds up,
                      std::chrono::milliseconds down, bool on) {
  if (link >= links_.size()) return;
  std::lock_guard<std::mutex> lock(links_[link]->mu);
  LinkState& ls = *links_[link];
  ls.flapping = on;
  ls.flap_up = up;
  ls.flap_down = down;
  ls.flap_start = Clock::now();
}

void ChaosProxy::kill_connections(std::size_t link) {
  if (link >= links_.size()) return;
  LinkState& ls = *links_[link];
  std::lock_guard<std::mutex> lock(ls.mu);
  for (auto& session : ls.sessions) {
    if (!session->dead.load(std::memory_order_relaxed)) {
      ls.resets.fetch_add(1, std::memory_order_relaxed);
      ASNAP_TRACE_EVENT(trace::EventKind::kNetReset,
                        static_cast<std::uint32_t>(link), 2);
    }
    session->sever();
  }
}

void ChaosProxy::heal() {
  for (std::size_t i = 0; i < links_.size(); ++i) {
    std::lock_guard<std::mutex> lock(links_[i]->mu);
    links_[i]->faults[0] = LinkFaults{};
    links_[i]->faults[1] = LinkFaults{};
    links_[i]->flapping = false;
  }
}

LinkStats ChaosProxy::stats(std::size_t link) const {
  LinkStats out;
  if (link >= links_.size()) return out;
  const LinkState& ls = *links_[link];
  out.connections = ls.connections.load(std::memory_order_relaxed);
  out.forwarded = ls.forwarded.load(std::memory_order_relaxed);
  out.dropped = ls.dropped.load(std::memory_order_relaxed);
  out.delayed = ls.delayed.load(std::memory_order_relaxed);
  out.reordered = ls.reordered.load(std::memory_order_relaxed);
  out.stalled = ls.stalled.load(std::memory_order_relaxed);
  out.resets = ls.resets.load(std::memory_order_relaxed);
  out.blackholed = ls.blackholed.load(std::memory_order_relaxed);
  out.throttle_pauses = ls.throttle_pauses.load(std::memory_order_relaxed);
  return out;
}

bool ChaosProxy::impaired(std::size_t link) const {
  if (link >= links_.size()) return false;
  std::lock_guard<std::mutex> lock(links_[link]->mu);
  const LinkState& ls = *links_[link];
  // drop_prob at (or within rounding of) 1.0 severs the link as surely as
  // a blackhole — a fault plan must not bypass the majority rail by
  // phrasing a partition as "total ambient loss".
  constexpr double kTotalLoss = 0.999;
  return ls.flapping || ls.faults[0].blackhole || ls.faults[1].blackhole ||
         ls.faults[0].drop_prob >= kTotalLoss ||
         ls.faults[1].drop_prob >= kTotalLoss;
}

std::size_t ChaosProxy::impaired_links() const {
  std::size_t count = 0;
  for (std::size_t i = 0; i < links_.size(); ++i) {
    if (impaired(i)) ++count;
  }
  return count;
}

}  // namespace asnap::net
