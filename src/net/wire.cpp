#include "net/wire.hpp"

#include <array>
#include <cstring>

namespace asnap::net::wire {

namespace {

void put_u16(Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::nullopt_t fail(DecodeError* error, DecodeError why) {
  if (error != nullptr) *error = why;
  return std::nullopt;
}

const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

Bytes encode(const Frame& frame) {
  const std::uint32_t body_len =
      static_cast<std::uint32_t>(kHeaderBytes + frame.value.size());
  Bytes out;
  out.reserve(4 + body_len);
  put_u32(out, body_len);
  put_u32(out, kMagic);
  out.push_back(frame.version);
  out.push_back(frame.type);
  // v1 frames have no flags field — those two bytes are reserved-zero.
  put_u16(out, frame.version >= 2 ? frame.flags : 0);
  put_u64(out, frame.from);
  put_u64(out, frame.rid);
  put_u64(out, frame.epoch);
  put_u64(out, frame.reg);
  put_u64(out, frame.ts);
  put_u32(out, static_cast<std::uint32_t>(frame.value.size()));
  out.insert(out.end(), frame.value.begin(), frame.value.end());
  return out;
}

const char* decode_error_name(DecodeError error) {
  switch (error) {
    case DecodeError::kNone: return "ok";
    case DecodeError::kShortHeader: return "frame shorter than the fixed header";
    case DecodeError::kOversized: return "frame exceeds kMaxBody";
    case DecodeError::kBadMagic: return "bad magic";
    case DecodeError::kBadVersion: return "unknown wire version";
    case DecodeError::kLengthMismatch:
      return "value length disagrees with frame length";
  }
  return "unknown decode error";
}

std::optional<Frame> decode(const std::uint8_t* body, std::size_t len,
                            DecodeError* error) {
  if (error != nullptr) *error = DecodeError::kNone;
  if (len < kHeaderBytes) return fail(error, DecodeError::kShortHeader);
  if (len > kMaxBody) return fail(error, DecodeError::kOversized);
  if (get_u32(body) != kMagic) return fail(error, DecodeError::kBadMagic);
  Frame f;
  f.version = body[4];
  if (f.version < kMinWireVersion || f.version > kWireVersion) {
    return fail(error, DecodeError::kBadVersion);
  }
  f.type = body[5];
  // body[6..7]: flags since v2; reserved (and required-zero by nobody) in
  // v1, where they decode as 0 = no flags — the conservative meaning.
  f.flags = f.version >= 2
                ? static_cast<std::uint16_t>(
                      body[6] | (static_cast<std::uint16_t>(body[7]) << 8))
                : 0;
  f.from = get_u64(body + 8);
  f.rid = get_u64(body + 16);
  f.epoch = get_u64(body + 24);
  f.reg = get_u64(body + 32);
  f.ts = get_u64(body + 40);
  const std::uint32_t value_len = get_u32(body + 48);
  if (kHeaderBytes + static_cast<std::size_t>(value_len) != len) {
    return fail(error, DecodeError::kLengthMismatch);
  }
  f.value.assign(body + kHeaderBytes, body + kHeaderBytes + value_len);
  return f;
}

std::optional<Frame> decode(const std::uint8_t* body, std::size_t len,
                            std::string* error) {
  DecodeError why = DecodeError::kNone;
  auto frame = decode(body, len, &why);
  if (!frame.has_value() && error != nullptr) {
    *error = decode_error_name(why);
  }
  return frame;
}

std::uint32_t crc32(const std::uint8_t* data, std::size_t len,
                    std::uint32_t seed) {
  const auto& table = crc_table();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i) {
    c = table[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

Bytes encode_tag(const lin::Tag& tag) {
  Bytes out;
  out.reserve(12);
  put_u32(out, tag.writer);
  put_u64(out, tag.seq);
  return out;
}

std::optional<lin::Tag> decode_tag(const Bytes& bytes) {
  if (bytes.size() != 12) return std::nullopt;
  lin::Tag tag;
  tag.writer = static_cast<ProcessId>(get_u32(bytes.data()));
  tag.seq = get_u64(bytes.data() + 4);
  return tag;
}

Bytes encode_u64(std::uint64_t v) {
  Bytes out;
  out.reserve(8);
  put_u64(out, v);
  return out;
}

std::optional<std::uint64_t> decode_u64(const Bytes& bytes) {
  if (bytes.size() != 8) return std::nullopt;
  return get_u64(bytes.data());
}

}  // namespace asnap::net::wire
