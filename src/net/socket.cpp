#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace asnap::net {

namespace {

using Clock = std::chrono::steady_clock;

void set_error(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what + ": " + std::strerror(errno);
}

bool set_nonblocking(int fd, bool on) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  const int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  return ::fcntl(fd, F_SETFL, want) == 0;
}

/// poll() one fd for `events`, bounded by `deadline`. Returns true when the
/// fd is ready, false on timeout or poll error. EINTR retries.
bool poll_until(int fd, short events, Clock::time_point deadline) {
  for (;;) {
    const auto now = Clock::now();
    if (now >= deadline) return false;
    const auto left =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    const int timeout_ms = static_cast<int>(left.count()) + 1;
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc > 0) return true;
    if (rc == 0) continue;  // re-check deadline
    if (errno == EINTR) continue;
    return false;
  }
}

bool make_addr(const Endpoint& at, sockaddr_in* out) {
  std::memset(out, 0, sizeof(*out));
  out->sin_family = AF_INET;
  out->sin_port = htons(at.port);
  return ::inet_pton(AF_INET, at.host.c_str(), &out->sin_addr) == 1;
}

}  // namespace

std::optional<std::vector<Endpoint>> parse_endpoints(const std::string& list) {
  std::vector<Endpoint> out;
  std::size_t start = 0;
  while (start <= list.size()) {
    std::size_t comma = list.find(',', start);
    if (comma == std::string::npos) comma = list.size();
    const std::string item = list.substr(start, comma - start);
    start = comma + 1;
    if (item.empty()) return std::nullopt;
    const std::size_t colon = item.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= item.size()) {
      return std::nullopt;
    }
    Endpoint ep;
    ep.host = item.substr(0, colon);
    unsigned long port = 0;
    try {
      std::size_t used = 0;
      port = std::stoul(item.substr(colon + 1), &used);
      if (used != item.size() - colon - 1) return std::nullopt;
    } catch (...) {
      return std::nullopt;
    }
    if (port == 0 || port > 65535) return std::nullopt;
    ep.port = static_cast<std::uint16_t>(port);
    out.push_back(std::move(ep));
    if (comma == list.size()) break;
  }
  if (out.empty()) return std::nullopt;
  return out;
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.release();
  }
  return *this;
}

int Socket::release() {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Listener Listener::open(const Endpoint& at, std::string* error) {
  Listener lst;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    set_error(error, "socket");
    return lst;
  }
  Socket sock(fd);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  if (!make_addr(at, &addr)) {
    if (error != nullptr) *error = "bad listen address: " + at.host;
    return lst;
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    set_error(error, "bind " + at.host + ":" + std::to_string(at.port));
    return lst;
  }
  if (::listen(fd, 64) != 0) {
    set_error(error, "listen");
    return lst;
  }
  sockaddr_in bound;
  socklen_t blen = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &blen) != 0) {
    set_error(error, "getsockname");
    return lst;
  }
  lst.port_ = ntohs(bound.sin_port);
  lst.sock_ = std::move(sock);
  return lst;
}

std::optional<Socket> Listener::accept(std::chrono::milliseconds timeout) {
  if (!sock_.valid()) return std::nullopt;
  if (!poll_until(sock_.fd(), POLLIN, Clock::now() + timeout)) {
    return std::nullopt;
  }
  const int fd = ::accept(sock_.fd(), nullptr, nullptr);
  if (fd < 0) return std::nullopt;
  Socket conn(fd);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return conn;
}

Socket tcp_connect(const Endpoint& to, std::chrono::milliseconds timeout,
                   std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    set_error(error, "socket");
    return Socket();
  }
  Socket sock(fd);
  sockaddr_in addr;
  if (!make_addr(to, &addr)) {
    if (error != nullptr) *error = "bad address: " + to.host;
    return Socket();
  }
  if (!set_nonblocking(fd, true)) {
    set_error(error, "fcntl");
    return Socket();
  }
  const int rc =
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0) {
    if (errno != EINPROGRESS) {
      set_error(error, "connect " + to.host + ":" + std::to_string(to.port));
      return Socket();
    }
    if (!poll_until(fd, POLLOUT, Clock::now() + timeout)) {
      if (error != nullptr) {
        *error = "connect timeout to " + to.host + ":" + std::to_string(to.port);
      }
      return Socket();
    }
    int soerr = 0;
    socklen_t slen = sizeof(soerr);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &slen) != 0 ||
        soerr != 0) {
      if (error != nullptr) {
        *error = "connect " + to.host + ":" + std::to_string(to.port) + ": " +
                 std::strerror(soerr != 0 ? soerr : errno);
      }
      return Socket();
    }
  }
  if (!set_nonblocking(fd, false)) {
    set_error(error, "fcntl");
    return Socket();
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

bool send_frame(const Socket& sock, const wire::Frame& frame) {
  if (!sock.valid()) return false;
  const wire::Bytes buf = wire::encode(frame);
  std::size_t sent = 0;
  while (sent < buf.size()) {
    const ssize_t n = ::send(sock.fd(), buf.data() + sent, buf.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

bool send_all(const Socket& sock, const std::uint8_t* data, std::size_t len,
              Clock::time_point deadline) {
  if (!sock.valid()) return false;
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(sock.fd(), data + sent, len - sent,
                             MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Kernel buffer full: the peer stopped draining. Wait for writability
      // only as long as the deadline allows — a half-open connection must
      // surface as a failed send, not an indefinite park.
      if (!poll_until(sock.fd(), POLLOUT, deadline)) return false;
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

bool send_frame(const Socket& sock, const wire::Frame& frame,
                Clock::time_point deadline) {
  const wire::Bytes buf = wire::encode(frame);
  return send_all(sock, buf.data(), buf.size(), deadline);
}

namespace {

/// Extra time a receiver grants a frame whose FIRST bytes were consumed
/// right at the caller's deadline. Every caller polls in slices (the bus
/// reader, the replica daemons, the chaos proxy pumps all call recv_frame
/// in a loop); without the grace, a frame whose length prefix lands in the
/// last microseconds of a slice — with its body already queued in the
/// kernel — would be misclassified as a mid-frame stall and cost the whole
/// connection. The grace is bounded, so a genuinely stalled peer (the
/// adversary chaos_proxy injects) is still detected, just one window later.
constexpr std::chrono::milliseconds kMidFrameGrace{100};

/// Read exactly `want` bytes into `dst`, honoring the deadline. A timeout
/// with zero bytes read — and no earlier part of the frame consumed
/// (`mid_frame`) — is a clean kTimeout the caller may retry. Once any part
/// of a frame has been consumed, expiry desynchronizes the framing: after
/// one kMidFrameGrace extension it is reported as kMalformed (caller must
/// drop the connection).
RecvStatus recv_exact(const Socket& sock, std::uint8_t* dst, std::size_t want,
                      Clock::time_point deadline, bool mid_frame) {
  std::size_t got = 0;
  auto limit = deadline;
  bool graced = false;
  while (got < want) {
    if (!poll_until(sock.fd(), POLLIN, limit)) {
      if (got == 0 && !mid_frame) return RecvStatus::kTimeout;
      if (!graced) {
        graced = true;
        limit = std::max(limit, Clock::now() + kMidFrameGrace);
        continue;
      }
      return RecvStatus::kMalformed;
    }
    const ssize_t n = ::recv(sock.fd(), dst + got, want - got, MSG_DONTWAIT);
    if (n > 0) {
      got += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) return RecvStatus::kClosed;
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    return RecvStatus::kClosed;
  }
  return RecvStatus::kOk;
}

}  // namespace

RecvStatus recv_frame(const Socket& sock, Clock::time_point deadline,
                      wire::Frame* out) {
  if (!sock.valid()) return RecvStatus::kClosed;
  std::uint8_t len_buf[4];
  RecvStatus st =
      recv_exact(sock, len_buf, sizeof(len_buf), deadline, /*mid_frame=*/false);
  if (st != RecvStatus::kOk) return st;
  const std::uint32_t body_len = static_cast<std::uint32_t>(len_buf[0]) |
                                 (static_cast<std::uint32_t>(len_buf[1]) << 8) |
                                 (static_cast<std::uint32_t>(len_buf[2]) << 16) |
                                 (static_cast<std::uint32_t>(len_buf[3]) << 24);
  if (body_len < wire::kHeaderBytes || body_len > wire::kMaxBody) {
    return RecvStatus::kMalformed;
  }
  wire::Bytes body(body_len);
  // The length prefix is already consumed: the body read is mid-frame, so
  // expiry (after the grace) is kMalformed, never a retryable kTimeout.
  st = recv_exact(sock, body.data(), body.size(), deadline, /*mid_frame=*/true);
  if (st == RecvStatus::kTimeout) return RecvStatus::kMalformed;
  if (st != RecvStatus::kOk) return st;
  auto frame = wire::decode(body.data(), body.size());
  if (!frame.has_value()) return RecvStatus::kMalformed;
  *out = std::move(*frame);
  return RecvStatus::kOk;
}

}  // namespace asnap::net
