#include "net/tcp_bus.hpp"

#include <utility>

namespace asnap::net {

namespace {
using Clock = std::chrono::steady_clock;
/// Reader threads poll in short slices so stop requests and dead sockets
/// are noticed promptly without busy-waiting.
constexpr std::chrono::milliseconds kReadSlice{100};
}  // namespace

TcpBus::TcpBus(std::vector<Endpoint> replicas, std::uint64_t seed,
               TcpBusOptions options)
    : replicas_(std::move(replicas)), options_(options), inbox_(seed) {
  links_.reserve(replicas_.size());
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    links_.push_back(std::make_unique<Link>());
  }
}

TcpBus::~TcpBus() {
  for (auto& link : links_) {
    if (link->reader.joinable()) link->reader.request_stop();
  }
  for (auto& link : links_) {
    if (link->reader.joinable()) link->reader.join();
    link->sock.close();
  }
  inbox_.close();
}

void TcpBus::read_loop(std::stop_token st, std::size_t idx, int fd) {
  // Borrow the fd: the send side owns the Socket and only closes it after
  // joining this thread, so the fd stays valid for our whole lifetime.
  Socket borrowed(fd);
  wire::Frame frame;
  while (!st.stop_requested()) {
    const RecvStatus status =
        recv_frame(borrowed, Clock::now() + kReadSlice, &frame);
    if (status == RecvStatus::kTimeout) continue;
    if (status != RecvStatus::kOk) break;  // EOF, error, or bad frame
    Message msg;
    msg.from = static_cast<NodeId>(idx);
    msg.type = frame.type;
    msg.rid = frame.rid;
    msg.payload = frame;
    inbox_.push(std::move(msg));
  }
  links_[idx]->broken.store(true, std::memory_order_release);
  borrowed.release();  // fd ownership stays with the send side's Socket
}

bool TcpBus::ensure_connected(Link& link, std::size_t idx) {
  if (link.sock.valid() && !link.broken.load(std::memory_order_acquire)) {
    return true;
  }
  // Tear down the previous connection, if any, before redialing.
  if (link.reader.joinable()) {
    link.reader.request_stop();
    link.reader.join();
  }
  link.sock.close();
  link.broken.store(false, std::memory_order_release);
  const auto now = Clock::now();
  if (now < link.next_attempt) return false;
  Socket sock = tcp_connect(replicas_[idx], options_.connect_timeout);
  if (!sock.valid()) {
    link.next_attempt = Clock::now() + options_.reconnect_cooldown;
    return false;
  }
  link.sock = std::move(sock);
  reconnects_.fetch_add(1, std::memory_order_relaxed);
  const int fd = link.sock.fd();
  link.reader = std::jthread(
      [this, idx, fd](std::stop_token st) { read_loop(st, idx, fd); });
  return true;
}

bool TcpBus::send(std::size_t to, const wire::Frame& frame) {
  if (to >= links_.size()) return false;
  Link& link = *links_[to];
  std::lock_guard<std::mutex> lock(link.mu);
  if (!ensure_connected(link, to)) return false;
  if (send_frame(link.sock, frame)) return true;
  // Broken pipe: mark it so the next send redials instead of retrying a
  // dead fd.
  link.broken.store(true, std::memory_order_release);
  return false;
}

}  // namespace asnap::net
