#include "net/tcp_bus.hpp"

#include <algorithm>
#include <utility>

#include "common/rng.hpp"
#include "trace/event.hpp"

namespace asnap::net {

namespace {
using Clock = std::chrono::steady_clock;
/// Reader threads poll in short slices so stop requests and dead sockets
/// are noticed promptly without busy-waiting.
constexpr std::chrono::milliseconds kReadSlice{100};
}  // namespace

TcpBus::TcpBus(std::vector<Endpoint> replicas, std::uint64_t seed,
               TcpBusOptions options)
    : replicas_(std::move(replicas)),
      options_(options),
      inbox_(seed),
      jitter_state_(seed ^ 0xBACC0FFULL) {
  links_.reserve(replicas_.size());
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    links_.push_back(std::make_unique<Link>());
    links_.back()->cooldown_base = options_.reconnect_cooldown;
  }
}

TcpBus::~TcpBus() {
  for (auto& link : links_) {
    if (link->reader.joinable()) link->reader.request_stop();
  }
  for (auto& link : links_) {
    if (link->reader.joinable()) link->reader.join();
    link->sock.close();
  }
  inbox_.close();
}

void TcpBus::read_loop(std::stop_token st, std::size_t idx, int fd) {
  // Borrow the fd: the send side owns the Socket and only closes it after
  // joining this thread, so the fd stays valid for our whole lifetime.
  Socket borrowed(fd);
  wire::Frame frame;
  while (!st.stop_requested()) {
    const RecvStatus status =
        recv_frame(borrowed, Clock::now() + kReadSlice, &frame);
    if (status == RecvStatus::kTimeout) continue;
    if (status != RecvStatus::kOk) break;  // EOF, error, or bad frame
    Message msg;
    msg.from = static_cast<NodeId>(idx);
    msg.type = frame.type;
    msg.rid = frame.rid;
    msg.payload = frame;
    inbox_.push(std::move(msg));
  }
  links_[idx]->broken.store(true, std::memory_order_release);
  borrowed.release();  // fd ownership stays with the send side's Socket
}

void TcpBus::arm_backoff(Link& link, std::size_t idx) {
  // jitter_state_ is only touched here, under the serialized send path.
  const auto base = link.cooldown_base;
  const std::int64_t base_ms = std::max<std::int64_t>(1, base.count());
  // ±50% jitter: uniform in [base/2, 3*base/2].
  const std::int64_t jittered =
      base_ms / 2 + static_cast<std::int64_t>(splitmix64(jitter_state_) %
                                              static_cast<std::uint64_t>(
                                                  base_ms + 1));
  link.next_attempt = Clock::now() + std::chrono::milliseconds(jittered);
  link.cooldown_ms.store(jittered, std::memory_order_relaxed);
  ASNAP_TRACE_EVENT(trace::EventKind::kNetReconnectBackoff, 0,
                    static_cast<std::uint64_t>(idx),
                    static_cast<std::uint64_t>(jittered));
  link.cooldown_base =
      std::min(options_.reconnect_cooldown_max, link.cooldown_base * 2);
}

std::chrono::milliseconds TcpBus::reconnect_cooldown(std::size_t to) const {
  if (to >= links_.size()) return std::chrono::milliseconds{0};
  return std::chrono::milliseconds(
      links_[to]->cooldown_ms.load(std::memory_order_relaxed));
}

bool TcpBus::ensure_connected(Link& link, std::size_t idx,
                              Clock::time_point deadline) {
  if (link.sock.valid() && !link.broken.load(std::memory_order_acquire)) {
    return true;
  }
  // Tear down the previous connection, if any, before redialing.
  if (link.reader.joinable()) {
    link.reader.request_stop();
    link.reader.join();
  }
  link.sock.close();
  link.broken.store(false, std::memory_order_release);
  const auto now = Clock::now();
  if (now < link.next_attempt) return false;
  // Cap the dial by both the configured connect timeout and the caller's
  // operation deadline — a round that has 5 ms left must not spend 100 ms
  // dialing a dead replica.
  auto budget = options_.connect_timeout;
  if (deadline != Clock::time_point{}) {
    const auto left =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    if (left <= std::chrono::milliseconds::zero()) return false;
    budget = std::min(budget, left);
  }
  Socket sock = tcp_connect(replicas_[idx], budget);
  if (!sock.valid()) {
    arm_backoff(link, idx);
    return false;
  }
  link.sock = std::move(sock);
  link.cooldown_base = options_.reconnect_cooldown;  // healthy again
  reconnects_.fetch_add(1, std::memory_order_relaxed);
  const int fd = link.sock.fd();
  link.reader = std::jthread(
      [this, idx, fd](std::stop_token st) { read_loop(st, idx, fd); });
  return true;
}

bool TcpBus::send(std::size_t to, const wire::Frame& frame) {
  return send(to, frame, Clock::time_point{});
}

bool TcpBus::send(std::size_t to, const wire::Frame& frame,
                  Clock::time_point deadline) {
  if (to >= links_.size()) return false;
  Link& link = *links_[to];
  std::lock_guard<std::mutex> lock(link.mu);
  if (!ensure_connected(link, to, deadline)) return false;
  const bool ok =
      deadline == Clock::time_point{}
          ? send_frame(link.sock, frame)
          : send_frame(link.sock, frame, deadline);
  if (ok) return true;
  // Broken pipe (or a deadline-expired write that may have left a partial
  // frame on the wire): mark it so the next send redials instead of
  // retrying a desynchronized fd.
  link.broken.store(true, std::memory_order_release);
  return false;
}

}  // namespace asnap::net
