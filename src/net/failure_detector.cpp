#include "net/failure_detector.hpp"

#include <algorithm>

#include "trace/event.hpp"

namespace asnap::net {

using Clock = std::chrono::steady_clock;

FailureDetector::FailureDetector(Network& net, DetectorConfig cfg, Callback cb)
    : net_(net),
      cfg_(cfg),
      nodes_(net.size()),
      cb_(std::move(cb)),
      suspected_(nodes_ * nodes_),
      timeout_us_(nodes_ * nodes_) {
  for (auto& flag : suspected_) flag.store(false, std::memory_order_relaxed);
  // A config with min > max (or an initial value outside the band) would
  // make the clamp oscillate; normalize once here.
  cfg_.max_timeout = std::max(cfg_.max_timeout, cfg_.min_timeout);
  cfg_.initial_timeout =
      std::clamp(cfg_.initial_timeout, cfg_.min_timeout, cfg_.max_timeout);
  for (auto& t : timeout_us_)
    t.store(cfg_.initial_timeout.count(), std::memory_order_relaxed);
  monitors_.reserve(nodes_);
  for (NodeId self = 0; self < nodes_; ++self) {
    monitors_.emplace_back(
        [this, self](std::stop_token st) { run_node(st, self); });
  }
}

FailureDetector::~FailureDetector() {
  for (auto& t : monitors_) t.request_stop();
  // jthread joins on destruction; monitor waits are bounded by the
  // heartbeat interval, so teardown is prompt.
}

void FailureDetector::run_node(std::stop_token st, NodeId self) {
  const std::size_t n = nodes_;
  std::vector<Clock::time_point> last_heard(n, Clock::now());
  // gap_ewma tracks each target's observed heartbeat cadence; penalty is the
  // multiplicative floor grown on false alarms (◇P convergence). The applied
  // threshold is max(cadence × multiplier, penalty) clamped to the
  // configured [min_timeout, max_timeout] band — min_timeout keeps a burst
  // of fast heartbeats from adapting the threshold below one RTT.
  std::vector<double> gap_ewma(n, 0.0);
  std::vector<std::chrono::microseconds> penalty(n, cfg_.min_timeout);
  std::vector<std::uint64_t> known_inc(n, 0);
  std::uint64_t my_inc = 0;
  bool was_crashed = false;
  auto next_beat = Clock::now();

  const auto flag_index = [&](NodeId target) {
    return static_cast<std::size_t>(self) * n + target;
  };
  const auto timeout = [&](NodeId target) {
    return std::chrono::microseconds(
        timeout_us_[flag_index(target)].load(std::memory_order_relaxed));
  };
  const auto retune = [&](NodeId target) {
    // Before the first gap sample the grace period applies; after that the
    // learned cadence takes over and may shrink the threshold — but never
    // below the penalty floor or min_timeout.
    auto want = gap_ewma[target] > 0.0
                    ? std::chrono::microseconds(static_cast<std::int64_t>(
                          gap_ewma[target] * cfg_.timeout_multiplier))
                    : cfg_.initial_timeout;
    want = std::max(want, penalty[target]);
    want = std::clamp(want, cfg_.min_timeout, cfg_.max_timeout);
    timeout_us_[flag_index(target)].store(want.count(),
                                          std::memory_order_relaxed);
  };

  while (!st.stop_requested()) {
    if (net_.crashed(self)) {
      // Dormant while our node is down; poll at heartbeat granularity so
      // request_stop() is honored promptly.
      was_crashed = true;
      std::this_thread::sleep_for(cfg_.heartbeat_interval);
      continue;
    }
    if (was_crashed) {
      // Fresh incarnation: a recovered node starts out trusting everyone
      // with a full grace period, and stamps its heartbeats so observers
      // can distinguish this recovery from a false alarm.
      was_crashed = false;
      ++my_inc;
      const auto now = Clock::now();
      for (NodeId j = 0; j < n; ++j) {
        last_heard[j] = now;
        suspected_[flag_index(j)].store(false, std::memory_order_relaxed);
      }
    }

    const auto now = Clock::now();
    if (now >= next_beat) {
      for (NodeId j = 0; j < n; ++j) {
        if (j == self) continue;
        net_.send(self, j, Port::kDetector, kHeartbeatMsg, my_inc, {});
        heartbeats_sent_.fetch_add(1, std::memory_order_relaxed);
      }
      // Evaluate silence once per beat, after sending.
      for (NodeId j = 0; j < n; ++j) {
        if (j == self) continue;
        auto& flag = suspected_[flag_index(j)];
        if (flag.load(std::memory_order_relaxed)) continue;
        if (now - last_heard[j] <= timeout(j)) continue;
        flag.store(true, std::memory_order_relaxed);
        suspicions_.fetch_add(1, std::memory_order_relaxed);
        ASNAP_TRACE_EVENT(trace::EventKind::kSuspect, self, j,
                          static_cast<std::uint64_t>(timeout(j).count()));
        if (cb_) cb_(self, j, /*suspected=*/true);
      }
      next_beat = now + cfg_.heartbeat_interval;
      continue;
    }

    auto msg = net_.mailbox(self, Port::kDetector).receive_until(next_beat);
    if (!msg || msg->type != kHeartbeatMsg) continue;
    const NodeId j = msg->from;
    if (j >= n || j == self) continue;
    const std::uint64_t inc = msg->rid;
    const auto heard_at = Clock::now();
    const auto gap = std::chrono::duration_cast<std::chrono::microseconds>(
        heard_at - last_heard[j]);
    last_heard[j] = heard_at;
    auto& flag = suspected_[flag_index(j)];
    if (flag.load(std::memory_order_relaxed)) {
      flag.store(false, std::memory_order_relaxed);
      trusts_.fetch_add(1, std::memory_order_relaxed);
      ASNAP_TRACE_EVENT(trace::EventKind::kTrust, self, j);
      if (inc == known_inc[j]) {
        // Same incarnation resurfaced: we suspected a live node. Grow the
        // penalty floor so this message-delay pattern stops fooling us
        // (◇P convergence).
        const auto grown = std::chrono::microseconds(static_cast<std::int64_t>(
            static_cast<double>(timeout(j).count()) * cfg_.timeout_growth));
        penalty[j] = std::min(cfg_.max_timeout, grown);
      }
      if (cb_) cb_(self, j, /*suspected=*/false);
    } else {
      // Feed the cadence estimator only with gaps between heartbeats from a
      // trusted target — a gap spanning a suspicion is a crash or network
      // hole, not cadence.
      constexpr double kAlpha = 0.125;  // TCP RTT-style smoothing
      const auto sample = static_cast<double>(gap.count());
      gap_ewma[j] = gap_ewma[j] > 0.0
                        ? gap_ewma[j] + kAlpha * (sample - gap_ewma[j])
                        : sample;
    }
    retune(j);
    known_inc[j] = std::max(known_inc[j], inc);
  }
}

}  // namespace asnap::net
