#include "hazard/hazard_pointers.hpp"

#include <algorithm>
#include <mutex>
#include <vector>

#include "common/assert.hpp"

namespace asnap::hazard {

// ---------------------------------------------------------------------------
// Orphan list: retirements inherited from exited threads.
// ---------------------------------------------------------------------------

struct Domain::OrphanList {
  std::mutex mu;
  std::vector<Retired> nodes;

  ~OrphanList() {
    // Static destruction: all threads must have exited; nothing can be
    // protected any more, so free unconditionally.
    for (const Retired& r : nodes) r.deleter(r.ptr);
  }
};

Domain::OrphanList& Domain::orphans() const {
  static OrphanList list;  // function-local so it outlives thread exits
  return list;
}

// ---------------------------------------------------------------------------
// Per-thread state: hazard record index + retire list.
// ---------------------------------------------------------------------------

namespace {
/// Reclamation is attempted once the local retire list reaches this size.
/// Amortizes the O(kMaxThreads * kSlotsPerThread) scan over many retirements.
constexpr std::size_t kReclaimThreshold = 128;
}  // namespace

class ThreadState {
 public:
  explicit ThreadState(Domain& domain) : domain_(domain) {
    for (std::size_t i = 0; i < kMaxThreads; ++i) {
      bool expected = false;
      if (domain_.records_[i].active.compare_exchange_strong(
              expected, true, std::memory_order_acq_rel)) {
        record_index_ = i;
        return;
      }
    }
    ASNAP_ASSERT_MSG(false, "hazard domain: more than kMaxThreads threads");
  }

  ~ThreadState() {
    // Free whatever is not protected; hand the remainder to the orphan list.
    reclaim();
    if (!retired_.empty()) {
      std::lock_guard lock(domain_.orphans().mu);
      auto& orphan_nodes = domain_.orphans().nodes;
      orphan_nodes.insert(orphan_nodes.end(), retired_.begin(),
                          retired_.end());
      retired_.clear();
    }
    auto& rec = domain_.records_[record_index_];
    for (auto& slot : rec.slots) slot.store(nullptr, std::memory_order_release);
    rec.active.store(false, std::memory_order_release);
  }

  Domain::HazardRecord& record() { return domain_.records_[record_index_]; }

  std::size_t acquire_slot() {
    ASNAP_ASSERT_MSG(live_slots_ < Domain::kSlotsPerThread,
                     "hazard guards nested too deeply");
    return live_slots_++;
  }

  void release_slot(std::size_t slot) {
    ASNAP_ASSERT(slot + 1 == live_slots_);
    record().slots[slot].store(nullptr, std::memory_order_release);
    --live_slots_;
  }

  void retire(Domain::Retired node) {
    retired_.push_back(node);
    domain_.retired_count_.fetch_add(1, std::memory_order_relaxed);
    if (retired_.size() >= kReclaimThreshold) reclaim();
  }

  /// Frees every retired node not announced in any hazard slot. Returns
  /// the number of nodes freed.
  std::size_t reclaim() {
    adopt_orphans();
    if (retired_.empty()) return 0;

    std::vector<const void*> announced;
    announced.reserve(kMaxThreads * Domain::kSlotsPerThread);
    for (const auto& rec : domain_.records_) {
      if (!rec.active.load(std::memory_order_acquire)) continue;
      for (const auto& slot : rec.slots) {
        // seq_cst pairs with the reader's seq_cst announce/validate pair:
        // a node validated before we unlinked it must show up in this scan.
        if (const void* p = slot.load(std::memory_order_seq_cst)) {
          announced.push_back(p);
        }
      }
    }
    std::sort(announced.begin(), announced.end());

    std::vector<Domain::Retired> kept;
    kept.reserve(retired_.size());
    std::size_t freed = 0;
    for (const Domain::Retired& r : retired_) {
      if (std::binary_search(announced.begin(), announced.end(),
                             static_cast<const void*>(r.ptr))) {
        kept.push_back(r);
      } else {
        r.deleter(r.ptr);
        ++freed;
      }
    }
    retired_.swap(kept);
    domain_.retired_count_.fetch_sub(freed, std::memory_order_relaxed);
    return freed;
  }

 private:
  /// Pull orphaned retirements into the local list so they get reclaimed.
  void adopt_orphans() {
    std::lock_guard lock(domain_.orphans().mu);
    auto& orphan_nodes = domain_.orphans().nodes;
    if (orphan_nodes.empty()) return;
    retired_.insert(retired_.end(), orphan_nodes.begin(), orphan_nodes.end());
    orphan_nodes.clear();
  }

  Domain& domain_;
  std::size_t record_index_ = 0;
  std::size_t live_slots_ = 0;
  std::vector<Domain::Retired> retired_;
};

namespace {
ThreadState& this_thread_state() {
  thread_local ThreadState state(Domain::global());
  return state;
}
}  // namespace

// ---------------------------------------------------------------------------
// Domain
// ---------------------------------------------------------------------------

Domain& Domain::global() {
  static Domain domain;
  return domain;
}

Domain::~Domain() = default;

void* Domain::protect(const std::atomic<void*>& src, std::size_t slot) {
  void* p = src.load(std::memory_order_acquire);
  while (true) {
    announce(p, slot);
    void* revalidated = src.load(std::memory_order_seq_cst);
    if (revalidated == p) return p;
    p = revalidated;
  }
}

void Domain::announce(void* p, std::size_t slot) {
  ASNAP_ASSERT(slot < kSlotsPerThread);
  // seq_cst: the announce must be globally visible before the re-validation
  // load; an acquire/release pair is not enough to prevent the classic
  // store-load reordering race with the reclaimer's scan.
  this_thread_state().record().slots[slot].store(p, std::memory_order_seq_cst);
}

void Domain::clear(std::size_t slot) {
  ASNAP_ASSERT(slot < kSlotsPerThread);
  this_thread_state().record().slots[slot].store(nullptr,
                                                 std::memory_order_release);
}

void Domain::retire(void* p, void (*deleter)(void*)) {
  this_thread_state().retire(Retired{p, deleter});
}

std::size_t Domain::drain() { return this_thread_state().reclaim(); }

std::size_t Domain::retired_approx() const {
  return retired_count_.load(std::memory_order_relaxed);
}

bool Domain::is_protected(const void* p) const {
  for (const auto& rec : records_) {
    if (!rec.active.load(std::memory_order_acquire)) continue;
    for (const auto& slot : rec.slots) {
      if (slot.load(std::memory_order_acquire) == p) return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Guard
// ---------------------------------------------------------------------------

Guard::Guard() : slot_(this_thread_state().acquire_slot()) {}

Guard::~Guard() { this_thread_state().release_slot(slot_); }

}  // namespace asnap::hazard
