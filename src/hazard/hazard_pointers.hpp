// Hazard-pointer safe memory reclamation (Michael, 2004), built from scratch.
//
// Role in this reproduction: the registers of Afek et al.'s algorithms carry
// wide payloads (a value, a view vector of n values, n handshake bits and a
// toggle, all written in ONE atomic write). On real hardware a register of
// arbitrary width is realized by publishing an immutable heap node through a
// single atomic pointer (reg::BigAtomicRegister). Readers must be able to
// dereference the published node without blocking writers and without
// use-after-free — which is exactly the hazard-pointer protocol:
//
//   reader:  announce the pointer in a per-thread hazard slot, re-validate
//            the source, then dereference; clear the slot when done.
//   writer:  swing the pointer, then *retire* the old node; retired nodes
//            are freed only when no hazard slot announces them.
//
// Reads are bounded except for the announce/validate race (retried only when
// the writer moved in between, the same "interference" the paper's double
// collects deal with one level up). Reclamation cost is amortized
// O(kMaxThreads) per retired node.
#pragma once

#include <atomic>
#include <cstddef>

#include "common/config.hpp"

namespace asnap::hazard {

/// Process-wide hazard-pointer domain. All registers in the library share
/// this domain; per-thread state registers lazily on first use and flushes
/// its retire list when the thread exits.
class Domain {
 public:
  static constexpr std::size_t kSlotsPerThread = 4;

  static Domain& global();

  Domain(const Domain&) = delete;
  Domain& operator=(const Domain&) = delete;

  /// Protect the pointer currently stored in `src` using the given hazard
  /// slot of the calling thread. Returns the protected pointer (possibly
  /// null). On return, the pointee cannot be freed until clear()/re-protect.
  void* protect(const std::atomic<void*>& src, std::size_t slot);

  /// Announce an already-loaded pointer without validation. Caller must
  /// re-validate the source itself before dereferencing.
  void announce(void* p, std::size_t slot);

  /// Clear one hazard slot of the calling thread.
  void clear(std::size_t slot);

  /// Hand a node to the domain for deferred deletion.
  void retire(void* p, void (*deleter)(void*));

  /// Best-effort synchronous reclamation pass over the calling thread's
  /// retire list and the orphan list. Used by tests, at quiescent points,
  /// and by the mvcc grace-period slow path (mvcc/version_gate.hpp) —
  /// never required for correctness. Returns the number of nodes freed.
  std::size_t drain();

  /// Approximate number of nodes awaiting reclamation (tests only).
  std::size_t retired_approx() const;

  /// True if `p` is currently announced by any thread (tests only).
  bool is_protected(const void* p) const;

 private:
  Domain() = default;
  ~Domain();

  struct alignas(kCacheLine) HazardRecord {
    std::atomic<void*> slots[kSlotsPerThread];
    std::atomic<bool> active{false};
  };

  struct Retired {
    void* ptr;
    void (*deleter)(void*);
  };

  friend class ThreadState;

  HazardRecord records_[kMaxThreads];
  std::atomic<std::size_t> retired_count_{0};

  // Orphan list: retirements left over from exited threads, protected by a
  // lock (touched only at thread exit and during drain()).
  struct OrphanList;
  OrphanList& orphans() const;
};

/// RAII protection of a single pointer. Acquires a free hazard slot of the
/// calling thread; at most kSlotsPerThread guards may nest per thread.
class Guard {
 public:
  Guard();
  ~Guard();
  Guard(const Guard&) = delete;
  Guard& operator=(const Guard&) = delete;

  /// Protect and return the pointer currently in `src`: announce, then
  /// re-validate that the source still holds the announced pointer. The loop
  /// re-runs only if a writer moved the pointer in between.
  template <typename T>
  T* protect(const std::atomic<T*>& src) {
    T* p = src.load(std::memory_order_acquire);
    while (true) {
      Domain::global().announce(p, slot_);
      // seq_cst load pairs with the seq_cst announce store: the announce is
      // globally ordered before this re-validation, so a reclaimer that
      // retires the node after our validation must observe the announcement.
      T* revalidated = src.load(std::memory_order_seq_cst);
      if (revalidated == p) return p;
      p = revalidated;
    }
  }

  void clear() { Domain::global().clear(slot_); }

 private:
  std::size_t slot_;
};

/// Retire a node allocated with new.
template <typename T>
void retire_object(T* p) {
  Domain::global().retire(p, [](void* q) { delete static_cast<T*>(q); });
}

}  // namespace asnap::hazard
