// Replica write-ahead log: the durability half of the crash-recovery story.
//
// A tools/abd_replicad daemon appends one record per accepted WRITE and one
// per incarnation bump, fsync()ing BEFORE the network ack leaves the
// process. Combined with majority quorums this yields the durability
// argument of DESIGN.md §11: an acknowledged write is fsynced on a majority
// of replicas, every read quorum intersects that majority, so the write
// survives kill -9 of any subset of replicas — including, unlike the
// in-memory simulation, all of them at once.
//
// Record format (little-endian, after wire.hpp's conventions):
//   record := u32 magic 'WAL1' | u16 type | u16 reserved
//           | u64 reg | u64 ts | u32 value_len | value bytes | u32 crc32
// type 1 = register write (reg, ts, value), type 2 = epoch bump (the new
// incarnation in `reg`, ts/value unused). The CRC covers everything from
// magic through the last value byte. Replay stops at the first torn or
// corrupt record and truncates the file there: a record torn by kill -9
// mid-append was by construction never acked (the fsync hadn't returned),
// so dropping it loses nothing acknowledged.
//
// The log is compacted (one write record per register + the epoch, written
// to a temp file and atomically rename()d) at daemon startup and whenever
// it outgrows a size threshold, so repeated crash/restart cycles don't grow
// it without bound.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "net/wire.hpp"

namespace asnap::abd {

/// Everything a replica must remember across kill -9.
struct WalState {
  std::uint64_t epoch = 0;
  /// reg -> (ts, value); absent regs have never been written.
  std::map<std::uint64_t, std::pair<std::uint64_t, net::wire::Bytes>> regs;
};

/// Why the last append failed. A full disk (kNoSpace) is operator-actionable
/// and retryable once space frees; anything else (kIo) means the device or
/// file is suspect and the replica should scream louder. Either way the
/// append returns false BEFORE any ack leaves the daemon — the log never
/// acks-then-loses.
enum class WalError : std::uint8_t {
  kNone = 0,
  kNoSpace,  ///< ENOSPC / EDQUOT: the volume (or quota) is full
  kIo,       ///< any other write/fsync failure (EIO, bad fd, ...)
};

/// Stable name for a WalError ("none", "no_space", "io").
const char* wal_error_name(WalError error);

class ReplicaWal {
 public:
  /// Open (creating if needed) `path` and replay it into *state. Torn or
  /// corrupt tail records are truncated away. nullptr + error message on
  /// I/O failure. With fsync=false appends skip the fsync — measurement
  /// mode only; it forfeits the durability argument.
  static std::unique_ptr<ReplicaWal> open(const std::string& path,
                                          WalState* state, bool fsync,
                                          std::string* error);
  ~ReplicaWal();

  ReplicaWal(const ReplicaWal&) = delete;
  ReplicaWal& operator=(const ReplicaWal&) = delete;

  /// Durably record a write. Must return true before the WRITE is acked.
  bool append_write(std::uint64_t reg, std::uint64_t ts,
                    const net::wire::Bytes& value);

  /// Durably record a new incarnation. Must return true before the daemon
  /// starts serving under that epoch.
  bool append_epoch(std::uint64_t epoch);

  /// Rewrite the log as `state` (epoch record + one write per register),
  /// via temp file + atomic rename. Caller must pass a state consistent
  /// with everything appended so far (hold its store lock).
  bool compact(const WalState& state);

  /// Current log size; callers compact when this outgrows their threshold.
  std::uint64_t bytes() const;

  /// Classification of the most recent append failure (kNone after a
  /// successful append). Lets the daemon log "disk full" vs "I/O error"
  /// while still refusing the ack in both cases.
  WalError last_error() const;

  /// Fault injection (tests/chaos only): fail the next `count` appends with
  /// errno `error_no`. When `partial_bytes` > 0, that many bytes of the
  /// encoded record are written before failing — a realistic ENOSPC leaves
  /// a torn record, and the rollback path must erase it so the log stays at
  /// a record boundary.
  void inject_append_failure(int error_no, int count,
                             std::size_t partial_bytes = 0);

 private:
  ReplicaWal(std::string path, int fd, bool fsync, std::uint64_t bytes);

  bool append_record(std::uint16_t type, std::uint64_t reg, std::uint64_t ts,
                     const net::wire::Bytes& value);
  bool fail_append_locked(int error_no);

  const std::string path_;
  const bool fsync_;
  mutable std::mutex mu_;
  int fd_ = -1;
  std::uint64_t bytes_ = 0;
  WalError last_error_ = WalError::kNone;  ///< under mu_
  int inject_errno_ = 0;                   ///< under mu_
  int inject_count_ = 0;                   ///< under mu_
  std::size_t inject_partial_ = 0;         ///< under mu_
};

}  // namespace asnap::abd
