// Per-(client, replica) responsiveness estimates for the ABD circuit
// breaker.
//
// The retransmission loop of a quorum round (abd_register.hpp) needs a
// notion of "how long should a reply from a healthy replica take" that is
// tighter than the static initial_rto: Oh-RAM-style round optimization only
// pays off if the client stops waiting on a crashed replica at RTT scale,
// not at configured-timeout scale. Each client therefore keeps an EWMA of
// observed reply round-trips per replica; the breaker derives a round's
// initial retransmission timeout from the slowest estimate.
//
// Concurrency: row `client` is written only by the thread driving that
// client's single in-flight operation (the snapshot well-formedness rule),
// so each cell is single-writer. Cells are atomics with relaxed ordering
// purely so concurrent readers (other clients never read foreign rows today,
// but stats dumps do) are race-free under TSan.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <vector>

#include "net/fault.hpp"

namespace asnap::abd {

class ReplicaHealth {
 public:
  explicit ReplicaHealth(std::size_t nodes)
      : nodes_(nodes), ewma_ns_(nodes * nodes) {
    for (auto& cell : ewma_ns_) cell.store(0, std::memory_order_relaxed);
  }

  /// Fold one observed reply round-trip from `replica` into `client`'s
  /// estimate (EWMA, alpha = 1/4). A zero estimate means "no sample yet";
  /// samples are clamped up to 1ns so a recorded cell never reads as empty.
  void record(net::NodeId client, net::NodeId replica,
              std::chrono::nanoseconds rtt) {
    auto& cell = ewma_ns_[index(client, replica)];
    const auto sample = std::max<std::int64_t>(rtt.count(), 1);
    const auto old = static_cast<std::int64_t>(
        cell.load(std::memory_order_relaxed));
    const std::int64_t next = old == 0 ? sample : old + (sample - old) / 4;
    cell.store(static_cast<std::uint64_t>(next), std::memory_order_relaxed);
  }

  /// `client`'s estimate for `replica`; 0ns when no reply has been observed.
  std::chrono::nanoseconds rtt(net::NodeId client, net::NodeId replica) const {
    return std::chrono::nanoseconds(static_cast<std::int64_t>(
        ewma_ns_[index(client, replica)].load(std::memory_order_relaxed)));
  }

  /// Slowest per-replica estimate held by `client` (0ns if no samples): a
  /// quorum must hear from several replicas, so the adaptive RTO is sized to
  /// the slowest one the client still talks to.
  std::chrono::nanoseconds max_rtt(net::NodeId client) const {
    std::int64_t worst = 0;
    for (net::NodeId j = 0; j < nodes_; ++j) {
      worst = std::max(worst, rtt(client, j).count());
    }
    return std::chrono::nanoseconds(worst);
  }

 private:
  std::size_t index(net::NodeId client, net::NodeId replica) const {
    return static_cast<std::size_t>(client) * nodes_ + replica;
  }

  std::size_t nodes_;
  std::vector<std::atomic<std::uint64_t>> ewma_ns_;
};

}  // namespace asnap::abd
