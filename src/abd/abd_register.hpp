// ABD emulation of single-writer multi-reader atomic registers over the
// simulated asynchronous network (Attiya, Bar-Noy, Dolev: "Sharing Memory
// Robustly in Message-Passing Systems", cited as [ABD] in Section 6).
//
// Each of the n nodes keeps a timestamped replica of every register.
//   write (by the register's owner): stamp the value with a fresh local
//     timestamp, broadcast WRITE(ts, v), wait for a majority of acks.
//   read: broadcast READ, wait for a majority of (ts, v) replies, adopt the
//     maximum timestamp, then perform a write-back round (broadcast
//     WRITE(ts, v), majority acks) before returning — the write-back is what
//     upgrades regularity to atomicity (no new/old inversion between two
//     readers).
//
// FAST READS (on by default, AbdConfig::fast_reads; after "Oh-RAM! One and
// a Half Round Atomic Memory" and Imbs–Raynal's fast-path registers): the
// query round doubles as a stability probe. A read skips the write-back and
// returns in ONE round when either (a) every counted replier in the query
// quorum reported the adopted best_ts — the quorum itself is a majority
// storing the value — or (b) some best_ts reply carried a CONFIRM bit,
// proving a write or write-back round for best_ts already completed at a
// majority. Writers (and slow-path readers after their write-back)
// broadcast a fire-and-forget CONFIRM(ts) to make (b) the common case.
// Any other evidence falls back to the unchanged two-round slow path, so
// the safety argument reduces to [ABD]'s (DESIGN.md §15).
//
// The network may LOSE, DUPLICATE and DELAY messages (net::FaultInjector),
// so every client round is a retransmission loop: broadcast, wait on a
// retransmission timeout (common/RetryBackoff, exponential), rebroadcast
// with the SAME request id until a majority of DISTINCT replicas answered
// or the operation deadline passes. Safety under loss/duplication rests on
// two pillars:
//   * replica handlers are idempotent — a WRITE(ts, v) applied twice is a
//     no-op the second time (ts <= replica ts), and a READ reply is pure;
//   * reply counting is deduplicated by responder node id, so duplicated or
//     retransmission-induced repeat replies can never let one replica
//     satisfy the majority twice.
// Liveness requires a majority of nodes alive and reachable within the
// deadline: with f < n/2 crashed every operation still completes. When no
// majority answers in time the operation returns a graceful
// OpStatus::kTimeout (try_read/try_write) instead of blocking forever.
//
// Crashed nodes may recover(): their endpoints reopen and, before the
// replica resumes serving, its state is resynchronized by a quorum read of
// every register so it rejoins no staler than the latest majority-acked
// write. Each recovery bumps the node's incarnation EPOCH; replicas stamp
// every reply with their current epoch and clients discard replies stamped
// by a pre-crash incarnation (defense in depth on top of per-round request
// ids against arbitrarily delayed traffic).
//
// Self-healing (optional, off by default): with a net::FailureDetector
// attached and AbdConfig::breaker.enabled set, quorum rounds run a CIRCUIT
// BREAKER — transmissions skip replicas the client currently suspects
// (periodically probing them so healed nodes are re-admitted), the initial
// retransmission timeout adapts to observed per-replica RTTs
// (ReplicaHealth) instead of the static initial_rto, and a round fails fast
// once fewer plausibly-live replicas than the quorum needs have persisted
// past a grace period — returning kTimeout in milliseconds instead of
// burning the whole op_deadline. The breaker is a liveness optimization
// only: it NEVER shrinks the quorum below the majority, so safety is
// independent of detector accuracy (the unsafe_shrink_quorum knob that
// violates this exists solely for the negative chaos test that proves the
// checkers would catch such a bug).
//
// AbdRegisterArray adapts a cluster to reg::SwmrRegisterArray, so the
// UNCHANGED Figure 2 snapshot algorithm (core::UnboundedSwSnapshot) can be
// instantiated on top of a message-passing system. Quorum failures surface
// as QuorumUnavailable exceptions so degraded-mode callers (try_scan /
// try_update on the snapshot layer) can observe them without aborting.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "abd/replica_health.hpp"
#include "common/assert.hpp"
#include "common/backoff.hpp"
#include "common/config.hpp"
#include "common/instrumentation.hpp"
#include "net/failure_detector.hpp"
#include "net/network.hpp"
#include "trace/event.hpp"

namespace asnap::abd {

enum MsgType : std::uint64_t {
  kReadReq = 1,
  kReadReply = 2,
  kWriteReq = 3,
  kWriteAck = 4,
  /// Fire-and-forget stability notice: "ts for reg is majority-acked".
  /// Sent after a completed write or write-back round; replicas fold it
  /// into confirmed_ts. Losing every copy only costs fast-read hits.
  kConfirm = 5,
};

/// Outcome of one client quorum round / operation.
enum class OpStatus : std::uint8_t {
  kOk = 0,
  kTimeout = 1,  ///< no majority of distinct replicas answered in time
  kClosed = 2,   ///< the client's own endpoint closed (node crashed/shutdown)
};

/// Circuit-breaker knobs, consulted only when `enabled` is set AND a
/// failure detector is attached (AbdCluster::attach_detector).
struct BreakerConfig {
  bool enabled = false;
  /// Floor for the adaptive RTT-derived initial retransmission timeout.
  std::chrono::microseconds min_rto{200};
  /// Initial round RTO = clamp(slowest replica RTT EWMA * rtt_multiplier,
  /// min_rto, max_rto); falls back to AbdConfig::initial_rto until the
  /// client has observed at least one reply.
  double rtt_multiplier = 4.0;
  /// Every probe_every-th transmission wave also targets suspected replicas,
  /// so a healed node is re-admitted to rounds without waiting for the
  /// detector's own trust transition. 0 disables probing.
  std::uint32_t probe_every = 4;
  /// Fail the round (kTimeout) once fewer plausibly-live replicas than the
  /// quorum needs — non-suspected or already counted this round — have
  /// persisted continuously for this long. Keeps degraded-mode latency at
  /// detector scale instead of op_deadline scale.
  std::chrono::microseconds fail_fast_grace{std::chrono::milliseconds(25)};
  /// NEGATIVE-TEST ONLY: let the breaker shrink the quorum by the number of
  /// suspected replicas. This breaks the majority-intersection safety
  /// argument of [ABD]; it exists so the chaos checkers can demonstrate
  /// they catch exactly this class of bug. Never set it elsewhere.
  bool unsafe_shrink_quorum = false;
};

/// Client-side timing knobs. Defaults are generous so fault-free workloads
/// never retransmit spuriously; fault-heavy tests tighten them.
struct AbdConfig {
  /// First retransmission timeout of a round; doubles (RetryBackoff) up to
  /// max_rto on every retransmission.
  std::chrono::microseconds initial_rto{std::chrono::milliseconds(20)};
  std::chrono::microseconds max_rto{std::chrono::milliseconds(160)};
  /// Total budget for one operation (a read spends it across both its query
  /// and write-back rounds). On expiry the operation reports kTimeout.
  std::chrono::microseconds op_deadline{std::chrono::seconds(10)};
  /// One-round fast reads (Oh-RAM! / Imbs–Raynal style): skip the
  /// write-back round when the query quorum proves the adopted value is
  /// already stable at a majority — every counted replier reported
  /// best_ts, or a best_ts reply carried the confirmed bit. Any other
  /// evidence falls back to the full query + write-back slow path.
  bool fast_reads = true;
  /// NEGATIVE-TEST ONLY: skip the write-back round unconditionally, with no
  /// stability evidence. This reintroduces the new/old inversion [ABD]'s
  /// write-back exists to prevent; it exists so the exact checker can
  /// demonstrate it catches exactly this class of bug. Never set it
  /// elsewhere.
  bool unsafe_always_fast_read = false;
  BreakerConfig breaker;
};

/// A cluster of n nodes replicating `regs` single-writer registers of type
/// V. Register r is owned (written) by node r's client; every node hosts a
/// replica of every register. Client operations may be invoked from any
/// thread, at most one in flight per node id (the snapshot well-formedness
/// rule).
template <typename V>
class AbdCluster {
 public:
  AbdCluster(std::size_t nodes, std::size_t regs, const V& init,
             std::uint64_t seed = 1, AbdConfig config = {})
      : net_(nodes, seed),
        config_(config),
        replicas_(nodes),
        write_ts_(regs, 0),
        epochs_(nodes),
        op_mu_(nodes),
        health_(nodes) {
    ASNAP_ASSERT(nodes >= 1 && regs >= 1);
    for (auto& epoch : epochs_) epoch.store(0, std::memory_order_relaxed);
    for (auto& node_replicas : replicas_) {
      node_replicas.assign(regs, Replica{0, 0, init});
    }
    servers_.reserve(nodes);
    for (std::size_t id = 0; id < nodes; ++id) {
      servers_.emplace_back(
          [this, id](std::stop_token st) { serve(static_cast<net::NodeId>(id), st); });
    }
  }

  ~AbdCluster() {
    for (auto& server : servers_) server.request_stop();
    for (std::size_t id = 0; id < net_.size(); ++id) {
      net_.mailbox(static_cast<net::NodeId>(id), net::Port::kServer).close();
    }
    servers_.clear();  // join
  }

  AbdCluster(const AbdCluster&) = delete;
  AbdCluster& operator=(const AbdCluster&) = delete;

  std::size_t nodes() const { return net_.size(); }
  std::size_t registers() const { return write_ts_.size(); }
  std::size_t majority() const { return net_.size() / 2 + 1; }

  /// Owner write: two message rounds are not needed for the writer (its own
  /// timestamp is fresh by construction) — one broadcast + majority acks.
  /// Returns kTimeout/kClosed instead of blocking when no majority of
  /// distinct replicas acks within the deadline.
  OpStatus try_write(std::size_t reg, net::NodeId writer, V value) {
    ASNAP_ASSERT(reg < registers());
    step_point(StepKind::kRegisterWrite);
    // Serializes against a concurrent supervisor recover() of this node,
    // which issues resync rounds through the same client mailbox.
    std::lock_guard op_lock(op_mu_[writer]);
    const std::uint64_t ts = ++write_ts_[reg];
    const auto deadline = std::chrono::steady_clock::now() + config_.op_deadline;
    const OpStatus status =
        run_write_round(writer, reg, ts, std::move(value), deadline);
    // The "half round" of the 1.5-round write: once a majority acked ts,
    // tell every replica so future fast reads of ts can skip write-back.
    if (status == OpStatus::kOk) broadcast_confirm(writer, reg, ts);
    return status;
  }

  /// Read, one round when possible. The query round gathers stability
  /// evidence alongside (ts, value): when every counted replier agreed on
  /// the adopted best_ts (the value is provably stored at a majority — the
  /// quorum itself) or a best_ts reply carried the confirmed bit (a prior
  /// write/write-back round for best_ts completed), the write-back round
  /// is skipped and the read finishes in one round. Otherwise the original
  /// query + write-back slow path runs unchanged (the atomicity upgrade).
  /// nullopt carries the round's failure (timeout or closed endpoint).
  std::optional<V> try_read(std::size_t reg, net::NodeId reader) {
    ASNAP_ASSERT(reg < registers());
    step_point(StepKind::kRegisterRead);
    std::lock_guard op_lock(op_mu_[reader]);
    const auto deadline = std::chrono::steady_clock::now() + config_.op_deadline;
    std::uint64_t best_ts = 0;
    V best_value{};
    QueryEvidence ev;
    if (run_query_round(reader, reg, deadline, best_ts, best_value,
                        majority(), /*allow_breaker=*/true,
                        &ev) != OpStatus::kOk) {
      return std::nullopt;
    }
    if (config_.fast_reads || config_.unsafe_always_fast_read) {
      const bool stable = ev.agree == ev.accepted || ev.best_confirmed;
      if (stable || config_.unsafe_always_fast_read) {
        fast_reads_.fetch_add(1, std::memory_order_relaxed);
        ASNAP_TRACE_EVENT(trace::EventKind::kAbdFastRead, reader, reg,
                          best_ts);
        return best_value;
      }
      fast_fallbacks_.fetch_add(1, std::memory_order_relaxed);
      ASNAP_TRACE_EVENT(trace::EventKind::kAbdFastFallback, reader, reg,
                        ev.agree < ev.accepted ? trace::kFastFallbackDisagree
                                               : trace::kFastFallbackGap);
    }
    // Write-back round: make the adopted value stable at a majority before
    // returning it (the atomicity upgrade).
    if (run_write_round(reader, reg, best_ts, best_value, deadline) !=
        OpStatus::kOk) {
      return std::nullopt;
    }
    broadcast_confirm(reader, reg, best_ts);
    return best_value;
  }

  /// Asserting wrappers for callers that operate under the liveness
  /// precondition (a majority alive and reachable): the snapshot layer and
  /// the fault-free tests/benches.
  void write(std::size_t reg, net::NodeId writer, V value) {
    const OpStatus status = try_write(reg, writer, std::move(value));
    ASNAP_ASSERT_MSG(status == OpStatus::kOk,
                     "ABD write found no majority within its deadline "
                     "(majority crashed or partitioned?)");
  }

  V read(std::size_t reg, net::NodeId reader) {
    std::optional<V> value = try_read(reg, reader);
    ASNAP_ASSERT_MSG(value.has_value(),
                     "ABD read found no majority within its deadline "
                     "(majority crashed or partitioned?)");
    return *std::move(value);
  }

  /// Fail-stop a node: closing its mailboxes makes its server loop exit and
  /// drops all of its traffic. In-flight operations of OTHER nodes keep
  /// completing as long as a majority remains alive; in-flight operations of
  /// this node return kClosed.
  void crash(net::NodeId node) { net_.crash(node); }
  bool crashed(net::NodeId node) const { return net_.crashed(node); }

  /// Restart a crashed node: rejoin the network, resynchronize every
  /// replica from a majority quorum, then resume serving. Replica state is
  /// retained across a crash (crash-recovery with stable storage, as in
  /// [ABD]), so the node's own replica counts as one member of the resync
  /// quorum; the query round collects the remaining majority()-1 distinct
  /// replies from the other replicas and adopts the maximum timestamp, so
  /// the node rejoins no staler than the latest majority-acked write.
  /// Returns false — and re-crashes the node — if no such quorum was
  /// reachable; the caller may retry later.
  ///
  /// Safe against the double-recover race (supervisor and a test both
  /// calling it): the per-node op mutex serializes the two, and recovering
  /// a node that is already live is a no-op returning true. Each effective
  /// recovery bumps the node's incarnation epoch FIRST, so replies the dead
  /// incarnation left in flight are discarded by every client.
  bool recover(net::NodeId node) {
    ASNAP_ASSERT(node < nodes());
    std::lock_guard op_lock(op_mu_[node]);
    if (!net_.crashed(node)) return true;  // double recover: already live
    const std::uint64_t epoch =
        epochs_[node].fetch_add(1, std::memory_order_acq_rel) + 1;
    ASNAP_TRACE_EVENT(trace::EventKind::kRecoverBegin, node, epoch);
    servers_[node] = std::jthread();  // join the exited incarnation
    net_.recover(node);
    // Resync before serving: the node's replica may predate majority-acked
    // writes it missed while down. One quorum read per register, issued
    // from the recovering node's client endpoint (its server is not up yet,
    // so replies can only come from the other replicas). The breaker is
    // bypassed: this node's detector rows are stale until its monitor
    // thread wakes and resets them.
    for (std::size_t reg = 0; reg < registers(); ++reg) {
      const auto deadline =
          std::chrono::steady_clock::now() + config_.op_deadline;
      Replica& rep = replicas_[node][reg];
      std::uint64_t best_ts = rep.ts;  // self: retained quorum member
      V best_value = rep.value;
      if (run_query_round(node, reg, deadline, best_ts, best_value,
                          majority() - 1, /*allow_breaker=*/false) !=
          OpStatus::kOk) {
        net_.crash(node);  // could not resync: stay down
        ASNAP_TRACE_EVENT(trace::EventKind::kRecoverEnd, node, 0);
        return false;
      }
      if (best_ts > rep.ts) {
        rep.ts = best_ts;
        rep.value = std::move(best_value);
      }
    }
    servers_[node] = std::jthread(
        [this, node](std::stop_token st) { serve(node, st); });
    ASNAP_TRACE_EVENT(trace::EventKind::kRecoverEnd, node, 1);
    return true;
  }

  /// Attach (or detach, with nullptr) the failure detector whose per-client
  /// suspicion hints drive the circuit breaker. Call from a quiescent point
  /// before the workload starts; the detector must outlive the cluster or a
  /// later attach_detector(nullptr).
  void attach_detector(const net::FailureDetector* detector) {
    detector_.store(detector, std::memory_order_release);
  }

  /// Current incarnation epoch of a node (0 until its first recovery).
  std::uint64_t epoch(net::NodeId node) const {
    ASNAP_ASSERT(node < nodes());
    return epochs_[node].load(std::memory_order_acquire);
  }

  /// Sever / restore the link between two nodes. Liveness requires every
  /// node that still issues operations to reach a majority of replicas
  /// directly.
  void cut_link(net::NodeId a, net::NodeId b) { net_.cut_link(a, b); }
  void restore_link(net::NodeId a, net::NodeId b) { net_.restore_link(a, b); }

  /// Fault-injection control passthroughs — see net::FaultPlan.
  net::Network& network() { return net_; }
  void set_fault_plan(const net::FaultPlan& plan) { net_.set_fault_plan(plan); }
  void partition(const std::vector<std::vector<net::NodeId>>& groups) {
    net_.partition(groups);
  }
  void heal() { net_.heal(); }

  std::uint64_t messages_sent() const { return net_.messages_sent(); }
  std::size_t alive_count() const { return net_.alive_count(); }

  /// Aggregate retry metrics across all clients (per-thread breakdowns come
  /// from asnap::RetryMeter).
  /// Protocol rounds started (query / write / write-back), NOT counting
  /// retransmission waves within a round — see retransmits_sent() for those.
  std::uint64_t protocol_rounds() const {
    return rounds_.load(std::memory_order_relaxed);
  }
  /// Reads that returned after the query round alone (write-back skipped).
  std::uint64_t fast_reads() const {
    return fast_reads_.load(std::memory_order_relaxed);
  }
  /// Reads that wanted the fast path but fell back to write-back.
  std::uint64_t fast_fallbacks() const {
    return fast_fallbacks_.load(std::memory_order_relaxed);
  }
  std::uint64_t retransmits_sent() const {
    return retransmits_.load(std::memory_order_relaxed);
  }
  std::uint64_t dup_replies_ignored() const {
    return dup_replies_.load(std::memory_order_relaxed);
  }
  std::uint64_t round_timeouts() const {
    return round_timeouts_.load(std::memory_order_relaxed);
  }
  std::uint64_t breaker_skips() const {
    return breaker_skips_.load(std::memory_order_relaxed);
  }
  std::uint64_t fail_fasts() const {
    return fail_fasts_.load(std::memory_order_relaxed);
  }
  std::uint64_t stale_epoch_replies() const {
    return stale_epoch_replies_.load(std::memory_order_relaxed);
  }

  /// Test hook: a replica's current timestamp for one register. Only valid
  /// at quiescent points (no in-flight operation touching the node).
  std::uint64_t replica_ts(net::NodeId node, std::size_t reg) const {
    ASNAP_ASSERT(node < nodes() && reg < registers());
    return replicas_[node][reg].ts;
  }

  /// Test hook: the highest timestamp a replica knows to be majority-acked
  /// (0 = none confirmed). Same quiescence caveat as replica_ts().
  std::uint64_t replica_confirmed_ts(net::NodeId node, std::size_t reg) const {
    ASNAP_ASSERT(node < nodes() && reg < registers());
    return replicas_[node][reg].confirmed_ts;
  }

 private:
  struct Replica {
    std::uint64_t ts = 0;
    /// Highest ts known majority-acked (kConfirm). Invariant: a confirm for
    /// T is only broadcast after T reached a majority, so confirmed_ts >= ts
    /// proves the stored (ts, value) needs no write-back. May exceed ts when
    /// this replica missed the confirmed write itself — still safe evidence
    /// for a reader whose quorum maximum is ts (see DESIGN.md §15).
    std::uint64_t confirmed_ts = 0;
    V value{};
  };
  struct ReadReq {
    std::size_t reg;
  };
  struct ReadReply {
    std::size_t reg;
    std::uint64_t ts;
    std::uint64_t epoch;  ///< responder's incarnation at reply time
    bool confirmed;       ///< ts > 0 and confirmed_ts >= ts at the replica
    V value;
  };
  struct WriteReq {
    std::size_t reg;
    std::uint64_t ts;
    V value;
  };
  struct WriteAck {
    std::uint64_t epoch;  ///< responder's incarnation at ack time
  };
  struct ConfirmReq {
    std::size_t reg;
    std::uint64_t ts;
  };

  /// Stability evidence gathered by a query round, for the fast-read
  /// decision. `accepted` counts replies that passed the epoch filter;
  /// `agree` counts those whose ts equals the round's final best_ts;
  /// `best_confirmed` is set when any agreeing reply carried the confirmed
  /// bit.
  struct QueryEvidence {
    std::size_t accepted = 0;
    std::size_t agree = 0;
    bool best_confirmed = false;
  };

  std::uint64_t next_rid() {
    return rid_gen_.fetch_add(1, std::memory_order_relaxed);
  }

  /// One retransmitting quorum round: transmit the request to each target
  /// (`transmit_to(node)`), then collect replies matching (rid, want_type)
  /// until `needed` DISTINCT responders are reached (the majority, except
  /// for recovery resync where the recovering replica itself is one quorum
  /// member). Waits with exponential backoff and retransmits (same rid —
  /// replica handlers are idempotent) on every expiry until `deadline`.
  /// on_reply runs once per distinct responder and returns whether the
  /// reply counts (false = stamped by a stale incarnation; the responder
  /// stays uncounted so its current incarnation can still answer).
  ///
  /// With the circuit breaker armed (config + detector + allow_breaker),
  /// transmission waves skip suspected and already-counted replicas (with
  /// periodic probe waves), the initial RTO adapts to observed replica
  /// RTTs, and the round fails fast when too few plausibly-live replicas
  /// remain. Without it the wave degenerates to the plain broadcast loop.
  template <typename Transmit, typename OnReply>
  OpStatus run_round(net::NodeId client, std::uint64_t rid,
                     std::uint64_t want_type,
                     std::chrono::steady_clock::time_point deadline,
                     std::size_t needed, Transmit&& transmit_to,
                     OnReply&& on_reply, bool allow_breaker = true) {
    if (needed == 0) return OpStatus::kOk;
    const std::size_t n = net_.size();
    auto& inbox = net_.mailbox(client, net::Port::kClient);
    const net::FailureDetector* fd =
        allow_breaker ? detector_.load(std::memory_order_acquire) : nullptr;
    const bool breaker = config_.breaker.enabled && fd != nullptr;

    auto initial_rto = config_.initial_rto;
    if (breaker) {
      const auto est = health_.max_rtt(client);
      if (est.count() > 0) {
        const auto adaptive =
            std::chrono::duration_cast<std::chrono::microseconds>(
                est * config_.breaker.rtt_multiplier);
        initial_rto =
            std::clamp(adaptive, config_.breaker.min_rto, config_.max_rto);
      }
    }
    RetryBackoff backoff(initial_rto, config_.max_rto);

    std::vector<char> seen(n, 0);
    std::vector<std::chrono::steady_clock::time_point> last_tx(n);
    std::size_t accepted = 0;
    std::uint32_t waves = 0;
    std::optional<std::chrono::steady_clock::time_point> starved_since;

    auto transmit_wave = [&] {
      const std::uint32_t wave = waves++;
      const bool probe = breaker && config_.breaker.probe_every != 0 &&
                         (wave + 1) % config_.breaker.probe_every == 0;
      const auto now = std::chrono::steady_clock::now();
      for (net::NodeId to = 0; to < n; ++to) {
        if (breaker && seen[to]) continue;  // already counted this round
        if (breaker && !probe && fd->suspected(client, to)) {
          breaker_skips_.fetch_add(1, std::memory_order_relaxed);
          ASNAP_TRACE_EVENT(trace::EventKind::kBreakerSkip, client, to);
          continue;
        }
        last_tx[to] = now;
        transmit_to(to);
      }
    };

    // How many distinct replies this round still insists on. Always
    // `needed` — except under the deliberately broken negative-test knob,
    // which deducts currently-suspected uncounted replicas.
    auto effective_needed = [&]() -> std::size_t {
      if (!breaker || !config_.breaker.unsafe_shrink_quorum) return needed;
      std::size_t suspected_uncounted = 0;
      for (net::NodeId j = 0; j < n; ++j) {
        if (!seen[j] && fd->suspected(client, j)) ++suspected_uncounted;
      }
      return needed > suspected_uncounted + 1 ? needed - suspected_uncounted
                                              : 1;
    };

    note_round();
    rounds_.fetch_add(1, std::memory_order_relaxed);
    ASNAP_TRACE_EVENT(trace::EventKind::kAbdRoundBegin, client, rid, needed);
    transmit_wave();
    auto retransmit_at = std::chrono::steady_clock::now() + backoff.current();
    while (accepted < effective_needed()) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) {
        note_round_timeout();
        round_timeouts_.fetch_add(1, std::memory_order_relaxed);
        ASNAP_TRACE_EVENT(trace::EventKind::kAbdRoundTimeout, client, rid);
        return OpStatus::kTimeout;
      }
      if (breaker && !config_.breaker.unsafe_shrink_quorum) {
        std::size_t plausible = 0;
        for (net::NodeId j = 0; j < n; ++j) {
          if (seen[j] || !fd->suspected(client, j)) ++plausible;
        }
        if (plausible < needed) {
          if (!starved_since) {
            starved_since = now;
          } else if (now - *starved_since >= config_.breaker.fail_fast_grace) {
            fail_fasts_.fetch_add(1, std::memory_order_relaxed);
            note_round_timeout();
            round_timeouts_.fetch_add(1, std::memory_order_relaxed);
            ASNAP_TRACE_EVENT(trace::EventKind::kBreakerFailFast, client, rid,
                              plausible);
            return OpStatus::kTimeout;
          }
        } else {
          starved_since.reset();
        }
      }
      auto msg = inbox.receive_until(std::min(deadline, retransmit_at));
      if (!msg.has_value()) {
        if (inbox.closed()) {
          ASNAP_TRACE_EVENT(trace::EventKind::kAbdRoundTimeout, client, rid);
          return OpStatus::kClosed;
        }
        if (std::chrono::steady_clock::now() >= retransmit_at) {
          note_retransmit();
          retransmits_.fetch_add(1, std::memory_order_relaxed);
          ASNAP_TRACE_EVENT(trace::EventKind::kAbdRetransmit, client, rid);
          transmit_wave();
          backoff.grow();
          retransmit_at = std::chrono::steady_clock::now() + backoff.current();
        }
        continue;
      }
      if (msg->rid != rid || msg->type != want_type) continue;  // stale round
      if (seen[msg->from]) {  // duplicated/retransmitted reply: count once
        note_dup_reply();
        dup_replies_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (!on_reply(*msg)) {  // stamped by a pre-crash incarnation
        stale_epoch_replies_.fetch_add(1, std::memory_order_relaxed);
        ASNAP_TRACE_EVENT(trace::EventKind::kStaleEpochReply, client,
                          msg->from, 0);
        continue;
      }
      seen[msg->from] = 1;
      if (last_tx[msg->from] != std::chrono::steady_clock::time_point{}) {
        health_.record(client, msg->from,
                       std::chrono::steady_clock::now() - last_tx[msg->from]);
      }
      ++accepted;
    }
    ASNAP_TRACE_EVENT(trace::EventKind::kAbdQuorumReached, client, rid,
                      accepted);
    return OpStatus::kOk;
  }

  /// Query round of a read (or a recovery resync): fold the maximum
  /// (ts, value) over `needed` distinct replies into best_ts/best_value
  /// (callers pre-seed them; resync seeds with the local replica). When
  /// `ev` is non-null, stability evidence for the fast-read decision is
  /// accumulated alongside (recovery passes nullptr: a resync quorum is
  /// majority()-1 remote replies plus the local replica, which yields no
  /// majority-stability proof — resync must never skip-stabilize).
  OpStatus run_query_round(net::NodeId client, std::size_t reg,
                           std::chrono::steady_clock::time_point deadline,
                           std::uint64_t& best_ts, V& best_value,
                           std::size_t needed, bool allow_breaker = true,
                           QueryEvidence* ev = nullptr) {
    const std::uint64_t rid = next_rid();
    return run_round(
        client, rid, kReadReply, deadline, needed,
        [&](net::NodeId to) {
          net_.send(client, to, net::Port::kServer, kReadReq, rid,
                    std::any(ReadReq{reg}));
        },
        [&](const net::Message& msg) {
          const auto& reply = std::any_cast<const ReadReply&>(msg.payload);
          if (reply.epoch !=
              epochs_[msg.from].load(std::memory_order_acquire)) {
            return false;
          }
          if (reply.ts > best_ts) {
            best_ts = reply.ts;
            best_value = reply.value;
            if (ev != nullptr) {
              ev->agree = 1;
              ev->best_confirmed = reply.confirmed;
            }
          } else if (reply.ts == best_ts) {
            // Equal ts: re-adopt so a fresh read (seeded ts=0,
            // value-initialized) picks up the replicas' init value; with a
            // single writer values at equal ts coincide, so this is
            // harmless otherwise.
            best_value = reply.value;
            if (ev != nullptr) {
              ++ev->agree;
              ev->best_confirmed = ev->best_confirmed || reply.confirmed;
            }
          }
          if (ev != nullptr) ++ev->accepted;
          return true;
        },
        allow_breaker);
  }

  /// Fire-and-forget stability notice after a majority-acked write or
  /// write-back round. No retransmission and no acks: confirms are a pure
  /// latency optimization for future fast reads, and a lost confirm only
  /// costs a fallback to the slow path. ts == 0 (never written) needs no
  /// confirm — unanimity covers it.
  void broadcast_confirm(net::NodeId client, std::size_t reg,
                         std::uint64_t ts) {
    if (ts == 0) return;
    const std::uint64_t rid = next_rid();
    const std::size_t n = net_.size();
    for (net::NodeId to = 0; to < n; ++to) {
      net_.send(client, to, net::Port::kServer, kConfirm, rid,
                std::any(ConfirmReq{reg, ts}));
    }
  }

  OpStatus run_write_round(net::NodeId client, std::size_t reg,
                           std::uint64_t ts, V value,
                           std::chrono::steady_clock::time_point deadline) {
    const std::uint64_t rid = next_rid();
    return run_round(
        client, rid, kWriteAck, deadline, majority(),
        [&](net::NodeId to) {
          net_.send(client, to, net::Port::kServer, kWriteReq, rid,
                    std::any(WriteReq{reg, ts, value}));
        },
        [&](const net::Message& msg) {
          const auto& ack = std::any_cast<const WriteAck&>(msg.payload);
          return ack.epoch ==
                 epochs_[msg.from].load(std::memory_order_acquire);
        });
  }

  /// Replica event loop for one node. Only this thread touches
  /// replicas_[id], so replica state needs no locking. Handlers are
  /// idempotent: re-delivered or duplicated requests re-send the reply but
  /// never re-apply an effect (WRITE applies only on a strictly larger ts).
  void serve(net::NodeId id, std::stop_token st) {
    auto& inbox = net_.mailbox(id, net::Port::kServer);
    while (!st.stop_requested()) {
      auto msg = inbox.receive();
      if (!msg.has_value()) return;  // closed: shutdown or crash
      switch (msg->type) {
        case kReadReq: {
          const auto& req = std::any_cast<const ReadReq&>(msg->payload);
          const Replica& rep = replicas_[id][req.reg];
          net_.send(id, msg->from, net::Port::kClient, kReadReply, msg->rid,
                    std::any(ReadReply{
                        req.reg, rep.ts,
                        epochs_[id].load(std::memory_order_relaxed),
                        rep.ts > 0 && rep.confirmed_ts >= rep.ts,
                        rep.value}));
          break;
        }
        case kWriteReq: {
          const auto& req = std::any_cast<const WriteReq&>(msg->payload);
          Replica& rep = replicas_[id][req.reg];
          if (req.ts > rep.ts) {
            rep.ts = req.ts;
            rep.value = req.value;
          }
          net_.send(id, msg->from, net::Port::kClient, kWriteAck, msg->rid,
                    std::any(WriteAck{
                        epochs_[id].load(std::memory_order_relaxed)}));
          break;
        }
        case kConfirm: {
          const auto& req = std::any_cast<const ConfirmReq&>(msg->payload);
          Replica& rep = replicas_[id][req.reg];
          if (req.ts > rep.confirmed_ts) rep.confirmed_ts = req.ts;
          break;  // fire-and-forget: no reply
        }
        default:
          ASNAP_ASSERT_MSG(false, "unknown message type at replica");
      }
    }
  }

  net::Network net_;
  AbdConfig config_;
  std::vector<std::vector<Replica>> replicas_;  ///< [node][register]
  std::vector<std::uint64_t> write_ts_;  ///< per register; owner-only access
  /// Incarnation epoch per node, bumped by each effective recover().
  std::vector<std::atomic<std::uint64_t>> epochs_;
  /// Per-node operation mutex: a node's client ops and a supervisor
  /// recover() of the same node share one client mailbox, so they must not
  /// interleave (reply stealing). deque because mutexes don't move.
  mutable std::deque<std::mutex> op_mu_;
  ReplicaHealth health_;  ///< per-(client, replica) RTT EWMAs
  std::atomic<const net::FailureDetector*> detector_{nullptr};
  std::atomic<std::uint64_t> rid_gen_{1};
  std::atomic<std::uint64_t> rounds_{0};
  std::atomic<std::uint64_t> fast_reads_{0};
  std::atomic<std::uint64_t> fast_fallbacks_{0};
  std::atomic<std::uint64_t> retransmits_{0};
  std::atomic<std::uint64_t> dup_replies_{0};
  std::atomic<std::uint64_t> round_timeouts_{0};
  std::atomic<std::uint64_t> breaker_skips_{0};
  std::atomic<std::uint64_t> fail_fasts_{0};
  std::atomic<std::uint64_t> stale_epoch_replies_{0};
  std::vector<std::jthread> servers_;
};

/// Thrown by AbdRegisterArray when a register operation cannot reach a
/// majority of distinct replicas within its deadline (or the client's own
/// endpoint closed mid-operation). Unwinds cleanly through the snapshot
/// cores — they keep only local state per operation — so degraded-mode
/// callers (MessagePassingSnapshot::try_scan / try_update) can turn it into
/// a soft failure while the asserting entry points keep the old abort
/// behavior.
struct QuorumUnavailable : std::runtime_error {
  explicit QuorumUnavailable(const char* op)
      : std::runtime_error(std::string("ABD ") + op +
                           " found no majority within its deadline "
                           "(majority crashed or partitioned?)") {}
};

/// Adapter: exposes an AbdCluster as a reg::SwmrRegisterArray so the
/// snapshot algorithms run unchanged over message passing.
template <typename Rec>
class AbdRegisterArray {
 public:
  explicit AbdRegisterArray(AbdCluster<Rec>& cluster) : cluster_(&cluster) {}

  std::size_t size() const { return cluster_->registers(); }

  Rec read(ProcessId owner, ProcessId reader) const {
    std::optional<Rec> value = cluster_->try_read(owner, reader);
    if (!value.has_value()) throw QuorumUnavailable("read");
    return *std::move(value);
  }

  void write(ProcessId owner, Rec rec) {
    if (cluster_->try_write(owner, owner, std::move(rec)) != OpStatus::kOk) {
      throw QuorumUnavailable("write");
    }
  }

 private:
  AbdCluster<Rec>* cluster_;
};

}  // namespace asnap::abd
