// ABD emulation of single-writer multi-reader atomic registers over the
// simulated asynchronous network (Attiya, Bar-Noy, Dolev: "Sharing Memory
// Robustly in Message-Passing Systems", cited as [ABD] in Section 6).
//
// Each of the n nodes keeps a timestamped replica of every register.
//   write (by the register's owner): stamp the value with a fresh local
//     timestamp, broadcast WRITE(ts, v), wait for a majority of acks.
//   read: broadcast READ, wait for a majority of (ts, v) replies, adopt the
//     maximum timestamp, then perform a write-back round (broadcast
//     WRITE(ts, v), majority acks) before returning — the write-back is what
//     upgrades regularity to atomicity (no new/old inversion between two
//     readers).
//
// Liveness requires only a majority of nodes alive: with f < n/2 crashed,
// every operation still completes — the resilience property Section 6
// advertises for message-passing snapshot memories.
//
// AbdRegisterArray adapts a cluster to reg::SwmrRegisterArray, so the
// UNCHANGED Figure 2 snapshot algorithm (core::UnboundedSwSnapshot) can be
// instantiated on top of a message-passing system.
#pragma once

#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/config.hpp"
#include "common/instrumentation.hpp"
#include "net/network.hpp"

namespace asnap::abd {

enum MsgType : std::uint64_t {
  kReadReq = 1,
  kReadReply = 2,
  kWriteReq = 3,
  kWriteAck = 4,
};

/// A cluster of n nodes replicating `regs` single-writer registers of type
/// V. Register r is owned (written) by node r's client; every node hosts a
/// replica of every register. Client operations may be invoked from any
/// thread, at most one in flight per node id (the snapshot well-formedness
/// rule).
template <typename V>
class AbdCluster {
 public:
  AbdCluster(std::size_t nodes, std::size_t regs, const V& init,
             std::uint64_t seed = 1)
      : net_(nodes, seed),
        replicas_(nodes),
        write_ts_(regs, 0) {
    ASNAP_ASSERT(nodes >= 1 && regs >= 1);
    for (auto& node_replicas : replicas_) {
      node_replicas.assign(regs, Replica{0, init});
    }
    servers_.reserve(nodes);
    for (std::size_t id = 0; id < nodes; ++id) {
      servers_.emplace_back(
          [this, id](std::stop_token st) { serve(static_cast<net::NodeId>(id), st); });
    }
  }

  ~AbdCluster() {
    for (auto& server : servers_) server.request_stop();
    for (std::size_t id = 0; id < net_.size(); ++id) {
      net_.mailbox(static_cast<net::NodeId>(id), net::Port::kServer).close();
    }
    servers_.clear();  // join
  }

  AbdCluster(const AbdCluster&) = delete;
  AbdCluster& operator=(const AbdCluster&) = delete;

  std::size_t nodes() const { return net_.size(); }
  std::size_t registers() const { return write_ts_.size(); }
  std::size_t majority() const { return net_.size() / 2 + 1; }

  /// Owner write: two message rounds are not needed for the writer (its own
  /// timestamp is fresh by construction) — one broadcast + majority acks.
  void write(std::size_t reg, net::NodeId writer, V value) {
    ASNAP_ASSERT(reg < registers());
    step_point(StepKind::kRegisterWrite);
    const std::uint64_t ts = ++write_ts_[reg];
    run_write_round(writer, reg, ts, std::move(value));
  }

  /// Read with write-back round.
  V read(std::size_t reg, net::NodeId reader) {
    ASNAP_ASSERT(reg < registers());
    step_point(StepKind::kRegisterRead);
    const std::uint64_t rid = next_rid();
    net_.broadcast(reader, net::Port::kServer, kReadReq, rid,
                   std::any(ReadReq{reg}));
    // Collect the majority of replies, keeping the maximum timestamp.
    std::uint64_t best_ts = 0;
    V best_value{};
    bool have_any = false;
    std::size_t replies = 0;
    auto& inbox = net_.mailbox(reader, net::Port::kClient);
    while (replies < majority()) {
      auto msg = inbox.receive();
      ASNAP_ASSERT_MSG(msg.has_value(),
                       "client mailbox closed mid-operation (crashed node "
                       "still executing operations?)");
      if (msg->rid != rid || msg->type != kReadReply) continue;  // stale
      const auto& reply = std::any_cast<const ReadReply&>(msg->payload);
      if (!have_any || reply.ts > best_ts) {
        best_ts = reply.ts;
        best_value = reply.value;
        have_any = true;
      }
      ++replies;
    }
    // Write-back round: make the adopted value stable at a majority.
    run_write_round(reader, reg, best_ts, best_value);
    return best_value;
  }

  /// Fail-stop a node: closing its mailboxes makes its server loop exit and
  /// drops all of its traffic. The caller must ensure no operation of that
  /// node is in flight and that a majority remains alive.
  void crash(net::NodeId node) { net_.crash(node); }

  /// Sever the link between two nodes. Liveness requires every node that
  /// still issues operations to reach a majority of replicas directly.
  void cut_link(net::NodeId a, net::NodeId b) { net_.cut_link(a, b); }

  std::uint64_t messages_sent() const { return net_.messages_sent(); }
  std::size_t alive_count() const { return net_.alive_count(); }

 private:
  struct Replica {
    std::uint64_t ts = 0;
    V value{};
  };
  struct ReadReq {
    std::size_t reg;
  };
  struct ReadReply {
    std::size_t reg;
    std::uint64_t ts;
    V value;
  };
  struct WriteReq {
    std::size_t reg;
    std::uint64_t ts;
    V value;
  };

  std::uint64_t next_rid() {
    return rid_gen_.fetch_add(1, std::memory_order_relaxed);
  }

  void run_write_round(net::NodeId client, std::size_t reg, std::uint64_t ts,
                       V value) {
    const std::uint64_t rid = next_rid();
    net_.broadcast(client, net::Port::kServer, kWriteReq, rid,
                   std::any(WriteReq{reg, ts, std::move(value)}));
    std::size_t acks = 0;
    auto& inbox = net_.mailbox(client, net::Port::kClient);
    while (acks < majority()) {
      auto msg = inbox.receive();
      ASNAP_ASSERT_MSG(msg.has_value(),
                       "client mailbox closed mid-operation");
      if (msg->rid != rid || msg->type != kWriteAck) continue;
      ++acks;
    }
  }

  /// Replica event loop for one node. Only this thread touches
  /// replicas_[id], so replica state needs no locking.
  void serve(net::NodeId id, std::stop_token st) {
    auto& inbox = net_.mailbox(id, net::Port::kServer);
    while (!st.stop_requested()) {
      auto msg = inbox.receive();
      if (!msg.has_value()) return;  // closed: shutdown or crash
      switch (msg->type) {
        case kReadReq: {
          const auto& req = std::any_cast<const ReadReq&>(msg->payload);
          const Replica& rep = replicas_[id][req.reg];
          net_.send(id, msg->from, net::Port::kClient, kReadReply, msg->rid,
                    std::any(ReadReply{req.reg, rep.ts, rep.value}));
          break;
        }
        case kWriteReq: {
          const auto& req = std::any_cast<const WriteReq&>(msg->payload);
          Replica& rep = replicas_[id][req.reg];
          if (req.ts > rep.ts) {
            rep.ts = req.ts;
            rep.value = req.value;
          }
          net_.send(id, msg->from, net::Port::kClient, kWriteAck, msg->rid,
                    std::any());
          break;
        }
        default:
          ASNAP_ASSERT_MSG(false, "unknown message type at replica");
      }
    }
  }

  net::Network net_;
  std::vector<std::vector<Replica>> replicas_;  ///< [node][register]
  std::vector<std::uint64_t> write_ts_;  ///< per register; owner-only access
  std::atomic<std::uint64_t> rid_gen_{1};
  std::vector<std::jthread> servers_;
};

/// Adapter: exposes an AbdCluster as a reg::SwmrRegisterArray so the
/// snapshot algorithms run unchanged over message passing.
template <typename Rec>
class AbdRegisterArray {
 public:
  explicit AbdRegisterArray(AbdCluster<Rec>& cluster) : cluster_(&cluster) {}

  std::size_t size() const { return cluster_->registers(); }

  Rec read(ProcessId owner, ProcessId reader) const {
    return cluster_->read(owner, reader);
  }

  void write(ProcessId owner, Rec rec) {
    cluster_->write(owner, owner, std::move(rec));
  }

 private:
  AbdCluster<Rec>* cluster_;
};

}  // namespace asnap::abd
