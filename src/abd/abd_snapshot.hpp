// Atomic snapshot memory for message-passing systems (Section 6):
// the UNCHANGED Figure 2 algorithm instantiated over ABD-emulated registers.
//
// "Snapshots obtained this way are true instantaneous images of the global
//  state. In addition, these implementations are resilient to process and
//  link failures, as long as a majority of the system remains connected."
//
// Each logical process is a cluster node; its snapshot operations translate
// into quorum message rounds. Crash any minority of nodes and the survivors'
// updates and scans keep completing and keep being linearizable.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "abd/abd_register.hpp"
#include "abd/supervisor.hpp"
#include "common/config.hpp"
#include "core/unbounded_sw_snapshot.hpp"
#include "net/failure_detector.hpp"

namespace asnap::abd {

template <typename T>
class MessagePassingSnapshot {
 public:
  using Snapshot = core::UnboundedSwSnapshot<T, AbdRegisterArray>;
  using Record = typename Snapshot::Record;

  MessagePassingSnapshot(std::size_t n, const T& init, std::uint64_t seed = 1,
                         AbdConfig config = {})
      : cluster_(n, n, Snapshot::initial_record(n, init), seed, config),
        snapshot_(AbdRegisterArray<Record>(cluster_)) {}

  std::size_t size() const { return snapshot_.size(); }

  /// Asserting entry points for callers operating under the liveness
  /// precondition (a majority alive and reachable) — the original Section 6
  /// behavior.
  void update(ProcessId i, T value) {
    try {
      snapshot_.update(i, std::move(value));
    } catch (const QuorumUnavailable& e) {
      ASNAP_ASSERT_MSG(false, e.what());
    }
  }
  std::vector<T> scan(ProcessId i) {
    try {
      return snapshot_.scan(i);
    } catch (const QuorumUnavailable& e) {
      ASNAP_ASSERT_MSG(false, e.what());
    }
    return {};  // unreachable
  }

  /// Degraded-mode entry points: a quorum failure (majority crashed,
  /// partitioned away, or the caller's own node down) is reported instead
  /// of aborting, so a workload can ride through outages and retry.
  /// A failed update is INDETERMINATE — the value may or may not have
  /// reached a majority; retrying with the same logical value is the sound
  /// recovery (the embedded write is idempotent at equal tags).
  bool try_update(ProcessId i, T value) {
    try {
      snapshot_.update(i, std::move(value));
      return true;
    } catch (const QuorumUnavailable&) {
      return false;
    }
  }
  std::optional<std::vector<T>> try_scan(ProcessId i) {
    try {
      return snapshot_.scan(i);
    } catch (const QuorumUnavailable&) {
      return std::nullopt;
    }
  }

  /// Fail-stop node i. Its process must issue no further operations; all
  /// other processes continue as long as a majority is alive.
  void crash(ProcessId i) { cluster_.crash(i); }

  /// Restart a crashed node (rejoin + replica resync from a majority); its
  /// process may issue operations again once this returns true. Safe to
  /// race with the self-healing supervisor (double recover is a no-op).
  bool recover(ProcessId i) { return cluster_.recover(i); }
  bool crashed(ProcessId i) const { return cluster_.crashed(i); }

  /// Sever a link. Processes that keep operating must still reach a
  /// majority of replicas directly.
  void cut_link(ProcessId a, ProcessId b) { cluster_.cut_link(a, b); }
  void restore_link(ProcessId a, ProcessId b) { cluster_.restore_link(a, b); }

  /// Lossy-network adversary controls (drop/dup/delay/partition) — the
  /// retransmitting ABD client rounds keep scans/updates live through them.
  void set_fault_plan(const net::FaultPlan& plan) {
    cluster_.set_fault_plan(plan);
  }
  void partition(const std::vector<std::vector<net::NodeId>>& groups) {
    cluster_.partition(groups);
  }
  void heal() { cluster_.heal(); }

  std::uint64_t messages_sent() const { return cluster_.messages_sent(); }
  std::uint64_t protocol_rounds() const { return cluster_.protocol_rounds(); }
  std::uint64_t fast_reads() const { return cluster_.fast_reads(); }
  std::uint64_t fast_fallbacks() const { return cluster_.fast_fallbacks(); }
  std::uint64_t retransmits_sent() const {
    return cluster_.retransmits_sent();
  }
  std::uint64_t dup_replies_ignored() const {
    return cluster_.dup_replies_ignored();
  }
  std::uint64_t round_timeouts() const { return cluster_.round_timeouts(); }
  std::size_t alive_count() const { return cluster_.alive_count(); }
  const core::ScanStats& stats(ProcessId i) const { return snapshot_.stats(i); }

  // --- self-healing ---------------------------------------------------------

  /// Knobs for enable_self_healing(). Defaults suit chaos runs (millisecond
  /// failure detection, a few ms of simulated reboot time).
  struct SelfHealingConfig {
    net::DetectorConfig detector;
    SupervisorConfig supervisor;
    /// Optional observer of suspect/trust transitions (the chaos
    /// orchestrator measures detection latency through it). Fires from
    /// detector monitor threads; must be cheap and non-blocking.
    net::FailureDetector::Callback detector_callback;
  };

  /// Start the self-healing layer: a heartbeat failure detector whose
  /// suspicion hints arm the cluster's circuit breaker (if
  /// AbdConfig::breaker.enabled was set), plus a supervisor that
  /// auto-recovers crashed nodes. Call once, from a quiescent point before
  /// the workload starts; both live until the snapshot is destroyed.
  void enable_self_healing(const SelfHealingConfig& cfg = {}) {
    ASNAP_ASSERT_MSG(!detector_, "self-healing already enabled");
    detector_ = std::make_unique<net::FailureDetector>(
        cluster_.network(), cfg.detector, cfg.detector_callback);
    cluster_.attach_detector(detector_.get());
    supervisor_ =
        std::make_unique<AbdSupervisor<Record>>(cluster_, cfg.supervisor);
  }

  const net::FailureDetector* detector() const { return detector_.get(); }
  const AbdSupervisor<Record>* supervisor() const { return supervisor_.get(); }

  /// Cluster-level self-healing counters (0 when the layer is off).
  std::uint64_t breaker_skips() const { return cluster_.breaker_skips(); }
  std::uint64_t fail_fasts() const { return cluster_.fail_fasts(); }
  std::uint64_t stale_epoch_replies() const {
    return cluster_.stale_epoch_replies();
  }
  std::uint64_t epoch(ProcessId i) const { return cluster_.epoch(i); }

 private:
  AbdCluster<Record> cluster_;
  Snapshot snapshot_;
  // Destruction order matters: supervisor_ and detector_ hold references
  // into cluster_, and members are destroyed in reverse declaration order,
  // so they are torn down (threads joined) before cluster_ dies.
  std::unique_ptr<net::FailureDetector> detector_;
  std::unique_ptr<AbdSupervisor<Record>> supervisor_;
};

}  // namespace asnap::abd
