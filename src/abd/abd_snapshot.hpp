// Atomic snapshot memory for message-passing systems (Section 6):
// the UNCHANGED Figure 2 algorithm instantiated over ABD-emulated registers.
//
// "Snapshots obtained this way are true instantaneous images of the global
//  state. In addition, these implementations are resilient to process and
//  link failures, as long as a majority of the system remains connected."
//
// Each logical process is a cluster node; its snapshot operations translate
// into quorum message rounds. Crash any minority of nodes and the survivors'
// updates and scans keep completing and keep being linearizable.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "abd/abd_register.hpp"
#include "common/config.hpp"
#include "core/unbounded_sw_snapshot.hpp"

namespace asnap::abd {

template <typename T>
class MessagePassingSnapshot {
 public:
  using Snapshot = core::UnboundedSwSnapshot<T, AbdRegisterArray>;
  using Record = typename Snapshot::Record;

  MessagePassingSnapshot(std::size_t n, const T& init, std::uint64_t seed = 1,
                         AbdConfig config = {})
      : cluster_(n, n, Snapshot::initial_record(n, init), seed, config),
        snapshot_(AbdRegisterArray<Record>(cluster_)) {}

  std::size_t size() const { return snapshot_.size(); }

  void update(ProcessId i, T value) { snapshot_.update(i, std::move(value)); }
  std::vector<T> scan(ProcessId i) { return snapshot_.scan(i); }

  /// Fail-stop node i. Its process must issue no further operations; all
  /// other processes continue as long as a majority is alive.
  void crash(ProcessId i) { cluster_.crash(i); }

  /// Restart a crashed node (rejoin + replica resync from a majority); its
  /// process may issue operations again once this returns true.
  bool recover(ProcessId i) { return cluster_.recover(i); }

  /// Sever a link. Processes that keep operating must still reach a
  /// majority of replicas directly.
  void cut_link(ProcessId a, ProcessId b) { cluster_.cut_link(a, b); }
  void restore_link(ProcessId a, ProcessId b) { cluster_.restore_link(a, b); }

  /// Lossy-network adversary controls (drop/dup/delay/partition) — the
  /// retransmitting ABD client rounds keep scans/updates live through them.
  void set_fault_plan(const net::FaultPlan& plan) {
    cluster_.set_fault_plan(plan);
  }
  void partition(const std::vector<std::vector<net::NodeId>>& groups) {
    cluster_.partition(groups);
  }
  void heal() { cluster_.heal(); }

  std::uint64_t messages_sent() const { return cluster_.messages_sent(); }
  std::uint64_t retransmits_sent() const {
    return cluster_.retransmits_sent();
  }
  std::uint64_t dup_replies_ignored() const {
    return cluster_.dup_replies_ignored();
  }
  std::size_t alive_count() const { return cluster_.alive_count(); }
  const core::ScanStats& stats(ProcessId i) const { return snapshot_.stats(i); }

 private:
  AbdCluster<Record> cluster_;
  Snapshot snapshot_;
};

}  // namespace asnap::abd
