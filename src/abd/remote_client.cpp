#include "abd/remote_client.hpp"

#include <algorithm>
#include <any>
#include <chrono>
#include <utility>

#include "common/backoff.hpp"
#include "trace/event.hpp"

namespace asnap::abd {

namespace {
using Clock = std::chrono::steady_clock;

/// EWMA weight for RTT smoothing, matching net::ReplicaHealth: new estimate
/// = 3/4 old + 1/4 sample.
constexpr int kRttAlphaShift = 2;
/// Floor for the adaptive retransmission timeout: below this, retransmits
/// race the kernel's own delivery on loopback.
constexpr std::chrono::microseconds kMinAdaptiveRto{500};
}  // namespace

RemoteRegisterClient::RemoteRegisterClient(std::vector<net::Endpoint> replicas,
                                           std::uint64_t client_id,
                                           AbdConfig config)
    : client_id_(client_id),
      config_(config),
      bus_(std::move(replicas), /*seed=*/client_id * 0x9E3779B97F4A7C15ull + 1),
      max_epoch_(bus_.size(), 0) {
  rtt_us_.reserve(bus_.size());
  for (std::size_t i = 0; i < bus_.size(); ++i) {
    rtt_us_.push_back(std::make_unique<std::atomic<std::uint64_t>>(0));
  }
}

void RemoteRegisterClient::record_rtt(std::size_t replica,
                                      std::chrono::microseconds sample) {
  const auto s = static_cast<std::uint64_t>(
      std::max<std::int64_t>(1, sample.count()));
  auto& cell = *rtt_us_[replica];
  const std::uint64_t old = cell.load(std::memory_order_relaxed);
  const std::uint64_t next =
      old == 0 ? s : old - (old >> kRttAlphaShift) + (s >> kRttAlphaShift);
  cell.store(next, std::memory_order_relaxed);
}

std::chrono::microseconds RemoteRegisterClient::rtt_estimate(
    std::size_t replica) const {
  if (replica >= rtt_us_.size()) return std::chrono::microseconds{0};
  return std::chrono::microseconds(
      rtt_us_[replica]->load(std::memory_order_relaxed));
}

std::chrono::microseconds RemoteRegisterClient::adaptive_rto() const {
  std::uint64_t worst = 0;
  for (const auto& cell : rtt_us_) {
    worst = std::max(worst, cell->load(std::memory_order_relaxed));
  }
  if (worst == 0) return config_.initial_rto;
  // A retransmission before ~4x the smoothed RTT mostly duplicates traffic
  // that is still in flight; past it, the original was probably lost.
  auto rto = std::chrono::microseconds(worst * 4);
  rto = std::max(rto, kMinAdaptiveRto);
  rto = std::min(rto, std::chrono::duration_cast<std::chrono::microseconds>(
                          config_.max_rto));
  return rto;
}

OpStatus RemoteRegisterClient::run_round(net::wire::Frame request,
                                         std::uint8_t expect_type,
                                         std::size_t needed,
                                         ReadResult* collect,
                                         QueryEvidence* ev) {
  const std::size_t n = bus_.size();
  if (needed == 0) return OpStatus::kOk;
  request.version = net::wire::kWireVersion;
  request.from = client_id_;

  const auto pid = static_cast<std::uint32_t>(client_id_);
  {
    std::lock_guard<std::mutex> s(stats_mu_);
    ++stats_.protocol_rounds;
  }
  ASNAP_TRACE_EVENT(trace::EventKind::kAbdRoundBegin, pid, request.rid,
                    needed);

  std::vector<char> seen(n, 0);
  // Karn's rule: once a replica's request has been retransmitted, a reply
  // is ambiguous — it may answer ANY copy — so it is never used as an RTT
  // sample. Only replicas that answer their first (and only) transmit feed
  // the EWMA; otherwise lossy links would be measured against the latest
  // wave, yielding spuriously small samples that shrink the RTO and cause
  // ever more premature retransmits.
  std::vector<char> retransmitted(n, 0);
  std::vector<Clock::time_point> last_tx(n);
  std::size_t count = 0;
  bool adopted = false;
  const auto initial_rto = adaptive_rto();
  RetryBackoff backoff(initial_rto, std::max(initial_rto, config_.max_rto));
  const auto deadline = Clock::now() + config_.op_deadline;

  const auto transmit_wave = [&](bool is_retransmit) {
    for (std::size_t i = 0; i < n; ++i) {
      if (!seen[i]) {
        bus_.send(i, request, deadline);
        last_tx[i] = Clock::now();
        if (is_retransmit) retransmitted[i] = 1;
      }
    }
  };
  transmit_wave(/*is_retransmit=*/false);
  auto next_retransmit = Clock::now() + backoff.current();

  while (count < needed) {
    const auto now = Clock::now();
    if (now >= deadline) {
      ASNAP_TRACE_EVENT(trace::EventKind::kAbdRoundTimeout, pid, request.rid);
      std::lock_guard<std::mutex> s(stats_mu_);
      ++stats_.round_timeouts;
      return OpStatus::kTimeout;
    }
    if (now >= next_retransmit) {
      backoff.grow();
      transmit_wave(/*is_retransmit=*/true);
      next_retransmit = now + backoff.current();
      ASNAP_TRACE_EVENT(trace::EventKind::kAbdRetransmit, pid, request.rid);
      std::lock_guard<std::mutex> s(stats_mu_);
      ++stats_.retransmit_waves;
      continue;
    }
    auto msg = bus_.inbox().receive_until(std::min(deadline, next_retransmit));
    if (!msg.has_value()) {
      if (bus_.inbox().closed()) return OpStatus::kClosed;
      continue;  // timeout slice: loop re-checks deadline / retransmit
    }
    if (msg->rid != request.rid) continue;  // reply to an older round
    const auto* frame = std::any_cast<net::wire::Frame>(&msg->payload);
    if (frame == nullptr) continue;
    const std::size_t from = static_cast<std::size_t>(msg->from);
    if (from >= n) continue;
    // Incarnation filter: a reply stamped by an epoch older than the
    // highest this client has seen from that replica was produced by a
    // pre-crash incarnation — its state may predate acked writes.
    if (frame->epoch < max_epoch_[from]) {
      std::lock_guard<std::mutex> s(stats_mu_);
      ++stats_.stale_epoch_replies;
      continue;
    }
    max_epoch_[from] = std::max(max_epoch_[from], frame->epoch);
    if (frame->type != expect_type) continue;
    if (seen[from]) {
      std::lock_guard<std::mutex> s(stats_mu_);
      ++stats_.dup_replies;
      continue;
    }
    seen[from] = 1;
    ++count;
    if (!retransmitted[from]) {
      record_rtt(from, std::chrono::duration_cast<std::chrono::microseconds>(
                           Clock::now() - last_tx[from]));
    }
    if (collect != nullptr) {
      const bool confirmed =
          (frame->flags & net::wire::kFlagTsConfirmed) != 0;
      if (!adopted || frame->ts > collect->ts) {
        collect->ts = frame->ts;
        collect->value = frame->value;
        adopted = true;
        if (ev != nullptr) {
          ev->agree = 1;
          ev->best_confirmed = confirmed;
        }
      } else if (frame->ts == collect->ts && ev != nullptr) {
        ++ev->agree;
        ev->best_confirmed = ev->best_confirmed || confirmed;
      }
      if (ev != nullptr) ++ev->accepted;
    }
  }
  ASNAP_TRACE_EVENT(trace::EventKind::kAbdQuorumReached, pid, request.rid,
                    count);
  return OpStatus::kOk;
}

OpStatus RemoteRegisterClient::try_write(std::uint64_t reg, std::uint64_t ts,
                                         const net::wire::Bytes& value) {
  std::lock_guard<std::mutex> lock(op_mu_);
  net::wire::Frame req;
  req.type = net::wire::kWriteReq;
  req.rid = next_rid_++;
  req.reg = reg;
  req.ts = ts;
  req.value = value;
  const OpStatus status =
      run_round(std::move(req), net::wire::kWriteAck, majority(), nullptr);
  // The "half round": tell every replica ts is majority-acked so future
  // fast reads of it can skip their write-back.
  if (status == OpStatus::kOk) broadcast_confirm(reg, ts);
  return status;
}

void RemoteRegisterClient::broadcast_confirm(std::uint64_t reg,
                                             std::uint64_t ts) {
  if (ts == 0) return;
  net::wire::Frame confirm;
  confirm.version = net::wire::kWireVersion;
  confirm.type = net::wire::kConfirm;
  confirm.from = client_id_;
  confirm.rid = next_rid_++;
  confirm.reg = reg;
  confirm.ts = ts;
  // Best effort, no retransmission, no ack wait: bound the send so a wedged
  // connection cannot stall the client past one RTO-scale budget.
  const auto deadline = Clock::now() + config_.max_rto;
  for (std::size_t i = 0; i < bus_.size(); ++i) {
    bus_.send(i, confirm, deadline);
  }
}

std::optional<RemoteRegisterClient::ReadResult>
RemoteRegisterClient::try_read(std::uint64_t reg) {
  std::lock_guard<std::mutex> lock(op_mu_);
  ReadResult best;
  QueryEvidence ev;
  {
    net::wire::Frame req;
    req.type = net::wire::kReadReq;
    req.rid = next_rid_++;
    req.reg = reg;
    if (run_round(std::move(req), net::wire::kReadReply, majority(), &best,
                  &ev) != OpStatus::kOk) {
      return std::nullopt;
    }
  }
  if (config_.fast_reads || config_.unsafe_always_fast_read) {
    // One-round fast path: the adopted pair is provably stable at a
    // majority — the whole quorum reported it, or some quorum member knew
    // it majority-acked (kFlagTsConfirmed) — so the write-back is
    // redundant.
    const bool stable = ev.agree == ev.accepted || ev.best_confirmed;
    if (stable || config_.unsafe_always_fast_read) {
      ASNAP_TRACE_EVENT(trace::EventKind::kAbdFastRead,
                        static_cast<std::uint32_t>(client_id_), reg, best.ts);
      std::lock_guard<std::mutex> s(stats_mu_);
      ++stats_.fast_reads;
      return best;
    }
    ASNAP_TRACE_EVENT(trace::EventKind::kAbdFastFallback,
                      static_cast<std::uint32_t>(client_id_), reg,
                      ev.agree < ev.accepted ? trace::kFastFallbackDisagree
                                             : trace::kFastFallbackGap);
    std::lock_guard<std::mutex> s(stats_mu_);
    ++stats_.fast_fallbacks;
  }
  // Write-back round: re-install the adopted pair on a majority before
  // returning, so no later read can observe an older value (atomicity).
  net::wire::Frame wb;
  wb.type = net::wire::kWriteReq;
  wb.rid = next_rid_++;
  wb.reg = reg;
  wb.ts = best.ts;
  wb.value = best.value;
  if (run_round(std::move(wb), net::wire::kWriteAck, majority(), nullptr) !=
      OpStatus::kOk) {
    return std::nullopt;
  }
  broadcast_confirm(reg, best.ts);
  return best;
}

std::optional<RemoteRegisterClient::ReadResult>
RemoteRegisterClient::try_query(std::uint64_t reg) {
  std::lock_guard<std::mutex> lock(op_mu_);
  ReadResult best;
  net::wire::Frame req;
  req.type = net::wire::kReadReq;
  req.rid = next_rid_++;
  req.reg = reg;
  if (run_round(std::move(req), net::wire::kReadReply, majority(), &best) !=
      OpStatus::kOk) {
    return std::nullopt;
  }
  return best;
}

RemoteRegisterClient::Stats RemoteRegisterClient::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

}  // namespace asnap::abd
