#include "abd/wal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <vector>

namespace asnap::abd {

namespace {

constexpr std::uint32_t kWalMagic = 0x314C4157;  // "WAL1" little-endian
constexpr std::uint16_t kRecWrite = 1;
constexpr std::uint16_t kRecEpoch = 2;
constexpr std::size_t kRecHeader = 4 + 2 + 2 + 8 + 8 + 4;  // before value
constexpr std::size_t kRecTrailer = 4;                     // crc32

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] |
                                    (static_cast<std::uint16_t>(p[1]) << 8));
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::vector<std::uint8_t> encode_record(std::uint16_t type, std::uint64_t reg,
                                        std::uint64_t ts,
                                        const net::wire::Bytes& value) {
  std::vector<std::uint8_t> rec;
  rec.reserve(kRecHeader + value.size() + kRecTrailer);
  put_u32(rec, kWalMagic);
  put_u16(rec, type);
  put_u16(rec, 0);  // reserved
  put_u64(rec, reg);
  put_u64(rec, ts);
  put_u32(rec, static_cast<std::uint32_t>(value.size()));
  rec.insert(rec.end(), value.begin(), value.end());
  const std::uint32_t crc = net::wire::crc32(rec.data(), rec.size());
  put_u32(rec, crc);
  return rec;
}

bool write_all(int fd, const std::uint8_t* data, std::size_t len) {
  std::size_t done = 0;
  while (done < len) {
    const ssize_t n = ::write(fd, data + done, len - done);
    if (n > 0) {
      done += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

/// Replay `buf` into *state; returns the byte offset just past the last
/// intact record (everything after it is a torn/corrupt tail).
std::uint64_t replay(const std::vector<std::uint8_t>& buf, WalState* state) {
  std::size_t off = 0;
  while (buf.size() - off >= kRecHeader + kRecTrailer) {
    const std::uint8_t* p = buf.data() + off;
    if (get_u32(p) != kWalMagic) break;
    const std::uint16_t type = get_u16(p + 4);
    const std::uint64_t reg = get_u64(p + 8);
    const std::uint64_t ts = get_u64(p + 16);
    const std::uint32_t vlen = get_u32(p + 24);
    const std::size_t total = kRecHeader + vlen + kRecTrailer;
    if (vlen > net::wire::kMaxBody || buf.size() - off < total) break;
    const std::uint32_t want_crc = get_u32(p + kRecHeader + vlen);
    if (net::wire::crc32(p, kRecHeader + vlen) != want_crc) break;
    if (type == kRecEpoch) {
      state->epoch = std::max(state->epoch, reg);
    } else if (type == kRecWrite) {
      auto& slot = state->regs[reg];
      // Records are appended in accept order, but replay defensively keeps
      // the max timestamp (compaction + appends make order non-obvious).
      if (ts >= slot.first) {
        slot.first = ts;
        slot.second.assign(p + kRecHeader, p + kRecHeader + vlen);
      }
    }
    // Unknown record types still advance (forward compatibility) — the CRC
    // already proved the record intact.
    off += total;
  }
  return off;
}

}  // namespace

ReplicaWal::ReplicaWal(std::string path, int fd, bool fsync,
                       std::uint64_t bytes)
    : path_(std::move(path)), fsync_(fsync), fd_(fd), bytes_(bytes) {}

ReplicaWal::~ReplicaWal() {
  if (fd_ >= 0) ::close(fd_);
}

std::unique_ptr<ReplicaWal> ReplicaWal::open(const std::string& path,
                                             WalState* state, bool fsync,
                                             std::string* error) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    if (error != nullptr) {
      *error = "open " + path + ": " + std::strerror(errno);
    }
    return nullptr;
  }
  std::vector<std::uint8_t> buf;
  {
    std::uint8_t chunk[1 << 16];
    for (;;) {
      const ssize_t n = ::read(fd, chunk, sizeof(chunk));
      if (n > 0) {
        buf.insert(buf.end(), chunk, chunk + n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0) {
        if (error != nullptr) {
          *error = "read " + path + ": " + std::strerror(errno);
        }
        ::close(fd);
        return nullptr;
      }
      break;
    }
  }
  const std::uint64_t good = replay(buf, state);
  if (good < buf.size()) {
    // Torn tail from a crash mid-append: the partial record was never
    // acked, drop it so the next append starts at a record boundary.
    if (::ftruncate(fd, static_cast<off_t>(good)) != 0) {
      if (error != nullptr) {
        *error = "ftruncate " + path + ": " + std::strerror(errno);
      }
      ::close(fd);
      return nullptr;
    }
  }
  if (::lseek(fd, static_cast<off_t>(good), SEEK_SET) < 0) {
    if (error != nullptr) {
      *error = "lseek " + path + ": " + std::strerror(errno);
    }
    ::close(fd);
    return nullptr;
  }
  return std::unique_ptr<ReplicaWal>(
      new ReplicaWal(path, fd, fsync, good));
}

const char* wal_error_name(WalError error) {
  switch (error) {
    case WalError::kNone: return "none";
    case WalError::kNoSpace: return "no_space";
    case WalError::kIo: return "io";
  }
  return "unknown";
}

/// Classify errno, remember it, and roll the file back to the last record
/// boundary: a failed append may have written a partial record (short
/// write before ENOSPC), and leaving it would make the NEXT successful
/// append land after garbage — replay would then truncate acked records.
bool ReplicaWal::fail_append_locked(int error_no) {
  last_error_ = (error_no == ENOSPC || error_no == EDQUOT)
                    ? WalError::kNoSpace
                    : WalError::kIo;
  if (fd_ >= 0 && ::ftruncate(fd_, static_cast<off_t>(bytes_)) == 0) {
    ::lseek(fd_, static_cast<off_t>(bytes_), SEEK_SET);
  }
  return false;
}

bool ReplicaWal::append_record(std::uint16_t type, std::uint64_t reg,
                               std::uint64_t ts,
                               const net::wire::Bytes& value) {
  const auto rec = encode_record(type, reg, ts, value);
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return fail_append_locked(EBADF);
  if (inject_count_ > 0) {
    --inject_count_;
    const std::size_t partial = std::min(inject_partial_, rec.size());
    if (partial > 0) write_all(fd_, rec.data(), partial);
    return fail_append_locked(inject_errno_);
  }
  if (!write_all(fd_, rec.data(), rec.size())) {
    return fail_append_locked(errno);
  }
  if (fsync_ && ::fsync(fd_) != 0) return fail_append_locked(errno);
  bytes_ += rec.size();
  last_error_ = WalError::kNone;
  return true;
}

WalError ReplicaWal::last_error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_error_;
}

void ReplicaWal::inject_append_failure(int error_no, int count,
                                       std::size_t partial_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  inject_errno_ = error_no;
  inject_count_ = count;
  inject_partial_ = partial_bytes;
}

bool ReplicaWal::append_write(std::uint64_t reg, std::uint64_t ts,
                              const net::wire::Bytes& value) {
  return append_record(kRecWrite, reg, ts, value);
}

bool ReplicaWal::append_epoch(std::uint64_t epoch) {
  return append_record(kRecEpoch, epoch, 0, {});
}

bool ReplicaWal::compact(const WalState& state) {
  const std::string tmp = path_ + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  std::vector<std::uint8_t> img;
  {
    const auto rec = encode_record(kRecEpoch, state.epoch, 0, {});
    img.insert(img.end(), rec.begin(), rec.end());
  }
  for (const auto& [reg, pair] : state.regs) {
    const auto rec = encode_record(kRecWrite, reg, pair.first, pair.second);
    img.insert(img.end(), rec.begin(), rec.end());
  }
  if (!write_all(fd, img.data(), img.size()) ||
      (fsync_ && ::fsync(fd) != 0)) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  ::close(fd);

  std::lock_guard<std::mutex> lock(mu_);
  if (::rename(tmp.c_str(), path_.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  // Re-open so subsequent appends extend the compacted image.
  const int nfd = ::open(path_.c_str(), O_RDWR | O_APPEND, 0644);
  if (nfd < 0) return false;
  if (fd_ >= 0) ::close(fd_);
  fd_ = nfd;
  bytes_ = img.size();
  // Persist the rename itself: fsync the containing directory.
  if (fsync_) {
    const std::size_t slash = path_.rfind('/');
    const std::string dir = slash == std::string::npos
                                ? std::string(".")
                                : path_.substr(0, slash);
    const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dfd >= 0) {
      ::fsync(dfd);
      ::close(dfd);
    }
  }
  return true;
}

std::uint64_t ReplicaWal::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

}  // namespace asnap::abd
