// ABD quorum client for a real socket cluster of tools/abd_replicad daemons.
//
// Mirrors the client machinery of abd_register.hpp over net::TcpBus instead
// of net::SimNetwork — the same algorithm, the same failure discipline:
//   write(reg, ts, v): broadcast WRITE(ts, v), wait for a majority of
//     distinct acks. The CALLER owns the timestamp and must keep it
//     monotone per register (the single-writer regime of the paper); this
//     also makes a timed-out write idempotently retryable with the same
//     (ts, v) — replicas ignore stale timestamps and re-ack.
//   read(reg): query round (majority of READ replies, adopt the max
//     timestamp), then a write-back round of the adopted pair — the
//     write-back upgrades regularity to atomicity exactly as in [ABD].
//     With AbdConfig::fast_reads (default), the write-back is SKIPPED when
//     the query quorum proves stability — unanimous ts agreement, or a
//     reply whose wire kFlagTsConfirmed bit shows the adopted ts is already
//     majority-acked; writers and slow-path readers broadcast
//     fire-and-forget kConfirm frames to make that the common case. Same
//     rule, same safety argument as AbdCluster (DESIGN.md §15).
//
// Loss/crash handling is the retransmission loop of AbdCluster::run_round:
// rebroadcast with the SAME rid on a RetryBackoff schedule, deduplicate
// replies by responder id, and give up with OpStatus::kTimeout at
// AbdConfig::op_deadline. Incarnation epochs ride in every reply frame: the
// client tracks the highest epoch seen per replica and discards replies
// stamped by an earlier incarnation (a SIGSTOPped pre-crash replica
// resumed after its successor restarted cannot confuse a round).
//
// Under a degraded network (net/chaos_proxy) two refinements matter:
//   * the per-operation deadline is threaded into every bus send, so a
//     half-open connection whose kernel buffer filled cannot wedge an
//     operation past its deadline;
//   * the retransmission floor adapts to measured per-replica RTT (EWMA,
//     same alpha-1/4 scheme as ReplicaHealth): on a 25 ms-delay link the
//     first retransmit waits ~4x the observed RTT instead of firing a
//     futile wave every initial_rto, and on a fast loopback it drops below
//     the configured floor for snappier loss recovery.
//
// One operation at a time per client (op_mu_): concurrent load comes from
// many clients, matching one-mailbox-per-client SimNetwork usage.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "abd/abd_register.hpp"
#include "net/tcp_bus.hpp"

namespace asnap::abd {

class RemoteRegisterClient {
 public:
  struct ReadResult {
    std::uint64_t ts = 0;
    net::wire::Bytes value;  ///< empty with ts == 0: never written
  };

  struct Stats {
    /// Protocol rounds started (query / write / write-back); retransmission
    /// waves within a round are counted separately below.
    std::uint64_t protocol_rounds = 0;
    std::uint64_t fast_reads = 0;       ///< reads that skipped write-back
    std::uint64_t fast_fallbacks = 0;   ///< reads that fell back to slow path
    std::uint64_t retransmit_waves = 0;
    std::uint64_t dup_replies = 0;
    std::uint64_t stale_epoch_replies = 0;
    std::uint64_t round_timeouts = 0;
  };

  RemoteRegisterClient(std::vector<net::Endpoint> replicas,
                       std::uint64_t client_id, AbdConfig config = {});

  std::size_t replicas() const { return bus_.size(); }
  std::size_t majority() const { return bus_.size() / 2 + 1; }

  /// Majority write. ts must be monotone per register from this writer;
  /// retrying a timed-out write with the same (ts, value) is sound.
  OpStatus try_write(std::uint64_t reg, std::uint64_t ts,
                     const net::wire::Bytes& value);

  /// Atomic read: query round + write-back round. nullopt on timeout.
  std::optional<ReadResult> try_read(std::uint64_t reg);

  /// Query round only — NO write-back, so not atomic on its own. Used by a
  /// recovering replica's resync (which installs the result locally rather
  /// than serving it to an application).
  std::optional<ReadResult> try_query(std::uint64_t reg);

  Stats stats() const;
  std::uint64_t reconnects() const { return bus_.reconnects(); }

  /// Smoothed round-trip estimate for one replica, 0 before any sample.
  std::chrono::microseconds rtt_estimate(std::size_t replica) const;

  /// The retransmission floor the next round will start from: 4x the worst
  /// smoothed per-replica RTT, clamped to [500us, max_rto]; the configured
  /// initial_rto until a first sample exists. Exposed for tests/reports.
  std::chrono::microseconds adaptive_rto() const;

 private:
  /// Stability evidence a query round gathers for the fast-read decision.
  struct QueryEvidence {
    std::size_t accepted = 0;   ///< replies counted toward the quorum
    std::size_t agree = 0;      ///< of those, replies at the final best ts
    bool best_confirmed = false;  ///< some best-ts reply had kFlagTsConfirmed
  };

  OpStatus run_round(net::wire::Frame request, std::uint8_t expect_type,
                     std::size_t needed, ReadResult* collect,
                     QueryEvidence* ev = nullptr);
  /// Fire-and-forget kConfirm broadcast after a majority-acked write or
  /// write-back; a lost confirm only costs future fast-read hits.
  void broadcast_confirm(std::uint64_t reg, std::uint64_t ts);
  void record_rtt(std::size_t replica, std::chrono::microseconds sample);

  const std::uint64_t client_id_;
  const AbdConfig config_;
  net::TcpBus bus_;
  std::mutex op_mu_;
  std::uint64_t next_rid_ = 1;
  std::vector<std::uint64_t> max_epoch_;  ///< highest epoch seen per replica
  /// Smoothed RTT per replica in microseconds, 0 = no sample yet. Atomic so
  /// rtt_estimate()/adaptive_rto() never contend with a round in flight.
  std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> rtt_us_;
  mutable std::mutex stats_mu_;
  Stats stats_;
};

}  // namespace asnap::abd
