// Cluster supervisor: detects crashed-but-restartable nodes and drives
// AbdCluster::recover() until they rejoin.
//
// The recovery protocol itself (reopen endpoints, resync replicas from a
// majority quorum, bump the incarnation epoch) lives in abd_register.hpp;
// what was missing is an actor that INVOKES it — before this, tests had to
// call recover() by hand at scripted moments. The supervisor closes the
// loop: it polls the network's fail-stop flags (the simulation's stand-in
// for a process manager noticing a dead process), waits out a configurable
// restart delay (reboot time), then calls recover() with exponential
// backoff between failed attempts (a resync can fail while no majority is
// reachable — e.g. during a partition — and must be retried, not abandoned).
//
// Safety of racing everyone else: recover() is idempotent and internally
// serialized per node (the double-recover no-op), so a chaos schedule or a
// test calling recover() concurrently with the supervisor is harmless.
// One supervisor thread handles all nodes; recoveries are therefore
// serialized, which bounds resync quorum pressure on a struggling cluster.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "abd/abd_register.hpp"
#include "common/backoff.hpp"

namespace asnap::abd {

struct SupervisorConfig {
  /// How often the supervisor scans for crashed nodes.
  std::chrono::microseconds poll_interval{500};
  /// Simulated reboot time: minimum downtime before the first recover()
  /// attempt. Gives chaos runs a real outage window instead of instant
  /// resurrection.
  std::chrono::microseconds restart_delay{2'000};
  /// Backoff between failed recover() attempts (no majority reachable).
  std::chrono::microseconds initial_backoff{1'000};
  std::chrono::microseconds max_backoff{32'000};
};

template <typename V>
class AbdSupervisor {
 public:
  explicit AbdSupervisor(AbdCluster<V>& cluster, SupervisorConfig cfg = {})
      : cluster_(cluster),
        cfg_(cfg),
        thread_([this](std::stop_token st) { run(st); }) {}

  ~AbdSupervisor() { thread_.request_stop(); }  // jthread joins

  AbdSupervisor(const AbdSupervisor&) = delete;
  AbdSupervisor& operator=(const AbdSupervisor&) = delete;

  /// Completed recoveries (recover() returned true for a node this
  /// supervisor observed down).
  std::uint64_t recoveries() const {
    return recoveries_.load(std::memory_order_relaxed);
  }
  /// recover() attempts that failed and were rescheduled with backoff.
  std::uint64_t failed_attempts() const {
    return failed_attempts_.load(std::memory_order_relaxed);
  }

  /// Durations from "crash first observed" to "recover() returned true",
  /// one entry per completed recovery. Includes the restart delay.
  std::vector<std::chrono::nanoseconds> recovery_latencies() const {
    std::lock_guard lock(latency_mu_);
    return latencies_;
  }

 private:
  using Clock = std::chrono::steady_clock;

  /// Book-keeping for one node currently observed down.
  struct Outage {
    Clock::time_point detected;
    Clock::time_point next_attempt;
    RetryBackoff backoff;
  };

  void run(std::stop_token st) {
    const std::size_t n = cluster_.nodes();
    std::vector<std::optional<Outage>> down(n);
    while (!st.stop_requested()) {
      std::this_thread::sleep_for(cfg_.poll_interval);
      for (net::NodeId node = 0; node < n; ++node) {
        if (st.stop_requested()) return;
        if (!cluster_.network().crashed(node)) {
          // Live — either it was never down, someone else recovered it, or
          // our own recover() below just succeeded.
          down[node].reset();
          continue;
        }
        const auto now = Clock::now();
        if (!down[node]) {
          down[node] = Outage{
              now, now + cfg_.restart_delay,
              RetryBackoff(cfg_.initial_backoff, cfg_.max_backoff)};
          continue;
        }
        if (now < down[node]->next_attempt) continue;
        if (cluster_.recover(node)) {
          recoveries_.fetch_add(1, std::memory_order_relaxed);
          const auto latency = Clock::now() - down[node]->detected;
          {
            std::lock_guard lock(latency_mu_);
            latencies_.push_back(latency);
          }
          down[node].reset();
        } else {
          failed_attempts_.fetch_add(1, std::memory_order_relaxed);
          down[node]->backoff.grow();
          down[node]->next_attempt = Clock::now() +
                                     down[node]->backoff.current();
        }
      }
    }
  }

  AbdCluster<V>& cluster_;
  SupervisorConfig cfg_;
  std::atomic<std::uint64_t> recoveries_{0};
  std::atomic<std::uint64_t> failed_attempts_{0};
  mutable std::mutex latency_mu_;
  std::vector<std::chrono::nanoseconds> latencies_;
  std::jthread thread_;  ///< last member: joins before state is destroyed
};

}  // namespace asnap::abd
