// Slot-lease manager: leases the paper's n single-writer identities to an
// unbounded, churning client population.
//
// The paper's algorithms assume a fixed set of n processes; the service
// layer serves M >> n clients by treating the n process identities as
// *slots* and granting each to at most one client at a time under an
// epoch-stamped lease:
//
//   * every grant of a slot bumps the slot's epoch, and before the grant
//     becomes visible the manager runs the caller-supplied `seal` hook with
//     (slot, old_epoch, new_epoch) — the service uses it to flush the slot's
//     orphaned batch and install the new epoch under the slot's execution
//     lock, so a stale leaseholder is rejected from the first post-grant
//     operation onward (DESIGN.md §10 gives the full safety argument);
//   * leases carry a TTL and are renewed by use (renew() is a lock-free
//     fast path); an idle client's expired lease is reclaimed ("stolen")
//     when another client is waiting — idle reclamation;
//   * waiting clients are served strictly FIFO, so when M > n no client
//     starves: it waits for at most (queue position) grant turnovers;
//   * the wait queue is bounded — beyond max_waiters, acquire() refuses
//     immediately with kQueueFull instead of queueing unbounded latency.
//
// There is no background reaper thread: expiry is detected lazily by
// waiting acquirers (the head waiter re-examines deadlines whenever it
// wakes, and sleeps no longer than the earliest expiry). With the default
// steady-clock time source this is fully self-driving; tests may inject a
// manual clock via LeaseConfig::now_ns, in which case blocking acquires
// poll (capped at a few ms of real time) so an externally advanced clock
// is always noticed.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <vector>

#include "common/config.hpp"

namespace asnap::svc {

/// Client identity in the service layer. Unlike ProcessId this is unbounded:
/// any number of clients may exist over the life of the service.
using ClientId = std::uint64_t;

inline constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

/// A granted (slot, epoch) pair. The epoch is what makes a leaked copy
/// harmless: once the slot is re-granted, every use of the old lease is
/// rejected by the epoch check.
struct Lease {
  std::size_t slot = kNoSlot;
  std::uint64_t epoch = 0;
  ClientId client = 0;
};

struct LeaseStats {
  std::uint64_t grants = 0;   ///< all grants (fresh + steals)
  std::uint64_t steals = 0;   ///< grants that reclaimed an expired lease
  std::uint64_t releases = 0;
  std::uint64_t renewals = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t queue_rejections = 0;
};

struct LeaseConfig {
  /// Lease lifetime. A lease untouched for ttl becomes eligible for
  /// reclamation; any successful renew() restarts the clock.
  std::chrono::nanoseconds ttl = std::chrono::milliseconds(100);
  /// Bound on concurrently waiting acquirers (admission control).
  std::size_t max_waiters = 1024;
  /// Time source in nanoseconds. Defaults to steady_clock; tests inject a
  /// manual clock for deterministic expiry.
  std::function<std::uint64_t()> now_ns;
  /// Invoked for every grant, BEFORE the new lease becomes visible, with
  /// the retiring and the new epoch. The service flushes the slot's pending
  /// batch and installs new_epoch here; see the header comment.
  std::function<void(std::size_t slot, std::uint64_t old_epoch,
                     std::uint64_t new_epoch)>
      seal;
};

enum class AcquireStatus : std::uint8_t { kGranted, kQueueFull, kTimeout };

struct AcquireResult {
  AcquireStatus status = AcquireStatus::kTimeout;
  Lease lease;
};

class SlotLeaseManager {
 public:
  explicit SlotLeaseManager(std::size_t slots, LeaseConfig cfg = {});

  /// Acquire any slot, waiting up to `timeout` behind earlier waiters
  /// (FIFO). timeout zero means a single non-blocking attempt.
  AcquireResult acquire(ClientId client, std::chrono::nanoseconds timeout);

  /// Voluntarily give the slot back. Returns false if the lease was already
  /// stale (reclaimed). Does not bump the epoch — the next grant does.
  bool release(const Lease& lease);

  /// Extend the lease's deadline by ttl from now. Lock-free fast path so
  /// the service can renew on every operation. False if the lease is stale.
  bool renew(const Lease& lease);

  /// True while the lease's epoch is still the slot's current epoch.
  bool valid(const Lease& lease) const;

  /// Current epoch of a slot (the manager's view; the service keeps its own
  /// copy installed by the seal hook).
  std::uint64_t epoch(std::size_t slot) const;

  std::size_t slots() const { return slots_.size(); }

  /// Current wait-queue depth (diagnostic).
  std::size_t waiters() const;

  LeaseStats stats() const;

 private:
  struct Slot {
    bool held = false;               // guarded by mu_
    ClientId holder = 0;             // guarded by mu_
    std::atomic<std::uint64_t> epoch{0};
    std::atomic<std::uint64_t> deadline_ns{0};
  };

  std::uint64_t now() const { return cfg_.now_ns(); }

  /// Grant a free or expired slot to `client`, running the seal hook.
  /// Called with mu_ held; returns nullopt when every slot is held and
  /// unexpired.
  std::optional<Lease> try_grant_locked(ClientId client, std::uint64_t now_v);

  /// Earliest deadline among held slots, if any. Called with mu_ held.
  std::optional<std::uint64_t> earliest_deadline_locked() const;

  LeaseConfig cfg_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Slot> slots_;
  std::deque<std::uint64_t> fifo_;  ///< waiting acquirers' tickets, FIFO
  std::uint64_t next_ticket_ = 0;
  LeaseStats stats_;                         // guarded by mu_ (except below)
  std::atomic<std::uint64_t> renewals_{0};   // renew() doesn't take mu_
};

}  // namespace asnap::svc
