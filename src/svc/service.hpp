// Snapshot service front-end: M >> n clients multiplexed onto any
// single-writer snapshot backend (A1/A2/A3 or the ABD-backed snapshot).
//
// The paper's objects serve a fixed set of n process identities; the
// service makes them serve an unbounded client population (the
// progress-vs-space tension of Imbs–Kuznetsov–Rieutord) while *preserving*
// the two properties the whole stack is built on:
//
//   1. per-slot single-writerness — word s is only ever written under
//      process id s, never by two clients concurrently;
//   2. snapshot linearizability of every served history.
//
// How (full argument in DESIGN.md §10):
//
//   * Slot leases (lease_manager.hpp) admit clients; every backend
//     operation under pid s additionally runs while holding slot s's
//     execution mutex and re-validates the lease epoch under that mutex.
//     The mutex makes two concurrent writers to one slot *impossible*
//     (defense in depth, independent of lease bugs); the epoch check makes
//     a stale leaseholder's operations fail typed (kLeaseExpired) instead
//     of interleaving with the new holder's. Re-grants are "sealed": the
//     manager flushes the slot's orphaned batch and installs the new epoch
//     under the slot mutex BEFORE the new lease is visible, so a reclaimed
//     client's buffered writes can never materialize later, out of order.
//
//   * Batching: submit_update() buffers into a per-slot batch and
//     acknowledges nothing; updates complete (and are reported via
//     flushed_through) only when their batch flushes. Within a batch the
//     service coalesces last-writer-wins — sound because unacknowledged
//     updates' intervals all remain open until the flush, so they
//     linearize consecutively at the flush point in program order. The
//     batch is O(1) space (count + last value): the queue is bounded by
//     construction, and a batch reaching max_batch flushes inline.
//
//   * Scan cache: read-mostly traffic is served from the last scan,
//     validated by a single generation check ("one cheap collect") —
//     mutations_ is bumped AFTER each backend write, so a cached
//     {gen, view} with gen == current provably contains every *completed*
//     update (the completed update's bump happens-before any later
//     reader's check). Cache fills are single-flight and install
//     monotonically, which rules out new-old inversions between fresh and
//     cached scans. Any flush invalidates the cache by advancing the
//     generation. Cache hits touch no slot and no backend register — this
//     is why read-mostly load scales past n concurrent identities.
//     Since PR 9 the cached {gen, view} lives behind an
//     mvcc::VersionGate (DESIGN.md §14) instead of a shared_mutex: a hit
//     acquires the published version with one wait-free fetch_add and a
//     fill *publishes* the next version with one pointer swap, so hits
//     never block behind a fill (the old unique_lock install) or behind
//     each other, and displaced views are reclaimed through the gate's
//     refcount + grace list. The generation argument above is unchanged —
//     only the container moved from lock-copy to versioned publication.
//
//   * Admission control: an optional gate on concurrently executing
//     operations sheds excess load with kOverloaded (traced as kSvcShed);
//     the lease wait queue is bounded by LeaseConfig::max_waiters.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/config.hpp"
#include "mvcc/version_gate.hpp"
#include "svc/errors.hpp"
#include "svc/lease_manager.hpp"
#include "trace/event.hpp"

namespace asnap::svc {

struct ServiceConfig {
  LeaseConfig lease;
  /// Pending (unacknowledged) submits per slot before a forced inline
  /// flush — bounds both queue memory and acknowledgement latency.
  std::size_t max_batch = 16;
  /// Serve scans from the generation-validated cache when possible.
  bool cache_scans = true;
  /// Operations allowed to execute concurrently; 0 disables the gate.
  /// Excess requests are shed with kOverloaded.
  std::size_t max_concurrent_ops = 0;
};

/// Monotonic counters, read at quiescence or as a fuzzy live snapshot.
struct ServiceStats {
  std::uint64_t connects = 0;
  std::uint64_t disconnects = 0;
  std::uint64_t submits = 0;          ///< accepted submit_update calls
  std::uint64_t flushes = 0;          ///< batches written to the backend
  std::uint64_t coalesced = 0;        ///< submits absorbed by a later one
  std::uint64_t scans = 0;            ///< scans served (hit or backend)
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t sheds = 0;            ///< requests refused by the gate
  std::uint64_t lease_expired_errors = 0;
};

/// Service front-end over a single-writer snapshot backend.
///
/// Backend contract (same shape as core::SingleWriterSnapshot):
///   std::size_t size();            // n — the number of slots
///   void update(ProcessId, T);     // word i := v, single writer per i
///   std::vector<T> scan(ProcessId) // atomic snapshot
///
/// All three paper algorithms satisfy it directly (A3 through
/// core::SingleWriterAdapter), as does abd::MessagePassingSnapshot.
template <typename Backend, typename T>
class SnapshotService {
 public:
  /// Per-client handle. NOT thread-safe: one session belongs to one client
  /// thread (mirrors the paper's one-op-per-process well-formedness).
  class ClientSession {
   public:
    ClientSession() = default;
    bool connected() const { return connected_; }
    std::size_t slot() const { return lease_.slot; }
    std::uint64_t epoch() const { return lease_.epoch; }
    ClientId client() const { return lease_.client; }

   private:
    friend class SnapshotService;
    Lease lease_;
    bool connected_ = false;
    std::size_t unacked_ = 0;  ///< this client's submits not yet flushed
  };

  struct ConnectResult {
    SvcError error = SvcError::kOk;
    ClientSession session;
  };

  /// Result of submit/flush/disconnect. `flushed_through` is the highest
  /// per-slot sequence number durable in the backend at return — clients
  /// treat every submit with seq <= flushed_through as completed. It is
  /// meaningful even on kLeaseExpired: the seal that retired the lease
  /// flushed the batch first, so the session's pending submits are covered.
  struct OpResult {
    SvcError error = SvcError::kOk;
    std::uint64_t seq = 0;  ///< submit only: sequence assigned to the value
    std::uint64_t flushed_through = 0;
  };

  struct ScanResult {
    SvcError error = SvcError::kOk;
    std::vector<T> view;
    bool cache_hit = false;
    std::uint64_t flushed_through = 0;  ///< set when own pending was flushed
  };

  SnapshotService(Backend& backend, ServiceConfig cfg = {})
      : backend_(&backend),
        cfg_(cfg),
        slots_(backend.size()),
        leases_(backend.size(), wire_lease_config(cfg.lease)) {
    ASNAP_ASSERT_MSG(cfg_.max_batch > 0, "max_batch must be >= 1");
  }

  SnapshotService(const SnapshotService&) = delete;
  SnapshotService& operator=(const SnapshotService&) = delete;

  std::size_t slots() const { return slots_.size(); }

  /// Lease a slot, waiting FIFO up to `timeout` behind earlier clients.
  ConnectResult connect(ClientId client, std::chrono::nanoseconds timeout) {
    const AcquireResult r = leases_.acquire(client, timeout);
    switch (r.status) {
      case AcquireStatus::kQueueFull:
        return {SvcError::kLeaseQueueFull, {}};
      case AcquireStatus::kTimeout:
        return {SvcError::kTimeout, {}};
      case AcquireStatus::kGranted:
        break;
    }
    counters_.connects.fetch_add(1, std::memory_order_relaxed);
    ConnectResult out;
    out.session.lease_ = r.lease;
    out.session.connected_ = true;
    return out;
  }

  /// Buffer one update into the session's slot batch. The value is built
  /// by make(slot, seq) once the per-slot sequence number is assigned (so
  /// uniquely-tagged histories stay gapless across lease handovers).
  template <typename MakeValue>
  OpResult submit_update(ClientSession& sess, MakeValue&& make) {
    if (!sess.connected_) return {SvcError::kNotConnected, 0, 0};
    Gate gate(*this, sess.lease_.slot, /*op=*/1);
    if (!gate.admitted()) return {SvcError::kOverloaded, 0, 0};

    Slot& s = slots_[sess.lease_.slot];
    std::lock_guard lk(s.mu);
    if (!epoch_current_locked(s, sess)) {
      return {SvcError::kLeaseExpired, 0, s.flushed_through};
    }
    const std::uint64_t seq = ++s.next_seq;
    if (s.pending_count == 0) {
      s.pending_value.emplace(
          make(static_cast<ProcessId>(sess.lease_.slot), seq));
    } else {  // last-writer-wins within the batch
      *s.pending_value = make(static_cast<ProcessId>(sess.lease_.slot), seq);
    }
    s.pending_last_seq = seq;
    ++s.pending_count;
    ++sess.unacked_;
    counters_.submits.fetch_add(1, std::memory_order_relaxed);
    if (s.pending_count >= cfg_.max_batch) {
      flush_locked(sess.lease_.slot, s);
      sess.unacked_ = 0;
    }
    leases_.renew(sess.lease_);
    return {SvcError::kOk, seq, s.flushed_through};
  }

  /// Flush the session's slot batch, completing every buffered submit.
  OpResult flush(ClientSession& sess) {
    if (!sess.connected_) return {SvcError::kNotConnected, 0, 0};
    Gate gate(*this, sess.lease_.slot, /*op=*/3);
    if (!gate.admitted()) return {SvcError::kOverloaded, 0, 0};

    Slot& s = slots_[sess.lease_.slot];
    std::lock_guard lk(s.mu);
    if (!epoch_current_locked(s, sess)) {
      return {SvcError::kLeaseExpired, 0, s.flushed_through};
    }
    flush_locked(sess.lease_.slot, s);
    sess.unacked_ = 0;
    leases_.renew(sess.lease_);
    return {SvcError::kOk, 0, s.flushed_through};
  }

  /// Atomic snapshot. Flushes the session's own pending batch first
  /// (read-your-writes), then serves from the scan cache when the
  /// generation check allows, else performs a backend scan under the
  /// session's slot identity.
  ScanResult scan(ClientSession& sess) {
    if (!sess.connected_) return {SvcError::kNotConnected, {}, false, 0};
    Gate gate(*this, sess.lease_.slot, /*op=*/2);
    if (!gate.admitted()) return {SvcError::kOverloaded, {}, false, 0};

    const std::size_t slot_idx = sess.lease_.slot;
    Slot& s = slots_[slot_idx];
    std::uint64_t ft = 0;
    if (sess.unacked_ != 0) {
      std::lock_guard lk(s.mu);
      if (!epoch_current_locked(s, sess)) {
        return {SvcError::kLeaseExpired, {}, false, s.flushed_through};
      }
      flush_locked(slot_idx, s);
      sess.unacked_ = 0;
      ft = s.flushed_through;
    }
    counters_.scans.fetch_add(1, std::memory_order_relaxed);

    if (cfg_.cache_scans) {
      if (auto view = cache_lookup(slot_idx)) {
        leases_.renew(sess.lease_);
        return {SvcError::kOk, std::move(*view), true, ft};
      }
      counters_.cache_misses.fetch_add(1, std::memory_order_relaxed);
      ASNAP_TRACE_EVENT(trace::EventKind::kScanCacheMiss,
                        static_cast<std::uint32_t>(slot_idx),
                        mutations_.load(std::memory_order_relaxed));
      // Single-flight fill: serialized fills install monotonically
      // increasing views, the property the hit path's safety rests on.
      std::lock_guard fill(fill_mu_);
      if (auto view = cache_lookup(slot_idx)) {  // refilled while waiting
        leases_.renew(sess.lease_);
        return {SvcError::kOk, std::move(*view), true, ft};
      }
      // Generation BEFORE the scan: if g_pre already includes an update's
      // bump, the bump's backend write happened-before our scan reads, so
      // the view below contains it — cached gen never overstates the view.
      const std::uint64_t g_pre = mutations_.load(std::memory_order_seq_cst);
      std::vector<T> view;
      {
        std::lock_guard lk(s.mu);
        if (!epoch_current_locked(s, sess)) {
          return {SvcError::kLeaseExpired, {}, false, s.flushed_through};
        }
        view = backend_->scan(static_cast<ProcessId>(slot_idx));
      }
      cache_install(g_pre, view);
      leases_.renew(sess.lease_);
      return {SvcError::kOk, std::move(view), false, ft};
    }

    // Cache disabled: direct backend scan under the slot identity.
    std::vector<T> view;
    {
      std::lock_guard lk(s.mu);
      if (!epoch_current_locked(s, sess)) {
        return {SvcError::kLeaseExpired, {}, false, s.flushed_through};
      }
      view = backend_->scan(static_cast<ProcessId>(slot_idx));
    }
    leases_.renew(sess.lease_);
    return {SvcError::kOk, std::move(view), false, ft};
  }

  /// Flush pending updates and give the lease back. flushed_through covers
  /// every submit this session made, even if the lease was reclaimed (the
  /// seal flushed on our behalf).
  OpResult disconnect(ClientSession& sess) {
    if (!sess.connected_) return {SvcError::kNotConnected, 0, 0};
    Slot& s = slots_[sess.lease_.slot];
    std::uint64_t ft = 0;
    {
      std::lock_guard lk(s.mu);
      if (epoch_current_locked(s, sess)) flush_locked(sess.lease_.slot, s);
      ft = s.flushed_through;
    }
    leases_.release(sess.lease_);
    counters_.disconnects.fetch_add(1, std::memory_order_relaxed);
    sess.connected_ = false;
    sess.unacked_ = 0;
    return {SvcError::kOk, 0, ft};
  }

  ServiceStats stats() const {
    ServiceStats out;
    out.connects = counters_.connects.load(std::memory_order_relaxed);
    out.disconnects = counters_.disconnects.load(std::memory_order_relaxed);
    out.submits = counters_.submits.load(std::memory_order_relaxed);
    out.flushes = counters_.flushes.load(std::memory_order_relaxed);
    out.coalesced = counters_.coalesced.load(std::memory_order_relaxed);
    out.scans = counters_.scans.load(std::memory_order_relaxed);
    out.cache_hits = counters_.cache_hits.load(std::memory_order_relaxed);
    out.cache_misses = counters_.cache_misses.load(std::memory_order_relaxed);
    out.sheds = counters_.sheds.load(std::memory_order_relaxed);
    out.lease_expired_errors =
        counters_.lease_expired_errors.load(std::memory_order_relaxed);
    return out;
  }

  SlotLeaseManager& lease_manager() { return leases_; }
  const Backend& backend() const { return *backend_; }

  /// Counters of the mvcc gate that publishes the scan cache: versions
  /// published/retired/reclaimed, reader-refcount high-water (tests, bench).
  mvcc::GateStats cache_gate_stats() const { return cache_gate_.stats(); }

  // --- Cross-shard composition hooks (src/shard/) --------------------------
  //
  // A sharded fabric runs S independent services and recovers a globally
  // consistent view by double-collecting the services' generation counters
  // around a round of per-shard scans (DESIGN.md §12). These hooks expose
  // exactly what that needs: the generation counter, a lease-free scan, and
  // a seal that quiesces the shard for the bounded-retry fallback.

  /// Backend mutation generation. Bumped (seq_cst) after every backend
  /// write; an unchanged generation across a window proves no update
  /// completed inside it. This is the fabric's per-shard "word".
  std::uint64_t generation() const {
    return mutations_.load(std::memory_order_seq_cst);
  }

  /// Lease-free scan for cross-shard composition: serves from the
  /// generation-validated cache when possible, else performs a backend scan
  /// under slot 0's execution mutex with the slot-0 scanner identity (safe:
  /// every backend op under pid 0 — client or fabric — serializes on that
  /// mutex, so the paper's one-op-per-process well-formedness holds).
  ScanResult shared_scan() {
    counters_.scans.fetch_add(1, std::memory_order_relaxed);
    if (cfg_.cache_scans) {
      if (auto view = cache_lookup(0)) {
        return {SvcError::kOk, std::move(*view), true, 0};
      }
      counters_.cache_misses.fetch_add(1, std::memory_order_relaxed);
      ASNAP_TRACE_EVENT(trace::EventKind::kScanCacheMiss, 0,
                        mutations_.load(std::memory_order_relaxed));
      std::lock_guard fill(fill_mu_);
      if (auto view = cache_lookup(0)) {  // refilled while waiting
        return {SvcError::kOk, std::move(*view), true, 0};
      }
      const std::uint64_t g_pre = mutations_.load(std::memory_order_seq_cst);
      std::vector<T> view;
      {
        std::lock_guard lk(slots_[0].mu);
        view = backend_->scan(0);
      }
      cache_install(g_pre, view);
      return {SvcError::kOk, std::move(view), false, 0};
    }
    std::vector<T> view;
    {
      std::lock_guard lk(slots_[0].mu);
      view = backend_->scan(0);
    }
    return {SvcError::kOk, std::move(view), false, 0};
  }

  /// RAII quiescence over this service: holds every slot's execution mutex,
  /// so no backend write (and no lease seal) can run while it exists. Slot
  /// mutexes are taken in index order and no other path ever holds two, so
  /// seals cannot deadlock against clients or against each other.
  class ScanSeal {
   public:
    ScanSeal(ScanSeal&&) noexcept = default;
    ScanSeal& operator=(ScanSeal&&) noexcept = default;

   private:
    friend class SnapshotService;
    ScanSeal() = default;
    std::vector<std::unique_lock<std::mutex>> locks_;
  };

  /// Quiesce the shard. Blocks until in-flight per-slot operations drain;
  /// writers block until the seal is destroyed. The bounded-retry global
  /// scan only reaches for this after generation confirmation keeps failing
  /// (a heavily write-contended fabric), so the stall is rare by design.
  ScanSeal seal_for_scan() {
    ScanSeal seal;
    seal.locks_.reserve(slots_.size());
    for (Slot& s : slots_) seal.locks_.emplace_back(s.mu);
    return seal;
  }

  /// Scan under an active seal: the backend is provably quiescent, so the
  /// result is the exact shard state for as long as the seal is held.
  std::vector<T> sealed_scan(const ScanSeal& seal) {
    ASNAP_ASSERT_MSG(seal.locks_.size() == slots_.size(),
                     "sealed_scan requires this service's own seal");
    return backend_->scan(0);
  }

 private:
  struct alignas(kCacheLine) Slot {
    std::mutex mu;  ///< serializes EVERY backend op under this slot's pid
    std::atomic<std::uint64_t> epoch{0};  ///< installed by seal, read under mu
    // All below guarded by mu.
    std::uint64_t next_seq = 0;         ///< per-slot value sequence
    std::uint64_t flushed_through = 0;  ///< highest seq durable in backend
    std::size_t pending_count = 0;      ///< submits in the open batch
    std::uint64_t pending_last_seq = 0;
    std::optional<T> pending_value;     ///< last-writer-wins survivor
  };

  /// RAII admission gate (max_concurrent_ops). op: 1 update, 2 scan,
  /// 3 flush — carried in the kSvcShed trace payload.
  class Gate {
   public:
    Gate(SnapshotService& svc, std::size_t slot, std::uint64_t op)
        : svc_(svc) {
      if (svc_.cfg_.max_concurrent_ops == 0) return;
      counted_ = true;
      const std::size_t inflight =
          svc_.inflight_.fetch_add(1, std::memory_order_acq_rel) + 1;
      if (inflight > svc_.cfg_.max_concurrent_ops) {
        svc_.inflight_.fetch_sub(1, std::memory_order_acq_rel);
        counted_ = false;
        admitted_ = false;
        svc_.counters_.sheds.fetch_add(1, std::memory_order_relaxed);
        ASNAP_TRACE_EVENT(trace::EventKind::kSvcShed,
                          static_cast<std::uint32_t>(slot), op);
      }
    }
    ~Gate() {
      if (counted_) svc_.inflight_.fetch_sub(1, std::memory_order_acq_rel);
    }
    Gate(const Gate&) = delete;
    Gate& operator=(const Gate&) = delete;
    bool admitted() const { return admitted_; }

   private:
    SnapshotService& svc_;
    bool counted_ = false;
    bool admitted_ = true;
  };

  LeaseConfig wire_lease_config(LeaseConfig cfg) {
    ASNAP_ASSERT_MSG(!cfg.seal,
                     "the service owns the lease seal hook; do not set one");
    cfg.seal = [this](std::size_t slot, std::uint64_t old_epoch,
                      std::uint64_t new_epoch) {
      seal_slot(slot, old_epoch, new_epoch);
    };
    return cfg;
  }

  /// Retire old_epoch: flush whatever the outgoing holder left buffered,
  /// then install the new epoch — all under the slot mutex, so the grant
  /// only becomes visible once the slot is clean and stale ops bounce.
  void seal_slot(std::size_t slot_idx, std::uint64_t old_epoch,
                 std::uint64_t new_epoch) {
    Slot& s = slots_[slot_idx];
    std::lock_guard lk(s.mu);
    ASNAP_ASSERT(s.epoch.load(std::memory_order_relaxed) == old_epoch);
    flush_locked(slot_idx, s);
    s.epoch.store(new_epoch, std::memory_order_release);
  }

  bool epoch_current_locked(Slot& s, const ClientSession& sess) {
    if (s.epoch.load(std::memory_order_relaxed) == sess.lease_.epoch) {
      return true;
    }
    counters_.lease_expired_errors.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  /// Write the batch's surviving value to the backend and advance the
  /// mutation generation. Caller holds s.mu.
  void flush_locked(std::size_t slot_idx, Slot& s) {
    if (s.pending_count == 0) return;
    backend_->update(static_cast<ProcessId>(slot_idx),
                     std::move(*s.pending_value));
    // Bump AFTER the write: a cached generation >= this bump implies the
    // cache-filling scan already saw the write (see header comment).
    const std::uint64_t old_gen =
        mutations_.fetch_add(1, std::memory_order_seq_cst);
    counters_.flushes.fetch_add(1, std::memory_order_relaxed);
    counters_.coalesced.fetch_add(s.pending_count - 1,
                                  std::memory_order_relaxed);
    ASNAP_TRACE_EVENT(trace::EventKind::kBatchFlush,
                      static_cast<std::uint32_t>(slot_idx),
                      static_cast<std::uint64_t>(s.pending_count),
                      s.pending_last_seq);
    if (cfg_.cache_scans &&
        cache_gen_hint_.load(std::memory_order_relaxed) == old_gen) {
      ASNAP_TRACE_EVENT(trace::EventKind::kScanCacheInvalidate,
                        static_cast<std::uint32_t>(slot_idx), old_gen);
    }
    s.flushed_through = s.pending_last_seq;
    s.pending_count = 0;
    s.pending_value.reset();
  }

  /// Serve the cached view iff its generation is still current. The
  /// current-generation load happens after the wait-free version acquire,
  /// after the reader's invocation — any update completed before this scan
  /// began has bumped the generation by then, so a hit can never miss it.
  /// No lock anywhere on this path: a concurrent fill publishes a *new*
  /// version and never touches the one we hold.
  std::optional<std::vector<T>> cache_lookup(std::size_t slot_idx) {
    const auto entry = cache_gate_.acquire();
    const std::uint64_t g = mutations_.load(std::memory_order_seq_cst);
    if (!entry->valid || entry->gen != g) return std::nullopt;
    counters_.cache_hits.fetch_add(1, std::memory_order_relaxed);
    ASNAP_TRACE_EVENT(trace::EventKind::kScanCacheHit,
                      static_cast<std::uint32_t>(slot_idx), g);
    return entry->view;
  }

  /// Publish {g_pre, view} as the next cache version iff it is at least as
  /// fresh as the published one. Caller holds fill_mu_ (single-flight), so
  /// installs are serialized and monotone — the gate's publish() contract.
  void cache_install(std::uint64_t g_pre, const std::vector<T>& view) {
    {
      const auto cur = cache_gate_.acquire();
      if (cur->valid && g_pre < cur->gen) return;
    }
    cache_gate_.publish(CacheEntry{true, g_pre, view});
    cache_gen_hint_.store(g_pre, std::memory_order_relaxed);
  }

  struct Counters {
    std::atomic<std::uint64_t> connects{0};
    std::atomic<std::uint64_t> disconnects{0};
    std::atomic<std::uint64_t> submits{0};
    std::atomic<std::uint64_t> flushes{0};
    std::atomic<std::uint64_t> coalesced{0};
    std::atomic<std::uint64_t> scans{0};
    std::atomic<std::uint64_t> cache_hits{0};
    std::atomic<std::uint64_t> cache_misses{0};
    std::atomic<std::uint64_t> sheds{0};
    std::atomic<std::uint64_t> lease_expired_errors{0};
  };

  Backend* backend_;
  ServiceConfig cfg_;
  std::vector<Slot> slots_;  // before leases_: the seal hook touches slots_
  SlotLeaseManager leases_;

  /// Count of backend writes, bumped after each. The scan cache's whole
  /// validity story is one comparison against this counter.
  std::atomic<std::uint64_t> mutations_{0};

  /// One published cache version: a generation-stamped immutable view.
  struct CacheEntry {
    bool valid = false;
    std::uint64_t gen = 0;
    std::vector<T> view;
  };
  /// Versioned publication of the scan cache (mvcc/version_gate.hpp):
  /// hits acquire wait-free, fills publish, displaced entries reclaim
  /// through the refcount + grace list. Trace id 0 = "the svc cache".
  mvcc::VersionGate<CacheEntry> cache_gate_{CacheEntry{}, /*trace_id=*/0};
  std::atomic<std::uint64_t> cache_gen_hint_{~std::uint64_t{0}};
  std::mutex fill_mu_;  ///< single-flight cache fills (backend scan dedup)

  std::atomic<std::size_t> inflight_{0};
  Counters counters_;
};

}  // namespace asnap::svc
