// Typed failure vocabulary of the service layer (src/svc/).
//
// The front-end multiplexes an unbounded client population onto the paper's
// n single-writer slots, so unlike the core algorithms (which are wait-free
// and total) service operations can be *refused*: admission control sheds
// load, the bounded connect queue fills, and a lease can be reclaimed out
// from under an idle client. Every refusal is a value, not a blocked thread
// — the service's answer to "bounded queues and typed overload errors
// instead of unbounded latency".
#pragma once

#include <cstdint>

namespace asnap::svc {

enum class SvcError : std::uint8_t {
  kOk = 0,
  kOverloaded,      ///< admission gate at capacity; request was shed
  kLeaseQueueFull,  ///< bounded lease wait queue at capacity
  kTimeout,         ///< no slot lease granted within the caller's deadline
  kLeaseExpired,    ///< the session's slot was re-granted under a new epoch
  kNotConnected,    ///< session holds no live lease (never connected, or
                    ///< already disconnected / expired)
};

inline const char* error_name(SvcError e) {
  switch (e) {
    case SvcError::kOk: return "ok";
    case SvcError::kOverloaded: return "overloaded";
    case SvcError::kLeaseQueueFull: return "lease_queue_full";
    case SvcError::kTimeout: return "timeout";
    case SvcError::kLeaseExpired: return "lease_expired";
    case SvcError::kNotConnected: return "not_connected";
  }
  return "unknown";
}

}  // namespace asnap::svc
