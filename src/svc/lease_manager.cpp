#include "svc/lease_manager.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "trace/event.hpp"

namespace asnap::svc {

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Real-time cap on one cv wait. Blocking acquires poll at least this often
/// so an injected manual clock (which never wakes the cv by itself) is
/// still observed promptly once a test advances it.
constexpr std::chrono::milliseconds kMaxWait{20};

}  // namespace

SlotLeaseManager::SlotLeaseManager(std::size_t slots, LeaseConfig cfg)
    : cfg_(std::move(cfg)), slots_(slots) {
  ASNAP_ASSERT_MSG(slots > 0, "lease manager needs at least one slot");
  if (!cfg_.now_ns) cfg_.now_ns = steady_now_ns;
}

std::optional<std::uint64_t> SlotLeaseManager::earliest_deadline_locked()
    const {
  std::optional<std::uint64_t> earliest;
  for (const Slot& s : slots_) {
    if (!s.held) continue;
    const std::uint64_t d = s.deadline_ns.load(std::memory_order_relaxed);
    if (!earliest || d < *earliest) earliest = d;
  }
  return earliest;
}

std::optional<Lease> SlotLeaseManager::try_grant_locked(ClientId client,
                                                        std::uint64_t now_v) {
  // Prefer a free slot; otherwise reclaim the longest-expired lease.
  std::size_t target = kNoSlot;
  bool steal = false;
  for (std::size_t s = 0; s < slots_.size(); ++s) {
    if (!slots_[s].held) {
      target = s;
      break;
    }
  }
  if (target == kNoSlot) {
    std::uint64_t best_deadline = ~std::uint64_t{0};
    for (std::size_t s = 0; s < slots_.size(); ++s) {
      const std::uint64_t d =
          slots_[s].deadline_ns.load(std::memory_order_relaxed);
      if (d <= now_v && d < best_deadline) {
        best_deadline = d;
        target = s;
        steal = true;
      }
    }
  }
  if (target == kNoSlot) return std::nullopt;

  Slot& slot = slots_[target];
  const std::uint64_t old_epoch = slot.epoch.load(std::memory_order_relaxed);
  const std::uint64_t new_epoch = old_epoch + 1;
  if (steal) {
    ASNAP_TRACE_EVENT(trace::EventKind::kLeaseExpire,
                      static_cast<std::uint32_t>(target),
                      static_cast<std::uint64_t>(slot.holder), old_epoch);
  }
  // Seal BEFORE the grant becomes visible: the service flushes the slot's
  // orphaned batch and installs new_epoch under the slot's execution lock,
  // so the previous holder can never touch the backend again.
  if (cfg_.seal) cfg_.seal(target, old_epoch, new_epoch);
  slot.epoch.store(new_epoch, std::memory_order_release);
  slot.held = true;
  slot.holder = client;
  slot.deadline_ns.store(now_v + static_cast<std::uint64_t>(cfg_.ttl.count()),
                         std::memory_order_relaxed);
  ++stats_.grants;
  if (steal) {
    ++stats_.steals;
    ASNAP_TRACE_EVENT(trace::EventKind::kLeaseSteal,
                      static_cast<std::uint32_t>(target),
                      static_cast<std::uint64_t>(client), new_epoch);
  } else {
    ASNAP_TRACE_EVENT(trace::EventKind::kLeaseGrant,
                      static_cast<std::uint32_t>(target),
                      static_cast<std::uint64_t>(client), new_epoch);
  }
  return Lease{target, new_epoch, client};
}

AcquireResult SlotLeaseManager::acquire(ClientId client,
                                        std::chrono::nanoseconds timeout) {
  std::unique_lock lk(mu_);
  const std::uint64_t start = now();
  const std::uint64_t deadline =
      start + static_cast<std::uint64_t>(std::max<std::int64_t>(
                  0, static_cast<std::int64_t>(timeout.count())));

  // Fast path: nobody waiting ahead of us.
  if (fifo_.empty()) {
    if (auto lease = try_grant_locked(client, start)) {
      return {AcquireStatus::kGranted, *lease};
    }
  }
  if (fifo_.size() >= cfg_.max_waiters) {
    ++stats_.queue_rejections;
    return {AcquireStatus::kQueueFull, {}};
  }

  const std::uint64_t ticket = next_ticket_++;
  fifo_.push_back(ticket);
  for (;;) {
    if (!fifo_.empty() && fifo_.front() == ticket) {
      std::optional<Lease> lease;
      try {
        lease = try_grant_locked(client, now());
      } catch (...) {
        // The seal hook threw (e.g. QuorumUnavailable flushing the retiring
        // holder's batch). The grant never became visible — seal runs before
        // the epoch/held stores — but our ticket is at the head of the
        // queue, and leaving it there would wedge every later waiter. Drop
        // it, wake the next head, and let the caller see the error.
        fifo_.pop_front();
        cv_.notify_all();
        throw;
      }
      if (lease) {
        fifo_.pop_front();
        cv_.notify_all();  // next waiter becomes head
        return {AcquireStatus::kGranted, *lease};
      }
    }
    const std::uint64_t now_v = now();
    if (now_v >= deadline) {
      fifo_.erase(std::find(fifo_.begin(), fifo_.end(), ticket));
      ++stats_.timeouts;
      cv_.notify_all();
      return {AcquireStatus::kTimeout, {}};
    }
    // Sleep until the next interesting instant: our own deadline or the
    // earliest lease expiry — capped in real time so injected clocks work.
    std::uint64_t wake = deadline;
    if (const auto expiry = earliest_deadline_locked()) {
      wake = std::min(wake, std::max(*expiry, now_v));
    }
    const auto rel = std::min<std::chrono::nanoseconds>(
        std::chrono::nanoseconds(wake - now_v), kMaxWait);
    cv_.wait_for(lk, std::max<std::chrono::nanoseconds>(
                         rel, std::chrono::nanoseconds(1)));
  }
}

bool SlotLeaseManager::release(const Lease& lease) {
  std::lock_guard lk(mu_);
  if (lease.slot >= slots_.size()) return false;
  Slot& slot = slots_[lease.slot];
  if (!slot.held ||
      slot.epoch.load(std::memory_order_relaxed) != lease.epoch) {
    return false;  // already reclaimed under a newer epoch
  }
  slot.held = false;
  ++stats_.releases;
  cv_.notify_all();
  return true;
}

bool SlotLeaseManager::renew(const Lease& lease) {
  if (lease.slot >= slots_.size()) return false;
  Slot& slot = slots_[lease.slot];
  if (slot.epoch.load(std::memory_order_acquire) != lease.epoch) return false;
  // Benign race: a reclaimer that already read the old deadline may still
  // steal a just-renewed lease. Safety is unaffected (the seal/epoch
  // protocol governs), the renewing client simply reconnects.
  slot.deadline_ns.store(now() + static_cast<std::uint64_t>(cfg_.ttl.count()),
                         std::memory_order_relaxed);
  renewals_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool SlotLeaseManager::valid(const Lease& lease) const {
  return lease.slot < slots_.size() &&
         slots_[lease.slot].epoch.load(std::memory_order_acquire) ==
             lease.epoch;
}

std::uint64_t SlotLeaseManager::epoch(std::size_t slot) const {
  ASNAP_ASSERT(slot < slots_.size());
  return slots_[slot].epoch.load(std::memory_order_acquire);
}

std::size_t SlotLeaseManager::waiters() const {
  std::lock_guard lk(mu_);
  return fifo_.size();
}

LeaseStats SlotLeaseManager::stats() const {
  std::lock_guard lk(mu_);
  LeaseStats out = stats_;
  out.renewals = renewals_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace asnap::svc
