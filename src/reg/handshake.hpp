// Handshake-bit matrix (Peterson [P83] / Lamport [L86b] style), the bounded
// substitute for unbounded sequence numbers in Sections 4 and 5.
//
// For each ordered pair (i, j) the matrix holds one boolean atomic register
// bit[i][j], written only by process i and read only by process j — the
// paper's q_{i,j} (scanner-to-updater) and, in the multi-writer algorithm,
// p_{i,j} (updater-to-scanner) registers. Each bit is its own single-writer
// single-reader atomic register; reading or writing one bit is one primitive
// step.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "common/assert.hpp"
#include "common/config.hpp"
#include "reg/small_register.hpp"

namespace asnap::reg {

class HandshakeMatrix {
 public:
  explicit HandshakeMatrix(std::size_t n) : n_(n), bits_(n * n) {
    for (auto& bit : bits_) bit = std::make_unique<BitRegister>(false);
  }

  std::size_t size() const { return n_; }

  /// Process `writer` sets its bit toward process `target`.
  void write(ProcessId writer, ProcessId target, bool v) {
    at(writer, target).write(v);
  }

  /// Read the bit written by `writer` toward `target`.
  bool read(ProcessId writer, ProcessId target) const {
    return at(writer, target).read();
  }

 private:
  BitRegister& at(ProcessId writer, ProcessId target) const {
    ASNAP_ASSERT(writer < n_ && target < n_);
    return *bits_[static_cast<std::size_t>(writer) * n_ + target];
  }

  std::size_t n_;
  std::vector<std::unique_ptr<BitRegister>> bits_;
};

}  // namespace asnap::reg
