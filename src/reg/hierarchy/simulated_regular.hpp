// A faithful simulation of a REGULAR single-writer register for arbitrary
// payloads, with its anomalies intact.
//
// Regularity permits a read overlapping writes to return the latest
// completed value OR any overlapping write's value — so two consecutive
// reads may observe new-then-old ("new/old inversion"), the precise
// anomaly that separates regular from atomic. Hardware registers are too
// strong to exhibit it, so we inject it: values are published atomically
// as (current, previous) pairs; an overlapped read flips a seeded coin and
// may return `previous` — always a legal regular answer.
//
// This register exists so the hierarchy's atomic constructions have a
// genuinely-weak substrate to tame, and so tests can show the inversion
// happening below and gone above.
#pragma once

#include <atomic>
#include <cstdint>
#include <utility>

#include "common/instrumentation.hpp"
#include "reg/big_register.hpp"

namespace asnap::reg::hierarchy {

template <typename T>
class SimulatedRegularRegister {
 public:
  explicit SimulatedRegularRegister(T init,
                                    std::uint64_t chaos_seed = 0x2E6A11)
      : state_(Published{init, init, 0}), chaos_(chaos_seed) {}

  /// Single writer only.
  void write(T v) {
    const Published old = state_.read();
    const std::uint64_t my_epoch =
        epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;  // odd: in flight
    state_.write(Published{std::move(v), old.current, my_epoch});
    // Extra scheduler-visible point between publication and completion so
    // overlapping reads can actually land inside the anomaly window under
    // the deterministic scheduler (simulation fidelity, not protocol cost).
    step_point(StepKind::kRegisterWrite);
    epoch_.fetch_add(1, std::memory_order_acq_rel);  // even again
  }

  /// Any reader. A read overlapping a write may return that write's
  /// PREDECESSOR value — but only once the in-flight write has published
  /// (before publication, `previous` is one generation too old and would
  /// be illegal even for a regular register; the Wing-Gong oracle catches
  /// that precise mistake if you make it).
  T read() {
    const std::uint64_t e1 = epoch_.load(std::memory_order_acquire);
    Published snap = state_.read();
    const bool in_flight_snap =
        (e1 & 1) != 0 && snap.write_epoch == e1;  // snapshot IS the in-flight
                                                  // write's publication
    if (in_flight_snap && coin()) {
      return snap.previous;  // latest completed value: legal under
                             // regularity, fatal to atomicity
    }
    return snap.current;
  }

 private:
  struct Published {
    T current;
    T previous;
    std::uint64_t write_epoch = 0;  ///< odd epoch of the publishing write
  };

  bool coin() {
    // Mixed atomic counter: thread-safe, seeded, deliberately biased toward
    // returning stale values so anomalies show up fast.
    std::uint64_t x =
        chaos_.fetch_add(0x9E3779B97F4A7C15ULL, std::memory_order_relaxed);
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDULL;
    return (x >> 61) % 4 < 3;  // ~75% stale when overlapped
  }

  BigAtomicRegister<Published> state_;
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::uint64_t> chaos_;
};

}  // namespace asnap::reg::hierarchy
