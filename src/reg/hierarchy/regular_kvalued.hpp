// Level 3: a K-valued REGULAR register from K regular bits (the classical
// unary construction, cf. Lamport [L86b] / Attiya-Welch).
//
//   write(v): set bit v, then clear bits v-1 .. 0 in DESCENDING order.
//   read:     scan bits 0, 1, ... and return the first set index.
//
// Why it is regular: a read always terminates at some set bit (the last
// completed write's bit stays set until a smaller-valued overlapping write
// clears it — and that writer set ITS bit first); the index returned is
// the last completed write's value or that of some overlapping write.
// Stale 1-bits above the current value are harmless: reads stop earlier;
// they are cleaned by the next larger write's descending clear.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "common/assert.hpp"
#include "reg/hierarchy/regular_bit.hpp"

namespace asnap::reg::hierarchy {

class RegularKValued {
 public:
  RegularKValued(std::size_t k, std::size_t init,
                 std::uint64_t chaos_seed = 0x2E6F1A)
      : bits_() {
    ASNAP_ASSERT(k >= 1 && init < k);
    bits_.reserve(k);
    for (std::size_t i = 0; i < k; ++i) {
      bits_.push_back(
          std::make_unique<RegularBit>(i == init, chaos_seed * 31 + i));
    }
  }

  std::size_t domain() const { return bits_.size(); }

  /// Single writer only.
  void write(std::size_t v) {
    ASNAP_ASSERT(v < bits_.size());
    bits_[v]->write(true);
    for (std::size_t i = v; i-- > 0;) {
      bits_[i]->write(false);
    }
  }

  /// Single reader only.
  std::size_t read() {
    for (std::size_t i = 0; i < bits_.size(); ++i) {
      if (bits_[i]->read()) return i;
    }
    // Unreachable with a correct construction: some bit <= the last
    // completed write's index is always set.
    ASNAP_ASSERT_MSG(false, "K-valued regular register: no bit set");
    return 0;
  }

 private:
  std::vector<std::unique_ptr<RegularBit>> bits_;
};

}  // namespace asnap::reg::hierarchy
