// Level 2 of the hierarchy: a REGULAR single-writer single-reader bit from
// a safe bit (Lamport's classic one-liner).
//
// Regularity: a read returns either the value of the latest write that
// completed before the read began, or the value of some overlapping write.
// For a BIT, the only way a safe register can violate regularity is by
// returning garbage during an overlapping write that does not change the
// value (old == new, yet the read returns the third option... there is
// none for bits — the garbage is always 'old' or 'new' UNLESS the write is
// redundant, in which case garbage may differ from the only legal answer).
// Hence the construction: THE WRITER SKIPS REDUNDANT WRITES. Every actual
// write changes the value, so any garbage during overlap coincides with
// old-or-new, which regularity permits.
#pragma once

#include "reg/hierarchy/safe_bit.hpp"

namespace asnap::reg::hierarchy {

class RegularBit {
 public:
  explicit RegularBit(bool init, std::uint64_t chaos_seed = 0x2E6B17)
      : bit_(init, chaos_seed), last_written_(init) {}

  /// Single writer only.
  void write(bool v) {
    if (v == last_written_) return;  // the whole trick: no redundant writes
    last_written_ = v;
    bit_.write(v);
  }

  /// Single reader only.
  bool read() { return bit_.read(); }

 private:
  SafeBit bit_;
  bool last_written_;  // writer-local; single writer, no race
};

}  // namespace asnap::reg::hierarchy
