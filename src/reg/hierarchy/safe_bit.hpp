// The bottom of the classical register hierarchy: a SAFE single-writer
// single-reader bit (Lamport [L86a/b]).
//
// Safety is the weakest register guarantee: a read that does not overlap
// any write returns the last value written; a read that DOES overlap a
// write may return anything in the value domain. The paper's algorithms
// assume atomic registers (Section 2, citing [L86b]); this hierarchy
// (safe bit -> regular bit -> regular K-valued -> atomic 1W1R -> atomic
// 1WnR) is the classical construction showing such registers exist from
// almost nothing — completing the substrate story downward.
//
// Since real hardware bits are stronger than safe, we SIMULATE safeness
// faithfully: the writer marks a write-in-progress window, and a reader
// that observes the window returns a seeded-pseudo-random bit. This makes
// the weakness real: algorithms built on SafeBit are actually exposed to
// garbage reads during overlap, and the hierarchy's tests demonstrate that
// each construction layer removes exactly the anomaly it claims to.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/instrumentation.hpp"

namespace asnap::reg::hierarchy {

class SafeBit {
 public:
  explicit SafeBit(bool init, std::uint64_t chaos_seed = 0x5AFEB17)
      : value_(init), chaos_(chaos_seed) {}

  SafeBit(const SafeBit&) = delete;
  SafeBit& operator=(const SafeBit&) = delete;

  /// Single writer only. The step_point sits INSIDE the write window so
  /// the deterministic scheduler can interleave a read into the overlap —
  /// that is how the tests provoke (and the constructions must survive)
  /// the licensed garbage.
  void write(bool v) {
    writing_.fetch_add(1, std::memory_order_acq_rel);  // window opens
    step_point(StepKind::kRegisterWrite);
    value_.store(v, std::memory_order_relaxed);
    writing_.fetch_sub(1, std::memory_order_acq_rel);  // window closes
  }

  /// Single reader only. Overlapping a write returns an ARBITRARY bit.
  bool read() {
    step_point(StepKind::kRegisterRead);
    if (writing_.load(std::memory_order_acquire) != 0) {
      // Read-during-write: simulate the safe register's licensed garbage.
      chaos_ = chaos_ * 6364136223846793005ULL + 1442695040888963407ULL;
      return (chaos_ >> 62) & 1;
    }
    return value_.load(std::memory_order_acquire);
  }

  /// Number of garbage-eligible overlap reads is not tracked per bit; tests
  /// provoke overlap through the deterministic scheduler instead.

 private:
  std::atomic<bool> value_;
  std::atomic<int> writing_{0};
  std::uint64_t chaos_;  // reader-side PRNG state (single reader: no race)
};

}  // namespace asnap::reg::hierarchy
