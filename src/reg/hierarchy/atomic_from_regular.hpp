// Levels 4 and 5: ATOMIC registers from regular ones (unbounded-timestamp
// constructions, cf. [VA86] / Attiya-Welch ch. 10).
//
// Atomic1R1W<T>: the writer attaches an increasing sequence number; the
// single reader remembers the highest (seq, value) pair it has returned
// and never goes back — this erases the regular register's new/old
// inversion, which is the only gap between 1W1R regular and atomic.
//
// AtomicSwmr<T> (1-writer n-reader) from 1W1R atomic registers: the writer
// writes (seq, v) to one register per reader; reader r also consults a
// report[q][r] register from every other reader q, adopts the maximum
// sequence it can see, REPORTS it to everyone (report[r][q]), and returns
// it. The write-back through the report matrix is what prevents two
// readers from inverting each other (same role as the write-back in the
// ABD read and in the Vitanyi-Awerbuch multi-writer construction — the
// same idea recurs at every level of this repository).
//
// The timestamps are unbounded; bounded versions exist ([P83], [L86b],
// [S88]) but are outside this reproduction's scope (see DESIGN.md §6) —
// which is, fittingly, the very bounded-vs-unbounded gap the paper's
// Section 6 closes for snapshots.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/config.hpp"
#include "reg/hierarchy/simulated_regular.hpp"

namespace asnap::reg::hierarchy {

/// Single-writer single-reader atomic register from a regular register.
template <typename T>
class Atomic1W1R {
 public:
  explicit Atomic1W1R(T init, std::uint64_t chaos_seed = 0xA70A11)
      : reg_(Stamped{0, std::move(init)}, chaos_seed) {}

  /// Single writer only.
  void write(T v) {
    ++seq_;
    reg_.write(Stamped{seq_, std::move(v)});
  }

  /// Single reader only.
  T read() {
    Stamped s = reg_.read();
    if (s.seq >= last_returned_.seq) {
      last_returned_ = std::move(s);
    }
    return last_returned_.value;
  }

 private:
  struct Stamped {
    std::uint64_t seq;
    T value;
  };

  SimulatedRegularRegister<Stamped> reg_;
  std::uint64_t seq_ = 0;           // writer-local
  Stamped last_returned_{0, T{}};   // reader-local
};

/// Single-writer n-reader atomic register from 1W1R atomic registers.
template <typename T>
class AtomicSwmr {
 public:
  AtomicSwmr(std::size_t readers, T init, std::uint64_t chaos_seed = 0xA70511)
      : n_(readers) {
    for (std::size_t r = 0; r < n_; ++r) {
      from_writer_.push_back(std::make_unique<Cell>(
          Stamped{0, init}, chaos_seed * 37 + r));
    }
    report_.resize(n_ * n_);
    for (std::size_t i = 0; i < n_ * n_; ++i) {
      report_[i] = std::make_unique<Cell>(Stamped{0, init},
                                          chaos_seed * 101 + i);
    }
  }

  std::size_t readers() const { return n_; }

  /// Single writer only (the writer is not one of the n readers here).
  void write(T v) {
    ++seq_;
    for (std::size_t r = 0; r < n_; ++r) {
      from_writer_[r]->write(Stamped{seq_, v});
    }
  }

  /// Reader r only (each reader id used by at most one thread).
  T read(std::size_t r) {
    ASNAP_ASSERT(r < n_);
    Stamped best = from_writer_[r]->read();
    for (std::size_t q = 0; q < n_; ++q) {
      if (q == r) continue;
      Stamped candidate = report(q, r).read();
      if (candidate.seq > best.seq) best = std::move(candidate);
    }
    for (std::size_t q = 0; q < n_; ++q) {
      if (q == r) continue;
      report(r, q).write(best);  // the reader-to-reader write-back
    }
    return best.value;
  }

 private:
  struct Stamped {
    std::uint64_t seq;
    T value;
  };
  using Cell = Atomic1W1R<Stamped>;

  Cell& report(std::size_t from, std::size_t to) {
    return *report_[from * n_ + to];
  }

  std::size_t n_;
  std::uint64_t seq_ = 0;  // writer-local
  std::vector<std::unique_ptr<Cell>> from_writer_;
  std::vector<std::unique_ptr<Cell>> report_;
};

}  // namespace asnap::reg::hierarchy
