// Arrays of single-writer multi-reader (SWMR) registers, and the concept the
// snapshot algorithms are written against.
//
// The paper restricts implementations to "single-writer, multi-reader atomic
// registers as the only shared objects" (Section 2). The snapshot algorithms
// in core/ are therefore templated on a *register array provider* satisfying
// SwmrRegisterArray: register j is written only by process j and readable by
// everyone. Two providers exist:
//
//   - SharedMemoryRegisterArray (here): BigAtomicRegister per process —
//     the in-memory instantiation used by most of the library.
//   - abd::AbdRegisterArray: the same interface implemented by majority
//     quorums over a simulated message-passing network (Section 6's remark
//     that applying the ABD emulation yields message-passing snapshots).
#pragma once

#include <concepts>
#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/config.hpp"
#include "reg/big_register.hpp"

namespace asnap::reg {

/// Provider of n SWMR registers: register j written by process j only.
template <typename A, typename Rec>
concept SwmrRegisterArray = requires(A array, const A carray, ProcessId pid,
                                     Rec rec) {
  { carray.size() } -> std::convertible_to<std::size_t>;
  { array.read(pid, pid) } -> std::convertible_to<Rec>;  // read(reg j, by i)
  array.write(pid, std::move(rec));                      // write(own reg i)
};

/// In-memory SWMR register array: one BigAtomicRegister per process.
template <typename Rec>
class SharedMemoryRegisterArray {
 public:
  SharedMemoryRegisterArray(std::size_t n, const Rec& init) {
    regs_.reserve(n);
    for (std::size_t j = 0; j < n; ++j) {
      regs_.push_back(std::make_unique<BigAtomicRegister<Rec>>(init));
    }
  }

  SharedMemoryRegisterArray(SharedMemoryRegisterArray&&) noexcept = default;
  SharedMemoryRegisterArray& operator=(SharedMemoryRegisterArray&&) noexcept =
      default;

  std::size_t size() const { return regs_.size(); }

  /// Process `reader` reads register `owner`. One primitive step.
  Rec read(ProcessId owner, ProcessId reader) const {
    (void)reader;
    ASNAP_ASSERT(owner < regs_.size());
    return regs_[owner]->read();
  }

  /// Process `owner` writes its own register. One primitive step.
  void write(ProcessId owner, Rec rec) {
    ASNAP_ASSERT(owner < regs_.size());
    regs_[owner]->write(std::move(rec));
  }

 private:
  std::vector<std::unique_ptr<BigAtomicRegister<Rec>>> regs_;
};

}  // namespace asnap::reg
