// Atomic register for payloads of arbitrary width.
//
// The registers of Afek et al.'s algorithms are wide: Figure 2's r_i holds
// (value, seq, view[n]) and Figure 3's adds n handshake bits and a toggle,
// all of which must change in ONE atomic write ("It is important that each
// update operation changes the value, handshake and toggle fields in a
// single atomic write operation", Section 4). No machine word is that wide,
// so we realize the register by publishing an immutable heap node through a
// single atomic pointer:
//
//   write(v): allocate node{v}; atomically exchange the published pointer;
//             retire the old node to the hazard-pointer domain.
//   read():   protect the published pointer with a hazard pointer, copy the
//             node's payload, release.
//
// Linearization points: the pointer exchange (write) and the validated
// pointer load (read). The register is multi-writer multi-reader as-is; the
// single-writer algorithms simply never share a writer.
//
// Every read()/write() counts as ONE primitive step at the abstraction level
// of the paper (one atomic register operation), which is the granularity at
// which the instrumentation counts and the deterministic scheduler
// interleaves.
#pragma once

#include <atomic>
#include <utility>

#include "common/instrumentation.hpp"
#include "hazard/hazard_pointers.hpp"

namespace asnap::reg {

template <typename T>
class BigAtomicRegister {
 public:
  explicit BigAtomicRegister(T init)
      : current_(new Node(std::move(init))) {}

  ~BigAtomicRegister() {
    // Destruction requires quiescence (no concurrent operations), like any
    // std::atomic. Nodes already retired are owned by the hazard domain.
    delete current_.load(std::memory_order_relaxed);
  }

  BigAtomicRegister(const BigAtomicRegister&) = delete;
  BigAtomicRegister& operator=(const BigAtomicRegister&) = delete;

  /// Atomic read; one primitive step.
  T read() const {
    step_point(StepKind::kRegisterRead);
    hazard::Guard guard;
    const Node* node = guard.protect(current_);
    return node->value;  // copied while protected
  }

  /// Atomic write; one primitive step.
  void write(T v) {
    step_point(StepKind::kRegisterWrite);
    Node* fresh = new Node(std::move(v));
    Node* old = current_.exchange(fresh, std::memory_order_acq_rel);
    hazard::retire_object(old);
  }

 private:
  struct Node {
    explicit Node(T v) : value(std::move(v)) {}
    const T value;
  };

  std::atomic<Node*> current_;
};

}  // namespace asnap::reg
