// Word-sized atomic register backed directly by std::atomic.
//
// Used for the paper's boolean handshake registers (q_{i,j} bits, Section 4)
// and any other payload small enough for a lock-free std::atomic. Each
// read()/write() is one primitive step and reports itself to the
// instrumentation layer (common/instrumentation.hpp).
#pragma once

#include <atomic>
#include <type_traits>

#include "common/config.hpp"
#include "common/instrumentation.hpp"

namespace asnap::reg {

template <typename T>
class SmallAtomicRegister {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallAtomicRegister requires a trivially copyable payload");
  static_assert(std::atomic<T>::is_always_lock_free,
                "SmallAtomicRegister payload must be lock-free; use "
                "BigAtomicRegister for wide payloads");

 public:
  SmallAtomicRegister() : value_(T{}) {}
  explicit SmallAtomicRegister(T init) : value_(init) {}

  SmallAtomicRegister(const SmallAtomicRegister&) = delete;
  SmallAtomicRegister& operator=(const SmallAtomicRegister&) = delete;

  /// Atomic read; one primitive step.
  T read() const {
    step_point(StepKind::kRegisterRead);
    return value_.load(std::memory_order_seq_cst);
  }

  /// Atomic write; one primitive step.
  void write(T v) {
    step_point(StepKind::kRegisterWrite);
    value_.store(v, std::memory_order_seq_cst);
  }

 private:
  std::atomic<T> value_;
};

/// One shared boolean register, the paper's 1-writer 1-reader handshake bit.
using BitRegister = SmallAtomicRegister<bool>;

}  // namespace asnap::reg
