// Multi-writer multi-reader atomic registers — the substrate of the
// bounded multi-writer snapshot (Section 5, Figure 4).
//
// Two interchangeable implementations, both satisfying MwmrRegister:
//
//  * DirectMwmrRegister — a BigAtomicRegister, which is natively MWMR
//    (writers exchange the published pointer). This is the fast path used
//    by examples and throughput benchmarks.
//
//  * VitanyiAwerbuchMwmr — the construction from n SWMR registers with
//    unbounded (tag) timestamps, in the style of [VA86]. Section 6 compares
//    compound constructions by tracing every operation back to SWMR
//    register operations; this implementation is what makes that experiment
//    (E7) possible: each MWMR read/write costs n+1 SWMR primitive steps, so
//    a multi-writer snapshot instantiated over it costs O(n^3) SWMR steps
//    per operation, versus O(n^2) for the bounded single-writer algorithm.
//    (The paper cites the bounded [LTV89] construction; the unbounded-tag
//    variant has the same O(n) cost shape — see DESIGN.md §6.)
//
// Protocol of VitanyiAwerbuchMwmr: each of the n processes owns one SWMR
// register holding the highest (seq, pid)-tagged value it has adopted.
//   write_i(v): collect all n registers; tag t = (max seq + 1, i);
//               publish (t, v) in register i.
//   read_i():   collect all n registers; adopt the maximum tag (t, v);
//               publish (t, v) in register i (the write-back that makes
//               reads atomic rather than merely regular); return v.
// Tags are ordered lexicographically by (seq, pid); writer tags are unique,
// write-backs only re-announce existing tags.
#pragma once

#include <concepts>
#include <cstdint>
#include <utility>

#include "common/config.hpp"
#include "reg/big_register.hpp"
#include "reg/register_array.hpp"

namespace asnap::reg {

/// Register readable and writable by every process; callers pass their
/// process id because some implementations (VitanyiAwerbuchMwmr) need it.
template <typename R, typename T>
concept MwmrRegister = requires(R r, ProcessId pid, T v) {
  { r.read(pid) } -> std::convertible_to<T>;
  r.write(pid, std::move(v));
};

template <typename T>
class DirectMwmrRegister {
 public:
  /// All MwmrRegister implementations share the (n processes, init) shape so
  /// snapshot code can construct either; the direct register ignores n.
  DirectMwmrRegister(std::size_t /*n*/, T init) : reg_(std::move(init)) {}
  explicit DirectMwmrRegister(T init) : reg_(std::move(init)) {}

  T read(ProcessId /*reader*/) const { return reg_.read(); }
  void write(ProcessId /*writer*/, T v) { reg_.write(std::move(v)); }

 private:
  BigAtomicRegister<T> reg_;
};

template <typename T>
class VitanyiAwerbuchMwmr {
 public:
  /// Construct for n sharing processes with the given initial value.
  VitanyiAwerbuchMwmr(std::size_t n, T init)
      : regs_(n, Tagged{Tag{0, 0}, std::move(init)}) {}

  T read(ProcessId reader) {
    Tagged best = collect_max(reader);
    // Write-back: announce the adopted value so any later read (by anyone)
    // observes a tag at least this large. Without it the register is only
    // regular, not atomic (new/old read inversions between two readers).
    regs_.write(reader, best);
    return best.value;
  }

  void write(ProcessId writer, T v) {
    const Tagged best = collect_max(writer);
    Tagged fresh{Tag{best.tag.seq + 1, writer}, std::move(v)};
    regs_.write(writer, std::move(fresh));
  }

  /// SWMR primitive steps per MWMR operation (for the E7 cost accounting).
  std::size_t swmr_steps_per_op() const { return regs_.size() + 1; }

 private:
  struct Tag {
    std::uint64_t seq;
    ProcessId pid;

    bool operator<(const Tag& rhs) const {
      return seq != rhs.seq ? seq < rhs.seq : pid < rhs.pid;
    }
  };

  struct Tagged {
    Tag tag;
    T value;
  };

  Tagged collect_max(ProcessId caller) {
    Tagged best = regs_.read(0, caller);
    for (std::size_t j = 1; j < regs_.size(); ++j) {
      Tagged candidate = regs_.read(static_cast<ProcessId>(j), caller);
      if (best.tag < candidate.tag) best = std::move(candidate);
    }
    return best;
  }

  SharedMemoryRegisterArray<Tagged> regs_;
};

}  // namespace asnap::reg
