#include "lin/history.hpp"

namespace asnap::lin {

Recorder::Recorder(std::size_t num_words) { history_.num_words = num_words; }

Time Recorder::tick() { return clock_.fetch_add(1, std::memory_order_acq_rel); }

void Recorder::add_update(ProcessId proc, std::size_t word, Tag tag, Time inv,
                          Time res) {
  std::lock_guard lock(mu_);
  history_.updates.push_back(UpdateOp{proc, word, tag, inv, res});
}

void Recorder::add_scan(ProcessId proc, std::vector<Tag> view, Time inv,
                        Time res) {
  add_scan(proc, 0, std::move(view), inv, res);
}

void Recorder::add_scan(ProcessId proc, std::size_t word_base,
                        std::vector<Tag> view, Time inv, Time res) {
  std::lock_guard lock(mu_);
  history_.scans.push_back(ScanOp{proc, std::move(view), inv, res, word_base});
}

History Recorder::take() {
  std::lock_guard lock(mu_);
  History out = std::move(history_);
  history_ = History{};
  history_.num_words = out.num_words;
  return out;
}

}  // namespace asnap::lin
