// Plain-text serialization of operation histories.
//
// Format (one op per line, '#' comments, blank lines ignored):
//
//   words <m>
//   U <proc> <word> <writer> <seq> <inv> <res>
//   S <proc> <inv> <res> <tag_1> ... <tag_m>
//
// where each scan tag is "writer:seq" or "-" for the initial value.
//
// Lets a failing stress run be saved, attached to a bug report, replayed
// through all three checkers (tools/check_history), and minimized by hand.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "lin/history.hpp"

namespace asnap::lin {

/// Serialize to the text format.
std::string dump_history(const History& history);

/// Parse the text format; returns nullopt (with a message in *error if
/// provided) on malformed input.
std::optional<History> parse_history(const std::string& text,
                                     std::string* error = nullptr);

}  // namespace asnap::lin
