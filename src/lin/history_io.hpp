// Plain-text serialization of operation histories.
//
// Format (one op per line, '#' comments, blank lines ignored):
//
//   words <m>
//   U <proc> <word> <writer> <seq> <inv> <res>
//   S <proc> <inv> <res> <tag_1> ... <tag_m>
//   P <proc> <word_base> <inv> <res> <tag_1> ... <tag_k>
//
// where each scan tag is "writer:seq" or "-" for the initial value. 'S' is a
// full-width scan; 'P' is a partial scan covering words
// [word_base, word_base + k) — the shape shard-local scans of a sharded
// fabric produce (src/shard/).
//
// Lets a failing stress run be saved, attached to a bug report, replayed
// through all three checkers (tools/check_history), and minimized by hand.
// HistoryFileWriter streams records to disk as they complete, so a long
// checked run (tools/loadgen --check-file) holds O(1) history in memory
// during the measured interval instead of growing an op vector.
#pragma once

#include <cstdio>
#include <iosfwd>
#include <mutex>
#include <optional>
#include <string>

#include "lin/history.hpp"

namespace asnap::lin {

/// Serialize to the text format.
std::string dump_history(const History& history);

/// Parse the text format; returns nullopt (with a message in *error if
/// provided) on malformed input.
std::optional<History> parse_history(const std::string& text,
                                     std::string* error = nullptr);

/// Parse the text format from a stream (one pass, line-buffered) — the
/// replay half of a spilled history: records stream back in without a
/// second full-text copy in memory.
std::optional<History> read_history(std::istream& in,
                                    std::string* error = nullptr);

/// Thread-safe append-only writer of the text format. Each completed
/// operation is formatted and handed to a buffered FILE* immediately, so the
/// recording side of a long run keeps O(1) history in memory; the file is
/// replayable via read_history() or tools/check_history.
class HistoryFileWriter {
 public:
  HistoryFileWriter(const std::string& path, std::size_t num_words);
  ~HistoryFileWriter();
  HistoryFileWriter(const HistoryFileWriter&) = delete;
  HistoryFileWriter& operator=(const HistoryFileWriter&) = delete;

  /// False if the file could not be opened or a write failed.
  bool ok() const { return ok_; }
  std::size_t num_words() const { return num_words_; }

  void add_update(ProcessId proc, std::size_t word, Tag tag, Time inv,
                  Time res);
  /// view covers words [word_base, word_base + view.size()).
  void add_scan(ProcessId proc, std::size_t word_base,
                const std::vector<Tag>& view, Time inv, Time res);

  /// Flush buffers and close; further adds are dropped. Returns ok().
  bool close();

 private:
  std::mutex mu_;
  std::FILE* out_ = nullptr;  // guarded by mu_
  std::size_t num_words_;
  bool ok_ = false;
};

}  // namespace asnap::lin
