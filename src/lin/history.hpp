// Operation histories and their recording.
//
// To verify that an implementation "is a behavior of SWS" (the paper's
// Figure 1 automaton) we record, for every operation, its invocation and
// response instants on a global logical clock plus its payload, and then ask
// the checkers in snapshot_checker.hpp / wing_gong.hpp whether internal
// Scan/Update serialization points can be placed inside every interval such
// that the resulting sequence is a schedule of SWS — i.e. linearizability
// [HW87], exactly the correctness notion the paper proves.
//
// Values are abstracted to Tags: (writer, per-writer sequence number).
// Tests run the snapshot objects over T = Tag so every written value is
// globally unique, which makes the reads-from relation of a history
// unambiguous and checking tractable.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "common/config.hpp"

namespace asnap::lin {

using Time = std::uint64_t;

/// Unique identity of a written value. seq is 1-based per writer; the
/// initial register contents carry Tag{} (writer == kNoProcess, seq == 0).
struct Tag {
  ProcessId writer = kNoProcess;
  std::uint64_t seq = 0;

  bool operator==(const Tag&) const = default;
  bool is_initial() const { return seq == 0; }
};

struct UpdateOp {
  ProcessId proc = 0;    ///< invoking process
  std::size_t word = 0;  ///< memory word written
  Tag tag;               ///< unique tag of the written value
  Time inv = 0;
  Time res = 0;
};

struct ScanOp {
  ProcessId proc = 0;
  std::vector<Tag> view;  ///< tag observed for each covered word
  Time inv = 0;
  Time res = 0;
  /// First word the view covers: the scan observed words
  /// [word_base, word_base + view.size()). Full scans have word_base == 0 and
  /// a num_words-wide view; shard-local scans in a sharded fabric cover only
  /// their shard's word range. A partial view constrains the scan's position
  /// only relative to writes of the covered words, so the single-writer
  /// checker stays exact (see snapshot_checker.hpp).
  std::size_t word_base = 0;

  bool covers(std::size_t num_words) const {
    return word_base <= num_words && view.size() <= num_words - word_base;
  }
};

struct History {
  std::size_t num_words = 0;
  std::vector<UpdateOp> updates;
  std::vector<ScanOp> scans;

  std::size_t total_ops() const { return updates.size() + scans.size(); }
};

/// Thread-safe history recorder with its own logical clock. tick() is a
/// single atomic increment, so invocation/response stamps embed the
/// real-time order: res(A) < inv(B) implies A completed before B started.
class Recorder {
 public:
  explicit Recorder(std::size_t num_words);

  /// Advance and return the logical clock. Call immediately before an
  /// operation begins (invocation stamp) and immediately after it returns
  /// (response stamp).
  Time tick();

  void add_update(ProcessId proc, std::size_t word, Tag tag, Time inv,
                  Time res);
  void add_scan(ProcessId proc, std::vector<Tag> view, Time inv, Time res);
  /// Partial scan: view covers words [word_base, word_base + view.size()).
  void add_scan(ProcessId proc, std::size_t word_base, std::vector<Tag> view,
                Time inv, Time res);

  /// Move the accumulated history out (quiescent point only).
  History take();

 private:
  std::mutex mu_;
  std::atomic<Time> clock_{0};
  History history_;
};

}  // namespace asnap::lin
