// Exhaustive linearizability checker (Wing & Gong, 1993 style) against the
// sequential snapshot specification — the reference oracle of this library.
//
// Searches over all serialization orders consistent with real time: an
// operation may be linearized next only if no other pending operation's
// response precedes its invocation. Updates mutate the abstract memory
// (vector of tags); a scan is admissible only if its view equals the
// abstract memory exactly.
//
// Exponential in history size, so it is reserved for:
//   * small multi-writer histories, where the polynomial checker is only
//     sound (not complete), and
//   * cross-validating the polynomial single-writer checker on randomized
//     histories (checker-on-checker tests).
//
// Memoization on (linearized-set, memory-state) keeps practical histories of
// up to ~24 operations tractable.
#pragma once

#include <cstddef>

#include "lin/history.hpp"

namespace asnap::lin {

enum class WgVerdict {
  kLinearizable,
  kNotLinearizable,
  kTooLarge,  ///< history exceeds max_ops; no verdict
};

/// Exhaustively decide linearizability of `history` against the snapshot
/// specification. Histories with more than `max_ops` operations (default 28,
/// hard cap 62) yield kTooLarge.
WgVerdict wing_gong_check(const History& history, std::size_t max_ops = 28);

}  // namespace asnap::lin
