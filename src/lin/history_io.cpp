#include "lin/history_io.hpp"

#include <istream>
#include <sstream>

namespace asnap::lin {

namespace {

std::string tag_to_string(const Tag& tag) {
  if (tag.is_initial()) return "-";
  return std::to_string(tag.writer) + ":" + std::to_string(tag.seq);
}

bool parse_tag(const std::string& token, Tag& out) {
  if (token == "-") {
    out = Tag{};
    return true;
  }
  const std::size_t colon = token.find(':');
  if (colon == std::string::npos) return false;
  try {
    out.writer = static_cast<ProcessId>(
        std::stoul(token.substr(0, colon)));
    out.seq = std::stoull(token.substr(colon + 1));
  } catch (...) {
    return false;
  }
  return out.seq != 0;  // "w:0" would collide with the initial tag
}

void append_update(std::string& out, const UpdateOp& u) {
  out += "U ";
  out += std::to_string(u.proc);
  out += ' ';
  out += std::to_string(u.word);
  out += ' ';
  out += std::to_string(u.tag.writer);
  out += ' ';
  out += std::to_string(u.tag.seq);
  out += ' ';
  out += std::to_string(u.inv);
  out += ' ';
  out += std::to_string(u.res);
  out += '\n';
}

void append_scan(std::string& out, ProcessId proc, std::size_t word_base,
                 const std::vector<Tag>& view, Time inv, Time res, bool full) {
  out += full ? "S " : "P ";
  out += std::to_string(proc);
  if (!full) {
    out += ' ';
    out += std::to_string(word_base);
  }
  out += ' ';
  out += std::to_string(inv);
  out += ' ';
  out += std::to_string(res);
  for (const Tag& t : view) {
    out += ' ';
    out += tag_to_string(t);
  }
  out += '\n';
}

}  // namespace

std::string dump_history(const History& history) {
  std::string out = "# asnap history v1\n";
  out += "words " + std::to_string(history.num_words) + "\n";
  for (const UpdateOp& u : history.updates) append_update(out, u);
  for (const ScanOp& s : history.scans) {
    const bool full = s.word_base == 0 && s.view.size() == history.num_words;
    append_scan(out, s.proc, s.word_base, s.view, s.inv, s.res, full);
  }
  return out;
}

std::optional<History> read_history(std::istream& in, std::string* error) {
  const auto fail = [&](const std::string& msg) -> std::optional<History> {
    if (error != nullptr) *error = msg;
    return std::nullopt;
  };

  History history;
  bool have_words = false;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string kind;
    if (!(ls >> kind)) continue;  // blank

    const std::string where = " (line " + std::to_string(line_no) + ")";
    if (kind == "words") {
      if (!(ls >> history.num_words) || history.num_words == 0) {
        return fail("bad words line" + where);
      }
      have_words = true;
    } else if (kind == "U") {
      if (!have_words) return fail("U before words" + where);
      UpdateOp u;
      if (!(ls >> u.proc >> u.word >> u.tag.writer >> u.tag.seq >> u.inv >>
            u.res)) {
        return fail("bad update line" + where);
      }
      if (u.tag.seq == 0) return fail("update with seq 0" + where);
      history.updates.push_back(u);
    } else if (kind == "S" || kind == "P") {
      if (!have_words) return fail(kind + " before words" + where);
      ScanOp s;
      if (kind == "P") {
        if (!(ls >> s.proc >> s.word_base >> s.inv >> s.res)) {
          return fail("bad partial scan line" + where);
        }
      } else if (!(ls >> s.proc >> s.inv >> s.res)) {
        return fail("bad scan line" + where);
      }
      std::string token;
      while (ls >> token) {
        Tag tag;
        if (!parse_tag(token, tag)) {
          return fail("bad tag '" + token + "'" + where);
        }
        s.view.push_back(tag);
      }
      if (kind == "S" && s.view.size() != history.num_words) {
        return fail("scan view width mismatch" + where);
      }
      if (!s.covers(history.num_words)) {
        return fail("scan view exceeds the word range" + where);
      }
      history.scans.push_back(std::move(s));
    } else {
      return fail("unknown record '" + kind + "'" + where);
    }
  }
  if (!have_words) return fail("missing words header");
  return history;
}

std::optional<History> parse_history(const std::string& text,
                                     std::string* error) {
  std::istringstream in(text);
  return read_history(in, error);
}

// ---------------------------------------------------------------------------
// HistoryFileWriter
// ---------------------------------------------------------------------------

HistoryFileWriter::HistoryFileWriter(const std::string& path,
                                     std::size_t num_words)
    : num_words_(num_words) {
  out_ = std::fopen(path.c_str(), "w");
  if (out_ == nullptr) return;
  ok_ = std::fprintf(out_, "# asnap history v1\nwords %zu\n", num_words) > 0;
}

HistoryFileWriter::~HistoryFileWriter() { close(); }

void HistoryFileWriter::add_update(ProcessId proc, std::size_t word, Tag tag,
                                   Time inv, Time res) {
  std::string line;
  append_update(line, UpdateOp{proc, word, tag, inv, res});
  std::lock_guard lock(mu_);
  if (out_ == nullptr) return;
  if (std::fputs(line.c_str(), out_) < 0) ok_ = false;
}

void HistoryFileWriter::add_scan(ProcessId proc, std::size_t word_base,
                                 const std::vector<Tag>& view, Time inv,
                                 Time res) {
  std::string line;
  const bool full = word_base == 0 && view.size() == num_words_;
  append_scan(line, proc, word_base, view, inv, res, full);
  std::lock_guard lock(mu_);
  if (out_ == nullptr) return;
  if (std::fputs(line.c_str(), out_) < 0) ok_ = false;
}

bool HistoryFileWriter::close() {
  std::lock_guard lock(mu_);
  if (out_ != nullptr) {
    if (std::fclose(out_) != 0) ok_ = false;
    out_ = nullptr;
  }
  return ok_;
}

}  // namespace asnap::lin
