#include "lin/history_io.hpp"

#include <sstream>

namespace asnap::lin {

namespace {

std::string tag_to_string(const Tag& tag) {
  if (tag.is_initial()) return "-";
  return std::to_string(tag.writer) + ":" + std::to_string(tag.seq);
}

bool parse_tag(const std::string& token, Tag& out) {
  if (token == "-") {
    out = Tag{};
    return true;
  }
  const std::size_t colon = token.find(':');
  if (colon == std::string::npos) return false;
  try {
    out.writer = static_cast<ProcessId>(
        std::stoul(token.substr(0, colon)));
    out.seq = std::stoull(token.substr(colon + 1));
  } catch (...) {
    return false;
  }
  return out.seq != 0;  // "w:0" would collide with the initial tag
}

}  // namespace

std::string dump_history(const History& history) {
  std::ostringstream os;
  os << "# asnap history v1\n";
  os << "words " << history.num_words << "\n";
  for (const UpdateOp& u : history.updates) {
    os << "U " << u.proc << " " << u.word << " " << u.tag.writer << " "
       << u.tag.seq << " " << u.inv << " " << u.res << "\n";
  }
  for (const ScanOp& s : history.scans) {
    os << "S " << s.proc << " " << s.inv << " " << s.res;
    for (const Tag& t : s.view) os << " " << tag_to_string(t);
    os << "\n";
  }
  return os.str();
}

std::optional<History> parse_history(const std::string& text,
                                     std::string* error) {
  const auto fail = [&](const std::string& msg) -> std::optional<History> {
    if (error != nullptr) *error = msg;
    return std::nullopt;
  };

  History history;
  bool have_words = false;
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string kind;
    if (!(ls >> kind)) continue;  // blank

    const std::string where = " (line " + std::to_string(line_no) + ")";
    if (kind == "words") {
      if (!(ls >> history.num_words) || history.num_words == 0) {
        return fail("bad words line" + where);
      }
      have_words = true;
    } else if (kind == "U") {
      if (!have_words) return fail("U before words" + where);
      UpdateOp u;
      if (!(ls >> u.proc >> u.word >> u.tag.writer >> u.tag.seq >> u.inv >>
            u.res)) {
        return fail("bad update line" + where);
      }
      if (u.tag.seq == 0) return fail("update with seq 0" + where);
      history.updates.push_back(u);
    } else if (kind == "S") {
      if (!have_words) return fail("S before words" + where);
      ScanOp s;
      if (!(ls >> s.proc >> s.inv >> s.res)) {
        return fail("bad scan line" + where);
      }
      std::string token;
      while (ls >> token) {
        Tag tag;
        if (!parse_tag(token, tag)) {
          return fail("bad tag '" + token + "'" + where);
        }
        s.view.push_back(tag);
      }
      if (s.view.size() != history.num_words) {
        return fail("scan view width mismatch" + where);
      }
      history.scans.push_back(std::move(s));
    } else {
      return fail("unknown record '" + kind + "'" + where);
    }
  }
  if (!have_words) return fail("missing words header");
  return history;
}

}  // namespace asnap::lin
