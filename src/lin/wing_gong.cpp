#include "lin/wing_gong.hpp"

#include <algorithm>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/assert.hpp"

namespace asnap::lin {
namespace {

struct Op {
  bool is_scan = false;
  std::size_t word = 0;           // updates only
  Tag tag;                        // updates only
  const std::vector<Tag>* view = nullptr;  // scans only
  Time inv = 0;
  Time res = 0;
};

// Full (mask, memory) key — exact, so a memo hit can never cause a spurious
// "not linearizable" verdict the way a truncated hash could.
struct StateKey {
  std::uint64_t mask;
  std::vector<Tag> mem;
  bool operator==(const StateKey&) const = default;
};

struct StateKeyHash {
  std::size_t operator()(const StateKey& k) const {
    std::uint64_t h = k.mask;
    for (const Tag& t : k.mem) {
      const std::uint64_t v = (static_cast<std::uint64_t>(t.writer) << 32) ^
                              t.seq;
      h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
    }
    return static_cast<std::size_t>(h);
  }
};

class Searcher {
 public:
  Searcher(std::vector<Op> ops, std::size_t words)
      : ops_(std::move(ops)), mem_(words, Tag{}) {}

  bool search() { return dfs(0); }

 private:
  bool dfs(std::uint64_t mask) {
    const std::uint64_t full = (ops_.size() == 64)
                                   ? ~0ULL
                                   : ((1ULL << ops_.size()) - 1);
    if (mask == full) return true;
    if (!visited_.insert(StateKey{mask, mem_}).second) return false;

    // Minimal pending response bounds which ops may be linearized next.
    Time min_res = ~Time{0};
    for (std::size_t i = 0; i < ops_.size(); ++i) {
      if (mask & (1ULL << i)) continue;
      min_res = std::min(min_res, ops_[i].res);
    }

    for (std::size_t i = 0; i < ops_.size(); ++i) {
      if (mask & (1ULL << i)) continue;
      const Op& op = ops_[i];
      if (op.inv > min_res) continue;  // some pending op finished before it
      if (op.is_scan) {
        if (*op.view != mem_) continue;  // view must match abstract state
        if (dfs(mask | (1ULL << i))) return true;
      } else {
        const Tag saved = mem_[op.word];
        mem_[op.word] = op.tag;
        if (dfs(mask | (1ULL << i))) return true;
        mem_[op.word] = saved;
      }
    }
    return false;
  }

  std::vector<Op> ops_;
  std::vector<Tag> mem_;
  std::unordered_set<StateKey, StateKeyHash> visited_;
};

}  // namespace

WgVerdict wing_gong_check(const History& history, std::size_t max_ops) {
  const std::size_t n = history.total_ops();
  if (n > std::min<std::size_t>(max_ops, 62)) return WgVerdict::kTooLarge;

  std::vector<Op> ops;
  ops.reserve(n);
  for (const UpdateOp& u : history.updates) {
    ops.push_back(Op{false, u.word, u.tag, nullptr, u.inv, u.res});
  }
  for (const ScanOp& s : history.scans) {
    // Partial views (shard-local scans) are outside this oracle's model of a
    // full-width Scan; give no verdict rather than a false rejection.
    if (s.word_base != 0) return WgVerdict::kTooLarge;
    if (s.view.size() != history.num_words) {
      return WgVerdict::kNotLinearizable;
    }
    ops.push_back(Op{true, 0, Tag{}, &s.view, s.inv, s.res});
  }

  Searcher searcher(std::move(ops), history.num_words);
  return searcher.search() ? WgVerdict::kLinearizable
                           : WgVerdict::kNotLinearizable;
}

}  // namespace asnap::lin
