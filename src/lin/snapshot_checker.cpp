#include "lin/snapshot_checker.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <sstream>
#include <vector>

#include "common/assert.hpp"

namespace asnap::lin {
namespace {

// ---------------------------------------------------------------------------
// Constraint digraph with O(N) real-time encoding.
//
// Node layout: [0, N)         — operations
//              [N, 2N)        — time nodes, one per operation, sorted by inv
// Edges:   T_k -> T_{k+1}                 (time advances)
//          T_k -> op(k)                   (an op may start at its inv point)
//          op  -> T_j, j = first time node with inv > res(op)
//          reads-from edges supplied by the caller
// A path op X ->* op Y through the chain exists iff res(X) < inv(Y),
// so cycles in this graph are exactly violations of (real-time + forced)
// precedence.
// ---------------------------------------------------------------------------
class PrecedenceGraph {
 public:
  struct Interval {
    Time inv;
    Time res;
  };

  explicit PrecedenceGraph(std::vector<Interval> intervals)
      : intervals_(std::move(intervals)), n_(intervals_.size()) {
    adj_.assign(2 * n_, {});
    by_inv_.resize(n_);
    for (std::size_t i = 0; i < n_; ++i) by_inv_[i] = i;
    std::sort(by_inv_.begin(), by_inv_.end(), [&](std::size_t a, std::size_t b) {
      return intervals_[a].inv < intervals_[b].inv;
    });
    sorted_invs_.resize(n_);
    for (std::size_t k = 0; k < n_; ++k) {
      sorted_invs_[k] = intervals_[by_inv_[k]].inv;
    }
    for (std::size_t k = 0; k < n_; ++k) {
      if (k + 1 < n_) add_edge(time_node(k), time_node(k + 1));
      add_edge(time_node(k), by_inv_[k]);
    }
    for (std::size_t i = 0; i < n_; ++i) {
      // First time node whose inv exceeds res(i).
      const auto it = std::upper_bound(sorted_invs_.begin(),
                                       sorted_invs_.end(), intervals_[i].res);
      if (it != sorted_invs_.end()) {
        const std::size_t k =
            static_cast<std::size_t>(it - sorted_invs_.begin());
        add_edge(i, time_node(k));
      }
    }
  }

  /// Forced precedence: operation `before` serializes before `after`.
  void add_precedence(std::size_t before, std::size_t after) {
    ASNAP_ASSERT(before < n_ && after < n_);
    add_edge(before, after);
  }

  /// True iff the graph is acyclic (Kahn's algorithm).
  bool acyclic() const {
    const std::size_t total = 2 * n_;
    std::vector<std::uint32_t> indegree(total, 0);
    for (const auto& edges : adj_) {
      for (std::size_t to : edges) ++indegree[to];
    }
    std::vector<std::size_t> ready;
    ready.reserve(total);
    for (std::size_t v = 0; v < total; ++v) {
      if (indegree[v] == 0) ready.push_back(v);
    }
    std::size_t visited = 0;
    while (!ready.empty()) {
      const std::size_t v = ready.back();
      ready.pop_back();
      ++visited;
      for (std::size_t to : adj_[v]) {
        if (--indegree[to] == 0) ready.push_back(to);
      }
    }
    return visited == total;
  }

 private:
  std::size_t time_node(std::size_t k) const { return n_ + k; }
  void add_edge(std::size_t from, std::size_t to) { adj_[from].push_back(to); }

  std::vector<Interval> intervals_;
  std::size_t n_;
  std::vector<std::vector<std::size_t>> adj_;
  std::vector<std::size_t> by_inv_;  ///< op index by ascending inv
  std::vector<Time> sorted_invs_;
};

std::string describe_scan(const ScanOp& scan) {
  std::ostringstream os;
  os << "scan by P" << scan.proc << " [" << scan.inv << "," << scan.res << ")";
  return os.str();
}

/// Updates of one word, indexed by position in the word's write order.
struct WordWrites {
  // updates_by_seq[s-1] = index (into history.updates) of the write with
  // per-word position s. Only meaningful when the per-word order is total
  // (single-writer case).
  std::vector<std::size_t> by_seq;
};

}  // namespace

// ---------------------------------------------------------------------------
// Single-writer exact check
// ---------------------------------------------------------------------------

CheckResult check_single_writer(const History& history) {
  const std::size_t words = history.num_words;

  // --- Well-formedness + per-word write order -----------------------------
  std::vector<WordWrites> writes(words);
  {
    // Updates by one process are sequential; order them by invocation.
    std::vector<std::size_t> order(history.updates.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return history.updates[a].inv < history.updates[b].inv;
    });
    for (std::size_t idx : order) {
      const UpdateOp& u = history.updates[idx];
      if (u.word >= words) return "update to out-of-range word";
      if (u.word != u.proc) {
        return "single-writer checker: process " + std::to_string(u.proc) +
               " wrote word " + std::to_string(u.word);
      }
      if (u.tag.writer != u.proc) return "update tag writer mismatch";
      WordWrites& w = writes[u.word];
      if (u.tag.seq != w.by_seq.size() + 1) {
        return "updates by P" + std::to_string(u.proc) +
               " have non-consecutive sequence numbers";
      }
      w.by_seq.push_back(idx);
    }
  }

  // A scan's view may be partial (word_base > 0 or a narrower width, e.g. a
  // shard-local scan): it constrains the scan only relative to the covered
  // words, which keeps the check exact — uncovered words contribute no
  // forced edges, so any linearization of the constrained graph extends to
  // them freely.
  for (const ScanOp& s : history.scans) {
    if (!s.covers(words)) {
      return describe_scan(s) + ": view exceeds the word range";
    }
    for (std::size_t k = 0; k < s.view.size(); ++k) {
      const std::size_t j = s.word_base + k;
      const Tag& t = s.view[k];
      if (t.is_initial()) continue;
      if (t.writer != j) {
        return describe_scan(s) + ": word " + std::to_string(j) +
               " holds a tag by P" + std::to_string(t.writer);
      }
      if (t.seq > writes[j].by_seq.size()) {
        return describe_scan(s) + ": word " + std::to_string(j) +
               " holds tag seq " + std::to_string(t.seq) +
               " which was never written";
      }
    }
  }

  // --- Constraint graph ----------------------------------------------------
  // Node ids: updates first, then scans.
  const std::size_t num_updates = history.updates.size();
  std::vector<PrecedenceGraph::Interval> intervals;
  intervals.reserve(history.total_ops());
  for (const UpdateOp& u : history.updates) intervals.push_back({u.inv, u.res});
  for (const ScanOp& s : history.scans) intervals.push_back({s.inv, s.res});

  PrecedenceGraph graph(std::move(intervals));

  for (std::size_t si = 0; si < history.scans.size(); ++si) {
    const ScanOp& s = history.scans[si];
    const std::size_t scan_node = num_updates + si;
    for (std::size_t k = 0; k < s.view.size(); ++k) {
      const std::size_t j = s.word_base + k;
      const Tag& t = s.view[k];
      const std::uint64_t seq = t.seq;
      if (seq > 0) {
        graph.add_precedence(writes[j].by_seq[seq - 1], scan_node);
      }
      if (seq < writes[j].by_seq.size()) {
        graph.add_precedence(scan_node, writes[j].by_seq[seq]);
      }
    }
  }

  if (!graph.acyclic()) {
    return std::string(
        "no serialization exists: precedence constraints are cyclic "
        "(a scan's view is inconsistent with real-time order)");
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Multi-writer forced-edge check (sound, not complete)
// ---------------------------------------------------------------------------

CheckResult check_multi_writer_forced(const History& history) {
  const std::size_t words = history.num_words;
  const std::size_t num_updates = history.updates.size();

  // Map tag -> update index, and collect each process's writes per word in
  // invocation order (same-writer same-word order is forced).
  std::map<std::pair<ProcessId, std::uint64_t>, std::size_t> by_tag;
  std::map<std::pair<ProcessId, std::size_t>, std::vector<std::size_t>>
      writer_word_writes;
  {
    std::vector<std::size_t> order(num_updates);
    for (std::size_t i = 0; i < num_updates; ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return history.updates[a].inv < history.updates[b].inv;
    });
    for (std::size_t idx : order) {
      const UpdateOp& u = history.updates[idx];
      if (u.word >= words) return "update to out-of-range word";
      if (u.tag.is_initial()) return "update carries the initial tag";
      const auto [it, inserted] =
          by_tag.emplace(std::make_pair(u.tag.writer, u.tag.seq), idx);
      if (!inserted) return "duplicate update tag";
      writer_word_writes[{u.proc, u.word}].push_back(idx);
    }
  }

  std::vector<PrecedenceGraph::Interval> intervals;
  intervals.reserve(history.total_ops());
  for (const UpdateOp& u : history.updates) intervals.push_back({u.inv, u.res});
  for (const ScanOp& s : history.scans) intervals.push_back({s.inv, s.res});
  PrecedenceGraph graph(std::move(intervals));

  for (std::size_t si = 0; si < history.scans.size(); ++si) {
    const ScanOp& s = history.scans[si];
    if (!s.covers(words)) {
      return describe_scan(s) + ": view exceeds the word range";
    }
    const std::size_t scan_node = num_updates + si;
    for (std::size_t vi = 0; vi < s.view.size(); ++vi) {
      const std::size_t k = s.word_base + vi;
      const Tag& t = s.view[vi];
      if (t.is_initial()) {
        // The scan precedes every write to word k by any single writer's
        // FIRST write? Not forced in general (another writer's value could
        // have been overwritten back?) — values are unique, so an initial
        // view of word k forces the scan before every write to k.
        for (const auto& [key, idxs] : writer_word_writes) {
          if (key.second == k && !idxs.empty()) {
            graph.add_precedence(scan_node, idxs.front());
          }
        }
        continue;
      }
      const auto it = by_tag.find({t.writer, t.seq});
      if (it == by_tag.end()) {
        return describe_scan(s) + ": word " + std::to_string(k) +
               " holds tag (P" + std::to_string(t.writer) + "," +
               std::to_string(t.seq) + ") never written";
      }
      const UpdateOp& u = history.updates[it->second];
      if (u.word != k) {
        return describe_scan(s) + ": word " + std::to_string(k) +
               " holds a tag written to word " + std::to_string(u.word);
      }
      // Forced: the observed write precedes the scan...
      graph.add_precedence(it->second, scan_node);
      // ...and the scan precedes the same writer's NEXT write to this word
      // (otherwise that later write — which follows the observed one in
      // every linearization — would already have overwritten word k).
      const auto& mine = writer_word_writes[{u.proc, k}];
      const auto pos = std::find(mine.begin(), mine.end(), it->second);
      ASNAP_ASSERT(pos != mine.end());
      if (pos + 1 != mine.end()) {
        graph.add_precedence(scan_node, *(pos + 1));
      }
    }
  }

  if (!graph.acyclic()) {
    return std::string(
        "multi-writer violation: forced precedence constraints are cyclic");
  }
  return std::nullopt;
}

}  // namespace asnap::lin
