// Polynomial-time linearizability checkers for snapshot histories.
//
// check_single_writer() — exact (sound AND complete) for single-writer
// histories, i.e. word j is written only by process j. Why completeness
// holds: with unique tags and a single writer per word, every scan's
// position relative to EVERY update of word j is forced — the scan that
// returned (j, s) must serialize after update (j, s) and before update
// (j, s+1). All constraints are therefore simple precedence edges
// (no disjunctions), and a linearization exists iff the constraint digraph
//
//      real-time edges  (res(X) < inv(Y)  =>  X -> Y)
//    + reads-from edges (U_{j,s} -> S -> U_{j,s+1} for each word j)
//
// is acyclic. Real-time edges are encoded in O(N) using a chain of
// time-nodes (one per invocation instant, sorted) instead of O(N^2)
// explicit edges.
//
// check_multi_writer_forced() — sound but not complete for multi-writer
// histories: with several writers per word, a scan's order against writes
// it did NOT observe is not forced, so only forced edges are checked
// (observed reads-from + same-writer order + real time). Any cycle is a
// genuine violation; absence of cycles does not prove linearizability.
// Small multi-writer histories are checked exactly by wing_gong.hpp.
#pragma once

#include <optional>
#include <string>

#include "lin/history.hpp"

namespace asnap::lin {

/// Result of a check: empty optional means the history is accepted;
/// otherwise a human-readable description of the violation found.
using CheckResult = std::optional<std::string>;

/// Exact check for single-writer snapshot histories (word j written only by
/// process j, tags (j, 1), (j, 2), ... in order). Also validates that the
/// history is well-formed (tags in range, views within the word range).
/// Scans may be partial (ScanOp::word_base + a narrower view, e.g.
/// shard-local scans from src/shard/): a partial view only forces edges for
/// its covered words, which preserves both soundness and completeness.
CheckResult check_single_writer(const History& history);

/// Sound (violation-only) check for multi-writer snapshot histories.
CheckResult check_multi_writer_forced(const History& history);

}  // namespace asnap::lin
