#include "spec/sws_automaton.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/assert.hpp"

namespace asnap::spec {

// ---------------------------------------------------------------------------
// SwsAutomaton — the literal steps of Figure 1.
// ---------------------------------------------------------------------------

void SwsAutomaton::update_request(ProcessId i, lin::Tag v) {
  ASNAP_ASSERT_MSG(interface_[i].kind == InterfaceVar::Kind::kBottom,
                   "well-formedness: request while an operation is pending");
  interface_[i].kind = InterfaceVar::Kind::kUpdateRequest;
  interface_[i].update_value = v;
}

void SwsAutomaton::scan_request(ProcessId i) {
  ASNAP_ASSERT_MSG(interface_[i].kind == InterfaceVar::Kind::kBottom,
                   "well-formedness: request while an operation is pending");
  interface_[i].kind = InterfaceVar::Kind::kScanRequest;
}

bool SwsAutomaton::update_enabled(ProcessId i) const {
  return interface_[i].kind == InterfaceVar::Kind::kUpdateRequest;
}

void SwsAutomaton::update(ProcessId i) {
  ASNAP_ASSERT(update_enabled(i));
  mem_[i] = interface_[i].update_value;  // Effect: Mem[i] := v
  interface_[i].kind = InterfaceVar::Kind::kUpdateReturn;
}

bool SwsAutomaton::scan_enabled(ProcessId i) const {
  return interface_[i].kind == InterfaceVar::Kind::kScanRequest;
}

void SwsAutomaton::scan(ProcessId i) {
  ASNAP_ASSERT(scan_enabled(i));
  interface_[i].kind = InterfaceVar::Kind::kScanReturn;
  interface_[i].scan_view = mem_;  // Effect: H_i := ScanReturn_i(Mem)
}

bool SwsAutomaton::update_return_enabled(ProcessId i) const {
  return interface_[i].kind == InterfaceVar::Kind::kUpdateReturn;
}

void SwsAutomaton::update_return(ProcessId i) {
  ASNAP_ASSERT(update_return_enabled(i));
  interface_[i].kind = InterfaceVar::Kind::kBottom;
}

bool SwsAutomaton::scan_return_enabled(ProcessId i) const {
  return interface_[i].kind == InterfaceVar::Kind::kScanReturn;
}

std::vector<lin::Tag> SwsAutomaton::scan_return(ProcessId i) {
  ASNAP_ASSERT(scan_return_enabled(i));
  interface_[i].kind = InterfaceVar::Kind::kBottom;
  return std::move(interface_[i].scan_view);
}

// ---------------------------------------------------------------------------
// Behavior membership
// ---------------------------------------------------------------------------
//
// Search formulation: order the interface events by their (unique) logical
// timestamps. Between a request and its return, the operation's internal
// action must fire exactly once. We search over firing orders: process the
// timeline event by event; at any point, any pending operation whose
// request has been consumed may fire its internal action. A return event is
// admissible only if the internal action already fired (and, for scans,
// produced exactly the recorded view).
//
// Equivalent to Wing-Gong linearizability by construction of SWS — tests
// assert the equivalence on randomized histories (checker triangulation).

namespace {

struct Op {
  bool is_scan;
  ProcessId proc;
  std::size_t word;
  lin::Tag tag;
  const std::vector<lin::Tag>* view;
  lin::Time inv;
  lin::Time res;
};

struct SearchState {
  std::uint64_t requested = 0;  // bitmask: request event passed
  std::uint64_t fired = 0;      // bitmask: internal action fired
  std::vector<lin::Tag> mem;

  bool operator==(const SearchState&) const = default;
};

struct SearchStateHash {
  std::size_t operator()(const SearchState& s) const {
    std::uint64_t h = s.requested * 0x9E3779B97F4A7C15ULL ^ s.fired;
    for (const lin::Tag& t : s.mem) {
      const std::uint64_t v =
          (static_cast<std::uint64_t>(t.writer) << 32) ^ t.seq;
      h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
    }
    return static_cast<std::size_t>(h);
  }
};

class BehaviorSearch {
 public:
  BehaviorSearch(std::vector<Op> ops, std::size_t words)
      : ops_(std::move(ops)) {
    // Timeline: (time, is_request, op index), sorted by time.
    for (std::size_t i = 0; i < ops_.size(); ++i) {
      timeline_.push_back({ops_[i].inv, true, i});
      timeline_.push_back({ops_[i].res, false, i});
    }
    std::sort(timeline_.begin(), timeline_.end(),
              [](const Event& a, const Event& b) { return a.time < b.time; });
    initial_.mem.assign(words, lin::Tag{});
  }

  bool accepted() { return dfs(0, initial_); }

 private:
  struct Event {
    lin::Time time;
    bool is_request;
    std::size_t op;
  };

  bool dfs(std::size_t event_index, const SearchState& state) {
    if (event_index == timeline_.size()) return true;
    if (!visited_.emplace(event_index, state).second) return false;

    const Event& event = timeline_[event_index];
    const std::uint64_t bit = 1ULL << event.op;

    if (event.is_request) {
      SearchState next = state;
      next.requested |= bit;
      return dfs_with_firings(event_index + 1, next);
    }
    // Return event: the internal action must have fired by now.
    if ((state.fired & bit) == 0) {
      // Try firing pending actions (including this one) first.
      return try_fire_then_retry(event_index, state);
    }
    return dfs_with_firings(event_index + 1, state);
  }

  /// At the current point, optionally fire any subset/order of pending
  /// internal actions, then continue with the next event. Firing order
  /// matters only through memory effects, so plain DFS over single firings
  /// with memoization suffices.
  bool dfs_with_firings(std::size_t event_index, const SearchState& state) {
    if (dfs(event_index, state)) return true;
    return try_fire_then_retry(event_index, state);
  }

  bool try_fire_then_retry(std::size_t event_index, const SearchState& state) {
    for (std::size_t i = 0; i < ops_.size(); ++i) {
      const std::uint64_t bit = 1ULL << i;
      if ((state.requested & bit) == 0 || (state.fired & bit) != 0) continue;
      const Op& op = ops_[i];
      SearchState next = state;
      next.fired |= bit;
      if (op.is_scan) {
        if (*op.view != state.mem) continue;  // Scan_i must match Mem
      } else {
        next.mem[op.word] = op.tag;  // Update_i effect
      }
      if (dfs(event_index, next)) return true;
    }
    return false;
  }

  struct PairHash {
    std::size_t operator()(
        const std::pair<std::size_t, SearchState>& p) const {
      return p.first * 1000003 + SearchStateHash{}(p.second);
    }
  };

  std::vector<Op> ops_;
  std::vector<Event> timeline_;
  SearchState initial_;
  std::unordered_set<std::pair<std::size_t, SearchState>, PairHash> visited_;
};

}  // namespace

std::optional<bool> sws_accepts(const lin::History& history,
                                std::size_t max_ops) {
  const std::size_t n = history.total_ops();
  if (n > std::min<std::size_t>(max_ops, 62)) return std::nullopt;

  std::vector<Op> ops;
  ops.reserve(n);
  for (const lin::UpdateOp& u : history.updates) {
    if (u.word >= history.num_words) return false;
    ops.push_back(Op{false, u.proc, u.word, u.tag, nullptr, u.inv, u.res});
  }
  for (const lin::ScanOp& s : history.scans) {
    // SWS models full-width scans only; give no verdict on partial views.
    if (s.word_base != 0) return std::nullopt;
    if (s.view.size() != history.num_words) return false;
    ops.push_back(Op{true, s.proc, 0, lin::Tag{}, &s.view, s.inv, s.res});
  }
  BehaviorSearch search(std::move(ops), history.num_words);
  return search.accepted();
}

}  // namespace asnap::spec
