// Figure 1 of the paper, executable: the SWS I/O automaton that DEFINES
// single-writer atomic snapshot memory.
//
// "An automaton A implements a single-writer atomic snapshot memory
//  provided ... every well-formed behavior of A is also a behavior of SWS."
//
// States: an n-entry array Mem plus per-process interface variables H_i
// holding a pending action or ⊥. Input actions UpdateRequest_i(v) /
// ScanRequest_i store themselves in H_i; the INTERNAL actions Update_i(v)
// and Scan_i(v_1..v_n) do the real work at a single atomic instant; output
// actions UpdateReturn_i / ScanReturn_i(v̄) empty H_i.
//
// This module provides:
//   * SwsAutomaton — the literal transition system (steps, preconditions,
//     effects), usable for random walks and enabled-action queries;
//   * sws_accepts() — decides whether a recorded concurrent history is a
//     behavior of SWS, by searching over placements of the internal
//     actions. This is the definition-level correctness check (experiment
//     E1); lin::wing_gong_check answers the same question through the
//     linearizability lens, and tests assert the two decisions coincide.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/config.hpp"
#include "lin/history.hpp"

namespace asnap::spec {

/// The pending-interface variable H_i of Figure 1.
struct InterfaceVar {
  enum class Kind : std::uint8_t {
    kBottom,          ///< ⊥ — idle
    kUpdateRequest,   ///< UpdateRequest_i(v) stored, Update_i enabled
    kUpdateReturn,    ///< Update_i fired, UpdateReturn_i enabled
    kScanRequest,     ///< ScanRequest_i stored, Scan_i enabled
    kScanReturn,      ///< Scan_i fired, ScanReturn_i(v̄) enabled
  };
  Kind kind = Kind::kBottom;
  lin::Tag update_value;            ///< for kUpdateRequest
  std::vector<lin::Tag> scan_view;  ///< for kScanReturn
};

/// The SWS automaton over Value = lin::Tag (unique values make behavior
/// checking tractable; any value set works for the automaton itself).
class SwsAutomaton {
 public:
  explicit SwsAutomaton(std::size_t n)
      : mem_(n, lin::Tag{}), interface_(n) {}

  std::size_t size() const { return mem_.size(); }
  const std::vector<lin::Tag>& memory() const { return mem_; }
  const InterfaceVar& interface(ProcessId i) const { return interface_[i]; }

  // --- input actions (always enabled, per Figure 1) ------------------------
  void update_request(ProcessId i, lin::Tag v);
  void scan_request(ProcessId i);

  // --- internal actions (preconditions checked) ----------------------------
  bool update_enabled(ProcessId i) const;
  void update(ProcessId i);  ///< Mem[i] := v; H_i := UpdateReturn_i

  bool scan_enabled(ProcessId i) const;
  void scan(ProcessId i);  ///< H_i := ScanReturn_i(Mem)

  // --- output actions -------------------------------------------------------
  bool update_return_enabled(ProcessId i) const;
  void update_return(ProcessId i);

  bool scan_return_enabled(ProcessId i) const;
  /// Returns the view carried by ScanReturn_i(v_1..v_n).
  std::vector<lin::Tag> scan_return(ProcessId i);

 private:
  std::vector<lin::Tag> mem_;
  std::vector<InterfaceVar> interface_;
};

/// Decides whether `history` is a behavior of SWS: is there a placement of
/// each operation's internal action within its [inv, res] interval such
/// that the resulting sequence is an execution of the automaton and every
/// ScanReturn carries exactly the recorded view? Exhaustive with
/// memoization; histories above max_ops yield nullopt (no verdict).
std::optional<bool> sws_accepts(const lin::History& history,
                                std::size_t max_ops = 28);

}  // namespace asnap::spec
