// Log-bucketed histogram for latency and count distributions.
//
// HdrHistogram-style bucketing: values below 2^kSubBits get exact unit
// buckets; above that, each power-of-two octave is split into 2^kSubBits
// linear sub-buckets, so the relative quantization error is bounded by
// 2^-kSubBits (6.25% with kSubBits = 4) across the full uint64 range with a
// fixed 1024-counter footprint. That is the right trade for tracing: a p999
// over millions of scan latencies costs no allocation and no sample
// retention, unlike the sort-based percentiles in bench_scan_latency.
//
// percentile(q) returns the upper bound of the bucket containing the q-th
// sample, so the reported value is >= the true percentile and within the
// relative error bound above it (histogram_test checks this against a
// sorted reference).
//
// Not thread-safe; meters are per-thread or post-hoc (trace_analyze), and
// merge() folds them.
#pragma once

#include <array>
#include <bit>
#include <cstdint>

namespace asnap::trace {

class LogHistogram {
 public:
  static constexpr unsigned kSubBits = 4;
  static constexpr std::size_t kSub = std::size_t{1} << kSubBits;
  static constexpr std::size_t kBuckets = (64 - kSubBits + 1) << kSubBits;

  void record(std::uint64_t v) {
    ++counts_[bucket_of(v)];
    ++count_;
    sum_ += v;
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  /// Smallest recorded bucket upper bound covering at least fraction q of
  /// the samples. q in [0, 1]; q = 0.5 is the median. Returns 0 when empty.
  std::uint64_t percentile(double q) const {
    if (count_ == 0) return 0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    // ceil(q * count), clamped to [1, count]: rank of the target sample.
    auto rank = static_cast<std::uint64_t>(q * static_cast<double>(count_));
    if (static_cast<double>(rank) < q * static_cast<double>(count_)) ++rank;
    if (rank == 0) rank = 1;
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      seen += counts_[b];
      if (seen >= rank) {
        const std::uint64_t hi = bucket_high(b);
        return hi < max_ ? hi : max_;  // never report past the true max
      }
    }
    return max_;
  }

  void merge(const LogHistogram& other) {
    for (std::size_t b = 0; b < kBuckets; ++b) counts_[b] += other.counts_[b];
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.count_ != 0) {
      if (other.min_ < min_) min_ = other.min_;
      if (other.max_ > max_) max_ = other.max_;
    }
  }

  static std::size_t bucket_of(std::uint64_t v) {
    if (v < kSub) return static_cast<std::size_t>(v);
    const unsigned exp = 63 - static_cast<unsigned>(std::countl_zero(v));
    const auto sub = static_cast<std::size_t>((v >> (exp - kSubBits)) &
                                              (kSub - 1));
    return ((static_cast<std::size_t>(exp) - kSubBits + 1) << kSubBits) + sub;
  }

  /// Largest value mapping to bucket b (inclusive).
  static std::uint64_t bucket_high(std::size_t b) {
    if (b < kSub) return b;
    const unsigned exp = static_cast<unsigned>(b >> kSubBits) + kSubBits - 1;
    const std::uint64_t sub = b & (kSub - 1);
    const std::uint64_t low = (kSub + sub) << (exp - kSubBits);
    const std::uint64_t width = std::uint64_t{1} << (exp - kSubBits);
    return low + width - 1;
  }

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~std::uint64_t{0};
  std::uint64_t max_ = 0;
};

}  // namespace asnap::trace
