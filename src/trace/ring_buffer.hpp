// Per-thread SPSC trace ring: one writing thread, one draining collector.
//
// Requirements that shape the design:
//   * the producer is a protocol hot path — a push must be a handful of
//     relaxed stores, never a lock, never an allocation;
//   * the collector (exporter.hpp) drains buffers of OTHER threads, possibly
//     while those threads keep emitting, and must stay race-free under TSan;
//   * tracing must never block the traced algorithm, so a full ring
//     overwrites its oldest entries and counts them as dropped rather than
//     stalling the producer (the standard flight-recorder policy).
//
// Implementation: a power-of-two array of slots, each guarded by a per-slot
// seqlock (Boehm, "Can seqlocks get along with programming language memory
// models?"). The producer stamps a slot odd (write in progress), publishes
// the payload with relaxed stores, then stamps it even-for-this-lap with a
// release store; the head index is published with a release store so a
// drain's acquire load covers all completed slots. The consumer validates
// each slot's stamp before and after copying it out (with an acquire fence
// between payload loads and the re-check) and discards torn slots — a slot
// can tear only when the producer laps the consumer mid-copy, in which case
// the event was overwritten and is correctly reported as dropped. All slot
// words are relaxed atomics, so the race window is well-defined for the
// memory model (and silent for TSan) instead of undefined behaviour.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "trace/event.hpp"

namespace asnap::trace {

class SpscRing {
 public:
  /// `capacity` must be a power of two.
  explicit SpscRing(std::size_t capacity)
      : slots_(capacity), mask_(capacity - 1),
        shift_(std::countr_zero(capacity)) {
    ASNAP_ASSERT_MSG(capacity >= 2 && (capacity & (capacity - 1)) == 0,
                     "ring capacity must be a power of two");
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const { return slots_.size(); }

  /// Producer side; must only ever be called from one thread.
  void push(const TraceEvent& ev) {
    const std::uint64_t pos = head_.load(std::memory_order_relaxed);
    Slot& s = slots_[pos & mask_];
    // Stamp odd = write in progress. The release fence keeps the payload
    // stores below from being reordered above the odd stamp, so a reader
    // that misses the stamp cannot also see a consistent-looking payload.
    s.stamp.store(stamp_writing(pos), std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    s.ts.store(ev.ts_ns, std::memory_order_relaxed);
    s.a0.store(ev.a0, std::memory_order_relaxed);
    s.a1.store(ev.a1, std::memory_order_relaxed);
    s.meta.store(pack_meta(ev.kind, ev.pid), std::memory_order_relaxed);
    s.stamp.store(stamp_done(pos), std::memory_order_release);
    head_.store(pos + 1, std::memory_order_release);
  }

  struct DrainStats {
    std::uint64_t drained = 0;
    std::uint64_t dropped = 0;  ///< overwritten before this drain got to them
  };

  /// Consumer side; at most one concurrent drainer. Appends every event
  /// published since the previous drain to `out` (oldest first) and
  /// accounts events lost to overwriting. Safe to call while the producer
  /// is pushing: concurrently overwritten slots are detected via their
  /// stamps and counted as dropped.
  DrainStats drain(std::vector<TraceEvent>& out) {
    DrainStats stats;
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    std::uint64_t pos = cursor_;
    if (head > capacity() && pos < head - capacity()) {
      stats.dropped += (head - capacity()) - pos;  // lapped while idle
      pos = head - capacity();
    }
    for (; pos < head; ++pos) {
      Slot& s = slots_[pos & mask_];
      const std::uint64_t before = s.stamp.load(std::memory_order_acquire);
      if (before != stamp_done(pos)) {  // overwritten (or mid-overwrite)
        ++stats.dropped;
        continue;
      }
      TraceEvent ev;
      ev.ts_ns = s.ts.load(std::memory_order_relaxed);
      ev.a0 = s.a0.load(std::memory_order_relaxed);
      ev.a1 = s.a1.load(std::memory_order_relaxed);
      const std::uint64_t meta = s.meta.load(std::memory_order_relaxed);
      // Order the payload loads above before the validating re-read below.
      std::atomic_thread_fence(std::memory_order_acquire);
      const std::uint64_t after = s.stamp.load(std::memory_order_relaxed);
      if (after != before) {  // producer lapped us mid-copy: torn
        ++stats.dropped;
        continue;
      }
      ev.kind = unpack_kind(meta);
      ev.pid = unpack_pid(meta);
      out.push_back(ev);
      ++stats.drained;
    }
    cursor_ = head;
    dropped_total_.fetch_add(stats.dropped, std::memory_order_relaxed);
    return stats;
  }

  /// Total events lost to overwriting, accumulated across drains.
  std::uint64_t dropped() const {
    return dropped_total_.load(std::memory_order_relaxed);
  }

 private:
  struct alignas(8) Slot {
    std::atomic<std::uint64_t> stamp{0};  ///< seqlock: 0 = never written
    std::atomic<std::uint64_t> ts{0};
    std::atomic<std::uint64_t> a0{0};
    std::atomic<std::uint64_t> a1{0};
    std::atomic<std::uint64_t> meta{0};  ///< kind | pid packed
  };

  // A slot's lap L (= pos / capacity) stamps as 2L+1 while the write is in
  // flight and 2L+2 once complete, so every (lap, state) pair is distinct
  // and 0 is reserved for "never written".
  std::uint64_t stamp_writing(std::uint64_t pos) const {
    return 2 * (pos >> shift_) + 1;
  }
  std::uint64_t stamp_done(std::uint64_t pos) const {
    return 2 * (pos >> shift_) + 2;
  }

  static std::uint64_t pack_meta(EventKind kind, std::uint32_t pid) {
    return static_cast<std::uint64_t>(kind) |
           (static_cast<std::uint64_t>(pid) << 16);
  }
  static EventKind unpack_kind(std::uint64_t meta) {
    const auto raw = static_cast<std::uint16_t>(meta & 0xffff);
    return raw < static_cast<std::uint16_t>(EventKind::kKindCount)
               ? static_cast<EventKind>(raw)
               : EventKind::kNone;
  }
  static std::uint32_t unpack_pid(std::uint64_t meta) {
    return static_cast<std::uint32_t>(meta >> 16);
  }

  std::vector<Slot> slots_;
  const std::uint64_t mask_;
  const unsigned shift_;  ///< log2(capacity), for lap arithmetic
  std::atomic<std::uint64_t> head_{0};
  std::uint64_t cursor_ = 0;  ///< consumer-only drain position
  std::atomic<std::uint64_t> dropped_total_{0};
};

}  // namespace asnap::trace
