#include "trace/exporter.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>

#include "trace/ring_buffer.hpp"

namespace asnap::trace {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// One thread's ring plus its never-recycled trace tid.
struct ThreadRing {
  explicit ThreadRing(std::size_t capacity, std::uint32_t id)
      : ring(capacity), tid(id) {}
  SpscRing ring;
  std::uint32_t tid;
};

/// Owns every ring ever created; rings outlive their producer threads so
/// late drains still see a dead thread's tail.
struct Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadRing>> rings;
  std::uint32_t next_tid = 1;
  std::atomic<std::size_t> capacity{std::size_t{1} << 15};
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: emitters may run at exit
  return *r;
}

ThreadRing* register_thread_ring() {
  Registry& reg = registry();
  auto ring = std::make_unique<ThreadRing>(
      reg.capacity.load(std::memory_order_relaxed), 0);
  ThreadRing* raw = ring.get();
  std::lock_guard lock(reg.mu);
  raw->tid = reg.next_tid++;
  reg.rings.push_back(std::move(ring));
  return raw;
}

ThreadRing* this_thread_ring() {
  thread_local ThreadRing* ring = nullptr;
  if (ring == nullptr) ring = register_thread_ring();
  return ring;
}

}  // namespace

void emit(EventKind kind, std::uint32_t pid, std::uint64_t a0,
          std::uint64_t a1) {
  TraceEvent ev;
  ev.ts_ns = now_ns();
  ev.a0 = a0;
  ev.a1 = a1;
  ev.pid = pid;
  ev.kind = kind;
  this_thread_ring()->ring.push(ev);
}

void set_enabled(bool on) {
  g_trace_enabled.store(on, std::memory_order_relaxed);
}

void set_thread_buffer_capacity(std::size_t capacity) {
  ASNAP_ASSERT_MSG(capacity >= 2 && (capacity & (capacity - 1)) == 0,
                   "trace buffer capacity must be a power of two");
  registry().capacity.store(capacity, std::memory_order_relaxed);
}

Drained drain_all() {
  Drained out;
  Registry& reg = registry();
  std::lock_guard lock(reg.mu);
  for (auto& tr : reg.rings) {
    const std::size_t first = out.events.size();
    const SpscRing::DrainStats stats = tr->ring.drain(out.events);
    out.dropped += stats.dropped;
    for (std::size_t i = first; i < out.events.size(); ++i) {
      out.events[i].tid = tr->tid;
    }
  }
  std::stable_sort(out.events.begin(), out.events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  return out;
}

void discard_all() { (void)drain_all(); }

std::uint64_t total_dropped() {
  Registry& reg = registry();
  std::lock_guard lock(reg.mu);
  std::uint64_t dropped = 0;
  for (const auto& tr : reg.rings) dropped += tr->ring.dropped();
  return dropped;
}

const char* kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kNone: return "none";
    case EventKind::kScanBegin: return "scan_begin";
    case EventKind::kScanEnd: return "scan_end";
    case EventKind::kCollectBegin: return "collect_begin";
    case EventKind::kCollectEnd: return "collect_end";
    case EventKind::kDoubleCollectMatch: return "double_collect_match";
    case EventKind::kDoubleCollectMismatch: return "double_collect_mismatch";
    case EventKind::kMovedDetected: return "moved_detected";
    case EventKind::kViewBorrowed: return "view_borrowed";
    case EventKind::kUpdateBegin: return "update_begin";
    case EventKind::kUpdateEnd: return "update_end";
    case EventKind::kHandshakeToggle: return "handshake_toggle";
    case EventKind::kAbdRoundBegin: return "abd_round_begin";
    case EventKind::kAbdRetransmit: return "abd_retransmit";
    case EventKind::kAbdQuorumReached: return "abd_quorum_reached";
    case EventKind::kAbdRoundTimeout: return "abd_round_timeout";
    case EventKind::kAbdFastRead: return "abd_fast_read";
    case EventKind::kAbdFastFallback: return "abd_fast_fallback";
    case EventKind::kFaultDrop: return "fault_drop";
    case EventKind::kFaultDup: return "fault_dup";
    case EventKind::kFaultDelay: return "fault_delay";
    case EventKind::kSuspect: return "suspect";
    case EventKind::kTrust: return "trust";
    case EventKind::kRecoverBegin: return "recover_begin";
    case EventKind::kRecoverEnd: return "recover_end";
    case EventKind::kBreakerSkip: return "breaker_skip";
    case EventKind::kBreakerFailFast: return "breaker_fail_fast";
    case EventKind::kStaleEpochReply: return "stale_epoch_reply";
    case EventKind::kChaosAction: return "chaos_action";
    case EventKind::kLeaseGrant: return "lease_grant";
    case EventKind::kLeaseExpire: return "lease_expire";
    case EventKind::kLeaseSteal: return "lease_steal";
    case EventKind::kBatchFlush: return "batch_flush";
    case EventKind::kScanCacheHit: return "scan_cache_hit";
    case EventKind::kScanCacheMiss: return "scan_cache_miss";
    case EventKind::kScanCacheInvalidate: return "scan_cache_invalidate";
    case EventKind::kSvcShed: return "svc_shed";
    case EventKind::kNetDrop: return "net_drop";
    case EventKind::kNetDelay: return "net_delay";
    case EventKind::kNetReorder: return "net_reorder";
    case EventKind::kNetStall: return "net_stall";
    case EventKind::kNetReset: return "net_reset";
    case EventKind::kNetBlackhole: return "net_blackhole";
    case EventKind::kNetFlap: return "net_flap";
    case EventKind::kNetThrottle: return "net_throttle";
    case EventKind::kNetReconnectBackoff: return "net_reconnect_backoff";
    case EventKind::kShardRoute: return "shard_route";
    case EventKind::kShardLocalUpdate: return "shard_local_update";
    case EventKind::kShardLocalScan: return "shard_local_scan";
    case EventKind::kShardGlobalScanBegin: return "shard_global_scan_begin";
    case EventKind::kShardGlobalScanEnd: return "shard_global_scan_end";
    case EventKind::kShardConfirmFail: return "shard_confirm_fail";
    case EventKind::kMvccPublish: return "mvcc_publish";
    case EventKind::kMvccAcquire: return "mvcc_acquire";
    case EventKind::kMvccRetire: return "mvcc_retire";
    case EventKind::kMvccReclaim: return "mvcc_reclaim";
    case EventKind::kKindCount: break;
  }
  return "unknown";
}

bool is_begin_kind(EventKind kind) {
  switch (kind) {
    case EventKind::kScanBegin:
    case EventKind::kCollectBegin:
    case EventKind::kUpdateBegin:
    case EventKind::kAbdRoundBegin:
    case EventKind::kRecoverBegin:
    case EventKind::kShardGlobalScanBegin:
      return true;
    default:
      return false;
  }
}

bool is_end_kind(EventKind kind) {
  switch (kind) {
    case EventKind::kScanEnd:
    case EventKind::kCollectEnd:
    case EventKind::kUpdateEnd:
    case EventKind::kAbdQuorumReached:
    case EventKind::kAbdRoundTimeout:
    case EventKind::kRecoverEnd:
    case EventKind::kShardGlobalScanEnd:
      return true;
    default:
      return false;
  }
}

const char* duration_name(EventKind kind) {
  switch (kind) {
    case EventKind::kScanBegin:
    case EventKind::kScanEnd:
      return "scan";
    case EventKind::kCollectBegin:
    case EventKind::kCollectEnd:
      return "collect";
    case EventKind::kUpdateBegin:
    case EventKind::kUpdateEnd:
      return "update";
    case EventKind::kAbdRoundBegin:
    case EventKind::kAbdQuorumReached:
    case EventKind::kAbdRoundTimeout:
      return "abd_round";
    case EventKind::kRecoverBegin:
    case EventKind::kRecoverEnd:
      return "recover";
    case EventKind::kShardGlobalScanBegin:
    case EventKind::kShardGlobalScanEnd:
      return "global_scan";
    default:
      return nullptr;
  }
}

namespace {

/// Category string for the Chrome "cat" field, by protocol layer.
const char* kind_category(EventKind kind) {
  switch (kind) {
    case EventKind::kAbdRoundBegin:
    case EventKind::kAbdRetransmit:
    case EventKind::kAbdQuorumReached:
    case EventKind::kAbdRoundTimeout:
    case EventKind::kAbdFastRead:
    case EventKind::kAbdFastFallback:
      return "abd";
    case EventKind::kFaultDrop:
    case EventKind::kFaultDup:
    case EventKind::kFaultDelay:
    case EventKind::kSuspect:
    case EventKind::kTrust:
      return "net";
    case EventKind::kRecoverBegin:
    case EventKind::kRecoverEnd:
    case EventKind::kBreakerSkip:
    case EventKind::kBreakerFailFast:
    case EventKind::kStaleEpochReply:
      return "abd";
    case EventKind::kChaosAction:
      return "chaos";
    case EventKind::kLeaseGrant:
    case EventKind::kLeaseExpire:
    case EventKind::kLeaseSteal:
    case EventKind::kBatchFlush:
    case EventKind::kScanCacheHit:
    case EventKind::kScanCacheMiss:
    case EventKind::kScanCacheInvalidate:
    case EventKind::kSvcShed:
      return "svc";
    case EventKind::kShardRoute:
    case EventKind::kShardLocalUpdate:
    case EventKind::kShardLocalScan:
    case EventKind::kShardGlobalScanBegin:
    case EventKind::kShardGlobalScanEnd:
    case EventKind::kShardConfirmFail:
      return "shard";
    case EventKind::kMvccPublish:
    case EventKind::kMvccAcquire:
    case EventKind::kMvccRetire:
    case EventKind::kMvccReclaim:
      return "mvcc";
    default:
      return "snapshot";
  }
}

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

}  // namespace

bool write_chrome_trace(const std::string& path,
                        const std::vector<TraceEvent>& events) {
  FilePtr f(std::fopen(path.c_str(), "w"));
  if (!f) return false;
  std::fputs("{\"traceEvents\":[", f.get());
  bool first = true;
  for (const TraceEvent& ev : events) {
    const char* name = duration_name(ev.kind);
    const char* ph = "i";
    if (name != nullptr) {
      ph = is_begin_kind(ev.kind) ? "B" : "E";
    } else {
      name = kind_name(ev.kind);
    }
    // Chrome "ts" is in microseconds; keep sub-microsecond precision.
    std::fprintf(
        f.get(),
        "%s\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\",\"ts\":%.3f,"
        "\"pid\":%u,\"tid\":%u%s,\"args\":{\"kind\":\"%s\",\"a0\":%llu,"
        "\"a1\":%llu}}",
        first ? "" : ",", name, kind_category(ev.kind), ph,
        static_cast<double>(ev.ts_ns) / 1000.0, ev.pid, ev.tid,
        ph[0] == 'i' ? ",\"s\":\"t\"" : "", kind_name(ev.kind),
        static_cast<unsigned long long>(ev.a0),
        static_cast<unsigned long long>(ev.a1));
    first = false;
  }
  std::fputs("\n],\"displayTimeUnit\":\"ns\"}\n", f.get());
  return true;
}

bool write_jsonl(const std::string& path,
                 const std::vector<TraceEvent>& events) {
  FilePtr f(std::fopen(path.c_str(), "w"));
  if (!f) return false;
  for (const TraceEvent& ev : events) {
    std::fprintf(f.get(),
                 "{\"ts\":%llu,\"kind\":\"%s\",\"pid\":%u,\"tid\":%u,"
                 "\"a0\":%llu,\"a1\":%llu}\n",
                 static_cast<unsigned long long>(ev.ts_ns), kind_name(ev.kind),
                 ev.pid, ev.tid, static_cast<unsigned long long>(ev.a0),
                 static_cast<unsigned long long>(ev.a1));
  }
  return true;
}

Session::Session(std::string path, std::size_t buffer_capacity)
    : path_(std::move(path)) {
  if (path_.empty()) return;
  set_thread_buffer_capacity(buffer_capacity);
  discard_all();
  set_enabled(true);
}

Session::~Session() {
  if (path_.empty()) return;
  set_enabled(false);
  const Drained drained = drain_all();
  const bool jsonl =
      path_.size() >= 6 && path_.compare(path_.size() - 6, 6, ".jsonl") == 0;
  const bool ok = jsonl ? write_jsonl(path_, drained.events)
                        : write_chrome_trace(path_, drained.events);
  if (ok) {
    std::fprintf(stderr,
                 "trace: wrote %zu events to %s (%llu dropped by ring "
                 "overwrite)\n",
                 drained.events.size(), path_.c_str(),
                 static_cast<unsigned long long>(drained.dropped));
  } else {
    std::fprintf(stderr, "trace: FAILED to open %s\n", path_.c_str());
  }
}

}  // namespace asnap::trace
