// Protocol-event vocabulary of the tracing subsystem.
//
// The paper's arguments are event-level: Observation 1 is about a pair of
// collects reading equal sequence numbers, Observation 2 about a process
// observed moving twice (thrice for Figure 4), Lemmas 3.4/4.4 about the
// pigeonhole bound on double collects per scan. A TraceEvent makes exactly
// these protocol events first-class: each is a fixed-size record (timestamp,
// kind, acting process, two payload words) cheap enough to emit from the
// hot path into a per-thread ring buffer (ring_buffer.hpp) and merge into a
// Perfetto/chrome://tracing timeline afterwards (exporter.hpp).
//
// Two gates keep the cost honest:
//   * compile time — every emission site goes through ASNAP_TRACE_EVENT,
//     which compiles to nothing when the ASNAP_TRACE CMake option is OFF;
//   * run time — with tracing compiled in but not enabled (the default),
//     the macro is one relaxed atomic load and a predictable branch.
#pragma once

#include <atomic>
#include <cstdint>

namespace asnap::trace {

/// Every protocol event the subsystem knows about, across the whole stack:
/// snapshot cores (core/), the ABD quorum client (abd/), and the lossy
/// network adversary (net/).
enum class EventKind : std::uint16_t {
  kNone = 0,

  // -- snapshot cores (pid = the paper's process index P_i) -----------------
  kScanBegin,              ///< a0 = algorithm id (kAlgo*), a1 = n
  kScanEnd,                ///< a0 = double collects used, a1 = borrowed (0/1)
  kCollectBegin,           ///< a0 = double-collect attempts completed so far
  kCollectEnd,             ///< a0 = as kCollectBegin
  kDoubleCollectMatch,     ///< Observation 1 fired; a0 = attempts used
  kDoubleCollectMismatch,  ///< some register changed between the collects
  kMovedDetected,          ///< a0 = the process observed moving
  kViewBorrowed,           ///< Observation 2 fired; a0 = view's owner
  kUpdateBegin,            ///< a0 = word index (multi-writer) or seq hint
  kUpdateEnd,              ///< a0 = as kUpdateBegin
  kHandshakeToggle,        ///< updater flipped its handshake/toggle bits

  // -- ABD quorum client (pid = client node id) -----------------------------
  kAbdRoundBegin,     ///< a0 = request id, a1 = distinct replies needed
  kAbdRetransmit,     ///< a0 = request id
  kAbdQuorumReached,  ///< a0 = request id, a1 = replies accepted
  kAbdRoundTimeout,   ///< a0 = request id
  kAbdFastRead,       ///< write-back skipped; a0 = reg, a1 = ts returned
  kAbdFastFallback,   ///< a0 = reg, a1 = reason (kFastFallback*)

  // -- fault injector (pid = sending node id) -------------------------------
  kFaultDrop,   ///< a0 = destination node
  kFaultDup,    ///< a0 = destination node
  kFaultDelay,  ///< a0 = destination node, a1 = delay in microseconds

  // -- self-healing layer (failure detector / breaker / recovery) -----------
  kSuspect,          ///< pid = observer, a0 = suspected node, a1 = timeout us
  kTrust,            ///< pid = observer, a0 = re-trusted node (false alarm)
  kRecoverBegin,     ///< pid = recovering node, a0 = new incarnation epoch
  kRecoverEnd,       ///< pid = recovering node, a0 = 1 success / 0 failure
  kBreakerSkip,      ///< pid = client, a0 = suspected replica not transmitted
  kBreakerFailFast,  ///< pid = client, a0 = rid, a1 = plausibly-live replicas
  kStaleEpochReply,  ///< pid = client, a0 = responder, a1 = stale epoch
  kChaosAction,      ///< pid = 0, a0 = chaos::ActionKind, a1 = parameter

  // -- service layer (src/svc/): slot leases, batching, scan cache ----------
  kLeaseGrant,           ///< pid = slot, a0 = client id, a1 = new epoch
  kLeaseExpire,          ///< pid = slot, a0 = old holder, a1 = expired epoch
  kLeaseSteal,           ///< pid = slot, a0 = new holder, a1 = new epoch
  kBatchFlush,           ///< pid = slot, a0 = submits coalesced, a1 = last seq
  kScanCacheHit,         ///< pid = slot, a0 = cache generation served
  kScanCacheMiss,        ///< pid = slot, a0 = generation at miss
  kScanCacheInvalidate,  ///< pid = flushing slot, a0 = stale generation
  kSvcShed,              ///< pid = slot, a0 = op kind (1 update, 2 scan, 3 flush)

  // -- network chaos (src/net/chaos_proxy + hardened TcpBus) ----------------
  // pid = proxied link (replica index); a0 = direction for per-direction
  // faults (0 = client->replica, 1 = replica->client).
  kNetDrop,       ///< frame dropped; a1 = frame bytes
  kNetDelay,      ///< frame delayed; a1 = delay in microseconds
  kNetReorder,    ///< frame held and emitted after its successor
  kNetStall,      ///< mid-frame stall injected; a1 = stall milliseconds
  kNetReset,      ///< connection reset injected on this link
  kNetBlackhole,  ///< direction blackholed (asymmetric partition); a1 = on/off
  kNetFlap,       ///< link flap transition; a0 = 1 up / 0 down
  kNetThrottle,   ///< bandwidth throttle pause; a1 = sleep microseconds
  kNetReconnectBackoff,  ///< pid = 0, a0 = replica, a1 = armed cooldown ms

  // -- sharded fabric (src/shard/): hash routing + two-level global scans ---
  kShardRoute,            ///< pid = shard, a0 = client id, a1 = global slot
  kShardLocalUpdate,      ///< pid = shard, a0 = global word index
  kShardLocalScan,        ///< pid = shard, a0 = cache hit (0/1)
  kShardGlobalScanBegin,  ///< pid = 0, a0 = shard count, a1 = attempt cap
  kShardGlobalScanEnd,    ///< pid = 0, a0 = attempts used, a1 = sealed (0/1)
  kShardConfirmFail,      ///< pid = shard, a0 = gen at collect, a1 = at confirm

  // -- mvcc versioned publication (src/mvcc/ VersionGate, A4 backend) -------
  // pid = gate trace id (0 = the svc scan cache's gate). Grace-period
  // latency for a version = ts(kMvccReclaim) - ts(kMvccRetire) matched on
  // (pid, a0) — trace_analyze's mvcc section reports its percentiles.
  kMvccPublish,  ///< a0 = new version epoch, a1 = displaced outer count
  kMvccAcquire,  ///< a0 = acquired version epoch, a1 = outer count after
  kMvccRetire,   ///< version unlinked; a0 = its epoch, a1 = readers still out
  kMvccReclaim,  ///< refcount drained; a0 = its epoch, a1 = unlinking epoch

  kKindCount,
};

/// Algorithm ids carried in kScanBegin.a0 so an analyzer can apply the right
/// pigeonhole bound: n+1 double collects for A1/A2, 2n+1 for A3.
inline constexpr std::uint64_t kAlgoUnboundedSw = 1;  ///< Figure 2 (A1)
inline constexpr std::uint64_t kAlgoBoundedSw = 2;    ///< Figure 3 (A2)
inline constexpr std::uint64_t kAlgoBoundedMw = 3;    ///< Figure 4 (A3)
inline constexpr std::uint64_t kAlgoMvccGate = 4;     ///< A4 (no bound: 0 collects)

/// Reason codes carried in kAbdFastFallback.a1: why a fast read had to run
/// the write-back round after all.
inline constexpr std::uint64_t kFastFallbackDisagree = 1;  ///< quorum split on ts
inline constexpr std::uint64_t kFastFallbackGap = 2;       ///< replica gap / partial quorum evidence

/// Stable lower_snake_case name of a kind ("scan_begin", ...). Returns
/// "unknown" for out-of-range values (a torn slot that escaped validation).
const char* kind_name(EventKind kind);

/// One traced protocol event. 40 bytes; tid is assigned by the collector
/// when the per-thread ring buffers are drained, not by the emitter.
struct TraceEvent {
  std::uint64_t ts_ns = 0;            ///< steady_clock nanoseconds
  std::uint64_t a0 = 0;               ///< payload word (see EventKind docs)
  std::uint64_t a1 = 0;               ///< payload word
  std::uint32_t pid = 0;              ///< acting process / node id
  std::uint32_t tid = 0;              ///< trace thread id (collector-filled)
  EventKind kind = EventKind::kNone;
};

/// Master runtime switch. Inline so the disabled fast path is a single
/// relaxed load of one global, with no function call.
inline std::atomic<bool> g_trace_enabled{false};

inline bool enabled() {
  return g_trace_enabled.load(std::memory_order_relaxed);
}

/// Append one event to the calling thread's ring buffer (registering the
/// buffer on first use). Only called with tracing enabled; implemented in
/// exporter.cpp next to the buffer registry. Marked cold so the call and
/// its argument setup are laid out off the hot path: with tracing disabled,
/// an instrumentation site costs the relaxed load and a not-taken branch,
/// not the register pressure of a live call.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((cold))
#endif
void emit(EventKind kind, std::uint32_t pid, std::uint64_t a0 = 0,
          std::uint64_t a1 = 0);

}  // namespace asnap::trace

// Emission macro: all instrumentation sites in core/, abd/ and net/ go
// through this so a -DASNAP_TRACE=OFF build contains no tracing code at all.
#if defined(ASNAP_TRACE) && ASNAP_TRACE
#define ASNAP_TRACE_EVENT(kind, pid, ...)                        \
  do {                                                           \
    if (::asnap::trace::enabled()) [[unlikely]] {                \
      ::asnap::trace::emit((kind), (pid), ##__VA_ARGS__);        \
    }                                                            \
  } while (0)
#else
#define ASNAP_TRACE_EVENT(kind, pid, ...) ((void)0)
#endif
