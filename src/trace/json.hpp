// Minimal JSON reader for trace files (and the bench JSON lines).
//
// Scope: exactly what trace_analyze and the trace tests need to read back
// the subsystem's own output — objects, arrays, strings with the common
// escapes, numbers, booleans, null. Recursive descent over a string_view,
// values materialized into a small variant tree. Errors carry the byte
// offset so a malformed trace points at itself. Not a general-purpose JSON
// library (no \u surrogate pairs, no streaming); the writers in
// exporter.cpp never produce those.
#pragma once

#include <cctype>
#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace asnap::trace::json {

class Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() : type_(Type::kNull) {}
  explicit Value(bool b) : type_(Type::kBool), bool_(b) {}
  explicit Value(double d) : type_(Type::kNumber), num_(d) {}
  explicit Value(std::string s) : type_(Type::kString), str_(std::move(s)) {}
  explicit Value(Array a)
      : type_(Type::kArray), arr_(std::make_shared<Array>(std::move(a))) {}
  explicit Value(Object o)
      : type_(Type::kObject), obj_(std::make_shared<Object>(std::move(o))) {}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }

  bool as_bool() const { return bool_; }
  double as_number() const { return num_; }
  std::uint64_t as_u64() const { return static_cast<std::uint64_t>(num_); }
  const std::string& as_string() const { return str_; }
  const Array& as_array() const { return *arr_; }
  const Object& as_object() const { return *obj_; }

  /// Object member access; returns a shared null for missing keys so
  /// lookups chain without exceptions.
  const Value& operator[](const std::string& key) const {
    static const Value kNullValue;
    if (type_ != Type::kObject) return kNullValue;
    const auto it = obj_->find(key);
    return it == obj_->end() ? kNullValue : it->second;
  }
  bool has(const std::string& key) const {
    return type_ == Type::kObject && obj_->count(key) != 0;
  }

 private:
  Type type_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::shared_ptr<Array> arr_;
  std::shared_ptr<Object> obj_;
};

class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& what, std::size_t offset)
      : std::runtime_error(what + " at byte " + std::to_string(offset)),
        offset_(offset) {}
  std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

namespace detail {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse() {
    Value v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw ParseError(what, pos_);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return Value(string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Value(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Value(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Value();
      default: return number();
    }
  }

  Value object() {
    expect('{');
    Object members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(members));
    }
    for (;;) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      members.emplace(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Value(std::move(members));
    }
  }

  Value array() {
    expect('[');
    Array items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(items));
    }
    for (;;) {
      items.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Value(std::move(items));
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        default: fail("unsupported escape");
      }
    }
  }

  Value number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
          c == 'e' || c == 'E') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    try {
      return Value(std::stod(std::string(text_.substr(start, pos_ - start))));
    } catch (const std::exception&) {
      pos_ = start;
      fail("malformed number");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace detail

/// Parse one complete JSON document. Throws ParseError on malformed input.
inline Value parse(std::string_view text) {
  return detail::Parser(text).parse();
}

}  // namespace asnap::trace::json
