// Collector side of the tracing subsystem: thread-buffer registry, global
// drain, and export to Chrome trace-event JSON (loadable in Perfetto or
// chrome://tracing) or compact JSONL.
//
// Ownership model: the registry owns every per-thread ring for the lifetime
// of the process, so a thread may exit (and its dense thread-registry id be
// recycled) while its unexported events are still sitting in its ring — the
// collector can always drain them later. Each ring gets a never-recycled
// trace tid, which is what appears in the exported "tid" field.
//
// Chrome mapping (one timeline row per (pid, tid)):
//   * Begin/End kinds (scan, collect, update, abd_round) export as "B"/"E"
//     duration events, so scans nest visually inside updates (the embedded
//     scan) and collects inside scans — the paper's structure, on screen.
//   * Everything else (borrows, moved-detections, retransmits, fault
//     decisions, handshake toggles) exports as thread-scoped "i" instants.
//   * "pid" is the algorithm's process id, "tid" the emitting OS thread's
//     trace tid; args carry the kind name and payload words.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/event.hpp"

namespace asnap::trace {

// -- runtime control ---------------------------------------------------------

/// Turn event collection on or off. Enabling does not clear previously
/// collected events; use discard_all() for a fresh start.
void set_enabled(bool on);

/// Capacity (power of two) for per-thread rings created AFTER this call;
/// existing rings keep their size. Default: 1 << 15 events (~1.3 MiB).
void set_thread_buffer_capacity(std::size_t capacity);

// -- collection --------------------------------------------------------------

struct Drained {
  std::vector<TraceEvent> events;  ///< merged from all threads, by ts_ns
  std::uint64_t dropped = 0;       ///< ring-overwritten events, all threads
};

/// Drain every registered ring (consuming the events), stamp each event
/// with its ring's trace tid, and return the merge sorted by timestamp.
/// Call at quiescence for complete traces; calling while traced threads are
/// running is safe but concurrently-emitted events may land in the next
/// drain. Not reentrant: one drainer at a time.
Drained drain_all();

/// Drain and discard everything collected so far (test isolation).
void discard_all();

/// Events lost to ring overwriting so far (including not-yet-drained rings).
std::uint64_t total_dropped();

// -- export ------------------------------------------------------------------

/// Write Chrome trace-event JSON ({"traceEvents": [...]}). Returns false if
/// the file could not be opened.
bool write_chrome_trace(const std::string& path,
                        const std::vector<TraceEvent>& events);

/// Write one compact JSON object per line:
/// {"ts":..,"kind":"scan_begin","pid":0,"tid":1,"a0":..,"a1":..}
bool write_jsonl(const std::string& path,
                 const std::vector<TraceEvent>& events);

/// True for kinds exported as "B" (paired with a matching end kind).
bool is_begin_kind(EventKind kind);
/// True for kinds exported as "E".
bool is_end_kind(EventKind kind);
/// Shared duration-track name for paired kinds ("scan", "collect",
/// "update", "abd_round"); nullptr for instant kinds.
const char* duration_name(EventKind kind);

// -- one-stop bench/tool harness --------------------------------------------

/// RAII trace capture: enables tracing on construction, and on destruction
/// disables, drains and exports to `path` — Chrome JSON unless the path
/// ends in ".jsonl" — printing a one-line summary to stderr. An empty path
/// makes the session inert, so benches can pass their --trace flag through
/// unconditionally.
class Session {
 public:
  explicit Session(std::string path, std::size_t buffer_capacity = 1 << 15);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  bool active() const { return !path_.empty(); }

 private:
  std::string path_;
};

}  // namespace asnap::trace
