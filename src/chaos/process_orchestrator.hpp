// Process-level cluster orchestration: spawn real abd_replicad daemons,
// kill them with real signals, and bring them back.
//
// This is the `kill -9` counterpart of the in-process chaos stack. Where
// chaos/orchestrator.hpp drives net::SimNetwork crash()/recover() calls,
// ProcessCluster fork/exec()s one OS process per replica and injects:
//   * crashes  : SIGKILL — the kernel's fail-stop, nothing flushes;
//   * stalls   : SIGSTOP/SIGCONT — a live-but-frozen replica, the real
//                analog of a partitioned or GC-paused node (its TCP peers
//                see silence, not EOF);
// and a supervisor thread mirroring abd/supervisor.hpp: poll for dead
// children (waitpid WNOHANG), wait restart_delay, respawn. Recovery
// correctness lives in the daemon itself (WAL replay + epoch bump +
// majority resync) — the supervisor only restarts processes and records
// restart latencies.
//
// The same majority-safety discipline as chaos/schedule.hpp applies: the
// fault driver (tools/chaos_run --scenario real) consults unavailable()
// before injecting so down + stalled replicas never reach a majority —
// ABD's liveness precondition, deliberately maintained so every timed-out
// operation still indicates a bug budget, not an excuse.
#pragma once

#include <sys/types.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/chaos_proxy.hpp"
#include "net/socket.hpp"

namespace asnap::chaos {

struct ProcessClusterConfig {
  std::string replicad_path;  ///< abd_replicad binary
  std::string state_dir;      ///< per-replica WALs + logs live under here
  std::vector<net::Endpoint> endpoints;  ///< one per replica, id order
  std::uint64_t regs = 16;    ///< register universe the daemons resync
  bool fsync = true;          ///< forward --no-fsync when false
  std::chrono::milliseconds restart_delay{200};
  bool auto_restart = true;
  /// Put a net::ChaosProxy in front of every replica and hand CLIENTS the
  /// proxied endpoints (client_endpoints()). The daemons themselves still
  /// peer over the direct endpoints, so a recovering replica's resync
  /// traffic bypasses the degraded network — the adversary under test is
  /// the client<->replica wire, and resync correctness already has its own
  /// scenarios.
  bool proxy = false;
  std::uint64_t proxy_seed = 0;  ///< fault-plan seed for the proxy
};

class ProcessCluster {
 public:
  explicit ProcessCluster(ProcessClusterConfig config);
  ~ProcessCluster();

  ProcessCluster(const ProcessCluster&) = delete;
  ProcessCluster& operator=(const ProcessCluster&) = delete;

  /// Spawn every replica and the supervisor. False on spawn failure.
  bool start();

  /// Block until every replica has logged READY (listening socket up).
  bool wait_ready(std::chrono::milliseconds timeout);

  std::size_t size() const { return config_.endpoints.size(); }
  const std::vector<net::Endpoint>& endpoints() const {
    return config_.endpoints;
  }

  /// What clients should dial: the proxy's listeners when one is
  /// configured, the replicas' own endpoints otherwise. Valid after
  /// start().
  const std::vector<net::Endpoint>& client_endpoints() const;

  /// The wire-fault injector, nullptr unless config.proxy. Scenario drivers
  /// use it directly (set_all / blackhole / flap / kill_connections).
  net::ChaosProxy* proxy() { return proxy_.get(); }

  /// SIGKILL replica i. The supervisor respawns it after restart_delay
  /// (auto_restart) — recovery then happens inside the new incarnation.
  bool kill9(std::size_t i);
  /// SIGSTOP / SIGCONT replica i (frozen, not dead: no EOF to its peers).
  bool stall(std::size_t i);
  bool resume(std::size_t i);

  /// Replicas currently dead, frozen, or (with a proxy) network-impaired —
  /// the fault driver's majority guard. A replica hit by several faults at
  /// once counts once: the guard bounds how many replicas might not answer,
  /// not how many faults are active.
  std::size_t unavailable() const;
  bool running(std::size_t i) const;

  struct Report {
    std::uint64_t kills = 0;
    std::uint64_t stalls = 0;
    std::uint64_t restarts = 0;
    /// Supervisor-side death-detection -> successful respawn, per restart.
    std::vector<double> restart_latencies_ms;
  };
  Report report() const;

  /// Graceful teardown: stop the supervisor, SIGTERM all, escalate to
  /// SIGKILL after a grace period, reap everything. Idempotent.
  void stop();

 private:
  struct Proc {
    pid_t pid = -1;
    bool want_up = false;  ///< supervisor should keep it alive
    bool stalled = false;
    bool down = false;
    std::chrono::steady_clock::time_point died_at{};
    std::chrono::steady_clock::time_point respawn_at{};
  };

  bool spawn_locked(std::size_t i);
  void supervise(std::stop_token st);

  ProcessClusterConfig config_;
  mutable std::mutex mu_;
  std::vector<Proc> procs_;
  Report report_;
  std::jthread supervisor_;
  std::unique_ptr<net::ChaosProxy> proxy_;
  std::vector<net::Endpoint> client_endpoints_;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace asnap::chaos
