// Chaos orchestrator: sustained snapshot workload + injected failures +
// online invariant monitors.
//
// Runs the Section 6 message-passing snapshot (MessagePassingSnapshot over
// lin::Tag values) with one worker per node issuing degraded-mode updates
// and scans, while a schedule (schedule.hpp) crashes/recovers nodes,
// partitions/heals the network and ramps message loss — and the
// self-healing layer (failure detector, circuit breaker, supervisor)
// repairs the damage. Three verdicts come out:
//
//   * SAFETY — every completed operation is recorded in a lin::Recorder
//     history and the run ends with the exact single-writer linearizability
//     check. Timed-out updates are INDETERMINATE (the value may have
//     reached a majority); workers therefore retry the same tag until it
//     succeeds — sound because the retried write is idempotent at equal
//     tags and tag visibility is monotone (the read write-back) — and an
//     update still unfinished at shutdown is recorded with its response at
//     the final clock tick, i.e. "possibly took effect any time up to the
//     end" (the Jepsen :info convention). Failed scans observed nothing and
//     are dropped.
//   * LIVENESS — a watchdog flags any worker whose node has been healthy
//     (alive, not isolated by the current partition, majority available)
//     for a full stall window yet still has an operation blocked or has
//     completed nothing; and the quiesce phase at the end demands every
//     auto-recovery converge (all nodes alive) once injection stops.
//   * HEALING TELEMETRY — detection latency (crash injection -> first
//     suspicion), recovery latency (supervisor), breaker/epoch counters,
//     per-op latency histograms for availability reporting.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "abd/abd_register.hpp"
#include "abd/supervisor.hpp"
#include "chaos/schedule.hpp"
#include "net/failure_detector.hpp"
#include "trace/histogram.hpp"

namespace asnap::chaos {

struct OrchestratorOptions {
  std::size_t nodes = 5;
  std::uint64_t seed = 1;
  /// Workload duration; the schedule should fit inside it.
  std::chrono::microseconds duration{std::chrono::seconds(2)};
  Schedule schedule;

  /// Client timing + circuit breaker. Chaos defaults: fast retransmits and
  /// an op deadline far below the watchdog stall window, so a hung
  /// operation is distinguishable from a slow one.
  abd::AbdConfig abd = [] {
    abd::AbdConfig c;
    c.initial_rto = std::chrono::microseconds(500);
    c.max_rto = std::chrono::milliseconds(8);
    c.op_deadline = std::chrono::milliseconds(250);
    c.breaker.enabled = true;
    c.breaker.fail_fast_grace = std::chrono::milliseconds(10);
    return c;
  }();

  /// Failure detector + supervisor; disable to measure the un-healed
  /// baseline or to hand-drive recovery from the schedule alone.
  bool self_healing = true;
  net::DetectorConfig detector;
  /// Chaos default: the "reboot" (restart_delay) takes longer than failure
  /// detection (DetectorConfig::initial_timeout), as it would in a real
  /// deployment — and so the crash -> first-suspicion latency is observable
  /// before the supervisor erases the evidence.
  abd::SupervisorConfig supervisor = [] {
    abd::SupervisorConfig s;
    s.restart_delay = std::chrono::milliseconds(20);
    return s;
  }();

  /// Liveness watchdog: a healthy worker stuck for this long is flagged.
  std::chrono::microseconds watchdog_stall{std::chrono::seconds(2)};
  /// Pause between a worker's failed attempt and its retry.
  std::chrono::microseconds op_retry_pause{200};
  /// After injection stops and the network heals, all nodes must be alive
  /// within this long ("every auto-recovery converges").
  std::chrono::microseconds convergence_timeout{std::chrono::seconds(5)};
  /// Extra tail of healthy-network workload before shutdown, letting
  /// pending same-tag retries resolve so few updates end indeterminate.
  std::chrono::microseconds quiesce_tail{std::chrono::milliseconds(100)};
};

struct RunReport {
  /// Safety violations and liveness flags; empty means the run passed.
  std::vector<std::string> violations;
  bool ok() const { return violations.empty(); }

  // Workload outcome.
  std::uint64_t updates_ok = 0;
  std::uint64_t scans_ok = 0;
  std::uint64_t failed_update_attempts = 0;
  std::uint64_t failed_scans = 0;
  std::uint64_t indeterminate_updates = 0;  ///< unfinished at shutdown
  std::size_t history_ops = 0;

  // Per-operation wall latency of SUCCESSFUL ops, nanoseconds; an update's
  // latency spans all retries of its tag (availability view, not raw RTT).
  trace::LogHistogram update_latency_ns;
  trace::LogHistogram scan_latency_ns;

  // Self-healing telemetry.
  std::uint64_t crashes_injected = 0;
  std::uint64_t partitions_injected = 0;
  std::uint64_t suspicions = 0;
  std::uint64_t trusts = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t failed_recovery_attempts = 0;
  std::vector<std::chrono::nanoseconds> detection_latencies;
  std::vector<std::chrono::nanoseconds> recovery_latencies;

  // Cluster counters.
  std::uint64_t protocol_rounds = 0;
  std::uint64_t fast_reads = 0;
  std::uint64_t fast_fallbacks = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t round_timeouts = 0;
  std::uint64_t breaker_skips = 0;
  std::uint64_t fail_fasts = 0;
  std::uint64_t stale_epoch_replies = 0;
  std::uint64_t messages_sent = 0;
};

/// Execute one chaos scenario to completion. Deterministically seeded up to
/// thread interleaving (like every other seeded harness in this repo).
RunReport run(const OrchestratorOptions& options);

}  // namespace asnap::chaos
